// Command objsim drives the object-storage gateway over the simulated
// transfer fabric: a seeded stream of small-object PUTs runs through the
// coalescing layer in single-pair mode (one sender/receiver pair, the
// full metadata CPU model) or cluster mode (16+ hosts, sharded control
// plane, lossy control RPCs), ending with the per-PUT exactly-once audit.
//
// Usage:
//
//	objsim                               # single pair, K=64, 1024 PUTs
//	objsim -coalesce 1                   # per-object worst case
//	objsim -cluster -hosts 16 -shards 4  # cluster mode
//	objsim -replay-check                 # run twice, demand identical traces
//
// Exit status is non-zero when the exactly-once audit fails, when the
// burst does not drain, or when -replay-check finds diverging traces.
package main

import (
	"flag"
	"fmt"
	"os"

	"e2edt/internal/cluster"
	"e2edt/internal/core"
	"e2edt/internal/objstore"
	"e2edt/internal/sim"
	"e2edt/internal/trace"
	"e2edt/internal/units"
	"e2edt/internal/xfersched"
)

type config struct {
	cluster  bool
	objects  int
	objBytes int64
	tenants  int
	coalesce int
	seed     int64
	hosts    int
	shards   int
	drop     int
}

// outcome is one run's measurements plus its trace fingerprint.
type outcome struct {
	objects  int
	bytes    float64
	windows  int
	lookups  int
	scans    int
	elapsed  float64
	traceSHA string
	events   uint64
}

func workload(cfg config) objstore.Workload {
	w := objstore.DefaultWorkload()
	w.Objects = cfg.objects
	w.Tenants = cfg.tenants
	w.MinBytes = cfg.objBytes
	w.MaxBytes = cfg.objBytes
	w.Seed = cfg.seed
	return w
}

// runSingle drives one single-pair gateway burst and audits it.
func runSingle(cfg config) (outcome, error) {
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	sys, err := core.NewSystem(opt)
	if err != nil {
		return outcome{}, err
	}
	h := trace.NewHasher()
	sys.Engine().SetTracer(h)
	sched, err := xfersched.New(sys, xfersched.DefaultConfig())
	if err != nil {
		return outcome{}, err
	}
	defer sched.Close()
	p := objstore.DefaultParams()
	p.Coalesce = cfg.coalesce
	g := objstore.NewGateway(sched, p, core.Forward)

	start := sim.Time(sim.Second)
	idx, err := g.Put(start, workload(cfg).Generate())
	if err != nil {
		return outcome{}, err
	}
	if !g.RunToCompletion(3600 * sim.Second) {
		return outcome{}, fmt.Errorf("burst did not drain within an hour of virtual time")
	}
	if err := g.AuditExactlyOnce(); err != nil {
		return outcome{}, err
	}
	var last sim.Time
	for _, i := range idx {
		if at := g.DoneAt(i); at > last {
			last = at
		}
	}
	n, bytes := g.ObjectsDone()
	return outcome{
		objects: n, bytes: bytes,
		windows: g.Windows, lookups: g.Lookups, scans: g.Scans,
		elapsed:  float64(last - start),
		traceSHA: h.Sum(), events: h.Events(),
	}, nil
}

// runCluster drives the burst through the sharded cluster gateway.
func runCluster(cfg config) (outcome, error) {
	eng := sim.NewEngine()
	h := trace.NewHasher()
	eng.SetTracer(h)
	c, err := cluster.New(eng, cluster.Config{
		Hosts: cfg.hosts, Shards: cfg.shards, DropPct: float64(cfg.drop), Seed: cfg.seed,
	})
	if err != nil {
		return outcome{}, err
	}
	c.AddTenants(cfg.tenants)
	p := objstore.DefaultParams()
	p.Coalesce = cfg.coalesce
	g := objstore.NewClusterGateway(c, p)

	all := workload(cfg).Generate()
	per := len(all) / cfg.tenants
	for tenant := 0; tenant < cfg.tenants; tenant++ {
		at := sim.Time(sim.Duration(1+tenant) * sim.Second)
		lo, hi := tenant*per, (tenant+1)*per
		if tenant == cfg.tenants-1 {
			hi = len(all)
		}
		if _, err := g.Put(at, tenant, all[lo:hi]); err != nil {
			return outcome{}, err
		}
	}
	c.Run()
	if err := g.AuditExactlyOnce(); err != nil {
		return outcome{}, err
	}
	n, bytes := g.ObjectsDone()
	return outcome{
		objects: n, bytes: bytes, windows: g.Windows,
		elapsed:  float64(eng.Now()),
		traceSHA: h.Sum(), events: h.Events(),
	}, nil
}

func run(cfg config) (outcome, error) {
	if cfg.cluster {
		return runCluster(cfg)
	}
	return runSingle(cfg)
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.cluster, "cluster", false, "cluster mode: sharded control plane over -hosts hosts")
	flag.IntVar(&cfg.objects, "objects", 1024, "PUT count")
	flag.Int64Var(&cfg.objBytes, "objbytes", 24<<10, "object size in bytes")
	flag.IntVar(&cfg.tenants, "tenants", 0, "tenant count (default 1 single-pair, 4 cluster)")
	flag.IntVar(&cfg.coalesce, "coalesce", 64, "coalescing window: max objects per rftp stream window (1 = per-object)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload and cluster seed")
	flag.IntVar(&cfg.hosts, "hosts", 16, "cluster mode: host count")
	flag.IntVar(&cfg.shards, "shards", 4, "cluster mode: control-plane shards")
	flag.IntVar(&cfg.drop, "drop", 5, "cluster mode: control RPC drop percentage")
	replay := flag.Bool("replay-check", false, "run the scenario twice and demand bit-identical traces")
	flag.Parse()

	if cfg.tenants == 0 {
		cfg.tenants = 1
		if cfg.cluster {
			cfg.tenants = 4
		}
	}
	if cfg.objects <= 0 || cfg.objBytes < 0 || cfg.coalesce < 0 || cfg.tenants < 1 {
		fmt.Fprintln(os.Stderr, "objsim: -objects and -tenants must be positive, -objbytes and -coalesce non-negative")
		os.Exit(2)
	}

	mode := "single-pair"
	if cfg.cluster {
		mode = fmt.Sprintf("cluster (%d hosts, %d shards, %d%% drop)", cfg.hosts, cfg.shards, cfg.drop)
	}
	fmt.Printf("objsim: %s, %d×%s PUTs, %d tenant(s), coalesce K=%d, seed %d\n",
		mode, cfg.objects, units.FormatBytes(cfg.objBytes), cfg.tenants, cfg.coalesce, cfg.seed)

	o, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "objsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  delivered %d objects (%s) in %.3fs virtual — %s, %d window(s)\n",
		o.objects, units.FormatBytes(int64(o.bytes)), o.elapsed,
		units.FormatRate(o.bytes/o.elapsed), o.windows)
	if !cfg.cluster {
		fmt.Printf("  metadata path: %d point lookup(s), %d batched scan(s)\n", o.lookups, o.scans)
	}
	fmt.Printf("  exactly-once audit: ok; trace %d events, sha256 %s\n", o.events, o.traceSHA[:16])

	if *replay {
		o2, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "objsim: replay: %v\n", err)
			os.Exit(1)
		}
		if o2.traceSHA != o.traceSHA || o2.events != o.events {
			fmt.Fprintf(os.Stderr, "objsim: replay diverged: %d events sha %s vs %d events sha %s\n",
				o.events, o.traceSHA[:16], o2.events, o2.traceSHA[:16])
			os.Exit(1)
		}
		fmt.Printf("  replay: bit-identical (%d events, equal digests)\n", o2.events)
	}
}
