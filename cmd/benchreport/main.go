// Command benchreport is the reproducible benchmark harness behind `make
// bench`. It measures the solver and engine hot paths at several scales,
// plus the end-to-end S1/S2 experiment runtimes and an S5 cluster point, in
// two modes within one binary:
//
//   - after:  the shipped configuration (flow-class aggregation,
//     bottleneck-subgraph incremental solver, timer wheel, event
//     recycling);
//   - before: the unoptimized baseline, selected through the
//     fluid.LegacyFullSolve and sim.LegacyAlloc knobs (from-scratch solve
//     on every reschedule, fresh allocation per event, eager cancel, plain
//     heap) — or, for the churn-scaling rows, the non-aggregated flow
//     population (one solver flow per member stream instead of one class).
//
// It writes a JSON report (BENCH_PR8.json at the repository root) with
// before/after numbers and, for S1/S2/S5, a SHA-256 of the output in both
// modes — proving the optimizations change performance, not a single bit
// of the seeded experiment output.
//
// Usage:
//
//	go run ./cmd/benchreport -out BENCH_PR8.json
//	go run ./cmd/benchreport -smoke          # CI gate: fast subset + asserts
//
// Smoke mode asserts that the committed report carries the 100k-flow churn
// row with ≥10× improvement, re-measures that point quickly, and replays
// S1/S2/S5 under both knob settings, exiting non-zero unless every trace
// hash matches its legacy-knob twin.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"e2edt/internal/experiments"
	"e2edt/internal/fluid"
	"e2edt/internal/sim"
)

// measurement is one benchmark in one mode.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// comparison is one benchmark's before/after pair.
type comparison struct {
	Name    string      `json:"name"`
	Before  measurement `json:"before"`
	After   measurement `json:"after"`
	Speedup float64     `json:"speedup"`
}

// experimentRun is one end-to-end experiment's before/after pair.
type experimentRun struct {
	Name          string  `json:"name"`
	BeforeSeconds float64 `json:"before_seconds"`
	AfterSeconds  float64 `json:"after_seconds"`
	Speedup       float64 `json:"speedup"`
	OutputSHA256  string  `json:"output_sha256"`
	BitIdentical  bool    `json:"bit_identical"`
}

type report struct {
	PR          string          `json:"pr"`
	Generated   string          `json:"generated"`
	GoVersion   string          `json:"go_version"`
	Description string          `json:"description"`
	Benchmarks  []comparison    `json:"benchmarks"`
	Experiments []experimentRun `json:"experiments"`
}

// setMode flips both baseline knobs; they are read at Engine/Network
// construction, and every workload below builds fresh ones.
func setMode(legacy bool) {
	fluid.LegacyFullSolve = legacy
	sim.LegacyAlloc = legacy
}

func printRow(c comparison) {
	fmt.Printf("%-34s before %12.0f ns/op %6d allocs/op   after %12.0f ns/op %6d allocs/op   %6.1fx\n",
		c.Name, c.Before.NsPerOp, c.Before.AllocsPerOp,
		c.After.NsPerOp, c.After.AllocsPerOp, c.Speedup)
}

// measure runs bench in both knob modes through testing.Benchmark and
// returns the comparison (the PR3-continuity rows).
func measure(name string, bench func(b *testing.B)) comparison {
	run := func(legacy bool) measurement {
		setMode(legacy)
		defer setMode(false)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bench(b)
		})
		return measurement{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}
	c := comparison{Name: name, Before: run(true), After: run(false)}
	if c.After.NsPerOp > 0 {
		c.Speedup = c.Before.NsPerOp / c.After.NsPerOp
	}
	printRow(c)
	return c
}

// timeOps measures fn over a fixed op count with manual instrumentation.
// The million-flow populations make testing.Benchmark's repeated setup
// probes prohibitive, so the churn rows use one warm setup per mode.
func timeOps(ops int, fn func(i int)) measurement {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < ops; i++ {
		fn(i)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return measurement{
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / int64(ops),
		BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / int64(ops),
		Iterations:  ops,
	}
}

const churnClassSize = 100 // member streams per flow class in the after rows

// classSizeOf keeps at least a handful of classes at small populations.
func classSizeOf(nMembers int) int {
	if nMembers < churnClassSize*8 {
		return nMembers / 8
	}
	return churnClassSize
}

// churnNetwork builds the shared 64-resource mesh plus either nMembers
// individual flows (flat) or nMembers/classSize flow classes, mirroring how
// the cluster pools same-route jobs.
func churnNetwork(nMembers int, classed bool) (*fluid.Network, []*fluid.Flow) {
	n := fluid.NewNetwork()
	rs := make([]*fluid.Resource, 64)
	for i := range rs {
		rs[i] = n.AddResource("r", 1e9+float64(i))
	}
	const uses = 4
	add := func(i, members int) *fluid.Flow {
		var f *fluid.Flow
		if members == 1 {
			f = n.NewFlow("f", 1e12)
		} else {
			f = n.NewFlowClass("c", 1e12, members)
		}
		for j := 0; j < uses; j++ {
			f.Use(rs[(i*13+j*17)%len(rs)], 0.2+float64(j)*0.1)
		}
		return f
	}
	var flows []*fluid.Flow
	if classed {
		k := classSizeOf(nMembers)
		for i := 0; i < nMembers/k; i++ {
			flows = append(flows, add(i, k))
		}
	} else {
		for i := 0; i < nMembers; i++ {
			flows = append(flows, add(i, 1))
		}
	}
	n.Resolve()
	return n, flows
}

// solverChurn measures the per-op cost of a binding demand change + Resolve
// against nMembers member streams: before = the non-aggregated path (one
// solver flow per member), after = flow classes. The 1 ↔ 1e12 toggle keeps
// min(old,new) at the flow's frozen rate, so every op runs a genuine
// bottleneck-subgraph refill rather than the non-binding fast path.
func solverChurn(name string, nMembers, flatOps, classOps int) comparison {
	churn := func(n *fluid.Network, flows []*fluid.Flow) func(int) {
		return func(i int) {
			f := flows[i%len(flows)]
			if i%2 == 0 {
				f.Demand = 1
			} else {
				f.Demand = 1e12
			}
			n.Resolve()
		}
	}
	fn, flat := churnNetwork(nMembers, false)
	before := timeOps(flatOps, churn(fn, flat))
	fn, flat = nil, nil
	_ = flat
	runtime.GC() // release ~nMembers flows before building the class twin
	cn, classes := churnNetwork(nMembers, true)
	after := timeOps(classOps, churn(cn, classes))
	c := comparison{Name: name, Before: before, After: after}
	if after.NsPerOp > 0 {
		c.Speedup = before.NsPerOp / after.NsPerOp
	}
	printRow(c)
	return c
}

// tickerStorm measures steady-state periodic-event throughput — the
// heartbeat/probe/sampler load at cluster scale — with the heap (before)
// versus the timer wheel (after). Rescheduling closures are pre-built so
// the row isolates the event structures.
func tickerStorm(nEvents int, span sim.Duration) comparison {
	run := func(wheel bool) measurement {
		e := sim.NewEngine()
		if wheel {
			e.EnableTimerWheel(0.005, 256)
		}
		fns := make([]func(), nEvents)
		for i := 0; i < nEvents; i++ {
			iv := sim.Duration(0.4 + 0.2*float64(i%101)/100)
			idx := i
			fns[idx] = func() { e.Schedule(iv, fns[idx]) }
			e.Schedule(iv, fns[idx])
		}
		e.RunFor(1) // warm the free list and slot arrays
		p0 := e.Processed
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		e.RunFor(span - 1)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		fired := int(e.Processed - p0)
		if fired == 0 {
			fired = 1
		}
		return measurement{
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(fired),
			AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / int64(fired),
			BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / int64(fired),
			Iterations:  fired,
		}
	}
	c := comparison{Name: fmt.Sprintf("engine_ticker_storm_%dk", nEvents/1000),
		Before: run(false), After: run(true)}
	if c.After.NsPerOp > 0 {
		c.Speedup = c.Before.NsPerOp / c.After.NsPerOp
	}
	printRow(c)
	return c
}

// demandChurn is the PR3-continuity row: one credit-loop style demand
// update against nFlows concurrent open-ended transfers over a 64-resource
// mesh, compared across the legacy knobs.
func demandChurn(nFlows int) func(b *testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine()
		s := fluid.NewSim(eng)
		resources := make([]*fluid.Resource, 64)
		for i := range resources {
			resources[i] = s.AddResource("r", 1e9+float64(i))
		}
		flows := make([]*fluid.Flow, nFlows)
		for i := range flows {
			f := s.NewFlow("f", 2e9)
			for j := 0; j < 8; j++ {
				f.Use(resources[(i*13+j*17)%len(resources)], 0.2+float64(j)*0.1)
			}
			flows[i] = f
			s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := flows[i%len(flows)]
			if i%2 == 0 {
				s.SetDemand(f, 3e9)
			} else {
				s.SetDemand(f, 2e9)
			}
		}
	}
}

// engineChurn is the watchdog-reset pattern: cancel a pending event,
// schedule its replacement, against nPending live events.
func engineChurn(nPending int) func(b *testing.B) {
	return func(b *testing.B) {
		e := sim.NewEngine()
		evs := make([]*sim.Event, nPending)
		for i := range evs {
			evs[i] = e.Schedule(sim.Duration(i+1), func() {})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot := i % len(evs)
			e.Cancel(evs[slot])
			evs[slot] = e.Schedule(sim.Duration(nPending+i+1), func() {})
		}
	}
}

// runExperiment times one full experiment run per mode and hashes the
// rendered result to prove bit-identical output.
func runExperiment(name string, fn func() experiments.Result) experimentRun {
	time1 := func(legacy bool) (float64, string) {
		setMode(legacy)
		defer setMode(false)
		start := time.Now()
		res := fn()
		elapsed := time.Since(start).Seconds()
		sum := sha256.Sum256([]byte(res.String() + res.RenderChart()))
		return elapsed, fmt.Sprintf("%x", sum)
	}
	beforeS, beforeH := time1(true)
	afterS, afterH := time1(false)
	r := experimentRun{
		Name:          name,
		BeforeSeconds: beforeS,
		AfterSeconds:  afterS,
		OutputSHA256:  afterH,
		BitIdentical:  beforeH == afterH,
	}
	if afterS > 0 {
		r.Speedup = beforeS / afterS
	}
	fmt.Printf("%-34s before %8.2fs   after %8.2fs   %5.1fx   bit-identical=%v\n",
		name, beforeS, afterS, r.Speedup, r.BitIdentical)
	return r
}

// runS5Point replays one 100-host cluster point under both knob settings
// and compares the replay trace digests directly: flow-class pooling, the
// subgraph solver and the timer wheel run in the after mode only at the
// solver/engine layer, yet the trace must not move by a bit.
func runS5Point() experimentRun {
	spec := experiments.ClusterRunSpec{
		Hosts: 100, Shards: 4, Tenants: 200, Jobs: 1000, DropPct: 5, Seed: 42,
	}
	one := func(legacy bool) experiments.ClusterRunResult {
		setMode(legacy)
		defer setMode(false)
		return experiments.RunClusterPoint(spec)
	}
	before := one(true)
	after := one(false)
	r := experimentRun{
		Name:          "S5_cluster_point_100h",
		BeforeSeconds: before.WallSeconds,
		AfterSeconds:  after.WallSeconds,
		OutputSHA256:  after.TraceSHA,
		BitIdentical:  before.TraceSHA == after.TraceSHA,
	}
	if after.WallSeconds > 0 {
		r.Speedup = before.WallSeconds / after.WallSeconds
	}
	fmt.Printf("%-34s before %8.2fs   after %8.2fs   %5.1fx   bit-identical=%v\n",
		r.Name, r.BeforeSeconds, r.AfterSeconds, r.Speedup, r.BitIdentical)
	return r
}

// smoke is the CI gate: assert the committed report carries the 100k churn
// row at ≥10×, re-measure that point quickly, and replay S1/S2/S5 under
// both knob settings checking hash equality.
func smoke(reportPath string) int {
	fail := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			return
		}
		fmt.Fprintf(os.Stderr, "SMOKE FAIL: "+format+"\n", args...)
		fail = 1
	}
	buf, err := os.ReadFile(reportPath)
	check(err == nil, "read %s: %v", reportPath, err)
	if err == nil {
		var rep report
		check(json.Unmarshal(buf, &rep) == nil, "parse %s", reportPath)
		found := false
		for _, b := range rep.Benchmarks {
			if strings.Contains(b.Name, "churn_100k") {
				found = true
				check(b.Speedup >= 10,
					"committed 100k churn row speedup %.1fx < 10x", b.Speedup)
			}
		}
		check(found, "no 100k-flow churn row in %s", reportPath)
		for _, e := range rep.Experiments {
			check(e.BitIdentical, "committed %s not bit-identical", e.Name)
		}
	}

	live := solverChurn("solver_churn_100k_flows_smoke", 100_000, 20, 400)
	check(live.Speedup >= 10, "live 100k churn improvement %.1fx < 10x", live.Speedup)

	for _, e := range []experimentRun{
		runExperiment("S1_scheduler_saturation", experiments.SchedulerSaturation),
		runExperiment("S2_chaos_recovery", experiments.ChaosRecovery),
		runS5Point(),
	} {
		check(e.BitIdentical, "%s trace diverged from the legacy-knob run", e.Name)
	}
	if fail == 0 {
		fmt.Println("bench smoke: PASS")
	}
	return fail
}

func main() {
	out := flag.String("out", "BENCH_PR8.json", "output JSON path")
	smokeMode := flag.Bool("smoke", false, "CI gate: fast churn + replay-hash asserts, no report write")
	flag.Parse()

	if *smokeMode {
		os.Exit(smoke(*out))
	}

	rep := report{
		PR:        "PR8",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Description: "churn rows: before = one solver flow per member stream (non-aggregated), " +
			"after = flow-class aggregation + bottleneck-subgraph solve; ticker row: heap vs timer wheel; " +
			"legacy rows and experiments: fluid.LegacyFullSolve + sim.LegacyAlloc baseline. " +
			"Same binary, same seeds; S1/S2/S5 hash their output in both modes.",
	}

	rep.Benchmarks = append(rep.Benchmarks,
		solverChurn("solver_churn_10k_flows", 10_000, 200, 2000),
		solverChurn("solver_churn_100k_flows", 100_000, 40, 2000),
		solverChurn("solver_churn_1m_flows", 1_000_000, 10, 1000),
		tickerStorm(100_000, 3),
		measure("solver_demand_churn_10000_flows", demandChurn(10000)),
		measure("engine_schedule_cancel_churn_1k", engineChurn(1000)),
	)
	rep.Experiments = append(rep.Experiments,
		runExperiment("S1_scheduler_saturation", experiments.SchedulerSaturation),
		runExperiment("S2_chaos_recovery", experiments.ChaosRecovery),
		runS5Point(),
	)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
