// Command benchreport is the reproducible benchmark harness behind `make
// bench`. It measures the solver and engine hot paths at several scales,
// plus the end-to-end S1/S2 experiment runtimes, in two modes within one
// binary:
//
//   - after:  the shipped configuration (incremental solver, event
//     recycling);
//   - before: the unoptimized baseline, selected through the
//     fluid.LegacyFullSolve and sim.LegacyAlloc knobs (from-scratch solve
//     on every reschedule, fresh allocation per event, eager cancel).
//
// It writes a JSON report (BENCH_PR3.json at the repository root) with
// before/after numbers and, for S1/S2, a SHA-256 of the rendered results
// in both modes — proving the optimizations change performance, not a
// single bit of the seeded experiment output.
//
// Usage:
//
//	go run ./cmd/benchreport -out BENCH_PR3.json [-benchtime 500ms]
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"e2edt/internal/experiments"
	"e2edt/internal/fluid"
	"e2edt/internal/sim"
)

// measurement is one benchmark in one mode.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// comparison is one benchmark's before/after pair.
type comparison struct {
	Name    string      `json:"name"`
	Before  measurement `json:"before"`
	After   measurement `json:"after"`
	Speedup float64     `json:"speedup"`
}

// experimentRun is one end-to-end experiment's before/after pair.
type experimentRun struct {
	Name          string  `json:"name"`
	BeforeSeconds float64 `json:"before_seconds"`
	AfterSeconds  float64 `json:"after_seconds"`
	Speedup       float64 `json:"speedup"`
	OutputSHA256  string  `json:"output_sha256"`
	BitIdentical  bool    `json:"bit_identical"`
}

type report struct {
	PR          string          `json:"pr"`
	Generated   string          `json:"generated"`
	GoVersion   string          `json:"go_version"`
	Description string          `json:"description"`
	Benchmarks  []comparison    `json:"benchmarks"`
	Experiments []experimentRun `json:"experiments"`
}

// setMode flips both baseline knobs; they are read at Engine/Network
// construction, and every workload below builds fresh ones.
func setMode(legacy bool) {
	fluid.LegacyFullSolve = legacy
	sim.LegacyAlloc = legacy
}

// measure runs bench in both modes and returns the comparison.
func measure(name string, benchtime time.Duration, bench func(b *testing.B)) comparison {
	run := func(legacy bool) measurement {
		setMode(legacy)
		defer setMode(false)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bench(b)
		})
		return measurement{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}
	// testing.Benchmark targets 1s per probe; scale via env knob is not
	// exposed, so benchtime here only bounds the churn loop sizes.
	_ = benchtime
	c := comparison{Name: name, Before: run(true), After: run(false)}
	if c.After.NsPerOp > 0 {
		c.Speedup = c.Before.NsPerOp / c.After.NsPerOp
	}
	fmt.Printf("%-32s before %12.0f ns/op %6d allocs/op   after %12.0f ns/op %6d allocs/op   %5.1fx\n",
		name, c.Before.NsPerOp, c.Before.AllocsPerOp,
		c.After.NsPerOp, c.After.AllocsPerOp, c.Speedup)
	return c
}

// demandChurn measures one credit-loop style demand update against nFlows
// concurrent open-ended transfers over a 64-resource mesh — the
// Sim.reschedule hot path (solver-scaling benchmark).
func demandChurn(nFlows int) func(b *testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine()
		s := fluid.NewSim(eng)
		resources := make([]*fluid.Resource, 64)
		for i := range resources {
			resources[i] = s.AddResource("r", 1e9+float64(i))
		}
		flows := make([]*fluid.Flow, nFlows)
		for i := range flows {
			f := s.NewFlow("f", 2e9)
			for j := 0; j < 8; j++ {
				f.Use(resources[(i*13+j*17)%len(resources)], 0.2+float64(j)*0.1)
			}
			flows[i] = f
			s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := flows[i%len(flows)]
			if i%2 == 0 {
				s.SetDemand(f, 3e9)
			} else {
				s.SetDemand(f, 2e9)
			}
		}
	}
}

// transferChurn measures a full start→complete transfer cycle with nBase
// long-lived background flows: the population changes every op, so both
// modes run the full solver and the delta isolates scratch reuse and event
// recycling.
func transferChurn(nBase int) func(b *testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine()
		s := fluid.NewSim(eng)
		link := s.AddResource("link", 1e9)
		for i := 0; i < nBase; i++ {
			f := s.NewFlow("bg", 2e9)
			f.Use(link, 1)
			s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := s.NewFlow("f", math.Inf(1))
			f.Use(link, 1)
			s.Start(&fluid.Transfer{Flow: f, Remaining: 1e6})
			eng.Run()
		}
	}
}

// engineChurn is the watchdog-reset pattern: cancel a pending event,
// schedule its replacement, against nPending live events.
func engineChurn(nPending int) func(b *testing.B) {
	return func(b *testing.B) {
		e := sim.NewEngine()
		evs := make([]*sim.Event, nPending)
		for i := range evs {
			evs[i] = e.Schedule(sim.Duration(i+1), func() {})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot := i % len(evs)
			e.Cancel(evs[slot])
			evs[slot] = e.Schedule(sim.Duration(nPending+i+1), func() {})
		}
	}
}

// runExperiment times one full experiment run per mode and hashes the
// rendered result to prove bit-identical output.
func runExperiment(name string, fn func() experiments.Result) experimentRun {
	time1 := func(legacy bool) (float64, string) {
		setMode(legacy)
		defer setMode(false)
		start := time.Now()
		res := fn()
		elapsed := time.Since(start).Seconds()
		sum := sha256.Sum256([]byte(res.String() + res.RenderChart()))
		return elapsed, fmt.Sprintf("%x", sum)
	}
	beforeS, beforeH := time1(true)
	afterS, afterH := time1(false)
	r := experimentRun{
		Name:          name,
		BeforeSeconds: beforeS,
		AfterSeconds:  afterS,
		OutputSHA256:  afterH,
		BitIdentical:  beforeH == afterH,
	}
	if afterS > 0 {
		r.Speedup = beforeS / afterS
	}
	fmt.Printf("%-32s before %8.2fs   after %8.2fs   %5.1fx   bit-identical=%v\n",
		name, beforeS, afterS, r.Speedup, r.BitIdentical)
	return r
}

func main() {
	out := flag.String("out", "BENCH_PR3.json", "output JSON path")
	benchtime := flag.Duration("benchtime", time.Second, "unused; kept for interface stability")
	flag.Parse()

	rep := report{
		PR:        "PR3",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Description: "before = legacy from-scratch solver + per-event allocation " +
			"(fluid.LegacyFullSolve, sim.LegacyAlloc); after = incremental solver + event recycling. " +
			"Same binary, same seeds; experiments hash their rendered output in both modes.",
	}

	for _, n := range []int{10, 100, 1000, 10000} {
		rep.Benchmarks = append(rep.Benchmarks,
			measure(fmt.Sprintf("solver_demand_churn_%d_flows", n), *benchtime, demandChurn(n)))
	}
	rep.Benchmarks = append(rep.Benchmarks,
		measure("solver_transfer_churn_100_flows", *benchtime, transferChurn(100)),
		measure("engine_schedule_cancel_churn_1k", *benchtime, engineChurn(1000)),
	)
	rep.Experiments = append(rep.Experiments,
		runExperiment("S1_scheduler_saturation", experiments.SchedulerSaturation),
		runExperiment("S2_chaos_recovery", experiments.ChaosRecovery),
	)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
