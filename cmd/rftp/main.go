// Command rftp runs a simulated RFTP transfer and reports throughput and
// CPU cost, on either the LAN end-to-end testbed or the DOE ANI WAN loop.
//
// Usage examples:
//
//	rftp                          # end-to-end LAN transfer, tuned defaults
//	rftp -wan -streams 4 -bs 1MB  # memory-to-memory over the 95 ms loop
//	rftp -size 300GB              # finite transfer, report completion time
//	rftp -policy default          # without NUMA tuning
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"e2edt/internal/core"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

func main() {
	log.SetFlags(0)
	wan := flag.Bool("wan", false, "run memory-to-memory over the ANI 40G/95ms loop")
	streams := flag.Int("streams", 3, "parallel RDMA streams")
	bs := flag.String("bs", "4MB", "block size")
	credits := flag.Int("credits", 64, "outstanding blocks per stream")
	policy := flag.String("policy", "bind", "NUMA policy: bind or default")
	size := flag.String("size", "", "transfer size (e.g. 300GB); empty = 60 s open-ended run")
	duration := flag.Float64("t", 60, "open-ended run duration in simulated seconds")
	traceOut := flag.Bool("trace", false, "log simulation trace events to stderr")
	flag.Parse()

	blockSize, err := units.ParseBlockSize(*bs)
	if err != nil {
		log.Fatal(err)
	}
	cfg := rftp.Config{
		Streams:          *streams,
		BlockSize:        blockSize,
		CreditsPerStream: *credits,
		Policy:           numa.PolicyBind,
	}
	if *policy == "default" {
		cfg.Policy = numa.PolicyDefault
	}
	bytes := math.Inf(1)
	if *size != "" {
		n, err := units.ParseBlockSize(*size)
		if err != nil {
			log.Fatal(err)
		}
		bytes = float64(n)
	}

	if *wan {
		runWAN(cfg, bytes, *duration, *traceOut)
		return
	}
	runLAN(cfg, bytes, *duration, *traceOut)
}

func runWAN(cfg rftp.Config, size, duration float64, traceOut bool) {
	w := testbed.NewWAN()
	if traceOut {
		w.Eng.SetTracer(trace.NewLogger(os.Stderr))
	}
	var doneAt sim.Time
	tr, err := rftp.Start(w.LinkSlice(), w.A, cfg, rftp.DefaultParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		log.Fatal(err)
	}
	if math.IsInf(size, 1) {
		w.Eng.RunFor(sim.Duration(duration))
	} else {
		w.Eng.Run()
	}
	report("WAN memory-to-memory", tr.Transferred(), tr.Bandwidth(), doneAt)
	fmt.Printf("sender CPU: %.0f%%  receiver CPU: %.0f%%\n",
		w.A.HostCPUReport().TotalPercent(float64(w.Eng.Now())),
		w.B.HostCPUReport().TotalPercent(float64(w.Eng.Now())))
}

func runLAN(cfg rftp.Config, size, duration float64, traceOut bool) {
	sys, err := core.NewSystem(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if traceOut {
		sys.Engine().SetTracer(trace.NewLogger(os.Stderr, "rftp", "fabric"))
	}
	var doneAt sim.Time
	tr, err := sys.StartRFTP(core.Forward, cfg, rftp.DefaultParams(), size,
		func(now sim.Time) { doneAt = now })
	if err != nil {
		log.Fatal(err)
	}
	if math.IsInf(size, 1) {
		sys.Engine().RunFor(sim.Duration(duration))
	} else {
		sys.Engine().Run()
	}
	report("LAN end-to-end (SAN → SAN)", tr.Transferred(), tr.Bandwidth(), doneAt)
	el := float64(sys.Engine().Now())
	fmt.Printf("sender CPU: %.0f%%  receiver CPU: %.0f%%\n",
		sys.A.Front.HostCPUReport().TotalPercent(el),
		sys.B.Front.HostCPUReport().TotalPercent(el))
}

func report(label string, bytes, bw float64, doneAt sim.Time) {
	fmt.Printf("%s: moved %s at %s\n", label,
		units.FormatBytes(int64(bytes)), units.FormatRate(bw))
	if doneAt > 0 {
		fmt.Printf("completed at t=%.2fs (simulated)\n", float64(doneAt))
	}
}
