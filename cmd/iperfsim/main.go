// Command iperfsim reruns the paper's §2.3 motivating experiment: iperf
// over three 40 Gbps RoCE links between two NUMA hosts, comparing the
// default Linux scheduler against NUMA binding.
//
// Usage examples:
//
//	iperfsim                 # both policies, bi-directional (the paper's run)
//	iperfsim -uni -streams 2
//	iperfsim -cached         # iperf's default cache-resident source buffer
package main

import (
	"flag"
	"fmt"
	"log"

	"e2edt/internal/host"
	"e2edt/internal/iperf"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func main() {
	log.SetFlags(0)
	streams := flag.Int("streams", 1, "TCP streams per link per direction")
	uni := flag.Bool("uni", false, "unidirectional instead of bi-directional")
	cached := flag.Bool("cached", false, "use iperf's default cache-resident source buffer")
	duration := flag.Float64("t", 10, "run duration in simulated seconds")
	flag.Parse()

	run := func(policy numa.Policy) {
		p := testbed.NewMotivatingPair()
		cfg := iperf.DefaultConfig()
		cfg.Policy = policy
		cfg.StreamsPerLink = *streams
		cfg.Bidirectional = !*uni
		cfg.LargeBuffer = !*cached
		cfg.Duration = sim.Duration(*duration)
		rep := iperf.Run(p.Links, cfg)
		cpu := p.A.HostCPUReport()
		copyShare := 0.0
		if cpu.Total > 0 {
			copyShare = cpu.ByCategory[host.CatCopy] / cpu.Total * 100
		}
		fmt.Printf("%-8s aggregate %s  (copy = %.0f%% of CPU)\n",
			policy.String()+":", units.FormatRate(rep.Aggregate), copyShare)
	}
	run(numa.PolicyDefault)
	run(numa.PolicyBind)
	fmt.Println("paper (§2.3): default 83.5 Gbps, NUMA-tuned 91.8 Gbps (+10%)")
}
