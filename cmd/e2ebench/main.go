// Command e2ebench regenerates the paper's tables and figures.
//
// Usage:
//
//	e2ebench              # run every experiment
//	e2ebench -list        # list experiment IDs
//	e2ebench -run F9,F13  # run selected experiments
//
// Experiment IDs follow DESIGN.md: E1 (motivating iperf), E2 (STREAM),
// F4 (cost breakdown), T1 (testbed table), F7/F8 (iSER bandwidth/CPU),
// F9–F12 (end-to-end uni/bi-directional), F13/F14 (WAN), A1 (SSD thermal),
// A2 (path ceiling), S1 (multi-tenant transfer scheduler saturation),
// S2 (fault-injection chaos sweep with in-protocol recovery).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"e2edt/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	charts := flag.Bool("chart", false, "render ASCII charts for experiments with series")
	md := flag.Bool("md", false, "emit tables as markdown (for EXPERIMENTS.md-style reports)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		res, err := experiments.Run(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *md {
			fmt.Printf("### %s — %s\n\n", res.ID, res.Title)
			for _, tb := range res.Tables {
				fmt.Println(tb.Markdown())
			}
			for _, n := range res.Notes {
				fmt.Printf("> %s\n", n)
			}
			fmt.Println()
		} else {
			fmt.Println(res)
		}
		if *charts {
			if c := res.RenderChart(); c != "" {
				fmt.Println(c)
			}
		}
	}
}
