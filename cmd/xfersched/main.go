// Command xfersched runs the multi-tenant transfer scheduling service over
// the simulated Figure 5 system: it generates a job trace, replays it
// through admission control, weighted fair-share stream arbitration and
// failure-driven retry, and prints per-tenant, per-job and aggregate
// outcome tables.
//
// Usage:
//
//	xfersched                            # default 24-job mixed trace
//	xfersched -jobs 40 -rate 120         # 40 jobs offered at 120 jobs/min
//	xfersched -tenants astro:3,bio:1     # tenant weights (mix + fair share)
//	xfersched -fail 5 -failfor 10        # front link 0 dark from t=5s to t=15s
//	xfersched -chaos 2 -chaosseed 9      # seeded fault schedule, MTBF 2s
//	xfersched -recover=false             # disable in-protocol recovery
//	xfersched -rails -kill-rail roce1@5  # rail mgmt on; roce1 dies for good at t=5s
//	xfersched -corrupt 3 -checksum       # 3 seeded silent bit flips, caught end to end
//	xfersched -gray roce1@5:0.7          # roce1 silently sags to 30% at t=5s; outlier scorer armed
//	xfersched -gray roce1@5:0.7 -hedge   # …and hedged windows race the sick rail's tail
//	xfersched -trace jobs.txt            # replay a job trace file
//	xfersched -concurrent 8 -streams 12  # admission and stream budgets
//	xfersched -seed 7 -md -v             # reseed, markdown, per-job table
//
// Cluster mode swaps the single Figure 5 pair for a datacenter fabric of
// simulated hosts under the sharded control plane (internal/cluster):
//
//	xfersched -cluster -hosts 100 -shards 4 -drop 5 -seed 7
//	xfersched -cluster -hosts 300 -topology fat-tree -ctenants 3000
//	xfersched -cluster -hosts 100 -ctenants 500 -drop 5 -replay-check
//
// Cluster mode has its own failure domains — crash-stop hosts, crash-stop
// shard controllers, control-plane partitions, and spine-switch outages —
// each virtual-time-stamped so the chaos timeline replays bit-identically:
//
//	xfersched -cluster -hosts 100 -kill-host 7@8+8       # host 7 dark 8s..16s
//	xfersched -cluster -gray 3@8+6:0.95 -shed            # host 3 limps to 5% 8s..14s; scorer + shed valve armed
//	xfersched -cluster -kill-ctrl 0@15                   # leader controller dies at 15s
//	xfersched -cluster -partition 5,6,7@20+6             # shards 5-7 severed 20s..26s
//	xfersched -cluster -kill-spine 1@10+5 -replay-check  # spine 1 dark 10s..15s
//
// With -chaos (or -fail) the injected fault schedule is echoed alongside
// the outcome tables, so a report records exactly what the run survived.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"e2edt/internal/cluster"
	"e2edt/internal/core"
	"e2edt/internal/experiments"
	"e2edt/internal/fabric"
	"e2edt/internal/faults"
	"e2edt/internal/fluid"
	"e2edt/internal/metrics"
	"e2edt/internal/railmgr"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/units"
	"e2edt/internal/xfersched"
)

func main() {
	jobs := flag.Int("jobs", 24, "trace length (number of jobs)")
	rate := flag.Float64("rate", 30, "offered load in jobs per minute")
	seed := flag.Int64("seed", 1, "trace PRNG seed")
	minSize := flag.String("min", "2GB", "minimum job size")
	maxSize := flag.String("max", "12GB", "maximum job size")
	gridftp := flag.Float64("gridftp", 0.2, "fraction of jobs using the GridFTP baseline")
	reverse := flag.Float64("reverse", 0.25, "fraction of jobs flowing B→A")
	tenants := flag.String("tenants", "astro:2,bio:1,climate:1", "tenant:weight list")
	concurrent := flag.Int("concurrent", 4, "admission cap on running jobs")
	streams := flag.Int("streams", 6, "total RFTP stream budget across running jobs")
	failAt := flag.Float64("fail", 0, "fail front link 0 at this virtual second (0 = no failure)")
	failFor := flag.Float64("failfor", 10, "failure window length in virtual seconds")
	chaos := flag.Float64("chaos", 0, "mean seconds between injected faults on the front fabric (0 = off)")
	chaosSeed := flag.Int64("chaosseed", 42, "fault-schedule PRNG seed")
	outage := flag.Float64("outage", 0.3, "mean fault window length in virtual seconds")
	degrade := flag.Float64("degrade", 0.5, "surviving capacity fraction for chaos degradation windows")
	horizon := flag.Float64("horizon", 30, "chaos fault-injection horizon in virtual seconds")
	recover := flag.Bool("recover", true, "enable in-protocol recovery (RDMA/RFTP/iSER); the watchdog stays as second line of defense")
	rails := flag.Bool("rails", false, "enable rail health management: failover, credit rebalance and failback (requires -recover)")
	killRail := flag.String("kill-rail", "", "permanently kill a front rail, as name@seconds (e.g. roce1@5); implies -rails")
	grayFlag := flag.String("gray", "", "gray failure: name@seconds:severity silently sags a front rail (e.g. roce1@5:0.7); cluster mode: id@seconds+window:severity limps a host's cores (e.g. 3@8+6:0.95). Arms the outlier scorer")
	hedge := flag.Bool("hedge", false, "arm tail-tolerant hedged windows: lagging streams re-issue on the best trusted rail, first completion wins (implies -rails with gray detection)")
	shed := flag.Bool("shed", false, "cluster mode: arm the gray host scorer and the admission shed valve (low-priority jobs held while a host is under a verdict)")
	corrupt := flag.Int("corrupt", 0, "inject this many seeded silent bit flips across the front rails")
	corruptSeed := flag.Int64("corruptseed", 7, "corruption-schedule PRNG seed")
	checksum := flag.Bool("checksum", false, "enable RFTP end-to-end block checksums (the only layer that catches silent corruption)")
	traceFile := flag.String("trace", "", "replay a job trace file (see xfersched.ParseTrace) instead of generating one")
	limit := flag.Float64("limit", 7200, "virtual-time budget in seconds")
	md := flag.Bool("md", false, "emit tables as markdown")
	utilz := flag.Bool("utilz", false, "dump the end-of-run fluid resource utilization snapshot (loaded resources only)")
	verbose := flag.Bool("v", false, "include the per-job table")
	clusterMode := flag.Bool("cluster", false, "run the datacenter cluster fabric instead of the single Figure 5 pair")
	hosts := flag.Int("hosts", 100, "cluster mode: number of simulated hosts")
	shards := flag.Int("shards", 4, "cluster mode: control-plane shard count")
	drop := flag.Float64("drop", 0, "cluster mode: control-RPC drop percentage (0-100)")
	topology := flag.String("topology", "leaf-spine", "cluster mode: fabric topology (leaf-spine|fat-tree)")
	ctenants := flag.Int("ctenants", 0, "cluster mode: tenant count (default 10 per host)")
	cjobs := flag.Int("cjobs", 0, "cluster mode: job count (default 2 per tenant)")
	replayCheck := flag.Bool("replay-check", false, "cluster mode: run the scenario twice and fail unless the traces hash identically")
	killHost := flag.String("kill-host", "", "cluster mode: crash-stop a host, as id@seconds[+downtime] (e.g. 7@8+8; no +downtime = never restarts)")
	killCtrl := flag.String("kill-ctrl", "", "cluster mode: permanently crash-stop a shard controller, as shard@seconds (e.g. 0@15)")
	killSpine := flag.String("kill-spine", "", "cluster mode: fail every trunk of a spine switch, as spine@seconds[+downtime]")
	partition := flag.String("partition", "", "cluster mode: sever shards from the control plane, as ids@seconds+window (e.g. 5,6,7@20+6)")
	flag.Parse()

	if *clusterMode {
		if *hedge {
			fatal(fmt.Errorf("-hedge is a single-pair flag: cluster transfers hedge at the host level via -shed"))
		}
		runCluster(clusterFlags{
			hosts: *hosts, shards: *shards, drop: *drop, topology: *topology,
			tenants: *ctenants, jobs: *cjobs, seed: *seed,
			replayCheck: *replayCheck, md: *md,
			killHost: *killHost, killCtrl: *killCtrl,
			killSpine: *killSpine, partition: *partition,
			gray: *grayFlag, shed: *shed,
		})
		return
	}
	if *shed {
		fatal(fmt.Errorf("-shed is a cluster-mode flag: admission shedding needs the sharded control plane (add -cluster)"))
	}

	minB, err := units.ParseBlockSize(*minSize)
	if err != nil {
		fatal(err)
	}
	maxB, err := units.ParseBlockSize(*maxSize)
	if err != nil {
		fatal(err)
	}
	tList, err := parseTenants(*tenants)
	if err != nil {
		fatal(err)
	}

	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	if *recover {
		opt.Recovery = core.DefaultRecoveryOptions()
	}
	if *killRail != "" || *grayFlag != "" || *hedge {
		*rails = true
	}
	if *rails {
		if !*recover {
			fatal(fmt.Errorf("-rails and -kill-rail need in-protocol recovery; drop -recover=false"))
		}
		opt.Recovery.Rails = railmgr.DefaultPolicy()
	}
	if *grayFlag != "" || *hedge {
		// Gray injection is silent: only the peer-comparison scorer (and,
		// with -hedge, the adaptive deadline) can react to it.
		opt.Recovery.Rails.Gray = railmgr.DefaultGrayPolicy()
	}
	sys, err := core.NewSystem(opt)
	if err != nil {
		fatal(err)
	}
	cfg := xfersched.DefaultConfig().WithRecovery(opt.Recovery)
	cfg.MaxConcurrent = *concurrent
	cfg.StreamBudget = *streams
	cfg.RFTP.Checksum = *checksum
	if *hedge {
		cfg.RFTPParams.Hedge = rftp.DefaultHedgePolicy()
	}
	s, err := xfersched.New(sys, cfg)
	if err != nil {
		fatal(err)
	}
	defer s.Close()

	s.WithTenantWeights(tList)
	if *traceFile != "" {
		text, err := os.ReadFile(*traceFile)
		if err != nil {
			fatal(err)
		}
		trace, err := xfersched.ParseTrace(string(text))
		if err != nil {
			fatal(err)
		}
		s.SubmitTrace(trace)
	} else {
		tc := xfersched.TraceConfig{
			Seed:            *seed,
			Jobs:            *jobs,
			JobsPerMinute:   *rate,
			Tenants:         tList,
			MinBytes:        minB,
			MaxBytes:        maxB,
			GridFTPFraction: *gridftp,
			ReverseFraction: *reverse,
			PriorityLevels:  2,
		}
		s.SubmitTrace(xfersched.GenerateTrace(tc))
	}

	plan := &faults.Plan{}
	if *failAt > 0 {
		plan.FailWindow(sys.TB.FrontLinks[0], sim.Time(*failAt), sim.Duration(*failFor))
	}
	if *killRail != "" {
		link, at, err := parseRailAt("-kill-rail", *killRail, sys.TB.FrontLinks)
		if err != nil {
			fatal(err)
		}
		plan.PermanentFail(link, at)
	}
	if *grayFlag != "" {
		link, at, severity, err := parseGrayRail(*grayFlag, sys.TB.FrontLinks)
		if err != nil {
			fatal(err)
		}
		plan.SlowRail(link, at, severity)
	}
	if *corrupt > 0 {
		rng := rand.New(rand.NewSource(*corruptSeed))
		for i := 0; i < *corrupt; i++ {
			link := sys.TB.FrontLinks[rng.Intn(len(sys.TB.FrontLinks))]
			at := sim.Time(0.2 + rng.Float64()*2)
			plan.Corrupt(link, at)
		}
	}
	// Reject a contradictory flag-built schedule (e.g. a gray sag scheduled
	// inside a -fail outage window) with the validator's own error text
	// before anything runs.
	if err := plan.Validate(); err != nil {
		fatal(err)
	}
	if *chaos > 0 {
		chaosPlan := faults.Chaos(faults.ChaosConfig{
			Seed:            *chaosSeed,
			Horizon:         sim.Duration(*horizon),
			Start:           sim.Time(100 * sim.Millisecond),
			MeanBetween:     sim.Duration(*chaos),
			MeanOutage:      sim.Duration(*outage),
			DegradeFraction: *degrade,
			FlapWeight:      3,
			DegradeWeight:   1,
			BurstWeight:     1,
		}, sys.TB.FrontLinks...)
		for _, ev := range chaosPlan.Events {
			plan.Add(ev)
		}
	}
	if !plan.Empty() {
		s.ApplyFaults(plan)
	}
	// -utilz samples the solver state on a coarse cadence and keeps the
	// busiest snapshot: at end of run every flow has completed and the
	// loads all read zero, which is the one state nobody is debugging.
	var peak []fluid.ResourceUtil
	if *utilz {
		peakLoad := -1.0
		sampler := sys.Engine().NewTicker(100*sim.Millisecond, func(sim.Time) {
			us := sys.TB.Sim.Network.Utilization()
			total := 0.0
			for _, u := range us {
				total += u.Share
			}
			if total > peakLoad {
				peakLoad, peak = total, us
			}
		})
		defer sampler.Stop()
	}
	done := s.RunToCompletion(sim.Duration(*limit))

	r := s.Report()
	tables := []*metrics.Table{r.SummaryTable(), r.TenantTable()}
	if gt := r.GrayTable(); gt != nil {
		tables = append(tables, gt)
	}
	if *verbose {
		tables = append(tables, s.JobTable())
	}
	if *utilz {
		tables = append(tables, utilzTable(peak))
	}
	for _, tb := range tables {
		if *md {
			fmt.Println(tb.Markdown())
		} else {
			fmt.Println(tb)
		}
	}
	if !plan.Empty() {
		if *md {
			fmt.Println("#### Injected fault schedule")
			fmt.Println()
			fmt.Println(plan.MarkdownTable())
		} else {
			fmt.Println("Injected fault schedule:")
			fmt.Println(plan.String())
		}
	}
	if !done {
		fmt.Fprintf(os.Stderr, "xfersched: virtual-time budget %.0fs exhausted with jobs unfinished\n", *limit)
		os.Exit(1)
	}
	// A gray run is audited like the cluster chaos runs: the silent sag must
	// cost performance, never deliveries.
	if *grayFlag != "" || *hedge {
		if r.Lost > 0 {
			fmt.Fprintf(os.Stderr, "xfersched: delivery audit FAILED: gray run lost %d jobs\n", r.Lost)
			os.Exit(1)
		}
		fmt.Println("delivery audit: OK (every job completed despite the gray schedule)")
	}
}

// clusterFlags carries the cluster-mode CLI knobs.
type clusterFlags struct {
	hosts, shards int
	drop          float64
	topology      string
	tenants, jobs int
	seed          int64
	replayCheck   bool
	md            bool

	killHost, killCtrl, killSpine, partition string

	// gray limps a host (id@seconds+window:severity); shed arms the host
	// scorer and the admission shed valve. A gray limp arms the scorer too
	// — an undetectable injection tests nothing.
	gray string
	shed bool
}

// runCluster drives the sharded-control-plane fabric scenario and prints
// the cluster report. With -replay-check the scenario runs twice and the
// process fails unless both traces hash identically — the determinism
// contract the CI smoke asserts.
func runCluster(f clusterFlags) {
	if _, err := fabric.ParseTopoKind(f.topology); err != nil {
		fatal(err)
	}
	if f.tenants <= 0 {
		f.tenants = 10 * f.hosts
	}
	if f.jobs <= 0 {
		f.jobs = 2 * f.tenants
	}
	// Reject invalid shapes before the run starts, with the model's own
	// error text: the CLI surfaces what cluster.Config.Validate rejects
	// rather than silently repairing it.
	if err := (cluster.Config{
		Hosts: f.hosts, Shards: f.shards, DropPct: f.drop, Seed: f.seed,
	}).Validate(); err != nil {
		fatal(err)
	}
	chaos, err := parseChaos(f)
	if err != nil {
		fatal(err)
	}
	spec := experiments.ClusterRunSpec{
		Hosts:    f.hosts,
		Shards:   f.shards,
		Tenants:  f.tenants,
		Jobs:     f.jobs,
		DropPct:  f.drop,
		Topology: f.topology,
		Seed:     f.seed,
		Chaos:    chaos,
		Gray:     f.gray != "" || f.shed,
	}
	res := experiments.RunClusterPoint(spec)
	// Echo the schedule and topology the run used, in the -chaos/-rails
	// fault-plan style: a report records exactly what was simulated.
	fmt.Printf("cluster: %s\n", res.Topology)
	fmt.Printf("schedule: %d shards, %d tenants, %d jobs, drop %.1f%%, seed %d\n",
		f.shards, f.tenants, f.jobs, f.drop, f.seed)
	if chaos != nil {
		for _, k := range chaos.HostKills {
			fmt.Printf("chaos: host %d crash-stops at %.1fs (down %.1fs; 0 = forever)\n", k.Host, float64(k.At), float64(k.Down))
		}
		for _, k := range chaos.CtrlKills {
			fmt.Printf("chaos: shard controller %d crash-stops at %.1fs\n", k.Shard, float64(k.At))
		}
		for _, p := range chaos.Partitions {
			fmt.Printf("chaos: shards %v severed at %.1fs for %.1fs\n", p.Shards, float64(p.At), float64(p.For))
		}
		for _, k := range chaos.SpineKills {
			fmt.Printf("chaos: spine %d dark at %.1fs (down %.1fs; 0 = forever)\n", k.Spine, float64(k.At), float64(k.Down))
		}
		for _, l := range chaos.Limps {
			fmt.Printf("gray: host %d limps to %.0f%% core speed at %.1fs for %.1fs (heartbeats stay alive)\n",
				l.Host, l.Factor*100, float64(l.At), float64(l.For))
		}
	}
	if spec.Gray {
		fmt.Println("gray: host outlier scorer and admission shed valve armed")
	}
	tb := res.Report.Table()
	if f.md {
		fmt.Println(tb.Markdown())
	} else {
		fmt.Println(tb)
	}
	fmt.Printf("replay sha256: %s (%d events, %.1fs wall)\n", res.TraceSHA, res.TraceEvents, res.WallSeconds)
	if res.ExactlyOnce != nil {
		fmt.Fprintf(os.Stderr, "xfersched: delivery audit FAILED: %v\n", res.ExactlyOnce)
		os.Exit(1)
	}
	if res.DegradedAtEnd != 0 {
		fmt.Fprintf(os.Stderr, "xfersched: %d shards still degraded at end of run\n", res.DegradedAtEnd)
		os.Exit(1)
	}
	if chaos != nil {
		fmt.Println("delivery audit: OK (every done job completed exactly once; byte ledgers agree)")
	}
	if f.replayCheck {
		again := experiments.RunClusterPoint(spec)
		if again.TraceSHA != res.TraceSHA {
			fmt.Fprintf(os.Stderr, "xfersched: replay check FAILED: %s vs %s\n", res.TraceSHA, again.TraceSHA)
			os.Exit(1)
		}
		fmt.Printf("replay check: OK (second run bit-identical, %d events)\n", again.TraceEvents)
	}
}

// parseChaos assembles the cluster-mode fault timeline from the CLI knobs.
func parseChaos(f clusterFlags) (*experiments.ChaosSpec, error) {
	if f.killHost == "" && f.killCtrl == "" && f.killSpine == "" && f.partition == "" && f.gray == "" {
		return nil, nil
	}
	spec := &experiments.ChaosSpec{}
	if f.gray != "" {
		limpStr, sevStr, found := strings.Cut(f.gray, ":")
		if !found {
			return nil, fmt.Errorf("bad -gray %q: cluster mode wants id@seconds+window:severity, e.g. 3@8+6:0.95", f.gray)
		}
		id, at, down, err := parseAtDown("-gray", limpStr)
		if err != nil {
			return nil, err
		}
		if down == 0 {
			return nil, fmt.Errorf("bad -gray %q: a limp needs a recovery window, e.g. 3@8+6:0.95", f.gray)
		}
		if id >= f.hosts {
			return nil, fmt.Errorf("-gray %d: the run has hosts 0..%d", id, f.hosts-1)
		}
		sev, err := strconv.ParseFloat(sevStr, 64)
		if err != nil || sev <= 0 || sev >= 1 {
			return nil, fmt.Errorf("bad -gray severity %q: want a fraction in (0, 1) — the host must limp, not die", sevStr)
		}
		spec.Limps = append(spec.Limps, experiments.LimpSpec{
			Host: id, At: at, For: down, Factor: 1 - sev,
		})
	}
	if f.killHost != "" {
		id, at, down, err := parseAtDown("-kill-host", f.killHost)
		if err != nil {
			return nil, err
		}
		if id >= f.hosts {
			return nil, fmt.Errorf("-kill-host %d: the run has hosts 0..%d", id, f.hosts-1)
		}
		spec.HostKills = append(spec.HostKills, experiments.HostKill{Host: id, At: at, Down: down})
	}
	if f.killCtrl != "" {
		id, at, down, err := parseAtDown("-kill-ctrl", f.killCtrl)
		if err != nil {
			return nil, err
		}
		if down != 0 {
			return nil, fmt.Errorf("-kill-ctrl: controller crashes are permanent; drop the +downtime")
		}
		if id >= f.shards {
			return nil, fmt.Errorf("-kill-ctrl %d: the run has shards 0..%d", id, f.shards-1)
		}
		spec.CtrlKills = append(spec.CtrlKills, experiments.CtrlKill{Shard: id, At: at})
	}
	if f.killSpine != "" {
		id, at, down, err := parseAtDown("-kill-spine", f.killSpine)
		if err != nil {
			return nil, err
		}
		spec.SpineKills = append(spec.SpineKills, experiments.SpineKill{Spine: id, At: at, Down: down})
	}
	if f.partition != "" {
		idsStr, spanStr, found := strings.Cut(f.partition, "@")
		if !found {
			return nil, fmt.Errorf("bad -partition %q: want ids@seconds+window, e.g. 5,6,7@20+6", f.partition)
		}
		var ids []int
		for _, s := range strings.Split(idsStr, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad -partition shard id %q", s)
			}
			if id < 0 || id >= f.shards {
				return nil, fmt.Errorf("-partition shard %d: the run has shards 0..%d", id, f.shards-1)
			}
			ids = append(ids, id)
		}
		atStr, forStr, found := strings.Cut(spanStr, "+")
		if !found {
			return nil, fmt.Errorf("bad -partition %q: a partition needs a heal window, e.g. @20+6", f.partition)
		}
		at, err1 := strconv.ParseFloat(atStr, 64)
		dur, err2 := strconv.ParseFloat(forStr, 64)
		if err1 != nil || err2 != nil || at < 0 || dur <= 0 {
			return nil, fmt.Errorf("bad -partition window %q: want seconds+window, both positive", spanStr)
		}
		spec.Partitions = append(spec.Partitions, experiments.PartitionSpec{
			Shards: ids, At: sim.Time(at), For: sim.Duration(dur),
		})
	}
	// Reject contradictory timelines (a crash-stop inside a limp window,
	// overlapping outages) with the validator's own error text.
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseAtDown reads "id@seconds" or "id@seconds+downtime".
func parseAtDown(flagName, s string) (id int, at sim.Time, down sim.Duration, err error) {
	idStr, rest, found := strings.Cut(s, "@")
	if !found {
		return 0, 0, 0, fmt.Errorf("bad %s %q: want id@seconds[+downtime], e.g. 7@8+8", flagName, s)
	}
	id, err = strconv.Atoi(idStr)
	if err != nil || id < 0 {
		return 0, 0, 0, fmt.Errorf("bad %s id %q", flagName, idStr)
	}
	atStr, downStr, hasDown := strings.Cut(rest, "+")
	atF, err := strconv.ParseFloat(atStr, 64)
	if err != nil || atF < 0 {
		return 0, 0, 0, fmt.Errorf("bad %s time %q: want a non-negative virtual second", flagName, atStr)
	}
	var downF float64
	if hasDown {
		downF, err = strconv.ParseFloat(downStr, 64)
		if err != nil || downF <= 0 {
			return 0, 0, 0, fmt.Errorf("bad %s downtime %q: want a positive duration", flagName, downStr)
		}
	}
	return id, sim.Time(atF), sim.Duration(downF), nil
}

// utilzTable renders the fluid utilization snapshot, dropping never-loaded
// resources so the dump stays readable on a testbed with hundreds of cores.
func utilzTable(us []fluid.ResourceUtil) *metrics.Table {
	t := &metrics.Table{
		Title:   "Fluid resource utilization (busiest 100ms sample)",
		Headers: []string{"resource", "capacity", "load", "demand", "share", "saturated"},
	}
	for _, u := range us {
		if u.Load <= 0 && u.Demand <= 0 {
			continue
		}
		sat := ""
		if u.Saturated() {
			sat = "yes"
		}
		t.AddRow(u.Name, fmt.Sprintf("%.3g", u.Capacity), fmt.Sprintf("%.3g", u.Load),
			fmt.Sprintf("%.3g", u.Demand), fmt.Sprintf("%.3f", u.Share), sat)
	}
	return t
}

// parseRailAt reads "name@seconds" (e.g. "roce1@5") and resolves the
// named link among the front rails.
func parseRailAt(flagName, s string, links []*fabric.Link) (*fabric.Link, sim.Time, error) {
	name, atStr, found := strings.Cut(s, "@")
	if !found {
		return nil, 0, fmt.Errorf("bad %s %q: want name@seconds, e.g. roce1@5", flagName, s)
	}
	at, err := strconv.ParseFloat(atStr, 64)
	if err != nil || at <= 0 {
		return nil, 0, fmt.Errorf("bad %s time %q: want a positive virtual second", flagName, atStr)
	}
	var names []string
	for _, l := range links {
		if l.Cfg.Name == name {
			return l, sim.Time(at), nil
		}
		names = append(names, l.Cfg.Name)
	}
	return nil, 0, fmt.Errorf("%s: no front rail named %q (have %s)",
		flagName, name, strings.Join(names, ", "))
}

// parseGrayRail reads "name@seconds:severity" (e.g. "roce1@5:0.7") and
// resolves the named link among the front rails.
func parseGrayRail(s string, links []*fabric.Link) (*fabric.Link, sim.Time, float64, error) {
	spec, sevStr, found := strings.Cut(s, ":")
	if !found {
		return nil, 0, 0, fmt.Errorf("bad -gray %q: want name@seconds:severity, e.g. roce1@5:0.7", s)
	}
	link, at, err := parseRailAt("-gray", spec, links)
	if err != nil {
		return nil, 0, 0, err
	}
	sev, err := strconv.ParseFloat(sevStr, 64)
	if err != nil || sev <= 0 || sev >= 1 {
		return nil, 0, 0, fmt.Errorf("bad -gray severity %q: want a fraction in (0, 1) — the sag must be partial, or it is not gray", sevStr)
	}
	return link, at, sev, nil
}

// parseTenants reads "name:weight,name:weight" (weight defaults to 1).
func parseTenants(s string) ([]xfersched.TraceTenant, error) {
	var out []xfersched.TraceTenant
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, ":")
		w := 1.0
		if found {
			var err error
			w, err = strconv.ParseFloat(wstr, 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("bad tenant weight %q", part)
			}
		}
		out = append(out, xfersched.TraceTenant{Name: name, Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xfersched:", err)
	os.Exit(1)
}
