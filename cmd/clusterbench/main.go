// Command clusterbench runs the S5 cluster-scale scenario points and emits
// BENCH_PR6.json: aggregate goodput and scheduler decision latency versus
// host count (100/300/1000 hosts), each point run twice to certify
// bit-identical replay, plus a shard sweep showing decision latency staying
// bounded as the control plane scales out.
//
// Usage:
//
//	clusterbench                 # full sweep → BENCH_PR6.json
//	clusterbench -quick          # 100/300-host points only (CI-sized)
//	clusterbench -o bench.json   # alternate output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"e2edt/internal/experiments"
)

// scalePoint is one hosts-axis measurement.
type scalePoint struct {
	Hosts                int     `json:"hosts"`
	Shards               int     `json:"shards"`
	Tenants              int     `json:"tenants"`
	Jobs                 int     `json:"jobs"`
	VirtualSeconds       float64 `json:"virtual_seconds"`
	WallSeconds          float64 `json:"wall_seconds"`
	AggregateGoodputGbps float64 `json:"aggregate_goodput_gbps"`
	DecisionP50us        float64 `json:"decision_p50_us"`
	DecisionP99us        float64 `json:"decision_p99_us"`
	Decisions            uint64  `json:"decisions"`
	JobsLost             int     `json:"jobs_lost"`
	TraceEvents          uint64  `json:"trace_events"`
	TraceSHA256          string  `json:"trace_sha256"`
	BitIdentical         bool    `json:"bit_identical"`
}

// shardPoint is one shards-axis measurement at fixed cluster size.
type shardPoint struct {
	Shards               int     `json:"shards"`
	AggregateGoodputGbps float64 `json:"aggregate_goodput_gbps"`
	DecisionP50us        float64 `json:"decision_p50_us"`
	DecisionP99us        float64 `json:"decision_p99_us"`
	Decisions            uint64  `json:"decisions"`
	Digests              int     `json:"digests"`
	Adjusts              int     `json:"adjusts"`
}

type report struct {
	PR          string       `json:"pr"`
	Generated   string       `json:"generated"`
	GoVersion   string       `json:"go_version"`
	Description string       `json:"description"`
	Seed        int64        `json:"seed"`
	ScaleCurve  []scalePoint `json:"scale_curve"`
	ShardSweep  []shardPoint `json:"shard_sweep"`
}

func main() {
	out := flag.String("o", "BENCH_PR6.json", "output path")
	quick := flag.Bool("quick", false, "skip the 1000-host point (CI-sized run)")
	seed := flag.Int64("seed", 1337, "scenario seed (S5 uses 1337)")
	flag.Parse()

	rep := report{
		PR:        "PR6",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Description: "Cluster-scale transfer fabric: leaf-spine topology, sharded control plane. " +
			"scale_curve holds per-host load constant (10 tenants / 20 jobs per host, 8 shards, 5% control drop); " +
			"every point runs twice and bit_identical certifies the traces hashed equal. " +
			"shard_sweep fixes 300 hosts / 3000 tenants / 6000 jobs and scales the control plane 1→8 shards; " +
			"decision latencies are wall-clock microseconds around admission passes and never enter the simulation.",
		Seed: *seed,
	}

	hostCounts := []int{100, 300, 1000}
	if *quick {
		hostCounts = hostCounts[:2]
	}
	for _, hosts := range hostCounts {
		spec := experiments.ClusterRunSpec{
			Hosts:   hosts,
			Shards:  8,
			Tenants: 10 * hosts,
			Jobs:    20 * hosts,
			DropPct: 5,
			Seed:    *seed,
		}
		fmt.Fprintf(os.Stderr, "clusterbench: %d hosts (%d jobs) ...\n", hosts, spec.Jobs)
		res := experiments.RunClusterPoint(spec)
		again := experiments.RunClusterPoint(spec)
		r := res.Report
		rep.ScaleCurve = append(rep.ScaleCurve, scalePoint{
			Hosts:                hosts,
			Shards:               spec.Shards,
			Tenants:              r.Tenants,
			Jobs:                 r.Jobs,
			VirtualSeconds:       r.VirtualSeconds,
			WallSeconds:          res.WallSeconds,
			AggregateGoodputGbps: r.AggregateGoodputGbps,
			DecisionP50us:        r.DecisionP50us,
			DecisionP99us:        r.DecisionP99us,
			Decisions:            r.Decisions,
			JobsLost:             r.JobsLost,
			TraceEvents:          res.TraceEvents,
			TraceSHA256:          res.TraceSHA,
			BitIdentical:         res.TraceSHA == again.TraceSHA,
		})
		if res.TraceSHA != again.TraceSHA {
			fmt.Fprintf(os.Stderr, "clusterbench: WARNING: %d-host replay NOT bit-identical\n", hosts)
		}
	}

	for _, shards := range []int{1, 2, 4, 8} {
		spec := experiments.ClusterRunSpec{
			Hosts:   300,
			Shards:  shards,
			Tenants: 3000,
			Jobs:    6000,
			DropPct: 5,
			Seed:    *seed,
		}
		fmt.Fprintf(os.Stderr, "clusterbench: shard sweep K=%d ...\n", shards)
		r := experiments.RunClusterPoint(spec).Report
		rep.ShardSweep = append(rep.ShardSweep, shardPoint{
			Shards:               shards,
			AggregateGoodputGbps: r.AggregateGoodputGbps,
			DecisionP50us:        r.DecisionP50us,
			DecisionP99us:        r.DecisionP99us,
			Decisions:            r.Decisions,
			Digests:              r.Digests,
			Adjusts:              r.Adjusts,
		})
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("clusterbench: wrote %s (%d scale points, %d shard points)\n",
		*out, len(rep.ScaleCurve), len(rep.ShardSweep))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clusterbench:", err)
	os.Exit(1)
}
