// Command fiosim benchmarks the simulated iSER storage area network the
// way §4.2 of the paper does with fio: parallel block I/O against tmpfs
// LUNs, with selectable NUMA policy, operation, block size and queue
// depth.
//
// Usage examples:
//
//	fiosim                                  # tuned read, 4MB, depth 4
//	fiosim -op write -policy default        # untuned writes (3× CPU)
//	fiosim -bs 256KB -depth 8 -luns 6 -t 10
package main

import (
	"flag"
	"fmt"
	"log"

	"e2edt/internal/blockdev"
	"e2edt/internal/fabric"
	"e2edt/internal/fio"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/iscsi"
	"e2edt/internal/iser"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func main() {
	log.SetFlags(0)
	op := flag.String("op", "read", "operation: read or write")
	bs := flag.String("bs", "4MB", "block size")
	depth := flag.Int("depth", 4, "I/O depth per LUN (paper optimum: 4)")
	luns := flag.Int("luns", 6, "logical unit count")
	policy := flag.String("policy", "bind", "NUMA policy: bind or default")
	duration := flag.Float64("t", 5, "run duration in simulated seconds")
	flag.Parse()

	blockSize, err := units.ParseBlockSize(*bs)
	if err != nil {
		log.Fatal(err)
	}
	pol := numa.PolicyBind
	if *policy == "default" {
		pol = numa.PolicyDefault
	}
	scsiOp := iscsi.OpRead
	if *op == "write" {
		scsiOp = iscsi.OpWrite
	}

	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	hi := host.New("initiator", numa.MustNew(s, testbed.BackEndLAN("initiator")))
	ht := host.New("target", numa.MustNew(s, testbed.BackEndLAN("target")))
	var links []*fabric.Link
	for i := 0; i < 2; i++ {
		links = append(links, fabric.Connect(s, testbed.IBFDR56(fmt.Sprintf("ib%d", i)),
			hi, hi.M.Node(i), ht, ht.M.Node(i)))
	}
	tg := iscsi.NewTarget("tgt", ht, iscsi.DefaultTargetConfig(pol))
	for i := 0; i < *luns; i++ {
		var homes []*numa.Node
		if pol == numa.PolicyBind {
			homes = []*numa.Node{ht.M.Node(i % 2)}
		} else {
			homes = ht.M.Nodes
		}
		tg.AddLUN(i, blockdev.NewRamdisk(ht.M, fmt.Sprintf("lun%d", i), 50*units.GB, homes...))
	}
	initProc := hi.NewProcess("open-iscsi", pol, nil)
	mv := iser.NewMover(
		[]iser.Portal{iser.PortalFor(links[0], ht), iser.PortalFor(links[1], ht)},
		initProc.NewThread(), tg, iser.DefaultParams())
	sess := iscsi.NewSession(tg, mv)

	mkBuf := func(lun, slot int) *numa.Buffer {
		if pol == numa.PolicyBind {
			return hi.M.NewBuffer("fio", hi.M.Node(lun%2))
		}
		return hi.M.InterleavedBuffer("fio")
	}
	res, err := fio.Run(eng, sess, mkBuf, fio.JobSpec{
		Name: "fiosim", Op: scsiOp, BlockSize: blockSize,
		IODepth: *depth, Duration: sim.Duration(*duration),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res[0])
	rep := ht.HostCPUReport()
	fmt.Printf("target CPU: %.0f%% (%s)\n", rep.TotalPercent(*duration), rep)
}
