module e2edt

go 1.22
