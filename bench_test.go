// Package e2edt's root benchmark harness regenerates every table and
// figure in the paper's evaluation as a Go benchmark, reporting the
// headline quantity of each artifact as a custom metric (Gbps, GB/s,
// CPU %, gain %). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark iteration performs one full (virtual-time) run of the
// corresponding experiment, so wall-clock ns/op measures simulator
// performance while the custom metrics carry the reproduced results.
package e2edt

import (
	"math"
	"testing"

	"e2edt/internal/core"
	"e2edt/internal/experiments"
	"e2edt/internal/gridftp"
	"e2edt/internal/iperf"
	"e2edt/internal/iscsi"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/rftp"
	"e2edt/internal/stream"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

// BenchmarkMotivatingIperf regenerates §2.3 / E1: bi-directional iperf over
// 3×40G RoCE, default vs NUMA-tuned (paper: 83.5 vs 91.8 Gbps).
func BenchmarkMotivatingIperf(b *testing.B) {
	var def, bind float64
	for i := 0; i < b.N; i++ {
		for _, pol := range []numa.Policy{numa.PolicyDefault, numa.PolicyBind} {
			p := testbed.NewMotivatingPair()
			cfg := iperf.DefaultConfig()
			cfg.Policy = pol
			rep := iperf.Run(p.Links, cfg)
			if pol == numa.PolicyBind {
				bind = units.ToGbps(rep.Aggregate)
			} else {
				def = units.ToGbps(rep.Aggregate)
			}
		}
	}
	b.ReportMetric(def, "default-Gbps")
	b.ReportMetric(bind, "tuned-Gbps")
	b.ReportMetric((bind/def-1)*100, "gain-%")
}

// BenchmarkStreamTriad regenerates §2.3 / E2: STREAM Triad (paper: 50 GB/s).
func BenchmarkStreamTriad(b *testing.B) {
	var bw float64
	for i := 0; i < b.N; i++ {
		p := testbed.NewMotivatingPair()
		res := stream.Run(p.A, stream.DefaultConfig(p.A))
		bw = units.ToGBps(res.Bandwidth)
	}
	b.ReportMetric(bw, "Triad-GB/s")
}

// BenchmarkCostBreakdown40G regenerates Figures 3–4: CPU cost of a 40 Gbps
// memory-to-memory transfer (paper: RFTP 122% vs TCP 642%).
func BenchmarkCostBreakdown40G(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.CostBreakdown40G()
	}
	_ = res
}

// BenchmarkISERBandwidth regenerates Figure 7: iSER bandwidth, default vs
// NUMA tuning (paper: read +7.6%, write +19%).
func BenchmarkISERBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ISERBandwidth()
	}
}

// BenchmarkISERCPU regenerates Figure 8: iSER target CPU (paper: default
// writes ≈3× tuned CPU).
func BenchmarkISERCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ISERCPU()
	}
}

// BenchmarkEndToEndThroughput regenerates Figure 9: steady end-to-end
// throughput (paper: RFTP 91 Gbps = 96% of the 94.8 ceiling; GridFTP 29).
func BenchmarkEndToEndThroughput(b *testing.B) {
	var rftpG, gridG float64
	for i := 0; i < b.N; i++ {
		sysR, err := core.NewSystem(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		trR, err := sysR.StartRFTP(core.Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
		if err != nil {
			b.Fatal(err)
		}
		sysR.Engine().RunFor(60)
		rftpG = units.ToGbps(trR.Transferred() / 60)

		sysG, err := core.NewSystem(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		trG, err := sysG.StartGridFTP(core.Forward, gridftp.DefaultConfig(), math.Inf(1), nil)
		if err != nil {
			b.Fatal(err)
		}
		sysG.Engine().RunFor(60)
		gridG = units.ToGbps(trG.Transferred() / 60)
	}
	b.ReportMetric(rftpG, "RFTP-Gbps")
	b.ReportMetric(gridG, "GridFTP-Gbps")
	b.ReportMetric(rftpG/gridG, "ratio")
}

// BenchmarkEndToEndCPU regenerates Figure 10: front-end CPU breakdown.
func BenchmarkEndToEndCPU(b *testing.B) {
	var rftpCPU, gridCPU float64
	for i := 0; i < b.N; i++ {
		sysR, _ := core.NewSystem(core.DefaultOptions())
		sysR.StartRFTP(core.Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
		sysR.Engine().RunFor(30)
		rftpCPU = sysR.A.Front.HostCPUReport().TotalPercent(30)

		sysG, _ := core.NewSystem(core.DefaultOptions())
		sysG.StartGridFTP(core.Forward, gridftp.DefaultConfig(), math.Inf(1), nil)
		sysG.Engine().RunFor(30)
		gridCPU = sysG.A.Front.HostCPUReport().TotalPercent(30)
	}
	b.ReportMetric(rftpCPU, "RFTP-CPU%")
	b.ReportMetric(gridCPU, "GridFTP-CPU%")
}

// BenchmarkBiDirectional regenerates Figure 11: bi-directional gain
// (paper: RFTP +83%, GridFTP +33%).
func BenchmarkBiDirectional(b *testing.B) {
	var rGain, gGain float64
	for i := 0; i < b.N; i++ {
		run := func(bidi bool, grid bool) float64 {
			sys, _ := core.NewSystem(core.DefaultOptions())
			dirs := []core.Direction{core.Forward}
			if bidi {
				dirs = append(dirs, core.Reverse)
			}
			counters := make([]func() float64, 0, 2)
			for _, d := range dirs {
				if grid {
					tr, _ := sys.StartGridFTP(d, gridftp.DefaultConfig(), math.Inf(1), nil)
					counters = append(counters, tr.Transferred)
				} else {
					tr, _ := sys.StartRFTP(d, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
					counters = append(counters, tr.Transferred)
				}
			}
			sys.Engine().RunFor(30)
			sum := 0.0
			for _, c := range counters {
				sum += c()
			}
			return sum / 30
		}
		rGain = (run(true, false)/run(false, false) - 1) * 100
		gGain = (run(true, true)/run(false, true) - 1) * 100
	}
	b.ReportMetric(rGain, "RFTP-gain-%")
	b.ReportMetric(gGain, "GridFTP-gain-%")
}

// BenchmarkBiDirectionalCPU regenerates Figure 12.
func BenchmarkBiDirectionalCPU(b *testing.B) {
	var cpu float64
	for i := 0; i < b.N; i++ {
		sys, _ := core.NewSystem(core.DefaultOptions())
		sys.StartGridFTP(core.Forward, gridftp.DefaultConfig(), math.Inf(1), nil)
		sys.StartGridFTP(core.Reverse, gridftp.DefaultConfig(), math.Inf(1), nil)
		sys.Engine().RunFor(30)
		cpu = sys.A.Front.HostCPUReport().TotalPercent(30)
	}
	b.ReportMetric(cpu, "GridFTP-bidi-CPU%")
}

// BenchmarkWANBandwidth regenerates Figure 13: RFTP over the ANI loop
// (paper: 97% of raw 40 Gbps at large blocks).
func BenchmarkWANBandwidth(b *testing.B) {
	var peak, starved float64
	for i := 0; i < b.N; i++ {
		point := func(streams int, bs int64) float64 {
			w := testbed.NewWAN()
			cfg := rftp.DefaultConfig()
			cfg.Streams = streams
			cfg.BlockSize = bs
			tr, err := rftp.Start(w.LinkSlice(), w.A, cfg, rftp.DefaultParams(),
				pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
			if err != nil {
				b.Fatal(err)
			}
			w.Eng.RunFor(20)
			return units.ToGbps(tr.Transferred() / 20)
		}
		starved = point(1, 64*units.KB)
		peak = point(8, 16*units.MB)
	}
	b.ReportMetric(peak, "peak-Gbps")
	b.ReportMetric(starved, "64KB-1stream-Gbps")
	b.ReportMetric(peak/40*100, "utilization-%")
}

// BenchmarkWANCPU regenerates Figure 14: WAN sender/receiver CPU.
func BenchmarkWANCPU(b *testing.B) {
	var snd, rcv float64
	for i := 0; i < b.N; i++ {
		w := testbed.NewWAN()
		cfg := rftp.DefaultConfig()
		cfg.Streams = 8
		cfg.BlockSize = 4 * units.MB
		tr, err := rftp.Start(w.LinkSlice(), w.A, cfg, rftp.DefaultParams(),
			pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
		if err != nil {
			b.Fatal(err)
		}
		w.Eng.RunFor(20)
		tr.Stop()
		snd = w.A.HostCPUReport().TotalPercent(20)
		rcv = w.B.HostCPUReport().TotalPercent(20)
	}
	b.ReportMetric(snd, "sender-CPU%")
	b.ReportMetric(rcv, "receiver-CPU%")
}

// BenchmarkFioCeiling regenerates the §4.3 fio probe (paper: write path
// narrowest at 94.8 Gbps).
func BenchmarkFioCeiling(b *testing.B) {
	var write float64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		w, err := sys.MeasureCeiling(sys.B, iscsi.OpWrite, 5)
		if err != nil {
			b.Fatal(err)
		}
		write = units.ToGbps(w)
	}
	b.ReportMetric(write, "write-ceiling-Gbps")
}

// BenchmarkSSDThermal regenerates the §4.1 ablation (paper: throttles to
// ≈500 MB/s under sustained I/O).
func BenchmarkSSDThermal(b *testing.B) {
	var throttled float64
	for i := 0; i < b.N; i++ {
		res := experiments.SSDThermalThrottle()
		throttled = res.Series[0].Values[res.Series[0].Len()-1]
	}
	b.ReportMetric(throttled, "throttled-MB/s")
}

// BenchmarkTestbedTable regenerates Table 1.
func BenchmarkTestbedTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TestbedTable()
	}
}

// BenchmarkSolver measures the fluid solver itself on the full LAN system
// (ablation: simulator cost per transfer setup + 10 simulated seconds).
func BenchmarkSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, _ := core.NewSystem(core.DefaultOptions())
		sys.StartRFTP(core.Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
		sys.Engine().RunFor(10)
	}
}
