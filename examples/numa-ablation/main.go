// numa-ablation walks through every place the paper applies NUMA tuning
// and shows the effect of turning it off:
//
//  1. iperf front-end streams (§2.3): thread binding removes remote-access
//     penalties from kernel copies.
//  2. STREAM (§2.3): unpinned threads leak traffic across the socket
//     interconnect.
//  3. iSER back end (Figures 7–8): per-node target processes with
//     mpol-pinned tmpfs avoid cross-socket copies and coherency storms.
//  4. Full end-to-end transfer: the compounded effect.
//
// Each sweep also runs numa.PolicyAuto, where nothing is hand-bound:
// internal/placer starts from the default spread layout and has to
// rediscover the paper's tuning online by what-if scoring against the
// fluid model (see DESIGN.md § Adaptive placement).
package main

import (
	"fmt"
	"log"
	"math"

	"e2edt/internal/core"
	"e2edt/internal/experiments"
	"e2edt/internal/iperf"
	"e2edt/internal/numa"
	"e2edt/internal/rftp"
	"e2edt/internal/stream"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== 1. iperf thread binding (§2.3) ==")
	for _, pol := range []numa.Policy{numa.PolicyDefault, numa.PolicyBind, numa.PolicyAuto} {
		p := testbed.NewMotivatingPair()
		cfg := iperf.DefaultConfig()
		cfg.Policy = pol
		rep := iperf.Run(p.Links, cfg)
		note := ""
		if pol == numa.PolicyAuto {
			note = fmt.Sprintf("  (%d placements, %d migrations)", rep.Placements, rep.Migrations)
		}
		fmt.Printf("  %-8s %s%s\n", pol, units.FormatRate(rep.Aggregate), note)
	}

	fmt.Println("\n== 2. STREAM Triad placement (§2.3) ==")
	for _, pol := range []numa.Policy{numa.PolicyDefault, numa.PolicyBind} {
		p := testbed.NewMotivatingPair()
		cfg := stream.DefaultConfig(p.A)
		cfg.Policy = pol
		res := stream.Run(p.A, cfg)
		fmt.Printf("  %-8s %.1f GB/s\n", pol, units.ToGBps(res.Bandwidth))
	}

	fmt.Println("\n== 3. iSER target tuning (Figures 7–8) ==")
	res, err := experiments.Run("F7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Tables[0].String())

	fmt.Println("\n== 4. end-to-end compound effect ==")
	for _, pol := range []numa.Policy{numa.PolicyDefault, numa.PolicyBind, numa.PolicyAuto} {
		opt := core.DefaultOptions()
		opt.Policy = pol
		sys, err := core.NewSystem(opt)
		if err != nil {
			log.Fatal(err)
		}
		rcfg := rftp.DefaultConfig()
		rcfg.Policy = pol
		tr, err := sys.StartRFTP(core.Forward, rcfg, rftp.DefaultParams(), math.Inf(1), nil)
		if err != nil {
			log.Fatal(err)
		}
		sys.Engine().RunFor(20)
		note := ""
		if sys.Placer != nil {
			note = fmt.Sprintf("  (%d placements, %d migrations)",
				sys.Placer.Placements(), sys.Placer.Migrations())
		}
		fmt.Printf("  %-8s RFTP end-to-end %s%s\n", pol, units.FormatRate(tr.Transferred()/20), note)
	}
}
