// wan-transfer reproduces the paper's §4.4 scenario (Figures 13–14): RFTP
// memory-to-memory transfers over the DOE ANI 4000-mile loop (40 Gbps
// RoCE, 95 ms RTT, ≈475 MB bandwidth-delay product), sweeping block size
// and stream count, and comparing against a TCP baseline with default
// socket buffers to show why RDMA with credit pipelining wins on long fat
// pipes.
package main

import (
	"fmt"
	"log"
	"math"

	"e2edt/internal/pipe"
	"e2edt/internal/rftp"
	"e2edt/internal/tcpstack"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func main() {
	log.SetFlags(0)
	const window = 20.0

	fmt.Printf("ANI loop: 40 Gbps, RTT 95 ms, BDP %s\n\n",
		units.FormatBytes(int64(testbed.NewWAN().Link.BDP())))

	fmt.Println("RFTP payload bandwidth (Gbps) — Figure 13:")
	blockSizes := []int64{64 * units.KB, 256 * units.KB, units.MB, 4 * units.MB, 16 * units.MB}
	fmt.Printf("%8s", "streams")
	for _, bs := range blockSizes {
		fmt.Printf("%9s", units.FormatBytes(bs))
	}
	fmt.Println()
	for _, streams := range []int{1, 2, 4, 8} {
		fmt.Printf("%8d", streams)
		for _, bs := range blockSizes {
			w := testbed.NewWAN()
			cfg := rftp.DefaultConfig()
			cfg.Streams = streams
			cfg.BlockSize = bs
			tr, err := rftp.Start(w.LinkSlice(), w.A, cfg, rftp.DefaultParams(),
				pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
			if err != nil {
				log.Fatal(err)
			}
			w.Eng.RunFor(window)
			fmt.Printf("%9.2f", units.ToGbps(tr.Transferred()/window))
			tr.Stop()
		}
		fmt.Println()
	}

	// TCP baseline: a cubic stream with 64 MB socket buffers is window
	// limited to buf/RTT on this path — the "challenging for traditional
	// protocols" point of §4.4.
	w := testbed.NewWAN()
	snd := w.A.NewProcess("tcp", 0, nil).NewThread()
	rcv := w.B.NewProcess("tcp", 0, nil).NewThread()
	p := tcpstack.DefaultParams()
	p.RampTime = 2 // cubic convergence
	conn := tcpstack.Dial(w.Link, w.Link.A, snd, rcv, p)
	tr := conn.Stream(math.Inf(1), tcpstack.FlowOptions{}, nil)
	w.Eng.RunFor(window)
	w.Sim.Sync()
	fmt.Printf("\nTCP baseline (64MB socket buffer, cubic): %s — window-bound at buf/RTT\n",
		units.FormatRate(tr.Transferred()/window))
	fmt.Println("paper: RFTP utilizes 97% of the raw 40 Gbps at large block sizes")
}
