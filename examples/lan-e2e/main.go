// lan-e2e reproduces the paper's §4.3 scenario (Figures 9–12): sustained
// end-to-end transfers through the full LAN testbed, RFTP versus GridFTP,
// unidirectional and bi-directional, with throughput sampled over time and
// CPU profiles reported per host.
package main

import (
	"fmt"
	"log"
	"math"

	"e2edt/internal/core"
	"e2edt/internal/gridftp"
	"e2edt/internal/host"
	"e2edt/internal/metrics"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

func main() {
	log.SetFlags(0)
	const duration = 300.0 // five simulated minutes per run
	const sample = 10.0

	fmt.Println("== unidirectional (Figure 9/10) ==")
	rftpUni := runRFTP(false, duration, sample)
	gridUni := runGridFTP(false, duration, sample)

	fmt.Println("\n== bi-directional (Figure 11/12) ==")
	rftpBidi := runRFTP(true, duration, sample)
	gridBidi := runGridFTP(true, duration, sample)

	fmt.Println("\n== summary ==")
	fmt.Printf("RFTP: uni %.1f Gbps → bidi %.1f Gbps (%+.0f%%; paper +83%%)\n",
		rftpUni, rftpBidi, (rftpBidi/rftpUni-1)*100)
	fmt.Printf("GridFTP: uni %.1f Gbps → bidi %.1f Gbps (%+.0f%%; paper +33%%)\n",
		gridUni, gridBidi, (gridBidi/gridUni-1)*100)
	fmt.Printf("RFTP/GridFTP unidirectional ratio: %.1f× (paper ≈3.1×)\n", rftpUni/gridUni)
}

func runRFTP(bidi bool, duration, sample float64) float64 {
	sys, err := core.NewSystem(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var trs []*rftp.Transfer
	dirs := []core.Direction{core.Forward}
	if bidi {
		dirs = append(dirs, core.Reverse)
	}
	for _, d := range dirs {
		tr, err := sys.StartRFTP(d, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
		if err != nil {
			log.Fatal(err)
		}
		trs = append(trs, tr)
	}
	total := func() float64 {
		sum := 0.0
		for _, tr := range trs {
			sum += tr.Transferred()
		}
		return sum
	}
	return drive(sys, "RFTP", total, duration, sample)
}

func runGridFTP(bidi bool, duration, sample float64) float64 {
	sys, err := core.NewSystem(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var trs []*gridftp.Transfer
	dirs := []core.Direction{core.Forward}
	if bidi {
		dirs = append(dirs, core.Reverse)
	}
	for _, d := range dirs {
		tr, err := sys.StartGridFTP(d, gridftp.DefaultConfig(), math.Inf(1), nil)
		if err != nil {
			log.Fatal(err)
		}
		trs = append(trs, tr)
	}
	total := func() float64 {
		sum := 0.0
		for _, tr := range trs {
			sum += tr.Transferred()
		}
		return sum
	}
	return drive(sys, "GridFTP", total, duration, sample)
}

// drive runs the simulation, printing a sparkline-style sampled series and
// the per-host CPU profile, and returns the steady-state Gbps.
func drive(sys *core.System, name string, counter func() float64, duration, sample float64) float64 {
	s := metrics.NewSampler(sys.Engine(), name, sim.Duration(sample), counter)
	sys.Engine().RunFor(sim.Duration(duration))
	s.Stop()
	gbps := units.ToGbps(s.Series.TailMean(0.8))
	fmt.Printf("%-8s %.1f Gbps steady", name, gbps)
	fmt.Printf("  [samples: first %.1f, mean %.1f, last %.1f]\n",
		units.ToGbps(s.Series.Values[0]), units.ToGbps(s.Series.Mean()),
		units.ToGbps(s.Series.Values[s.Series.Len()-1]))
	for _, h := range []*host.Host{sys.A.Front, sys.B.Front} {
		rep := h.HostCPUReport()
		fmt.Printf("  %-10s CPU %.0f%% (%s)\n", h.Name, rep.TotalPercent(duration), rep)
	}
	return gbps
}
