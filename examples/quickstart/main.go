// Quickstart: build the paper's end-to-end system (two NUMA front ends,
// two iSER storage-area networks, 3×40 Gbps fabric) and move a 100 GB file
// from the source SAN to the destination SAN with RFTP.
package main

import (
	"fmt"
	"log"

	"e2edt/internal/core"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

func main() {
	log.SetFlags(0)

	// 1. Assemble the system: NUMA-tuned everywhere (the paper's
	//    configuration). core.DefaultOptions gives six 50 GB tmpfs LUNs
	//    per back end and a 140 GB pre-created dataset.
	sys, err := core.NewSystem(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Launch an RFTP transfer of 100 GB from side A's dataset file to
	//    side B's output file: SAN read → 3×40G RDMA fabric → SAN write.
	var doneAt sim.Time
	tr, err := sys.StartRFTP(core.Forward, rftp.DefaultConfig(), rftp.DefaultParams(),
		100*float64(units.GB), func(now sim.Time) { doneAt = now })
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the simulation to completion (virtual time).
	sys.Engine().Run()

	fmt.Printf("transferred %s in %.2f simulated seconds (%s)\n",
		units.FormatBytes(int64(tr.Transferred())), float64(doneAt),
		units.FormatRate(tr.Bandwidth()))
	el := float64(doneAt)
	fmt.Printf("front-end CPU: sender %.0f%%, receiver %.0f%% of one core\n",
		sys.A.Front.HostCPUReport().TotalPercent(el),
		sys.B.Front.HostCPUReport().TotalPercent(el))
	fmt.Printf("back-end CPU: source store %.0f%%, sink store %.0f%%\n",
		sys.A.Store.HostCPUReport().TotalPercent(el),
		sys.B.Store.HostCPUReport().TotalPercent(el))
}
