package testbed

import (
	"math"
	"testing"

	"e2edt/internal/units"
)

func TestConfigsValidate(t *testing.T) {
	for _, cfg := range []interface{ Validate() error }{
		FrontEndLAN("fe"), BackEndLAN("be"), WANHost("wan"),
	} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset invalid: %v", err)
		}
	}
}

func TestLinkPresets(t *testing.T) {
	roce := RoCE40("r")
	if roce.Rate != units.FromGbps(40) || roce.MTU != 9000 {
		t.Fatal("RoCE preset wrong")
	}
	ib := IBFDR56("i")
	if ib.Rate != units.FromGbps(56) || ib.MTU != 65520 {
		t.Fatal("FDR preset wrong")
	}
	wan := ANIWAN("w")
	if wan.RTT != 0.095 {
		t.Fatal("ANI RTT wrong")
	}
}

func TestLANShape(t *testing.T) {
	tb := NewLAN()
	if len(tb.FrontLinks) != 3 {
		t.Fatalf("front links = %d, want 3", len(tb.FrontLinks))
	}
	if len(tb.SrcSAN) != 2 || len(tb.DstSAN) != 2 {
		t.Fatal("SAN links wrong")
	}
	// Front links join sender and receiver.
	for _, l := range tb.FrontLinks {
		if l.A.Host != tb.Sender || l.B.Host != tb.Receiver {
			t.Fatal("front link endpoints wrong")
		}
	}
	for _, l := range tb.SrcSAN {
		if l.A.Host != tb.Sender || l.B.Host != tb.SrcStore {
			t.Fatal("src SAN endpoints wrong")
		}
	}
	// Aggregate front-end capacity is 120 Gbps.
	total := 0.0
	for _, l := range tb.FrontLinks {
		total += l.Cfg.Rate
	}
	if math.Abs(total-units.FromGbps(120)) > 1 {
		t.Fatalf("front capacity = %v", total)
	}
}

func TestWANShape(t *testing.T) {
	w := NewWAN()
	if w.Link.BDP() < 450e6 || w.Link.BDP() > 500e6 {
		t.Fatalf("BDP = %v, want ≈475 MB", w.Link.BDP())
	}
	if len(w.LinkSlice()) != 1 {
		t.Fatal("LinkSlice wrong")
	}
}

func TestMotivatingPairShape(t *testing.T) {
	p := NewMotivatingPair()
	if len(p.Links) != 3 {
		t.Fatal("motivating pair needs 3 links")
	}
	if p.A.M.TotalCores() != 16 || p.B.M.TotalCores() != 16 {
		t.Fatal("front-end hosts need 16 cores")
	}
}
