// Package testbed instantiates the paper's testbeds (Table 1, Figures 5–6)
// with calibrated model constants:
//
//   - Front-end LAN hosts: IBM X3650 M4, 2× Intel E5-2660 (2.2 GHz, 16
//     cores), 128 GB, three 40 Gbps RoCE adapters.
//   - Back-end LAN hosts: 2× E5-2650 (2.0 GHz), 384 GB (tmpfs LUN store),
//     two 56 Gbps FDR InfiniBand adapters.
//   - WAN hosts: 2× E5-2670 (2.9 GHz, 12 cores), 64 GB, one 40 Gbps RoCE
//     adapter over the DOE ANI 4000-mile loop (RTT ≈ 95 ms).
//
// Calibration notes (see EXPERIMENTS.md): per-node memory bandwidth makes
// STREAM Triad peak 50 GB/s on front-end hosts (§2.3); effective QPI
// bandwidth and the coherency constants are set so that NUMA binding gains
// ≈8% on iSER reads, ≈19% on iSER writes and ≈3× write CPU (Figures 7–8);
// the back-end coherency penalty is higher than the front-end one because
// tmpfs I/O sweeps gigabytes (every store misses cache and invalidates
// remotely) while socket buffers stay cache-hot.
package testbed

import (
	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// FrontEndLAN returns the NUMA model of a front-end LAN host (E5-2660).
func FrontEndLAN(name string) numa.Config {
	return numa.Config{
		Name: name, Nodes: 2, CoresPerNode: 8, CoreHz: 2.2e9,
		MemBandwidthPerNode:        25 * units.GBps, // STREAM Triad 50 GB/s machine-wide
		InterconnectBandwidth:      11 * units.GBps,
		RemoteAccessPenalty:        1.2,
		CoherencyWritePenalty:      1.3,
		CoherencySnoopBytesPerByte: 0.3,
		MemBytes:                   128 * units.GB,
	}
}

// BackEndLAN returns the NUMA model of a back-end storage host (E5-2650).
func BackEndLAN(name string) numa.Config {
	return numa.Config{
		Name: name, Nodes: 2, CoresPerNode: 8, CoreHz: 2.0e9,
		MemBandwidthPerNode:        22 * units.GBps,
		InterconnectBandwidth:      11.5 * units.GBps,
		RemoteAccessPenalty:        1.4,
		CoherencyWritePenalty:      8, // tmpfs-sweep write invalidations (≈3× process CPU)
		CoherencySnoopBytesPerByte: 0.3,
		MemBytes:                   384 * units.GB,
	}
}

// WANHost returns the NUMA model of a DOE ANI testbed host (E5-2670).
func WANHost(name string) numa.Config {
	return numa.Config{
		Name: name, Nodes: 2, CoresPerNode: 6, CoreHz: 2.9e9,
		MemBandwidthPerNode:        21 * units.GBps,
		InterconnectBandwidth:      11 * units.GBps,
		RemoteAccessPenalty:        1.2,
		CoherencyWritePenalty:      1.3,
		CoherencySnoopBytesPerByte: 0.3,
		MemBytes:                   64 * units.GB,
	}
}

// RoCE40 returns a 40 Gbps RoCE QDR link config (LAN: RTT 0.166 ms,
// MTU 9000).
func RoCE40(name string) fabric.Config {
	return fabric.Config{
		Name: name, Rate: units.FromGbps(40), RTT: 0.166e-3,
		MTU: 9000, HeaderBytes: 90,
	}
}

// IBFDR56 returns a 56 Gbps InfiniBand FDR link config (RTT 0.144 ms,
// MTU 65520).
func IBFDR56(name string) fabric.Config {
	return fabric.Config{
		Name: name, Rate: units.FromGbps(56), RTT: 0.144e-3,
		MTU: 65520, HeaderBytes: 80,
	}
}

// ANIWAN returns the DOE ANI 4000-mile loopback link (Figure 6): 40 Gbps
// RoCE, RTT ≈ 95 ms, BDP ≈ 475 MB.
func ANIWAN(name string) fabric.Config {
	return fabric.Config{
		Name: name, Rate: units.FromGbps(40), RTT: 0.095,
		MTU: 9000, HeaderBytes: 90,
	}
}

// LAN is the full Figure 5 testbed: a sender/receiver front-end pair joined
// by three RoCE links, each front end attached to its own back-end storage
// host by two FDR links.
type LAN struct {
	Eng *sim.Engine
	Sim *fluid.Sim

	// Sender and Receiver are the front-end hosts (RFTP client/server and
	// iSER initiators).
	Sender, Receiver *host.Host
	// SrcStore and DstStore are the back-end iSER target hosts.
	SrcStore, DstStore *host.Host

	// FrontLinks are the 3×40 Gbps RoCE links between the front ends.
	FrontLinks []*fabric.Link
	// SrcSAN and DstSAN are the 2×56 Gbps FDR links to each back end.
	SrcSAN, DstSAN []*fabric.Link
}

// NewLAN builds the LAN testbed on a fresh engine.
func NewLAN() *LAN {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	tb := &LAN{Eng: eng, Sim: s}
	tb.Sender = host.New("sender", numa.MustNew(s, FrontEndLAN("sender")))
	tb.Receiver = host.New("receiver", numa.MustNew(s, FrontEndLAN("receiver")))
	tb.SrcStore = host.New("src-store", numa.MustNew(s, BackEndLAN("src-store")))
	tb.DstStore = host.New("dst-store", numa.MustNew(s, BackEndLAN("dst-store")))

	// Three RoCE NICs per front end: two on node 0, one on node 1
	// (eight-lane PCIe 3.0 slots split across sockets).
	nodeFor := []int{0, 1, 0}
	for i := 0; i < 3; i++ {
		cfg := RoCE40(fmtName("roce", i))
		tb.FrontLinks = append(tb.FrontLinks, fabric.Connect(
			s, cfg,
			tb.Sender, tb.Sender.M.Node(nodeFor[i]),
			tb.Receiver, tb.Receiver.M.Node(nodeFor[i])))
	}
	// Two FDR links per SAN, one per NUMA node pair.
	for i := 0; i < 2; i++ {
		tb.SrcSAN = append(tb.SrcSAN, fabric.Connect(
			s, IBFDR56(fmtName("src-ib", i)),
			tb.Sender, tb.Sender.M.Node(i),
			tb.SrcStore, tb.SrcStore.M.Node(i)))
		tb.DstSAN = append(tb.DstSAN, fabric.Connect(
			s, IBFDR56(fmtName("dst-ib", i)),
			tb.Receiver, tb.Receiver.M.Node(i),
			tb.DstStore, tb.DstStore.M.Node(i)))
	}
	return tb
}

// WAN is the Figure 6 testbed: two hosts across the ANI loop.
type WAN struct {
	Eng  *sim.Engine
	Sim  *fluid.Sim
	A, B *host.Host
	Link *fabric.Link
}

// NewWAN builds the WAN testbed on a fresh engine.
func NewWAN() *WAN {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	w := &WAN{Eng: eng, Sim: s}
	w.A = host.New("nersc", numa.MustNew(s, WANHost("nersc")))
	w.B = host.New("anl", numa.MustNew(s, WANHost("anl")))
	w.Link = fabric.Connect(s, ANIWAN("ani"), w.A, w.A.M.Node(0), w.B, w.B.M.Node(0))
	return w
}

// MotivatingPair is the §2.3 testbed: two front-end-class hosts joined by
// three 40 Gbps RoCE links (no storage back end).
type MotivatingPair struct {
	Eng   *sim.Engine
	Sim   *fluid.Sim
	A, B  *host.Host
	Links []*fabric.Link
}

// NewMotivatingPair builds the §2.3 testbed.
func NewMotivatingPair() *MotivatingPair {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	p := &MotivatingPair{Eng: eng, Sim: s}
	p.A = host.New("a", numa.MustNew(s, FrontEndLAN("a")))
	p.B = host.New("b", numa.MustNew(s, FrontEndLAN("b")))
	nodeFor := []int{0, 1, 0}
	for i := 0; i < 3; i++ {
		p.Links = append(p.Links, fabric.Connect(
			s, RoCE40(fmtName("roce", i)),
			p.A, p.A.M.Node(nodeFor[i]),
			p.B, p.B.M.Node(nodeFor[i])))
	}
	return p
}

func fmtName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// LinkSlice returns the WAN link as a one-element slice, for APIs that
// take link sets.
func (w *WAN) LinkSlice() []*fabric.Link { return []*fabric.Link{w.Link} }
