// Package xfersched is a multi-tenant transfer scheduling service layered
// on core.System: the missing tier between "one dataset, two endpoints"
// (the paper's RFTP) and a datacenter transfer service that multiplexes
// many tenants' jobs over shared RDMA resources.
//
// The scheduler accepts a stream of submitted jobs (tenant, dataset size,
// protocol RFTP or GridFTP, direction, priority, optional deadline) and
// drives them through three mechanisms, all in deterministic virtual time:
//
//   - Admission control: at most MaxConcurrent jobs run at once and each
//     admitted job reserves a nominal slice of the front-end fabric
//     (PerJobBW against AggregateBW); everything else waits in a
//     priority + earliest-deadline + FIFO queue. Per-job SAN files are
//     allocated at admission, so filesystem capacity is a third admission
//     dimension.
//
//   - Weighted fair-share arbitration: a global budget of RFTP streams is
//     re-divided among the running jobs whenever one starts or finishes.
//     Each tenant's weight is split across its active jobs, so a tenant
//     with twice the weight holds twice the streams regardless of how many
//     jobs it queues. Jobs whose allocation changes are checkpointed
//     (bytes moved so far) and restarted from that byte offset with the
//     new stream count, paying a fresh session handshake — rebalancing has
//     a cost, exactly as it would on the wire.
//
//   - Failure-driven retry: a watchdog samples per-job progress; a job
//     that moves nothing for StallAfter (a failed fabric.Link, a dark SAN)
//     is stopped, its completed bytes are folded into the job, and it is
//     requeued with exponential backoff in virtual time. Retried attempts
//     resume from the byte offset already moved (rftp.Params.StartOffset),
//     so no byte is paid for twice.
//
// Determinism: the scheduler introduces no randomness of its own and
// iterates only ordered structures, so the same job trace on the same
// system produces a bit-identical schedule (see determinism_test.go).
package xfersched

import (
	"fmt"
	"math"
	"sort"

	"e2edt/internal/core"
	"e2edt/internal/fabric"
	"e2edt/internal/faults"
	"e2edt/internal/fsim"
	"e2edt/internal/gridftp"
	"e2edt/internal/metrics"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
)

// Protocol selects the transfer tool a job uses.
type Protocol int

const (
	// ProtoRFTP moves the job with the paper's RDMA protocol.
	ProtoRFTP Protocol = iota
	// ProtoGridFTP moves the job with the TCP baseline tool.
	ProtoGridFTP
)

// String names the protocol.
func (p Protocol) String() string {
	if p == ProtoGridFTP {
		return "gridftp"
	}
	return "rftp"
}

// State is a job's lifecycle position.
type State int

const (
	// StateQueued: submitted, waiting for admission.
	StateQueued State = iota
	// StateRunning: admitted, transfer in flight.
	StateRunning
	// StateBackoff: stalled, waiting out its retry delay.
	StateBackoff
	// StateDone: all bytes delivered.
	StateDone
	// StateLost: gave up after MaxAttempts stalls.
	StateLost
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateBackoff:
		return "backoff"
	case StateDone:
		return "done"
	default:
		return "lost"
	}
}

// JobSpec describes one submitted transfer job.
type JobSpec struct {
	// ID uniquely names the job (also names its SAN files).
	ID string
	// Tenant is the submitting tenant; unknown tenants get weight 1.
	Tenant string
	// Protocol selects RFTP or GridFTP.
	Protocol Protocol
	// Dir is the transfer direction across the front-end fabric.
	Dir core.Direction
	// Bytes is the dataset size. Zero is legal (an empty object's job):
	// the job completes at admission without touching the wire.
	Bytes int64
	// Files is the dataset's file count (granularity metadata carried into
	// reports; the transfer itself moves the aggregate byte stream).
	Files int
	// Objects, when non-empty, makes this a coalesced object-batch job
	// (RFTP only): the window moves every object over one session with
	// in-band delimiting and exactly-once per-object completion. Bytes is
	// derived from the object sizes; zero-size objects are legal. Batch
	// jobs hold a fixed stream count (like GridFTP jobs, they are not
	// rebalanced — a restart would discard partial-object progress), and
	// retries resume from the undelivered object set.
	Objects []rftp.ObjectSpec
	// OnObject observes per-object completions of a batch job, exactly
	// once per object index across all attempts.
	OnObject func(i int, now sim.Time)
	// Priority orders the queue; higher runs first.
	Priority int
	// Deadline is a relative completion target (0 = none). Missing it is
	// recorded, not enforced.
	Deadline sim.Duration
}

// Job is a submitted job's live state.
type Job struct {
	Spec JobSpec
	// State is the current lifecycle position.
	State State
	// Submitted, FirstStart and Finished are virtual timestamps; FirstStart
	// is zero until first admission, Finished until completion.
	Submitted, FirstStart, Finished sim.Time
	// Retries counts failure-driven requeues (rebalancing restarts are not
	// retries).
	Retries int
	// DeadlineMissed records a blown Deadline.
	DeadlineMissed bool

	moved    float64 // bytes delivered across all attempts
	streams  int     // current stream allocation (RFTP jobs)
	attempt  int     // monotonically counts transfer starts
	reserved float64 // admission bandwidth held
	handle   handle
	rt       *rftp.Transfer // concrete RFTP handle (recovery stats, OnFailure)
	src, dst *fsim.File

	recoveries    int     // in-protocol stream recoveries, folded attempts
	retransmitted float64 // bytes scheduled for retransmission, folded attempts
	migrations    int     // rail failovers, folded attempts
	failbacks     int     // rail failbacks, folded attempts
	hedges        int     // hedged windows launched, folded attempts
	hedgeWins     int     // hedges that beat the original, folded attempts
	hedgeWaste    float64 // duplicate bytes hedging re-sent, folded attempts
	suspects      int     // gray suspect verdicts, folded attempts
	stallBudget   sim.Duration

	lastProgress   float64
	lastProgressAt sim.Time
	backoff        *sim.Timer

	// Batch-job object ledger: which object indices have been delivered
	// (exactly-once across attempts) and how many.
	objDone      []bool
	objDoneCount int
}

// isBatch reports whether the job is a coalesced object window.
func (j *Job) isBatch() bool { return len(j.Spec.Objects) > 0 }

// workDone reports whether the job's payload is fully delivered: every
// object for a batch job, every byte otherwise. The byte test alone would
// misread a batch of zero-size objects as finished before it ran.
func (j *Job) workDone() bool {
	if j.isBatch() {
		return j.objDoneCount == len(j.Spec.Objects)
	}
	return float64(j.Spec.Bytes)-j.moved < 1
}

// ObjectsDone returns how many of a batch job's objects have been
// delivered (zero for plain jobs).
func (j *Job) ObjectsDone() int { return j.objDoneCount }

// Moved returns bytes delivered so far across all attempts.
func (j *Job) Moved() float64 { return j.moved }

// Recoveries returns the job's in-protocol stream recoveries across all
// attempts — repairs RFTP made itself, without the scheduler requeueing.
func (j *Job) Recoveries() int {
	n := j.recoveries
	if j.rt != nil {
		n += j.rt.Recoveries
	}
	return n
}

// Retransmitted returns the payload bytes the job's transfers scheduled
// for retransmission after declared losses.
func (j *Job) Retransmitted() float64 {
	b := j.retransmitted
	if j.rt != nil {
		b += j.rt.Retransmitted
	}
	return b
}

// Migrations returns the job's rail failovers across all attempts —
// streams moved off a dead rail without the scheduler requeueing.
func (j *Job) Migrations() int {
	n := j.migrations
	if j.rt != nil {
		n += j.rt.Migrations
	}
	return n
}

// Failbacks returns the job's rail failbacks across all attempts —
// streams returned to a re-admitted rail.
func (j *Job) Failbacks() int {
	n := j.failbacks
	if j.rt != nil {
		n += j.rt.Failbacks
	}
	return n
}

// Hedges returns launched / won hedged windows and the duplicate bytes
// hedging re-sent, across all attempts.
func (j *Job) Hedges() (launched, wins int, waste float64) {
	launched, wins, waste = j.hedges, j.hedgeWins, j.hedgeWaste
	if j.rt != nil {
		launched += j.rt.Hedges
		wins += j.rt.HedgeWins
		waste += j.rt.HedgeWaste
	}
	return launched, wins, waste
}

// GraySuspects returns how many gray suspect verdicts the job's rail
// managers issued across all attempts.
func (j *Job) GraySuspects() int {
	n := j.suspects
	if j.rt != nil {
		if m := j.rt.Rails(); m != nil {
			n += m.SuspectEntries
		}
	}
	return n
}

// Wait returns the admission wait (zero until first start).
func (j *Job) Wait() sim.Duration {
	if j.FirstStart == 0 {
		return 0
	}
	return sim.Duration(j.FirstStart - j.Submitted)
}

// handle abstracts a running rftp or gridftp transfer.
type handle interface {
	Transferred() float64
	Stop()
}

// Tenant is a registered tenant with a fair-share weight.
type Tenant struct {
	Name   string
	Weight float64
}

// Config tunes the scheduler.
type Config struct {
	// MaxConcurrent caps simultaneously running jobs.
	MaxConcurrent int
	// AggregateBW caps the summed nominal bandwidth of admitted jobs
	// (bytes/s); 0 selects the system's front-end payload capacity.
	AggregateBW float64
	// PerJobBW is the nominal reservation one job holds against
	// AggregateBW; 0 selects AggregateBW/MaxConcurrent.
	PerJobBW float64
	// StreamBudget is the total RFTP stream count divided among running
	// RFTP jobs; 0 selects 2 streams per front-end link.
	StreamBudget int
	// RFTP is the base RFTP shape (Streams is overridden per job by the
	// fair-share arbiter).
	RFTP rftp.Config
	// RFTPParams calibrates RFTP costs (StartOffset is managed per job).
	RFTPParams rftp.Params
	// GridFTP is the shape for GridFTP jobs (streams are not arbitrated:
	// the baseline tool has no re-division knob).
	GridFTP gridftp.Config
	// CheckEvery is the progress watchdog period.
	CheckEvery sim.Duration
	// StallAfter is the no-progress span that declares a job stalled.
	StallAfter sim.Duration
	// MinStallGrace floors every attempt's stall budget. StallAfter was
	// tuned for multi-second transfers; when an experiment shrinks it to
	// chase sub-millisecond object jobs, the watchdog must still grant at
	// least the session setup time (handshake RTTs) before declaring a
	// stall, or tiny jobs are requeued while legitimately handshaking.
	// Zero selects an automatic floor: twice the handshake span on the
	// slowest front link plus one CheckEvery.
	MinStallGrace sim.Duration
	// RetryBase and RetryMax bound the exponential backoff between retry
	// attempts (base × 2^(retries−1), capped).
	RetryBase, RetryMax sim.Duration
	// MaxAttempts bounds transfer attempts before a job is Lost.
	MaxAttempts int
	// ReferenceBW is the per-job ideal rate used for the slowdown metric;
	// 0 selects PerJobBW.
	ReferenceBW float64
	// SuspectDecay scales a job's fair-share weight while any of its
	// streams rides a rail under a gray verdict (rftp's detection plane),
	// shifting the stream budget toward jobs running entirely on trusted
	// rails. In (0, 1]; 0 disables the decay. Requires the RFTP params to
	// run with Rails.Gray enabled to ever see a suspect.
	SuspectDecay float64
}

// DefaultConfig returns a tuned scheduler for the Figure 5 LAN system.
func DefaultConfig() Config {
	return Config{
		MaxConcurrent: 4,
		StreamBudget:  6,
		RFTP:          rftp.DefaultConfig(),
		RFTPParams:    rftp.DefaultParams(),
		GridFTP:       gridftp.DefaultConfig(),
		CheckEvery:    250 * sim.Millisecond,
		StallAfter:    sim.Second,
		RetryBase:     500 * sim.Millisecond,
		RetryMax:      8 * sim.Second,
		MaxAttempts:   12,
	}
}

// WithRecovery copies the system's in-protocol recovery knobs into the
// scheduler's RFTP parameters, making the transfer layer the first line of
// defense: a faulted stream detects the loss within AckTimeout (well below
// StallAfter) and re-establishes itself, so the watchdog never sees the
// job stall. The watchdog stays armed as the second line — a job whose
// recovery is itself wedged is stalled and requeued once its recovery
// budget (plus StallAfter) has elapsed without progress, and a transfer
// that exhausts MaxStreamRetries reports failure immediately through
// OnFailure rather than waiting out the watchdog. iSCSI session replay on
// the SANs is configured separately, via core.Options.Recovery.
func (c Config) WithRecovery(r core.RecoveryOptions) Config {
	if !r.Enabled {
		return c
	}
	c.RFTPParams = r.ApplyRFTP(c.RFTPParams)
	return c
}

// recoveryBudget bounds how long an RFTP transfer with in-protocol
// recovery may legitimately show zero delivered-byte progress: the loss
// detection window plus every backoff it is allowed to wait out. The
// watchdog only declares such a job stalled beyond this horizon.
func recoveryBudget(p rftp.Params) sim.Duration { return p.RecoveryBudget() }

// Validate reports config errors.
func (c Config) Validate() error {
	switch {
	case c.MaxConcurrent <= 0:
		return fmt.Errorf("xfersched: MaxConcurrent must be positive")
	case c.CheckEvery <= 0:
		return fmt.Errorf("xfersched: CheckEvery must be positive")
	case c.StallAfter < c.CheckEvery:
		return fmt.Errorf("xfersched: StallAfter must be ≥ CheckEvery")
	case c.RetryBase <= 0 || c.RetryMax < c.RetryBase:
		return fmt.Errorf("xfersched: retry backoff bounds invalid")
	case c.MaxAttempts <= 0:
		return fmt.Errorf("xfersched: MaxAttempts must be positive")
	case c.SuspectDecay < 0 || c.SuspectDecay > 1:
		return fmt.Errorf("xfersched: SuspectDecay must be in [0, 1]")
	case c.MinStallGrace < 0:
		return fmt.Errorf("xfersched: MinStallGrace must not be negative")
	}
	return nil
}

// Scheduler multiplexes jobs over one core.System.
type Scheduler struct {
	Sys *core.System
	Cfg Config

	eng      *sim.Engine
	tenants  []*Tenant
	byTenant map[string]*Tenant

	queue   []*Job // always sorted by jobBefore (maintained on insert)
	running []*Job
	jobs    []*Job // every submitted job, submission order
	byID    map[string]*Job

	reserved       float64
	pendingSubmits int
	watchdog       *sim.Ticker
	minGrace       sim.Duration // resolved MinStallGrace floor

	// WaitHist collects admission waits (seconds) for quantile reporting.
	WaitHist *metrics.Histogram
	// MaxQueueLen tracks the deepest backlog seen.
	MaxQueueLen int
}

// New builds a scheduler over sys. Zero-valued Config fields take defaults
// derived from the system's front-end capacity.
func New(sys *core.System, cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.AggregateBW <= 0 {
		cfg.AggregateBW = sys.FrontCapacity()
	}
	if cfg.PerJobBW <= 0 {
		cfg.PerJobBW = cfg.AggregateBW / float64(cfg.MaxConcurrent)
	}
	if cfg.StreamBudget <= 0 {
		cfg.StreamBudget = 2 * len(sys.TB.FrontLinks)
	}
	if cfg.ReferenceBW <= 0 {
		cfg.ReferenceBW = cfg.PerJobBW
	}
	s := &Scheduler{
		Sys: sys, Cfg: cfg,
		eng:      sys.Engine(),
		byTenant: make(map[string]*Tenant),
		byID:     make(map[string]*Job),
		WaitHist: metrics.NewHistogram(1e-3),
	}
	s.minGrace = cfg.MinStallGrace
	if s.minGrace <= 0 {
		var rtt sim.Duration
		for _, l := range sys.TB.FrontLinks {
			if l.Cfg.RTT > rtt {
				rtt = l.Cfg.RTT
			}
		}
		hs := sim.Duration(cfg.RFTPParams.HandshakeRTTs) * rtt
		s.minGrace = 2*hs + cfg.CheckEvery
	}
	s.watchdog = s.eng.NewTicker(cfg.CheckEvery, s.check)
	return s, nil
}

// SetTenant registers (or reweights) a tenant.
func (s *Scheduler) SetTenant(name string, weight float64) {
	if weight <= 0 {
		panic("xfersched: tenant weight must be positive")
	}
	if t, ok := s.byTenant[name]; ok {
		t.Weight = weight
		return
	}
	t := &Tenant{Name: name, Weight: weight}
	s.byTenant[name] = t
	s.tenants = append(s.tenants, t)
}

// tenant resolves (auto-registering at weight 1) a job's tenant.
func (s *Scheduler) tenant(name string) *Tenant {
	if t, ok := s.byTenant[name]; ok {
		return t
	}
	s.SetTenant(name, 1)
	return s.byTenant[name]
}

// Submit enqueues a job at the current virtual time and runs an admission
// pass. It returns the live job handle.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if spec.ID == "" {
		return nil, fmt.Errorf("xfersched: job needs an ID")
	}
	if len(spec.Objects) > 0 {
		if spec.Protocol != ProtoRFTP {
			return nil, fmt.Errorf("xfersched: batch job %s must use RFTP", spec.ID)
		}
		total := int64(0)
		for _, o := range spec.Objects {
			if o.Size < 0 {
				return nil, fmt.Errorf("xfersched: job %s object %q has negative size", spec.ID, o.Key)
			}
			total += o.Size
		}
		spec.Bytes = total
		if spec.Files == 0 {
			spec.Files = len(spec.Objects)
		}
	}
	if spec.Bytes < 0 {
		return nil, fmt.Errorf("xfersched: job %s needs non-negative Bytes", spec.ID)
	}
	if _, dup := s.byID[spec.ID]; dup {
		return nil, fmt.Errorf("xfersched: duplicate job ID %q", spec.ID)
	}
	s.tenant(spec.Tenant)
	j := &Job{Spec: spec, State: StateQueued, Submitted: s.eng.Now()}
	if j.isBatch() {
		j.objDone = make([]bool, len(spec.Objects))
	}
	s.jobs = append(s.jobs, j)
	s.byID[spec.ID] = j
	s.insertQueued(j)
	s.schedule(s.eng.Now())
	return j, nil
}

// SubmitAt schedules a future submission (for replaying job traces).
func (s *Scheduler) SubmitAt(at sim.Time, spec JobSpec) {
	s.pendingSubmits++
	s.eng.At(at, func() {
		s.pendingSubmits--
		if _, err := s.Submit(spec); err != nil {
			panic(err)
		}
	})
}

// FailLink schedules a failure window on a link: down at `at`, restored
// after `dur`. Jobs crossing it stall and retry.
func (s *Scheduler) FailLink(l *fabric.Link, at sim.Time, dur sim.Duration) {
	s.eng.At(at, l.Fail)
	s.eng.At(at+sim.Time(dur), l.Restore)
}

// ApplyFaults schedules a fault-injection plan (flaps, degradation, error
// bursts — see internal/faults) against the scheduler's engine. With
// recovery enabled (WithRecovery + core.Options.Recovery) the transfers
// absorb the faults in-protocol; without it, the watchdog requeues the
// jobs the plan knocks over.
func (s *Scheduler) ApplyFaults(p *faults.Plan) { p.Apply(s.eng) }

// Jobs returns every submitted job in submission order.
func (s *Scheduler) Jobs() []*Job { return s.jobs }

// QueueLen returns the current backlog depth.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// Running returns the number of in-flight jobs.
func (s *Scheduler) Running() int { return len(s.running) }

// AllDone reports whether every submitted (and trace-scheduled) job has
// reached a terminal state.
func (s *Scheduler) AllDone() bool {
	if s.pendingSubmits > 0 {
		return false
	}
	for _, j := range s.jobs {
		if j.State != StateDone && j.State != StateLost {
			return false
		}
	}
	return true
}

// RunToCompletion advances virtual time until every job terminates or the
// limit elapses, and reports whether all jobs terminated. The watchdog
// ticker keeps the event queue alive, so callers use this (or RunFor)
// rather than Engine.Run.
func (s *Scheduler) RunToCompletion(limit sim.Duration) bool {
	deadline := s.eng.Now() + sim.Time(limit)
	for !s.AllDone() && s.eng.Now() < deadline {
		step := sim.Time(sim.Second)
		if rem := deadline - s.eng.Now(); rem < step {
			step = rem
		}
		s.eng.RunUntil(s.eng.Now() + step)
	}
	return s.AllDone()
}

// Close stops the watchdog and any pending backoff timers so the engine's
// event queue can drain.
func (s *Scheduler) Close() {
	s.watchdog.Stop()
	for _, j := range s.jobs {
		if j.backoff != nil {
			j.backoff.Stop()
		}
	}
}

// deadlineKey orders the queue by absolute deadline (none = Forever).
func deadlineKey(j *Job) sim.Time {
	if j.Spec.Deadline <= 0 {
		return sim.Forever
	}
	return j.Submitted + sim.Time(j.Spec.Deadline)
}

// jobBefore is the admission order: priority desc, earliest deadline,
// FIFO, then ID — a strict total order (IDs are unique), for determinism.
func jobBefore(a, b *Job) bool {
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	if da, db := deadlineKey(a), deadlineKey(b); da != db {
		return da < db
	}
	if a.Submitted != b.Submitted {
		return a.Submitted < b.Submitted
	}
	return a.Spec.ID < b.Spec.ID
}

// insertQueued places j at its ordered position in the admission queue
// (binary search + shift). Every ordering key is immutable once submitted,
// so the queue stays sorted and admission pops the head without a per-pass
// full sort — the former sort-per-pass was quadratic against the
// 10k-tiny-object backlogs the objstore gateway produces. The resulting
// pop order is identical to the old stable sort's: jobBefore is a strict
// total order.
func (s *Scheduler) insertQueued(j *Job) {
	i := sort.Search(len(s.queue), func(k int) bool { return jobBefore(j, s.queue[k]) })
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = j
	if len(s.queue) > s.MaxQueueLen {
		s.MaxQueueLen = len(s.queue)
	}
}

// schedule runs one admission pass and then re-arbitrates stream shares.
// It is called after every state change.
func (s *Scheduler) schedule(now sim.Time) {
	for len(s.queue) > 0 {
		if len(s.running) >= s.Cfg.MaxConcurrent {
			break
		}
		if s.reserved+s.Cfg.PerJobBW > s.Cfg.AggregateBW*(1+1e-9) {
			break
		}
		j := s.queue[0]
		if j.src == nil {
			// A zero-byte job still owns a directory entry on each SAN;
			// fsim rejects empty files, so the stub is one byte.
			fileBytes := j.Spec.Bytes
			if fileBytes < 1 {
				fileBytes = 1
			}
			src, dst, err := s.Sys.CreateJobFiles(j.Spec.Dir, j.Spec.ID, fileBytes)
			if err != nil {
				// SAN capacity exhausted: hold the whole queue until a
				// running job frees its files.
				break
			}
			j.src, j.dst = src, dst
		}
		s.queue = s.queue[1:]
		j.State = StateRunning
		j.reserved = s.Cfg.PerJobBW
		s.reserved += j.reserved
		s.running = append(s.running, j)
		if j.FirstStart == 0 {
			j.FirstStart = now
			s.WaitHist.Observe(float64(now - j.Submitted))
		}
		s.eng.Tracef("xfersched", "admit %s (tenant=%s, %d queued)",
			j.Spec.ID, j.Spec.Tenant, len(s.queue))
	}
	s.arbitrate(now)
}

// arbitrate divides the RFTP stream budget among running RFTP jobs by
// tenant weight (each tenant's weight split across its active jobs) and
// starts or checkpoint-restarts transfers whose allocation changed.
// GridFTP jobs run at their configured stream count.
func (s *Scheduler) arbitrate(now sim.Time) {
	var rftpJobs []*Job
	perTenant := make(map[string]int)
	for _, j := range s.running {
		if j.Spec.Protocol == ProtoRFTP && !j.isBatch() {
			rftpJobs = append(rftpJobs, j)
			perTenant[j.Spec.Tenant]++
		}
	}
	alloc := s.divideStreams(rftpJobs, perTenant)
	for i, j := range rftpJobs {
		switch {
		case j.handle == nil:
			s.startAttempt(j, alloc[i], now)
		case j.streams != alloc[i]:
			s.restart(j, alloc[i], now)
		}
	}
	// Snapshot: startAttempt can mutate s.running when a job's remaining
	// bytes round to zero and it finishes immediately. Batch jobs run like
	// GridFTP jobs at a fixed stream count: rebalancing a window mid-flight
	// would discard partial-object progress for no fair-share gain.
	for _, j := range append([]*Job(nil), s.running...) {
		if j.handle != nil || j.State != StateRunning {
			continue
		}
		switch {
		case j.isBatch():
			s.startAttempt(j, s.Cfg.RFTP.Streams, now)
		case j.Spec.Protocol == ProtoGridFTP:
			s.startAttempt(j, s.Cfg.GridFTP.Streams, now)
		}
	}
}

// divideStreams computes the weighted fair-share stream allocation: floor
// of the exact share (min 1 each), leftovers by largest remainder.
func (s *Scheduler) divideStreams(jobs []*Job, perTenant map[string]int) []int {
	n := len(jobs)
	if n == 0 {
		return nil
	}
	budget := s.Cfg.StreamBudget
	if budget < n {
		budget = n
	}
	weights := make([]float64, n)
	total := 0.0
	for i, j := range jobs {
		weights[i] = s.tenant(j.Spec.Tenant).Weight / float64(perTenant[j.Spec.Tenant])
		// A job with streams on a gray-suspect rail is decayed, not parked:
		// it keeps at least one stream (the min-1 floor below), but the
		// budget tilts toward jobs running entirely on trusted rails.
		if s.Cfg.SuspectDecay > 0 && j.rt != nil && j.rt.SuspectRailsInUse() > 0 {
			weights[i] *= s.Cfg.SuspectDecay
		}
		total += weights[i]
	}
	alloc := make([]int, n)
	rem := make([]float64, n)
	used := 0
	for i := range jobs {
		exact := float64(budget) * weights[i] / total
		alloc[i] = int(exact)
		if alloc[i] < 1 {
			alloc[i] = 1
		}
		rem[i] = exact - float64(alloc[i])
		used += alloc[i]
	}
	for used < budget {
		best := 0
		for i := 1; i < n; i++ {
			if rem[i] > rem[best]+1e-12 {
				best = i
			}
		}
		alloc[best]++
		rem[best] -= 1
		used++
	}
	return alloc
}

// startAttempt launches a transfer for the job's remaining bytes with the
// given stream count.
func (s *Scheduler) startAttempt(j *Job, streams int, now sim.Time) {
	if j.workDone() {
		s.finish(j, now)
		return
	}
	remaining := float64(j.Spec.Bytes) - j.moved
	j.streams = streams
	j.attempt++
	attempt := j.attempt
	j.lastProgress = 0
	j.lastProgressAt = now
	onDone := func(t sim.Time) {
		// Guard against a superseded attempt's close exchange landing
		// after a checkpoint-restart.
		if j.attempt != attempt || j.State != StateRunning {
			return
		}
		s.complete(j, t)
	}
	var (
		h   handle
		err error
	)
	j.stallBudget = s.Cfg.StallAfter
	if j.stallBudget < s.minGrace {
		j.stallBudget = s.minGrace
	}
	switch {
	case j.isBatch():
		cfg := s.Cfg.RFTP
		cfg.Streams = streams
		p := s.Sys.Opt.Recovery.ApplyRFTP(s.Cfg.RFTPParams)
		// Resume from the undelivered object set: delivered objects are
		// never re-sent, in-flight partials from a stalled attempt are.
		var (
			objs []rftp.ObjectSpec
			idx  []int
		)
		for g, o := range j.Spec.Objects {
			if !j.objDone[g] {
				objs = append(objs, o)
				idx = append(idx, g)
			}
		}
		onObject := func(i int, t sim.Time) {
			if j.attempt != attempt {
				return
			}
			g := idx[i]
			if j.objDone[g] {
				return
			}
			j.objDone[g] = true
			j.objDoneCount++
			j.moved += float64(j.Spec.Objects[g].Size)
			if j.Spec.OnObject != nil {
				j.Spec.OnObject(g, t)
			}
		}
		h, err = s.Sys.StartRFTPBatchOn(j.Spec.Dir, cfg, p, j.src, j.dst, objs, onObject, onDone)
	case j.Spec.Protocol == ProtoRFTP:
		cfg := s.Cfg.RFTP
		cfg.Streams = streams
		p := s.Sys.Opt.Recovery.ApplyRFTP(s.Cfg.RFTPParams)
		p.StartOffset = int64(j.moved)
		var rt *rftp.Transfer
		rt, err = s.Sys.StartRFTPOn(j.Spec.Dir, cfg, p, j.src, j.dst, float64(j.Spec.Bytes), onDone)
		if err == nil {
			// In-protocol recovery is the first line of defense: give the
			// transfer its whole retry budget before the watchdog may call
			// the job stalled, and take exhaustion reports directly instead
			// of waiting the budget out.
			j.stallBudget += recoveryBudget(p)
			rt.OnFailure = func(t sim.Time) {
				if j.attempt != attempt || j.State != StateRunning {
					return
				}
				s.eng.Tracef("xfersched", "recovery exhausted on %s, requeueing", j.Spec.ID)
				s.stall(j, t)
				s.schedule(t)
			}
			j.rt = rt
			h = rt
		}
	case j.Spec.Protocol == ProtoGridFTP:
		h, err = s.Sys.StartGridFTPOn(j.Spec.Dir, s.Cfg.GridFTP, j.src, j.dst, remaining, onDone)
	default:
		err = fmt.Errorf("xfersched: unknown protocol %d", j.Spec.Protocol)
	}
	if err != nil {
		panic(fmt.Sprintf("xfersched: start %s: %v", j.Spec.ID, err))
	}
	j.handle = h
	s.eng.Tracef("xfersched", "start %s attempt=%d streams=%d remaining=%g",
		j.Spec.ID, attempt, streams, remaining)
}

// restart checkpoints a running transfer and relaunches it with a new
// stream allocation (a rebalance, not a retry).
func (s *Scheduler) restart(j *Job, streams int, now sim.Time) {
	j.moved += j.handle.Transferred()
	j.handle.Stop()
	j.handle = nil
	j.foldAttempt()
	s.eng.Tracef("xfersched", "rebalance %s to %d streams (moved=%g)",
		j.Spec.ID, streams, j.moved)
	s.startAttempt(j, streams, now)
}

// check is the watchdog tick: fold progress, declare stalls.
func (s *Scheduler) check(now sim.Time) {
	stalled := false
	snapshot := append([]*Job(nil), s.running...)
	for _, j := range snapshot {
		if j.State != StateRunning || j.handle == nil {
			continue
		}
		cur := j.handle.Transferred()
		if j.isBatch() {
			// Delivered objects are progress even when they carry no
			// bytes (zero-length objects): weight each delivery past the
			// one-byte noise threshold below, or a window of empty
			// objects would wedge the watchdog.
			cur += 2 * float64(j.objDoneCount)
		}
		if cur > j.lastProgress+1 {
			j.lastProgress = cur
			j.lastProgressAt = now
			continue
		}
		budget := s.Cfg.StallAfter
		if j.stallBudget > budget {
			budget = j.stallBudget
		}
		// A transfer mid-recovery earns extra grace scaled to what it is
		// actually doing: a stream migration legitimately pays rail
		// probing and a fresh handshake that a same-rail retransmission
		// never does. Requeueing mid-failover would double the damage —
		// the whole attempt's unacked window is thrown away to redo work
		// the protocol was seconds from finishing.
		if j.rt != nil {
			budget += j.rt.RecoveryGrace()
		}
		if sim.Duration(now-j.lastProgressAt) >= budget {
			s.stall(j, now)
			stalled = true
		}
	}
	if stalled {
		s.schedule(now)
	}
}

// stall handles a no-progress job: fold its partial bytes, release its
// admission slot, and either finish it (all bytes actually arrived — only
// the close exchange was lost), requeue it with exponential backoff, or
// give up.
func (s *Scheduler) stall(j *Job, now sim.Time) {
	if !j.isBatch() {
		// Batch jobs track moved through their per-object ledger; a
		// stalled window's partial object bytes are discarded (delivery
		// is all-or-nothing per object), so there is nothing to fold.
		j.moved += j.handle.Transferred()
	}
	j.handle.Stop()
	j.handle = nil
	j.foldAttempt()
	j.Retries++
	s.release(j)
	s.removeRunning(j)
	if j.workDone() {
		s.finish(j, now)
		return
	}
	if j.Retries >= s.Cfg.MaxAttempts {
		j.State = StateLost
		j.Finished = now
		s.Sys.RemoveJobFiles(j.Spec.Dir, j.Spec.ID)
		j.src, j.dst = nil, nil
		s.eng.Tracef("xfersched", "lost %s after %d attempts", j.Spec.ID, j.Retries)
		return
	}
	j.State = StateBackoff
	delay := s.Cfg.RetryBase
	for i := 1; i < j.Retries && delay < s.Cfg.RetryMax; i++ {
		delay *= 2
	}
	if delay > s.Cfg.RetryMax {
		delay = s.Cfg.RetryMax
	}
	s.eng.Tracef("xfersched", "stall %s retry=%d backoff=%gs moved=%g",
		j.Spec.ID, j.Retries, float64(delay), j.moved)
	if j.backoff == nil {
		j.backoff = s.eng.NewTimer(delay, func(t sim.Time) { s.requeue(j, t) })
	} else {
		j.backoff.Reset(delay)
	}
}

// requeue returns a backed-off job to the admission queue.
func (s *Scheduler) requeue(j *Job, now sim.Time) {
	j.State = StateQueued
	s.insertQueued(j)
	s.schedule(now)
}

// complete finishes a successfully delivered job and reschedules.
func (s *Scheduler) complete(j *Job, now sim.Time) {
	j.moved = float64(j.Spec.Bytes)
	j.handle = nil
	j.foldAttempt()
	s.release(j)
	s.removeRunning(j)
	s.finish(j, now)
	s.schedule(now)
}

// finish moves a job to StateDone and frees its SAN files.
func (s *Scheduler) finish(j *Job, now sim.Time) {
	j.State = StateDone
	j.Finished = now
	j.moved = float64(j.Spec.Bytes)
	if j.reserved > 0 {
		s.release(j)
		s.removeRunning(j)
	}
	if j.Spec.Deadline > 0 && sim.Duration(now-j.Submitted) > j.Spec.Deadline {
		j.DeadlineMissed = true
	}
	if j.src != nil {
		s.Sys.RemoveJobFiles(j.Spec.Dir, j.Spec.ID)
		j.src, j.dst = nil, nil
	}
	s.eng.Tracef("xfersched", "done %s wait=%gs elapsed=%gs retries=%d",
		j.Spec.ID, float64(j.Wait()), float64(now-j.Submitted), j.Retries)
}

// foldAttempt folds a finished attempt's recovery stats into the job and
// drops the concrete transfer handle.
func (j *Job) foldAttempt() {
	if j.rt == nil {
		return
	}
	j.recoveries += j.rt.Recoveries
	j.retransmitted += j.rt.Retransmitted
	j.migrations += j.rt.Migrations
	j.failbacks += j.rt.Failbacks
	j.hedges += j.rt.Hedges
	j.hedgeWins += j.rt.HedgeWins
	j.hedgeWaste += j.rt.HedgeWaste
	if m := j.rt.Rails(); m != nil {
		j.suspects += m.SuspectEntries
	}
	j.rt = nil
}

// release returns a job's admission reservation.
func (s *Scheduler) release(j *Job) {
	s.reserved -= j.reserved
	if s.reserved < 0 {
		s.reserved = 0
	}
	j.reserved = 0
}

// removeRunning drops j from the running list, preserving order.
func (s *Scheduler) removeRunning(j *Job) {
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}

// slowdown returns elapsed/ideal for a finished job.
func (s *Scheduler) slowdown(j *Job) float64 {
	if j.Finished == 0 {
		return math.NaN()
	}
	ideal := float64(j.Spec.Bytes) / s.Cfg.ReferenceBW
	if ideal <= 0 {
		return math.NaN()
	}
	return float64(j.Finished-j.Submitted) / ideal
}
