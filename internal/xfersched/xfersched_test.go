package xfersched

import (
	"math"
	"testing"

	"e2edt/internal/core"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// newSched builds a scheduler over a fresh small-dataset system.
func newSched(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	sys, err := core.NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func spec(id, tenant string, bytes int64) JobSpec {
	return JobSpec{ID: id, Tenant: tenant, Protocol: ProtoRFTP, Dir: core.Forward, Bytes: bytes}
}

func TestSingleJobCompletes(t *testing.T) {
	s := newSched(t, DefaultConfig())
	j, err := s.Submit(spec("j0", "a", 8*units.GB))
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunToCompletion(60 * sim.Second) {
		t.Fatal("job did not complete")
	}
	if j.State != StateDone {
		t.Fatalf("state %v, want done", j.State)
	}
	if j.Wait() != 0 {
		t.Fatalf("uncontended job waited %v", j.Wait())
	}
	if j.Moved() != float64(j.Spec.Bytes) {
		t.Fatalf("moved %v of %v", j.Moved(), j.Spec.Bytes)
	}
	r := s.Report()
	if r.Completed != 1 || r.Lost != 0 || r.TotalRetries != 0 {
		t.Fatalf("report %+v", r)
	}
	if r.AggregateGoodput <= 0 {
		t.Fatal("goodput unset")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newSched(t, DefaultConfig())
	if _, err := s.Submit(JobSpec{Tenant: "a", Bytes: 1}); err == nil {
		t.Fatal("missing ID accepted")
	}
	if _, err := s.Submit(spec("jneg", "a", -1)); err == nil {
		t.Fatal("negative bytes accepted")
	}
	// Zero bytes is legal: an empty object's job completes at admission.
	jz, err := s.Submit(spec("jzero", "a", 0))
	if err != nil {
		t.Fatal(err)
	}
	if jz.State != StateDone {
		t.Fatalf("zero-byte job state %v, want done", jz.State)
	}
	if _, err := s.Submit(JobSpec{ID: "jbatch", Tenant: "a", Protocol: ProtoGridFTP,
		Objects: []rftp.ObjectSpec{{Key: "b/k", Size: 1}}}); err == nil {
		t.Fatal("GridFTP batch accepted")
	}
	if _, err := s.Submit(spec("j0", "a", units.GB)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec("j0", "a", units.GB)); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

// TestAdmissionCapHonored: with MaxConcurrent=2, six simultaneous jobs
// never run more than two at a time, later jobs wait, and all finish.
func TestAdmissionCapHonored(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	s := newSched(t, cfg)
	for i := 0; i < 6; i++ {
		id := string(rune('a' + i))
		if _, err := s.Submit(spec(id, "tenant", 4*units.GB)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Running() != 2 {
		t.Fatalf("running %d at submit, want 2", s.Running())
	}
	for !s.AllDone() && s.Sys.Engine().Now() < 300 {
		if s.Running() > 2 {
			t.Fatalf("admission cap breached: %d running", s.Running())
		}
		s.Sys.Engine().RunFor(100 * sim.Millisecond)
	}
	if !s.AllDone() {
		t.Fatal("jobs did not finish")
	}
	r := s.Report()
	if r.Completed != 6 || r.Lost != 0 {
		t.Fatalf("completed %d, lost %d", r.Completed, r.Lost)
	}
	if r.P99Wait <= 0 {
		t.Fatal("queued jobs should have waited")
	}
	if r.MaxQueueLen < 4 {
		t.Fatalf("max queue %d, want ≥4", r.MaxQueueLen)
	}
}

// TestPriorityOrdersQueue: with one slot busy, a high-priority late
// arrival is admitted before an earlier low-priority one.
func TestPriorityOrdersQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	s := newSched(t, cfg)
	if _, err := s.Submit(spec("hog", "a", 8*units.GB)); err != nil {
		t.Fatal(err)
	}
	low := spec("low", "a", units.GB)
	high := spec("high", "a", units.GB)
	high.Priority = 5
	s.SubmitAt(0.1, low)
	s.SubmitAt(0.2, high)
	if !s.RunToCompletion(120 * sim.Second) {
		t.Fatal("jobs did not finish")
	}
	var lowJ, highJ *Job
	for _, j := range s.Jobs() {
		switch j.Spec.ID {
		case "low":
			lowJ = j
		case "high":
			highJ = j
		}
	}
	if highJ.FirstStart >= lowJ.FirstStart {
		t.Fatalf("high started %v, low %v: priority ignored", highJ.FirstStart, lowJ.FirstStart)
	}
}

// TestFairShareArbitration: a lone job holds the whole stream budget; when
// a second tenant's job arrives the budget is re-divided by weight via
// checkpoint-restart, and on the heavier tenant's exit the survivor gets
// the streams back.
func TestFairShareArbitration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	cfg.StreamBudget = 4
	s := newSched(t, cfg)
	s.SetTenant("heavy", 3)
	s.SetTenant("light", 1)

	j1, err := s.Submit(spec("h0", "heavy", 30*units.GB))
	if err != nil {
		t.Fatal(err)
	}
	if j1.streams != 4 {
		t.Fatalf("lone job has %d streams, want the whole budget 4", j1.streams)
	}
	var j2 *Job
	s.Sys.Engine().At(1, func() {
		var err error
		j2, err = s.Submit(spec("l0", "light", 30*units.GB))
		if err != nil {
			t.Fatal(err)
		}
	})
	s.Sys.Engine().RunUntil(1.5)
	if j1.streams != 3 || j2.streams != 1 {
		t.Fatalf("split %d/%d, want 3/1 by tenant weight", j1.streams, j2.streams)
	}
	// Rebalancing checkpointed j1, it did not retry it.
	if j1.Retries != 0 {
		t.Fatalf("rebalance counted as retry: %d", j1.Retries)
	}
	if !s.RunToCompletion(300 * sim.Second) {
		t.Fatal("jobs did not finish")
	}
	// The 3-weight tenant finishes the same-size job first.
	if j1.Finished >= j2.Finished {
		t.Fatalf("heavy finished %v, light %v: weights had no effect", j1.Finished, j2.Finished)
	}
	// After h0 exits, l0 should have been topped back up to 4 streams.
	if j2.streams != 4 {
		t.Fatalf("survivor held %d streams, want 4", j2.streams)
	}
}

// TestLinkFailureRetry is the graceful-degradation acceptance test: a
// front-link outage stalls single-stream jobs (their one stream rides
// link 0), the watchdog requeues them with backoff, and after the link
// returns every job completes — retries observed, nothing lost.
func TestLinkFailureRetry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	cfg.StreamBudget = 2 // one stream per running job → both on link 0
	s := newSched(t, cfg)
	for i := 0; i < 4; i++ {
		id := string(rune('a' + i))
		if _, err := s.Submit(spec(id, "tenant", 6*units.GB)); err != nil {
			t.Fatal(err)
		}
	}
	link := s.Sys.TB.FrontLinks[0]
	s.FailLink(link, 2, 10*sim.Second)
	if !s.RunToCompletion(600 * sim.Second) {
		t.Fatal("jobs did not finish after link restore")
	}
	r := s.Report()
	if r.Lost != 0 {
		t.Fatalf("%d jobs lost", r.Lost)
	}
	if r.Completed != 4 {
		t.Fatalf("completed %d of 4", r.Completed)
	}
	if r.TotalRetries == 0 {
		t.Fatal("outage produced no retries: watchdog dead")
	}
	for _, j := range s.Jobs() {
		if got := j.Moved(); math.Abs(got-float64(j.Spec.Bytes)) > 1 {
			t.Fatalf("job %s moved %v of %d", j.Spec.ID, got, j.Spec.Bytes)
		}
	}
}

// TestJobLostAfterMaxAttempts: a permanently dead link exhausts the retry
// budget and the job lands in StateLost with its files freed.
func TestJobLostAfterMaxAttempts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	cfg.StreamBudget = 1
	cfg.MaxAttempts = 3
	cfg.RetryMax = sim.Second
	s := newSched(t, cfg)
	for _, l := range s.Sys.TB.FrontLinks {
		l.Fail()
	}
	freeBefore := s.Sys.A.FS.Free()
	j, err := s.Submit(spec("doomed", "a", units.GB))
	if err != nil {
		t.Fatal(err)
	}
	if s.RunToCompletion(120 * sim.Second) {
		if j.State != StateLost {
			t.Fatalf("state %v, want lost", j.State)
		}
	} else {
		t.Fatal("scheduler never gave up")
	}
	if j.Retries != 3 {
		t.Fatalf("retries %d, want MaxAttempts=3", j.Retries)
	}
	if got := s.Sys.A.FS.Free(); got != freeBefore {
		t.Fatalf("lost job leaked SAN space: free %d, want %d", got, freeBefore)
	}
	if r := s.Report(); r.Lost != 1 || r.Completed != 0 {
		t.Fatalf("report %+v", r)
	}
}

// TestMixedProtocolTrace runs a generated trace with GridFTP jobs in the
// mix, both directions, and checks the report adds up.
func TestMixedProtocolTrace(t *testing.T) {
	tc := DefaultTraceConfig()
	tc.Jobs = 12
	tc.JobsPerMinute = 60
	tc.GridFTPFraction = 0.3
	tc.MinBytes = units.GB
	tc.MaxBytes = 4 * units.GB
	trace := GenerateTrace(tc)
	if len(trace) != 12 {
		t.Fatalf("trace length %d", len(trace))
	}
	s := newSched(t, DefaultConfig()).WithTenantWeights(tc.Tenants)
	s.SubmitTrace(trace)
	if !s.RunToCompletion(600 * sim.Second) {
		t.Fatal("trace did not finish")
	}
	r := s.Report()
	if r.Completed != 12 || r.Lost != 0 {
		t.Fatalf("completed %d lost %d", r.Completed, r.Lost)
	}
	sawGrid, sawRev := false, false
	for _, j := range s.Jobs() {
		if j.Spec.Protocol == ProtoGridFTP {
			sawGrid = true
		}
		if j.Spec.Dir == core.Reverse {
			sawRev = true
		}
	}
	if !sawGrid || !sawRev {
		t.Fatalf("trace mix missing variety: gridftp=%v reverse=%v", sawGrid, sawRev)
	}
	// Tables render without panicking and carry every tenant.
	if got := len(r.Tenants); got != len(tc.Tenants) {
		t.Fatalf("tenant stats %d, want %d", got, len(tc.Tenants))
	}
	for _, tbl := range []interface{ String() string }{r.TenantTable(), r.SummaryTable(), s.JobTable()} {
		if tbl.String() == "" {
			t.Fatal("empty table")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MaxConcurrent = 0 },
		func(c *Config) { c.CheckEvery = 0 },
		func(c *Config) { c.StallAfter = c.CheckEvery / 2 },
		func(c *Config) { c.RetryBase = 0 },
		func(c *Config) { c.RetryMax = c.RetryBase / 2 },
		func(c *Config) { c.MaxAttempts = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}
