package xfersched

import (
	"math"
	"testing"

	"e2edt/internal/pipe"
	"e2edt/internal/railmgr"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

// suspectTransfer runs a standalone rftp transfer with gray detection on
// until one rail is under a verdict and still carrying streams, then hands
// the live transfer back — the arbiter input the decay keys off.
func suspectTransfer(t *testing.T) *rftp.Transfer {
	t.Helper()
	p := testbed.NewMotivatingPair()
	prm := rftp.DefaultParams()
	prm.AckTimeout = 50 * sim.Millisecond
	prm.RetryBackoff = 20 * sim.Millisecond
	prm.RetryBackoffMax = 40 * sim.Millisecond
	prm.Rails = railmgr.Policy{
		Enabled:        true,
		ProbeEvery:     20 * sim.Millisecond,
		ProbeTimeout:   5 * sim.Millisecond,
		ProbeBytes:     64,
		FailbackProbes: 2,
		MissedProbes:   2,
		Gray:           railmgr.DefaultGrayPolicy(),
	}
	cfg := rftp.Config{Streams: 6, BlockSize: 128 * units.KB, CreditsPerStream: 2}
	tr, err := rftp.Start(p.Links, p.A, cfg, prm, pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Stop)
	p.Eng.RunUntil(0.1)
	p.Links[1].GrayDegrade(0.3)
	p.Eng.RunUntil(1.0)
	if tr.SuspectRailsInUse() == 0 {
		t.Fatal("precondition: no streams on a suspect rail")
	}
	return tr
}

// TestSuspectDecayShiftsStreamBudget: with SuspectDecay set, a job whose
// streams ride a suspect rail cedes stream budget to a clean-rail peer;
// with the decay off the same pair splits evenly.
func TestSuspectDecayShiftsStreamBudget(t *testing.T) {
	tr := suspectTransfer(t)
	jobs := []*Job{
		{Spec: spec("sick", "a", units.GB), rt: tr},
		{Spec: spec("ok", "b", units.GB)},
	}
	perTenant := map[string]int{"a": 1, "b": 1}

	cfg := DefaultConfig()
	cfg.StreamBudget = 8
	cfg.SuspectDecay = 0.25
	s := newSched(t, cfg)
	alloc := s.divideStreams(jobs, perTenant)
	if !(alloc[0] < alloc[1]) {
		t.Fatalf("suspect job not decayed: alloc %v", alloc)
	}
	if alloc[0] < 1 {
		t.Fatalf("decay starved the suspect job entirely: alloc %v", alloc)
	}
	if alloc[0]+alloc[1] != 8 {
		t.Fatalf("budget leaked: alloc %v", alloc)
	}

	cfg.SuspectDecay = 0
	s2 := newSched(t, cfg)
	even := s2.divideStreams(jobs, perTenant)
	if even[0] != even[1] {
		t.Fatalf("decay off should split evenly, got %v", even)
	}
}

// TestSuspectDecayValidation pins the config bounds.
func TestSuspectDecayValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SuspectDecay = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("SuspectDecay > 1 accepted")
	}
	cfg.SuspectDecay = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative SuspectDecay accepted")
	}
	cfg.SuspectDecay = 0.5
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
