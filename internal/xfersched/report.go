package xfersched

import (
	"fmt"
	"sort"

	"e2edt/internal/metrics"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// TenantStats aggregates one tenant's outcomes.
type TenantStats struct {
	Name       string
	Weight     float64
	Jobs       int
	Done       int
	Lost       int
	Retries    int
	Recoveries int     // in-protocol stream recoveries (no requeue)
	Migrations int     // rail failovers (streams moved off dead rails)
	Failbacks  int     // streams returned to re-admitted rails
	Bytes      float64 // delivered bytes of finished jobs
	MeanWait   float64 // seconds
	Goodput    float64 // delivered bytes / summed service time
	Slowdown   float64 // mean elapsed/ideal over finished jobs
	Deadlines  int     // missed deadlines
}

// Report is the scheduler's end-of-run accounting.
type Report struct {
	Submitted, Completed, Lost int
	TotalRetries               int
	// TotalRecoveries counts in-protocol stream recoveries across all
	// jobs — faults the transfer layer absorbed without a scheduler
	// requeue. TotalRetransmitted is the payload volume those recoveries
	// re-sent.
	TotalRecoveries    int
	TotalRetransmitted float64
	// TotalMigrations and TotalFailbacks count rail failovers and
	// failbacks across all jobs — multipath repairs the transfer layer
	// made while the scheduler kept the job admitted.
	TotalMigrations int
	TotalFailbacks  int
	// Gray/tail-tolerance aggregates: hedged windows launched and won,
	// duplicate bytes hedging re-sent, and gray suspect verdicts.
	TotalHedges, TotalHedgeWins int
	TotalHedgeWaste             float64
	TotalSuspects               int
	MaxQueueLen                 int
	MeanWait, P99Wait           float64 // seconds
	MeanSlowdown                float64
	// AggregateGoodput is delivered bytes over the makespan (first submit
	// to last finish), the service's end-to-end rate.
	AggregateGoodput float64
	Makespan         float64 // seconds
	Tenants          []TenantStats
}

// Report computes the current aggregate accounting. It can be called
// mid-run; unfinished jobs count toward Submitted only.
func (s *Scheduler) Report() Report {
	r := Report{
		Submitted:   len(s.jobs),
		MaxQueueLen: s.MaxQueueLen,
		MeanWait:    s.WaitHist.Mean(),
		P99Wait:     s.WaitHist.Quantile(0.99),
	}
	byTenant := make(map[string]*TenantStats)
	order := make([]string, 0, len(s.tenants))
	for _, t := range s.tenants {
		byTenant[t.Name] = &TenantStats{Name: t.Name, Weight: t.Weight}
		order = append(order, t.Name)
	}
	sort.Strings(order)

	var firstSubmit, lastFinish sim.Time = sim.Forever, 0
	totalBytes := 0.0
	slowSum := 0.0
	slowN := 0
	for _, j := range s.jobs {
		ts := byTenant[j.Spec.Tenant]
		ts.Jobs++
		ts.Retries += j.Retries
		ts.Recoveries += j.Recoveries()
		ts.Migrations += j.Migrations()
		ts.Failbacks += j.Failbacks()
		r.TotalRetries += j.Retries
		r.TotalRecoveries += j.Recoveries()
		r.TotalRetransmitted += j.Retransmitted()
		r.TotalMigrations += j.Migrations()
		r.TotalFailbacks += j.Failbacks()
		h, w, waste := j.Hedges()
		r.TotalHedges += h
		r.TotalHedgeWins += w
		r.TotalHedgeWaste += waste
		r.TotalSuspects += j.GraySuspects()
		if j.Submitted < firstSubmit {
			firstSubmit = j.Submitted
		}
		switch j.State {
		case StateDone:
			r.Completed++
			ts.Done++
			ts.Bytes += float64(j.Spec.Bytes)
			totalBytes += float64(j.Spec.Bytes)
			if j.Finished > lastFinish {
				lastFinish = j.Finished
			}
			if sd := s.slowdown(j); sd == sd { // skip NaN
				slowSum += sd
				slowN++
				ts.Slowdown += sd
			}
			if j.DeadlineMissed {
				ts.Deadlines++
			}
		case StateLost:
			r.Lost++
			ts.Lost++
		}
	}
	if slowN > 0 {
		r.MeanSlowdown = slowSum / float64(slowN)
	}
	if lastFinish > firstSubmit {
		r.Makespan = float64(lastFinish - firstSubmit)
		r.AggregateGoodput = totalBytes / r.Makespan
	}
	for _, name := range order {
		ts := byTenant[name]
		waitSum, waitN := 0.0, 0
		serviceSum := 0.0
		for _, j := range s.jobs {
			if j.Spec.Tenant != name {
				continue
			}
			if j.FirstStart > 0 {
				waitSum += float64(j.Wait())
				waitN++
			}
			if j.State == StateDone && j.Finished > j.FirstStart {
				serviceSum += float64(j.Finished - j.FirstStart)
			}
		}
		if waitN > 0 {
			ts.MeanWait = waitSum / float64(waitN)
		}
		if serviceSum > 0 {
			ts.Goodput = ts.Bytes / serviceSum
		}
		if ts.Done > 0 {
			ts.Slowdown /= float64(ts.Done)
		}
		r.Tenants = append(r.Tenants, *ts)
	}
	return r
}

// TenantTable renders per-tenant outcomes as a metrics table.
func (r Report) TenantTable() *metrics.Table {
	t := &metrics.Table{
		Title: "Per-tenant outcomes",
		Headers: []string{"tenant", "weight", "jobs", "done", "lost", "retries",
			"recov", "migr", "failbk", "mean wait", "goodput", "slowdown", "missed ddl"},
	}
	for _, ts := range r.Tenants {
		t.AddRow(
			ts.Name,
			fmt.Sprintf("%.1f", ts.Weight),
			fmt.Sprintf("%d", ts.Jobs),
			fmt.Sprintf("%d", ts.Done),
			fmt.Sprintf("%d", ts.Lost),
			fmt.Sprintf("%d", ts.Retries),
			fmt.Sprintf("%d", ts.Recoveries),
			fmt.Sprintf("%d", ts.Migrations),
			fmt.Sprintf("%d", ts.Failbacks),
			fmt.Sprintf("%.2fs", ts.MeanWait),
			units.FormatRate(ts.Goodput),
			fmt.Sprintf("%.2f", ts.Slowdown),
			fmt.Sprintf("%d", ts.Deadlines),
		)
	}
	return t
}

// JobTable renders per-job outcomes as a metrics table, submission order.
func (s *Scheduler) JobTable() *metrics.Table {
	t := &metrics.Table{
		Title: "Per-job outcomes",
		Headers: []string{"job", "tenant", "proto", "size", "prio", "state",
			"wait", "elapsed", "goodput", "retries", "recov", "migr"},
	}
	for _, j := range s.jobs {
		elapsed, goodput := "-", "-"
		if j.Finished > 0 && j.State == StateDone {
			el := float64(j.Finished - j.Submitted)
			elapsed = fmt.Sprintf("%.2fs", el)
			if svc := float64(j.Finished - j.FirstStart); svc > 0 {
				goodput = units.FormatRate(float64(j.Spec.Bytes) / svc)
			}
		}
		t.AddRow(
			j.Spec.ID,
			j.Spec.Tenant,
			j.Spec.Protocol.String(),
			units.FormatBytes(j.Spec.Bytes),
			fmt.Sprintf("%d", j.Spec.Priority),
			j.State.String(),
			fmt.Sprintf("%.2fs", float64(j.Wait())),
			elapsed,
			goodput,
			fmt.Sprintf("%d", j.Retries),
			fmt.Sprintf("%d", j.Recoveries()),
			fmt.Sprintf("%d", j.Migrations()),
		)
	}
	return t
}

// GrayTable renders the gray/tail-tolerance aggregates, or nil when the
// run saw no verdicts and no hedges (keeps legacy output byte-stable).
func (r Report) GrayTable() *metrics.Table {
	if r.TotalHedges == 0 && r.TotalSuspects == 0 {
		return nil
	}
	t := &metrics.Table{
		Title:   "Gray failures & tail tolerance",
		Headers: []string{"suspect verdicts", "hedges", "hedge wins", "hedge waste"},
	}
	t.AddRow(
		fmt.Sprintf("%d", r.TotalSuspects),
		fmt.Sprintf("%d", r.TotalHedges),
		fmt.Sprintf("%d", r.TotalHedgeWins),
		units.FormatBytes(int64(r.TotalHedgeWaste)),
	)
	return t
}

// SummaryTable renders the run's aggregate line.
func (r Report) SummaryTable() *metrics.Table {
	t := &metrics.Table{
		Title: "Schedule summary",
		Headers: []string{"jobs", "done", "lost", "retries", "recov", "migr",
			"failbk", "max queue", "mean wait", "p99 wait", "slowdown", "goodput", "makespan"},
	}
	t.AddRow(
		fmt.Sprintf("%d", r.Submitted),
		fmt.Sprintf("%d", r.Completed),
		fmt.Sprintf("%d", r.Lost),
		fmt.Sprintf("%d", r.TotalRetries),
		fmt.Sprintf("%d", r.TotalRecoveries),
		fmt.Sprintf("%d", r.TotalMigrations),
		fmt.Sprintf("%d", r.TotalFailbacks),
		fmt.Sprintf("%d", r.MaxQueueLen),
		fmt.Sprintf("%.2fs", r.MeanWait),
		fmt.Sprintf("%.2fs", r.P99Wait),
		fmt.Sprintf("%.2f", r.MeanSlowdown),
		units.FormatRate(r.AggregateGoodput),
		fmt.Sprintf("%.1fs", r.Makespan),
	)
	return t
}
