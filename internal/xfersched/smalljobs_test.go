package xfersched

import (
	"fmt"
	"testing"

	"e2edt/internal/core"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// smallJobSystem builds a system + scheduler tuned for sub-millisecond
// object jobs: the watchdog runs fast and StallAfter is squeezed to its
// legal minimum, so only the MinStallGrace floor keeps handshaking jobs
// from being declared stalled.
func smallJobSystem(t *testing.T, mut func(*Config)) *Scheduler {
	t.Helper()
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	sys, err := core.NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 8
	cfg.CheckEvery = 200 * sim.Microsecond
	cfg.StallAfter = 200 * sim.Microsecond
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestZeroByteBatchJob: a batch job made entirely of zero-length objects
// runs the full admission → handshake → delimiter path and completes with
// every OnObject callback fired exactly once.
func TestZeroByteBatchJob(t *testing.T) {
	s := smallJobSystem(t, nil)
	objs := make([]rftp.ObjectSpec, 16)
	for i := range objs {
		objs[i] = rftp.ObjectSpec{Key: fmt.Sprintf("m/lock-%02d", i), Size: 0}
	}
	counts := make([]int, len(objs))
	j, err := s.Submit(JobSpec{
		ID: "zero-batch", Tenant: "t", Protocol: ProtoRFTP,
		Objects:  objs,
		OnObject: func(i int, now sim.Time) { counts[i]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunToCompletion(30 * sim.Second) {
		t.Fatal("zero-byte batch did not finish")
	}
	if j.State != StateDone {
		t.Fatalf("state = %v, want done", j.State)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("object %d delivered %d times", i, c)
		}
	}
	if j.Retries != 0 {
		t.Fatalf("zero-byte batch retried %d times", j.Retries)
	}
}

// TestTinyJobFloodNoSpuriousRetries is the watchdog grace-floor gate:
// 10,000 tiny jobs under a 200 µs StallAfter — far below the ~330 µs
// session handshake — must all complete with zero retries, because the
// MinStallGrace floor grants every attempt at least its setup time.
// Without the floor, the watchdog would requeue every job mid-handshake
// forever.
func TestTinyJobFloodNoSpuriousRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-job flood")
	}
	s := smallJobSystem(t, nil)
	const n = 10000
	for i := 0; i < n; i++ {
		// 2k jobs/second over five virtual seconds, tenants round-robin.
		at := sim.Time(sim.Duration(i) * 500 * sim.Microsecond)
		s.SubmitAt(at, JobSpec{
			ID:       fmt.Sprintf("tiny-%05d", i),
			Tenant:   fmt.Sprintf("t%d", i%4),
			Protocol: ProtoRFTP,
			Bytes:    24 << 10,
			Files:    1,
		})
	}
	if !s.RunToCompletion(120 * sim.Second) {
		t.Fatal("flood did not drain")
	}
	done := 0
	for _, j := range s.Jobs() {
		if j.State == StateDone {
			done++
		}
	}
	if done != n {
		t.Fatalf("done %d of %d", done, n)
	}
	if r := s.Report(); r.TotalRetries != 0 {
		t.Fatalf("%d spurious retries under the grace floor", r.TotalRetries)
	}
}

// TestExplicitGraceFloor: a caller-set MinStallGrace overrides the
// automatic floor and is honored per attempt.
func TestExplicitGraceFloor(t *testing.T) {
	s := smallJobSystem(t, func(c *Config) { c.MinStallGrace = 50 * sim.Millisecond })
	j, err := s.Submit(JobSpec{ID: "j", Tenant: "t", Protocol: ProtoRFTP, Bytes: units.MB, Files: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunToCompletion(30 * sim.Second) {
		t.Fatal("job did not finish")
	}
	if j.State != StateDone || j.Retries != 0 {
		t.Fatalf("state=%v retries=%d", j.State, j.Retries)
	}
	if s.minGrace != 50*sim.Millisecond {
		t.Fatalf("minGrace = %v, want 50ms", s.minGrace)
	}
	// Negative floors are rejected.
	cfg := DefaultConfig()
	cfg.MinStallGrace = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative MinStallGrace accepted")
	}
}
