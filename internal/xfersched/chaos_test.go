package xfersched

import (
	"reflect"
	"testing"

	"e2edt/internal/core"
	"e2edt/internal/faults"
	"e2edt/internal/sim"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

// chaosScenario runs the acceptance scenario once and returns the job and
// the full event trace: an iSER-backed RFTP job submitted through the
// scheduler while a seeded chaos schedule (link flaps, a degradation
// window, injected error-completion bursts) plays out on the front-end
// fabric, plus one flap on a SAN link so the storage path recovers too.
// Recovery is enabled at every layer; the scheduler's watchdog stays armed
// as the second line of defense.
func chaosScenario(t *testing.T, seed int64) (*Job, []trace.Record) {
	t.Helper()
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	opt.Recovery = core.DefaultRecoveryOptions()
	sys, err := core.NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	sys.Engine().SetTracer(rec)

	cfg := DefaultConfig().WithRecovery(opt.Recovery)
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	plan := faults.Chaos(faults.ChaosConfig{
		Seed:          seed,
		Horizon:       4 * sim.Second,
		Start:         sim.Time(100 * sim.Millisecond),
		MeanBetween:   500 * sim.Millisecond,
		MeanOutage:    200 * sim.Millisecond,
		FlapWeight:    3,
		DegradeWeight: 1,
		BurstWeight:   1,
	}, sys.TB.FrontLinks...)
	// One storage-path flap: the receive-side SAN goes dark briefly, so the
	// write path stalls and must come back in-protocol as well.
	plan.FailWindow(sys.TB.DstSAN[0], sim.Time(600*sim.Millisecond), 150*sim.Millisecond)
	s.ApplyFaults(plan)

	j, err := s.Submit(JobSpec{ID: "chaos", Tenant: "t0", Protocol: ProtoRFTP,
		Bytes: 16 * units.GB})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunToCompletion(300 * sim.Second) {
		t.Fatalf("chaos job did not finish: state=%v", j.State)
	}
	return j, rec.Events
}

// TestChaosAcceptance is the tentpole acceptance check: under a seeded
// schedule of link flaps, degradation and injected error completions, an
// iSER-backed RFTP job completes with every byte delivered exactly once,
// and recovery happens in-protocol — the scheduler never requeues the job.
func TestChaosAcceptance(t *testing.T) {
	j, events := chaosScenario(t, 7)
	if j.State != StateDone {
		t.Fatalf("job state %v, want done", j.State)
	}
	if got, want := j.Moved(), float64(16*units.GB); got != want {
		t.Fatalf("delivered %g bytes, want exactly %g", got, want)
	}
	if j.Retries != 0 {
		t.Fatalf("scheduler requeued the job %d times; recovery must stay in-protocol", j.Retries)
	}
	if j.Recoveries() == 0 {
		t.Fatal("no in-protocol recoveries recorded under the chaos schedule")
	}
	if j.Retransmitted() <= 0 {
		t.Fatal("recoveries recorded but nothing retransmitted")
	}
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
}

// TestChaosTraceBitIdentical replays the acceptance scenario twice with the
// same seed and requires bit-identical event traces — timestamps,
// subsystems and messages all equal, record for record.
func TestChaosTraceBitIdentical(t *testing.T) {
	_, a := chaosScenario(t, 7)
	_, b := chaosScenario(t, 7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("traces diverge at event %d:\n  %+v\n  %+v", i, a[i], b[i])
			}
		}
		t.Fatal("traces differ")
	}
	// A different seed must actually change the schedule, or the identity
	// check above proves nothing.
	_, c := chaosScenario(t, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different chaos seeds produced identical traces")
	}
}
