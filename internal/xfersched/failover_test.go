package xfersched

import (
	"math"
	"strings"
	"testing"

	"e2edt/internal/core"
	"e2edt/internal/railmgr"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// railSched builds a scheduler whose system runs recovery with rail
// management enabled, with tight test timings.
func railSched(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	opt.Recovery = core.RecoveryOptions{
		Enabled:          true,
		MaxReplays:       8,
		ReplayDelay:      50 * sim.Millisecond,
		AckTimeout:       100 * sim.Millisecond,
		RetryBackoff:     50 * sim.Millisecond,
		RetryBackoffMax:  100 * sim.Millisecond,
		MaxStreamRetries: 24,
		Rails: railmgr.Policy{
			Enabled:        true,
			ProbeEvery:     50 * sim.Millisecond,
			ProbeTimeout:   10 * sim.Millisecond,
			ProbeBytes:     64,
			FailbackProbes: 2,
			MissedProbes:   2,
		},
	}
	sys, err := core.NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestFailoverAbsorbedWithoutRequeue: one rail dies permanently under a
// scheduled job. The transfer migrates its streams in-protocol; the
// scheduler must keep the job admitted (zero retries) and surface the
// migration in its accounting.
func TestFailoverAbsorbedWithoutRequeue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	cfg.StreamBudget = 3
	s := railSched(t, cfg)
	j, err := s.Submit(spec("j0", "a", 12*units.GB))
	if err != nil {
		t.Fatal(err)
	}
	s.eng.At(0.2, s.Sys.TB.FrontLinks[1].Fail) // never restored
	if !s.RunToCompletion(60 * sim.Second) {
		t.Fatal("job did not complete after failover")
	}
	if j.State != StateDone {
		t.Fatalf("state %v, want done", j.State)
	}
	if j.Retries != 0 {
		t.Fatalf("scheduler requeued %d times; failover should have been absorbed in-protocol", j.Retries)
	}
	if j.Migrations() < 1 {
		t.Fatalf("migrations = %d, want ≥1", j.Migrations())
	}
	if math.Abs(j.Moved()-float64(j.Spec.Bytes)) > 1 {
		t.Fatalf("moved %v of %d", j.Moved(), j.Spec.Bytes)
	}
	r := s.Report()
	if r.TotalMigrations != j.Migrations() {
		t.Fatalf("report migrations %d != job %d", r.TotalMigrations, j.Migrations())
	}
	for _, tbl := range []string{r.SummaryTable().String(), r.TenantTable().String()} {
		if !strings.Contains(tbl, "migr") {
			t.Fatalf("table missing migration column:\n%s", tbl)
		}
	}
}

// TestWatchdogGraceCoversMigration is the regression test for the stall
// race near the budget boundary: a double outage keeps a job's *visible*
// (window-hidden) progress flat for longer than StallAfter+recoveryBudget
// — the static horizon — while every individual recovery ladder stays
// survivable. The fixed watchdog sizes its grace off the active recovery
// kind (a migration pays probing and re-handshakes that a plain
// retransmission never does) and must not requeue; the old static budget
// declared the job stalled mid-failover and threw away the attempt.
//
// Timeline (virtual seconds), with AckTimeout=0.1, backoff 0.05..0.1 ×24
// (recoveryBudget=2.45) and StallAfter=0.3 → static horizon 2.75:
//
//	0.30          all three rails die; streams park, kind=failover
//	1.00          rails restored; streams resume ≤1.11 (backoff phase)
//	1.12          rails die again — the 1 GB credit window is not yet
//	              cleared, so no *visible* progress since 0.30
//	3.05+         static horizon crossed mid-outage: old watchdog requeues
//	3.20          rails restored; streams resume, job completes
func TestWatchdogGraceCoversMigration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	cfg.StreamBudget = 3
	cfg.CheckEvery = 50 * sim.Millisecond
	cfg.StallAfter = 300 * sim.Millisecond
	cfg.RFTP.BlockSize = 16 * units.MB // 64 credits × 16 MB = 1 GB window
	s := railSched(t, cfg)
	j, err := s.Submit(spec("j0", "a", 24*units.GB))
	if err != nil {
		t.Fatal(err)
	}
	kill := func(at sim.Time) {
		s.eng.At(at, func() {
			for _, l := range s.Sys.TB.FrontLinks {
				l.Fail()
			}
		})
	}
	restore := func(at sim.Time) {
		s.eng.At(at, func() {
			for _, l := range s.Sys.TB.FrontLinks {
				l.Restore()
			}
		})
	}
	kill(0.30)
	restore(1.00)
	kill(1.12)
	restore(3.20)
	if !s.RunToCompletion(120 * sim.Second) {
		t.Fatal("job did not complete")
	}
	if j.State != StateDone {
		t.Fatalf("state %v, want done", j.State)
	}
	if j.Retries != 0 {
		t.Fatalf("watchdog requeued %d times mid-failover; kind-aware grace should have held it back", j.Retries)
	}
	if j.Migrations() < 1 {
		t.Fatalf("migrations = %d, want ≥1 (streams parked on the failover ladder)", j.Migrations())
	}
	if math.Abs(j.Moved()-float64(j.Spec.Bytes)) > 1 {
		t.Fatalf("moved %v of %d", j.Moved(), j.Spec.Bytes)
	}
}
