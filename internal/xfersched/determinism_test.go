package xfersched

import (
	"fmt"
	"strings"
	"testing"

	"e2edt/internal/core"
	"e2edt/internal/fluid"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// fingerprint renders every bit-relevant outcome of a run: per-job start,
// finish and retry counts with exact float bits (%x), plus the aggregate
// report numbers.
func fingerprint(s *Scheduler) string {
	var b strings.Builder
	for _, j := range s.Jobs() {
		fmt.Fprintf(&b, "%s %s %x %x %d %d\n",
			j.Spec.ID, j.State, float64(j.FirstStart), float64(j.Finished),
			j.Retries, j.streams)
	}
	r := s.Report()
	fmt.Fprintf(&b, "agg %x %x %x %d\n",
		r.AggregateGoodput, r.P99Wait, r.MeanSlowdown, r.TotalRetries)
	return b.String()
}

// runTrace executes one full scheduler run over a fresh system, with a
// mid-run link failure to exercise the retry path too.
func runTrace(t *testing.T, tc TraceConfig) string {
	t.Helper()
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	sys, err := core.NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 3
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.WithTenantWeights(tc.Tenants)
	s.SubmitTrace(GenerateTrace(tc))
	s.FailLink(sys.TB.FrontLinks[0], 5, 8*sim.Second)
	if !s.RunToCompletion(1200 * sim.Second) {
		t.Fatal("trace did not finish")
	}
	return fingerprint(s)
}

// TestDeterministicSchedule: the same trace on the same config produces a
// bit-identical schedule — start times, finish times, retries, stream
// allocations and aggregate metrics all match across two independent runs.
func TestDeterministicSchedule(t *testing.T) {
	tc := DefaultTraceConfig()
	tc.Jobs = 10
	tc.JobsPerMinute = 40
	tc.MinBytes = units.GB
	tc.MaxBytes = 5 * units.GB
	a := runTrace(t, tc)
	b := runTrace(t, tc)
	if a != b {
		t.Fatalf("schedules diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

// TestOptimizedSolverTraceBitIdentical pins the incremental-solver and
// event-recycling optimizations to the unoptimized behavior: the same
// seeded trace run with the legacy from-scratch solver and eager event
// allocation must produce a bit-identical schedule fingerprint (exact
// float bits on every start/finish time and aggregate metric). This is the
// guarantee that lets the BENCH_PR3 speedups claim zero behavior change.
func TestOptimizedSolverTraceBitIdentical(t *testing.T) {
	tc := DefaultTraceConfig()
	tc.Jobs = 10
	tc.JobsPerMinute = 40
	tc.MinBytes = units.GB
	tc.MaxBytes = 5 * units.GB
	optimized := runTrace(t, tc)

	fluid.LegacyFullSolve = true
	sim.LegacyAlloc = true
	defer func() {
		fluid.LegacyFullSolve = false
		sim.LegacyAlloc = false
	}()
	legacy := runTrace(t, tc)

	if optimized != legacy {
		t.Fatalf("optimized solver diverged from unoptimized baseline:\n--- optimized ---\n%s--- legacy ---\n%s",
			optimized, legacy)
	}
}

// TestTraceGeneratorDeterminism: same seed → same trace; different seed →
// different trace.
func TestTraceGeneratorDeterminism(t *testing.T) {
	tc := DefaultTraceConfig()
	a := GenerateTrace(tc)
	b := GenerateTrace(tc)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	// JobSpec is no longer comparable (object batches carry a slice), so
	// compare the canonical serialization.
	if FormatTrace(a) != FormatTrace(b) {
		t.Fatalf("same seed produced different traces")
	}
	tc.Seed = 2
	c := GenerateTrace(tc)
	if FormatTrace(a) == FormatTrace(c) {
		t.Fatal("different seeds produced identical traces")
	}
}
