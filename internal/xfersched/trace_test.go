package xfersched

import (
	"reflect"
	"strings"
	"testing"

	"e2edt/internal/sim"
)

// TestTraceRoundTrip: a generated trace survives format → parse unchanged.
func TestTraceRoundTrip(t *testing.T) {
	tc := DefaultTraceConfig()
	tc.GridFTPFraction = 0.3
	trace := GenerateTrace(tc)
	trace[3].Spec.Deadline = 90 * sim.Second
	text := FormatTrace(trace)
	got, err := ParseTrace(text)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, trace) {
		t.Fatalf("round trip changed the trace:\n%s", text)
	}
}

// TestParseTraceComments: comments and blank lines are skipped, inline
// comments stripped.
func TestParseTraceComments(t *testing.T) {
	got, err := ParseTrace("# header\n\n 0.5 j0 bio rftp fwd 1024 1 0 # tail\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Spec.ID != "j0" || got[0].Spec.Bytes != 1024 {
		t.Fatalf("parsed %+v", got)
	}
}

// TestParseTraceRejects: malformed lines fail with the line number.
func TestParseTraceRejects(t *testing.T) {
	bad := []string{
		"x j0 t rftp fwd 1 1 0",        // bad time
		"-1 j0 t rftp fwd 1 1 0",       // negative time
		"0 j0 t ftp fwd 1 1 0",         // bad protocol
		"0 j0 t rftp up 1 1 0",         // bad direction
		"0 j0 t rftp fwd 0 1 0",        // zero bytes
		"0 j0 t rftp fwd 1 -1 0",       // negative files
		"0 j0 t rftp fwd 1 1 z",        // bad priority
		"0 j0 t rftp fwd 1 1 0 -5",     // bad deadline
		"0 j0 t rftp fwd 1 1",          // short line
		"0 j0 t rftp fwd 1 1 0 5 more", // long line
		"NaN j0 t rftp fwd 1 1 0",      // NaN time
	}
	for _, line := range bad {
		if _, err := ParseTrace(line); err == nil {
			t.Errorf("accepted %q", line)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error for %q lacks line number: %v", line, err)
		}
	}
}

// FuzzParseTrace: the parser must never panic, and every input it accepts
// must round-trip — format the parsed trace and parse it again to an
// identical result. This pins the grammar: anything the parser lets
// through is expressible in the canonical format.
func FuzzParseTrace(f *testing.F) {
	f.Add("# at id tenant proto dir bytes files prio [deadline]\n")
	f.Add("0.5 j0 bio rftp fwd 1024 1 0\n1.5 j1 astro gridftp rev 2048 3 1 60\n")
	f.Add("1e3 a b rftp fwd 9223372036854775807 0 -1")
	f.Add("0 j0 t rftp fwd 1 1 0 # comment")
	f.Add(FormatTrace(GenerateTrace(DefaultTraceConfig())))
	f.Fuzz(func(t *testing.T, text string) {
		trace, err := ParseTrace(text)
		if err != nil {
			return
		}
		again, err := ParseTrace(FormatTrace(trace))
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !reflect.DeepEqual(trace, again) {
			t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", trace, again)
		}
	})
}
