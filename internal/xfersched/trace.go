package xfersched

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"e2edt/internal/core"
	"e2edt/internal/sim"
)

// TraceTenant is one tenant's share of a generated workload.
type TraceTenant struct {
	Name   string
	Weight float64 // fair-share weight, also the submission mix weight
}

// TraceConfig parameterizes a synthetic job trace. The generator is
// deterministic: the same config (including Seed) always yields the same
// trace, which is what makes scheduler runs reproducible end to end.
type TraceConfig struct {
	// Seed drives the trace's PRNG.
	Seed int64
	// Jobs is the trace length.
	Jobs int
	// JobsPerMinute is the offered load; interarrivals are exponential
	// (Poisson arrivals).
	JobsPerMinute float64
	// Tenants submit jobs proportionally to their weights; empty means one
	// tenant "t0" at weight 1.
	Tenants []TraceTenant
	// MinBytes and MaxBytes bound the uniform job-size draw.
	MinBytes, MaxBytes int64
	// GridFTPFraction of jobs use the TCP baseline tool instead of RFTP.
	GridFTPFraction float64
	// ReverseFraction of jobs flow B→A instead of A→B.
	ReverseFraction float64
	// PriorityLevels draws priorities uniformly from [0, PriorityLevels);
	// 0 or 1 gives every job priority 0.
	PriorityLevels int
}

// DefaultTraceConfig is a moderate mixed workload for the LAN system.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Seed:          1,
		Jobs:          24,
		JobsPerMinute: 30,
		Tenants: []TraceTenant{
			{Name: "astro", Weight: 2},
			{Name: "bio", Weight: 1},
			{Name: "climate", Weight: 1},
		},
		MinBytes:        2 << 30, // 2 GB
		MaxBytes:        12 << 30,
		ReverseFraction: 0.25,
		PriorityLevels:  2,
	}
}

// TimedJob is one trace entry: a job and its submission time.
type TimedJob struct {
	At   sim.Time
	Spec JobSpec
}

// GenerateTrace expands a TraceConfig into a concrete submission schedule.
func GenerateTrace(tc TraceConfig) []TimedJob {
	if tc.Jobs <= 0 {
		return nil
	}
	tenants := tc.Tenants
	if len(tenants) == 0 {
		tenants = []TraceTenant{{Name: "t0", Weight: 1}}
	}
	totalW := 0.0
	for _, t := range tenants {
		totalW += t.Weight
	}
	rate := tc.JobsPerMinute / 60 // jobs per virtual second
	if rate <= 0 {
		rate = 1
	}
	minB, maxB := tc.MinBytes, tc.MaxBytes
	if minB <= 0 {
		minB = 1 << 30
	}
	if maxB < minB {
		maxB = minB
	}

	r := rand.New(rand.NewSource(tc.Seed))
	out := make([]TimedJob, 0, tc.Jobs)
	at := sim.Time(0)
	for i := 0; i < tc.Jobs; i++ {
		at += sim.Time(r.ExpFloat64() / rate)
		pick := r.Float64() * totalW
		tenant := tenants[len(tenants)-1].Name
		for _, t := range tenants {
			if pick < t.Weight {
				tenant = t.Name
				break
			}
			pick -= t.Weight
		}
		proto := ProtoRFTP
		if r.Float64() < tc.GridFTPFraction {
			proto = ProtoGridFTP
		}
		dir := core.Forward
		if r.Float64() < tc.ReverseFraction {
			dir = core.Reverse
		}
		prio := 0
		if tc.PriorityLevels > 1 {
			prio = r.Intn(tc.PriorityLevels)
		}
		bytes := minB
		if maxB > minB {
			bytes += r.Int63n(maxB - minB + 1)
		}
		out = append(out, TimedJob{
			At: at,
			Spec: JobSpec{
				ID:       fmt.Sprintf("j%03d", i),
				Tenant:   tenant,
				Protocol: proto,
				Dir:      dir,
				Bytes:    bytes,
				Files:    1 + r.Intn(8),
				Priority: prio,
			},
		})
	}
	return out
}

// FormatTrace renders a trace in the plain-text job-trace format, one line
// per entry:
//
//	<at> <id> <tenant> <proto> <dir> <bytes> <files> <prio> [deadline]
//
// at and deadline are seconds (deadline omitted when zero), proto is
// rftp|gridftp, dir is fwd|rev. ParseTrace reads the same format back;
// '#' starts a comment and blank lines are skipped.
func FormatTrace(trace []TimedJob) string {
	var b strings.Builder
	b.WriteString("# at id tenant proto dir bytes files prio [deadline]\n")
	for _, tj := range trace {
		dir := "fwd"
		if tj.Spec.Dir == core.Reverse {
			dir = "rev"
		}
		fmt.Fprintf(&b, "%g %s %s %s %s %d %d %d",
			float64(tj.At), tj.Spec.ID, tj.Spec.Tenant, tj.Spec.Protocol.String(),
			dir, tj.Spec.Bytes, tj.Spec.Files, tj.Spec.Priority)
		if tj.Spec.Deadline > 0 {
			fmt.Fprintf(&b, " %g", float64(tj.Spec.Deadline))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseTrace reads the job-trace format produced by FormatTrace. It
// validates each line strictly: every parse error names the offending
// line, and the returned trace round-trips through FormatTrace unchanged.
func ParseTrace(text string) ([]TimedJob, error) {
	var out []TimedJob
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		if len(f) != 8 && len(f) != 9 {
			return nil, fmt.Errorf("trace line %d: want 8 or 9 fields, got %d", ln+1, len(f))
		}
		at, err := strconv.ParseFloat(f[0], 64)
		if err != nil || at < 0 || at != at || at > 1e18 {
			return nil, fmt.Errorf("trace line %d: bad submission time %q", ln+1, f[0])
		}
		spec := JobSpec{ID: f[1], Tenant: f[2]}
		switch f[3] {
		case "rftp":
			spec.Protocol = ProtoRFTP
		case "gridftp":
			spec.Protocol = ProtoGridFTP
		default:
			return nil, fmt.Errorf("trace line %d: bad protocol %q", ln+1, f[3])
		}
		switch f[4] {
		case "fwd":
			spec.Dir = core.Forward
		case "rev":
			spec.Dir = core.Reverse
		default:
			return nil, fmt.Errorf("trace line %d: bad direction %q", ln+1, f[4])
		}
		spec.Bytes, err = strconv.ParseInt(f[5], 10, 64)
		if err != nil || spec.Bytes <= 0 {
			return nil, fmt.Errorf("trace line %d: bad byte count %q", ln+1, f[5])
		}
		spec.Files, err = strconv.Atoi(f[6])
		if err != nil || spec.Files < 0 {
			return nil, fmt.Errorf("trace line %d: bad file count %q", ln+1, f[6])
		}
		spec.Priority, err = strconv.Atoi(f[7])
		if err != nil {
			return nil, fmt.Errorf("trace line %d: bad priority %q", ln+1, f[7])
		}
		if len(f) == 9 {
			d, err := strconv.ParseFloat(f[8], 64)
			if err != nil || d <= 0 || d != d || d > 1e18 {
				return nil, fmt.Errorf("trace line %d: bad deadline %q", ln+1, f[8])
			}
			spec.Deadline = sim.Duration(d)
		}
		out = append(out, TimedJob{At: sim.Time(at), Spec: spec})
	}
	return out, nil
}

// SubmitTrace schedules every trace entry for future submission. Call
// before running the engine; entries at virtual time < now panic (the
// engine rejects scheduling in the past).
func (s *Scheduler) SubmitTrace(trace []TimedJob) {
	for _, tj := range trace {
		s.SubmitAt(tj.At, tj.Spec)
	}
}

// WithTenantWeights registers the trace's tenants (with their weights) on
// the scheduler, so arbitration matches the generated mix.
func (s *Scheduler) WithTenantWeights(tenants []TraceTenant) *Scheduler {
	for _, t := range tenants {
		s.SetTenant(t.Name, t.Weight)
	}
	return s
}
