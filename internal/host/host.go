// Package host models the software side of a NUMA machine: processes,
// threads, thread placement (numactl-style binding versus the default
// scheduler), CPU cycle accounting, and DMA-capable devices.
//
// CPU consumption is expressed in core-seconds: "122% CPU" in the paper
// means 1.22 core-seconds consumed per second of wall time. A thread charges
// cycles-per-byte coefficients onto the fluid flow that carries its data;
// utilization reports then fall out of the fluid simulator's usage
// accounting.
package host

import (
	"fmt"
	"sort"
	"strings"

	"e2edt/internal/fluid"
	"e2edt/internal/numa"
)

// CPU accounting categories, mirroring the breakdown in Figures 4, 10, 12.
const (
	CatUser = "user" // user-space protocol processing
	CatSys  = "sys"  // kernel protocol processing
	CatCopy = "copy" // user↔kernel data copies
	CatIRQ  = "irq"  // interrupt handling
	CatIO   = "io"   // file/storage I/O processing
	CatLoad = "load" // data loading (e.g. /dev/zero fill) — Figure 3/4
)

// Host is one machine: a NUMA hardware model plus processes and devices.
type Host struct {
	Name string
	M    *numa.Machine
	Sim  *fluid.Sim

	processes []*Process
	devices   []*Device
	// physCores identifies this host's physical core resources, so that
	// CPU accounting can exclude per-thread virtual limiter resources.
	physCores map[*fluid.Resource]bool
	nextCore  []int // per-node round-robin pin counter
	nextNode  int   // round-robin node assignment for bound processes
}

// New wraps a NUMA machine in a host.
func New(name string, m *numa.Machine) *Host {
	h := &Host{
		Name:      name,
		M:         m,
		Sim:       m.Sim,
		physCores: make(map[*fluid.Resource]bool),
		nextCore:  make([]int, len(m.Nodes)),
	}
	for _, n := range m.Nodes {
		for _, c := range n.Cores {
			h.physCores[c.Res] = true
		}
	}
	return h
}

// Process is a named group of threads sharing a placement policy.
type Process struct {
	Host   *Host
	Name   string
	Policy numa.Policy
	// Node is the bound node under PolicyBind (nil otherwise).
	Node    *numa.Node
	Threads []*Thread
}

// NewProcess creates a process. Under PolicyBind with a nil node, nodes are
// assigned round-robin (one target process per node, as the paper's
// numactl-per-node setup does).
func (h *Host) NewProcess(name string, policy numa.Policy, node *numa.Node) *Process {
	if policy == numa.PolicyBind && node == nil {
		node = h.M.Nodes[h.nextNode%len(h.M.Nodes)]
		h.nextNode++
	}
	p := &Process{Host: h, Name: name, Policy: policy, Node: node}
	h.processes = append(h.processes, p)
	return p
}

// Processes returns the host's processes.
func (h *Host) Processes() []*Process { return h.processes }

// Thread is a schedulable execution context. A bound thread is pinned to a
// specific core; an unbound thread migrates across all cores (charged as a
// uniform spread) but can still use at most one core's worth of cycles,
// enforced through a virtual limiter resource.
type Thread struct {
	Proc *Process
	ID   int
	// Core is the pinned core, nil when unbound.
	Core *numa.Core
	// limiter caps the thread at 1 core-second/second.
	limiter *fluid.Resource
}

// NewThread adds a thread to the process. Bound processes pin threads
// round-robin over the bound node's cores.
func (p *Process) NewThread() *Thread {
	h := p.Host
	t := &Thread{Proc: p, ID: len(p.Threads)}
	t.limiter = h.Sim.AddResource(
		fmt.Sprintf("%s/%s/t%d/limit", h.Name, p.Name, t.ID), 1)
	if p.Policy == numa.PolicyBind && p.Node != nil {
		idx := h.nextCore[p.Node.ID] % len(p.Node.Cores)
		h.nextCore[p.Node.ID]++
		t.Core = p.Node.Cores[idx]
	}
	p.Threads = append(p.Threads, t)
	return t
}

// Release retires the thread's virtual limiter resource from the fluid
// network. Call it when the thread's owning session is torn down and no
// flow will ever charge this thread again: limiters are per-session
// state, and a workload that opens thousands of short sessions would
// otherwise grow the network — and every structural solve over it —
// without bound. Accumulated CPU accounting is unaffected. Releasing a
// thread that a registered flow still charges panics in the network.
func (t *Thread) Release() {
	t.Proc.Host.Sim.RemoveResource(t.limiter)
}

// Release retires the limiters of every thread in the process.
func (p *Process) Release() {
	for _, t := range p.Threads {
		t.Release()
	}
}

// Pin binds the thread to a specific core (sched_setaffinity); nil unpins
// it back to the migrating-scheduler model. Pinning only changes where
// future ChargeCPU calls land — flows already charged keep their old
// coefficients until rebuilt, and rebuilders must invalidate the fluid
// network afterwards (see numa.Buffer.Rehome).
func (t *Thread) Pin(c *numa.Core) { t.Core = c }

// Node returns the node the thread executes on, nil when unbound.
func (t *Thread) Node() *numa.Node {
	if t.Core != nil {
		return t.Core.Node
	}
	if t.Proc.Policy == numa.PolicyBind {
		return t.Proc.Node
	}
	return nil
}

// tag composes the accounting tag "process:category".
func (p *Process) tag(category string) string { return p.Name + ":" + category }

// ChargeCPU attaches cyclesPerByte of CPU work in the given category to
// flow f. The work lands on the thread's pinned core, or is spread across
// every core for an unbound thread; either way the per-thread limiter caps
// the flow at one core's throughput for this work component.
func (t *Thread) ChargeCPU(f *fluid.Flow, cyclesPerByte float64, category string) {
	if cyclesPerByte <= 0 {
		return
	}
	h := t.Proc.Host
	coeff := cyclesPerByte / h.M.Cfg.CoreHz // core-seconds per byte
	tag := t.Proc.tag(category)
	f.UseTagged(t.limiter, coeff, "limiter")
	if t.Core != nil {
		f.UseTagged(t.Core.Res, coeff, tag)
		return
	}
	cores := 0
	for _, n := range h.M.Nodes {
		cores += len(n.Cores)
	}
	per := coeff / float64(cores)
	for _, n := range h.M.Nodes {
		for _, c := range n.Cores {
			f.UseTagged(c.Res, per, tag)
		}
	}
}

// MemoryPenalty returns the CPU multiplier for work over operands in buf:
// 1.0 when all accesses are local, rising with the remote fraction, and —
// for writes to memory observed by other nodes — with the coherency
// penalty.
func (t *Thread) MemoryPenalty(buf *numa.Buffer, write bool) float64 {
	m := t.Proc.Host.M
	remote := m.RemoteShare(buf, t.Node())
	p := 1 + (m.Cfg.RemoteAccessPenalty-1)*remote
	if write {
		p += (m.Cfg.CoherencyWritePenalty - 1) * remote
	}
	return p
}

// ChargeMemory attaches memory-controller and interconnect charges for this
// thread touching buf.
func (t *Thread) ChargeMemory(f *fluid.Flow, buf *numa.Buffer, bytesPerUnit float64, write bool, category string) {
	t.ChargeMemoryScaled(f, buf, bytesPerUnit, write, 1, category)
}

// ChargeMemoryScaled is ChargeMemory with a memory-controller discount for
// cache-resident buffers (see numa.Access.MemScale).
func (t *Thread) ChargeMemoryScaled(f *fluid.Flow, buf *numa.Buffer, bytesPerUnit float64, write bool, memScale float64, category string) {
	t.Proc.Host.M.Charge(f, numa.Access{
		Buffer:       buf,
		From:         t.Node(),
		BytesPerUnit: bytesPerUnit,
		Write:        write,
		MemScale:     memScale,
		Tag:          t.Proc.tag(category),
	})
}

// ChargeCopy models memcpy-style data movement: read src, write dst, plus
// CPU cycles (already penalty-adjusted for the placement of both buffers).
func (t *Thread) ChargeCopy(f *fluid.Flow, src, dst *numa.Buffer, bytesPerUnit, cyclesPerByte float64, category string) {
	t.ChargeMemory(f, src, bytesPerUnit, false, category)
	t.ChargeMemory(f, dst, bytesPerUnit, true, category)
	penalty := (t.MemoryPenalty(src, false) + t.MemoryPenalty(dst, true)) / 2
	t.ChargeCPU(f, cyclesPerByte*bytesPerUnit*penalty, category)
}

// Device is a DMA-capable PCIe device (NIC, HBA) with a home node. DMA
// consumes memory and interconnect bandwidth but no CPU.
type Device struct {
	Host *Host
	Name string
	Node *numa.Node
}

// NewDevice registers a device on the given node.
func (h *Host) NewDevice(name string, node *numa.Node) *Device {
	if node == nil {
		panic("host: device needs a home node")
	}
	d := &Device{Host: h, Name: name, Node: node}
	h.devices = append(h.devices, d)
	return d
}

// Devices returns the host's registered devices.
func (h *Host) Devices() []*Device { return h.devices }

// ChargeDMA attaches DMA traffic between the device and buf to flow f.
// write=true means the device writes into memory (receive path).
func (d *Device) ChargeDMA(f *fluid.Flow, buf *numa.Buffer, bytesPerUnit float64, write bool, tag string) {
	d.ChargeDMAScaled(f, buf, bytesPerUnit, write, 1, tag)
}

// ChargeDMAScaled is ChargeDMA with a memory-controller discount for
// cache-resident buffers (DDIO: NIC DMA served from the last-level cache).
func (d *Device) ChargeDMAScaled(f *fluid.Flow, buf *numa.Buffer, bytesPerUnit float64, write bool, memScale float64, tag string) {
	d.Host.M.Charge(f, numa.Access{
		Buffer:       buf,
		From:         d.Node,
		BytesPerUnit: bytesPerUnit,
		Write:        write,
		MemScale:     memScale,
		Tag:          tag,
	})
}

// CPUUsage returns core-seconds consumed on this host's physical cores,
// keyed by "process:category" tag, as accumulated by the fluid simulator.
func (h *Host) CPUUsage() map[string]float64 {
	h.Sim.Sync()
	return h.Sim.UsageByTag(func(r *fluid.Resource) bool { return h.physCores[r] })
}

// CPUReport summarizes consumption per category (core-seconds).
type CPUReport struct {
	// ByCategory maps category (user/sys/copy/irq/io) to core-seconds.
	ByCategory map[string]float64
	// Total is the sum over categories.
	Total float64
}

// Percent returns a category's average utilization over elapsed seconds, in
// percent of one core (the paper's "122% CPU" convention).
func (r CPUReport) Percent(category string, elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return r.ByCategory[category] / elapsed * 100
}

// TotalPercent returns total utilization in percent-of-one-core.
func (r CPUReport) TotalPercent(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return r.Total / elapsed * 100
}

// String renders categories sorted by descending consumption.
func (r CPUReport) String() string {
	type kv struct {
		k string
		v float64
	}
	var items []kv
	for k, v := range r.ByCategory {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].k < items[j].k
	})
	var b strings.Builder
	for i, it := range items {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.2fs", it.k, it.v)
	}
	return b.String()
}

// sortedTags returns the map's keys in sorted order, so category sums
// accumulate deterministically (map iteration order would perturb the
// last float bit between otherwise identical runs).
func sortedTags(m map[string]float64) []string {
	tags := make([]string, 0, len(m))
	for t := range m {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// CPUReport aggregates usage for one process across categories.
func (p *Process) CPUReport() CPUReport {
	rep := CPUReport{ByCategory: make(map[string]float64)}
	usage := p.Host.CPUUsage()
	prefix := p.Name + ":"
	for _, tag := range sortedTags(usage) {
		if strings.HasPrefix(tag, prefix) {
			cat := strings.TrimPrefix(tag, prefix)
			rep.ByCategory[cat] += usage[tag]
			rep.Total += usage[tag]
		}
	}
	return rep
}

// HostCPUReport aggregates usage for all processes on the host by category.
func (h *Host) HostCPUReport() CPUReport {
	rep := CPUReport{ByCategory: make(map[string]float64)}
	usage := h.CPUUsage()
	for _, tag := range sortedTags(usage) {
		cat := tag
		if i := strings.LastIndex(tag, ":"); i >= 0 {
			cat = tag[i+1:]
		}
		rep.ByCategory[cat] += usage[tag]
		rep.Total += usage[tag]
	}
	return rep
}
