package host

import (
	"math"
	"testing"

	"e2edt/internal/fluid"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

func testMachine(t *testing.T) (*sim.Engine, *fluid.Sim, *Host) {
	t.Helper()
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	m := numa.MustNew(s, numa.Config{
		Name:                  "h",
		Nodes:                 2,
		CoresPerNode:          4,
		CoreHz:                2e9,
		MemBandwidthPerNode:   25 * units.GBps,
		InterconnectBandwidth: 16 * units.GBps,
		RemoteAccessPenalty:   1.4,
		CoherencyWritePenalty: 3.0,
	})
	return eng, s, New("h", m)
}

func TestBoundProcessPinsThreadsRoundRobin(t *testing.T) {
	_, _, h := testMachine(t)
	p := h.NewProcess("tgt", numa.PolicyBind, h.M.Node(0))
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		th := p.NewThread()
		if th.Core == nil {
			t.Fatal("bound thread has no core")
		}
		if th.Core.Node != h.M.Node(0) {
			t.Fatal("bound thread pinned off its node")
		}
		seen[th.Core.ID]++
	}
	// 8 threads over 4 cores → each core twice.
	for id, n := range seen {
		if n != 2 {
			t.Fatalf("core %d pinned %d threads, want 2", id, n)
		}
	}
}

func TestBindWithoutNodeAssignsRoundRobin(t *testing.T) {
	_, _, h := testMachine(t)
	p0 := h.NewProcess("a", numa.PolicyBind, nil)
	p1 := h.NewProcess("b", numa.PolicyBind, nil)
	p2 := h.NewProcess("c", numa.PolicyBind, nil)
	if p0.Node != h.M.Node(0) || p1.Node != h.M.Node(1) || p2.Node != h.M.Node(0) {
		t.Fatalf("round-robin node assignment broken: %v %v %v",
			p0.Node.ID, p1.Node.ID, p2.Node.ID)
	}
}

func TestUnboundThreadHasNoCore(t *testing.T) {
	_, _, h := testMachine(t)
	p := h.NewProcess("app", numa.PolicyDefault, nil)
	th := p.NewThread()
	if th.Core != nil || th.Node() != nil {
		t.Fatal("default-policy thread should be unpinned")
	}
}

func TestChargeCPUPinnedLimitsToOneCore(t *testing.T) {
	eng, s, h := testMachine(t)
	p := h.NewProcess("app", numa.PolicyBind, h.M.Node(0))
	th := p.NewThread()
	f := s.NewFlow("f", math.Inf(1))
	// 2 cycles per byte on a 2 GHz core → max 1 GB/s.
	th.ChargeCPU(f, 2, CatUser)
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(10)
	s.Sync()
	if got, want := f.Rate(), 1*units.GBps; math.Abs(got-want) > 1 {
		t.Fatalf("rate = %v, want %v (one core at 2 cycles/B)", got, want)
	}
}

func TestChargeCPUUnpinnedStillCappedAtOneCore(t *testing.T) {
	eng, s, h := testMachine(t)
	p := h.NewProcess("app", numa.PolicyDefault, nil)
	th := p.NewThread()
	f := s.NewFlow("f", math.Inf(1))
	th.ChargeCPU(f, 2, CatUser)
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(10)
	s.Sync()
	// Spread over 8 cores but limiter caps at 1 core equivalent → 1 GB/s.
	if got, want := f.Rate(), 1*units.GBps; math.Abs(got-want) > 1 {
		t.Fatalf("rate = %v, want %v (limiter should cap)", got, want)
	}
}

func TestTwoThreadsOnSameCoreShare(t *testing.T) {
	eng, s, h := testMachine(t)
	// One core per node so both threads land on the same core.
	ssmall := fluid.NewSim(sim.NewEngine())
	_ = ssmall
	p := h.NewProcess("app", numa.PolicyBind, h.M.Node(0))
	t1 := p.NewThread()
	t2 := p.NewThread()
	t3 := p.NewThread()
	t4 := p.NewThread()
	t5 := p.NewThread() // wraps to core 0, same as t1
	if t5.Core != t1.Core {
		t.Fatal("expected round-robin wrap to reuse core 0")
	}
	_ = t2
	_ = t3
	_ = t4
	f1 := s.NewFlow("f1", math.Inf(1))
	t1.ChargeCPU(f1, 2, CatUser)
	f2 := s.NewFlow("f2", math.Inf(1))
	t5.ChargeCPU(f2, 2, CatUser)
	s.Start(&fluid.Transfer{Flow: f1, Remaining: math.Inf(1)})
	s.Start(&fluid.Transfer{Flow: f2, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	s.Sync()
	if got := f1.Rate() + f2.Rate(); math.Abs(got-1*units.GBps) > 1 {
		t.Fatalf("combined rate on one core = %v, want 1 GB/s", got)
	}
}

func TestCPUUsageAccounting(t *testing.T) {
	eng, s, h := testMachine(t)
	p := h.NewProcess("app", numa.PolicyBind, h.M.Node(0))
	th := p.NewThread()
	f := s.NewFlow("f", math.Inf(1))
	th.ChargeCPU(f, 2, CatUser) // saturates one core
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(10)
	rep := p.CPUReport()
	// One core fully busy for 10s → 10 core-seconds of "user".
	if got := rep.ByCategory[CatUser]; math.Abs(got-10) > 1e-6 {
		t.Fatalf("user core-seconds = %v, want 10", got)
	}
	if got := rep.Percent(CatUser, 10); math.Abs(got-100) > 1e-6 {
		t.Fatalf("user %% = %v, want 100", got)
	}
	if got := rep.TotalPercent(10); math.Abs(got-100) > 1e-6 {
		t.Fatalf("total %% = %v, want 100", got)
	}
	if rep.String() == "" {
		t.Fatal("report should render")
	}
}

func TestLimiterExcludedFromAccounting(t *testing.T) {
	eng, s, h := testMachine(t)
	p := h.NewProcess("app", numa.PolicyDefault, nil)
	th := p.NewThread()
	f := s.NewFlow("f", math.Inf(1))
	th.ChargeCPU(f, 2, CatSys)
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(10)
	rep := p.CPUReport()
	// Limiter consumption must not appear; only physical core seconds.
	if got := rep.ByCategory["limiter"]; got != 0 {
		t.Fatalf("limiter leaked into accounting: %v", got)
	}
	if got := rep.ByCategory[CatSys]; math.Abs(got-10) > 1e-6 {
		t.Fatalf("sys core-seconds = %v, want 10", got)
	}
}

func TestMemoryPenalty(t *testing.T) {
	_, _, h := testMachine(t)
	pBound := h.NewProcess("b", numa.PolicyBind, h.M.Node(0))
	th := pBound.NewThread()
	local := h.M.NewBuffer("local", h.M.Node(0))
	remote := h.M.NewBuffer("remote", h.M.Node(1))

	if got := th.MemoryPenalty(local, false); got != 1 {
		t.Fatalf("local read penalty = %v, want 1", got)
	}
	if got := th.MemoryPenalty(local, true); got != 1 {
		t.Fatalf("local write penalty = %v, want 1", got)
	}
	if got := th.MemoryPenalty(remote, false); math.Abs(got-1.4) > 1e-9 {
		t.Fatalf("remote read penalty = %v, want 1.4", got)
	}
	// Remote write: 1.4 latency + 2.0 coherency = 3.4.
	if got := th.MemoryPenalty(remote, true); math.Abs(got-3.4) > 1e-9 {
		t.Fatalf("remote write penalty = %v, want 3.4", got)
	}

	pDef := h.NewProcess("d", numa.PolicyDefault, nil)
	thD := pDef.NewThread()
	// Unpinned: half the accesses remote → half the penalties.
	if got := thD.MemoryPenalty(local, false); math.Abs(got-1.2) > 1e-9 {
		t.Fatalf("unpinned read penalty = %v, want 1.2", got)
	}
	if got := thD.MemoryPenalty(local, true); math.Abs(got-2.2) > 1e-9 {
		t.Fatalf("unpinned write penalty = %v, want 2.2", got)
	}
}

func TestChargeCopyMovesTraffic(t *testing.T) {
	eng, s, h := testMachine(t)
	p := h.NewProcess("cp", numa.PolicyBind, h.M.Node(0))
	th := p.NewThread()
	src := h.M.NewBuffer("src", h.M.Node(0))
	dst := h.M.NewBuffer("dst", h.M.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	th.ChargeCopy(f, src, dst, 1, 0.5, CatCopy)
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	s.Sync()
	// Memory: read+write both on node0 → 2×rate ≤ 25 GB/s → 12.5 GB/s.
	// CPU: 0.5 cyc/B at 2 GHz → 4 GB/s cap. CPU binds.
	if got := f.Rate(); math.Abs(got-4*units.GBps) > 1 {
		t.Fatalf("copy rate = %v, want 4 GB/s (CPU-bound)", got)
	}
	rep := p.CPUReport()
	if rep.ByCategory[CatCopy] <= 0 {
		t.Fatal("copy category not accounted")
	}
}

func TestDeviceDMA(t *testing.T) {
	eng, s, h := testMachine(t)
	dev := h.NewDevice("nic0", h.M.Node(0))
	remoteBuf := h.M.NewBuffer("b", h.M.Node(1))
	f := s.NewFlow("f", math.Inf(1))
	dev.ChargeDMA(f, remoteBuf, 1, false, "dma")
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	s.Sync()
	// DMA read of remote memory crosses QPI: 16 GB/s bound.
	if got := f.Rate(); math.Abs(got-16*units.GBps) > 1 {
		t.Fatalf("DMA rate = %v, want 16 GB/s", got)
	}
	// No CPU consumed.
	rep := h.HostCPUReport()
	if rep.Total != 0 {
		t.Fatalf("DMA consumed CPU: %v", rep.Total)
	}
	if len(h.Devices()) != 1 {
		t.Fatal("device not registered")
	}
}

func TestDeviceNeedsNode(t *testing.T) {
	_, _, h := testMachine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil device node")
		}
	}()
	h.NewDevice("bad", nil)
}

func TestZeroCyclesChargeIsNoop(t *testing.T) {
	_, s, h := testMachine(t)
	p := h.NewProcess("app", numa.PolicyDefault, nil)
	th := p.NewThread()
	f := s.NewFlow("f", 10)
	th.ChargeCPU(f, 0, CatUser)
	if len(f.Uses) != 0 {
		t.Fatal("zero cycles should attach nothing")
	}
}

func TestHostCPUReportAggregates(t *testing.T) {
	eng, s, h := testMachine(t)
	p1 := h.NewProcess("a", numa.PolicyBind, h.M.Node(0))
	p2 := h.NewProcess("b", numa.PolicyBind, h.M.Node(1))
	f1 := s.NewFlow("f1", math.Inf(1))
	p1.NewThread().ChargeCPU(f1, 2, CatUser)
	f2 := s.NewFlow("f2", math.Inf(1))
	p2.NewThread().ChargeCPU(f2, 2, CatSys)
	s.Start(&fluid.Transfer{Flow: f1, Remaining: math.Inf(1)})
	s.Start(&fluid.Transfer{Flow: f2, Remaining: math.Inf(1)})
	eng.RunUntil(5)
	rep := h.HostCPUReport()
	if math.Abs(rep.ByCategory[CatUser]-5) > 1e-6 || math.Abs(rep.ByCategory[CatSys]-5) > 1e-6 {
		t.Fatalf("host report wrong: %v", rep.ByCategory)
	}
	if len(h.Processes()) != 2 {
		t.Fatal("processes not registered")
	}
}
