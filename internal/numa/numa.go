// Package numa models a NUMA multi-core machine as a set of fluid resources:
// per-node memory controllers, per-core execution capacity, and inter-node
// interconnect links (QPI/HyperTransport-style).
//
// The package reproduces the hardware facts the paper's tuning exploits:
//
//   - Each NUMA node has its own memory controller with finite bandwidth;
//     peak machine bandwidth is only reachable when traffic is spread across
//     nodes (STREAM Triad ≈ 50 GB/s on the paper's 2-node hosts).
//   - Accesses from a core on node A to memory on node B cross the
//     interconnect and pay both an interconnect bandwidth charge and a CPU
//     efficiency penalty (latency-bound stalls).
//   - Writes to memory that is shared across nodes trigger cache-coherency
//     invalidations, which the paper identifies as the reason un-pinned iSER
//     targets burn 3× the CPU on write workloads (§4.2).
//   - PCIe devices (NICs, HBAs) have a home node; DMA to/from a remote
//     node's memory also crosses the interconnect.
package numa

import (
	"fmt"

	"e2edt/internal/fluid"
)

// Policy selects how threads and buffers are placed on nodes, mirroring the
// numactl/libnuma options the paper evaluates.
type Policy int

const (
	// PolicyDefault is the unpinned Linux scheduler: threads migrate across
	// all nodes, so a fraction (nodes-1)/nodes of memory accesses are
	// remote on average.
	PolicyDefault Policy = iota
	// PolicyBind pins a thread (and its buffers) to one node: all accesses
	// are local. This is the paper's "NUMA-tuned" configuration.
	PolicyBind
	// PolicyInterleave spreads a buffer's pages round-robin across nodes:
	// accesses are uniformly 1/nodes local.
	PolicyInterleave
	// PolicyAuto starts unpinned (like PolicyDefault) and hands placement to
	// the adaptive engine in internal/placer, which pins threads and re-homes
	// buffers at runtime by what-if scoring against the fluid model.
	PolicyAuto
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyDefault:
		return "default"
	case PolicyBind:
		return "bind"
	case PolicyInterleave:
		return "interleave"
	case PolicyAuto:
		return "auto"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes a NUMA machine. All bandwidths are bytes/second.
type Config struct {
	Name         string
	Nodes        int
	CoresPerNode int
	// CoreHz is the clock rate of each core in cycles/second.
	CoreHz float64
	// MemBandwidthPerNode is each node's memory-controller bandwidth.
	MemBandwidthPerNode float64
	// InterconnectBandwidth is the per-direction bandwidth of each
	// inter-node link.
	InterconnectBandwidth float64
	// RemoteAccessPenalty multiplies the CPU cost of work whose memory
	// operands are on a remote node (≥ 1). The paper's ~10% iperf gain
	// from binding corresponds to a modest penalty.
	RemoteAccessPenalty float64
	// CoherencyWritePenalty multiplies CPU cost for writes to memory
	// shared across nodes (cache-line invalidation storms); the paper
	// measures ≈3× CPU for unpinned tmpfs writes.
	CoherencyWritePenalty float64
	// CoherencySnoopBytesPerByte is extra interconnect traffic (both
	// directions) generated per byte written to a NUMA-remote location:
	// invalidation and snoop-response messages. Zero disables it.
	CoherencySnoopBytesPerByte float64
	// MemBytes is installed memory, for capacity checks on ramdisks.
	MemBytes int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("numa: config %q: Nodes must be positive", c.Name)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("numa: config %q: CoresPerNode must be positive", c.Name)
	case c.CoreHz <= 0:
		return fmt.Errorf("numa: config %q: CoreHz must be positive", c.Name)
	case c.MemBandwidthPerNode <= 0:
		return fmt.Errorf("numa: config %q: MemBandwidthPerNode must be positive", c.Name)
	case c.Nodes > 1 && c.InterconnectBandwidth <= 0:
		return fmt.Errorf("numa: config %q: InterconnectBandwidth required for >1 node", c.Name)
	case c.RemoteAccessPenalty < 1:
		return fmt.Errorf("numa: config %q: RemoteAccessPenalty must be ≥ 1", c.Name)
	case c.CoherencyWritePenalty < 1:
		return fmt.Errorf("numa: config %q: CoherencyWritePenalty must be ≥ 1", c.Name)
	case c.CoherencySnoopBytesPerByte < 0:
		return fmt.Errorf("numa: config %q: CoherencySnoopBytesPerByte must be ≥ 0", c.Name)
	}
	return nil
}

// Core is one CPU core; its fluid resource has capacity 1.0 core-second per
// second.
type Core struct {
	ID   int
	Node *Node
	Res  *fluid.Resource
}

// Node is one NUMA node: cores plus a memory controller.
type Node struct {
	ID    int
	Cores []*Core
	// Mem is the node's memory-controller bandwidth resource.
	Mem *fluid.Resource
	// links[j] is the interconnect resource for traffic this node sends
	// toward node j.
	links map[int]*fluid.Resource

	machine *Machine
}

// Machine is an instantiated NUMA host skeleton, with all resources
// registered in a fluid simulation.
type Machine struct {
	Cfg   Config
	Nodes []*Node
	Sim   *fluid.Sim
}

// New builds a machine from cfg, registering resources in s.
func New(s *fluid.Sim, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg, Sim: s}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			ID:      i,
			Mem:     s.AddResource(fmt.Sprintf("%s/node%d/mem", cfg.Name, i), cfg.MemBandwidthPerNode),
			links:   make(map[int]*fluid.Resource),
			machine: m,
		}
		for c := 0; c < cfg.CoresPerNode; c++ {
			core := &Core{ID: i*cfg.CoresPerNode + c, Node: n,
				Res: s.AddResource(fmt.Sprintf("%s/node%d/core%d", cfg.Name, i, i*cfg.CoresPerNode+c), 1)}
			n.Cores = append(n.Cores, core)
		}
		m.Nodes = append(m.Nodes, n)
	}
	// Fully-connected interconnect (for 2 nodes this is one QPI pair).
	for i := 0; i < cfg.Nodes; i++ {
		for j := 0; j < cfg.Nodes; j++ {
			if i == j {
				continue
			}
			m.Nodes[i].links[j] = s.AddResource(
				fmt.Sprintf("%s/qpi%d->%d", cfg.Name, i, j), cfg.InterconnectBandwidth)
		}
	}
	return m, nil
}

// MustNew is New but panics on configuration errors; for tests and presets.
func MustNew(s *fluid.Sim, cfg Config) *Machine {
	m, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// TotalCores returns the machine's core count.
func (m *Machine) TotalCores() int { return m.Cfg.Nodes * m.Cfg.CoresPerNode }

// Node returns node i.
func (m *Machine) Node(i int) *Node {
	if i < 0 || i >= len(m.Nodes) {
		panic(fmt.Sprintf("numa: node %d out of range [0,%d)", i, len(m.Nodes)))
	}
	return m.Nodes[i]
}

// Link returns the interconnect resource from node a toward node b.
func (m *Machine) Link(a, b *Node) *fluid.Resource {
	if a == b {
		panic("numa: no link from a node to itself")
	}
	return a.links[b.ID]
}

// PeakMemoryBandwidth returns the machine-wide peak (all controllers).
func (m *Machine) PeakMemoryBandwidth() float64 {
	return float64(m.Cfg.Nodes) * m.Cfg.MemBandwidthPerNode
}

// RemoteFraction returns the expected fraction of memory accesses that are
// remote for a thread placed under the given policy when its data lives on
// one specific node.
func (m *Machine) RemoteFraction(p Policy) float64 {
	n := float64(m.Cfg.Nodes)
	if n <= 1 {
		return 0
	}
	switch p {
	case PolicyBind:
		return 0
	case PolicyDefault:
		// Thread runs uniformly over all nodes; data is on one node.
		return (n - 1) / n
	case PolicyInterleave:
		// Data is spread over all nodes; from any core (n-1)/n is remote.
		return (n - 1) / n
	case PolicyAuto:
		// Auto starts unpinned; once the placer converges all accesses are
		// local, but the static expectation (before placement) is default.
		return (n - 1) / n
	default:
		return (n - 1) / n
	}
}

// Buffer is a region of memory with a set of home nodes. A single home node
// models an mpol-pinned tmpfs file or a numactl-bound allocation; multiple
// home nodes model interleaved (or first-touch-scattered) memory.
type Buffer struct {
	Name  string
	Homes []*Node
}

// NewBuffer creates a buffer homed on the given nodes.
func (m *Machine) NewBuffer(name string, homes ...*Node) *Buffer {
	if len(homes) == 0 {
		panic("numa: buffer needs at least one home node")
	}
	// Copy: homes may alias a caller-owned slice (InterleavedBuffer passes
	// m.Nodes), and Rehome mutates Homes in place.
	return &Buffer{Name: name, Homes: append([]*Node(nil), homes...)}
}

// InterleavedBuffer creates a buffer spread across all nodes.
func (m *Machine) InterleavedBuffer(name string) *Buffer {
	return m.NewBuffer(name, m.Nodes...)
}

// Rehome retargets the buffer onto a new set of home nodes, modelling a
// page migration (move_pages / mbind with MPOL_MF_MOVE). Only the placement
// metadata changes here; the page-copy traffic itself is the migration
// executor's job (internal/placer charges it through the fluid network).
// Flows already charged against the old homes are unaffected until their
// coefficients are rebuilt — and the incremental solver cannot see in-place
// coefficient edits, so rebuilders must call Network.Invalidate (or
// Sim.Refresh) afterwards.
func (b *Buffer) Rehome(homes ...*Node) {
	if len(homes) == 0 {
		panic("numa: Rehome needs at least one home node")
	}
	// Three-index slice forces a fresh array: reusing b.Homes[:0] would write
	// through any alias of the old backing array (and misbehave when homes
	// itself aliases b.Homes).
	b.Homes = append(b.Homes[:0:0], homes...)
}

// Local reports whether the buffer lives entirely on node n.
func (b *Buffer) Local(n *Node) bool {
	for _, h := range b.Homes {
		if h != n {
			return false
		}
	}
	return true
}

// Access describes one memory-traffic component of a data flow, used to
// attach memory/interconnect coefficients to a fluid flow.
//
// BytesPerUnit is the memory traffic generated per byte of flow payload
// (e.g. a copy generates 1 read + 1 write = two Access entries with
// BytesPerUnit 1 each).
type Access struct {
	Buffer *Buffer
	// From is the node of the accessing agent: the core executing a
	// load/store or the home node of a DMA-ing device. Nil means the
	// access is spread uniformly over all nodes (an unpinned thread).
	From *Node
	// BytesPerUnit scales traffic relative to the flow rate.
	BytesPerUnit float64
	// Write marks stores (used by coherency accounting in the host layer;
	// the memory-controller charge is identical).
	Write bool
	// MemScale discounts the memory-controller charge for buffers that
	// stay resident in the last-level cache (small, hot bounce buffers
	// served by DDIO). Zero means 1 (full DRAM traffic). Interconnect
	// charges are not discounted: cross-socket transfers traverse the
	// interconnect even cache-to-cache.
	MemScale float64
	// Tag labels the consumption for accounting.
	Tag string
}

// Charge attaches the memory-controller and interconnect coefficients for
// the access to flow f.
func (m *Machine) Charge(f *fluid.Flow, a Access) {
	if a.Buffer == nil {
		panic("numa: access without buffer")
	}
	if a.BytesPerUnit <= 0 {
		return
	}
	share := a.BytesPerUnit / float64(len(a.Buffer.Homes))
	memScale := a.MemScale
	if memScale <= 0 {
		memScale = 1
	}
	snoop := func(home, other *Node, remoteShare float64) {
		// Remote writes generate invalidation/snoop traffic both ways.
		if !a.Write || m.Cfg.CoherencySnoopBytesPerByte <= 0 || remoteShare <= 0 {
			return
		}
		extra := remoteShare * m.Cfg.CoherencySnoopBytesPerByte
		f.UseTagged(m.Link(other, home), extra, a.Tag)
		f.UseTagged(m.Link(home, other), extra, a.Tag)
	}
	for _, home := range a.Buffer.Homes {
		f.UseTagged(home.Mem, share*memScale, a.Tag)
		switch {
		case a.From == nil:
			// Accessing agent spread across all nodes: a fraction
			// (n-1)/n of traffic to this home crosses the interconnect,
			// split over the links into the home node.
			n := len(m.Nodes)
			if n <= 1 {
				continue
			}
			per := share / float64(n)
			for _, other := range m.Nodes {
				if other == home {
					continue
				}
				// Reads travel home→other, writes other→home; charge the
				// direction of payload movement.
				if a.Write {
					f.UseTagged(m.Link(other, home), per, a.Tag)
				} else {
					f.UseTagged(m.Link(home, other), per, a.Tag)
				}
				snoop(home, other, per)
			}
		case a.From != home:
			if a.Write {
				f.UseTagged(m.Link(a.From, home), share, a.Tag)
			} else {
				f.UseTagged(m.Link(home, a.From), share, a.Tag)
			}
			snoop(home, a.From, share)
		}
	}
}

// RemoteShare returns the fraction of the buffer's traffic that is remote
// when accessed from node `from` (nil = spread across all nodes).
func (m *Machine) RemoteShare(b *Buffer, from *Node) float64 {
	n := float64(len(m.Nodes))
	total := 0.0
	for _, home := range b.Homes {
		if from == nil {
			if n > 1 {
				total += (n - 1) / n
			}
		} else if from != home {
			total += 1
		}
	}
	return total / float64(len(b.Homes))
}
