package numa

import (
	"math"
	"testing"
	"testing/quick"

	"e2edt/internal/fluid"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

func testConfig() Config {
	return Config{
		Name:                  "m",
		Nodes:                 2,
		CoresPerNode:          8,
		CoreHz:                2.2e9,
		MemBandwidthPerNode:   25 * units.GBps,
		InterconnectBandwidth: 16 * units.GBps,
		RemoteAccessPenalty:   1.4,
		CoherencyWritePenalty: 3.0,
		MemBytes:              128 * units.GB,
	}
}

func newMachine(t *testing.T) (*fluid.Sim, *Machine) {
	t.Helper()
	s := fluid.NewSim(sim.NewEngine())
	m, err := New(s, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CoresPerNode = 0 },
		func(c *Config) { c.CoreHz = 0 },
		func(c *Config) { c.MemBandwidthPerNode = 0 },
		func(c *Config) { c.InterconnectBandwidth = 0 },
		func(c *Config) { c.RemoteAccessPenalty = 0.5 },
		func(c *Config) { c.CoherencyWritePenalty = 0.9 },
	}
	for i, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTopologyShape(t *testing.T) {
	_, m := newMachine(t)
	if len(m.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(m.Nodes))
	}
	if m.TotalCores() != 16 {
		t.Fatalf("cores = %d, want 16", m.TotalCores())
	}
	for i, n := range m.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		if len(n.Cores) != 8 {
			t.Fatalf("node %d has %d cores", i, len(n.Cores))
		}
		if n.Mem == nil || n.Mem.Capacity != 25*units.GBps {
			t.Fatalf("node %d memory controller misconfigured", i)
		}
	}
	// Interconnect exists in both directions.
	l01 := m.Link(m.Node(0), m.Node(1))
	l10 := m.Link(m.Node(1), m.Node(0))
	if l01 == nil || l10 == nil || l01 == l10 {
		t.Fatal("interconnect links missing or aliased")
	}
	if m.PeakMemoryBandwidth() != 50*units.GBps {
		t.Fatalf("peak mem bandwidth = %v, want 50 GB/s", m.PeakMemoryBandwidth())
	}
}

func TestLinkSelfPanics(t *testing.T) {
	_, m := newMachine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for self-link")
		}
	}()
	m.Link(m.Node(0), m.Node(0))
}

func TestNodeOutOfRangePanics(t *testing.T) {
	_, m := newMachine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	m.Node(5)
}

func TestRemoteFraction(t *testing.T) {
	_, m := newMachine(t)
	if got := m.RemoteFraction(PolicyBind); got != 0 {
		t.Fatalf("bind remote fraction = %v, want 0", got)
	}
	if got := m.RemoteFraction(PolicyDefault); got != 0.5 {
		t.Fatalf("default remote fraction = %v, want 0.5 for 2 nodes", got)
	}
	if got := m.RemoteFraction(PolicyInterleave); got != 0.5 {
		t.Fatalf("interleave remote fraction = %v, want 0.5", got)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyDefault.String() != "default" || PolicyBind.String() != "bind" ||
		PolicyInterleave.String() != "interleave" {
		t.Fatal("policy names wrong")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

func TestLocalAccessChargesOnlyHomeController(t *testing.T) {
	s, m := newMachine(t)
	buf := m.NewBuffer("b", m.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	m.Charge(f, Access{Buffer: buf, From: m.Node(0), BytesPerUnit: 1, Tag: "x"})
	s.Network.Solve()
	// Only node 0's controller limits: rate = 25 GB/s.
	if got := f.Rate(); got != 25*units.GBps {
		t.Fatalf("rate = %v, want 25 GB/s", got)
	}
	if m.Node(1).Mem.Load() != 0 {
		t.Fatal("remote controller charged for a local access")
	}
	if m.Link(m.Node(0), m.Node(1)).Load() != 0 || m.Link(m.Node(1), m.Node(0)).Load() != 0 {
		t.Fatal("interconnect charged for a local access")
	}
}

func TestRemoteReadCrossesInterconnect(t *testing.T) {
	s, m := newMachine(t)
	buf := m.NewBuffer("b", m.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	// Reader on node 1 pulls from node 0: payload flows 0→1.
	m.Charge(f, Access{Buffer: buf, From: m.Node(1), BytesPerUnit: 1, Tag: "x"})
	s.Network.Solve()
	// QPI (16 GB/s) is the bottleneck, not the 25 GB/s controller.
	if got := f.Rate(); got != 16*units.GBps {
		t.Fatalf("rate = %v, want 16 GB/s (QPI-bound)", got)
	}
	if m.Link(m.Node(0), m.Node(1)).Load() == 0 {
		t.Fatal("read should charge home→reader link")
	}
	if m.Link(m.Node(1), m.Node(0)).Load() != 0 {
		t.Fatal("read should not charge reader→home link")
	}
}

func TestRemoteWriteDirection(t *testing.T) {
	s, m := newMachine(t)
	buf := m.NewBuffer("b", m.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	m.Charge(f, Access{Buffer: buf, From: m.Node(1), BytesPerUnit: 1, Write: true, Tag: "x"})
	s.Network.Solve()
	if m.Link(m.Node(1), m.Node(0)).Load() == 0 {
		t.Fatal("write should charge writer→home link")
	}
	if m.Link(m.Node(0), m.Node(1)).Load() != 0 {
		t.Fatal("write should not charge home→writer link")
	}
}

func TestInterleavedBufferSplitsLoad(t *testing.T) {
	s, m := newMachine(t)
	buf := m.InterleavedBuffer("b")
	f := s.NewFlow("f", math.Inf(1))
	m.Charge(f, Access{Buffer: buf, From: m.Node(0), BytesPerUnit: 1, Tag: "x"})
	s.Network.Solve()
	// Half the traffic hits each controller; half crosses QPI. Bottleneck:
	// QPI carries 0.5×rate ≤ 16 GB/s → rate ≤ 32 GB/s; controllers carry
	// 0.5×rate ≤ 25 → rate ≤ 50. So rate = 32 GB/s.
	want := 32 * units.GBps
	if got := f.Rate(); math.Abs(got-want) > 1 {
		t.Fatalf("rate = %v, want %v", got, want)
	}
	if l0, l1 := m.Node(0).Mem.Load(), m.Node(1).Mem.Load(); math.Abs(l0-l1) > 1 {
		t.Fatalf("interleave load imbalance: %v vs %v", l0, l1)
	}
}

func TestUnpinnedAccessorSpreadsTraffic(t *testing.T) {
	s, m := newMachine(t)
	buf := m.NewBuffer("b", m.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	m.Charge(f, Access{Buffer: buf, From: nil, BytesPerUnit: 1, Tag: "x"})
	s.Network.Solve()
	// Half the accesses come from node 1 → cross QPI at 0.5 coefficient.
	// Controller: 1×rate ≤ 25 GB/s; QPI: 0.5×rate ≤ 16 → rate ≤ 32.
	want := 25 * units.GBps
	if got := f.Rate(); math.Abs(got-want) > 1 {
		t.Fatalf("rate = %v, want %v", got, want)
	}
	if m.Link(m.Node(0), m.Node(1)).Load() == 0 {
		t.Fatal("unpinned read should partially cross the interconnect")
	}
}

func TestRemoteShare(t *testing.T) {
	_, m := newMachine(t)
	local := m.NewBuffer("l", m.Node(0))
	if got := m.RemoteShare(local, m.Node(0)); got != 0 {
		t.Fatalf("local share = %v, want 0", got)
	}
	if got := m.RemoteShare(local, m.Node(1)); got != 1 {
		t.Fatalf("remote share = %v, want 1", got)
	}
	if got := m.RemoteShare(local, nil); got != 0.5 {
		t.Fatalf("unpinned share = %v, want 0.5", got)
	}
	inter := m.InterleavedBuffer("i")
	if got := m.RemoteShare(inter, m.Node(0)); got != 0.5 {
		t.Fatalf("interleaved share = %v, want 0.5", got)
	}
}

func TestBufferLocal(t *testing.T) {
	_, m := newMachine(t)
	b := m.NewBuffer("b", m.Node(0))
	if !b.Local(m.Node(0)) || b.Local(m.Node(1)) {
		t.Fatal("Local misreports single-home buffer")
	}
	i := m.InterleavedBuffer("i")
	if i.Local(m.Node(0)) {
		t.Fatal("interleaved buffer cannot be local to one node")
	}
}

func TestZeroBytesPerUnitIsNoop(t *testing.T) {
	s, m := newMachine(t)
	buf := m.NewBuffer("b", m.Node(0))
	f := s.NewFlow("f", 10)
	m.Charge(f, Access{Buffer: buf, From: m.Node(0), BytesPerUnit: 0, Tag: "x"})
	if len(f.Uses) != 0 {
		t.Fatal("zero-traffic access should not attach usages")
	}
}

// Property: aggregate memory-controller charge equals BytesPerUnit
// regardless of buffer spread and accessor placement.
func TestChargeConservesTraffic(t *testing.T) {
	check := func(homeSel, fromSel uint8, bytesRaw uint16) bool {
		s, m := newMachine(t)
		var homes []*Node
		switch homeSel % 3 {
		case 0:
			homes = []*Node{m.Node(0)}
		case 1:
			homes = []*Node{m.Node(1)}
		default:
			homes = m.Nodes
		}
		buf := m.NewBuffer("b", homes...)
		var from *Node
		switch fromSel % 3 {
		case 0:
			from = m.Node(0)
		case 1:
			from = m.Node(1)
		}
		bpu := 0.1 + float64(bytesRaw%100)/10
		f := s.NewFlow("f", 1)
		m.Charge(f, Access{Buffer: buf, From: from, BytesPerUnit: bpu, Tag: "x"})
		total := 0.0
		for _, u := range f.Uses {
			if u.Resource == m.Node(0).Mem || u.Resource == m.Node(1).Mem {
				total += u.Coeff
			}
		}
		return math.Abs(total-bpu) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	s := fluid.NewSim(sim.NewEngine())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(s, Config{})
}

func TestSingleNodeMachine(t *testing.T) {
	s := fluid.NewSim(sim.NewEngine())
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.InterconnectBandwidth = 0
	m, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.RemoteFraction(PolicyDefault) != 0 {
		t.Fatal("single node machine has no remote accesses")
	}
	buf := m.NewBuffer("b", m.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	m.Charge(f, Access{Buffer: buf, From: nil, BytesPerUnit: 1})
	s.Network.Solve()
	if f.Rate() != 25*units.GBps {
		t.Fatalf("rate = %v, want full controller bandwidth", f.Rate())
	}
}

func TestFourNodeMachine(t *testing.T) {
	s := fluid.NewSim(sim.NewEngine())
	cfg := testConfig()
	cfg.Nodes = 4
	cfg.CoresPerNode = 4
	m, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalCores() != 16 {
		t.Fatalf("cores = %d", m.TotalCores())
	}
	// Fully connected: 12 directed links, all distinct.
	seen := map[*fluid.Resource]bool{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			l := m.Link(m.Node(i), m.Node(j))
			if l == nil || seen[l] {
				t.Fatalf("link %d->%d missing or aliased", i, j)
			}
			seen[l] = true
		}
	}
	if got := m.RemoteFraction(PolicyDefault); got != 0.75 {
		t.Fatalf("remote fraction = %v, want 0.75 for 4 nodes", got)
	}
	// Interleaved access from one node: 3/4 of traffic crosses links
	// toward the three remote homes.
	buf := m.InterleavedBuffer("b")
	f := s.NewFlow("f", math.Inf(1))
	m.Charge(f, Access{Buffer: buf, From: m.Node(0), BytesPerUnit: 1, Tag: "x"})
	s.Network.Solve()
	total := 0.0
	for _, u := range f.Uses {
		for i := 0; i < 4; i++ {
			if u.Resource == m.Node(i).Mem {
				total += u.Coeff
			}
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("controller traffic = %v, want 1", total)
	}
}

func TestMemScaleDiscountsControllerOnly(t *testing.T) {
	s, m := newMachine(t)
	buf := m.NewBuffer("b", m.Node(0))
	f := s.NewFlow("f", 1)
	m.Charge(f, Access{Buffer: buf, From: m.Node(1), BytesPerUnit: 1, MemScale: 0.25, Tag: "x"})
	var mem, qpi float64
	for _, u := range f.Uses {
		switch u.Resource {
		case m.Node(0).Mem:
			mem += u.Coeff
		case m.Link(m.Node(0), m.Node(1)):
			qpi += u.Coeff
		}
	}
	if math.Abs(mem-0.25) > 1e-12 {
		t.Fatalf("controller coeff = %v, want 0.25", mem)
	}
	if math.Abs(qpi-1) > 1e-12 {
		t.Fatalf("interconnect coeff = %v, want 1 (undiscounted)", qpi)
	}
}

func TestSnoopTrafficOnRemoteWrites(t *testing.T) {
	s := fluid.NewSim(sim.NewEngine())
	cfg := testConfig()
	cfg.CoherencySnoopBytesPerByte = 0.5
	m, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := m.NewBuffer("b", m.Node(0))
	write := s.NewFlow("w", 1)
	m.Charge(write, Access{Buffer: buf, From: m.Node(1), BytesPerUnit: 1, Write: true, Tag: "x"})
	// Data: writer→home. Snoop: both directions.
	var fwd, rev float64
	for _, u := range write.Uses {
		switch u.Resource {
		case m.Link(m.Node(1), m.Node(0)):
			fwd += u.Coeff
		case m.Link(m.Node(0), m.Node(1)):
			rev += u.Coeff
		}
	}
	if math.Abs(fwd-1.5) > 1e-12 {
		t.Fatalf("writer→home = %v, want 1 data + 0.5 snoop", fwd)
	}
	if math.Abs(rev-0.5) > 1e-12 {
		t.Fatalf("home→writer = %v, want 0.5 snoop", rev)
	}
	// Reads generate no snoop traffic.
	read := s.NewFlow("r", 1)
	m.Charge(read, Access{Buffer: buf, From: m.Node(1), BytesPerUnit: 1, Tag: "x"})
	for _, u := range read.Uses {
		if u.Resource == m.Link(m.Node(1), m.Node(0)) {
			t.Fatal("read should not charge writer→home direction")
		}
	}
}

// A one-node machine has nowhere remote to go: every policy must report a
// zero remote fraction, including the ones whose formula divides by node
// count.
func TestRemoteFractionSingleNode(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 1
	m, err := New(fluid.NewSim(sim.NewEngine()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{PolicyDefault, PolicyBind, PolicyInterleave, PolicyAuto} {
		if got := m.RemoteFraction(p); got != 0 {
			t.Fatalf("%v remote fraction on 1 node = %v, want 0", p, got)
		}
	}
}

// Interleaved data puts 1/n of the pages under the reader's own controller
// regardless of where the reader is pinned, so the remote fraction is
// (n-1)/n and must scale with the node count.
func TestRemoteFractionInterleaveScales(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		cfg := testConfig()
		cfg.Nodes = nodes
		m, err := New(fluid.NewSim(sim.NewEngine()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(nodes-1) / float64(nodes)
		if got := m.RemoteFraction(PolicyInterleave); got != want {
			t.Fatalf("interleave remote fraction on %d nodes = %v, want %v", nodes, got, want)
		}
	}
}

// Rehoming a buffer must never write through to the slice its homes were
// built from. InterleavedBuffer seeds Homes from m.Nodes; before the copy in
// NewBuffer, the first Rehome overwrote m.Nodes[0] in place and node 0
// vanished from the machine.
func TestRehomeDoesNotAliasMachineNodes(t *testing.T) {
	_, m := newMachine(t)
	n0, n1 := m.Node(0), m.Node(1)
	b := m.InterleavedBuffer("b")
	b.Rehome(n1)
	if m.Node(0) != n0 || m.Node(1) != n1 {
		t.Fatalf("Rehome corrupted machine nodes: [%p %p], want [%p %p]",
			m.Node(0), m.Node(1), n0, n1)
	}
	if len(b.Homes) != 1 || b.Homes[0] != n1 {
		t.Fatalf("Homes = %v, want [node1]", b.Homes)
	}
	// Self-aliasing rehome: new homes drawn from the current Homes slice.
	b2 := m.NewBuffer("b2", n0, n1)
	b2.Rehome(b2.Homes[1])
	if len(b2.Homes) != 1 || b2.Homes[0] != n1 {
		t.Fatalf("self-aliased Rehome: Homes = %v, want [node1]", b2.Homes)
	}
	// The caller's slice stays untouched too.
	homes := []*Node{n0, n1}
	b3 := m.NewBuffer("b3", homes...)
	b3.Rehome(n1)
	if homes[0] != n0 || homes[1] != n1 {
		t.Fatal("Rehome wrote through the caller's homes slice")
	}
}
