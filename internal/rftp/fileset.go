package rftp

import (
	"fmt"
	"math"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/sim"
)

// FileSpec names one file in a dataset transfer.
type FileSpec struct {
	Name string
	Size int64
}

// TotalBytes sums a file list.
func TotalBytes(files []FileSpec) float64 {
	total := 0.0
	for _, f := range files {
		total += float64(f.Size)
	}
	return total
}

// SetTransfer is a dataset (many-file) RFTP session. Files are dispatched
// to streams round-robin; within a stream each file pays a per-file
// control exchange (open/attribute round trip) before its data moves —
// the usual reason datasets of small files transfer far below line rate
// even on a clean path.
type SetTransfer struct {
	Cfg   Config
	P     Params
	Files []FileSpec

	sim      *fluid.Sim
	eng      *sim.Engine
	started  sim.Time
	finished sim.Time
	// Completed counts fully transferred files.
	Completed int
	moved     float64
	active    map[*fluid.Transfer]struct{}
	pending   int
	// OnComplete fires when every file has been transferred.
	OnComplete func(now sim.Time)
}

// streamCtx carries one stream's charge template and file queue.
type setStream struct {
	link  *fabric.Link
	queue []FileSpec
	// mkFlow builds a flow carrying the stream's full cost structure.
	mkFlow func(name string) *fluid.Flow
}

// StartSet launches a multi-file transfer. Each stream processes its file
// queue sequentially: per-file control round trip, then the file body.
func StartSet(links []*fabric.Link, senderHost *host.Host, cfg Config, p Params,
	src, dst pipe.Stage, files []FileSpec, onComplete func(now sim.Time)) (*SetTransfer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("rftp: no links")
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("rftp: empty file set")
	}
	for _, f := range files {
		if f.Size <= 0 {
			return nil, fmt.Errorf("rftp: file %q has non-positive size", f.Name)
		}
	}
	t := &SetTransfer{
		Cfg: cfg, P: p, Files: files,
		sim: links[0].Sim(), eng: links[0].Engine(),
		active:     make(map[*fluid.Transfer]struct{}),
		pending:    len(files),
		OnComplete: onComplete,
	}
	t.started = t.eng.Now()

	streams := make([]*setStream, cfg.Streams)
	bs := float64(cfg.BlockSize)
	for i := range streams {
		l := links[i%len(links)]
		var sndNIC *host.Device
		switch senderHost {
		case l.A.Host:
			sndNIC = l.A
		case l.B.Host:
			sndNIC = l.B
		default:
			return nil, fmt.Errorf("rftp: sender %s not on link %s", senderHost.Name, l.Cfg.Name)
		}
		rcvNIC := l.Peer(sndNIC)
		mkThreads := func(nic *host.Device, role string) (*host.Thread, *host.Thread, *numa.Buffer) {
			h := nic.Host
			var proc *host.Process
			if cfg.Policy == numa.PolicyBind {
				proc = h.NewProcess(fmt.Sprintf("rftp-%s/%s/set%d", role, l.Cfg.Name, i), numa.PolicyBind, nic.Node)
			} else {
				proc = h.NewProcess(fmt.Sprintf("rftp-%s/%s/set%d", role, l.Cfg.Name, i), cfg.Policy, nil)
			}
			net, io := proc.NewThread(), proc.NewThread()
			var buf *numa.Buffer
			if node := net.Node(); node != nil {
				buf = h.M.NewBuffer("rftp-stage", node)
			} else {
				buf = h.M.InterleavedBuffer("rftp-stage")
			}
			return net, io, buf
		}
		sndNet, sndIO, sndBuf := mkThreads(sndNIC, "c")
		rcvNet, rcvIO, rcvBuf := mkThreads(rcvNIC, "s")

		demand := math.Inf(1)
		if rtt := float64(l.RTT()); rtt > 0 {
			demand = float64(cfg.CreditsPerStream) * bs / rtt
		}
		st := &setStream{link: l}
		var mkErr error
		st.mkFlow = func(name string) *fluid.Flow {
			f := t.sim.NewFlow(name, demand)
			if err := src.Attach(f, sndIO, sndBuf, 1, "rftp"); err != nil {
				mkErr = err
			}
			sndNet.ChargeCPU(f, p.ProtoCyclesPerByte+p.PerBlockCycles/bs, host.CatUser)
			sndNIC.ChargeDMA(f, sndBuf, 1, false, "rftp")
			l.ChargeWire(f, sndNIC, 1+p.CtrlBytesPerBlock/bs, "rftp")
			rcvNIC.ChargeDMA(f, rcvBuf, 1, true, "rftp")
			rcvNet.ChargeCPU(f, p.ProtoCyclesPerByte+p.PerBlockCycles/bs, host.CatUser)
			if err := dst.Attach(f, rcvIO, rcvBuf, 1, "rftp"); err != nil {
				mkErr = err
			}
			return f
		}
		// Probe the charge template once for stage errors.
		probe := st.mkFlow("rftp-set-probe")
		t.sim.Network.RemoveFlow(probe)
		if mkErr != nil {
			return nil, fmt.Errorf("rftp: stage: %w", mkErr)
		}
		streams[i] = st
	}
	for i, f := range files {
		st := streams[i%len(streams)]
		st.queue = append(st.queue, f)
	}

	handshake := sim.Duration(p.HandshakeRTTs) * sim.Duration(links[0].RTT())
	t.eng.Schedule(handshake, func() {
		for _, st := range streams {
			t.next(st)
		}
	})
	return t, nil
}

// next opens the stream's next file: control round trip, then body.
func (t *SetTransfer) next(st *setStream) {
	if len(st.queue) == 0 {
		return
	}
	file := st.queue[0]
	st.queue = st.queue[1:]
	// Per-file open/attribute exchange: one round trip on the control
	// channel.
	st.link.Send(t.P.CtrlBytesPerBlock, func(sim.Time) {
		st.link.Send(t.P.CtrlBytesPerBlock, func(sim.Time) {
			f := st.mkFlow(fmt.Sprintf("rftp-set/%s", file.Name))
			tr := &fluid.Transfer{Flow: f, Remaining: float64(file.Size)}
			tr.OnComplete = func(now sim.Time) {
				delete(t.active, tr)
				t.moved += float64(file.Size)
				t.Completed++
				t.pending--
				if t.pending == 0 {
					t.finished = now
					if t.OnComplete != nil {
						t.OnComplete(now)
					}
					return
				}
				t.next(st)
			}
			t.active[tr] = struct{}{}
			t.sim.Start(tr)
		})
	})
}

// Transferred returns payload bytes moved so far (completed files plus
// in-flight progress).
func (t *SetTransfer) Transferred() float64 {
	t.sim.Sync()
	sum := t.moved
	for tr := range t.active {
		sum += tr.Transferred()
	}
	return sum
}

// Bandwidth returns the average payload rate since start.
func (t *SetTransfer) Bandwidth() float64 {
	end := t.eng.Now()
	if t.finished > 0 {
		end = t.finished
	}
	el := float64(end - t.started)
	if el <= 0 {
		return 0
	}
	return t.Transferred() / el
}

// Finished returns the completion time (zero while running).
func (t *SetTransfer) Finished() sim.Time { return t.finished }
