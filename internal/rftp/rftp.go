// Package rftp implements the paper's RDMA-based file transfer protocol
// (RFTP [21,22,23]): parallel RDMA streams between a client and a server,
// zero-copy data movement from registered staging buffers, credit-based
// flow control with asynchronous control messages, and a pipelined
// architecture in which dedicated I/O threads keep loading/offloading
// while network threads keep the wire full.
//
// Cost structure per payload byte on each side:
//
//   - user-space protocol processing (ProtoCyclesPerByte — Figure 4
//     measures ≈56% of one core across both sides at 39 Gbps);
//   - per-block work-request posting and credit-token handling
//     (PerBlockCycles/BlockSize — this is why Figure 14's CPU curves fall
//     as the block size grows);
//   - control messages on the wire (CtrlBytesPerBlock/BlockSize — why
//     Figure 13's goodput rises toward 97% of raw bandwidth with block
//     size);
//   - NIC DMA from/to the staging buffers (zero copy: no CPU).
//
// Flow control: each stream may keep CreditsPerStream blocks outstanding,
// bounding its rate by Credits×BlockSize/RTT — on the 95 ms ANI loop this
// is the dominant limit for small blocks and few streams, reproducing the
// left half of Figure 13.
//
// Multipath: a stream is bound to a rail (one of the session's links)
// through an indirection, not to a fixed NIC. With Params.Rails enabled a
// railmgr.Manager classifies every rail and the session reacts: streams on
// a Dead rail fail over to surviving rails and resume from their acked
// offset; Degraded rails keep their streams but the credit pool shifts
// toward healthy rails in proportion to capacity; a re-probed restored
// rail gets its streams back (failback) with no byte delivered twice.
package rftp

import (
	"fmt"
	"math"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/metrics"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/placer"
	"e2edt/internal/railmgr"
	"e2edt/internal/rdma"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// Params calibrates protocol costs.
type Params struct {
	// ProtoCyclesPerByte is user-space protocol processing per side.
	ProtoCyclesPerByte float64
	// PerBlockCycles is the per-block posting/credit CPU cost per side.
	PerBlockCycles float64
	// CtrlBytesPerBlock is control-channel traffic per data block.
	CtrlBytesPerBlock float64
	// DelimBytesPerObject is the in-band framing cost of one object record
	// inside a coalesced batch window (length prefix plus trailer); zero
	// selects 64 bytes. Only batch windows (StartBatch) charge it.
	DelimBytesPerObject float64
	// HandshakeRTTs is how many round trips session setup takes.
	HandshakeRTTs int
	// ChecksumCyclesPerByte is the per-side cost of end-to-end integrity
	// verification when Config.Checksum is on (CRC32C-class).
	ChecksumCyclesPerByte float64
	// StartOffset resumes a finite transfer from byte N: the session moves
	// only the tail, Size−StartOffset bytes, as when a retry picks up a
	// partially-completed transfer. Open-ended (+Inf) transfers ignore it.
	StartOffset int64
	// RDMA parameterizes the verbs layer.
	RDMA rdma.Params

	// AckTimeout, when positive, enables in-protocol recovery: each stream
	// tracks ACK progress and, after AckTimeout without any, declares its
	// outstanding credit window lost, re-establishes the session, and
	// retransmits from the acked offset. Zero (the default) preserves the
	// legacy behavior: a stream on a dark link stalls until an outer
	// watchdog restarts the whole transfer.
	AckTimeout sim.Duration
	// RetryBackoff is the initial delay before a recovery attempt; each
	// consecutive failed attempt doubles it up to RetryBackoffMax.
	// Zero selects 100 ms when recovery is enabled.
	RetryBackoff sim.Duration
	// RetryBackoffMax caps the exponential backoff (default 5 s).
	RetryBackoffMax sim.Duration
	// MaxStreamRetries bounds consecutive failed recovery attempts on one
	// stream before the transfer gives up and fires OnFailure (default 16).
	MaxStreamRetries int

	// Rails, when Enabled, runs a rail health manager over the session's
	// links and turns on multipath policy: failover off Dead rails,
	// credit rebalancing toward healthy rails under degradation, and
	// probed failback onto restored rails. Requires AckTimeout > 0 — the
	// ACK tracker is what makes migration resume exactly-once.
	Rails railmgr.Policy

	// Hedge, when Enabled, turns on tail-tolerant hedged transfers: a
	// stream whose current credit window blows past an adaptive deadline
	// (a quantile of recent window completion times on trusted rails) gets
	// that window re-issued speculatively on the best non-suspect rail.
	// First completion wins, the loser is cancelled, and the ACK fold
	// keeps delivery exactly-once. Requires Rails.Enabled — hedges need
	// somewhere else to run.
	Hedge HedgePolicy
}

// recoveryEnabled reports whether in-protocol recovery is on.
func (p Params) recoveryEnabled() bool { return p.AckTimeout > 0 }

// RecoveryBudget bounds how long a transfer with in-protocol recovery may
// legitimately show zero delivered-byte progress on one same-rail retry
// ladder: the loss detection window plus every backoff it is allowed to
// wait out. Outer watchdogs build their stall horizon from this.
func (p Params) RecoveryBudget() sim.Duration {
	if p.AckTimeout <= 0 {
		return 0
	}
	b := p.RetryBackoff
	if b <= 0 {
		b = 100 * sim.Millisecond
	}
	cap := p.RetryBackoffMax
	if cap <= 0 {
		cap = 5 * sim.Second
	}
	n := p.MaxStreamRetries
	if n <= 0 {
		n = 16
	}
	d := p.AckTimeout
	for i := 0; i < n; i++ {
		if b > cap {
			b = cap
		}
		d += b
		b *= 2
	}
	return d
}

// DefaultParams matches the paper's Figure 4 profile on 2.2 GHz cores.
func DefaultParams() Params {
	return Params{
		ProtoCyclesPerByte:    0.12,
		PerBlockCycles:        3500,
		CtrlBytesPerBlock:     128,
		HandshakeRTTs:         2,
		ChecksumCyclesPerByte: 0.4,
		RDMA:                  rdma.DefaultParams(),
	}
}

// Config describes one transfer's shape.
type Config struct {
	// Streams is the number of parallel RDMA streams; they are assigned
	// to links round-robin.
	Streams int
	// BlockSize is the transfer block size.
	BlockSize int64
	// CreditsPerStream bounds outstanding blocks per stream.
	CreditsPerStream int
	// Policy binds stream threads to their NIC's NUMA node (the paper
	// runs RFTP under numactl in §4.3).
	Policy numa.Policy
	// Checksum enables end-to-end block integrity verification: each side
	// reads every payload byte once more and spends checksum cycles on a
	// dedicated I/O thread (RDMA already guarantees link-level integrity;
	// this guards the storage path — and it is the only layer that can
	// catch a silent bit flip the link CRC missed).
	Checksum bool
	// Placer, when non-nil and Policy is numa.PolicyAuto, manages the
	// session's thread pinning and staging-buffer homes at runtime: every
	// side becomes a placement entity and every stream flow is tracked so
	// the engine can what-if alternative layouts and migrate. Ignored for
	// static policies.
	Placer *placer.Engine
}

// DefaultConfig returns the tuned LAN configuration.
func DefaultConfig() Config {
	return Config{
		Streams:          3,
		BlockSize:        4 * units.MB,
		CreditsPerStream: 64,
		Policy:           numa.PolicyBind,
	}
}

// Validate reports config errors.
func (c Config) Validate() error {
	switch {
	case c.Streams <= 0:
		return fmt.Errorf("rftp: Streams must be positive")
	case c.BlockSize <= 0:
		return fmt.Errorf("rftp: BlockSize must be positive")
	case c.CreditsPerStream <= 0:
		return fmt.Errorf("rftp: CreditsPerStream must be positive")
	}
	return nil
}

// RecoveryKind classifies what a recovering stream is doing, in ascending
// cost order. Outer watchdogs size their grace window off the most
// expensive kind in flight: a migration pays probing and a fresh session
// on another rail, which a plain retransmission never does.
type RecoveryKind int

const (
	// KindNone: no recovery in flight.
	KindNone RecoveryKind = iota
	// KindRetransmit: same-rail window retransmission (PR 2 ladder).
	KindRetransmit
	// KindChecksum: re-transfer of a corrupt block on a healthy rail.
	KindChecksum
	// KindHedge: migration onto the rail where a hedged window just won —
	// the original rail lost the race, so the stream follows the winner.
	KindHedge
	// KindFailback: clean migration back onto a re-admitted rail.
	KindFailback
	// KindFailover: migration off a Dead rail (or parked waiting for any
	// usable rail) — the slowest recovery the protocol performs.
	KindFailover
)

// String names the kind.
func (k RecoveryKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindRetransmit:
		return "retransmit"
	case KindChecksum:
		return "checksum"
	case KindHedge:
		return "hedge"
	case KindFailback:
		return "failback"
	default:
		return "failover"
	}
}

// side is one stream endpoint on one rail: NIC, network + I/O threads,
// and the registered staging buffer.
type side struct {
	nic *host.Device
	net *host.Thread
	io  *host.Thread
	buf *numa.Buffer
}

// endpoints pairs the sender and receiver sides of a stream on one rail.
type endpoints struct {
	snd, rcv side
}

// stream is one RDMA data channel.
type stream struct {
	idx int
	// rail indexes the transfer's links: the stream's current binding.
	// Rail mode migrates it; legacy mode fixes it at start.
	rail int
	// eps holds the stream's per-rail endpoints; only the home rail is
	// built in legacy mode.
	eps      []*endpoints
	transfer *fluid.Transfer
	// qp is the stream's reliable connection when recovery is enabled; its
	// error completions trigger immediate loss declaration. Migration
	// abandons it for a fresh QP on the target rail.
	qp *rdma.QP
	// perStream is this stream's share of the session; acked counts bytes
	// definitely delivered, remaining = perStream − acked.
	perStream float64
	acked     float64
	remaining float64
	// retries counts consecutive failed recovery attempts (reset on a
	// successful resume); lastMoved/lastProgressAt drive stall detection.
	retries        int
	lastMoved      float64
	lastProgressAt sim.Time
	recovering     bool
	kind           RecoveryKind
	faultAt        sim.Time
	pending        *sim.Event
	done           bool

	// flowSize is the current flow's total bytes (its Remaining at build),
	// the upper bound for hedge targets within this flow.
	flowSize float64
	// rateMark/rateMarkAt and winMark/winMarkAt are progress checkpoints
	// for the gray rate feed and the per-window completion sampler.
	rateMark   float64
	rateMarkAt sim.Time
	winMark    float64
	winMarkAt  sim.Time
	// lastWin is this tick's fresh normalized window-completion sample
	// (valid only when lastWinFresh), compared against the hedge deadline.
	lastWin      float64
	lastWinFresh bool
	// hedge is the stream's in-flight hedged window, nil when none.
	hedge *hedgeRace
}

// Transfer is a running (or finished) RFTP session.
type Transfer struct {
	Cfg    Config
	P      Params
	Size   float64 // bytes this session moves (size − Params.StartOffset); +Inf for open-ended
	Sender *host.Host

	streams  []*stream
	links    []*fabric.Link
	mgr      *railmgr.Manager
	src, dst pipe.Stage
	sim      *fluid.Sim
	eng      *sim.Engine
	started  sim.Time
	finished sim.Time
	done     int
	// OnComplete fires when every stream has drained and the session has
	// closed (finite transfers only).
	OnComplete func(now sim.Time)
	// OnFailure fires once if in-protocol recovery is exhausted
	// (MaxStreamRetries consecutive failed attempts on some stream); the
	// transfer is torn down first, so an outer scheduler may requeue.
	OnFailure func(now sim.Time)

	// Retransmitted counts payload bytes scheduled for retransmission
	// after declared losses.
	Retransmitted float64
	// Recoveries counts successful in-protocol stream re-establishments
	// on the same rail.
	Recoveries int
	// Migrations counts streams moved off a Dead rail (failover);
	// Failbacks counts streams moved back onto a re-admitted rail.
	Migrations, Failbacks int
	// CorruptionsDetected counts corrupt blocks the checksum layer caught
	// and re-transferred; IntegrityViolations counts corrupt blocks
	// delivered unnoticed because Config.Checksum was off.
	CorruptionsDetected int
	IntegrityViolations int
	// Hedges counts launched hedged windows; HedgeWins those where the
	// hedge finished first (the stream migrated to the winning rail);
	// HedgeLosses those the original outran. HedgeWaste is duplicate bytes
	// moved by racing — the price of the tail cut.
	Hedges, HedgeWins, HedgeLosses int
	HedgeWaste                     float64

	recoveryLat  []sim.Duration
	migrationLat []sim.Duration
	hedgeLat     []sim.Duration
	winQ         []*metrics.WindowedQuantile // per-rail window completion times
	firstHedge   sim.Time
	hedgeCount   int // hedges currently racing
	ticker       *sim.Ticker
	failed       bool
	stopped      bool
	released     bool
}

// Start launches an RFTP transfer of size bytes (math.Inf(1) for an
// open-ended stream) from senderHost across the given links. src runs on
// the sender, dst on the receiver. Session setup costs HandshakeRTTs round
// trips before data flows.
func Start(links []*fabric.Link, senderHost *host.Host, cfg Config, p Params,
	src, dst pipe.Stage, size float64, onComplete func(now sim.Time)) (*Transfer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("rftp: no links")
	}
	if size <= 0 && !math.IsInf(size, 1) {
		return nil, fmt.Errorf("rftp: size must be positive or +Inf")
	}
	if p.StartOffset < 0 {
		return nil, fmt.Errorf("rftp: StartOffset must be non-negative")
	}
	if !math.IsInf(size, 1) && p.StartOffset > 0 {
		if float64(p.StartOffset) >= size {
			return nil, fmt.Errorf("rftp: StartOffset %d beyond size %g", p.StartOffset, size)
		}
		size -= float64(p.StartOffset)
	}
	if p.Rails.Enabled && !p.recoveryEnabled() {
		return nil, fmt.Errorf("rftp: Rails requires AckTimeout > 0 (the ACK tracker makes migration exactly-once)")
	}
	if p.Hedge.Enabled {
		if !p.Rails.Enabled {
			return nil, fmt.Errorf("rftp: Hedge requires Rails.Enabled (hedged windows need alternate rails)")
		}
		p.Hedge = p.Hedge.withDefaults()
	}
	if p.recoveryEnabled() {
		if p.RetryBackoff <= 0 {
			p.RetryBackoff = 100 * sim.Millisecond
		}
		if p.RetryBackoffMax <= 0 {
			p.RetryBackoffMax = 5 * sim.Second
		}
		if p.MaxStreamRetries <= 0 {
			p.MaxStreamRetries = 16
		}
		if p.RDMA.ReadPenalty < 1 {
			p.RDMA = rdma.DefaultParams()
		}
	}
	t := &Transfer{
		Cfg: cfg, P: p, Size: size, Sender: senderHost,
		links: links, src: src, dst: dst,
		sim: links[0].Sim(), eng: links[0].Engine(),
		OnComplete: onComplete,
		firstHedge: -1,
	}
	t.started = t.eng.Now()
	if p.Hedge.Enabled {
		t.winQ = make([]*metrics.WindowedQuantile, len(links))
		for i := range links {
			t.winQ[i] = metrics.NewWindowedQuantile(p.Hedge.Window)
		}
	}

	// Resolve the sender NIC on every rail up front; a stream's endpoints
	// on rail r are built from these.
	sndNICs := make([]*host.Device, len(links))
	for i, l := range links {
		switch senderHost {
		case l.A.Host:
			sndNICs[i] = l.A
		case l.B.Host:
			sndNICs[i] = l.B
		default:
			return nil, fmt.Errorf("rftp: sender %s not on link %s", senderHost.Name, l.Cfg.Name)
		}
	}
	mkSide := func(l *fabric.Link, nic *host.Device, role string, idx int) side {
		h := nic.Host
		var proc *host.Process
		if cfg.Policy == numa.PolicyBind {
			proc = h.NewProcess(fmt.Sprintf("rftp-%s/%s", role, l.Cfg.Name), numa.PolicyBind, nic.Node)
		} else {
			proc = h.NewProcess(fmt.Sprintf("rftp-%s/%s", role, l.Cfg.Name), cfg.Policy, nil)
		}
		net := proc.NewThread()
		io := proc.NewThread()
		var buf *numa.Buffer
		if node := net.Node(); node != nil {
			buf = h.M.NewBuffer("rftp-stage", node)
		} else {
			buf = h.M.InterleavedBuffer("rftp-stage")
		}
		if pl := t.placer(); pl != nil {
			// Each side is one placement unit: both its threads plus the
			// registered staging buffer move together. A migration re-copies
			// the in-flight credit window held in the stage buffer.
			pl.AddEntity(fmt.Sprintf("rftp-%s/%s/s%d", role, l.Cfg.Name, idx),
				h.M, []*host.Thread{net, io}, []*numa.Buffer{buf}, t.window())
		}
		return side{nic: nic, net: net, io: io, buf: buf}
	}

	perStream := size
	if !math.IsInf(size, 1) {
		perStream = size / float64(cfg.Streams)
	}
	for i := 0; i < cfg.Streams; i++ {
		st := &stream{
			idx: i, rail: i % len(links),
			perStream: perStream, remaining: perStream,
			eps: make([]*endpoints, len(links)),
		}
		// Rail mode pre-builds endpoints on every rail, deterministically
		// at start, so a migration never allocates mid-crisis; legacy mode
		// builds only the fixed home rail.
		for r := range links {
			if r != st.rail && !p.Rails.Enabled {
				continue
			}
			st.eps[r] = &endpoints{
				snd: mkSide(links[r], sndNICs[r], "c", i),
				rcv: mkSide(links[r], links[r].Peer(sndNICs[r]), "s", i),
			}
		}
		tr, err := t.buildStream(st, perStream)
		if err != nil {
			return nil, err
		}
		st.transfer = tr
		t.streams = append(t.streams, st)
	}

	// Integrity plane: watch every rail for silent corruption. With
	// Checksum on, a hit is detected at offload and re-transferred; with
	// it off, the corrupt block is delivered and only counted.
	for i := range links {
		i := i
		links[i].Watch(func(ev fabric.Event) {
			if ev.Kind == fabric.EventCorruption {
				t.corrupted(i)
			}
		})
	}

	if p.recoveryEnabled() {
		for _, st := range t.streams {
			st.qp = t.newQP(st)
		}
		t.ticker = t.eng.NewTicker(p.AckTimeout/2, t.checkProgress)
	}
	if p.Rails.Enabled {
		t.mgr = railmgr.New(t.eng, links, p.Rails)
		t.mgr.OnTransition = t.onRailTransition
	}

	// Session handshake, then data on every stream.
	handshake := sim.Duration(p.HandshakeRTTs) * sim.Duration(links[0].RTT())
	t.eng.Schedule(handshake, func() {
		if t.stopped || t.failed {
			return
		}
		t.eng.Tracef("rftp", "session up: %d streams, bs=%d, credits=%d",
			cfg.Streams, cfg.BlockSize, cfg.CreditsPerStream)
		for _, st := range t.streams {
			// A stream that lost its link pre-handshake is already in the
			// recovery path and starts (or restarted) there.
			if st.recovering || st.done || st.transfer.Active() {
				continue
			}
			t.sim.Start(st.transfer)
			st.lastProgressAt = t.eng.Now()
			t.resetMarks(st, t.eng.Now())
		}
		if t.mgr != nil {
			t.rebalanceCredits()
		}
	})
	return t, nil
}

// buildStream recreates the stream's fully-charged fluid flow for a given
// residual size on its current rail; fluid.Cancel removes the flow from
// the network, so every retransmission or migration needs a fresh one.
func (t *Transfer) buildStream(st *stream, remaining float64) (*fluid.Transfer, error) {
	l := t.links[st.rail]
	f := t.sim.NewFlow(fmt.Sprintf("rftp/%s/s%d", l.Cfg.Name, st.idx), t.windowCap(l))
	if err := t.chargeStream(f, st, st.rail); err != nil {
		return nil, err
	}
	tr := &fluid.Transfer{
		Flow:       f,
		Remaining:  remaining,
		OnComplete: func(now sim.Time) { t.streamDone(st, now) },
	}
	st.flowSize = remaining
	if pl := t.placer(); pl != nil {
		rail := st.rail
		pl.Track(f, func(fl *fluid.Flow) {
			// Re-derive every charge from the endpoints' current placement.
			// The rail is the one the flow was built on: a rail change
			// always goes through a fresh flow, never a rebuild.
			_ = t.chargeStream(fl, st, rail)
		})
	}
	return tr, nil
}

// chargeStream attaches the full RFTP cost structure for st's endpoints on
// the given rail to f. It is a pure function of current placement state
// (thread pins, buffer homes), so the adaptive placer can clear f.Uses and
// re-run it to evaluate or commit an alternative layout.
func (t *Transfer) chargeStream(f *fluid.Flow, st *stream, rail int) error {
	l := t.links[rail]
	ep := st.eps[rail]
	p, cfg := t.P, t.Cfg
	bs := float64(cfg.BlockSize)
	tag := "rftp"
	// Data loading (pipelined onto a dedicated I/O thread).
	if err := t.src.Attach(f, ep.snd.io, ep.snd.buf, 1, tag); err != nil {
		return fmt.Errorf("rftp: source: %w", err)
	}
	// Sender protocol processing: per-byte plus per-block costs.
	ep.snd.net.ChargeCPU(f, p.ProtoCyclesPerByte+p.PerBlockCycles/bs, host.CatUser)
	if cfg.Checksum {
		ep.snd.io.ChargeMemory(f, ep.snd.buf, 1, false, host.CatUser)
		ep.snd.io.ChargeCPU(f, p.ChecksumCyclesPerByte, host.CatUser)
	}
	// Zero-copy wire path.
	ep.snd.nic.ChargeDMA(f, ep.snd.buf, 1, false, tag)
	l.ChargeWire(f, ep.snd.nic, 1+p.CtrlBytesPerBlock/bs, tag)
	ep.rcv.nic.ChargeDMA(f, ep.rcv.buf, 1, true, tag)
	// Receiver protocol processing and offload.
	ep.rcv.net.ChargeCPU(f, p.ProtoCyclesPerByte+p.PerBlockCycles/bs, host.CatUser)
	if cfg.Checksum {
		ep.rcv.io.ChargeMemory(f, ep.rcv.buf, 1, false, host.CatUser)
		ep.rcv.io.ChargeCPU(f, p.ChecksumCyclesPerByte, host.CatUser)
	}
	if err := t.dst.Attach(f, ep.rcv.io, ep.rcv.buf, 1, tag); err != nil {
		return fmt.Errorf("rftp: sink: %w", err)
	}
	return nil
}

// placer returns the adaptive placement engine when it actually applies:
// Config.Placer is honored only under numa.PolicyAuto.
func (t *Transfer) placer() *placer.Engine {
	if t.Cfg.Policy != numa.PolicyAuto {
		return nil
	}
	return t.Cfg.Placer
}

// untrack hands a stream's flow back from the placer before the transfer
// is cancelled or after it completes. Safe on never-tracked flows.
func (t *Transfer) untrack(tr *fluid.Transfer) {
	if tr == nil {
		return
	}
	if pl := t.placer(); pl != nil {
		pl.Untrack(tr.Flow)
	}
}

// newQP creates the stream's reliable connection on its current rail. The
// error hook is identity-guarded: a QP abandoned by a migration keeps
// watching its old link, and its late error completions must not disturb
// the stream's new life on another rail.
func (t *Transfer) newQP(s *stream) *rdma.QP {
	q := rdma.NewQP(t.links[s.rail], t.P.RDMA)
	q.OnError = func(now sim.Time, _ rdma.Status) {
		if s.qp == q {
			t.declareLoss(s, now)
		}
	}
	return q
}

// window is the per-stream credit window in bytes: bytes that may be in
// flight unacked, and therefore the amount conservatively declared lost
// when a stream stalls.
func (t *Transfer) window() float64 {
	return float64(t.Cfg.CreditsPerStream) * float64(t.Cfg.BlockSize)
}

// streamDone marks a stream fully delivered; the last one closes the
// session with a control round trip.
func (t *Transfer) streamDone(s *stream, _ sim.Time) {
	if s.hedge != nil {
		t.hedgeLost(s) // full delivery subsumes any racing hedge
	}
	t.untrack(s.transfer)
	s.done = true
	s.kind = KindNone
	s.acked = s.perStream
	s.remaining = 0
	t.done++
	if t.done == len(t.streams) {
		t.closeSession(t.links[s.rail])
	}
}

// closeSession runs the close control exchange. With recovery enabled a
// dropped close message is retried after the base backoff; otherwise it is
// silently lost, as before (an outer watchdog's problem).
func (t *Transfer) closeSession(l *fabric.Link) {
	var try func()
	retry := func() {
		if !t.P.recoveryEnabled() || t.stopped || t.failed {
			return
		}
		t.eng.Schedule(t.P.RetryBackoff, try)
	}
	try = func() {
		ok := l.Send(t.P.CtrlBytesPerBlock, func(sim.Time) {
			ok2 := l.Send(t.P.CtrlBytesPerBlock, func(now sim.Time) { t.finish(now) })
			if !ok2 {
				retry()
			}
		})
		if !ok {
			retry()
		}
	}
	try()
}

// finish records completion and releases the stall ticker and rail manager.
func (t *Transfer) finish(now sim.Time) {
	t.finished = now
	if t.ticker != nil {
		t.ticker.Stop()
		t.ticker = nil
	}
	if t.mgr != nil {
		t.mgr.Stop()
	}
	t.releaseEndpoints()
	if t.OnComplete != nil {
		t.OnComplete(now)
	}
}

// releaseEndpoints retires the session's per-thread limiter resources from
// the fluid network once no flow can ever charge them again (after finish,
// fail or Stop — all stream flows are gone by then). Sessions under the
// adaptive placer keep their threads: the placer still holds the endpoint
// entities and may re-derive charges from them. Without this, a small-file
// workload opening thousands of short sessions grows the network's
// resource list without bound and every structural solve scans all of it.
func (t *Transfer) releaseEndpoints() {
	if t.released || t.placer() != nil {
		return
	}
	t.released = true
	for _, st := range t.streams {
		for _, ep := range st.eps {
			if ep == nil {
				continue
			}
			ep.snd.net.Release()
			ep.snd.io.Release()
			ep.rcv.net.Release()
			ep.rcv.io.Release()
		}
	}
}

// checkProgress is the ACK stall detector: a stream whose fluid transfer
// has moved nothing for AckTimeout declares its window lost. Degraded
// links keep making (slow) progress and never trip this.
func (t *Transfer) checkProgress(now sim.Time) {
	if t.failed || t.stopped || t.finished > 0 {
		return
	}
	t.sim.Sync()
	for _, s := range t.streams {
		if s.done || s.recovering || !s.transfer.Active() {
			continue
		}
		m := s.transfer.Transferred()
		// A resumed stream keeps its recovery kind until the new attempt
		// clears the unacked credit window: until then the stream is
		// flowing but its exactly-once Transferred() is flat, and an outer
		// watchdog that dropped the grace here would declare a stall in
		// the last stretch of a recovery that is actually succeeding.
		if s.kind != KindNone && m > t.window() {
			s.kind = KindNone
		}
		t.observeStream(s, m, now)
		if s.hedge != nil && m >= s.hedge.target {
			t.hedgeLost(s) // the original outran its hedge
		}
		if m > s.lastMoved {
			s.lastMoved = m
			s.lastProgressAt = now
			continue
		}
		if now-s.lastProgressAt >= sim.Time(t.P.AckTimeout) {
			t.declareLoss(s, now)
		}
	}
	t.feedGrayRates(now)
	if t.P.Hedge.Enabled {
		t.evaluateHedges(now)
	}
}

// declareLoss folds a stalled stream's progress — everything beyond the
// trailing credit window counts as acked, the window itself is declared
// lost and will be retransmitted — then either re-establishes on the same
// rail or, when the rail is dark and rail management is on, fails over.
func (t *Transfer) declareLoss(s *stream, now sim.Time) {
	if t.failed || t.stopped || s.done || s.recovering {
		return
	}
	// A hedge racing against a window we are about to declare lost cannot
	// be trusted to fold: discard it and let the retransmission cover the
	// range (exactly-once beats saving a window of wire time).
	if s.hedge != nil {
		t.hedgeLost(s)
	}
	s.recovering = true
	s.kind = KindRetransmit
	s.faultAt = now
	t.sim.Sync()
	m := s.transfer.Transferred()
	t.untrack(s.transfer)
	if s.transfer.Active() {
		t.sim.Cancel(s.transfer)
	}
	goodAcked := math.Max(0, m-t.window())
	lost := m - goodAcked
	s.acked += goodAcked
	if !math.IsInf(s.remaining, 1) {
		s.remaining -= goodAcked
	}
	t.Retransmitted += lost
	t.eng.Tracef("rftp", "stream %d on %s lost window: %g bytes to retransmit, resume offset %g",
		s.idx, t.links[s.rail].Cfg.Name, lost, s.acked)
	// A dark rail cannot drain a retransmission; leave it instead of
	// backing off on it. (Degraded rails never reach here: slow progress
	// is still progress.)
	if t.mgr != nil && t.links[s.rail].Fraction() == 0 {
		t.migrateStream(s, now)
		return
	}
	t.scheduleRecovery(s)
}

// railUsable reports whether rail r may accept streams right now: alive at
// the link layer and, once the manager has classified it, admitted by the
// manager (a restored-but-unprobed rail is not).
func (t *Transfer) railUsable(r int) bool {
	if t.links[r].Fraction() == 0 {
		return false
	}
	return t.mgr == nil || t.mgr.State(r).Usable()
}

// pickRail chooses a failover target for s: the usable rail carrying the
// fewest live streams, ties to the lowest index — deterministic, so the
// same fault schedule migrates the same streams to the same rails.
func (t *Transfer) pickRail(s *stream) (int, bool) {
	loads := make([]int, len(t.links))
	for _, o := range t.streams {
		if !o.done {
			loads[o.rail]++
		}
	}
	best, found := -1, false
	for r := range t.links {
		if r == s.rail || !t.railUsable(r) {
			continue
		}
		if !found || loads[r] < loads[best] {
			best, found = r, true
		}
	}
	return best, found
}

// migrateStream moves a recovering stream (window already folded) onto a
// surviving rail and re-establishes there immediately — no backoff: the
// target rail is healthy, so the only latency is the control round trip.
// With no usable rail the stream parks on the retry ladder; a re-admitted
// rail will retarget it.
func (t *Transfer) migrateStream(s *stream, now sim.Time) {
	target, ok := t.pickRail(s)
	if !ok {
		s.kind = KindFailover
		t.eng.Tracef("rftp", "stream %d has no usable rail, parking on retry ladder", s.idx)
		t.scheduleRecovery(s)
		return
	}
	from := s.rail
	s.rail = target
	s.kind = KindFailover
	s.qp = t.newQP(s)
	t.eng.Tracef("rftp", "stream %d failing over %s -> %s (offset %g)",
		s.idx, t.links[from].Cfg.Name, t.links[target].Cfg.Name, s.acked)
	t.attemptResume(s)
}

// moveStream cleanly migrates an actively-flowing stream to rail target
// (failback): progress is drained and folded in full — the rail is alive,
// ACKs arrive during the handover, so nothing is retransmitted and nothing
// is delivered twice.
func (t *Transfer) moveStream(s *stream, target int, now sim.Time) {
	if s.hedge != nil {
		t.hedgeLost(s)
	}
	t.sim.Sync()
	m := s.transfer.Transferred()
	t.untrack(s.transfer)
	if s.transfer.Active() {
		t.sim.Cancel(s.transfer)
	}
	s.acked += m
	if !math.IsInf(s.remaining, 1) {
		s.remaining -= m
	}
	s.recovering = true
	s.kind = KindFailback
	s.faultAt = now
	from := s.rail
	s.rail = target
	s.qp = t.newQP(s)
	t.eng.Tracef("rftp", "stream %d failing back %s -> %s (offset %g, clean)",
		s.idx, t.links[from].Cfg.Name, t.links[target].Cfg.Name, s.acked)
	t.attemptResume(s)
}

// onRailTransition is the rail manager's policy hook.
func (t *Transfer) onRailTransition(rail int, from, to railmgr.State, now sim.Time) {
	if t.failed || t.stopped || t.finished > 0 {
		return
	}
	switch {
	case to == railmgr.Dead:
		// The QP error path normally beats this (watcher order), but any
		// stream still bound here — e.g. parked mid-backoff — must leave.
		for _, s := range t.streams {
			if s.rail != rail || s.done {
				continue
			}
			if !s.recovering {
				t.declareLoss(s, now)
				continue
			}
			if tgt, ok := t.pickRail(s); ok {
				s.rail = tgt
				s.kind = KindFailover
				s.qp = t.newQP(s)
				t.eng.Tracef("rftp", "stream %d retargeted to %s mid-recovery",
					s.idx, t.links[tgt].Cfg.Name)
			}
		}
	case from == railmgr.Probing && to.Usable():
		t.failback(now)
	}
	t.rebalanceCredits()
}

// failback spreads streams back toward their home rails after a rail is
// re-admitted: every stream whose round-robin home is usable and who lives
// elsewhere migrates home — cleanly if it is flowing, by retarget if it is
// mid-recovery. Re-running the start-time assignment keeps the layout (and
// therefore the trace) a pure function of rail state.
func (t *Transfer) failback(now sim.Time) {
	for _, s := range t.streams {
		home := s.idx % len(t.links)
		if s.done || s.rail == home || !t.railUsable(home) {
			continue
		}
		if s.recovering {
			s.rail = home
			s.qp = t.newQP(s)
			t.eng.Tracef("rftp", "stream %d retargeted home to %s mid-recovery",
				s.idx, t.links[home].Cfg.Name)
			continue
		}
		t.moveStream(s, home, now)
	}
}

// rebalanceCredits shifts the session's conserved credit pool toward
// healthy rails: each live stream's window cap is scaled by its rail's
// capacity fraction, normalized so the pool total is unchanged. Under
// uniform health every scale is 1 and the demands equal the start-time
// caps. Degradation therefore rebalances but never migrates — a degraded
// rail still delivers, and credits are cheaper to move than streams.
func (t *Transfer) rebalanceCredits() {
	if t.mgr == nil {
		return
	}
	// A rail's effective health is its visible capacity fraction times the
	// gray scorer's weight — a suspect rail sheds credits in proportion to
	// its measured shortfall even though its link layer claims full speed.
	eff := func(r int) float64 { return t.links[r].Fraction() * t.mgr.GrayWeight(r) }
	sumFrac, n := 0.0, 0
	for _, s := range t.streams {
		if s.done || s.recovering || !s.transfer.Active() {
			continue
		}
		sumFrac += eff(s.rail)
		n++
	}
	if n == 0 || sumFrac <= 0 {
		return
	}
	for _, s := range t.streams {
		if s.done || s.recovering || !s.transfer.Active() {
			continue
		}
		scale := eff(s.rail) * float64(n) / sumFrac
		t.sim.SetDemand(s.transfer.Flow, t.windowCap(t.links[s.rail])*scale)
	}
}

// corrupted handles a silent bit flip on rail r: it lands on the
// lowest-index stream flowing there (nothing in flight → no payload hit).
// The checksum layer catches it at offload and re-transfers the block
// after a NACK round trip; without the checksum the corrupt block is
// delivered and only the violation counter knows.
func (t *Transfer) corrupted(r int) {
	if t.failed || t.stopped || t.finished > 0 {
		return
	}
	var victim *stream
	for _, s := range t.streams {
		if s.rail == r && !s.done && !s.recovering && s.transfer.Active() {
			victim = s
			break
		}
	}
	if victim == nil {
		t.eng.Tracef("rftp", "corruption on %s hit no payload in flight", t.links[r].Cfg.Name)
		return
	}
	if victim.hedge != nil {
		t.hedgeLost(victim)
	}
	now := t.eng.Now()
	if !t.Cfg.Checksum {
		t.IntegrityViolations++
		t.eng.Tracef("rftp", "SILENT corruption on stream %d (%s): corrupt block delivered, no checksum to catch it",
			victim.idx, t.links[r].Cfg.Name)
		return
	}
	t.sim.Sync()
	m := victim.transfer.Transferred()
	t.untrack(victim.transfer)
	if victim.transfer.Active() {
		t.sim.Cancel(victim.transfer)
	}
	bs := math.Min(float64(t.Cfg.BlockSize), m)
	good := m - bs // everything before the corrupt block is fine
	victim.acked += good
	if !math.IsInf(victim.remaining, 1) {
		victim.remaining -= good
	}
	victim.recovering = true
	victim.kind = KindChecksum
	victim.faultAt = now
	t.Retransmitted += bs
	t.CorruptionsDetected++
	t.eng.Tracef("rftp", "checksum caught corrupt block on stream %d (%s): %g bytes to re-transfer",
		victim.idx, t.links[r].Cfg.Name, bs)
	t.nackRetry(victim)
}

// nackRetry runs the corrupt-block NACK round trip and resumes. The rail
// is healthy (corruption does not imply darkness), so a dropped NACK is a
// coincidence of faults: hand it to the recovery ladder when there is one,
// else retry after an RTT.
func (t *Transfer) nackRetry(s *stream) {
	l := t.links[s.rail]
	ok := l.Send(t.P.CtrlBytesPerBlock, func(now sim.Time) { t.resume(s, now) })
	if ok {
		return
	}
	if t.P.recoveryEnabled() {
		t.scheduleRecovery(s)
		return
	}
	delay := l.RTT()
	if delay <= 0 {
		delay = sim.Millisecond
	}
	t.eng.Schedule(delay, func() { t.nackRetry(s) })
}

// scheduleRecovery arms the next recovery attempt with exponential
// backoff, failing the transfer when retries are exhausted.
func (t *Transfer) scheduleRecovery(s *stream) {
	if t.failed || t.stopped || s.done {
		return
	}
	if s.retries >= t.P.MaxStreamRetries {
		t.fail(t.eng.Now())
		return
	}
	backoff := t.P.RetryBackoff
	for i := 0; i < s.retries && backoff < t.P.RetryBackoffMax; i++ {
		backoff *= 2
	}
	if backoff > t.P.RetryBackoffMax {
		backoff = t.P.RetryBackoffMax
	}
	s.retries++
	s.pending = t.eng.Schedule(backoff, func() {
		s.pending = nil
		t.attemptResume(s)
	})
}

// attemptResume re-establishes the stream session: one control round trip
// on its rail. In rail mode a stream whose rail died while it waited is
// retargeted first. A drop (rail still dark) backs off and tries again.
func (t *Transfer) attemptResume(s *stream) {
	if t.failed || t.stopped || s.done {
		return
	}
	if t.mgr != nil && t.links[s.rail].Fraction() == 0 {
		if tgt, ok := t.pickRail(s); ok {
			s.rail = tgt
			s.kind = KindFailover
			s.qp = t.newQP(s)
		}
	}
	l := t.links[s.rail]
	ok := l.Send(t.P.CtrlBytesPerBlock, func(sim.Time) {
		ok2 := l.Send(t.P.CtrlBytesPerBlock, func(now sim.Time) { t.resume(s, now) })
		if !ok2 {
			t.scheduleRecovery(s)
		}
	})
	if !ok {
		t.scheduleRecovery(s)
	}
}

// resume restarts the stream from its acked offset on a fresh flow on its
// current rail, crediting the counter matching the recovery kind.
func (t *Transfer) resume(s *stream, now sim.Time) {
	if t.failed || t.stopped || s.done {
		return
	}
	if s.qp != nil {
		s.qp.Reset()
	}
	tr, err := t.buildStream(s, s.remaining)
	if err != nil {
		t.fail(now)
		return
	}
	s.transfer = tr
	t.sim.Start(tr)
	s.recovering = false
	s.retries = 0
	s.lastMoved = 0
	s.lastProgressAt = now
	t.resetMarks(s, now)
	lat := sim.Duration(now - s.faultAt)
	switch s.kind {
	case KindFailover:
		t.Migrations++
		t.migrationLat = append(t.migrationLat, lat)
		t.eng.Tracef("rftp", "stream %d failed over to %s after %v: offset %g, %g to go",
			s.idx, t.links[s.rail].Cfg.Name, lat, s.acked, s.remaining)
	case KindFailback:
		t.Failbacks++
		t.eng.Tracef("rftp", "stream %d failed back to %s after %v: offset %g, %g to go",
			s.idx, t.links[s.rail].Cfg.Name, lat, s.acked, s.remaining)
	case KindChecksum:
		t.eng.Tracef("rftp", "stream %d re-transferring corrupt block on %s: offset %g, %g to go",
			s.idx, t.links[s.rail].Cfg.Name, s.acked, s.remaining)
	case KindHedge:
		t.eng.Tracef("rftp", "stream %d following hedge win onto %s after %v: offset %g, %g to go",
			s.idx, t.links[s.rail].Cfg.Name, lat, s.acked, s.remaining)
	default:
		t.Recoveries++
		t.recoveryLat = append(t.recoveryLat, lat)
		t.eng.Tracef("rftp", "stream %d re-established on %s after %v: offset %g, %g to go",
			s.idx, t.links[s.rail].Cfg.Name, lat, s.acked, s.remaining)
	}
	// s.kind deliberately survives the resume: it is cleared only once the
	// new attempt makes window-clearing (visible) progress, so outer
	// watchdogs keep their kind-scaled grace through the recovery's tail.
	if t.mgr != nil {
		t.rebalanceCredits()
	}
}

// fail gives up after exhausted recovery: tear down and report once.
func (t *Transfer) fail(now sim.Time) {
	if t.failed || t.stopped {
		return
	}
	t.failed = true
	t.teardown()
	t.releaseEndpoints()
	t.eng.Tracef("rftp", "transfer failed: recovery exhausted")
	if t.OnFailure != nil {
		t.OnFailure(now)
	}
}

// teardown cancels everything in flight and stops the stall ticker and
// rail manager.
func (t *Transfer) teardown() {
	if t.ticker != nil {
		t.ticker.Stop()
		t.ticker = nil
	}
	if t.mgr != nil {
		t.mgr.Stop()
	}
	for _, s := range t.streams {
		if s.pending != nil {
			t.eng.Cancel(s.pending)
			s.pending = nil
		}
		if s.hedge != nil {
			t.hedgeLost(s)
		}
		t.untrack(s.transfer)
		if s.transfer.Active() {
			t.sim.Cancel(s.transfer)
		} else if s.transfer != nil {
			// A session stopped mid-handshake holds built-but-never-started
			// stream transfers: their flows are registered but not active, so
			// Cancel above never detaches them. Remove them directly (no-op
			// for flows already detached by completion or loss declaration).
			t.sim.Network.RemoveFlow(s.transfer.Flow)
		}
	}
}

// windowCap is the credit-limited per-stream rate.
func (t *Transfer) windowCap(l *fabric.Link) float64 {
	rtt := float64(l.RTT())
	if rtt <= 0 {
		return math.Inf(1)
	}
	return float64(t.Cfg.CreditsPerStream) * float64(t.Cfg.BlockSize) / rtt
}

// Transferred returns total payload bytes delivered so far. Without
// recovery this is the raw fluid progress (plus any blocks folded by a
// checksum re-transfer). With recovery enabled it is the exactly-once
// delivered count: per stream, acked bytes plus current progress beyond
// the unacked credit window — never bytes that a later loss declaration
// could retransmit. It is monotonic across retransmissions, migrations and
// failbacks, so an outer scheduler may persist it as a resume offset
// (Params.StartOffset).
func (t *Transfer) Transferred() float64 {
	t.sim.Sync()
	sum := 0.0
	w := t.window()
	for _, st := range t.streams {
		if !t.P.recoveryEnabled() {
			if st.done {
				sum += st.acked
			} else {
				sum += st.acked + st.transfer.Transferred()
			}
			continue
		}
		sum += st.acked
		if !st.done && !st.recovering && st.transfer.Active() {
			sum += math.Max(0, st.transfer.Transferred()-w)
		}
	}
	return sum
}

// Bandwidth returns the average payload rate since the transfer started.
func (t *Transfer) Bandwidth() float64 {
	end := t.eng.Now()
	if t.finished > 0 {
		end = t.finished
	}
	el := float64(end - t.started)
	if el <= 0 {
		return 0
	}
	return t.Transferred() / el
}

// Finished returns the completion time (zero while running).
func (t *Transfer) Finished() sim.Time { return t.finished }

// Failed reports whether in-protocol recovery was exhausted.
func (t *Transfer) Failed() bool { return t.failed }

// Rails exposes the transfer's rail manager (nil unless Params.Rails).
func (t *Transfer) Rails() *railmgr.Manager { return t.mgr }

// ActiveRecovery returns the most expensive recovery kind currently in
// flight across the streams (KindNone when all are flowing). A stream
// counts as in flight from its loss declaration until its resumed attempt
// makes visible (window-clearing) progress — not merely until it resumes —
// because exactly-once Transferred() stays flat across that whole span.
func (t *Transfer) ActiveRecovery() RecoveryKind {
	worst := KindNone
	for _, s := range t.streams {
		if !s.done && s.kind > worst {
			worst = s.kind
		}
	}
	return worst
}

// SetupBudget returns the virtual time a fresh session may legitimately
// show zero progress: the handshake round trips on the slowest rail.
func (t *Transfer) SetupBudget() sim.Duration {
	var maxRTT sim.Duration
	for _, l := range t.links {
		if r := l.RTT(); r > maxRTT {
			maxRTT = r
		}
	}
	return sim.Duration(t.P.HandshakeRTTs) * maxRTT
}

// RecoveryGrace returns the extra no-progress allowance an outer watchdog
// should grant on top of its static budget, as a function of the active
// recovery kind. A retransmission needs one more detection beat at most; a
// migration may legitimately pay rail probing, a fresh session handshake,
// and — when its first target dies under it — a restarted backoff ladder.
// Zero when nothing is recovering, and bounded always: the watchdog stays
// armed as the last line of defense.
func (t *Transfer) RecoveryGrace() sim.Duration {
	switch t.ActiveRecovery() {
	case KindNone:
		return 0
	case KindRetransmit, KindChecksum:
		return t.P.AckTimeout + t.P.RetryBackoffMax
	default: // KindFailover, KindFailback
		g := t.P.RecoveryBudget() + t.SetupBudget()
		if t.mgr != nil {
			g += t.P.Rails.ProbeBudget()
		}
		return g
	}
}

// RecoveryLatencies returns one sample per successful same-rail recovery:
// virtual time from the loss declaration to the stream flowing again.
func (t *Transfer) RecoveryLatencies() []sim.Duration {
	out := make([]sim.Duration, len(t.recoveryLat))
	copy(out, t.recoveryLat)
	return out
}

// MigrationLatencies returns one sample per completed failover: virtual
// time from the loss declaration on the dead rail to the stream flowing
// on its new rail.
func (t *Transfer) MigrationLatencies() []sim.Duration {
	out := make([]sim.Duration, len(t.migrationLat))
	copy(out, t.migrationLat)
	return out
}

// Stop cancels an open-ended transfer's streams and any pending recovery.
func (t *Transfer) Stop() {
	t.stopped = true
	t.teardown()
	t.releaseEndpoints()
}

// Streams returns the per-stream current rates, for diagnostics.
func (t *Transfer) StreamRates() []float64 {
	out := make([]float64, len(t.streams))
	for i, st := range t.streams {
		out[i] = st.transfer.Flow.Rate()
	}
	return out
}
