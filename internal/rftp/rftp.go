// Package rftp implements the paper's RDMA-based file transfer protocol
// (RFTP [21,22,23]): parallel RDMA streams between a client and a server,
// zero-copy data movement from registered staging buffers, credit-based
// flow control with asynchronous control messages, and a pipelined
// architecture in which dedicated I/O threads keep loading/offloading
// while network threads keep the wire full.
//
// Cost structure per payload byte on each side:
//
//   - user-space protocol processing (ProtoCyclesPerByte — Figure 4
//     measures ≈56% of one core across both sides at 39 Gbps);
//   - per-block work-request posting and credit-token handling
//     (PerBlockCycles/BlockSize — this is why Figure 14's CPU curves fall
//     as the block size grows);
//   - control messages on the wire (CtrlBytesPerBlock/BlockSize — why
//     Figure 13's goodput rises toward 97% of raw bandwidth with block
//     size);
//   - NIC DMA from/to the staging buffers (zero copy: no CPU).
//
// Flow control: each stream may keep CreditsPerStream blocks outstanding,
// bounding its rate by Credits×BlockSize/RTT — on the 95 ms ANI loop this
// is the dominant limit for small blocks and few streams, reproducing the
// left half of Figure 13.
package rftp

import (
	"fmt"
	"math"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/rdma"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// Params calibrates protocol costs.
type Params struct {
	// ProtoCyclesPerByte is user-space protocol processing per side.
	ProtoCyclesPerByte float64
	// PerBlockCycles is the per-block posting/credit CPU cost per side.
	PerBlockCycles float64
	// CtrlBytesPerBlock is control-channel traffic per data block.
	CtrlBytesPerBlock float64
	// HandshakeRTTs is how many round trips session setup takes.
	HandshakeRTTs int
	// ChecksumCyclesPerByte is the per-side cost of end-to-end integrity
	// verification when Config.Checksum is on (CRC32C-class).
	ChecksumCyclesPerByte float64
	// StartOffset resumes a finite transfer from byte N: the session moves
	// only the tail, Size−StartOffset bytes, as when a retry picks up a
	// partially-completed transfer. Open-ended (+Inf) transfers ignore it.
	StartOffset int64
	// RDMA parameterizes the verbs layer.
	RDMA rdma.Params

	// AckTimeout, when positive, enables in-protocol recovery: each stream
	// tracks ACK progress and, after AckTimeout without any, declares its
	// outstanding credit window lost, re-establishes the session, and
	// retransmits from the acked offset. Zero (the default) preserves the
	// legacy behavior: a stream on a dark link stalls until an outer
	// watchdog restarts the whole transfer.
	AckTimeout sim.Duration
	// RetryBackoff is the initial delay before a recovery attempt; each
	// consecutive failed attempt doubles it up to RetryBackoffMax.
	// Zero selects 100 ms when recovery is enabled.
	RetryBackoff sim.Duration
	// RetryBackoffMax caps the exponential backoff (default 5 s).
	RetryBackoffMax sim.Duration
	// MaxStreamRetries bounds consecutive failed recovery attempts on one
	// stream before the transfer gives up and fires OnFailure (default 16).
	MaxStreamRetries int
}

// recoveryEnabled reports whether in-protocol recovery is on.
func (p Params) recoveryEnabled() bool { return p.AckTimeout > 0 }

// DefaultParams matches the paper's Figure 4 profile on 2.2 GHz cores.
func DefaultParams() Params {
	return Params{
		ProtoCyclesPerByte:    0.12,
		PerBlockCycles:        3500,
		CtrlBytesPerBlock:     128,
		HandshakeRTTs:         2,
		ChecksumCyclesPerByte: 0.4,
		RDMA:                  rdma.DefaultParams(),
	}
}

// Config describes one transfer's shape.
type Config struct {
	// Streams is the number of parallel RDMA streams; they are assigned
	// to links round-robin.
	Streams int
	// BlockSize is the transfer block size.
	BlockSize int64
	// CreditsPerStream bounds outstanding blocks per stream.
	CreditsPerStream int
	// Policy binds stream threads to their NIC's NUMA node (the paper
	// runs RFTP under numactl in §4.3).
	Policy numa.Policy
	// Checksum enables end-to-end block integrity verification: each side
	// reads every payload byte once more and spends checksum cycles on a
	// dedicated I/O thread (RDMA already guarantees link-level integrity;
	// this guards the storage path).
	Checksum bool
}

// DefaultConfig returns the tuned LAN configuration.
func DefaultConfig() Config {
	return Config{
		Streams:          3,
		BlockSize:        4 * units.MB,
		CreditsPerStream: 64,
		Policy:           numa.PolicyBind,
	}
}

// Validate reports config errors.
func (c Config) Validate() error {
	switch {
	case c.Streams <= 0:
		return fmt.Errorf("rftp: Streams must be positive")
	case c.BlockSize <= 0:
		return fmt.Errorf("rftp: BlockSize must be positive")
	case c.CreditsPerStream <= 0:
		return fmt.Errorf("rftp: CreditsPerStream must be positive")
	}
	return nil
}

// stream is one RDMA data channel.
type stream struct {
	idx      int
	link     *fabric.Link
	transfer *fluid.Transfer
	// build recreates the stream's fully-charged fluid flow for a given
	// residual size; fluid.Cancel removes the flow from the network, so
	// every retransmission attempt needs a fresh one.
	build func(remaining float64) (*fluid.Transfer, error)
	// qp is the stream's reliable connection when recovery is enabled; its
	// error completions trigger immediate loss declaration.
	qp *rdma.QP
	// perStream is this stream's share of the session; acked counts bytes
	// definitely delivered, remaining = perStream − acked.
	perStream float64
	acked     float64
	remaining float64
	// retries counts consecutive failed recovery attempts (reset on a
	// successful resume); lastMoved/lastProgressAt drive stall detection.
	retries        int
	lastMoved      float64
	lastProgressAt sim.Time
	recovering     bool
	faultAt        sim.Time
	pending        *sim.Event
	done           bool
}

// Transfer is a running (or finished) RFTP session.
type Transfer struct {
	Cfg    Config
	P      Params
	Size   float64 // bytes this session moves (size − Params.StartOffset); +Inf for open-ended
	Sender *host.Host

	streams  []*stream
	sim      *fluid.Sim
	eng      *sim.Engine
	started  sim.Time
	finished sim.Time
	done     int
	// OnComplete fires when every stream has drained and the session has
	// closed (finite transfers only).
	OnComplete func(now sim.Time)
	// OnFailure fires once if in-protocol recovery is exhausted
	// (MaxStreamRetries consecutive failed attempts on some stream); the
	// transfer is torn down first, so an outer scheduler may requeue.
	OnFailure func(now sim.Time)

	// Retransmitted counts payload bytes scheduled for retransmission
	// after declared losses.
	Retransmitted float64
	// Recoveries counts successful in-protocol stream re-establishments.
	Recoveries int

	recoveryLat []sim.Duration
	ticker      *sim.Ticker
	failed      bool
	stopped     bool
}

// Start launches an RFTP transfer of size bytes (math.Inf(1) for an
// open-ended stream) from senderHost across the given links. src runs on
// the sender, dst on the receiver. Session setup costs HandshakeRTTs round
// trips before data flows.
func Start(links []*fabric.Link, senderHost *host.Host, cfg Config, p Params,
	src, dst pipe.Stage, size float64, onComplete func(now sim.Time)) (*Transfer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("rftp: no links")
	}
	if size <= 0 && !math.IsInf(size, 1) {
		return nil, fmt.Errorf("rftp: size must be positive or +Inf")
	}
	if p.StartOffset < 0 {
		return nil, fmt.Errorf("rftp: StartOffset must be non-negative")
	}
	if !math.IsInf(size, 1) && p.StartOffset > 0 {
		if float64(p.StartOffset) >= size {
			return nil, fmt.Errorf("rftp: StartOffset %d beyond size %g", p.StartOffset, size)
		}
		size -= float64(p.StartOffset)
	}
	if p.recoveryEnabled() {
		if p.RetryBackoff <= 0 {
			p.RetryBackoff = 100 * sim.Millisecond
		}
		if p.RetryBackoffMax <= 0 {
			p.RetryBackoffMax = 5 * sim.Second
		}
		if p.MaxStreamRetries <= 0 {
			p.MaxStreamRetries = 16
		}
		if p.RDMA.ReadPenalty < 1 {
			p.RDMA = rdma.DefaultParams()
		}
	}
	t := &Transfer{
		Cfg: cfg, P: p, Size: size, Sender: senderHost,
		sim: links[0].Sim(), eng: links[0].Engine(),
		OnComplete: onComplete,
	}
	t.started = t.eng.Now()

	type side struct {
		nic *host.Device
		net *host.Thread
		io  *host.Thread
		buf *numa.Buffer
	}
	mkSide := func(l *fabric.Link, nic *host.Device, role string) side {
		h := nic.Host
		var proc *host.Process
		if cfg.Policy == numa.PolicyBind {
			proc = h.NewProcess(fmt.Sprintf("rftp-%s/%s", role, l.Cfg.Name), numa.PolicyBind, nic.Node)
		} else {
			proc = h.NewProcess(fmt.Sprintf("rftp-%s/%s", role, l.Cfg.Name), cfg.Policy, nil)
		}
		net := proc.NewThread()
		io := proc.NewThread()
		var buf *numa.Buffer
		if node := net.Node(); node != nil {
			buf = h.M.NewBuffer("rftp-stage", node)
		} else {
			buf = h.M.InterleavedBuffer("rftp-stage")
		}
		return side{nic: nic, net: net, io: io, buf: buf}
	}

	perStream := size
	if !math.IsInf(size, 1) {
		perStream = size / float64(cfg.Streams)
	}
	bs := float64(cfg.BlockSize)
	for i := 0; i < cfg.Streams; i++ {
		l := links[i%len(links)]
		var sndNIC *host.Device
		switch senderHost {
		case l.A.Host:
			sndNIC = l.A
		case l.B.Host:
			sndNIC = l.B
		default:
			return nil, fmt.Errorf("rftp: sender %s not on link %s", senderHost.Name, l.Cfg.Name)
		}
		snd := mkSide(l, sndNIC, "c")
		rcv := mkSide(l, l.Peer(sndNIC), "s")

		st := &stream{idx: i, link: l, perStream: perStream, remaining: perStream}
		li, sndNICi, sndS, rcvS := l, sndNIC, snd, rcv
		st.build = func(remaining float64) (*fluid.Transfer, error) {
			f := t.sim.NewFlow(fmt.Sprintf("rftp/%s/s%d", li.Cfg.Name, st.idx), t.windowCap(li))
			tag := "rftp"
			// Data loading (pipelined onto a dedicated I/O thread).
			if err := src.Attach(f, sndS.io, sndS.buf, 1, tag); err != nil {
				return nil, fmt.Errorf("rftp: source: %w", err)
			}
			// Sender protocol processing: per-byte plus per-block costs.
			sndS.net.ChargeCPU(f, p.ProtoCyclesPerByte+p.PerBlockCycles/bs, host.CatUser)
			if cfg.Checksum {
				sndS.io.ChargeMemory(f, sndS.buf, 1, false, host.CatUser)
				sndS.io.ChargeCPU(f, p.ChecksumCyclesPerByte, host.CatUser)
			}
			// Zero-copy wire path.
			sndNICi.ChargeDMA(f, sndS.buf, 1, false, tag)
			li.ChargeWire(f, sndNICi, 1+p.CtrlBytesPerBlock/bs, tag)
			rcvS.nic.ChargeDMA(f, rcvS.buf, 1, true, tag)
			// Receiver protocol processing and offload.
			rcvS.net.ChargeCPU(f, p.ProtoCyclesPerByte+p.PerBlockCycles/bs, host.CatUser)
			if cfg.Checksum {
				rcvS.io.ChargeMemory(f, rcvS.buf, 1, false, host.CatUser)
				rcvS.io.ChargeCPU(f, p.ChecksumCyclesPerByte, host.CatUser)
			}
			if err := dst.Attach(f, rcvS.io, rcvS.buf, 1, tag); err != nil {
				return nil, fmt.Errorf("rftp: sink: %w", err)
			}
			return &fluid.Transfer{
				Flow:       f,
				Remaining:  remaining,
				OnComplete: func(now sim.Time) { t.streamDone(st, now) },
			}, nil
		}
		tr, err := st.build(perStream)
		if err != nil {
			return nil, err
		}
		st.transfer = tr
		t.streams = append(t.streams, st)
	}

	if p.recoveryEnabled() {
		for _, st := range t.streams {
			st := st
			st.qp = rdma.NewQP(st.link, p.RDMA)
			st.qp.OnError = func(now sim.Time, _ rdma.Status) { t.declareLoss(st, now) }
		}
		t.ticker = t.eng.NewTicker(p.AckTimeout/2, t.checkProgress)
	}

	// Session handshake, then data on every stream.
	handshake := sim.Duration(p.HandshakeRTTs) * sim.Duration(links[0].RTT())
	t.eng.Schedule(handshake, func() {
		if t.stopped || t.failed {
			return
		}
		t.eng.Tracef("rftp", "session up: %d streams, bs=%d, credits=%d",
			cfg.Streams, cfg.BlockSize, cfg.CreditsPerStream)
		for _, st := range t.streams {
			// A stream that lost its link pre-handshake is already in the
			// recovery path and starts (or restarted) there.
			if st.recovering || st.done || st.transfer.Active() {
				continue
			}
			t.sim.Start(st.transfer)
			st.lastProgressAt = t.eng.Now()
		}
	})
	return t, nil
}

// window is the per-stream credit window in bytes: bytes that may be in
// flight unacked, and therefore the amount conservatively declared lost
// when a stream stalls.
func (t *Transfer) window() float64 {
	return float64(t.Cfg.CreditsPerStream) * float64(t.Cfg.BlockSize)
}

// streamDone marks a stream fully delivered; the last one closes the
// session with a control round trip.
func (t *Transfer) streamDone(s *stream, _ sim.Time) {
	s.done = true
	s.acked = s.perStream
	s.remaining = 0
	t.done++
	if t.done == len(t.streams) {
		t.closeSession(s.link)
	}
}

// closeSession runs the close control exchange. With recovery enabled a
// dropped close message is retried after the base backoff; otherwise it is
// silently lost, as before (an outer watchdog's problem).
func (t *Transfer) closeSession(l *fabric.Link) {
	var try func()
	retry := func() {
		if !t.P.recoveryEnabled() || t.stopped || t.failed {
			return
		}
		t.eng.Schedule(t.P.RetryBackoff, try)
	}
	try = func() {
		ok := l.Send(t.P.CtrlBytesPerBlock, func(sim.Time) {
			ok2 := l.Send(t.P.CtrlBytesPerBlock, func(now sim.Time) { t.finish(now) })
			if !ok2 {
				retry()
			}
		})
		if !ok {
			retry()
		}
	}
	try()
}

// finish records completion and releases the stall ticker.
func (t *Transfer) finish(now sim.Time) {
	t.finished = now
	if t.ticker != nil {
		t.ticker.Stop()
		t.ticker = nil
	}
	if t.OnComplete != nil {
		t.OnComplete(now)
	}
}

// checkProgress is the ACK stall detector: a stream whose fluid transfer
// has moved nothing for AckTimeout declares its window lost. Degraded
// links keep making (slow) progress and never trip this.
func (t *Transfer) checkProgress(now sim.Time) {
	if t.failed || t.stopped || t.finished > 0 {
		return
	}
	t.sim.Sync()
	for _, s := range t.streams {
		if s.done || s.recovering || !s.transfer.Active() {
			continue
		}
		if m := s.transfer.Transferred(); m > s.lastMoved {
			s.lastMoved = m
			s.lastProgressAt = now
			continue
		}
		if now-s.lastProgressAt >= sim.Time(t.P.AckTimeout) {
			t.declareLoss(s, now)
		}
	}
}

// declareLoss folds a stalled stream's progress — everything beyond the
// trailing credit window counts as acked, the window itself is declared
// lost and will be retransmitted — and schedules session re-establishment.
func (t *Transfer) declareLoss(s *stream, now sim.Time) {
	if t.failed || t.stopped || s.done || s.recovering {
		return
	}
	s.recovering = true
	s.faultAt = now
	t.sim.Sync()
	m := s.transfer.Transferred()
	if s.transfer.Active() {
		t.sim.Cancel(s.transfer)
	}
	goodAcked := math.Max(0, m-t.window())
	lost := m - goodAcked
	s.acked += goodAcked
	if !math.IsInf(s.remaining, 1) {
		s.remaining -= goodAcked
	}
	t.Retransmitted += lost
	t.eng.Tracef("rftp", "stream %d on %s lost window: %g bytes to retransmit, resume offset %g",
		s.idx, s.link.Cfg.Name, lost, s.acked)
	t.scheduleRecovery(s)
}

// scheduleRecovery arms the next recovery attempt with exponential
// backoff, failing the transfer when retries are exhausted.
func (t *Transfer) scheduleRecovery(s *stream) {
	if t.failed || t.stopped || s.done {
		return
	}
	if s.retries >= t.P.MaxStreamRetries {
		t.fail(t.eng.Now())
		return
	}
	backoff := t.P.RetryBackoff
	for i := 0; i < s.retries && backoff < t.P.RetryBackoffMax; i++ {
		backoff *= 2
	}
	if backoff > t.P.RetryBackoffMax {
		backoff = t.P.RetryBackoffMax
	}
	s.retries++
	s.pending = t.eng.Schedule(backoff, func() {
		s.pending = nil
		t.attemptResume(s)
	})
}

// attemptResume re-establishes the stream session: one control round trip
// on the link. A drop (link still dark) backs off and tries again.
func (t *Transfer) attemptResume(s *stream) {
	if t.failed || t.stopped || s.done {
		return
	}
	ok := s.link.Send(t.P.CtrlBytesPerBlock, func(sim.Time) {
		ok2 := s.link.Send(t.P.CtrlBytesPerBlock, func(now sim.Time) { t.resume(s, now) })
		if !ok2 {
			t.scheduleRecovery(s)
		}
	})
	if !ok {
		t.scheduleRecovery(s)
	}
}

// resume restarts the stream from its acked offset on a fresh flow.
func (t *Transfer) resume(s *stream, now sim.Time) {
	if t.failed || t.stopped || s.done {
		return
	}
	if s.qp != nil {
		s.qp.Reset()
	}
	tr, err := s.build(s.remaining)
	if err != nil {
		t.fail(now)
		return
	}
	s.transfer = tr
	t.sim.Start(tr)
	s.recovering = false
	s.retries = 0
	s.lastMoved = 0
	s.lastProgressAt = now
	t.Recoveries++
	t.recoveryLat = append(t.recoveryLat, sim.Duration(now-s.faultAt))
	t.eng.Tracef("rftp", "stream %d re-established on %s after %v: offset %g, %g to go",
		s.idx, s.link.Cfg.Name, sim.Duration(now-s.faultAt), s.acked, s.remaining)
}

// fail gives up after exhausted recovery: tear down and report once.
func (t *Transfer) fail(now sim.Time) {
	if t.failed || t.stopped {
		return
	}
	t.failed = true
	t.teardown()
	t.eng.Tracef("rftp", "transfer failed: recovery exhausted")
	if t.OnFailure != nil {
		t.OnFailure(now)
	}
}

// teardown cancels everything in flight and stops the stall ticker.
func (t *Transfer) teardown() {
	if t.ticker != nil {
		t.ticker.Stop()
		t.ticker = nil
	}
	for _, s := range t.streams {
		if s.pending != nil {
			t.eng.Cancel(s.pending)
			s.pending = nil
		}
		if s.transfer.Active() {
			t.sim.Cancel(s.transfer)
		}
	}
}

// windowCap is the credit-limited per-stream rate.
func (t *Transfer) windowCap(l *fabric.Link) float64 {
	rtt := float64(l.RTT())
	if rtt <= 0 {
		return math.Inf(1)
	}
	return float64(t.Cfg.CreditsPerStream) * float64(t.Cfg.BlockSize) / rtt
}

// Transferred returns total payload bytes delivered so far. Without
// recovery this is the raw fluid progress. With recovery enabled it is the
// exactly-once delivered count: per stream, acked bytes plus current
// progress beyond the unacked credit window — never bytes that a later
// loss declaration could retransmit. It is monotonic, so an outer
// scheduler may persist it as a resume offset (Params.StartOffset).
func (t *Transfer) Transferred() float64 {
	t.sim.Sync()
	sum := 0.0
	w := t.window()
	for _, st := range t.streams {
		if !t.P.recoveryEnabled() {
			sum += st.transfer.Transferred()
			continue
		}
		sum += st.acked
		if !st.done && !st.recovering && st.transfer.Active() {
			sum += math.Max(0, st.transfer.Transferred()-w)
		}
	}
	return sum
}

// Bandwidth returns the average payload rate since the transfer started.
func (t *Transfer) Bandwidth() float64 {
	end := t.eng.Now()
	if t.finished > 0 {
		end = t.finished
	}
	el := float64(end - t.started)
	if el <= 0 {
		return 0
	}
	return t.Transferred() / el
}

// Finished returns the completion time (zero while running).
func (t *Transfer) Finished() sim.Time { return t.finished }

// Failed reports whether in-protocol recovery was exhausted.
func (t *Transfer) Failed() bool { return t.failed }

// RecoveryLatencies returns one sample per successful recovery: virtual
// time from the loss declaration to the stream flowing again.
func (t *Transfer) RecoveryLatencies() []sim.Duration {
	out := make([]sim.Duration, len(t.recoveryLat))
	copy(out, t.recoveryLat)
	return out
}

// Stop cancels an open-ended transfer's streams and any pending recovery.
func (t *Transfer) Stop() {
	t.stopped = true
	t.teardown()
}

// Streams returns the per-stream current rates, for diagnostics.
func (t *Transfer) StreamRates() []float64 {
	out := make([]float64, len(t.streams))
	for i, st := range t.streams {
		out[i] = st.transfer.Flow.Rate()
	}
	return out
}
