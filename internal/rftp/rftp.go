// Package rftp implements the paper's RDMA-based file transfer protocol
// (RFTP [21,22,23]): parallel RDMA streams between a client and a server,
// zero-copy data movement from registered staging buffers, credit-based
// flow control with asynchronous control messages, and a pipelined
// architecture in which dedicated I/O threads keep loading/offloading
// while network threads keep the wire full.
//
// Cost structure per payload byte on each side:
//
//   - user-space protocol processing (ProtoCyclesPerByte — Figure 4
//     measures ≈56% of one core across both sides at 39 Gbps);
//   - per-block work-request posting and credit-token handling
//     (PerBlockCycles/BlockSize — this is why Figure 14's CPU curves fall
//     as the block size grows);
//   - control messages on the wire (CtrlBytesPerBlock/BlockSize — why
//     Figure 13's goodput rises toward 97% of raw bandwidth with block
//     size);
//   - NIC DMA from/to the staging buffers (zero copy: no CPU).
//
// Flow control: each stream may keep CreditsPerStream blocks outstanding,
// bounding its rate by Credits×BlockSize/RTT — on the 95 ms ANI loop this
// is the dominant limit for small blocks and few streams, reproducing the
// left half of Figure 13.
package rftp

import (
	"fmt"
	"math"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/rdma"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// Params calibrates protocol costs.
type Params struct {
	// ProtoCyclesPerByte is user-space protocol processing per side.
	ProtoCyclesPerByte float64
	// PerBlockCycles is the per-block posting/credit CPU cost per side.
	PerBlockCycles float64
	// CtrlBytesPerBlock is control-channel traffic per data block.
	CtrlBytesPerBlock float64
	// HandshakeRTTs is how many round trips session setup takes.
	HandshakeRTTs int
	// ChecksumCyclesPerByte is the per-side cost of end-to-end integrity
	// verification when Config.Checksum is on (CRC32C-class).
	ChecksumCyclesPerByte float64
	// StartOffset resumes a finite transfer from byte N: the session moves
	// only the tail, Size−StartOffset bytes, as when a retry picks up a
	// partially-completed transfer. Open-ended (+Inf) transfers ignore it.
	StartOffset int64
	// RDMA parameterizes the verbs layer.
	RDMA rdma.Params
}

// DefaultParams matches the paper's Figure 4 profile on 2.2 GHz cores.
func DefaultParams() Params {
	return Params{
		ProtoCyclesPerByte:    0.12,
		PerBlockCycles:        3500,
		CtrlBytesPerBlock:     128,
		HandshakeRTTs:         2,
		ChecksumCyclesPerByte: 0.4,
		RDMA:                  rdma.DefaultParams(),
	}
}

// Config describes one transfer's shape.
type Config struct {
	// Streams is the number of parallel RDMA streams; they are assigned
	// to links round-robin.
	Streams int
	// BlockSize is the transfer block size.
	BlockSize int64
	// CreditsPerStream bounds outstanding blocks per stream.
	CreditsPerStream int
	// Policy binds stream threads to their NIC's NUMA node (the paper
	// runs RFTP under numactl in §4.3).
	Policy numa.Policy
	// Checksum enables end-to-end block integrity verification: each side
	// reads every payload byte once more and spends checksum cycles on a
	// dedicated I/O thread (RDMA already guarantees link-level integrity;
	// this guards the storage path).
	Checksum bool
}

// DefaultConfig returns the tuned LAN configuration.
func DefaultConfig() Config {
	return Config{
		Streams:          3,
		BlockSize:        4 * units.MB,
		CreditsPerStream: 64,
		Policy:           numa.PolicyBind,
	}
}

// Validate reports config errors.
func (c Config) Validate() error {
	switch {
	case c.Streams <= 0:
		return fmt.Errorf("rftp: Streams must be positive")
	case c.BlockSize <= 0:
		return fmt.Errorf("rftp: BlockSize must be positive")
	case c.CreditsPerStream <= 0:
		return fmt.Errorf("rftp: CreditsPerStream must be positive")
	}
	return nil
}

// stream is one RDMA data channel.
type stream struct {
	link     *fabric.Link
	transfer *fluid.Transfer
}

// Transfer is a running (or finished) RFTP session.
type Transfer struct {
	Cfg    Config
	P      Params
	Size   float64 // bytes this session moves (size − Params.StartOffset); +Inf for open-ended
	Sender *host.Host

	streams  []*stream
	sim      *fluid.Sim
	eng      *sim.Engine
	started  sim.Time
	finished sim.Time
	done     int
	// OnComplete fires when every stream has drained and the session has
	// closed (finite transfers only).
	OnComplete func(now sim.Time)
}

// Start launches an RFTP transfer of size bytes (math.Inf(1) for an
// open-ended stream) from senderHost across the given links. src runs on
// the sender, dst on the receiver. Session setup costs HandshakeRTTs round
// trips before data flows.
func Start(links []*fabric.Link, senderHost *host.Host, cfg Config, p Params,
	src, dst pipe.Stage, size float64, onComplete func(now sim.Time)) (*Transfer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("rftp: no links")
	}
	if size <= 0 && !math.IsInf(size, 1) {
		return nil, fmt.Errorf("rftp: size must be positive or +Inf")
	}
	if p.StartOffset < 0 {
		return nil, fmt.Errorf("rftp: StartOffset must be non-negative")
	}
	if !math.IsInf(size, 1) && p.StartOffset > 0 {
		if float64(p.StartOffset) >= size {
			return nil, fmt.Errorf("rftp: StartOffset %d beyond size %g", p.StartOffset, size)
		}
		size -= float64(p.StartOffset)
	}
	t := &Transfer{
		Cfg: cfg, P: p, Size: size, Sender: senderHost,
		sim: links[0].Sim(), eng: links[0].Engine(),
		OnComplete: onComplete,
	}
	t.started = t.eng.Now()

	type side struct {
		nic *host.Device
		net *host.Thread
		io  *host.Thread
		buf *numa.Buffer
	}
	mkSide := func(l *fabric.Link, nic *host.Device, role string) side {
		h := nic.Host
		var proc *host.Process
		if cfg.Policy == numa.PolicyBind {
			proc = h.NewProcess(fmt.Sprintf("rftp-%s/%s", role, l.Cfg.Name), numa.PolicyBind, nic.Node)
		} else {
			proc = h.NewProcess(fmt.Sprintf("rftp-%s/%s", role, l.Cfg.Name), cfg.Policy, nil)
		}
		net := proc.NewThread()
		io := proc.NewThread()
		var buf *numa.Buffer
		if node := net.Node(); node != nil {
			buf = h.M.NewBuffer("rftp-stage", node)
		} else {
			buf = h.M.InterleavedBuffer("rftp-stage")
		}
		return side{nic: nic, net: net, io: io, buf: buf}
	}

	perStream := size
	if !math.IsInf(size, 1) {
		perStream = size / float64(cfg.Streams)
	}
	bs := float64(cfg.BlockSize)
	for i := 0; i < cfg.Streams; i++ {
		l := links[i%len(links)]
		var sndNIC *host.Device
		switch senderHost {
		case l.A.Host:
			sndNIC = l.A
		case l.B.Host:
			sndNIC = l.B
		default:
			return nil, fmt.Errorf("rftp: sender %s not on link %s", senderHost.Name, l.Cfg.Name)
		}
		snd := mkSide(l, sndNIC, "c")
		rcv := mkSide(l, l.Peer(sndNIC), "s")

		f := t.sim.NewFlow(fmt.Sprintf("rftp/%s/s%d", l.Cfg.Name, i), t.windowCap(l))
		tag := "rftp"
		// Data loading (pipelined onto a dedicated I/O thread).
		if err := src.Attach(f, snd.io, snd.buf, 1, tag); err != nil {
			return nil, fmt.Errorf("rftp: source: %w", err)
		}
		// Sender protocol processing: per-byte plus per-block costs.
		snd.net.ChargeCPU(f, p.ProtoCyclesPerByte+p.PerBlockCycles/bs, host.CatUser)
		if cfg.Checksum {
			snd.io.ChargeMemory(f, snd.buf, 1, false, host.CatUser)
			snd.io.ChargeCPU(f, p.ChecksumCyclesPerByte, host.CatUser)
		}
		// Zero-copy wire path.
		sndNIC.ChargeDMA(f, snd.buf, 1, false, tag)
		l.ChargeWire(f, sndNIC, 1+p.CtrlBytesPerBlock/bs, tag)
		rcv.nic.ChargeDMA(f, rcv.buf, 1, true, tag)
		// Receiver protocol processing and offload.
		rcv.net.ChargeCPU(f, p.ProtoCyclesPerByte+p.PerBlockCycles/bs, host.CatUser)
		if cfg.Checksum {
			rcv.io.ChargeMemory(f, rcv.buf, 1, false, host.CatUser)
			rcv.io.ChargeCPU(f, p.ChecksumCyclesPerByte, host.CatUser)
		}
		if err := dst.Attach(f, rcv.io, rcv.buf, 1, tag); err != nil {
			return nil, fmt.Errorf("rftp: sink: %w", err)
		}

		st := &stream{link: l}
		st.transfer = &fluid.Transfer{
			Flow:      f,
			Remaining: perStream,
			OnComplete: func(sim.Time) {
				t.done++
				if t.done == cfg.Streams {
					// Close control exchange: one round trip.
					l.Send(p.CtrlBytesPerBlock, func(sim.Time) {
						l.Send(p.CtrlBytesPerBlock, func(now sim.Time) {
							t.finished = now
							if t.OnComplete != nil {
								t.OnComplete(now)
							}
						})
					})
				}
			},
		}
		t.streams = append(t.streams, st)
	}

	// Session handshake, then data on every stream.
	handshake := sim.Duration(p.HandshakeRTTs) * sim.Duration(links[0].RTT())
	t.eng.Schedule(handshake, func() {
		t.eng.Tracef("rftp", "session up: %d streams, bs=%d, credits=%d",
			cfg.Streams, cfg.BlockSize, cfg.CreditsPerStream)
		for _, st := range t.streams {
			t.sim.Start(st.transfer)
		}
	})
	return t, nil
}

// windowCap is the credit-limited per-stream rate.
func (t *Transfer) windowCap(l *fabric.Link) float64 {
	rtt := float64(l.RTT())
	if rtt <= 0 {
		return math.Inf(1)
	}
	return float64(t.Cfg.CreditsPerStream) * float64(t.Cfg.BlockSize) / rtt
}

// Transferred returns total payload bytes moved so far.
func (t *Transfer) Transferred() float64 {
	t.sim.Sync()
	sum := 0.0
	for _, st := range t.streams {
		sum += st.transfer.Transferred()
	}
	return sum
}

// Bandwidth returns the average payload rate since the transfer started.
func (t *Transfer) Bandwidth() float64 {
	end := t.eng.Now()
	if t.finished > 0 {
		end = t.finished
	}
	el := float64(end - t.started)
	if el <= 0 {
		return 0
	}
	return t.Transferred() / el
}

// Finished returns the completion time (zero while running).
func (t *Transfer) Finished() sim.Time { return t.finished }

// Stop cancels an open-ended transfer's streams.
func (t *Transfer) Stop() {
	for _, st := range t.streams {
		t.sim.Cancel(st.transfer)
	}
}

// Streams returns the per-stream current rates, for diagnostics.
func (t *Transfer) StreamRates() []float64 {
	out := make([]float64, len(t.streams))
	for i, st := range t.streams {
		out[i] = st.transfer.Flow.Rate()
	}
	return out
}
