package rftp

import (
	"fmt"
	"math"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/sim"
)

// ObjectSpec names one object inside a coalesced batch window. Unlike
// FileSpec, a zero Size is legal: empty objects are real S3 traffic and
// must complete like any other (they ride the stream as a bare delimiter
// record, paying serialization but no payload).
type ObjectSpec struct {
	Key  string
	Size int64
}

// TotalObjectBytes sums an object list's payload.
func TotalObjectBytes(objs []ObjectSpec) float64 {
	total := 0.0
	for _, o := range objs {
		total += float64(o.Size)
	}
	return total
}

// BatchTransfer is a coalesced object window: many small objects share one
// RFTP session and its stream credit windows, with per-object delimiting
// instead of per-object control round trips. This is the protocol half of
// the objstore coalescing layer and the counterpoint to SetTransfer, which
// models the legacy per-file open/attribute exchange:
//
//   - One session handshake for the whole window (HandshakeRTTs), however
//     many objects it carries.
//   - Objects are framed back to back inside the stream: each pays
//     DelimBytesPerObject of in-band delimiter bytes and one extra block
//     posting, both pipelined with the data — no per-object RTT.
//   - Per-object completion is exactly-once: OnObject(i) fires exactly one
//     time for each object index, in the order the stream delivers them,
//     and never after Stop.
//
// The window is fail-fast (no in-protocol recovery ladder): an outer
// scheduler restarts a stalled window from its undelivered objects, which
// is all-or-nothing per object — partial object progress is discarded,
// exactly as a delimited frame without its trailer would be.
type BatchTransfer struct {
	Cfg     Config
	P       Params
	Objects []ObjectSpec

	sim      *fluid.Sim
	eng      *sim.Engine
	started  sim.Time
	finished sim.Time

	// Completed counts fully delivered objects.
	Completed int
	moved     float64
	done      []bool // exactly-once guard, by object index
	active    map[*fluid.Transfer]struct{}
	pending   int
	stopped   bool
	threads   []*host.Thread // session threads, released at teardown
	released  bool

	// OnObject fires exactly once per delivered object index.
	OnObject func(i int, now sim.Time)
	// OnComplete fires when every object in the window has been delivered.
	OnComplete func(now sim.Time)
}

// batchStream carries one stream's object queue and charge template.
type batchStream struct {
	link  *fabric.Link
	queue []int // object indices, delivered sequentially
	// mkFlow builds a flow carrying the per-object cost structure: the
	// steady per-byte/per-block costs plus the object's own delimiter and
	// framing amortized over its size.
	mkFlow func(name string, size float64) *fluid.Flow
}

// delimBytes returns the per-object delimiter size (length-prefixed record
// header plus trailer checksum), defaulting to 64 bytes.
func (p Params) delimBytes() float64 {
	if p.DelimBytesPerObject > 0 {
		return p.DelimBytesPerObject
	}
	return 64
}

// StartBatch launches a coalesced object window over the links. Objects are
// assigned to streams round-robin and delivered sequentially within a
// stream. onObject (optional) observes per-object completions; onComplete
// (optional) observes the window completing.
func StartBatch(links []*fabric.Link, senderHost *host.Host, cfg Config, p Params,
	src, dst pipe.Stage, objects []ObjectSpec,
	onObject func(i int, now sim.Time), onComplete func(now sim.Time)) (*BatchTransfer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("rftp: no links")
	}
	if len(objects) == 0 {
		return nil, fmt.Errorf("rftp: empty object window")
	}
	for _, o := range objects {
		if o.Size < 0 {
			return nil, fmt.Errorf("rftp: object %q has negative size", o.Key)
		}
	}
	t := &BatchTransfer{
		Cfg: cfg, P: p, Objects: objects,
		sim:        links[0].Sim(),
		eng:        links[0].Engine(),
		done:       make([]bool, len(objects)),
		active:     make(map[*fluid.Transfer]struct{}),
		pending:    len(objects),
		OnObject:   onObject,
		OnComplete: onComplete,
	}
	t.started = t.eng.Now()

	nstreams := cfg.Streams
	if nstreams > len(objects) {
		nstreams = len(objects)
	}
	streams := make([]*batchStream, nstreams)
	bs := float64(cfg.BlockSize)
	for i := range streams {
		l := links[i%len(links)]
		var sndNIC *host.Device
		switch senderHost {
		case l.A.Host:
			sndNIC = l.A
		case l.B.Host:
			sndNIC = l.B
		default:
			return nil, fmt.Errorf("rftp: sender %s not on link %s", senderHost.Name, l.Cfg.Name)
		}
		rcvNIC := l.Peer(sndNIC)
		mkThreads := func(nic *host.Device, role string) (*host.Thread, *host.Thread, *numa.Buffer) {
			h := nic.Host
			var proc *host.Process
			if cfg.Policy == numa.PolicyBind {
				proc = h.NewProcess(fmt.Sprintf("rftp-%s/%s/obj%d", role, l.Cfg.Name, i), numa.PolicyBind, nic.Node)
			} else {
				proc = h.NewProcess(fmt.Sprintf("rftp-%s/%s/obj%d", role, l.Cfg.Name, i), cfg.Policy, nil)
			}
			net, io := proc.NewThread(), proc.NewThread()
			var buf *numa.Buffer
			if node := net.Node(); node != nil {
				buf = h.M.NewBuffer("rftp-stage", node)
			} else {
				buf = h.M.InterleavedBuffer("rftp-stage")
			}
			return net, io, buf
		}
		sndNet, sndIO, sndBuf := mkThreads(sndNIC, "c")
		rcvNet, rcvIO, rcvBuf := mkThreads(rcvNIC, "s")
		t.threads = append(t.threads, sndNet, sndIO, rcvNet, rcvIO)

		demand := math.Inf(1)
		if rtt := float64(l.RTT()); rtt > 0 {
			demand = float64(cfg.CreditsPerStream) * bs / rtt
		}
		st := &batchStream{link: l}
		var mkErr error
		st.mkFlow = func(name string, size float64) *fluid.Flow {
			// Per-object overheads ride inside the stream, amortized over
			// the object body: delimiter bytes on the wire, one extra block
			// posting on each CPU. No per-object round trip — that is the
			// whole point of coalescing.
			extraWire := p.delimBytes() / size
			extraCPU := p.PerBlockCycles / size
			f := t.sim.NewFlow(name, demand)
			if err := src.Attach(f, sndIO, sndBuf, 1, "rftp"); err != nil {
				mkErr = err
			}
			sndNet.ChargeCPU(f, p.ProtoCyclesPerByte+p.PerBlockCycles/bs+extraCPU, host.CatUser)
			sndNIC.ChargeDMA(f, sndBuf, 1, false, "rftp")
			l.ChargeWire(f, sndNIC, 1+p.CtrlBytesPerBlock/bs+extraWire, "rftp")
			rcvNIC.ChargeDMA(f, rcvBuf, 1, true, "rftp")
			rcvNet.ChargeCPU(f, p.ProtoCyclesPerByte+p.PerBlockCycles/bs+extraCPU, host.CatUser)
			if err := dst.Attach(f, rcvIO, rcvBuf, 1, "rftp"); err != nil {
				mkErr = err
			}
			return f
		}
		// Probe the charge template once to surface stage errors.
		probe := st.mkFlow("rftp-obj-probe", 1)
		t.sim.Network.RemoveFlow(probe)
		if mkErr != nil {
			return nil, fmt.Errorf("rftp: stage: %w", mkErr)
		}
		streams[i] = st
	}
	for i := range objects {
		st := streams[i%len(streams)]
		st.queue = append(st.queue, i)
	}

	// One handshake for the whole window.
	handshake := sim.Duration(p.HandshakeRTTs) * sim.Duration(links[0].RTT())
	t.eng.Schedule(handshake, func() {
		if t.stopped {
			return
		}
		for _, st := range streams {
			t.next(st)
		}
	})
	return t, nil
}

// next delivers the stream's next object: its body as a fluid transfer, or
// — for an empty object — just the delimiter's serialization time.
func (t *BatchTransfer) next(st *batchStream) {
	if t.stopped || len(st.queue) == 0 {
		return
	}
	i := st.queue[0]
	st.queue = st.queue[1:]
	obj := t.Objects[i]
	if obj.Size == 0 {
		// A bare delimiter record: pipelined with the stream, so it costs
		// serialization time but no round trip and no fluid flow (the
		// solver panics on zero-size transfers, deliberately).
		delay := sim.Duration(0)
		if rate := st.link.Cfg.Rate; rate > 0 {
			delay = sim.Duration(t.P.delimBytes() / rate)
		}
		t.eng.Schedule(delay, func() {
			t.deliver(i, t.eng.Now())
			t.next(st)
		})
		return
	}
	f := st.mkFlow(fmt.Sprintf("rftp-obj/%s", obj.Key), float64(obj.Size))
	tr := &fluid.Transfer{Flow: f, Remaining: float64(obj.Size)}
	tr.OnComplete = func(now sim.Time) {
		delete(t.active, tr)
		t.deliver(i, now)
		t.next(st)
	}
	t.active[tr] = struct{}{}
	t.sim.Start(tr)
}

// deliver marks object i complete, exactly once.
func (t *BatchTransfer) deliver(i int, now sim.Time) {
	if t.stopped || t.done[i] {
		return
	}
	t.done[i] = true
	t.moved += float64(t.Objects[i].Size)
	t.Completed++
	t.pending--
	if t.OnObject != nil {
		t.OnObject(i, now)
	}
	if t.pending == 0 {
		t.finished = now
		t.release()
		if t.OnComplete != nil {
			t.OnComplete(now)
		}
	}
}

// release retires the window's per-thread limiter resources once no object
// flow can ever charge them again. Small-object workloads open windows at
// high rate; without this every window would leave its limiters in the
// fluid network forever and structural solves would grow quadratic.
func (t *BatchTransfer) release() {
	if t.released {
		return
	}
	t.released = true
	for _, th := range t.threads {
		th.Release()
	}
}

// Stop cancels the window: in-flight object bodies are abandoned (their
// partial bytes are discarded — per-object delivery is all-or-nothing) and
// no further OnObject or OnComplete callbacks fire.
func (t *BatchTransfer) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	for tr := range t.active {
		t.sim.Cancel(tr)
	}
	t.active = nil
	t.release()
}

// Transferred returns payload bytes moved so far: completed objects plus
// in-flight object progress.
func (t *BatchTransfer) Transferred() float64 {
	if t.stopped {
		return t.moved
	}
	t.sim.Sync()
	sum := t.moved
	for tr := range t.active {
		sum += tr.Transferred()
	}
	return sum
}

// Delivered returns the number of objects delivered so far.
func (t *BatchTransfer) Delivered() int { return t.Completed }

// DeliveredIndex reports whether object i has been delivered.
func (t *BatchTransfer) DeliveredIndex(i int) bool { return t.done[i] }

// Bandwidth returns the average payload rate since start.
func (t *BatchTransfer) Bandwidth() float64 {
	end := t.eng.Now()
	if t.finished > 0 {
		end = t.finished
	}
	el := float64(end - t.started)
	if el <= 0 {
		return 0
	}
	return t.Transferred() / el
}

// Finished returns the completion time (zero while running).
func (t *BatchTransfer) Finished() sim.Time { return t.finished }
