package rftp_test

import (
	"fmt"
	"math"

	"e2edt/internal/pipe"
	"e2edt/internal/rftp"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

// Example transfers memory-to-memory across the simulated DOE ANI loop
// (40 Gbps, 95 ms RTT) and reports the utilization the credit pipeline
// achieves — the paper's §4.4 result.
func Example() {
	w := testbed.NewWAN()
	cfg := rftp.DefaultConfig()
	cfg.Streams = 8
	cfg.BlockSize = 16 * units.MB
	tr, err := rftp.Start(w.LinkSlice(), w.A, cfg, rftp.DefaultParams(),
		pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		panic(err)
	}
	w.Eng.RunFor(30)
	fmt.Printf("utilization: %.0f%% of 40 Gbps\n", units.ToGbps(tr.Transferred()/30)/40*100)
	// Output:
	// utilization: 98% of 40 Gbps
}
