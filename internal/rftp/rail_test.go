package rftp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"e2edt/internal/pipe"
	"e2edt/internal/railmgr"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

// railParams enables recovery plus rail management with tight test timings.
func railParams() Params {
	p := recoveryParams()
	p.Rails = railmgr.Policy{
		Enabled:        true,
		ProbeEvery:     20 * sim.Millisecond,
		ProbeTimeout:   5 * sim.Millisecond,
		ProbeBytes:     64,
		FailbackProbes: 2,
		MissedProbes:   2,
	}
	return p
}

func TestRailsRequireRecovery(t *testing.T) {
	p := testbed.NewMotivatingPair()
	prm := DefaultParams()
	prm.Rails = railmgr.DefaultPolicy() // but AckTimeout == 0
	if _, err := Start(p.Links, p.A, DefaultConfig(), prm, pipe.Zero{}, pipe.Null{}, math.Inf(1), nil); err == nil {
		t.Fatal("Rails without AckTimeout should fail Start")
	}
}

// TestFailoverSurvivesPermanentRailDeath is the tentpole scenario: one of
// three rails dies mid-transfer and never comes back; its streams migrate
// and the transfer completes with every byte delivered exactly once.
func TestFailoverSurvivesPermanentRailDeath(t *testing.T) {
	p := testbed.NewMotivatingPair()
	size := 12 * float64(units.GB)
	var doneAt sim.Time
	failures := 0
	tr, err := Start(p.Links, p.A, DefaultConfig(), railParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	tr.OnFailure = func(sim.Time) { failures++ }
	p.Eng.At(0.2, func() { p.Links[1].Fail() }) // permanent: never restored
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed despite two surviving rails")
	}
	if failures != 0 {
		t.Fatalf("OnFailure fired %d times; failover should have saved the transfer", failures)
	}
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("delivered %g, want exactly %g (zero lost bytes)", got, size)
	}
	if tr.Migrations < 1 {
		t.Fatalf("migrations = %d, want ≥1", tr.Migrations)
	}
	lats := tr.MigrationLatencies()
	if len(lats) != tr.Migrations {
		t.Fatalf("latency samples = %d, migrations = %d", len(lats), tr.Migrations)
	}
	// Migration pays loss detection at worst plus a control round trip —
	// nothing in it waits out a backoff ladder.
	bound := railParams().AckTimeout + 50*sim.Millisecond
	for _, l := range lats {
		if l <= 0 || l > bound {
			t.Fatalf("migration latency %v outside (0, %v]", l, bound)
		}
	}
	// The survivor rails carry the orphaned stream: no stream may still be
	// bound to the dead rail.
	for _, s := range tr.streams {
		if s.rail == 1 {
			t.Fatalf("stream %d still bound to the dead rail", s.idx)
		}
	}
}

// TestFailbackReturnsStreamsHome: after a kill + restore, the re-probed
// rail is re-admitted and streams spread back without double delivery.
func TestFailbackReturnsStreamsHome(t *testing.T) {
	p := testbed.NewMotivatingPair()
	size := 18 * float64(units.GB)
	var doneAt sim.Time
	tr, err := Start(p.Links, p.A, DefaultConfig(), railParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.At(0.2, func() { p.Links[0].Fail() })
	p.Eng.At(0.5, func() { p.Links[0].Restore() })
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed")
	}
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("delivered %g, want exactly %g", got, size)
	}
	if tr.Migrations < 1 {
		t.Fatalf("migrations = %d, want ≥1", tr.Migrations)
	}
	if tr.Failbacks < 1 {
		t.Fatalf("failbacks = %d, want ≥1 after restore", tr.Failbacks)
	}
	if tr.Rails().Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1", tr.Rails().Readmissions)
	}
}

// TestRebalanceShiftsCreditsUnderDegrade: degrading one rail moves credit
// window toward healthy rails, conserving the pool, without migrating.
func TestRebalanceShiftsCreditsUnderDegrade(t *testing.T) {
	p := testbed.NewMotivatingPair()
	tr, err := Start(p.Links, p.A, DefaultConfig(), railParams(),
		pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunUntil(0.05)
	base := make([]float64, 3)
	for i, s := range tr.streams {
		base[i] = s.transfer.Flow.Demand
	}
	p.Links[1].Degrade(0.5)
	p.Eng.RunUntil(0.1)
	d := make([]float64, 3)
	sumBefore, sumAfter := 0.0, 0.0
	for i, s := range tr.streams {
		d[i] = s.transfer.Flow.Demand
		sumBefore += base[i]
		sumAfter += d[i]
	}
	if !(d[1] < base[1]) {
		t.Fatalf("degraded rail demand did not shrink: %g -> %g", base[1], d[1])
	}
	if !(d[0] > base[0]) || !(d[2] > base[2]) {
		t.Fatalf("healthy rails did not gain credit: %v -> %v", base, d)
	}
	if math.Abs(sumAfter-sumBefore)/sumBefore > 1e-9 {
		t.Fatalf("credit pool not conserved: %g -> %g", sumBefore, sumAfter)
	}
	if tr.Migrations != 0 || tr.Retransmitted != 0 {
		t.Fatal("degradation must rebalance, never migrate or retransmit")
	}
	// Clearing the degradation restores the original split.
	p.Links[1].Degrade(1)
	p.Eng.RunUntil(0.15)
	for i, s := range tr.streams {
		if math.Abs(s.transfer.Flow.Demand-base[i]) > base[i]*1e-9 {
			t.Fatalf("demand %d not restored: %g, want %g", i, s.transfer.Flow.Demand, base[i])
		}
	}
	tr.Stop()
}

// TestRandomizedFailoverDeterminism sweeps 20 seeds of (kill time, rail,
// restore-or-not) and checks, for each: exactly-once delivery, monotonic
// Transferred, and a bit-identical event trace on replay.
func TestRandomizedFailoverDeterminism(t *testing.T) {
	size := 6 * float64(units.GB)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		killAt := sim.Time(0.05 + rng.Float64()*0.3)
		rail := rng.Intn(3)
		restore := rng.Float64() < 0.5
		restoreAt := killAt + sim.Time(0.05+rng.Float64()*0.2)

		run := func(sample bool) (*trace.Recorder, float64, sim.Time) {
			p := testbed.NewMotivatingPair()
			rec := &trace.Recorder{}
			p.Eng.SetTracer(rec)
			var doneAt sim.Time
			tr, err := Start(p.Links, p.A, DefaultConfig(), railParams(),
				pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
			if err != nil {
				t.Fatal(err)
			}
			p.Eng.At(killAt, p.Links[rail].Fail)
			if restore {
				p.Eng.At(restoreAt, p.Links[rail].Restore)
			}
			if sample {
				last := -1.0
				tk := p.Eng.NewTicker(10*sim.Millisecond, func(sim.Time) {
					got := tr.Transferred()
					if got < last {
						t.Fatalf("seed %d: Transferred went backwards: %g after %g", seed, got, last)
					}
					if got > size*(1+1e-9) {
						t.Fatalf("seed %d: Transferred %g exceeds size %g (duplicate delivery)", seed, got, size)
					}
					last = got
				})
				p.Eng.At(5, tk.Stop)
			}
			p.Eng.Run()
			return rec, tr.Transferred(), doneAt
		}

		// The sampling ticker perturbs the trace (it Syncs the fluid sim),
		// so monotonicity is checked on a separate sampled run and the
		// trace comparison uses two unsampled ones.
		run(true)
		rec1, got1, done1 := run(false)
		rec2, got2, done2 := run(false)
		if done1 <= 0 {
			t.Fatalf("seed %d: transfer never completed (kill %v rail %d restore %v)",
				seed, killAt, rail, restore)
		}
		if math.Abs(got1-size)/size > 1e-6 {
			t.Fatalf("seed %d: delivered %g, want exactly %g", seed, got1, size)
		}
		if got1 != got2 || done1 != done2 {
			t.Fatalf("seed %d: replay diverged: (%g,%v) vs (%g,%v)", seed, got1, done1, got2, done2)
		}
		if len(rec1.Events) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		if !reflect.DeepEqual(rec1.Events, rec2.Events) {
			for i := range rec1.Events {
				if i >= len(rec2.Events) || rec1.Events[i] != rec2.Events[i] {
					t.Fatalf("seed %d: traces diverge at event %d: %+v vs %+v",
						seed, i, rec1.Events[i], rec2.Events[i])
				}
			}
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(rec1.Events), len(rec2.Events))
		}
	}
}

// TestChecksumCatchesCorruption: with Config.Checksum on, an injected
// silent bit flip is detected and the corrupt block re-transferred; the
// transfer still delivers every byte.
func TestChecksumCatchesCorruption(t *testing.T) {
	p := testbed.NewMotivatingPair()
	cfg := DefaultConfig()
	cfg.Checksum = true
	size := 6 * float64(units.GB)
	var doneAt sim.Time
	tr, err := Start(p.Links, p.A, cfg, recoveryParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.At(0.1, p.Links[0].InjectCorruption)
	p.Eng.At(0.2, p.Links[2].InjectCorruption)
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed")
	}
	if tr.CorruptionsDetected != 2 {
		t.Fatalf("detected = %d, want 2", tr.CorruptionsDetected)
	}
	if tr.IntegrityViolations != 0 {
		t.Fatalf("violations = %d, want 0 with checksum on", tr.IntegrityViolations)
	}
	if tr.Retransmitted <= 0 {
		t.Fatal("a caught corruption must retransmit the block")
	}
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("delivered %g, want exactly %g", got, size)
	}
}

// TestCorruptionUndetectedWithoutChecksum: the same flip with Checksum
// off is delivered silently — the transfer completes, the bytes are wrong,
// and only the violation counter knows.
func TestCorruptionUndetectedWithoutChecksum(t *testing.T) {
	p := testbed.NewMotivatingPair()
	size := 6 * float64(units.GB)
	var doneAt sim.Time
	tr, err := Start(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.At(0.1, p.Links[0].InjectCorruption)
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed")
	}
	if tr.IntegrityViolations != 1 {
		t.Fatalf("violations = %d, want 1 with checksum off", tr.IntegrityViolations)
	}
	if tr.CorruptionsDetected != 0 {
		t.Fatalf("detected = %d, want 0 with checksum off", tr.CorruptionsDetected)
	}
	if tr.Retransmitted != 0 {
		t.Fatal("an undetected corruption must not retransmit anything")
	}
	// The corrupt block still counts as delivered — that is the violation.
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("delivered %g, want %g (corrupt bytes included)", got, size)
	}
}

// TestChecksumCorruptionWorksWithoutRecovery: the integrity plane does not
// depend on the recovery ladder — legacy zero-AckTimeout sessions detect
// and re-transfer too, via the NACK retry path.
func TestChecksumCorruptionWorksWithoutRecovery(t *testing.T) {
	p := testbed.NewMotivatingPair()
	cfg := DefaultConfig()
	cfg.Checksum = true
	size := 6 * float64(units.GB)
	var doneAt sim.Time
	tr, err := Start(p.Links, p.A, cfg, DefaultParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.At(0.15, p.Links[1].InjectCorruption)
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed")
	}
	if tr.CorruptionsDetected != 1 {
		t.Fatalf("detected = %d, want 1", tr.CorruptionsDetected)
	}
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("delivered %g, want exactly %g", got, size)
	}
}

// TestRecoveryGraceTracksKind: the watchdog grace a transfer reports must
// grow with the severity of the active recovery.
func TestRecoveryGraceTracksKind(t *testing.T) {
	p := testbed.NewMotivatingPair()
	tr, err := Start(p.Links, p.A, DefaultConfig(), railParams(),
		pipe.Zero{}, pipe.Null{}, 24*float64(units.GB), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ActiveRecovery() != KindNone || tr.RecoveryGrace() != 0 {
		t.Fatalf("idle transfer reports kind %v grace %v", tr.ActiveRecovery(), tr.RecoveryGrace())
	}
	var during sim.Duration
	var kind RecoveryKind
	p.Eng.At(0.1, func() { p.Links[0].Fail() })
	// Sample just after the QP error path declares the loss and migrates:
	// failover is synchronous on link failure, so catch it mid-resume by
	// killing all rails (no usable target parks the streams).
	p.Eng.At(0.1001, func() {
		p.Links[1].Fail()
		p.Links[2].Fail()
	})
	p.Eng.At(0.15, func() {
		kind = tr.ActiveRecovery()
		during = tr.RecoveryGrace()
		p.Links[0].Restore()
		p.Links[1].Restore()
		p.Links[2].Restore()
	})
	p.Eng.RunUntil(1.5)
	if kind != KindFailover {
		t.Fatalf("active kind during all-rail outage = %v, want failover", kind)
	}
	retx := railParams().AckTimeout + railParams().RetryBackoffMax
	if during <= retx {
		t.Fatalf("failover grace %v not above retransmit grace %v", during, retx)
	}
	tr.Stop()
}
