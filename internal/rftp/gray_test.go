package rftp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"e2edt/internal/pipe"
	"e2edt/internal/railmgr"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

// grayParams layers gray detection and/or hedging over railParams. The
// scorer runs on the 20ms probe tick; loss detection stays at 50ms.
func grayParams(detect, hedge bool) Params {
	p := railParams()
	if detect {
		p.Rails.Gray = railmgr.DefaultGrayPolicy()
	}
	if hedge {
		p.Hedge = DefaultHedgePolicy()
	}
	return p
}

// creditCfg is a credit-limited configuration: per-stream rate is bounded
// by the window (2×128KB/RTT ≈ 1.6 GB/s), well under a rail's share, so
// healthy rails have headroom to absorb hedges and migrated streams —
// the regime where tail tolerance can actually win.
func creditCfg() Config {
	return Config{Streams: 6, BlockSize: 128 * units.KB, CreditsPerStream: 2}
}

func TestHedgeRequiresRails(t *testing.T) {
	p := testbed.NewMotivatingPair()
	prm := recoveryParams()
	prm.Hedge = DefaultHedgePolicy() // but Rails disabled
	if _, err := Start(p.Links, p.A, DefaultConfig(), prm, pipe.Zero{}, pipe.Null{}, math.Inf(1), nil); err == nil {
		t.Fatal("Hedge without Rails should fail Start")
	}
}

// TestGraySagDetectedAndHedged is the package's tentpole scenario: one
// rail silently sags to 30% capacity — no link event, probes keep
// answering — and the detection+hedging plane suspects it, hedges the
// lagging windows onto trusted rails, migrates the victims, and still
// delivers every byte exactly once.
func TestGraySagDetectedAndHedged(t *testing.T) {
	p := testbed.NewMotivatingPair()
	size := 4 * float64(units.GB)
	var doneAt sim.Time
	tr, err := Start(p.Links, p.A, creditCfg(), grayParams(true, true),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	sagAt := sim.Time(0.15)
	p.Eng.At(sagAt, func() { p.Links[1].GrayDegrade(0.3) })
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed under a silent sag")
	}
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("delivered %g, want exactly %g", got, size)
	}
	mgr := tr.Rails()
	if mgr.SuspectEntries == 0 {
		t.Fatal("silent sag never suspected")
	}
	if mgr.Deaths != 0 {
		t.Fatalf("gray rail killed by the binary detector: Deaths = %d", mgr.Deaths)
	}
	at, ok := mgr.FirstSuspectAt()
	if !ok || at <= sagAt {
		t.Fatalf("FirstSuspectAt = (%v, %v), want after sag at %v", at, ok, sagAt)
	}
	if lat := at - sagAt; lat > sim.Time(500*sim.Millisecond) {
		t.Fatalf("detection latency %v exceeds 500ms", lat)
	}
	if tr.Hedges == 0 {
		t.Fatal("no hedges launched against a sagging rail")
	}
	if tr.HedgeWins+tr.HedgeLosses != tr.Hedges {
		t.Fatalf("hedge accounting leak: %d wins + %d losses != %d launched",
			tr.HedgeWins, tr.HedgeLosses, tr.Hedges)
	}
	if tr.HedgeWins == 0 {
		t.Fatal("no hedge outran a 70% sag")
	}
	if ha, ok := tr.FirstHedgeAt(); !ok || ha <= sagAt {
		t.Fatalf("FirstHedgeAt = (%v, %v), want after sag", ha, ok)
	}
	for _, l := range tr.HedgeLatencies() {
		if l <= 0 || l > sim.Duration(100*sim.Millisecond) {
			t.Fatalf("hedge win latency %v outside (0, 100ms]", l)
		}
	}
	if tr.ActiveHedges() != 0 {
		t.Fatalf("hedges still racing after completion: %d", tr.ActiveHedges())
	}
}

// TestGrayWeightDecaysCredits: once a rail is suspected, the fair-share
// credit pool shifts away from it even though Fraction() still reads 1.
func TestGrayWeightDecaysCredits(t *testing.T) {
	p := testbed.NewMotivatingPair()
	tr, err := Start(p.Links, p.A, creditCfg(), grayParams(true, false),
		pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunUntil(0.1)
	var base float64
	for _, s := range tr.streams {
		if s.rail == 1 {
			base = s.transfer.Flow.Demand
			break
		}
	}
	// Deep sag: in the credit-limited regime the rail only pinches stream
	// rate once its capacity falls below the summed window demand.
	p.Links[1].GrayDegrade(0.3)
	p.Eng.RunUntil(1.0)
	if !tr.Rails().Suspect(1) {
		t.Fatal("sagging rail not suspected")
	}
	for _, s := range tr.streams {
		if s.rail == 1 && !(s.transfer.Flow.Demand < base) {
			t.Fatalf("suspect rail demand did not shrink: %g -> %g", base, s.transfer.Flow.Demand)
		}
	}
	if tr.SuspectRailsInUse() == 0 {
		t.Fatal("SuspectRailsInUse = 0 with streams on a suspect rail")
	}
	tr.Stop()
}

// TestGrayHedgeDeterminism sweeps 20 seeds of (gray mode, rail, onset,
// severity) with detection and hedging on, and checks for each: the
// transfer completes, delivers exactly once with hedges racing, stays
// monotonic, and replays bit-identically.
func TestGrayHedgeDeterminism(t *testing.T) {
	size := 3 * float64(units.GB)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rail := rng.Intn(3)
		sagAt := sim.Time(0.05 + rng.Float64()*0.2)
		severity := 0.4 + rng.Float64()*0.45 // capacity sag in [0.4, 0.85]
		jitter := rng.Float64() < 0.3        // else a slow-rail sag
		window := sim.Time(0.2 + rng.Float64()*0.3)

		run := func(sample bool) (*trace.Recorder, float64, sim.Time) {
			p := testbed.NewMotivatingPair()
			rec := &trace.Recorder{}
			p.Eng.SetTracer(rec)
			var doneAt sim.Time
			tr, err := Start(p.Links, p.A, creditCfg(), grayParams(true, true),
				pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
			if err != nil {
				t.Fatal(err)
			}
			l := p.Links[rail]
			if jitter {
				p.Eng.At(sagAt, func() { l.InflateLatency(1 / (1 - severity)) })
				p.Eng.At(sagAt+window, func() { l.InflateLatency(1) })
			} else {
				p.Eng.At(sagAt, func() { l.GrayDegrade(1 - severity) })
				p.Eng.At(sagAt+window, func() { l.GrayDegrade(1) })
			}
			if sample {
				last := -1.0
				tk := p.Eng.NewTicker(10*sim.Millisecond, func(sim.Time) {
					got := tr.Transferred()
					if got < last {
						t.Fatalf("seed %d: Transferred went backwards: %g after %g", seed, got, last)
					}
					if got > size*(1+1e-9) {
						t.Fatalf("seed %d: Transferred %g exceeds size %g (duplicate delivery)", seed, got, size)
					}
					last = got
				})
				p.Eng.At(10, tk.Stop)
			}
			p.Eng.Run()
			return rec, tr.Transferred(), doneAt
		}

		run(true)
		rec1, got1, done1 := run(false)
		rec2, got2, done2 := run(false)
		if done1 <= 0 {
			t.Fatalf("seed %d: transfer never completed (rail %d sev %.2f jitter %v)",
				seed, rail, severity, jitter)
		}
		if math.Abs(got1-size)/size > 1e-6 {
			t.Fatalf("seed %d: delivered %g, want exactly %g", seed, got1, size)
		}
		if got1 != got2 || done1 != done2 {
			t.Fatalf("seed %d: replay diverged: (%g,%v) vs (%g,%v)", seed, got1, done1, got2, done2)
		}
		if len(rec1.Events) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		if !reflect.DeepEqual(rec1.Events, rec2.Events) {
			for i := range rec1.Events {
				if i >= len(rec2.Events) || rec1.Events[i] != rec2.Events[i] {
					t.Fatalf("seed %d: traces diverge at event %d: %+v vs %+v",
						seed, i, rec1.Events[i], rec2.Events[i])
				}
			}
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(rec1.Events), len(rec2.Events))
		}
	}
}

// TestGrayOffBitIdentical: with every gray knob off, a run traced under
// the new build must be indistinguishable from the legacy rails path —
// same events even while a (silent, undetected) sag is in effect.
func TestGrayOffBitIdentical(t *testing.T) {
	size := 2 * float64(units.GB)
	run := func() (*trace.Recorder, float64) {
		p := testbed.NewMotivatingPair()
		rec := &trace.Recorder{}
		p.Eng.SetTracer(rec)
		tr, err := Start(p.Links, p.A, creditCfg(), grayParams(false, false),
			pipe.Zero{}, pipe.Null{}, size, nil)
		if err != nil {
			t.Fatal(err)
		}
		p.Eng.At(0.1, func() { p.Links[1].GrayDegrade(0.3) })
		p.Eng.Run()
		return rec, tr.Transferred()
	}
	rec1, got1 := run()
	rec2, got2 := run()
	if got1 != got2 || !reflect.DeepEqual(rec1.Events, rec2.Events) {
		t.Fatal("gray-off replay diverged")
	}
	for _, ev := range rec1.Events {
		if ev.Subsys == "railmgr" {
			t.Fatalf("gray-off run produced a railmgr verdict: %+v", ev)
		}
	}
}
