package rftp

import (
	"math"
	"testing"

	"e2edt/internal/fabric"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Streams: 0, BlockSize: units.MB, CreditsPerStream: 4},
		{Streams: 1, BlockSize: 0, CreditsPerStream: 4},
		{Streams: 1, BlockSize: units.MB, CreditsPerStream: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestStartValidation(t *testing.T) {
	p := testbed.NewMotivatingPair()
	if _, err := Start(nil, p.A, DefaultConfig(), DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil); err == nil {
		t.Error("no links should fail")
	}
	if _, err := Start(p.Links, p.A, Config{}, DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := Start(p.Links, p.A, DefaultConfig(), DefaultParams(), pipe.Zero{}, pipe.Null{}, -1, nil); err == nil {
		t.Error("negative size should fail")
	}
	// A host not on the links.
	w := testbed.NewWAN()
	if _, err := Start(p.Links, w.A, DefaultConfig(), DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil); err == nil {
		t.Error("foreign sender should fail")
	}
}

func TestMemoryToMemoryLANSaturatesLinks(t *testing.T) {
	p := testbed.NewMotivatingPair()
	tr, err := Start(p.Links, p.A, DefaultConfig(), DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunFor(10)
	g := units.ToGbps(tr.Transferred() / 10)
	// 3×40G links, zero-copy: expect ≥ 95% of 120 Gbps payload capacity.
	if g < 110 || g > 120 {
		t.Fatalf("RFTP mem-to-mem = %.1f Gbps, want ≈117", g)
	}
	rates := tr.StreamRates()
	if len(rates) != 3 {
		t.Fatalf("stream count = %d", len(rates))
	}
	tr.Stop()
}

func TestFiniteTransferCompletes(t *testing.T) {
	p := testbed.NewMotivatingPair()
	var doneAt sim.Time
	size := 12 * float64(units.GB)
	tr, err := Start(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed")
	}
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("transferred %v of %v", got, size)
	}
	if tr.Finished() != doneAt {
		t.Fatal("Finished() mismatch")
	}
	// 12 GB over ≈14.6 GB/s takes ≈0.82s plus handshake.
	if doneAt < 0.5 || doneAt > 2 {
		t.Fatalf("completed at %v, implausible", doneAt)
	}
	if tr.Bandwidth() <= 0 {
		t.Fatal("bandwidth unset")
	}
}

func TestHandshakeDelaysData(t *testing.T) {
	w := testbed.NewWAN()
	p := DefaultParams()
	p.HandshakeRTTs = 2
	tr, err := Start(w.LinkSlice(), w.A, DefaultConfig(), p, pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Before 2×95 ms nothing moves.
	w.Eng.RunUntil(0.18)
	if tr.Transferred() != 0 {
		t.Fatal("data moved before handshake finished")
	}
	w.Eng.RunUntil(1)
	if tr.Transferred() == 0 {
		t.Fatal("no data after handshake")
	}
	tr.Stop()
}

func TestCreditWindowLimitsWAN(t *testing.T) {
	w := testbed.NewWAN()
	cfg := DefaultConfig()
	cfg.Streams = 1
	cfg.BlockSize = 64 * units.KB
	cfg.CreditsPerStream = 64
	tr, err := Start(w.LinkSlice(), w.A, cfg, DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Eng.RunUntil(20)
	got := tr.Transferred() / (20 - 2*0.095)
	want := 64 * float64(64*units.KB) / 0.095
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("credit-limited rate = %v, want %v", got, want)
	}
	tr.Stop()
}

func TestBlockSizeMonotoneOnWAN(t *testing.T) {
	prev := 0.0
	for _, bs := range []int64{64 * units.KB, units.MB, 4 * units.MB} {
		w := testbed.NewWAN()
		cfg := DefaultConfig()
		cfg.Streams = 2
		cfg.BlockSize = bs
		tr, err := Start(w.LinkSlice(), w.A, cfg, DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		w.Eng.RunFor(20)
		got := tr.Transferred() / 20
		if got <= prev {
			t.Fatalf("bandwidth not increasing with block size at %s: %v ≤ %v",
				units.FormatBytes(bs), got, prev)
		}
		prev = got
		tr.Stop()
	}
}

func TestWANSaturationAt97Percent(t *testing.T) {
	w := testbed.NewWAN()
	cfg := DefaultConfig()
	cfg.Streams = 8
	cfg.BlockSize = 16 * units.MB
	tr, err := Start(w.LinkSlice(), w.A, cfg, DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Eng.RunFor(30)
	util := units.ToGbps(tr.Transferred()/30) / 40
	// Paper: RFTP reaches 97% of the raw 40 Gbps.
	if util < 0.95 || util > 1.0 {
		t.Fatalf("WAN utilization = %.3f, want ≈0.97", util)
	}
	tr.Stop()
}

func TestPerBlockCPUFallsWithBlockSize(t *testing.T) {
	cpu := func(bs int64) float64 {
		w := testbed.NewWAN()
		cfg := DefaultConfig()
		cfg.Streams = 4
		cfg.BlockSize = bs
		tr, err := Start(w.LinkSlice(), w.A, cfg, DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		w.Eng.RunFor(20)
		bytes := tr.Transferred()
		tr.Stop()
		rep := w.A.HostCPUReport()
		// Normalize CPU by bytes moved: core-seconds per GB.
		return rep.ByCategory["user"] / (bytes / 1e9)
	}
	small := cpu(256 * units.KB)
	large := cpu(16 * units.MB)
	if small <= large {
		t.Fatalf("per-byte protocol CPU should fall with block size: %v ≤ %v", small, large)
	}
}

func TestUnpinnedPolicyAllowed(t *testing.T) {
	p := testbed.NewMotivatingPair()
	cfg := DefaultConfig()
	cfg.Policy = numa.PolicyDefault
	tr, err := Start(p.Links, p.A, cfg, DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunFor(5)
	if tr.Transferred() <= 0 {
		t.Fatal("unpinned transfer moved nothing")
	}
	tr.Stop()
}

func TestStopHaltsStreams(t *testing.T) {
	p := testbed.NewMotivatingPair()
	tr, err := Start(p.Links, p.A, DefaultConfig(), DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunFor(2)
	tr.Stop()
	moved := tr.Transferred()
	p.Eng.RunFor(2)
	if tr.Transferred() != moved {
		t.Fatal("data still moving after Stop")
	}
}

func TestZeroCopySenderCPUIsLow(t *testing.T) {
	// Figure 4: RFTP at ≈39 Gbps uses ≈122% CPU total (both ends),
	// dominated by the /dev/zero load, not the protocol.
	w := testbed.NewWAN()
	cfg := DefaultConfig()
	cfg.Streams = 8
	cfg.BlockSize = 4 * units.MB
	tr, err := Start(w.LinkSlice(), w.A, cfg, DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Eng.RunFor(20)
	g := units.ToGbps(tr.Transferred() / 20)
	if g < 37 {
		t.Fatalf("rate = %.1f Gbps, want ≈39", g)
	}
	tr.Stop()
	total := (w.A.HostCPUReport().Total + w.B.HostCPUReport().Total) / 20 * 100
	// Paper: ≈122%; accept 80–170%.
	if total < 80 || total > 170 {
		t.Fatalf("RFTP total CPU = %.0f%%, want ≈122%%", total)
	}
}

func TestChecksumCostsCPU(t *testing.T) {
	run := func(checksum bool) (float64, float64) {
		p := testbed.NewMotivatingPair()
		cfg := DefaultConfig()
		cfg.Checksum = checksum
		tr, err := Start(p.Links, p.A, cfg, DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		p.Eng.RunFor(10)
		bw := tr.Transferred() / 10
		tr.Stop()
		return bw, p.A.HostCPUReport().TotalPercent(10)
	}
	bwOff, cpuOff := run(false)
	bwOn, cpuOn := run(true)
	if cpuOn <= cpuOff*1.1 {
		t.Fatalf("checksum CPU %v should clearly exceed %v", cpuOn, cpuOff)
	}
	if bwOn > bwOff {
		t.Fatalf("checksum (%v) should not beat plain (%v)", bwOn, bwOff)
	}
}

func TestTwoSessionsShareWANFairly(t *testing.T) {
	// Two independent RFTP sessions on the same 40G loop: max-min sharing
	// gives each ≈half once both saturate.
	w := testbed.NewWAN()
	cfg := DefaultConfig()
	cfg.Streams = 4
	cfg.BlockSize = 16 * units.MB
	t1, err := Start(w.LinkSlice(), w.A, cfg, DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Start(w.LinkSlice(), w.A, cfg, DefaultParams(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Eng.RunFor(20)
	b1, b2 := t1.Transferred()/20, t2.Transferred()/20
	if math.Abs(b1-b2)/b1 > 0.01 {
		t.Fatalf("unfair sharing: %v vs %v", b1, b2)
	}
	total := units.ToGbps(b1 + b2)
	if total < 38 {
		t.Fatalf("combined = %.1f Gbps, want ≈39", total)
	}
}

func TestStartOffsetValidation(t *testing.T) {
	p := testbed.NewMotivatingPair()
	bad := DefaultParams()
	bad.StartOffset = -1
	if _, err := Start(p.Links, p.A, DefaultConfig(), bad, pipe.Zero{}, pipe.Null{}, float64(units.GB), nil); err == nil {
		t.Error("negative StartOffset should fail")
	}
	bad.StartOffset = units.GB
	if _, err := Start(p.Links, p.A, DefaultConfig(), bad, pipe.Zero{}, pipe.Null{}, float64(units.GB), nil); err == nil {
		t.Error("StartOffset at EOF should fail")
	}
}

func TestStartOffsetResumesTransfer(t *testing.T) {
	// A transfer stopped halfway and resumed with StartOffset must move the
	// same total bytes as an uninterrupted one.
	size := 12 * float64(units.GB)

	// Uninterrupted reference.
	ref := testbed.NewMotivatingPair()
	refTr, err := Start(ref.Links, ref.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, size, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref.Eng.Run()
	total := refTr.Transferred()
	if math.Abs(total-size)/size > 1e-6 {
		t.Fatalf("reference moved %v of %v", total, size)
	}

	// Interrupted: run to roughly half, stop, resume from the byte offset.
	p := testbed.NewMotivatingPair()
	tr, err := Start(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, size, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunFor(0.4)
	firstHalf := tr.Transferred()
	if firstHalf <= 0 || firstHalf >= size {
		t.Fatalf("first attempt moved %v, want partial progress", firstHalf)
	}
	tr.Stop()

	resumeP := DefaultParams()
	resumeP.StartOffset = int64(firstHalf)
	var doneAt sim.Time
	resumed, err := Start(p.Links, p.A, DefaultConfig(), resumeP,
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("resumed transfer never completed")
	}
	secondHalf := resumed.Transferred()
	want := size - float64(int64(firstHalf))
	if math.Abs(secondHalf-want)/size > 1e-6 {
		t.Fatalf("resumed session moved %v, want %v", secondHalf, want)
	}
	moved := float64(int64(firstHalf)) + secondHalf
	if math.Abs(moved-total)/size > 1e-6 {
		t.Fatalf("interrupted run moved %v total, uninterrupted moved %v", moved, total)
	}
}

// recoveryParams enables in-protocol recovery with tight test timings.
func recoveryParams() Params {
	p := DefaultParams()
	p.AckTimeout = 50 * sim.Millisecond
	p.RetryBackoff = 20 * sim.Millisecond
	p.RetryBackoffMax = 200 * sim.Millisecond
	p.MaxStreamRetries = 16
	return p
}

func TestRecoverySurvivesLinkFlap(t *testing.T) {
	p := testbed.NewMotivatingPair()
	size := 12 * float64(units.GB)
	var doneAt sim.Time
	failures := 0
	tr, err := Start(p.Links, p.A, DefaultConfig(), recoveryParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	tr.OnFailure = func(sim.Time) { failures++ }
	p.Eng.At(0.2, func() { p.Links[0].Fail() })
	p.Eng.At(0.5, func() { p.Links[0].Restore() })
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed despite recovery")
	}
	if failures != 0 {
		t.Fatalf("OnFailure fired %d times; recovery should have handled the flap", failures)
	}
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("delivered %g, want exactly %g", got, size)
	}
	if tr.Recoveries < 1 {
		t.Fatalf("recoveries = %d, want ≥1", tr.Recoveries)
	}
	if tr.Retransmitted <= 0 {
		t.Fatal("expected retransmitted bytes after a mid-flight flap")
	}
	lats := tr.RecoveryLatencies()
	if len(lats) != tr.Recoveries {
		t.Fatalf("latency samples = %d, recoveries = %d", len(lats), tr.Recoveries)
	}
	for _, l := range lats {
		if l <= 0 {
			t.Fatalf("non-positive recovery latency %v", l)
		}
	}
}

func TestRecoveryTransferredMonotonicExactlyOnce(t *testing.T) {
	p := testbed.NewMotivatingPair()
	size := 8 * float64(units.GB)
	tr, err := Start(p.Links, p.A, DefaultConfig(), recoveryParams(),
		pipe.Zero{}, pipe.Null{}, size, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.At(0.1, func() { p.Links[1].Fail() })
	p.Eng.At(0.35, func() { p.Links[1].Restore() })
	last := -1.0
	tk := p.Eng.NewTicker(0.01, func(sim.Time) {
		got := tr.Transferred()
		if got < last {
			t.Fatalf("Transferred went backwards: %g after %g", got, last)
		}
		if got > size*(1+1e-9) {
			t.Fatalf("Transferred %g exceeds size %g (duplicate delivery)", got, size)
		}
		last = got
	})
	p.Eng.At(3, tk.Stop)
	p.Eng.Run()
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("final delivered %g, want %g", got, size)
	}
}

func TestRecoveryExhaustionFiresOnFailureOnce(t *testing.T) {
	w := testbed.NewWAN()
	prm := recoveryParams()
	prm.MaxStreamRetries = 3
	cfg := DefaultConfig()
	cfg.Streams = 1
	failures := 0
	completed := false
	tr, err := Start([]*fabric.Link{w.Link}, w.A, cfg, prm,
		pipe.Zero{}, pipe.Null{}, 4*float64(units.GB), func(sim.Time) { completed = true })
	if err != nil {
		t.Fatal(err)
	}
	tr.OnFailure = func(sim.Time) { failures++ }
	w.Eng.At(0.5, func() { w.Link.Fail() }) // never restored
	w.Eng.Run()
	if completed {
		t.Fatal("transfer completed on a permanently dark link")
	}
	if failures != 1 {
		t.Fatalf("OnFailure fired %d times, want exactly 1", failures)
	}
	if !tr.Failed() {
		t.Fatal("Failed() should report true")
	}
}

func TestDegradedLinkSlowsWithoutRetransmit(t *testing.T) {
	p := testbed.NewMotivatingPair()
	size := 6 * float64(units.GB)
	var doneAt sim.Time
	tr, err := Start(p.Links, p.A, DefaultConfig(), recoveryParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.At(0.05, func() { p.Links[0].Degrade(0.25) })
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed on a degraded link")
	}
	if tr.Recoveries != 0 || tr.Retransmitted != 0 {
		t.Fatalf("degradation should not trigger retransmission (recoveries=%d, retx=%g)",
			tr.Recoveries, tr.Retransmitted)
	}
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("delivered %g, want %g", got, size)
	}
}

func TestRecoveryDeterministic(t *testing.T) {
	run := func() (sim.Time, int, float64) {
		p := testbed.NewMotivatingPair()
		var doneAt sim.Time
		tr, err := Start(p.Links, p.A, DefaultConfig(), recoveryParams(),
			pipe.Zero{}, pipe.Null{}, 10*float64(units.GB), func(now sim.Time) { doneAt = now })
		if err != nil {
			t.Fatal(err)
		}
		p.Eng.At(0.2, func() { p.Links[2].Fail() })
		p.Eng.At(0.45, func() { p.Links[2].Restore() })
		p.Eng.At(0.6, func() { p.Links[2].InjectErrorBurst() })
		p.Eng.Run()
		return doneAt, tr.Recoveries, tr.Retransmitted
	}
	d1, r1, x1 := run()
	d2, r2, x2 := run()
	if d1 != d2 || r1 != r2 || x1 != x2 {
		t.Fatalf("non-deterministic recovery: (%v,%d,%g) vs (%v,%d,%g)", d1, r1, x1, d2, r2, x2)
	}
	if r1 < 2 {
		t.Fatalf("expected recoveries from both the flap and the error burst, got %d", r1)
	}
}
