package rftp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/placer"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

// TestAutoPolicyPlacesAndCompletes: a PolicyAuto transfer with a placer
// wired in must complete exactly-once, and the engine must have placed
// every side entity (two per rail: client and server).
func TestAutoPolicyPlacesAndCompletes(t *testing.T) {
	p := testbed.NewMotivatingPair()
	cfg := DefaultConfig()
	cfg.Policy = numa.PolicyAuto
	pl := placer.New(p.A.Sim, placer.DefaultConfig())
	cfg.Placer = pl
	size := 4 * float64(units.GB)
	var doneAt sim.Time
	tr, err := Start(p.Links, p.A, cfg, DefaultParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("auto transfer never completed")
	}
	if got := tr.Transferred(); math.Abs(got-size) > 1 {
		t.Fatalf("delivered %g, want exactly %g", got, size)
	}
	if got, want := pl.Placements(), 2*len(p.Links); got != want {
		t.Fatalf("placements = %d, want %d (client+server per rail)", got, want)
	}
}

// TestAutoPolicyWithoutPlacerStaysUnpinned: PolicyAuto with no engine wired
// degrades to the default unbound model rather than failing.
func TestAutoPolicyWithoutPlacerStaysUnpinned(t *testing.T) {
	p := testbed.NewMotivatingPair()
	cfg := DefaultConfig()
	cfg.Policy = numa.PolicyAuto
	var doneAt sim.Time
	_, err := Start(p.Links, p.A, cfg, DefaultParams(),
		pipe.Zero{}, pipe.Null{}, 2*float64(units.GB), func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed")
	}
}

// TestRandomizedAutoPlacementDeterminism sweeps 20 seeds of (kill time,
// rail, restore-or-not) under PolicyAuto with an adaptive placer and
// checks, for each: exactly-once delivery, a bit-identical event trace on
// replay — every placement and migration decision at the same virtual time
// with the same outcome — and a bounded migration count.
func TestRandomizedAutoPlacementDeterminism(t *testing.T) {
	size := 6 * float64(units.GB)
	const migrationBound = 40
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		killAt := sim.Time(0.05 + rng.Float64()*0.3)
		rail := rng.Intn(3)
		restore := rng.Float64() < 0.5
		restoreAt := killAt + sim.Time(0.05+rng.Float64()*0.2)

		run := func() (*trace.Recorder, float64, sim.Time, placer.Stats) {
			p := testbed.NewMotivatingPair()
			rec := &trace.Recorder{}
			p.Eng.SetTracer(rec)
			cfg := DefaultConfig()
			cfg.Policy = numa.PolicyAuto
			pl := placer.New(p.A.Sim, placer.DefaultConfig())
			cfg.Placer = pl
			var doneAt sim.Time
			tr, err := Start(p.Links, p.A, cfg, railParams(),
				pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { doneAt = now })
			if err != nil {
				t.Fatal(err)
			}
			p.Eng.At(killAt, p.Links[rail].Fail)
			if restore {
				p.Eng.At(restoreAt, p.Links[rail].Restore)
			}
			p.Eng.Run()
			return rec, tr.Transferred(), doneAt, pl.Stats()
		}

		rec1, got1, done1, st1 := run()
		rec2, got2, done2, st2 := run()
		if done1 <= 0 {
			t.Fatalf("seed %d: transfer never completed (kill %v rail %d restore %v)",
				seed, killAt, rail, restore)
		}
		if math.Abs(got1-size)/size > 1e-6 {
			t.Fatalf("seed %d: delivered %g, want exactly %g", seed, got1, size)
		}
		if st1.Placements == 0 {
			t.Fatalf("seed %d: no placements committed", seed)
		}
		if st1.Migrations > migrationBound {
			t.Fatalf("seed %d: %d migrations exceed bound %d", seed, st1.Migrations, migrationBound)
		}
		if got1 != got2 || done1 != done2 || st1 != st2 {
			t.Fatalf("seed %d: replay diverged: (%g,%v,%+v) vs (%g,%v,%+v)",
				seed, got1, done1, st1, got2, done2, st2)
		}
		if len(rec1.Events) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		if !reflect.DeepEqual(rec1.Events, rec2.Events) {
			for i := range rec1.Events {
				if i >= len(rec2.Events) || rec1.Events[i] != rec2.Events[i] {
					t.Fatalf("seed %d: traces diverge at event %d: %+v vs %+v",
						seed, i, rec1.Events[i], rec2.Events[i])
				}
			}
			t.Fatalf("seed %d: traces diverge in length: %d vs %d",
				seed, len(rec1.Events), len(rec2.Events))
		}
	}
}
