package rftp

import (
	"fmt"
	"testing"

	"e2edt/internal/pipe"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

// smallObjects builds n objects of size bytes each.
func smallObjects(n int, size int64) []ObjectSpec {
	objs := make([]ObjectSpec, n)
	for i := range objs {
		objs[i] = ObjectSpec{Key: fmt.Sprintf("b/obj-%04d", i), Size: size}
	}
	return objs
}

func TestBatchValidation(t *testing.T) {
	p := testbed.NewMotivatingPair()
	if _, err := StartBatch(nil, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, smallObjects(1, 1), nil, nil); err == nil {
		t.Error("no links should fail")
	}
	if _, err := StartBatch(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, nil, nil, nil); err == nil {
		t.Error("empty window should fail")
	}
	if _, err := StartBatch(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, []ObjectSpec{{Key: "b/k", Size: -1}}, nil, nil); err == nil {
		t.Error("negative object size should fail")
	}
}

// TestBatchDeliversAllExactlyOnce: every object in the window completes,
// each index exactly once, and the window's OnComplete fires once.
func TestBatchDeliversAllExactlyOnce(t *testing.T) {
	p := testbed.NewMotivatingPair()
	objs := smallObjects(200, 24<<10)
	counts := make([]int, len(objs))
	windowDone := 0
	tr, err := StartBatch(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, objs,
		func(i int, now sim.Time) { counts[i]++ },
		func(now sim.Time) { windowDone++ })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	if tr.Delivered() != len(objs) {
		t.Fatalf("delivered %d of %d", tr.Delivered(), len(objs))
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("object %d delivered %d times", i, c)
		}
	}
	if windowDone != 1 {
		t.Fatalf("OnComplete fired %d times", windowDone)
	}
	if tr.Finished() <= 0 {
		t.Fatal("no finish time recorded")
	}
}

// TestBatchZeroSizeObjects: empty objects ride the stream as bare
// delimiter records and complete like any other — including a window made
// entirely of empty objects.
func TestBatchZeroSizeObjects(t *testing.T) {
	p := testbed.NewMotivatingPair()
	objs := smallObjects(50, 16<<10)
	for i := 0; i < len(objs); i += 5 {
		objs[i].Size = 0
	}
	counts := make([]int, len(objs))
	tr, err := StartBatch(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, objs,
		func(i int, now sim.Time) { counts[i]++ }, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("object %d delivered %d times", i, c)
		}
	}
	if tr.Delivered() != len(objs) {
		t.Fatalf("delivered %d of %d", tr.Delivered(), len(objs))
	}

	// All-empty window.
	p2 := testbed.NewMotivatingPair()
	empty := smallObjects(10, 0)
	tr2, err := StartBatch(p2.Links, p2.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, empty, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2.Eng.Run()
	if tr2.Delivered() != len(empty) {
		t.Fatalf("all-empty window delivered %d of %d", tr2.Delivered(), len(empty))
	}
	if tr2.Finished() <= 0 {
		t.Fatal("all-empty window never finished")
	}
}

// TestBatchStop: a stopped window fires no further callbacks and keeps
// only fully delivered objects' bytes.
func TestBatchStop(t *testing.T) {
	p := testbed.NewMotivatingPair()
	objs := smallObjects(100, units.MB)
	delivered := 0
	tr, err := StartBatch(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, objs,
		func(i int, now sim.Time) { delivered++ }, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunFor(3 * sim.Millisecond)
	tr.Stop()
	mid := tr.Delivered()
	if mid == 0 || mid == len(objs) {
		t.Fatalf("want a partial window at stop, got %d of %d", mid, len(objs))
	}
	p.Eng.Run()
	if tr.Delivered() != mid || delivered != mid {
		t.Fatalf("deliveries after Stop: %d → %d (callbacks %d)", mid, tr.Delivered(), delivered)
	}
	if got, want := tr.Transferred(), float64(mid)*float64(units.MB); got != want {
		t.Fatalf("Transferred after Stop = %.0f, want %.0f (completed objects only)", got, want)
	}
}

// TestBatchBeatsPerObjectSessions is the protocol-level coalescing claim:
// moving N small objects as one batch window is far faster than paying a
// session handshake per object (batch windows of size 1).
func TestBatchBeatsPerObjectSessions(t *testing.T) {
	const n, size = 256, 24 << 10

	// Coalesced: one window.
	p := testbed.NewMotivatingPair()
	tr, err := StartBatch(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, smallObjects(n, size), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	coalesced := float64(tr.Finished())

	// Per-object: a new session (handshake and all) for every object.
	p2 := testbed.NewMotivatingPair()
	objs := smallObjects(n, size)
	var last sim.Time
	var startNext func(i int)
	startNext = func(i int) {
		if i >= len(objs) {
			return
		}
		_, err := StartBatch(p2.Links, p2.A, DefaultConfig(), DefaultParams(),
			pipe.Zero{}, pipe.Null{}, objs[i:i+1], nil,
			func(now sim.Time) { last = now; startNext(i + 1) })
		if err != nil {
			t.Error(err)
		}
	}
	startNext(0)
	p2.Eng.Run()
	perObject := float64(last)

	if coalesced <= 0 || perObject <= 0 {
		t.Fatalf("missing finish times: coalesced=%v perObject=%v", coalesced, perObject)
	}
	if perObject < 5*coalesced {
		t.Fatalf("coalescing gain %.1f× < 5× (coalesced %.4fs, per-object %.4fs)",
			perObject/coalesced, coalesced, perObject)
	}
}
