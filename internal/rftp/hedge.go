package rftp

import (
	"fmt"
	"math"

	"e2edt/internal/fluid"
	"e2edt/internal/sim"
)

// HedgePolicy tunes tail-tolerant hedged transfers. The mechanism targets
// the regime where a rail is slow but alive: in-protocol recovery never
// fires (progress is progress), failover never fires (the rail is not
// dark), and one limping window stretches the whole session's tail. A
// hedge re-issues the lagging credit window speculatively on the best
// non-suspect rail and lets the two race; the ACK fold on the winning
// side keeps delivery exactly-once, and the loser's bytes are accounted
// as HedgeWaste — the explicit price paid for cutting the tail.
type HedgePolicy struct {
	// Enabled switches hedging on (requires Params.Rails.Enabled).
	Enabled bool
	// Quantile of recent window-completion times used as the deadline
	// baseline (default 0.99).
	Quantile float64
	// Multiplier stretches the quantile into the deadline: a window is
	// hedged once it outlives Multiplier × Q(Quantile) (default 1.5).
	Multiplier float64
	// MinSamples is how many window completions a rail's history needs
	// before it may anchor a deadline (default 8) — no hedging during
	// warm-up, when the estimate would be noise.
	MinSamples int
	// Window is the sample window per rail (default 32); old completions
	// fall out, so the deadline tracks the current regime, not history.
	Window int
	// MaxConcurrent bounds hedges racing at once across the transfer
	// (default 2): hedging is a scalpel, and an unbounded version would
	// re-create the overload it is meant to dodge.
	MaxConcurrent int
}

// DefaultHedgePolicy returns the tuned hedging policy, enabled.
func DefaultHedgePolicy() HedgePolicy {
	return HedgePolicy{
		Enabled:       true,
		Quantile:      0.99,
		Multiplier:    1.5,
		MinSamples:    8,
		Window:        32,
		MaxConcurrent: 2,
	}
}

// withDefaults fills zero fields.
func (h HedgePolicy) withDefaults() HedgePolicy {
	d := DefaultHedgePolicy()
	if h.Quantile <= 0 || h.Quantile > 1 {
		h.Quantile = d.Quantile
	}
	if h.Multiplier <= 1 {
		h.Multiplier = d.Multiplier
	}
	if h.MinSamples <= 0 {
		h.MinSamples = d.MinSamples
	}
	if h.Window <= 0 {
		h.Window = d.Window
	}
	if h.MaxConcurrent <= 0 {
		h.MaxConcurrent = d.MaxConcurrent
	}
	return h
}

// hedgeRace is one speculative window re-issue: the range [baseM, target)
// of the original flow's progress space, racing on another rail.
type hedgeRace struct {
	tr     *fluid.Transfer
	rail   int
	baseM  float64 // original flow progress when the hedge launched
	target float64 // hedge covers [baseM, target)
	at     sim.Time
}

// resetMarks re-anchors a stream's sampling checkpoints on a fresh flow.
func (t *Transfer) resetMarks(s *stream, now sim.Time) {
	s.rateMark, s.rateMarkAt = 0, now
	s.winMark, s.winMarkAt = 0, now
	s.lastWinFresh = false
}

// observeStream takes this tick's measurements for one flowing stream:
// a normalized window-completion sample for the hedge deadline, computed
// whenever at least one full credit window completed since the last mark.
// Runs inside checkProgress, so cadence is AckTimeout/2 and everything
// stays on the virtual clock.
func (t *Transfer) observeStream(s *stream, m float64, now sim.Time) {
	s.lastWinFresh = false
	if !t.P.Hedge.Enabled {
		return
	}
	w := t.window()
	if m < s.winMark { // fresh flow under a stale mark
		s.winMark, s.winMarkAt = m, now
		return
	}
	if m-s.winMark >= w && now > s.winMarkAt {
		// Normalize elapsed time to one window's worth: several windows
		// completing in one tick average out, which is exactly right — the
		// deadline asks "how long does one window take on this rail now".
		perWin := float64(now-s.winMarkAt) * w / (m - s.winMark)
		t.winQ[s.rail].Observe(perWin)
		s.lastWin, s.lastWinFresh = perWin, true
		s.winMark, s.winMarkAt = m, now
	}
}

// feedGrayRates reports per-rail, per-stream-normalized delivered rates
// to the rail manager's gray scorer. Normalizing by the rail's live
// stream count keeps the cohort comparison load-independent.
func (t *Transfer) feedGrayRates(now sim.Time) {
	if t.mgr == nil || !t.P.Rails.Gray.Enabled {
		return
	}
	sums := make([]float64, len(t.links))
	counts := make([]int, len(t.links))
	for _, s := range t.streams {
		if s.done || s.recovering || !s.transfer.Active() {
			continue
		}
		m := s.transfer.Transferred()
		if m < s.rateMark || now <= s.rateMarkAt {
			s.rateMark, s.rateMarkAt = m, now
			continue
		}
		sums[s.rail] += (m - s.rateMark) / float64(now-s.rateMarkAt)
		counts[s.rail]++
		s.rateMark, s.rateMarkAt = m, now
	}
	for r := range t.links {
		if counts[r] > 0 {
			t.mgr.ObserveRate(r, sums[r]/float64(counts[r]))
		}
	}
}

// hedgeDeadline computes the adaptive deadline for a stream on rail
// `exclude`: Multiplier × Quantile over the window-completion history of
// usable, non-suspect rails other than the stream's own. Anchoring on
// trusted peers couples detection to mitigation — once the scorer marks
// a rail suspect, its inflated samples stop dragging the deadline up.
// Returns 0 when no trusted rail has enough history (no hedging).
func (t *Transfer) hedgeDeadline(exclude int) float64 {
	h := t.P.Hedge
	d := 0.0
	for r := range t.links {
		if r == exclude || !t.railUsable(r) {
			continue
		}
		if t.mgr != nil && t.mgr.Suspect(r) {
			continue
		}
		if t.winQ[r].Len() < h.MinSamples {
			continue
		}
		if q := t.winQ[r].Quantile(h.Quantile); q > d {
			d = q
		}
	}
	return h.Multiplier * d
}

// evaluateHedges fires hedges for streams whose current window has blown
// the deadline — either this tick's fresh completion sample exceeded it,
// or the window in progress is already older than it.
func (t *Transfer) evaluateHedges(now sim.Time) {
	for _, s := range t.streams {
		if s.done || s.recovering || !s.transfer.Active() || s.hedge != nil {
			continue
		}
		if t.hedgeCount >= t.P.Hedge.MaxConcurrent {
			return
		}
		d := t.hedgeDeadline(s.rail)
		if d <= 0 {
			continue
		}
		overdue := float64(now-s.winMarkAt) > d
		breach := s.lastWinFresh && s.lastWin > d
		if breach || overdue {
			t.launchHedge(s, now, d)
		}
	}
}

// pickHedgeRail chooses where a hedge runs: the usable non-suspect rail
// (other than the stream's own) carrying the fewest live streams and
// hedges, ties to the lowest index — deterministic, like pickRail.
func (t *Transfer) pickHedgeRail(s *stream) (int, bool) {
	loads := make([]int, len(t.links))
	for _, o := range t.streams {
		if !o.done {
			loads[o.rail]++
			if o.hedge != nil {
				loads[o.hedge.rail]++
			}
		}
	}
	best, found := -1, false
	for r := range t.links {
		if r == s.rail || !t.railUsable(r) {
			continue
		}
		if t.mgr != nil && t.mgr.Suspect(r) {
			continue
		}
		if !found || loads[r] < loads[best] {
			best, found = r, true
		}
	}
	return best, found
}

// launchHedge re-issues the stream's lagging window on another rail: a
// fresh fluid flow covering [m, min(m+window, flowSize)) of the original
// flow's progress space. The original keeps running — first completion
// wins the range.
func (t *Transfer) launchHedge(s *stream, now sim.Time, deadline float64) {
	r, ok := t.pickHedgeRail(s)
	if !ok {
		return
	}
	m := s.transfer.Transferred()
	target := math.Min(m+t.window(), s.flowSize)
	if target <= m {
		return
	}
	l := t.links[r]
	f := t.sim.NewFlow(fmt.Sprintf("rftp-hedge/%s/s%d", l.Cfg.Name, s.idx), t.windowCap(l))
	if err := t.chargeStream(f, s, r); err != nil {
		return // endpoints exist in rail mode; a charge error means teardown races
	}
	h := &hedgeRace{rail: r, baseM: m, target: target, at: now}
	h.tr = &fluid.Transfer{
		Flow:       f,
		Remaining:  target - m,
		OnComplete: func(now sim.Time) { t.hedgeWon(s, h, now) },
	}
	s.hedge = h
	t.hedgeCount++
	t.Hedges++
	if t.firstHedge < 0 {
		t.firstHedge = now
	}
	t.sim.Start(h.tr)
	t.eng.Tracef("rftp", "stream %d hedging window [%g, %g) on %s (deadline %.3gms blown)",
		s.idx, m, target, l.Cfg.Name, deadline*1e3)
}

// hedgeWon handles the hedge flow finishing first: its range [baseM,
// target) is certainly delivered, the original's progress up to baseM
// was delivered on a live rail (the same clean-handover fold failback
// uses), and the overlap the original managed past baseM is duplicate —
// counted as waste, never as delivery. The stream then follows the
// winner onto the hedge rail.
func (t *Transfer) hedgeWon(s *stream, h *hedgeRace, now sim.Time) {
	if s.hedge != h || t.failed || t.stopped || s.done {
		return
	}
	t.sim.Sync()
	m2 := s.transfer.Transferred()
	if m2 >= h.target {
		// Photo finish, original ahead: treat as a hedge loss and let the
		// original flow keep running untouched.
		t.hedgeLost(s)
		return
	}
	s.hedge = nil
	t.hedgeCount--
	t.HedgeWins++
	t.HedgeWaste += math.Max(0, m2-h.baseM) // duplicated overlap
	t.hedgeLat = append(t.hedgeLat, sim.Duration(now-h.at))
	// A lost race is rate evidence against the losing rail: the original
	// moved m2−baseM while the hedge moved the whole window. Feeding it
	// keeps the gray scorer converging even as hedge wins drain the sick
	// rail of streams (and therefore of regular rate samples).
	if t.mgr != nil && t.P.Rails.Gray.Enabled && now > h.at {
		t.mgr.ObserveRate(s.rail, math.Max(0, m2-h.baseM)/float64(now-h.at))
	}
	t.untrack(s.transfer)
	if s.transfer.Active() {
		t.sim.Cancel(s.transfer)
	}
	s.acked += h.target
	if !math.IsInf(s.remaining, 1) {
		s.remaining -= h.target
	}
	t.eng.Tracef("rftp", "stream %d hedge won on %s after %v: offset %g, %g to go",
		s.idx, t.links[h.rail].Cfg.Name, sim.Duration(now-h.at), s.acked, s.remaining)
	if s.remaining <= 0.5 {
		t.streamDone(s, now)
		return
	}
	s.recovering = true
	s.kind = KindHedge
	s.faultAt = h.at
	from := s.rail
	s.rail = h.rail
	s.qp = t.newQP(s)
	t.eng.Tracef("rftp", "stream %d leaving %s for hedge winner %s",
		s.idx, t.links[from].Cfg.Name, t.links[s.rail].Cfg.Name)
	t.attemptResume(s)
}

// hedgeLost cancels a stream's racing hedge: the original won the range,
// or the stream's state changed under the race (loss declaration,
// migration, completion, teardown). The hedge's partial progress is pure
// waste — it is never folded.
func (t *Transfer) hedgeLost(s *stream) {
	h := s.hedge
	if h == nil {
		return
	}
	s.hedge = nil
	t.hedgeCount--
	t.HedgeLosses++
	t.sim.Sync()
	t.HedgeWaste += h.tr.Transferred()
	t.untrack(h.tr)
	if h.tr.Active() {
		t.sim.Cancel(h.tr)
	}
	t.eng.Tracef("rftp", "stream %d hedge on %s cancelled (%g duplicate bytes)",
		s.idx, t.links[h.rail].Cfg.Name, h.tr.Transferred())
}

// ActiveHedges returns how many hedged windows are racing right now.
func (t *Transfer) ActiveHedges() int { return t.hedgeCount }

// FirstHedgeAt returns when the first hedge launched, and whether any did.
func (t *Transfer) FirstHedgeAt() (sim.Time, bool) {
	if t.firstHedge < 0 {
		return 0, false
	}
	return t.firstHedge, true
}

// HedgeLatencies returns one sample per hedge win: virtual time from
// launch to the hedged window's completion on the winning rail.
func (t *Transfer) HedgeLatencies() []sim.Duration {
	out := make([]sim.Duration, len(t.hedgeLat))
	copy(out, t.hedgeLat)
	return out
}

// SuspectRailsInUse counts live streams currently bound to rails under a
// gray verdict — the arbiter's signal to decay this transfer's share.
func (t *Transfer) SuspectRailsInUse() int {
	if t.mgr == nil {
		return 0
	}
	n := 0
	for _, s := range t.streams {
		if !s.done && t.mgr.Suspect(s.rail) {
			n++
		}
	}
	return n
}
