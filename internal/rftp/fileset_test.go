package rftp

import (
	"fmt"
	"math"
	"testing"

	"e2edt/internal/pipe"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func uniformSet(n int, size int64) []FileSpec {
	files := make([]FileSpec, n)
	for i := range files {
		files[i] = FileSpec{Name: fmt.Sprintf("f%04d", i), Size: size}
	}
	return files
}

func TestStartSetValidation(t *testing.T) {
	p := testbed.NewMotivatingPair()
	if _, err := StartSet(nil, p.A, DefaultConfig(), DefaultParams(), pipe.Zero{}, pipe.Null{}, uniformSet(1, units.MB), nil); err == nil {
		t.Error("no links should fail")
	}
	if _, err := StartSet(p.Links, p.A, DefaultConfig(), DefaultParams(), pipe.Zero{}, pipe.Null{}, nil, nil); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := StartSet(p.Links, p.A, DefaultConfig(), DefaultParams(), pipe.Zero{}, pipe.Null{},
		[]FileSpec{{Name: "bad", Size: 0}}, nil); err == nil {
		t.Error("zero-size file should fail")
	}
	if _, err := StartSet(p.Links, p.A, Config{}, DefaultParams(), pipe.Zero{}, pipe.Null{}, uniformSet(1, units.MB), nil); err == nil {
		t.Error("bad config should fail")
	}
}

func TestSetTransfersAllFiles(t *testing.T) {
	p := testbed.NewMotivatingPair()
	files := uniformSet(30, 512*units.MB)
	var done sim.Time
	st, err := StartSet(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, files, func(now sim.Time) { done = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	if done <= 0 {
		t.Fatal("set never completed")
	}
	if st.Completed != 30 {
		t.Fatalf("completed %d of 30 files", st.Completed)
	}
	want := TotalBytes(files)
	if got := st.Transferred(); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("moved %v of %v bytes", got, want)
	}
	if st.Finished() != done || st.Bandwidth() <= 0 {
		t.Fatal("bookkeeping wrong")
	}
}

func TestLargeFilesApproachStreamRate(t *testing.T) {
	// Few huge files: per-file overhead amortizes; rate approaches the
	// continuous-transfer rate.
	p := testbed.NewMotivatingPair()
	st, err := StartSet(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, uniformSet(3, 8*units.GB), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	g := units.ToGbps(st.Bandwidth())
	if g < 100 {
		t.Fatalf("large-file set = %.1f Gbps, want ≈ line rate", g)
	}
}

func TestSmallFilesLatencyBound(t *testing.T) {
	// Many small files over the WAN: each pays a 95 ms control round
	// trip, so goodput collapses — the small-file problem.
	w := testbed.NewWAN()
	cfg := DefaultConfig()
	cfg.Streams = 1
	st, err := StartSet(w.LinkSlice(), w.A, cfg, DefaultParams(),
		pipe.Zero{}, pipe.Null{}, uniformSet(50, units.MB), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Eng.Run()
	// 50 files × ≥1 RTT control ≈ ≥4.75 s for 50 MB: well under 1 Gbps.
	if g := units.ToGbps(st.Bandwidth()); g > 1 {
		t.Fatalf("small-file WAN set = %.2f Gbps, should be latency-bound", g)
	}
	if st.Completed != 50 {
		t.Fatalf("completed %d of 50", st.Completed)
	}
}

func TestSmallVsLargeFilesOnWAN(t *testing.T) {
	run := func(n int, size int64) float64 {
		w := testbed.NewWAN()
		cfg := DefaultConfig()
		cfg.Streams = 4
		st, err := StartSet(w.LinkSlice(), w.A, cfg, DefaultParams(),
			pipe.Zero{}, pipe.Null{}, uniformSet(n, size), nil)
		if err != nil {
			t.Fatal(err)
		}
		w.Eng.Run()
		return st.Bandwidth()
	}
	// Same 4 GB total volume, different granularity.
	small := run(1024, 4*units.MB)
	large := run(4, units.GB)
	if small >= large {
		t.Fatalf("small files (%v) should trail large files (%v)", small, large)
	}
	if large/small < 2 {
		t.Fatalf("file-size effect too weak: %v vs %v", small, large)
	}
}

func TestSetProgressMidFlight(t *testing.T) {
	p := testbed.NewMotivatingPair()
	st, err := StartSet(p.Links, p.A, DefaultConfig(), DefaultParams(),
		pipe.Zero{}, pipe.Null{}, uniformSet(10, units.GB), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunUntil(0.3)
	mid := st.Transferred()
	if mid <= 0 {
		t.Fatal("no progress mid-flight")
	}
	if mid >= TotalBytes(st.Files) {
		t.Fatal("progress overshot")
	}
	p.Eng.Run()
	if st.Completed != 10 {
		t.Fatalf("completed %d", st.Completed)
	}
}

func TestTotalBytes(t *testing.T) {
	if TotalBytes(nil) != 0 {
		t.Fatal("empty set should total 0")
	}
	if TotalBytes(uniformSet(3, 7)) != 21 {
		t.Fatal("TotalBytes wrong")
	}
}
