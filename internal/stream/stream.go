// Package stream reimplements the STREAM memory-bandwidth benchmark
// (McCalpin) over the simulated NUMA machine. The paper uses STREAM Triad
// with OpenMP threads to establish the 50 GB/s peak memory bandwidth of its
// two-node hosts (§2.3), from which it derives the ≤200 Gbps ceiling for
// two-copy TCP transfers.
package stream

import (
	"fmt"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
)

// Kernel selects the STREAM loop.
type Kernel int

const (
	// Copy: c[i] = a[i]            (1 read, 1 write)
	Copy Kernel = iota
	// Scale: b[i] = s*c[i]         (1 read, 1 write)
	Scale
	// Add: c[i] = a[i] + b[i]      (2 reads, 1 write)
	Add
	// Triad: a[i] = b[i] + s*c[i]  (2 reads, 1 write)
	Triad
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case Copy:
		return "Copy"
	case Scale:
		return "Scale"
	case Add:
		return "Add"
	case Triad:
		return "Triad"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// readShare returns the fraction of the kernel's memory traffic that is
// reads (STREAM counts reads+writes as moved bytes).
func (k Kernel) readShare() float64 {
	switch k {
	case Add, Triad:
		return 2.0 / 3.0
	default:
		return 0.5
	}
}

// Config parameterizes a run.
type Config struct {
	// Threads is the OpenMP-style worker count.
	Threads int
	// Policy places threads and arrays: PolicyBind spreads threads evenly
	// across nodes with node-local arrays (OMP_PROC_BIND=true);
	// PolicyDefault leaves threads unpinned with interleaved arrays.
	Policy numa.Policy
	// Kernel is the STREAM loop to run.
	Kernel Kernel
	// Duration of the measured run.
	Duration sim.Duration
	// ComputeCyclesPerByte is the arithmetic cost (small; STREAM is
	// memory-bound on any modern core).
	ComputeCyclesPerByte float64
}

// DefaultConfig runs Triad with one thread per core, bound.
func DefaultConfig(h *host.Host) Config {
	return Config{
		Threads:              h.M.TotalCores(),
		Policy:               numa.PolicyBind,
		Kernel:               Triad,
		Duration:             5,
		ComputeCyclesPerByte: 0.05,
	}
}

// Result reports the measured bandwidth.
type Result struct {
	Kernel Kernel
	// Bandwidth is total memory traffic in bytes/second (STREAM
	// convention: reads + writes).
	Bandwidth float64
	// PerThread is each worker's traffic rate.
	PerThread []float64
}

// Run executes the benchmark on h and returns the sustained bandwidth.
func Run(h *host.Host, cfg Config) Result {
	if cfg.Threads <= 0 {
		panic("stream: Threads must be positive")
	}
	if cfg.Duration <= 0 {
		panic("stream: Duration must be positive")
	}
	s := h.Sim
	eng := s.Engine
	m := h.M

	var transfers []*fluid.Transfer
	// One process per node under binding (so threads pin locally); a
	// single unpinned process otherwise.
	var procs []*host.Process
	if cfg.Policy == numa.PolicyBind {
		for _, n := range m.Nodes {
			procs = append(procs, h.NewProcess(fmt.Sprintf("stream-n%d", n.ID), numa.PolicyBind, n))
		}
	} else {
		procs = []*host.Process{h.NewProcess("stream", cfg.Policy, nil)}
	}

	for i := 0; i < cfg.Threads; i++ {
		proc := procs[i%len(procs)]
		th := proc.NewThread()
		var arrays *numa.Buffer
		if node := th.Node(); node != nil {
			arrays = m.NewBuffer(fmt.Sprintf("stream-arrays-%d", i), node)
		} else {
			arrays = m.InterleavedBuffer(fmt.Sprintf("stream-arrays-%d", i))
		}
		f := s.NewFlow(fmt.Sprintf("stream/%s/t%d", cfg.Kernel, i), 1e30)
		rs := cfg.Kernel.readShare()
		// Flow units are bytes of memory traffic.
		th.ChargeMemory(f, arrays, rs, false, host.CatUser)
		th.ChargeMemory(f, arrays, 1-rs, true, host.CatUser)
		penalty := rs*th.MemoryPenalty(arrays, false) + (1-rs)*th.MemoryPenalty(arrays, true)
		th.ChargeCPU(f, cfg.ComputeCyclesPerByte*penalty, host.CatUser)
		tr := &fluid.Transfer{Flow: f, Remaining: 1e30}
		transfers = append(transfers, tr)
		s.Start(tr)
	}

	start := eng.Now()
	eng.RunUntil(start + sim.Time(cfg.Duration))
	s.Sync()
	res := Result{Kernel: cfg.Kernel}
	for _, tr := range transfers {
		rate := tr.Transferred() / float64(cfg.Duration)
		res.PerThread = append(res.PerThread, rate)
		res.Bandwidth += rate
		s.Cancel(tr)
	}
	return res
}
