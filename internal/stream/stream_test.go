package stream

import (
	"math"
	"testing"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// frontend is the paper's front-end host: 2 nodes × 25 GB/s controllers,
// STREAM Triad peak 50 GB/s.
func frontend(t *testing.T) *host.Host {
	t.Helper()
	s := fluid.NewSim(sim.NewEngine())
	return host.New("fe", numa.MustNew(s, numa.Config{
		Name: "fe", Nodes: 2, CoresPerNode: 8, CoreHz: 2.2e9,
		MemBandwidthPerNode:   25 * units.GBps,
		InterconnectBandwidth: 11 * units.GBps,
		RemoteAccessPenalty:   1.2, CoherencyWritePenalty: 1.3,
	}))
}

func TestTriadPeaksAtPaperValue(t *testing.T) {
	h := frontend(t)
	res := Run(h, DefaultConfig(h))
	got := units.ToGBps(res.Bandwidth)
	// Paper: Triad peak 50 GB/s across both NUMA nodes.
	if math.Abs(got-50) > 1 {
		t.Fatalf("Triad = %.1f GB/s, want ≈50", got)
	}
	if res.Kernel != Triad {
		t.Fatal("kernel mislabeled")
	}
	if len(res.PerThread) != h.M.TotalCores() {
		t.Fatalf("per-thread results = %d, want %d", len(res.PerThread), h.M.TotalCores())
	}
}

func TestAllKernelsSaturateMemory(t *testing.T) {
	for _, k := range []Kernel{Copy, Scale, Add, Triad} {
		h := frontend(t)
		cfg := DefaultConfig(h)
		cfg.Kernel = k
		res := Run(h, cfg)
		got := units.ToGBps(res.Bandwidth)
		if math.Abs(got-50) > 1 {
			t.Fatalf("%v = %.1f GB/s, want ≈50 (memory-bound)", k, got)
		}
	}
}

func TestSingleThreadBoundToOneNode(t *testing.T) {
	h := frontend(t)
	cfg := DefaultConfig(h)
	cfg.Threads = 1
	res := Run(h, cfg)
	got := units.ToGBps(res.Bandwidth)
	// One bound thread sees only its node's controller (25 GB/s), and may
	// additionally be core-bound; it must be well under the machine peak.
	if got > 25.1 {
		t.Fatalf("single thread = %.1f GB/s, want ≤ 25", got)
	}
	if got < 5 {
		t.Fatalf("single thread = %.1f GB/s, implausibly low", got)
	}
}

func TestUnpinnedSlowerThanBound(t *testing.T) {
	hB := frontend(t)
	bound := Run(hB, DefaultConfig(hB))
	hD := frontend(t)
	cfgD := DefaultConfig(hD)
	cfgD.Policy = numa.PolicyDefault
	def := Run(hD, cfgD)
	if def.Bandwidth >= bound.Bandwidth {
		t.Fatalf("unpinned (%v) should trail bound (%v)", def.Bandwidth, bound.Bandwidth)
	}
}

func TestKernelStrings(t *testing.T) {
	names := map[Kernel]string{Copy: "Copy", Scale: "Scale", Add: "Add", Triad: "Triad"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%v.String() = %q", want, k.String())
		}
	}
	if Kernel(9).String() == "" {
		t.Fatal("unknown kernel should render")
	}
}

func TestReadShares(t *testing.T) {
	if Copy.readShare() != 0.5 || Scale.readShare() != 0.5 {
		t.Fatal("copy/scale read share should be 1/2")
	}
	if Add.readShare() != 2.0/3.0 || Triad.readShare() != 2.0/3.0 {
		t.Fatal("add/triad read share should be 2/3")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	h := frontend(t)
	for i, cfg := range []Config{
		{Threads: 0, Duration: 1},
		{Threads: 1, Duration: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			Run(h, cfg)
		}()
	}
}

func TestRunStopsItsTransfers(t *testing.T) {
	h := frontend(t)
	Run(h, DefaultConfig(h))
	if n := h.Sim.ActiveTransfers(); n != 0 {
		t.Fatalf("%d transfers still active after Run", n)
	}
}
