package cluster

import (
	"math"
	"sort"
	"time"

	"e2edt/internal/fluid"
	"e2edt/internal/sim"
)

// shard is one control-plane replica. It owns the hosts with id ≡ shard id
// (mod K): jobs destined to an owned host queue here, admission and tenant
// fair share are enforced here, and per-tenant delivered bytes are pushed
// to the leader (shard 0) for global reconciliation.
type shard struct {
	c  *Cluster
	id int

	// queue holds jobs awaiting admission, kept sorted by
	// (priority desc, submit time, id) — xfersched's total order.
	queue []*job
	// running holds admitted jobs in admission order.
	running []*job

	// adjust is this shard's copy of the leader's per-tenant weight
	// correction; stale between reconciliations (or longer, when the
	// broadcast drops).
	adjust []float64
	// window accumulates per-tenant delivered bytes since the last digest.
	window []float64

	// Leader state (shard 0 only): delivered bytes accumulated from every
	// shard's digests during the current reconcile interval.
	acc []float64

	admitted int
	digestT  *sim.Ticker
	adjustT  *sim.Ticker
	scanT    *sim.Ticker
	stopped  bool
}

func newShard(c *Cluster, id int) *shard {
	return &shard{c: c, id: id}
}

// growTenants sizes the per-tenant arrays (dense, so no simulation path
// ever iterates a map).
func (s *shard) growTenants(n int) {
	for len(s.adjust) < n {
		s.adjust = append(s.adjust, 1)
		s.window = append(s.window, 0)
	}
	if s.id == 0 {
		for len(s.acc) < n {
			s.acc = append(s.acc, 0)
		}
	}
}

// leader reports whether this shard reconciles global fair share.
func (s *shard) leader() bool { return s.id == 0 }

// startTickers arms the shard's periodic work: digest pushes to the
// leader, (leader only) adjustment broadcasts offset by half an interval so
// digests land first, and a slow re-admission scan that guarantees
// progress for jobs whose source hosts were busy when capacity last freed.
func (s *shard) startTickers() {
	every := s.c.Cfg.ReconcileEvery
	s.digestT = s.c.Eng.NewTicker(every, func(sim.Time) { s.pushDigest() })
	if s.leader() {
		s.c.Eng.Schedule(every/2, func() {
			if s.stopped {
				return
			}
			s.adjustT = s.c.Eng.NewTicker(every, func(sim.Time) { s.reconcile() })
			s.reconcile()
		})
	}
	s.scanT = s.c.Eng.NewTicker(every/5, func(sim.Time) { s.admit() })
}

// stop disarms the tickers so the event queue can drain.
func (s *shard) stop() {
	s.stopped = true
	if s.digestT != nil {
		s.digestT.Stop()
	}
	if s.adjustT != nil {
		s.adjustT.Stop()
	}
	if s.scanT != nil {
		s.scanT.Stop()
	}
}

// order is the admission total order: priority desc, then submit time,
// then id — a deterministic tie-break chain identical to xfersched's.
func order(a, b *job) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if a.submit != b.submit {
		return a.submit < b.submit
	}
	return a.id < b.id
}

// enqueue inserts a delivered job into the sorted queue and runs an
// admission pass.
func (s *shard) enqueue(j *job) {
	j.state = jobQueued
	i := sort.Search(len(s.queue), func(i int) bool { return order(j, s.queue[i]) })
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = j
	s.c.Eng.Tracef("cluster", "shard %d queues job %d tenant %d dst %d", s.id, j.id, j.tenant, j.dst)
	s.admit()
}

// pickSource chooses the replica to read from: the nearest (same host,
// then same leaf, then same pod, then anywhere) replica with source
// capacity, ties broken by lighter load then lower host id. Returns -1
// when every replica is saturated.
func (s *shard) pickSource(j *job) int {
	best, bestScore, bestLoad := -1, 0, 0
	for _, r := range s.c.datasets[j.dataset] {
		hn := s.c.hosts[r]
		if hn.srcActive >= s.c.Cfg.MaxPerHost {
			continue
		}
		score := s.c.locality(r, j.dst)
		if best == -1 || score < bestScore ||
			(score == bestScore && (hn.srcActive < bestLoad ||
				(hn.srcActive == bestLoad && r < best))) {
			best, bestScore, bestLoad = r, score, hn.srcActive
		}
	}
	return best
}

// admit runs one admission pass: walk the queue in order, start every job
// whose destination and chosen source have capacity, then rebalance the
// fair-share weights of tenants that gained flows. The pass is wrapped in
// a wall-clock stopwatch feeding the decision-latency histogram — the
// measurement is observational only and never enters the simulation.
func (s *shard) admit() {
	if s.stopped || len(s.queue) == 0 {
		return
	}
	t0 := time.Now()
	var touched []int
	kept := s.queue[:0]
	for _, j := range s.queue {
		if s.c.hosts[j.dst].dstActive >= s.c.Cfg.MaxPerHost {
			kept = append(kept, j)
			continue
		}
		src := s.pickSource(j)
		if src < 0 {
			kept = append(kept, j)
			continue
		}
		j.src = src
		s.c.start(j, s)
		s.running = append(s.running, j)
		s.admitted++
		touched = append(touched, j.tenant)
	}
	s.queue = kept
	if len(touched) > 0 {
		s.rebalance(touched)
	}
	s.c.DecisionLat.Observe(float64(time.Since(t0).Nanoseconds()) / 1e3)
}

// rebalance recomputes flow weights for the given tenants so that each
// tenant's aggregate share in this shard tracks weight × adjust regardless
// of how many flows it has running. One Refresh propagates the batch.
func (s *shard) rebalance(tenants []int) {
	sort.Ints(tenants)
	changed := false
	prev := -1
	for _, t := range tenants {
		if t == prev {
			continue
		}
		prev = t
		if s.applyWeight(t) {
			changed = true
		}
	}
	if changed {
		s.c.FSim.Refresh()
	}
}

// applyWeight sets weight×adjust/activeFlows on every running flow of
// tenant t, reporting whether anything moved.
func (s *shard) applyWeight(t int) bool {
	var flows []*fluid.Flow
	for _, j := range s.running {
		if j.tenant == t {
			flows = append(flows, j.flow)
		}
	}
	if len(flows) == 0 {
		return false
	}
	w := s.c.tenants[t].weight * s.adjust[t] / float64(len(flows))
	changed := false
	for _, f := range flows {
		if diff := f.Weight - w; diff > 1e-9 || diff < -1e-9 {
			f.Weight = w
			changed = true
		}
	}
	return changed
}

// jobDone retires a completed job from the shard's running set and credits
// the tenant's delivered window for reconciliation.
func (s *shard) jobDone(j *job) {
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.window[j.tenant] += j.size
}

// pushDigest sends the per-tenant delivered window to the leader. The
// message rides the lossy control plane: a dropped digest simply loses the
// window (the leader reconciles from what it heard), trading accuracy for
// the bounded state of real sharded schedulers.
func (s *shard) pushDigest() {
	if s.stopped {
		return
	}
	delta := make([]float64, len(s.window))
	any := false
	for t, v := range s.window {
		if v > 0 {
			delta[t] = v
			s.window[t] = 0
			any = true
		}
	}
	if !any {
		return
	}
	if s.c.dropped() {
		s.c.CtrlDrops++
		s.c.Eng.Tracef("cluster", "shard %d digest dropped", s.id)
		return
	}
	leader := s.c.shards[0]
	s.c.Eng.Schedule(s.c.Cfg.CtrlDelay, func() {
		s.c.Digests++
		for t, v := range delta {
			if v > 0 {
				leader.acc[t] += v
			}
		}
	})
}

// reconcile (leader only) compares each active tenant's realized share of
// delivered bytes against its weight-proportional target and broadcasts a
// damped multiplicative correction. Shards apply it to running flows, so
// a tenant starved on one shard is boosted everywhere — inter-host fair
// share without a global scheduler.
func (s *shard) reconcile() {
	if s.stopped {
		return
	}
	var total, wsum float64
	for t, v := range s.acc {
		if v > 0 {
			total += v
			wsum += s.c.tenants[t].weight
		}
	}
	if total <= 0 || wsum <= 0 {
		return
	}
	newAdj := make([]float64, len(s.acc))
	for t := range newAdj {
		newAdj[t] = -1 // sentinel: no update for this tenant
	}
	for t, v := range s.acc {
		if v <= 0 {
			continue
		}
		target := s.c.tenants[t].weight / wsum
		actual := v / total
		// Damped multiplicative correction, clamped so a stale or lossy
		// view can never run a tenant's weight away.
		adj := s.adjust[t] * damp(target/actual)
		newAdj[t] = clamp(adj, 0.25, 4)
		s.acc[t] = 0
	}
	for _, sh := range s.c.shards {
		sh := sh
		if s.c.dropped() {
			s.c.CtrlDrops++
			s.c.Eng.Tracef("cluster", "adjust broadcast to shard %d dropped", sh.id)
			continue
		}
		s.c.Eng.Schedule(s.c.Cfg.CtrlDelay, func() { sh.applyAdjust(newAdj) })
	}
	s.c.Eng.Tracef("cluster", "leader reconciled %d tenants (%.0f bytes)", countUpdates(newAdj), total)
}

// applyAdjust installs the leader's corrections and rebalances every
// tenant whose adjustment moved.
func (s *shard) applyAdjust(adj []float64) {
	if s.stopped {
		return
	}
	s.c.Adjusts++
	var touched []int
	for t, v := range adj {
		if v < 0 || t >= len(s.adjust) {
			continue
		}
		if diff := s.adjust[t] - v; diff > 1e-9 || diff < -1e-9 {
			s.adjust[t] = v
			touched = append(touched, t)
		}
	}
	if len(touched) > 0 {
		s.rebalance(touched)
	}
}

// damp is a square-root step toward the target ratio: corrective but
// stable under the half-interval-old data it acts on.
func damp(ratio float64) float64 {
	if ratio <= 0 {
		return 1
	}
	return math.Sqrt(ratio)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func countUpdates(adj []float64) int {
	n := 0
	for _, v := range adj {
		if v >= 0 {
			n++
		}
	}
	return n
}
