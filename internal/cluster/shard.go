package cluster

import (
	"math"
	"sort"
	"time"

	"e2edt/internal/sim"
)

// shard is one control-plane replica. It owns the hosts assigned to it
// (initially id ≡ host mod K; adoption moves ownership when a controller
// dies): jobs destined to an owned host queue here, admission and tenant
// fair share are enforced here, and per-tenant delivered bytes are pushed
// to the current leader for global reconciliation.
//
// Leadership is lease-based with monotonic terms. The leader broadcasts
// term-stamped leases; every control message that carries authority (lease,
// adjust) is accepted only if its term beats the receiver's view — higher
// term wins, equal terms go to the lower shard id, anything else is
// rejected as stale. A follower whose lease goes silent past LeaseTimeout
// clamps its adjust factors to 1 (degraded mode: local weighted fair share
// only) and runs for leader after a deterministic stagger, so exactly one
// successor emerges per connected component without randomness.
type shard struct {
	c  *Cluster
	id int

	// queue holds jobs awaiting admission, kept sorted by
	// (priority desc, submit time, id) — xfersched's total order.
	queue []*job
	// running holds admitted jobs in admission order.
	running []*job

	// adjust is this shard's copy of the leader's per-tenant weight
	// correction; stale between reconciliations (or longer, when the
	// broadcast drops).
	adjust []float64
	// window accumulates per-tenant delivered bytes since the last digest.
	window []float64

	// acc is leader state: delivered bytes accumulated from every shard's
	// digests during the current reconcile interval. Allocated on all
	// shards — any of them may be elected.
	acc []float64

	// Liveness and leadership.
	alive     bool
	term      int      // highest term seen
	leaderID  int      // who this shard believes leads that term
	isLeader  bool     // this shard holds the lease
	lastLease sim.Time // when authority was last heard from
	degraded  bool     // lease silent past timeout: local fair share only
	candidate bool     // election timer armed

	admitted int
	digestT  *sim.Ticker
	adjustT  *sim.Ticker
	scanT    *sim.Ticker
	leaseT   *sim.Ticker
	electT   *sim.Timer
	stopped  bool
}

func newShard(c *Cluster, id int) *shard {
	return &shard{
		c: c, id: id,
		alive: true, term: 1, leaderID: 0, isLeader: id == 0,
	}
}

// growTenants sizes the per-tenant arrays (dense, so no simulation path
// ever iterates a map).
func (s *shard) growTenants(n int) {
	for len(s.adjust) < n {
		s.adjust = append(s.adjust, 1)
		s.window = append(s.window, 0)
	}
	for len(s.acc) < n {
		s.acc = append(s.acc, 0)
	}
}

// startTickers arms the shard's periodic work: digest pushes to the
// leader, (leader only) lease broadcasts plus adjustment reconciliation
// offset by half an interval so digests land first, and a fast scan that
// drives failure detection, lease checks, and re-admission.
func (s *shard) startTickers() {
	every := s.c.Cfg.ReconcileEvery
	s.digestT = s.c.Eng.NewTicker(every, func(sim.Time) { s.pushDigest() })
	if s.isLeader {
		s.c.Eng.Schedule(every/2, func() {
			if s.stopped || !s.isLeader {
				return
			}
			s.startLeaderDuties()
			s.reconcile()
		})
	}
	s.scanT = s.c.Eng.NewTicker(every/5, func(sim.Time) { s.scan() })
}

// startLeaderDuties arms the lease and reconcile tickers on a (newly)
// leading shard.
func (s *shard) startLeaderDuties() {
	every := s.c.Cfg.ReconcileEvery
	s.adjustT = s.c.Eng.NewTicker(every, func(sim.Time) { s.reconcile() })
	s.leaseT = s.c.Eng.NewTicker(s.c.Cfg.LeaseEvery, func(sim.Time) { s.pushLease() })
}

// stopLeaderDuties disarms them on step-down.
func (s *shard) stopLeaderDuties() {
	if s.adjustT != nil {
		s.adjustT.Stop()
		s.adjustT = nil
	}
	if s.leaseT != nil {
		s.leaseT.Stop()
		s.leaseT = nil
	}
}

// stop disarms every ticker and timer so the event queue can drain.
func (s *shard) stop() {
	s.stopped = true
	if s.digestT != nil {
		s.digestT.Stop()
	}
	if s.scanT != nil {
		s.scanT.Stop()
	}
	if s.electT != nil {
		s.electT.Stop()
	}
	s.stopLeaderDuties()
}

// scan is the shard's fast loop: declare silent hosts dead, watch the
// leader's lease, requeue jobs stranded on declared-dead hosts, then run
// an admission pass.
func (s *shard) scan() {
	if s.stopped || !s.alive {
		return
	}
	s.detectDeadHosts()
	s.checkLease()
	s.reapDead()
	s.admit()
}

// detectDeadHosts declares owned hosts dead once their heartbeats have
// been silent for MissedBeats intervals. The declaration — not the crash —
// is what recovery keys off.
func (s *shard) detectDeadHosts() {
	c := s.c
	now := c.Eng.Now()
	wait := sim.Time(float64(c.Cfg.HeartbeatEvery) * float64(c.Cfg.MissedBeats))
	for h := range c.hosts {
		if c.ownerOf[h] != s.id || c.deadDeclared[h] || !c.hostDown[h] {
			continue
		}
		if now-c.crashedAt[h] >= wait {
			c.deadDeclared[h] = true
			c.declaredAt[h] = now
			c.DeadDeclared++
			c.Eng.Tracef("cluster", "shard %d declares host %d dead (%d beats missed)",
				s.id, h, c.Cfg.MissedBeats)
		}
	}
}

// reapDead requeues running jobs whose source or destination has been
// declared dead. Source crash: the acked prefix survives as a checkpoint
// and a surviving replica takes over. Destination crash: the staged bytes
// died with the host, so the checkpoint resets.
func (s *shard) reapDead() {
	c := s.c
	for i := 0; i < len(s.running); {
		j := s.running[i]
		if c.deadDeclared[j.dst] {
			s.requeue(j, true, "destination dead")
			continue
		}
		if c.deadDeclared[j.src] {
			s.requeue(j, false, "source dead")
			continue
		}
		i++
	}
}

// requeue cancels a running job's transfer and returns it to the admission
// queue with its checkpoint updated. Cancel never fires OnComplete, so a
// requeued job cannot also finish — the exactly-once edge.
func (s *shard) requeue(j *job, dstLost bool, why string) {
	c := s.c
	if dstLost {
		j.ckpt = 0
	} else {
		c.FSim.Sync()
		j.ckpt += j.xfer.Transferred()
	}
	c.FSim.Cancel(j.xfer)
	c.releaseClass(j)
	j.xfer, j.flow, j.hops = nil, nil, nil
	c.hosts[j.src].srcActive--
	c.hosts[j.dst].dstActive--
	s.removeRunning(j)
	c.JobsRequeued++
	c.Eng.Tracef("cluster", "shard %d requeues job %d (%s, ckpt %.0f/%.0f)",
		s.id, j.id, why, j.ckpt, j.size)
	s.insert(j)
}

// removeRunning drops j from the running set.
func (s *shard) removeRunning(j *job) {
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}

// checkLease notices a silent leader: past LeaseTimeout the shard enters
// degraded mode and arms a staggered candidacy. The stagger —
// ElectStagger × (id+1) — makes the lowest-id survivor in each connected
// component win deterministically; its announce cancels the rest.
func (s *shard) checkLease() {
	c := s.c
	if s.isLeader {
		return
	}
	if c.Eng.Now()-s.lastLease <= sim.Time(c.Cfg.LeaseTimeout) {
		return
	}
	if !s.degraded {
		s.enterDegraded()
	}
	if !s.candidate {
		s.candidate = true
		delay := sim.Duration(float64(c.Cfg.ElectStagger) * float64(s.id+1))
		c.Eng.Tracef("cluster", "shard %d lease expired (leader %d term %d); candidacy in %.2fs",
			s.id, s.leaderID, s.term, float64(delay))
		s.electT = c.Eng.NewTimer(delay, func(sim.Time) { s.runElection() })
	}
}

// runElection makes this shard the leader of a new term, unless a valid
// lease arrived while the candidacy timer ran.
func (s *shard) runElection() {
	c := s.c
	if s.stopped || !s.alive || s.isLeader {
		return
	}
	s.candidate = false
	if c.Eng.Now()-s.lastLease <= sim.Time(c.Cfg.LeaseTimeout) {
		return // a leader spoke up in the meantime
	}
	s.term++
	s.isLeader = true
	s.leaderID = s.id
	s.lastLease = c.Eng.Now()
	c.Elections++
	c.Eng.Tracef("cluster", "shard %d elected leader (term %d)", s.id, s.term)
	if s.degraded {
		s.exitDegraded()
	}
	s.startLeaderDuties()
	s.pushLease()
}

// pushLease broadcasts the leader's term-stamped lease to every other
// alive shard over the lossy control plane.
func (s *shard) pushLease() {
	if s.stopped || !s.alive || !s.isLeader {
		return
	}
	term, from := s.term, s.id
	for _, sh := range s.c.shards {
		if sh == s {
			continue
		}
		sh := sh
		s.c.sendCtrl(s, sh, func() { sh.onLease(term, from) })
	}
}

// onLease applies the term-ordering acceptance rule to a lease message.
func (s *shard) onLease(term, from int) {
	if s.stopped || !s.alive {
		return
	}
	if !s.acceptAuthority(term, from, "lease") {
		return
	}
	s.renewLease(term, from)
}

// acceptAuthority decides whether a term-stamped message carries current
// authority: higher term always wins; an equal term wins only for the
// leader already believed (renewal) or a lower id (split-lease
// resolution). Everything else is stale and rejected.
func (s *shard) acceptAuthority(term, from int, what string) bool {
	if term > s.term {
		return true
	}
	if term == s.term && (from == s.leaderID || from < s.leaderID) {
		return true
	}
	if what == "lease" {
		s.c.StaleLeases++
	} else {
		s.c.StaleAdjusts++
	}
	s.c.Eng.Tracef("cluster", "shard %d rejects stale %s from %d (term %d < %d/leader %d)",
		s.id, what, from, term, s.term, s.leaderID)
	return false
}

// renewLease installs (term, from) as current authority: steps down a
// deposed local leadership, cancels any candidacy, exits degraded mode.
func (s *shard) renewLease(term, from int) {
	if s.isLeader && from != s.id {
		s.isLeader = false
		s.stopLeaderDuties()
		s.c.Eng.Tracef("cluster", "shard %d steps down for leader %d (term %d)", s.id, from, term)
	}
	s.term = term
	s.leaderID = from
	s.lastLease = s.c.Eng.Now()
	if s.candidate {
		s.candidate = false
		if s.electT != nil {
			s.electT.Stop()
		}
	}
	if s.degraded {
		s.exitDegraded()
	}
}

// enterDegraded clamps every adjust factor to 1: with no live leader the
// shard falls back to local weighted fair share, which is stable (if
// globally unfair) until authority returns.
func (s *shard) enterDegraded() {
	s.degraded = true
	s.c.DegradedIn++
	s.c.Eng.Tracef("cluster", "shard %d enters degraded mode (lease silent)", s.id)
	var touched []int
	for t, v := range s.adjust {
		if v != 1 {
			s.adjust[t] = 1
			touched = append(touched, t)
		}
	}
	if len(touched) > 0 {
		s.rebalance(touched)
	}
}

// exitDegraded ends degraded mode; the next adjust broadcast restores the
// global correction.
func (s *shard) exitDegraded() {
	s.degraded = false
	s.c.DegradedOut++
	s.c.Eng.Tracef("cluster", "shard %d exits degraded mode (term %d leader %d)", s.id, s.term, s.leaderID)
}

// order is the admission total order: priority desc, then submit time,
// then id — a deterministic tie-break chain identical to xfersched's.
func order(a, b *job) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if a.submit != b.submit {
		return a.submit < b.submit
	}
	return a.id < b.id
}

// insert places a job into the sorted queue without an admission pass
// (requeues and adoptions batch their passes).
func (s *shard) insert(j *job) {
	j.state = jobQueued
	i := sort.Search(len(s.queue), func(i int) bool { return order(j, s.queue[i]) })
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = j
}

// enqueue inserts a delivered job into the sorted queue and runs an
// admission pass.
func (s *shard) enqueue(j *job) {
	s.insert(j)
	s.c.Eng.Tracef("cluster", "shard %d queues job %d tenant %d dst %d", s.id, j.id, j.tenant, j.dst)
	s.admit()
}

// pickSource chooses the replica to read from: the nearest (same host,
// then same leaf, then same pod, then anywhere) replica with source
// capacity, ties broken by lighter load then lower host id. Declared-dead
// hosts are never picked. Returns -1 when every live replica is saturated
// or none are live.
func (s *shard) pickSource(j *job) int {
	best, bestScore, bestLoad := -1, 0, 0
	for _, r := range s.c.datasets[j.dataset] {
		if s.c.deadDeclared[r] {
			continue
		}
		hn := s.c.hosts[r]
		if hn.srcActive >= s.c.Cfg.MaxPerHost {
			continue
		}
		score := s.c.locality(r, j.dst)
		if s.c.hostSuspect[r] {
			// A limping replica is worse than any healthy locality tier:
			// read from it only when nothing healthy holds the data.
			score += localityCore + 1
		}
		if best == -1 || score < bestScore ||
			(score == bestScore && (hn.srcActive < bestLoad ||
				(hn.srcActive == bestLoad && r < best))) {
			best, bestScore, bestLoad = r, score, hn.srcActive
		}
	}
	return best
}

// hopeless reports whether j can never run again: its destination (or its
// entire replica set) has been declared dead for longer than GiveUpAfter.
// The grace period lets a restarted host reclaim its queue.
func (s *shard) hopeless(j *job) bool {
	c := s.c
	now := c.Eng.Now()
	if c.deadDeclared[j.dst] {
		return now-c.declaredAt[j.dst] > sim.Time(c.Cfg.GiveUpAfter)
	}
	newest := sim.Time(-1)
	for _, r := range c.datasets[j.dataset] {
		if !c.deadDeclared[r] {
			return false
		}
		if c.declaredAt[r] > newest {
			newest = c.declaredAt[r]
		}
	}
	return now-newest > sim.Time(c.Cfg.GiveUpAfter)
}

// giveUp marks a queued job lost: its destination or every replica stayed
// dead past the grace period.
func (s *shard) giveUp(j *job) {
	j.state = jobLost
	s.c.JobsLost++
	s.c.Eng.Tracef("cluster", "shard %d gives up job %d (dead hosts past grace)", s.id, j.id)
	if s.c.OnJobLost != nil {
		s.c.OnJobLost(j.id, s.c.Eng.Now())
	}
	s.c.jobFinished()
}

// admit runs one admission pass: walk the queue in order, start every job
// whose destination and chosen source have capacity, then rebalance the
// fair-share weights of tenants that gained flows. Jobs waiting on
// declared-dead hosts are held (or abandoned past the grace period). The
// pass is wrapped in a wall-clock stopwatch feeding the decision-latency
// histogram — the measurement is observational only and never enters the
// simulation.
func (s *shard) admit() {
	if s.stopped || !s.alive || len(s.queue) == 0 {
		return
	}
	t0 := time.Now()
	var touched []int
	kept := s.queue[:0]
	for _, j := range s.queue {
		if s.shedHeld(j) {
			kept = append(kept, j)
			continue
		}
		if s.c.deadDeclared[j.dst] {
			if s.hopeless(j) {
				s.giveUp(j)
			} else {
				kept = append(kept, j)
			}
			continue
		}
		if s.c.hosts[j.dst].dstActive >= s.c.Cfg.MaxPerHost {
			kept = append(kept, j)
			continue
		}
		src := s.pickSource(j)
		if src < 0 {
			if s.hopeless(j) {
				s.giveUp(j)
			} else {
				kept = append(kept, j)
			}
			continue
		}
		j.src = src
		s.c.start(j, s)
		s.running = append(s.running, j)
		s.admitted++
		touched = append(touched, j.tenant)
	}
	s.queue = kept
	if len(touched) > 0 {
		s.rebalance(touched)
	}
	s.c.DecisionLat.Observe(float64(time.Since(t0).Nanoseconds()) / 1e3)
}

// rebalance recomputes flow weights for the given tenants so that each
// tenant's aggregate share in this shard tracks weight × adjust regardless
// of how many jobs it has running. One Reschedule propagates the batch:
// weight writes are ordinary parameter changes to the dirty scan, so the
// solver refills only the bottleneck subgraphs the touched flows cross
// instead of invalidating the whole network.
func (s *shard) rebalance(tenants []int) {
	sort.Ints(tenants)
	changed := false
	prev := -1
	for _, t := range tenants {
		if t == prev {
			continue
		}
		prev = t
		if s.applyWeight(t) {
			changed = true
		}
	}
	if changed {
		s.c.FSim.Reschedule()
	}
}

// applyWeight sets weight×adjust/runningJobs on every running flow of
// tenant t, reporting whether anything moved. Pooled jobs share a class
// flow whose per-member weight is exactly the per-job share, so writing the
// same w to each member's flow is idempotent. A tenant whose last job
// completed in this same reconcile tick has no running jobs even though its
// digest just arrived — the n==0 guard keeps that race from dividing by
// zero — and a job mid-requeue can sit in the running set with a nil flow,
// which must not be dereferenced or counted toward the split.
func (s *shard) applyWeight(t int) bool {
	n := 0
	for _, j := range s.running {
		if j.tenant == t && j.flow != nil {
			n++
		}
	}
	if n == 0 {
		return false
	}
	w := s.c.tenants[t].weight * s.adjust[t] / float64(n)
	changed := false
	for _, j := range s.running {
		if j.tenant != t || j.flow == nil {
			continue
		}
		if diff := j.flow.Weight - w; diff > 1e-9 || diff < -1e-9 {
			j.flow.Weight = w
			changed = true
		}
	}
	return changed
}

// jobDone retires a completed job from the shard's running set and credits
// the tenant's delivered window for reconciliation.
func (s *shard) jobDone(j *job) {
	s.removeRunning(j)
	s.window[j.tenant] += j.size
}

// pushDigest sends the per-tenant delivered window to the believed leader.
// The message rides the lossy control plane: a dropped digest simply loses
// the window (the leader reconciles from what it heard), trading accuracy
// for the bounded state of real sharded schedulers. With no live leader
// the window is retained for the successor.
func (s *shard) pushDigest() {
	if s.stopped || !s.alive {
		return
	}
	if s.isLeader {
		// Leader folds its own window locally — no RPC, no loss coin.
		for t, v := range s.window {
			if v > 0 {
				s.acc[t] += v
				s.window[t] = 0
			}
		}
		return
	}
	target := s.c.shards[s.leaderID]
	if !target.alive {
		return // hold the window until a successor takes the lease
	}
	delta := make([]float64, len(s.window))
	any := false
	for t, v := range s.window {
		if v > 0 {
			delta[t] = v
			s.window[t] = 0
			any = true
		}
	}
	if !any {
		return
	}
	if !s.c.sendCtrl(s, target, func() {
		s.c.Digests++
		for t, v := range delta {
			if v > 0 {
				target.acc[t] += v
			}
		}
	}) {
		s.c.Eng.Tracef("cluster", "shard %d digest dropped", s.id)
	}
}

// reconcile (leader only) compares each active tenant's realized share of
// delivered bytes against its weight-proportional target and broadcasts a
// damped multiplicative correction, stamped with the leader's term so
// deposed leaders' broadcasts die on arrival. Shards apply it to running
// flows, so a tenant starved on one shard is boosted everywhere — inter-
// host fair share without a global scheduler.
func (s *shard) reconcile() {
	if s.stopped || !s.alive || !s.isLeader {
		return
	}
	var total, wsum float64
	for t, v := range s.acc {
		if v > 0 {
			total += v
			wsum += s.c.tenants[t].weight
		}
	}
	if total <= 0 || wsum <= 0 {
		return
	}
	newAdj := make([]float64, len(s.acc))
	for t := range newAdj {
		newAdj[t] = -1 // sentinel: no update for this tenant
	}
	for t, v := range s.acc {
		if v <= 0 {
			continue
		}
		target := s.c.tenants[t].weight / wsum
		actual := v / total
		// Damped multiplicative correction, clamped so a stale or lossy
		// view can never run a tenant's weight away.
		adj := s.adjust[t] * damp(target/actual)
		newAdj[t] = clamp(adj, 0.25, 4)
		s.acc[t] = 0
	}
	term, from := s.term, s.id
	s.applyAdjust(term, from, newAdj) // self-apply without RPC
	for _, sh := range s.c.shards {
		if sh == s {
			continue
		}
		sh := sh
		if !s.c.sendCtrl(s, sh, func() { sh.applyAdjust(term, from, newAdj) }) {
			s.c.Eng.Tracef("cluster", "adjust broadcast to shard %d dropped", sh.id)
		}
	}
	s.c.Eng.Tracef("cluster", "leader %d reconciled %d tenants (%.0f bytes, term %d)",
		s.id, countUpdates(newAdj), total, term)
}

// applyAdjust installs the leader's corrections — after the same term
// acceptance rule leases use, so a deposed leader's broadcast is rejected
// and counted. A valid adjust also renews the lease: it is proof the
// leader lives.
func (s *shard) applyAdjust(term, from int, adj []float64) {
	if s.stopped || !s.alive {
		return
	}
	if !s.acceptAuthority(term, from, "adjust") {
		return
	}
	if from != s.id {
		s.renewLease(term, from)
	}
	s.c.Adjusts++
	var touched []int
	for t, v := range adj {
		if v < 0 || t >= len(s.adjust) {
			continue
		}
		if diff := s.adjust[t] - v; diff > 1e-9 || diff < -1e-9 {
			s.adjust[t] = v
			touched = append(touched, t)
		}
	}
	if len(touched) > 0 {
		s.rebalance(touched)
	}
}

// damp is a square-root step toward the target ratio: corrective but
// stable under the half-interval-old data it acts on.
func damp(ratio float64) float64 {
	if ratio <= 0 {
		return 1
	}
	return math.Sqrt(ratio)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func countUpdates(adj []float64) int {
	n := 0
	for _, v := range adj {
		if v >= 0 {
			n++
		}
	}
	return n
}
