package cluster

// Cluster-scale gray-failure handling: a limping host — cores slowed by a
// LimpHost fault, heartbeats intact — is invisible to the binary death
// detector, so the control plane scores every host's delivered-byte rate
// against the cohort median and applies hysteresis before a verdict. A
// suspect verdict does two things: admission penalizes the host as a
// replica source, and the shed valve holds the lowest-priority queued jobs
// until the cohort is healthy again, so scarce healthy capacity serves the
// work that matters most. Everything is gated on Cfg.Gray.Enabled: with the
// zero value no ticker is armed, no counters move, and legacy traces replay
// bit-identically.

import (
	"math"
	"sort"

	"e2edt/internal/sim"
)

// GrayConfig tunes the host outlier scorer and the admission shed valve.
type GrayConfig struct {
	// Enabled arms the scorer ticker and the shed valve. Off (the zero
	// value), the cluster performs no gray accounting at all.
	Enabled bool
	// Every is the scoring cadence (default 0.25).
	Every sim.Duration
	// Decay is the EWMA smoothing factor for per-host delivered-rate
	// estimates (default 0.3).
	Decay float64
	// SuspectBelow marks a host suspect when its per-job delivered rate
	// falls below this fraction of the cohort median (default 0.5).
	SuspectBelow float64
	// ClearAbove exonerates a suspect once its ratio recovers past this
	// fraction (default 0.8); the gap to SuspectBelow is the hysteresis
	// band.
	ClearAbove float64
	// SuspectAfter is how many consecutive breaching scores convict
	// (default 2); ClearAfter how many clean scores exonerate (default 2).
	SuspectAfter int
	ClearAfter   int
	// MinSamples is how many rate observations a host needs before it joins
	// the scoring cohort (default 3).
	MinSamples int
	// ShedBelow is the admission priority floor while any host is under a
	// gray verdict: queued jobs with priority < ShedBelow are held — shed —
	// until the cohort is healthy again, or until they have waited past
	// GiveUpAfter (shedding defers work, it never starves it). Default 1,
	// so the lowest service class sheds first.
	ShedBelow int
}

// withDefaults fills zero fields.
func (g GrayConfig) withDefaults() GrayConfig {
	if g.Every <= 0 {
		g.Every = 0.25
	}
	if g.Decay <= 0 || g.Decay > 1 {
		g.Decay = 0.3
	}
	if g.SuspectBelow <= 0 {
		g.SuspectBelow = 0.5
	}
	if g.ClearAbove <= 0 {
		g.ClearAbove = 0.8
	}
	if g.SuspectAfter <= 0 {
		g.SuspectAfter = 2
	}
	if g.ClearAfter <= 0 {
		g.ClearAfter = 2
	}
	if g.MinSamples <= 0 {
		g.MinSamples = 3
	}
	if g.ShedBelow <= 0 {
		g.ShedBelow = 1
	}
	return g
}

// hostProgress returns per-host landed bytes plus the in-flight progress of
// every inbound transfer, so the rate signal is smooth instead of
// completion-quantized (a host receiving one large job would otherwise read
// zero for seconds and then spike).
func (c *Cluster) hostProgress() []float64 {
	prog := make([]float64, len(c.hosts))
	for i, hn := range c.hosts {
		prog[i] = hn.delivered.Value()
	}
	for _, sh := range c.shards {
		for _, j := range sh.running {
			if j.xfer != nil {
				prog[j.dst] += j.xfer.Transferred()
			}
		}
	}
	return prog
}

// scoreHosts runs one peer-comparison round: per-host delivered rate
// normalized by active inbound jobs, EWMA-smoothed, judged against the
// cohort median with hysteresis in both directions. Crashed or declared-dead
// hosts are reset and sit the round out — the binary detector owns them.
func (c *Cluster) scoreHosts(now sim.Time) {
	if c.done {
		return
	}
	g := c.Cfg.Gray
	c.FSim.Sync()
	dt := float64(g.Every)
	prog := c.hostProgress()

	for i, hn := range c.hosts {
		if c.hostDown[i] || c.deadDeclared[i] {
			c.hostProg[i] = prog[i]
			c.hostRate[i].Reset()
			c.hostBreach[i], c.hostClear[i] = 0, 0
			c.hostSuspect[i] = false
			c.hostRatio[i] = 1
			continue
		}
		delta := prog[i] - c.hostProg[i]
		c.hostProg[i] = prog[i]
		// An idle host with no delivery is no evidence either way; only
		// hosts carrying (or just having finished) inbound work are judged.
		if hn.dstActive > 0 || delta > 0 {
			c.hostRate[i].Observe(delta / dt / math.Max(1, float64(hn.dstActive)))
		}
	}

	var cohort []int
	for i := range c.hosts {
		if !c.hostDown[i] && !c.deadDeclared[i] && c.hostRate[i].Samples() >= g.MinSamples {
			cohort = append(cohort, i)
		}
	}
	if len(cohort) < 2 {
		return
	}
	rates := make([]float64, len(cohort))
	for k, i := range cohort {
		rates[k] = c.hostRate[i].Value()
	}
	med := medianOf(rates)
	if med <= 0 {
		return
	}
	for _, i := range cohort {
		ratio := c.hostRate[i].Value() / med
		c.hostRatio[i] = ratio
		switch {
		case !c.hostSuspect[i] && ratio < g.SuspectBelow:
			c.hostClear[i] = 0
			c.hostBreach[i]++
			if c.hostBreach[i] >= g.SuspectAfter {
				c.hostSuspect[i] = true
				c.hostBreach[i] = 0
				c.HostSuspects++
				if c.firstHostSus < 0 {
					c.firstHostSus = now
				}
				c.Eng.Tracef("cluster", "host %d gray-suspect (rate ratio %.2f)", i, ratio)
			}
		case c.hostSuspect[i] && ratio > g.ClearAbove:
			c.hostBreach[i] = 0
			c.hostClear[i]++
			if c.hostClear[i] >= g.ClearAfter {
				c.hostSuspect[i] = false
				c.hostClear[i] = 0
				c.HostClears++
				c.Eng.Tracef("cluster", "host %d gray verdict cleared (rate ratio %.2f)", i, ratio)
			}
		default:
			c.hostBreach[i], c.hostClear[i] = 0, 0
		}
	}

	shedding := false
	for _, s := range c.hostSuspect {
		if s {
			shedding = true
			break
		}
	}
	if shedding != c.shedding {
		c.shedding = shedding
		if shedding {
			c.Eng.Tracef("cluster", "shed valve closes: priorities below %d held", g.ShedBelow)
		} else {
			c.Eng.Tracef("cluster", "shed valve reopens")
		}
		if !shedding {
			// Freed verdicts unblock held jobs everywhere, not just on the
			// shards that happen to scan next.
			for _, sh := range c.shards {
				sh.admit()
			}
		}
	}
}

// shedHeld reports whether the valve holds job j this admission pass, and
// counts each job's first shed exactly once. A job that has already waited
// past GiveUpAfter passes the valve regardless: shedding trades latency for
// headroom, it never becomes starvation.
func (s *shard) shedHeld(j *job) bool {
	c := s.c
	g := c.Cfg.Gray
	if !g.Enabled || !c.shedding || j.priority >= g.ShedBelow {
		return false
	}
	if c.Eng.Now()-j.submit > sim.Time(c.Cfg.GiveUpAfter) {
		return false
	}
	if !j.shed {
		j.shed = true
		c.Shed++
		c.Eng.Tracef("cluster", "shard %d sheds job %d (priority %d)", s.id, j.id, j.priority)
	}
	return true
}

// SuspectHosts returns the ids of hosts currently under a gray verdict.
func (c *Cluster) SuspectHosts() []int {
	var out []int
	for i, s := range c.hostSuspect {
		if s {
			out = append(out, i)
		}
	}
	return out
}

// FirstHostSuspectAt returns the virtual time of the first host suspect
// verdict and whether one ever happened.
func (c *Cluster) FirstHostSuspectAt() (sim.Time, bool) {
	if c.firstHostSus < 0 {
		return 0, false
	}
	return c.firstHostSus, true
}

// Shedding reports whether the admission valve is currently closed.
func (c *Cluster) Shedding() bool { return c.shedding }

// medianOf returns the median of xs, averaging the middle pair for even
// lengths. xs is scratch and may be reordered.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
