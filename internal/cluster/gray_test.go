package cluster

import (
	"reflect"
	"strings"
	"testing"

	"e2edt/internal/faults"
	"e2edt/internal/sim"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

// limpWorkload attaches a uniform inbound stream to every host: nJobs jobs
// of size bytes each, arrivals spaced 0.3s apart, priorities alternating
// 0/1, every dataset replicated on two other hosts. Uniform load is what
// makes the cohort median a meaningful yardstick.
func limpWorkload(c *Cluster, nJobs int, size float64) {
	hosts := c.Hosts()
	c.AddTenants(4)
	for h := 0; h < hosts; h++ {
		c.AddDataset([]int{(h + 1) % hosts, (h + hosts/2) % hosts})
	}
	for k := 0; k < nJobs; k++ {
		for h := 0; h < hosts; h++ {
			c.Submit(sim.Time(float64(k)*0.3), (h+k)%4, h, h, size, k%2)
		}
	}
}

// limpRun builds an 8-host cluster with the given gray config, limps host 3
// to 2% core speed over (1s, 5s), and drains the workload under a trace
// recorder.
func limpRun(t *testing.T, gray GrayConfig, probe func(c *Cluster)) (*Cluster, *trace.Recorder) {
	t.Helper()
	eng := sim.NewEngine()
	rec := &trace.Recorder{}
	eng.SetTracer(rec)
	c, err := New(eng, Config{Hosts: 8, Shards: 2, Seed: 9, Gray: gray})
	if err != nil {
		t.Fatal(err)
	}
	limpWorkload(c, 20, 300*float64(units.MB))
	plan := &faults.Plan{}
	plan.LimpWindow(3, 1.0, 4, 0.02)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	plan.ApplyTo(eng, c)
	if probe != nil {
		probe(c)
	}
	c.Run()
	return c, rec
}

// TestLimpHostSuspectShedRecover is the cluster tentpole scenario: a host
// limps at 2% core speed with heartbeats intact. The binary death detector
// must stay silent, the outlier scorer must suspect the host, the shed
// valve must hold low-priority admissions while the verdict stands, and
// once the limp clears the verdict and the valve must both recover — with
// every job delivered exactly once and the whole timeline bit-replayable.
func TestLimpHostSuspectShedRecover(t *testing.T) {
	probe := func(c *Cluster) {
		c.Eng.At(4.5, func() {
			// Host 3 must be under a verdict; collateral suspects are
			// legitimate (a host fed by the limping replica really does
			// deliver slowly until the source penalty steers away).
			found := false
			for _, h := range c.SuspectHosts() {
				if h == 3 {
					found = true
				}
			}
			if !found {
				t.Errorf("SuspectHosts at 4.5s = %v, want host 3 included", c.SuspectHosts())
			}
			if !c.Shedding() {
				t.Error("shed valve open at 4.5s with a suspect host")
			}
		})
	}
	c, rec1 := limpRun(t, GrayConfig{Enabled: true}, probe)

	if c.HostLimps != 1 {
		t.Fatalf("HostLimps = %d, want 1", c.HostLimps)
	}
	// REGRESSION: a limping host is degraded, not dead — the heartbeat
	// detector must never declare it.
	if c.HostFails != 0 || c.DeadDeclared != 0 {
		t.Fatalf("binary detector fired on a limping host: fails=%d declared=%d",
			c.HostFails, c.DeadDeclared)
	}
	if c.HostSuspects == 0 {
		t.Fatal("limping host never suspected")
	}
	at, ok := c.FirstHostSuspectAt()
	if !ok || at <= 1 {
		t.Fatalf("FirstHostSuspectAt = (%v, %v), want after the limp at 1s", at, ok)
	}
	if at-1 > 5 {
		t.Fatalf("detection latency %.2fs exceeds 5s", float64(at-1))
	}
	if c.Shed == 0 {
		t.Fatal("shed valve never held a low-priority job")
	}
	if c.HostClears == 0 {
		t.Fatal("verdict never cleared after the limp lifted")
	}
	if c.Shedding() {
		t.Fatal("shed valve still closed at end of run")
	}
	if c.JobsLost != 0 {
		t.Fatalf("shedding lost %d jobs — the valve must defer, not drop", c.JobsLost)
	}
	if err := c.VerifyExactlyOnce(); err != nil {
		t.Fatal(err)
	}

	// Bit-identical replay: the scorer, valve, and limp injection are all
	// on the virtual clock.
	_, rec2 := limpRun(t, GrayConfig{Enabled: true}, nil)
	if len(rec1.Events) == 0 || !reflect.DeepEqual(rec1.Events, rec2.Events) {
		t.Fatalf("gray cluster replay diverged: %d vs %d events",
			len(rec1.Events), len(rec2.Events))
	}
}

// TestLimpClusterGrayDisabledInert: with Gray off the limp still bites
// physically, but nothing is scored, nothing is shed, and the run still
// delivers exactly once — the legacy contract.
func TestLimpClusterGrayDisabledInert(t *testing.T) {
	c, rec := limpRun(t, GrayConfig{}, nil)
	if c.HostLimps != 1 {
		t.Fatalf("HostLimps = %d, want 1", c.HostLimps)
	}
	if c.HostSuspects != 0 || c.HostClears != 0 || c.Shed != 0 {
		t.Fatalf("gray counters moved while disabled: suspects=%d clears=%d shed=%d",
			c.HostSuspects, c.HostClears, c.Shed)
	}
	if c.Shedding() {
		t.Fatal("shed valve closed while gray disabled")
	}
	if err := c.VerifyExactlyOnce(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range rec.Events {
		if ev.Subsys == "cluster" && (strings.Contains(ev.Msg, "gray-suspect") || strings.Contains(ev.Msg, "shed valve")) {
			t.Fatalf("gray-off run produced a gray verdict: %+v", ev)
		}
	}
}
