package cluster

import (
	"fmt"
	"testing"

	"e2edt/internal/faults"
	"e2edt/internal/sim"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

// --- lease/term state machine ---------------------------------------------

// TestLeaseTermStateMachine pins the authority acceptance rule on a shard
// that never runs: higher terms win, equal terms renew the believed leader
// or defer to a lower id, and everything else is rejected and counted.
func TestLeaseTermStateMachine(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Hosts: 4, Shards: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(4)
	s1 := c.shards[1]

	// Renewal from the believed leader.
	s1.onLease(1, 0)
	if s1.term != 1 || s1.leaderID != 0 {
		t.Fatalf("renewal moved the view: term=%d leader=%d", s1.term, s1.leaderID)
	}
	// Equal term from a higher id than the believed leader: stale.
	s1.onLease(1, 2)
	if c.StaleLeases != 1 || s1.leaderID != 0 {
		t.Fatalf("stale lease accepted: stale=%d leader=%d", c.StaleLeases, s1.leaderID)
	}
	// Adjust from an older term: rejected, counted separately, not applied.
	s1.applyAdjust(0, 0, []float64{2, -1, -1, -1})
	if c.StaleAdjusts != 1 || c.Adjusts != 0 || s1.adjust[0] != 1 {
		t.Fatalf("stale adjust leaked through: staleAdj=%d adjusts=%d adjust[0]=%g",
			c.StaleAdjusts, c.Adjusts, s1.adjust[0])
	}
	// Higher term always wins, even from a higher id.
	s1.onLease(2, 3)
	if s1.term != 2 || s1.leaderID != 3 {
		t.Fatalf("higher term rejected: term=%d leader=%d", s1.term, s1.leaderID)
	}
	// Equal term, lower id: split-lease resolution switches the leader.
	s1.onLease(2, 1)
	if s1.leaderID != 1 {
		t.Fatalf("equal-term lower id not preferred: leader=%d", s1.leaderID)
	}
	// The deposed higher-id leader of the same term is now stale.
	s1.onLease(2, 3)
	if c.StaleLeases != 2 || s1.leaderID != 1 {
		t.Fatalf("deposed leader re-accepted: stale=%d leader=%d", c.StaleLeases, s1.leaderID)
	}
	// A valid adjust stamped with the current term installs and renews.
	s1.applyAdjust(2, 1, []float64{0.5, -1, -1, -1})
	if c.Adjusts != 1 || s1.adjust[0] != 0.5 {
		t.Fatalf("valid adjust not applied: adjusts=%d adjust[0]=%g", c.Adjusts, s1.adjust[0])
	}
}

// TestSplitLeaseStepDown resolves a two-leader split directly: the
// higher-id leader steps down when the lower-id leader's equal-term lease
// arrives, and ignores an equal-term lease from a higher id.
func TestSplitLeaseStepDown(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Hosts: 4, Shards: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(4)
	s2 := c.shards[2]
	s2.term, s2.leaderID, s2.isLeader = 5, 2, true

	// An equal-term lease from a higher id does not depose the leader.
	s2.onLease(5, 3)
	if !s2.isLeader || c.StaleLeases != 1 {
		t.Fatalf("higher-id lease deposed the leader: leader=%v stale=%d", s2.isLeader, c.StaleLeases)
	}
	// An equal-term lease from a lower id does.
	s2.onLease(5, 1)
	if s2.isLeader || s2.leaderID != 1 || s2.term != 5 {
		t.Fatalf("split lease unresolved: isLeader=%v leader=%d term=%d",
			s2.isLeader, s2.leaderID, s2.term)
	}
}

// --- host crash-stop recovery ----------------------------------------------

// TestSourceCrashResumesFromCheckpoint: the chosen replica host dies
// mid-transfer; the job must resume on the surviving replica from the
// acked offset, not from zero, and complete exactly once.
func TestSourceCrashResumesFromCheckpoint(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Hosts: 8, Shards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(1)
	d := c.AddDataset([]int{0, 1}) // locality tie → lower id → host 0 chosen
	size := float64(units.GB)
	j := c.Submit(0, 0, d, 4, size, 0)

	plan := &faults.Plan{}
	plan.HostOutage(0, 0.5, 5) // crash mid-transfer, restart long after the job is done
	plan.ApplyTo(eng, c)
	c.Run()

	if j.state != jobDone || c.completions[j.id] != 1 {
		t.Fatalf("job state=%d completions=%d, want done exactly once", j.state, c.completions[j.id])
	}
	if c.HostFails != 1 || c.DeadDeclared != 1 || c.JobsRequeued == 0 {
		t.Fatalf("failure plane idle: fails=%d declared=%d requeued=%d",
			c.HostFails, c.DeadDeclared, c.JobsRequeued)
	}
	if j.ckpt <= 0 || j.ckpt >= size {
		t.Fatalf("source crash must preserve a partial checkpoint, got %.0f of %.0f", j.ckpt, size)
	}
	if j.src != 1 {
		t.Fatalf("resume picked src %d, want surviving replica 1", j.src)
	}
	if err := c.VerifyExactlyOnce(); err != nil {
		t.Fatal(err)
	}
}

// TestDestinationCrashRestartsFromZero: the destination dies mid-transfer;
// its staging memory is gone, so the checkpoint resets and the job reruns
// in full after the host restarts — still exactly once.
func TestDestinationCrashRestartsFromZero(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Hosts: 8, Shards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(1)
	d := c.AddDataset([]int{0, 1})
	size := float64(units.GB)
	j := c.Submit(0, 0, d, 4, size, 0)

	plan := &faults.Plan{}
	plan.HostOutage(4, 0.5, 3) // dst crashes, restarts inside the grace period
	plan.ApplyTo(eng, c)
	c.Run()

	if j.state != jobDone || c.completions[j.id] != 1 {
		t.Fatalf("job state=%d completions=%d, want done exactly once", j.state, c.completions[j.id])
	}
	if j.ckpt != 0 {
		t.Fatalf("destination crash must zero the checkpoint, got %.0f", j.ckpt)
	}
	if c.HostRestores != 1 || c.JobsRequeued == 0 {
		t.Fatalf("restart path idle: restores=%d requeued=%d", c.HostRestores, c.JobsRequeued)
	}
	if err := c.VerifyExactlyOnce(); err != nil {
		t.Fatal(err)
	}
}

// TestPermanentDeadDestinationGivesUp: a destination that never comes back
// must not wedge the run — past GiveUpAfter the job is honestly lost.
func TestPermanentDeadDestinationGivesUp(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Hosts: 8, Shards: 2, Seed: 3, GiveUpAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(1)
	d := c.AddDataset([]int{0, 1})
	j := c.Submit(0, 0, d, 4, float64(units.GB), 0)

	plan := &faults.Plan{}
	plan.KillHost(4, 0.2)
	plan.ApplyTo(eng, c)
	c.Run()

	if j.state != jobLost || c.JobsLost != 1 {
		t.Fatalf("job state=%d lost=%d, want lost exactly one", j.state, c.JobsLost)
	}
	if c.completions[j.id] != 0 {
		t.Fatalf("lost job completed %d times", c.completions[j.id])
	}
	if err := c.VerifyExactlyOnce(); err != nil {
		t.Fatal(err)
	}
}

// --- controller failover and partitions ------------------------------------

// runChaosHashed runs one seeded chaos scenario (host outage + leader kill
// + partition) under a hashing tracer.
func runChaosHashed(t *testing.T, hosts, shards int, seed int64, build func(*Plan)) (string, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	h := trace.NewHasher()
	eng.SetTracer(h)
	c, err := New(eng, Config{Hosts: hosts, Shards: shards, DropPct: 5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := Generate(c, WorkloadConfig{
		Tenants: 2 * hosts, Jobs: 5 * hosts, Seed: seed, Window: 15,
	}); err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{}
	build(&Plan{plan})
	plan.ApplyTo(eng, c)
	c.Run()
	return h.Sum(), c
}

// Plan wraps faults.Plan so scenario builders read naturally in tests.
type Plan struct{ *faults.Plan }

// TestLeaderKillElectsSuccessorAndAdopts kills the leader controller
// mid-run: the next alive shard must adopt its hosts and a successor must
// win exactly the staggered election, with delivery still exactly-once.
func TestLeaderKillElectsSuccessorAndAdopts(t *testing.T) {
	_, c := runChaosHashed(t, 12, 3, 5, func(p *Plan) {
		p.KillController(0, 1)
	})
	if c.CtrlFailCount != 1 || c.Adoptions != 1 {
		t.Fatalf("adoption path: fails=%d adoptions=%d", c.CtrlFailCount, c.Adoptions)
	}
	if c.Elections < 1 {
		t.Fatalf("leader death triggered no election")
	}
	if !c.shards[1].isLeader {
		t.Fatalf("deterministic successor should be shard 1 (lowest surviving stagger)")
	}
	if c.shards[2].isLeader {
		t.Fatal("two leaders after convergence")
	}
	if err := c.VerifyExactlyOnce(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionDegradesAndConverges severs one shard: it must degrade,
// elect itself in its component, and after the heal the split resolves
// with no shard left degraded.
func TestPartitionDegradesAndConverges(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Hosts: 16, Shards: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := Generate(c, WorkloadConfig{Tenants: 16, Jobs: 120, Seed: 7, Window: 15}); err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{}
	plan.PartitionWindow([]int{3}, 2, 6)
	plan.ApplyTo(eng, c)
	c.Run()

	if c.DegradedIn < 1 {
		t.Fatal("severed shard never degraded")
	}
	if c.DegradedOut != c.DegradedIn {
		t.Fatalf("degraded entries %d ≠ exits %d", c.DegradedIn, c.DegradedOut)
	}
	if got := c.DegradedShards(); got != 0 {
		t.Fatalf("%d shards still degraded after heal", got)
	}
	if c.PartDrops < 1 {
		t.Fatal("partition severed no control traffic")
	}
	if c.Elections < 1 {
		t.Fatal("minority component elected no leader")
	}
	// Exactly one leader after convergence, and the minority leader's higher
	// term wins the healed cluster.
	leaders := 0
	for _, sh := range c.shards {
		if sh.alive && sh.isLeader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders after heal, want 1", leaders)
	}
	if !c.shards[3].isLeader {
		t.Fatal("higher-term minority leader should win the healed cluster")
	}
	if c.JobsLost != 0 {
		t.Fatalf("control partition lost %d jobs (data plane was never cut)", c.JobsLost)
	}
	if err := c.VerifyExactlyOnce(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosDeterminism20Seeds is the failure-plane replay contract: twenty
// seeds, each seed's run injecting a host outage, a leader kill, and a
// control partition, every pair of same-seed runs bit-identical.
func TestChaosDeterminism20Seeds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			build := func(p *Plan) {
				p.HostOutage(int(seed)%30, 3, 4)
				p.KillController(0, 6)
				p.PartitionWindow([]int{2}, 9, 3)
			}
			sum1, c1 := runChaosHashed(t, 30, 3, seed, build)
			sum2, c2 := runChaosHashed(t, 30, 3, seed, build)
			if sum1 != sum2 {
				t.Fatalf("seed %d: chaos trace diverged", seed)
			}
			if c1.JobsRequeued != c2.JobsRequeued || c1.Elections != c2.Elections ||
				c1.JobsLost != c2.JobsLost {
				t.Fatalf("seed %d: failure counters diverged between identical runs", seed)
			}
			if c1.HostFails != 1 || c1.CtrlFailCount != 1 {
				t.Fatalf("seed %d: plan not applied: fails=%d ctrl=%d",
					seed, c1.HostFails, c1.CtrlFailCount)
			}
			if err := c1.VerifyExactlyOnce(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}
