package cluster

import (
	"fmt"
	"math/rand"

	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// WorkloadConfig shapes the synthetic multi-tenant workload.
type WorkloadConfig struct {
	// Tenants is the number of principals; weights cycle 1..4.
	Tenants int
	// Jobs is the total number of transfer requests.
	Jobs int
	// Datasets is the number of replicated datasets (default: one per
	// host); Replicas is the copy count per dataset (default min(3, hosts)).
	Datasets int
	Replicas int
	// MinBytes/MaxBytes bound the uniform job-size draw.
	MinBytes, MaxBytes float64
	// Window spreads Poisson arrivals over this many virtual seconds.
	Window sim.Duration
	// PriorityLevels cycles job priorities 0..n-1 (0 = default level only).
	PriorityLevels int
	// Seed drives every draw; the generated workload is a pure function of
	// (config, seed).
	Seed int64
}

// Validate rejects workload shapes that previous versions silently
// clamped: more replicas than hosts to place them on, negative counts,
// inverted size bounds. Zero fields are still "unset" and filled by
// SetDefaults.
func (w WorkloadConfig) Validate(hosts int) error {
	if w.Replicas > hosts {
		return fmt.Errorf("cluster: Replicas %d exceeds Hosts %d (a dataset cannot have more copies than hosts)", w.Replicas, hosts)
	}
	for _, n := range []struct {
		name string
		v    int
	}{
		{"Tenants", w.Tenants}, {"Jobs", w.Jobs},
		{"Datasets", w.Datasets}, {"Replicas", w.Replicas},
		{"PriorityLevels", w.PriorityLevels},
	} {
		if n.v < 0 {
			return fmt.Errorf("cluster: %s must not be negative, got %d", n.name, n.v)
		}
	}
	if w.MinBytes < 0 {
		return fmt.Errorf("cluster: MinBytes must not be negative, got %g", w.MinBytes)
	}
	if w.MaxBytes > 0 && w.MinBytes > w.MaxBytes {
		return fmt.Errorf("cluster: MinBytes %g exceeds MaxBytes %g", w.MinBytes, w.MaxBytes)
	}
	if w.Window < 0 {
		return fmt.Errorf("cluster: Window must not be negative, got %g", float64(w.Window))
	}
	return nil
}

// SetDefaults fills zero fields relative to the given host count. It does
// not repair invalid values — Validate rejects those.
func (w *WorkloadConfig) SetDefaults(hosts int) {
	if w.Tenants <= 0 {
		w.Tenants = 4 * hosts
	}
	if w.Jobs <= 0 {
		w.Jobs = 2 * w.Tenants
	}
	if w.Datasets <= 0 {
		w.Datasets = hosts
	}
	if w.Replicas <= 0 {
		w.Replicas = 3
		if w.Replicas > hosts {
			w.Replicas = hosts
		}
	}
	if w.MinBytes <= 0 {
		w.MinBytes = float64(64 * units.MB)
	}
	if w.MaxBytes < w.MinBytes {
		w.MaxBytes = float64(512 * units.MB)
	}
	if w.Window <= 0 {
		w.Window = 30
	}
	if w.PriorityLevels <= 0 {
		w.PriorityLevels = 1
	}
}

// Generate populates the cluster with tenants, replicated datasets, and a
// Poisson job arrival stream. All draws come from one seeded source
// consumed in a fixed order before the simulation starts, so the workload
// is bit-reproducible. An invalid shape (replicas exceeding hosts,
// negative counts) is rejected before anything is attached.
func Generate(c *Cluster, wcfg WorkloadConfig) error {
	if err := wcfg.Validate(c.Hosts()); err != nil {
		return err
	}
	wcfg.SetDefaults(c.Hosts())
	rng := rand.New(rand.NewSource(wcfg.Seed ^ 0x0a11ca11))
	c.AddTenants(wcfg.Tenants)
	hosts := c.Hosts()
	for d := 0; d < wcfg.Datasets; d++ {
		// Distinct replica hosts: first copy lands deterministically spread
		// (d mod hosts), the rest draw without replacement.
		replicas := []int{d % hosts}
		for len(replicas) < wcfg.Replicas {
			cand := rng.Intn(hosts)
			dup := false
			for _, r := range replicas {
				if r == cand {
					dup = true
					break
				}
			}
			if !dup {
				replicas = append(replicas, cand)
			}
		}
		c.AddDataset(replicas)
	}
	mean := float64(wcfg.Window) / float64(wcfg.Jobs)
	at := sim.Time(0)
	for i := 0; i < wcfg.Jobs; i++ {
		at += sim.Time(rng.ExpFloat64() * mean)
		tenant := rng.Intn(wcfg.Tenants)
		dataset := rng.Intn(wcfg.Datasets)
		dst := rng.Intn(hosts)
		size := wcfg.MinBytes + rng.Float64()*(wcfg.MaxBytes-wcfg.MinBytes)
		prio := i % wcfg.PriorityLevels
		c.Submit(at, tenant, dataset, dst, size, prio)
	}
	return nil
}
