package cluster

import (
	"fmt"

	"e2edt/internal/metrics"
	"e2edt/internal/units"
)

// Report summarizes a finished cluster run.
type Report struct {
	Hosts, Shards, Tenants, Jobs int

	// VirtualSeconds is the virtual time at which the last job retired.
	VirtualSeconds float64
	// DeliveredBytes sums every host's delivered counter through the merged
	// registry.
	DeliveredBytes float64
	// AggregateGoodputGbps is delivered payload over the active window.
	AggregateGoodputGbps float64

	// Decision latency (wall clock, microseconds) over admission passes.
	Decisions                    uint64
	DecisionP50us, DecisionP99us float64

	// Control-plane health.
	CtrlDrops, CtrlResends, JobsLost int
	Digests, Adjusts                 int

	// Failure-plane outcomes.
	HostFails, HostRestores, DeadDeclared int
	JobsRequeued, Reroutes, VoidedJobs    int
	Elections, Adoptions                  int
	StaleLeases, StaleAdjusts             int
	DegradedIn, DegradedOut               int
	PartDrops, CtrlFails                  int

	// Gray-plane outcomes: limp-mode entries, scorer verdicts in each
	// direction, and jobs held by the admission shed valve.
	HostLimps, HostSuspects, HostClears, Shed int

	// Locality outcomes: how many admitted jobs read a replica on the
	// destination host / leaf / pod / across the core.
	LocalSame, LocalLeaf, LocalPod, LocalCore int

	// PerShard carries per-shard admission counts (index = shard id).
	PerShard []int
}

// Report assembles the summary after Run.
func (c *Cluster) Report() Report {
	elapsed := float64(c.Eng.Now())
	delivered := c.Registry.SumCounters("delivered_bytes")
	r := Report{
		Hosts:          c.Hosts(),
		Shards:         len(c.shards),
		Tenants:        c.Tenants(),
		Jobs:           c.Jobs(),
		VirtualSeconds: elapsed,
		DeliveredBytes: delivered,
		Decisions:      c.DecisionLat.Count(),
		DecisionP50us:  c.DecisionLat.Quantile(0.50),
		DecisionP99us:  c.DecisionLat.Quantile(0.99),
		CtrlDrops:      c.CtrlDrops,
		CtrlResends:    c.CtrlResends,
		JobsLost:       c.JobsLost,
		Digests:        c.Digests,
		Adjusts:        c.Adjusts,
		HostFails:      c.HostFails,
		HostRestores:   c.HostRestores,
		DeadDeclared:   c.DeadDeclared,
		JobsRequeued:   c.JobsRequeued,
		Reroutes:       c.Reroutes,
		VoidedJobs:     c.VoidedJobs,
		Elections:      c.Elections,
		Adoptions:      c.Adoptions,
		StaleLeases:    c.StaleLeases,
		StaleAdjusts:   c.StaleAdjusts,
		DegradedIn:     c.DegradedIn,
		DegradedOut:    c.DegradedOut,
		PartDrops:      c.PartDrops,
		CtrlFails:      c.CtrlFailCount,
		HostLimps:      c.HostLimps,
		HostSuspects:   c.HostSuspects,
		HostClears:     c.HostClears,
		Shed:           c.Shed,
		LocalSame:      c.Locality[localitySame],
		LocalLeaf:      c.Locality[localityLeaf],
		LocalPod:       c.Locality[localityPod],
		LocalCore:      c.Locality[localityCore],
	}
	if elapsed > 0 {
		r.AggregateGoodputGbps = units.ToGbps(delivered / elapsed)
	}
	for _, sh := range c.shards {
		r.PerShard = append(r.PerShard, sh.admitted)
	}
	return r
}

// Table renders the report as a metrics table for CLI/experiment output.
func (r Report) Table() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("cluster: %d hosts, %d shards, %d tenants, %d jobs", r.Hosts, r.Shards, r.Tenants, r.Jobs),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("virtual time", fmt.Sprintf("%.2f s", r.VirtualSeconds))
	t.AddRow("delivered", units.FormatBytes(int64(r.DeliveredBytes)))
	t.AddRow("aggregate goodput", fmt.Sprintf("%.2f Gbps", r.AggregateGoodputGbps))
	t.AddRow("decisions", fmt.Sprintf("%d", r.Decisions))
	t.AddRow("decision latency p50", fmt.Sprintf("%.1f µs", r.DecisionP50us))
	t.AddRow("decision latency p99", fmt.Sprintf("%.1f µs", r.DecisionP99us))
	t.AddRow("ctrl drops / resends", fmt.Sprintf("%d / %d", r.CtrlDrops, r.CtrlResends))
	t.AddRow("jobs lost", fmt.Sprintf("%d", r.JobsLost))
	t.AddRow("digests / adjusts", fmt.Sprintf("%d / %d", r.Digests, r.Adjusts))
	if r.HostFails+r.CtrlFails+r.PartDrops+r.Reroutes > 0 {
		t.AddRow("host fails / restores", fmt.Sprintf("%d / %d", r.HostFails, r.HostRestores))
		t.AddRow("dead declared", fmt.Sprintf("%d", r.DeadDeclared))
		t.AddRow("requeued / rerouted / voided", fmt.Sprintf("%d / %d / %d",
			r.JobsRequeued, r.Reroutes, r.VoidedJobs))
		t.AddRow("ctrl fails / adoptions", fmt.Sprintf("%d / %d", r.CtrlFails, r.Adoptions))
		t.AddRow("elections", fmt.Sprintf("%d", r.Elections))
		t.AddRow("stale leases / adjusts", fmt.Sprintf("%d / %d", r.StaleLeases, r.StaleAdjusts))
		t.AddRow("degraded in / out", fmt.Sprintf("%d / %d", r.DegradedIn, r.DegradedOut))
		t.AddRow("partition drops", fmt.Sprintf("%d", r.PartDrops))
	}
	if r.HostLimps+r.HostSuspects+r.Shed > 0 {
		t.AddRow("host limps", fmt.Sprintf("%d", r.HostLimps))
		t.AddRow("gray suspects / clears", fmt.Sprintf("%d / %d", r.HostSuspects, r.HostClears))
		t.AddRow("jobs shed", fmt.Sprintf("%d", r.Shed))
	}
	t.AddRow("locality same/leaf/pod/core", fmt.Sprintf("%d / %d / %d / %d",
		r.LocalSame, r.LocalLeaf, r.LocalPod, r.LocalCore))
	return t
}
