package cluster

import (
	"fmt"
	"testing"

	"e2edt/internal/fabric"
	"e2edt/internal/sim"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

// runHashed builds and runs a cluster under a hashing tracer and returns
// the replay digest plus the report.
func runHashed(t *testing.T, cfg Config, wcfg WorkloadConfig) (string, uint64, Report) {
	t.Helper()
	eng := sim.NewEngine()
	h := trace.NewHasher()
	eng.SetTracer(h)
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Generate(c, wcfg); err != nil {
		t.Fatal(err)
	}
	c.Run()
	return h.Sum(), h.Events(), c.Report()
}

func smallCfg(hosts, shards int, seed int64) (Config, WorkloadConfig) {
	cfg := Config{
		Hosts:   hosts,
		Shards:  shards,
		DropPct: 5,
		Seed:    seed,
	}
	wcfg := WorkloadConfig{
		Tenants: 5 * hosts,
		Jobs:    10 * hosts,
		Seed:    seed,
		Window:  20,
	}
	return cfg, wcfg
}

// TestClusterDeterminism20Seeds is the replay contract at 100 hosts:
// twenty random seeds, each run twice, byte-identical traces every time.
func TestClusterDeterminism20Seeds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg, wcfg := smallCfg(100, 4, seed)
			sum1, n1, rep1 := runHashed(t, cfg, wcfg)
			sum2, n2, rep2 := runHashed(t, cfg, wcfg)
			if sum1 != sum2 {
				t.Fatalf("seed %d: trace diverged (%d vs %d events)", seed, n1, n2)
			}
			if rep1.DeliveredBytes != rep2.DeliveredBytes {
				t.Fatalf("seed %d: delivered bytes diverged", seed)
			}
			if rep1.JobsLost+int(countDone(rep1)) == 0 {
				t.Fatalf("seed %d: nothing ran", seed)
			}
			_ = rep2
		})
	}
}

func countDone(r Report) uint64 {
	return uint64(r.Jobs - r.JobsLost)
}

// TestClusterDeterminism1000Hosts runs the full-scale pair once: same
// seed, 1000 hosts, byte-identical trace. Modest job count keeps the
// paired run affordable; S5 exercises the full 10k-tenant scale.
func TestClusterDeterminism1000Hosts(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-host pair skipped in short mode")
	}
	cfg := Config{Hosts: 1000, Shards: 8, DropPct: 5, Seed: 42}
	wcfg := WorkloadConfig{Tenants: 2000, Jobs: 3000, Seed: 42, Window: 30}
	sum1, n1, rep1 := runHashed(t, cfg, wcfg)
	sum2, _, _ := runHashed(t, cfg, wcfg)
	if sum1 != sum2 {
		t.Fatalf("1000-host trace diverged")
	}
	if n1 == 0 || rep1.DeliveredBytes <= 0 {
		t.Fatalf("1000-host run did no work: %d events, %.0f bytes", n1, rep1.DeliveredBytes)
	}
}

// TestClusterCompletesAndAccounts checks end-to-end accounting on a small
// lossless cluster: every job lands, delivered bytes match the workload,
// and the merged per-host registry agrees with the report.
func TestClusterCompletesAndAccounts(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Hosts: 8, Shards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(4)
	d := c.AddDataset([]int{0, 1})
	var want float64
	for i := 0; i < 16; i++ {
		size := float64((i + 1)) * float64(units.MB)
		c.Submit(sim.Time(float64(i)*0.01), i%4, d, i%8, size, 0)
		want += size
	}
	c.Run()
	rep := c.Report()
	if rep.JobsLost != 0 {
		t.Fatalf("lossless cluster lost %d jobs", rep.JobsLost)
	}
	if diff := rep.DeliveredBytes - want; diff > 1 || diff < -1 {
		t.Fatalf("delivered %.0f bytes, want %.0f", rep.DeliveredBytes, want)
	}
	if rep.AggregateGoodputGbps <= 0 {
		t.Fatal("no goodput reported")
	}
	if got := c.Registry.SumCounters("src_jobs"); got != 16 {
		t.Fatalf("src_jobs = %v, want 16", got)
	}
}

// TestClusterLocalityPrefersNearReplica pins the locality scoring: with a
// replica on the destination host, admission must pick it over a remote
// copy.
func TestClusterLocalityPrefersNearReplica(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Hosts: 64, Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(1)
	d := c.AddDataset([]int{5, 60})
	c.Submit(0, 0, d, 5, float64(units.MB), 0) // replica on dst itself
	c.Submit(0, 0, d, 6, float64(units.MB), 0) // same leaf as host 5
	c.Run()
	rep := c.Report()
	if rep.LocalSame != 1 {
		t.Fatalf("LocalSame = %d, want 1", rep.LocalSame)
	}
	if rep.LocalLeaf != 1 {
		t.Fatalf("LocalLeaf = %d, want 1 (host 6 should read from host 5's leaf)", rep.LocalLeaf)
	}
}

// TestClusterDropsForceRetries drives a very lossy control plane and
// checks the retry machinery engages without breaking determinism.
func TestClusterDropsForceRetries(t *testing.T) {
	cfg, wcfg := smallCfg(20, 2, 9)
	cfg.DropPct = 40
	sum1, _, rep1 := runHashed(t, cfg, wcfg)
	sum2, _, _ := runHashed(t, cfg, wcfg)
	if sum1 != sum2 {
		t.Fatal("lossy trace diverged")
	}
	if rep1.CtrlDrops == 0 || rep1.CtrlResends == 0 {
		t.Fatalf("40%% drop produced no drops/resends: %+v", rep1)
	}
}

// TestClusterShardCountChangesSchedule sanity-checks that sharding is
// real: different shard counts produce different (but individually
// deterministic) schedules.
func TestClusterShardCountChangesSchedule(t *testing.T) {
	cfg1, wcfg := smallCfg(32, 1, 11)
	cfg4 := cfg1
	cfg4.Shards = 4
	sum1, _, _ := runHashed(t, cfg1, wcfg)
	sum4, _, rep4 := runHashed(t, cfg4, wcfg)
	if sum1 == sum4 {
		t.Fatal("1-shard and 4-shard runs produced identical traces")
	}
	if len(rep4.PerShard) != 4 {
		t.Fatalf("PerShard = %v", rep4.PerShard)
	}
	total := 0
	for _, n := range rep4.PerShard {
		total += n
	}
	if total != rep4.Jobs-rep4.JobsLost {
		t.Fatalf("shard admissions %d ≠ completed jobs %d", total, rep4.Jobs-rep4.JobsLost)
	}
}

// TestClusterFatTreeTopology runs the other topology family end to end.
func TestClusterFatTreeTopology(t *testing.T) {
	cfg, wcfg := smallCfg(54, 2, 7)
	cfg.Topology = fabric.TopoFatTree
	sum1, _, rep := runHashed(t, cfg, wcfg)
	sum2, _, _ := runHashed(t, cfg, wcfg)
	if sum1 != sum2 {
		t.Fatal("fat-tree trace diverged")
	}
	if rep.DeliveredBytes <= 0 {
		t.Fatal("fat-tree cluster did no work")
	}
}
