package cluster

// Cluster-scale failure domains: crash-stop hosts (with optional cold
// restart), crash-stop shard controllers with deterministic successor
// adoption, control-plane partitions, and ECMP re-routing around dead
// fabric trunks. Cluster implements faults.Sink, so one faults.Plan can
// schedule link faults and cluster faults together and the whole chaos
// timeline stays bit-replayable.
//
// The split between physical truth and the control plane's view is the
// organizing idea: FailHost flips hostDown and darkens the access links at
// the fault instant (flows stall immediately — physics), while the owning
// shard only declares the host dead after MissedBeats heartbeat intervals
// (detection latency — protocol). Everything recovery does hangs off the
// declared view, never the physical one.

import (
	"fmt"
	"math"

	"e2edt/internal/fabric"
)

// FailHost crash-stops host id: its access links go dark (in-flight flows
// stall physically), its staging memory is lost, and it stops
// heartbeating. Implements faults.Sink.
func (c *Cluster) FailHost(id int) {
	if id < 0 || id >= len(c.hosts) {
		panic(fmt.Sprintf("cluster: FailHost(%d) out of range [0,%d)", id, len(c.hosts)))
	}
	if c.hostDown[id] {
		return
	}
	c.hostDown[id] = true
	c.crashedAt[id] = c.Eng.Now()
	c.HostFails++
	c.Eng.Tracef("cluster", "host %d crash-stops", id)
	for r := 0; r < c.Cfg.Rails; r++ {
		c.Topo.PortLinks[c.port(id, r)].Fail()
	}
}

// RestoreHost cold-restarts a crashed host: links come back, but anything
// staged before the crash is gone (requeued jobs already zeroed their
// checkpoints). The owner readmits the host when its first post-restart
// heartbeat lands. Implements faults.Sink.
func (c *Cluster) RestoreHost(id int) {
	if id < 0 || id >= len(c.hosts) {
		panic(fmt.Sprintf("cluster: RestoreHost(%d) out of range [0,%d)", id, len(c.hosts)))
	}
	if !c.hostDown[id] {
		return
	}
	c.hostDown[id] = false
	c.crashedAt[id] = -1
	c.HostRestores++
	c.Eng.Tracef("cluster", "host %d restarts cold", id)
	for r := 0; r < c.Cfg.Rails; r++ {
		c.Topo.PortLinks[c.port(id, r)].Restore()
	}
	if c.deadDeclared[id] {
		c.Eng.Schedule(c.Cfg.HeartbeatEvery, func() {
			if c.done || c.hostDown[id] || !c.deadDeclared[id] {
				return
			}
			c.deadDeclared[id] = false
			sh := c.owner(id)
			c.Eng.Tracef("cluster", "shard %d readmits host %d", sh.id, id)
			sh.admit()
		})
	}
}

// LimpHost inflates host id's service time: every core runs at factor ×
// speed (0 < factor ≤ 1; 1 restores nominal). The host stays alive —
// links up, heartbeats flowing — so the binary death detector never fires;
// only the gray scorer (when enabled) can notice the sag. Implements
// faults.Sink.
func (c *Cluster) LimpHost(id int, factor float64) {
	if id < 0 || id >= len(c.hosts) {
		panic(fmt.Sprintf("cluster: LimpHost(%d) out of range [0,%d)", id, len(c.hosts)))
	}
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("cluster: LimpHost factor %v outside (0, 1]", factor))
	}
	if c.limp[id] == factor {
		return
	}
	entering := c.limp[id] == 1
	c.limp[id] = factor
	if factor < 1 {
		if entering {
			c.HostLimps++
		}
		c.Eng.Tracef("cluster", "host %d limps: cores at %.1f%% speed", id, factor*100)
	} else {
		c.Eng.Tracef("cluster", "host %d limp clears", id)
	}
	for _, n := range c.hosts[id].h.M.Nodes {
		for _, core := range n.Cores {
			c.FSim.SetCapacity(core.Res, factor)
		}
	}
}

// FailController crash-stops shard controller k permanently: its tickers
// die, its queue and running set are orphaned, and after a lease timeout
// the next alive shard adopts its hosts and state. If k was the leader the
// remaining shards will separately notice the silent lease and elect.
// Implements faults.Sink.
func (c *Cluster) FailController(k int) {
	if k < 0 || k >= len(c.shards) {
		panic(fmt.Sprintf("cluster: FailController(%d) out of range [0,%d)", k, len(c.shards)))
	}
	sh := c.shards[k]
	if !sh.alive {
		return
	}
	sh.alive = false
	sh.stop()
	c.CtrlFailCount++
	c.Eng.Tracef("cluster", "shard controller %d crash-stops (leader=%v term=%d)", k, sh.isLeader, sh.term)
	c.Eng.Schedule(c.Cfg.LeaseTimeout, func() { c.adoptOrphans(k) })
}

// adoptOrphans moves a dead controller's hosts, queue, running set, and
// reconciliation window onto the next alive shard (by id, wrapping) — the
// deterministic successor rule.
func (c *Cluster) adoptOrphans(dead int) {
	if c.done {
		return
	}
	succ := c.nextAlive(dead)
	if succ == nil {
		c.Eng.Tracef("cluster", "no live controller to adopt shard %d", dead)
		return
	}
	d := c.shards[dead]
	hostsMoved := 0
	for h := range c.ownerOf {
		if c.ownerOf[h] == dead {
			c.ownerOf[h] = succ.id
			hostsMoved++
		}
	}
	for _, j := range d.queue {
		succ.insert(j)
	}
	queued := len(d.queue)
	d.queue = nil
	for _, j := range d.running {
		j.shard = succ
		succ.running = append(succ.running, j)
	}
	running := len(d.running)
	d.running = nil
	for t, v := range d.window {
		if v > 0 {
			succ.window[t] += v
			d.window[t] = 0
		}
	}
	c.Adoptions++
	c.Eng.Tracef("cluster", "shard %d adopts shard %d: %d hosts, %d queued, %d running",
		succ.id, dead, hostsMoved, queued, running)
	succ.admit()
}

// nextAlive returns the first alive shard after dead (wrapping), or nil.
func (c *Cluster) nextAlive(dead int) *shard {
	k := len(c.shards)
	for i := 1; i < k; i++ {
		if sh := c.shards[(dead+i)%k]; sh.alive {
			return sh
		}
	}
	return nil
}

// StartPartition severs control traffic between the listed shards and the
// rest. Data-plane links are untouched: transfers keep moving, only
// coordination stops. Implements faults.Sink.
func (c *Cluster) StartPartition(shards []int) {
	c.partitioned = true
	for i := range c.partSide {
		c.partSide[i] = false
	}
	for _, k := range shards {
		if k >= 0 && k < len(c.partSide) {
			c.partSide[k] = true
		}
	}
	c.Eng.Tracef("cluster", "control plane partitioned: %v severed", shards)
}

// HealPartition reconnects the control plane. Conflicting leaders resolve
// on the next lease exchange: higher term wins, equal terms go to the
// lower id. Implements faults.Sink.
func (c *Cluster) HealPartition() {
	if !c.partitioned {
		return
	}
	c.partitioned = false
	c.Eng.Tracef("cluster", "control plane partition healed")
}

// rerouteAround pulls running jobs off a freshly dead fabric link and
// restarts them checkpoint-aware; the dead-link-aware ECMP route they get
// back avoids the casualty. Jobs with no live alternative path are left in
// place — their flows stall and resume when the link heals, which beats a
// cancel/restart loop that would land on the same dead trunk.
func (c *Cluster) rerouteAround(l *fabric.Link) {
	if c.done {
		return
	}
	for _, sh := range c.shards {
		for i := 0; i < len(sh.running); {
			j := sh.running[i]
			if !jobUsesLink(j, l) {
				i++
				continue
			}
			rail := int(uint64(j.id) % uint64(c.Cfg.Rails))
			fresh := c.Topo.Route(c.port(j.src, rail), c.port(j.dst, rail), uint64(j.id))
			if routeDead(fresh) {
				i++
				continue
			}
			c.Reroutes++
			sh.requeue(j, false, "reroute off dead "+l.Cfg.Name)
		}
	}
}

func jobUsesLink(j *job, l *fabric.Link) bool {
	for _, h := range j.hops {
		if h.Link == l {
			return true
		}
	}
	return false
}

func routeDead(hops []fabric.Hop) bool {
	for _, h := range hops {
		if h.Link.Failed() {
			return true
		}
	}
	return false
}

// VerifyExactlyOnce audits the delivery invariant after Run: every done
// job completed exactly once, no lost job ever completed, and the summed
// delivered-bytes counters equal the summed sizes of done jobs — requeues,
// failovers, and voided completions included.
func (c *Cluster) VerifyExactlyOnce() error {
	var doneBytes float64
	for i, j := range c.jobs {
		switch j.state {
		case jobDone:
			if c.completions[i] != 1 {
				return fmt.Errorf("cluster: job %d completed %d times", i, c.completions[i])
			}
			doneBytes += j.size
		case jobLost:
			if c.completions[i] != 0 {
				return fmt.Errorf("cluster: lost job %d completed %d times", i, c.completions[i])
			}
		default:
			return fmt.Errorf("cluster: job %d neither done nor lost (state %d)", i, j.state)
		}
	}
	if c.remaining != 0 {
		return fmt.Errorf("cluster: %d jobs unaccounted for after run", c.remaining)
	}
	delivered := c.Registry.SumCounters("delivered_bytes")
	// Tolerance is relative: the two ledgers sum in different orders, and
	// float accumulation over tens of thousands of multi-hundred-MB jobs
	// legitimately drifts by a few ulps of the total.
	if tol := math.Max(1, 1e-9*doneBytes); math.Abs(delivered-doneBytes) > tol {
		return fmt.Errorf("cluster: delivered %.0f bytes but completed jobs sum to %.0f", delivered, doneBytes)
	}
	return nil
}

// DegradedShards counts shards currently in degraded mode (dead
// controllers excluded — they are failed, not degraded).
func (c *Cluster) DegradedShards() int {
	n := 0
	for _, sh := range c.shards {
		if sh.alive && sh.degraded {
			n++
		}
	}
	return n
}

// AliveShards counts controllers still running.
func (c *Cluster) AliveShards() int {
	n := 0
	for _, sh := range c.shards {
		if sh.alive {
			n++
		}
	}
	return n
}
