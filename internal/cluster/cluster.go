// Package cluster scales the simulation from the paper's one back-end→
// front-end path to a datacenter: N simulated hosts — each a real NUMA
// machine with bound worker threads and rail NICs — attached to a generated
// multi-stage fabric topology, driven by a sharded transfer control plane.
//
// The control plane follows xfersched's model (admission queue ordered by
// priority/arrival, weighted fair share per tenant) but splits ownership
// across K shards: shard k owns every host h with h mod K == k, admits jobs
// destined to its hosts, and enforces tenant fair share locally. A leader
// shard reconciles fair share globally: shards push per-tenant delivered
// digests on a fixed interval, the leader compares realized shares against
// weight-proportional targets and broadcasts per-tenant weight adjustments.
// Control messages ride a lossy RPC model (fixed delay, seeded drop
// percentage, bounded retries), so shard state is eventually — not
// instantly — consistent, exactly the regime a real sharded scheduler
// operates in.
//
// Everything that affects the simulation is deterministic in the seed:
// workload generation and RPC drops come from seeded generators drawn in
// event order, per-tenant state lives in dense arrays (no map iteration on
// simulation paths), and the trace of two runs with one seed is
// bit-identical. Wall-clock scheduler decision latency is measured around
// admission passes but kept out of the trace for exactly that reason.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/metrics"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// Config shapes the cluster: topology, per-host hardware, transfer-path
// coefficients, and control-plane behavior.
type Config struct {
	// Hosts is the number of simulated endpoint hosts.
	Hosts int
	// Shards is the number of control-plane shards (K ≥ 1). Host h is owned
	// by shard h mod K.
	Shards int

	// Topology selects the fabric family; the shape fields below default to
	// a mildly oversubscribed datacenter pod.
	Topology     fabric.TopoKind
	HostsPerLeaf int     // leaf-spine ports per leaf (default 32)
	Spines       int     // leaf-spine spine count (default 4)
	FatTreeK     int     // fat-tree arity (default: smallest even k fitting Hosts×Rails)
	HostGbps     float64 // access-link rate (default 10)
	UplinkGbps   float64 // switch-stage rate (default 40)
	HostRTT      sim.Duration
	UplinkRTT    sim.Duration

	// Rails is the number of access NICs per host; rails attach to the
	// fabric as independent ports and jobs hash across them.
	Rails int

	// Per-host hardware (small on purpose: a thousand hosts share one
	// solver, so each host models 2×2 cores, not 2×22).
	NUMANodes    int
	CoresPerNode int
	CoreHz       float64
	MemGBps      float64 // per-node memory bandwidth
	InterGBps    float64 // inter-socket interconnect bandwidth
	Workers      int     // bound worker threads per host (pooled, round-robin)

	// CPUPerByte is the protocol-processing cost charged on both endpoints'
	// workers (cycles per byte).
	CPUPerByte float64
	// PerJobGbps caps each transfer's rate (admission reservation; also
	// freezes flows early, which keeps the max-min solver cheap).
	PerJobGbps float64
	// MaxPerHost bounds concurrently admitted jobs per host per direction.
	MaxPerHost int
	// NoFlowClasses disables same-route job pooling: every job gets its
	// own fluid flow, as before flow-class aggregation. Jobs whose charged
	// resource sets coincide exactly (same tenant, shard, ECMP path and
	// worker pair) normally share one class flow and disaggregate through
	// per-member rates; the knob exists for the equivalence tests.
	NoFlowClasses bool

	// Control-plane model.
	DropPct        float64      // control-RPC drop percentage (0–100)
	CtrlDelay      sim.Duration // one-way control message delay
	CtrlTimeout    sim.Duration // retransmit timer for reliable RPCs
	CtrlRetries    int          // submit retries before a job is lost
	ReconcileEvery sim.Duration // digest/adjust reconciliation interval

	// Failure-domain model.
	//
	// Hosts heartbeat to their owning shard every HeartbeatEvery. Beats are
	// tiny and sprayed, so the model treats the channel as reliable and
	// represents the detector by its latency: the owner declares a host
	// dead once MissedBeats intervals pass without a beat.
	HeartbeatEvery sim.Duration // host heartbeat interval (default 0.5)
	MissedBeats    int          // missed intervals before a host is declared dead (default 3)
	// Leadership is a lease: the leader broadcasts term-stamped leases
	// every LeaseEvery; a follower that hears nothing for LeaseTimeout
	// enters degraded mode (adjust clamped to 1, local weighted fair share)
	// and runs for leader after a deterministic per-shard stagger of
	// ElectStagger × (id+1).
	LeaseEvery   sim.Duration // leader lease broadcast interval (default 0.5)
	LeaseTimeout sim.Duration // lease age at which a follower degrades/runs (default 2)
	ElectStagger sim.Duration // per-shard candidacy stagger unit (default 0.5)
	// GiveUpAfter bounds how long a queued job waits on a declared-dead
	// destination (or an all-dead replica set) before it is marked lost, so
	// a permanent crash cannot wedge the run (default 30).
	GiveUpAfter sim.Duration

	// Gray arms the host outlier scorer and the admission shed valve for
	// limping-but-alive hosts. Zero value: fully inert.
	Gray GrayConfig

	// Seed drives workload generation and RPC drops.
	Seed int64
}

// Validate rejects configurations that previous versions silently
// "corrected": a zero-shard control plane, a negative or certain-loss drop
// rate, negative model durations. SetDefaults still fills zero shape
// fields; Validate draws the line between "unset" and "wrong".
func (c Config) Validate() error {
	if c.Hosts <= 0 {
		return fmt.Errorf("cluster: Hosts must be ≥ 1, got %d", c.Hosts)
	}
	if c.Shards <= 0 {
		return fmt.Errorf("cluster: Shards must be ≥ 1, got %d (the control plane needs at least one shard)", c.Shards)
	}
	if c.DropPct < 0 || c.DropPct >= 100 {
		return fmt.Errorf("cluster: DropPct must be in [0, 100), got %g", c.DropPct)
	}
	if c.Rails < 0 {
		return fmt.Errorf("cluster: Rails must not be negative, got %d", c.Rails)
	}
	if c.CtrlRetries < 0 {
		return fmt.Errorf("cluster: CtrlRetries must not be negative, got %d", c.CtrlRetries)
	}
	if c.MissedBeats < 0 {
		return fmt.Errorf("cluster: MissedBeats must not be negative, got %d", c.MissedBeats)
	}
	if c.Gray.Enabled && c.Gray.SuspectBelow > 0 && c.Gray.ClearAbove > 0 &&
		c.Gray.SuspectBelow >= c.Gray.ClearAbove {
		return fmt.Errorf("cluster: Gray.SuspectBelow (%g) must sit below Gray.ClearAbove (%g) — the gap is the hysteresis band",
			c.Gray.SuspectBelow, c.Gray.ClearAbove)
	}
	for _, d := range []struct {
		name string
		v    sim.Duration
	}{
		{"HostRTT", c.HostRTT}, {"UplinkRTT", c.UplinkRTT},
		{"CtrlDelay", c.CtrlDelay}, {"CtrlTimeout", c.CtrlTimeout},
		{"ReconcileEvery", c.ReconcileEvery}, {"HeartbeatEvery", c.HeartbeatEvery},
		{"LeaseEvery", c.LeaseEvery}, {"LeaseTimeout", c.LeaseTimeout},
		{"ElectStagger", c.ElectStagger}, {"GiveUpAfter", c.GiveUpAfter},
		{"Gray.Every", c.Gray.Every},
	} {
		if d.v < 0 {
			return fmt.Errorf("cluster: %s must not be negative, got %g", d.name, float64(d.v))
		}
	}
	return nil
}

// SetDefaults fills zero fields with the standard cluster profile. It does
// not repair invalid values — Validate rejects those.
func (c *Config) SetDefaults() {
	if c.HostsPerLeaf <= 0 {
		c.HostsPerLeaf = 32
	}
	if c.Spines <= 0 {
		c.Spines = 4
	}
	if c.HostGbps <= 0 {
		c.HostGbps = 10
	}
	if c.UplinkGbps <= 0 {
		c.UplinkGbps = 40
	}
	if c.HostRTT <= 0 {
		c.HostRTT = 20e-6
	}
	if c.UplinkRTT <= 0 {
		c.UplinkRTT = 10e-6
	}
	if c.Rails <= 0 {
		c.Rails = 1
	}
	if c.FatTreeK <= 0 {
		ports := c.Hosts * c.Rails
		k := 4
		for k*k*k/4 < ports {
			k += 2
		}
		c.FatTreeK = k
	}
	if c.NUMANodes <= 0 {
		c.NUMANodes = 2
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 2
	}
	if c.CoreHz <= 0 {
		c.CoreHz = 2.2e9
	}
	if c.MemGBps <= 0 {
		c.MemGBps = 25
	}
	if c.InterGBps <= 0 {
		c.InterGBps = 12
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CPUPerByte <= 0 {
		c.CPUPerByte = 0.3
	}
	if c.PerJobGbps <= 0 {
		c.PerJobGbps = 5
	}
	if c.MaxPerHost <= 0 {
		c.MaxPerHost = 2
	}
	if c.CtrlDelay <= 0 {
		c.CtrlDelay = 100e-6
	}
	if c.CtrlTimeout <= 0 {
		c.CtrlTimeout = 10e-3
	}
	if c.CtrlRetries <= 0 {
		c.CtrlRetries = 30
	}
	if c.ReconcileEvery <= 0 {
		c.ReconcileEvery = 0.25
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 0.5
	}
	if c.MissedBeats <= 0 {
		c.MissedBeats = 3
	}
	if c.LeaseEvery <= 0 {
		c.LeaseEvery = 0.5
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2
	}
	if c.ElectStagger <= 0 {
		c.ElectStagger = 0.5
	}
	if c.GiveUpAfter <= 0 {
		c.GiveUpAfter = 30
	}
	if c.Gray.Enabled {
		c.Gray = c.Gray.withDefaults()
	}
}

// hostNode is one simulated endpoint: a NUMA host, its pooled worker
// threads with node-local staging buffers, and admission state.
//
// Worker threads are created once and reused — each host.Thread owns a
// fluid limiter resource forever, so per-transfer threads would leak
// resources into the solver.
type hostNode struct {
	id      int
	h       *host.Host
	workers []*host.Thread
	bufs    []*numa.Buffer
	next    int // round-robin worker cursor

	srcActive, dstActive int

	delivered *metrics.Counter // bytes landed on this host
	srcJobs   *metrics.Counter
	dstJobs   *metrics.Counter
}

// worker returns the next pooled worker round-robin.
func (hn *hostNode) worker() (*host.Thread, *numa.Buffer) {
	i := hn.next % len(hn.workers)
	hn.next++
	return hn.workers[i], hn.bufs[i]
}

type jobState int

const (
	jobPending jobState = iota
	jobQueued
	jobRunning
	jobDone
	jobLost
)

// job is one tenant transfer request: move a dataset replica to Dst.
type job struct {
	id       int
	tenant   int
	dataset  int
	dst      int
	size     float64
	priority int
	submit   sim.Time

	state   jobState
	retries int
	src     int // chosen replica at admission
	flow    *fluid.Flow
	xfer    *fluid.Transfer
	hops    []fabric.Hop // charged route (nil for host-local copies)
	shard   *shard
	// class is the flow-class pool entry the job joined (nil when the job
	// runs on a private flow: pooling disabled or a signature collision).
	class *classEntry

	// ckpt is the resume offset: bytes already acked at the destination.
	// A source crash preserves it (resume-from-acked-offset); a destination
	// crash zeroes it (the staging memory died with the host).
	ckpt float64
	// shed marks that the gray valve held this job at least once, so the
	// Shed tally counts jobs, not admission passes.
	shed bool
}

// Cluster is the assembled simulation: hosts on a fabric plus the sharded
// control plane.
type Cluster struct {
	Cfg  Config
	Eng  *sim.Engine
	FSim *fluid.Sim
	Topo *fabric.Topology

	// Registry aggregates every host's namespaced instruments plus
	// cluster-level ones; per-host counters are registered under
	// "host%04d/" so a thousand hosts never collide.
	Registry *metrics.Registry

	// DecisionLat records wall-clock admission-pass latency in microseconds.
	// It never feeds back into the simulation or the trace.
	DecisionLat *metrics.Histogram

	// OnJobDone, when set, observes each job's committed completion (after
	// the exactly-once ledger is bumped). Voided completions — a landing on
	// a host that died before commit — do not fire it; the job restarts and
	// fires on its real completion. Jobs are numbered in Submit order.
	OnJobDone func(id int, now sim.Time)
	// OnJobLost observes jobs the control plane abandons (submit retries
	// exhausted, or every replica dead past the grace period).
	OnJobLost func(id int, now sim.Time)

	hosts    []*hostNode
	shards   []*shard
	tenants  []tenant
	jobs     []*job
	datasets [][]int // dataset → replica host ids

	// classes pools jobs whose charged resource sets coincide exactly into
	// one fluid flow class per (shard, tenant, route) signature, so the
	// solver sees O(classes) flows instead of O(jobs). Lookups are keyed
	// only — never iterated — so the map cannot leak nondeterminism.
	classes map[uint64]*classEntry

	ctlRng *rand.Rand // control-plane drops; drawn in event order only

	remaining int  // jobs not yet done or lost
	done      bool // true once every job retired (tickers stopped)

	// Failure-domain state. hostDown/crashedAt are physical truth (set the
	// instant a fault fires); deadDeclared/declaredAt are the control
	// plane's lagging view (set when the owner's detector trips).
	ownerOf      []int // host → owning shard id (reassigned at adoption)
	hostDown     []bool
	crashedAt    []sim.Time
	deadDeclared []bool
	declaredAt   []sim.Time
	completions  []int // per-job completion count (exactly-once audit)

	partitioned bool
	partSide    []bool // per-shard partition side (true = severed group)

	// Gray-health state. limp is physical truth (the current core-speed
	// factor, 1 = nominal); hostSuspect is the scorer's statistical view.
	// The rate arrays are allocated only when Cfg.Gray.Enabled.
	limp         []float64
	hostRate     []*metrics.EWMA
	hostRatio    []float64
	hostProg     []float64
	hostBreach   []int
	hostClear    []int
	hostSuspect  []bool
	shedding     bool
	firstHostSus sim.Time
	grayT        *sim.Ticker

	// Control-plane tallies (ints, not instruments: they feed the report).
	CtrlDrops   int
	CtrlResends int
	JobsLost    int
	Digests     int
	Adjusts     int
	PooledJoins int // jobs that attached to an existing flow class

	// Failure-plane tallies.
	HostFails     int // crash-stop events
	HostRestores  int // cold restarts
	DeadDeclared  int // owner detector declarations
	JobsRequeued  int // running jobs pulled back to a queue (all causes)
	Reroutes      int // requeues caused by dead fabric links
	VoidedJobs    int // completions voided because the destination had died
	Elections     int // successful leader elections
	Adoptions     int // orphaned-shard takeovers
	StaleLeases   int // lease messages rejected by term/id ordering
	StaleAdjusts  int // adjust broadcasts rejected as stale
	DegradedIn    int // degraded-mode entries
	DegradedOut   int // degraded-mode exits
	PartDrops     int // control messages severed by a partition
	CtrlFailCount int // controller crash-stops

	// Gray-plane tallies.
	HostLimps    int // limp-mode entries (LimpHost with factor < 1)
	HostSuspects int // scorer suspect verdicts
	HostClears   int // scorer exonerations
	Shed         int // jobs held at least once by the shed valve

	// Locality outcome histogram (index localitySame..localityCore).
	Locality [4]int
}

// tenant is a workload principal with a fair-share weight.
type tenant struct {
	weight float64
}

const (
	localitySame = iota // replica on the destination host
	localityLeaf        // same leaf/edge switch
	localityPod         // same pod (fat-tree) / same leaf domain
	localityCore        // cross-fabric
)

// New assembles hosts, fabric, and shards. The workload is attached with
// Submit or by the Generate helper; Run drains everything.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.SetDefaults()
	c := &Cluster{
		Cfg:         cfg,
		Eng:         eng,
		FSim:        fluid.NewSim(eng),
		Registry:    metrics.NewRegistry(),
		DecisionLat: metrics.NewHistogram(0.5),
		classes:     make(map[uint64]*classEntry),
		ctlRng:      rand.New(rand.NewSource(cfg.Seed ^ 0x5eedc0de)),
	}
	// Cluster runs fire tens of thousands of heartbeat, probe, digest and
	// control-RPC delivery events per virtual second, all within a couple
	// of control-plane periods of "now". Park them in a timer wheel sized
	// to cover those periods; the heap keeps only sparse far-future events
	// (lease grace, GiveUpAfter). No-op under sim.LegacyAlloc, so the
	// legacy-knob replay exercises the plain heap.
	if slot := cfg.HeartbeatEvery / 256; slot > 0 {
		if slot < cfg.CtrlDelay {
			slot = cfg.CtrlDelay
		}
		eng.EnableTimerWheel(slot, 1024)
	}
	ports := make([]fabric.Endpoint, 0, cfg.Hosts*cfg.Rails)
	for i := 0; i < cfg.Hosts; i++ {
		hn, err := c.newHost(i)
		if err != nil {
			return nil, err
		}
		c.hosts = append(c.hosts, hn)
		for r := 0; r < cfg.Rails; r++ {
			node := hn.h.M.Node(r % cfg.NUMANodes)
			ports = append(ports, fabric.Endpoint{Host: hn.h, Node: node})
		}
	}
	tc := fabric.TopoConfig{
		Kind: cfg.Topology,
		HostLink: fabric.Config{
			Rate: units.FromGbps(cfg.HostGbps),
			RTT:  cfg.HostRTT,
		},
		HostsPerLeaf: cfg.HostsPerLeaf,
		Spines:       cfg.Spines,
		K:            cfg.FatTreeK,
		UplinkRate:   units.FromGbps(cfg.UplinkGbps),
		UplinkRTT:    cfg.UplinkRTT,
	}
	topo, err := fabric.BuildTopology(c.FSim, tc, ports)
	if err != nil {
		return nil, err
	}
	c.Topo = topo
	for k := 0; k < cfg.Shards; k++ {
		c.shards = append(c.shards, newShard(c, k))
	}
	c.ownerOf = make([]int, cfg.Hosts)
	c.hostDown = make([]bool, cfg.Hosts)
	c.crashedAt = make([]sim.Time, cfg.Hosts)
	c.deadDeclared = make([]bool, cfg.Hosts)
	c.declaredAt = make([]sim.Time, cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		c.ownerOf[h] = h % cfg.Shards
		c.crashedAt[h] = -1
	}
	c.partSide = make([]bool, cfg.Shards)
	c.limp = make([]float64, cfg.Hosts)
	c.hostSuspect = make([]bool, cfg.Hosts)
	c.hostRatio = make([]float64, cfg.Hosts)
	c.firstHostSus = -1
	for h := 0; h < cfg.Hosts; h++ {
		c.limp[h] = 1
		c.hostRatio[h] = 1
	}
	if cfg.Gray.Enabled {
		c.hostRate = make([]*metrics.EWMA, cfg.Hosts)
		c.hostProg = make([]float64, cfg.Hosts)
		c.hostBreach = make([]int, cfg.Hosts)
		c.hostClear = make([]int, cfg.Hosts)
		for h := 0; h < cfg.Hosts; h++ {
			c.hostRate[h] = metrics.NewEWMA(cfg.Gray.Decay)
		}
	}
	// A dead switch trunk strands the flows routed over it; re-route them
	// as the ECMP tables reconverge. Access-link failures are host crashes
	// and go through the heartbeat detector instead.
	for _, l := range topo.Uplinks() {
		l := l
		l.Watch(func(ev fabric.Event) {
			if ev.Kind == fabric.EventDown {
				c.rerouteAround(l)
			}
		})
	}
	return c, nil
}

// newHost builds endpoint host i: machine, pooled workers, counters.
func (c *Cluster) newHost(i int) (*hostNode, error) {
	cfg := c.Cfg
	name := fmt.Sprintf("host%04d", i)
	m, err := numa.New(c.FSim, numa.Config{
		Name:                  name,
		Nodes:                 cfg.NUMANodes,
		CoresPerNode:          cfg.CoresPerNode,
		CoreHz:                cfg.CoreHz,
		MemBandwidthPerNode:   cfg.MemGBps * 1e9,
		InterconnectBandwidth: cfg.InterGBps * 1e9,
		RemoteAccessPenalty:   1.2,
		CoherencyWritePenalty: 1.3,
		MemBytes:              16 * units.GB,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: host %d: %w", i, err)
	}
	hn := &hostNode{id: i, h: host.New(name, m)}
	proc := hn.h.NewProcess("xfer", numa.PolicyBind, nil)
	for w := 0; w < cfg.Workers; w++ {
		// One bound process per worker spreads workers round-robin over
		// nodes (PolicyBind + nil node), matching the paper's
		// numactl-per-node deployment.
		if w > 0 {
			proc = hn.h.NewProcess(fmt.Sprintf("xfer%d", w), numa.PolicyBind, nil)
		}
		t := proc.NewThread()
		hn.workers = append(hn.workers, t)
		hn.bufs = append(hn.bufs, m.NewBuffer(fmt.Sprintf("%s/w%d", name, w), t.Node()))
	}
	ns := c.Registry.Namespace(name)
	hn.delivered = ns.MustCounter("delivered_bytes")
	hn.srcJobs = ns.MustCounter("src_jobs")
	hn.dstJobs = ns.MustCounter("dst_jobs")
	return hn, nil
}

// port returns the fabric port index for host h, rail r.
func (c *Cluster) port(h, rail int) int { return h*c.Cfg.Rails + rail }

// owner returns the shard currently owning host h. Ownership starts at
// h mod K and moves when a dead controller's hosts are adopted.
func (c *Cluster) owner(h int) *shard { return c.shards[c.ownerOf[h]] }

// severed reports whether a control-plane partition cuts shard a off from
// shard b. Severed sends drop deterministically — no loss coin is drawn, so
// partitions do not perturb the seeded drop sequence.
func (c *Cluster) severed(a, b int) bool {
	return c.partitioned && c.partSide[a] != c.partSide[b]
}

// sendCtrl delivers fn to shard `to` over the lossy control plane: severed
// partitions and dead controllers drop the message, the seeded loss coin
// may drop it, and survivors arrive after CtrlDelay. Reports acceptance.
func (c *Cluster) sendCtrl(from, to *shard, fn func()) bool {
	if !to.alive {
		return false
	}
	if c.severed(from.id, to.id) {
		c.PartDrops++
		return false
	}
	if c.dropped() {
		c.CtrlDrops++
		return false
	}
	c.Eng.Schedule(c.Cfg.CtrlDelay, fn)
	return true
}

// AddTenants registers n tenants; tenant t gets weight 1 + t mod 4 (four
// service classes, as the S-series experiments use).
func (c *Cluster) AddTenants(n int) {
	for i := 0; i < n; i++ {
		c.tenants = append(c.tenants, tenant{weight: float64(1 + i%4)})
	}
	for _, sh := range c.shards {
		sh.growTenants(len(c.tenants))
	}
}

// AddDataset registers a dataset with replicas on the given hosts and
// returns its id.
func (c *Cluster) AddDataset(replicas []int) int {
	c.datasets = append(c.datasets, replicas)
	return len(c.datasets) - 1
}

// Submit schedules a job: at time at, the tenant's client sends the request
// to the shard owning the destination host (lossy RPC, bounded retries).
func (c *Cluster) Submit(at sim.Time, tenantID, dataset, dst int, size float64, priority int) *job {
	j := &job{
		id:       len(c.jobs),
		tenant:   tenantID,
		dataset:  dataset,
		dst:      dst,
		size:     size,
		priority: priority,
	}
	c.jobs = append(c.jobs, j)
	c.completions = append(c.completions, 0)
	c.remaining++
	c.Eng.At(at, func() { c.submitRPC(j) })
	return j
}

// submitRPC attempts delivery of j's submit message to its owning shard,
// retrying on (seeded) drops — and on a crashed controller, which answers
// nothing — until CtrlRetries is exhausted. Ownership is re-resolved on
// every retry, so submissions ride out a failover if their retry budget
// outlives the orphan window.
func (c *Cluster) submitRPC(j *job) {
	sh := c.owner(j.dst)
	// A dead controller is a deterministic timeout: no loss coin is drawn
	// for a socket nobody answers.
	if lost := !sh.alive || c.dropped(); lost {
		if sh.alive {
			c.CtrlDrops++
		}
		if j.retries >= c.Cfg.CtrlRetries {
			j.state = jobLost
			c.JobsLost++
			if c.OnJobLost != nil {
				c.OnJobLost(j.id, c.Eng.Now())
			}
			c.jobFinished()
			c.Eng.Tracef("cluster", "job %d lost after %d retries", j.id, j.retries)
			return
		}
		j.retries++
		c.CtrlResends++
		c.Eng.Schedule(c.Cfg.CtrlTimeout, func() { c.submitRPC(j) })
		return
	}
	c.Eng.Schedule(c.Cfg.CtrlDelay, func() {
		j.submit = c.Eng.Now()
		// Ownership may have moved between send and delivery.
		c.owner(j.dst).enqueue(j)
	})
}

// dropped draws the control-plane loss coin. All draws happen inside
// engine events, so the sequence — and therefore every retry timeline — is
// a pure function of the seed.
func (c *Cluster) dropped() bool {
	if c.Cfg.DropPct <= 0 {
		return false
	}
	return c.ctlRng.Float64()*100 < c.Cfg.DropPct
}

// locality classifies a src→dst placement.
func (c *Cluster) locality(src, dst int) int {
	if src == dst {
		return localitySame
	}
	sp, dp := c.port(src, 0), c.port(dst, 0)
	if c.Topo.SameLeaf(sp, dp) {
		return localityLeaf
	}
	if c.Topo.PodIndex(sp) == c.Topo.PodIndex(dp) {
		return localityPod
	}
	return localityCore
}

// classEntry is one pooled flow class: jobs whose charged resource sets
// coincide exactly attach as member streams of a single fluid flow and the
// solver disaggregates per-member rates for free.
type classEntry struct {
	sig  uint64
	flow *fluid.Flow
	jobs int
}

// classSig hashes the pooling key: owning shard, tenant (fair-share weights
// are per-tenant per-shard, so members must share both) and the exact
// charged resource set. FNV-1a over deterministic resource indices, so the
// signature is identical across replays.
func classSig(shard, tenant int, uses []fluid.Usage) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(shard))
	mix(uint64(tenant))
	for _, u := range uses {
		mix(uint64(u.Resource.Index()))
		mix(math.Float64bits(u.Coeff))
	}
	return h
}

// sameUses reports whether two charged resource sets are identical — the
// collision check behind the signature hash.
func sameUses(a, b []fluid.Usage) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Resource != b[i].Resource || a[i].Coeff != b[i].Coeff || a[i].Tag != b[i].Tag {
			return false
		}
	}
	return true
}

// releaseClass drops a job's hold on its pool entry once the fluid side has
// detached its member transfer; the entry dies with its last member.
func (c *Cluster) releaseClass(j *job) {
	if j.class == nil {
		return
	}
	j.class.jobs--
	if j.class.jobs <= 0 && c.classes[j.class.sig] == j.class {
		// Identity check: a stale entry (flow detached before this release
		// ran) may already have been displaced by a fresh class under the
		// same signature — that one must survive this delete.
		delete(c.classes, j.class.sig)
	}
	j.class = nil
}

// start activates an admitted job: builds the flow over the chosen route
// and charges both endpoints' CPU/memory plus every fabric hop. A job with
// a checkpoint resumes: only size−ckpt bytes cross the wire again.
func (c *Cluster) start(j *job, sh *shard) {
	src, dst := c.hosts[j.src], c.hosts[j.dst]
	srcT, srcBuf := src.worker()
	dstT, dstBuf := dst.worker()
	f := c.FSim.NewFlow(fmt.Sprintf("job%06d", j.id), units.FromGbps(c.Cfg.PerJobGbps))
	j.flow = f
	loc := c.locality(j.src, j.dst)
	c.Locality[loc]++
	if loc == localitySame {
		// Replica already on the destination host: a local NUMA copy.
		dstT.ChargeCopy(f, srcBuf, dstBuf, 1, c.Cfg.CPUPerByte, host.CatCopy)
		j.hops = nil
	} else {
		rail := int(uint64(j.id) % uint64(c.Cfg.Rails))
		sp, dp := c.port(j.src, rail), c.port(j.dst, rail)
		hops := c.Topo.Route(sp, dp, uint64(j.id))
		j.hops = hops
		fabric.ChargeRoute(f, hops, 1, "wire")
		srcT.ChargeCPU(f, c.Cfg.CPUPerByte, host.CatUser)
		srcT.ChargeMemory(f, srcBuf, 1, false, host.CatUser)
		c.Topo.PortLinks[sp].A.ChargeDMA(f, srcBuf, 1, false, "dma")
		dstT.ChargeCPU(f, c.Cfg.CPUPerByte, host.CatUser)
		dstT.ChargeMemory(f, dstBuf, 1, true, host.CatUser)
		c.Topo.PortLinks[dp].A.ChargeDMA(f, dstBuf, 1, true, "dma")
	}
	if !c.Cfg.NoFlowClasses {
		sig := classSig(sh.id, j.tenant, f.Uses)
		ent, ok := c.classes[sig]
		if ok && !c.FSim.Network.Registered(ent.flow) {
			// The entry's flow already detached: its last member completed
			// in this very event and the finish callback that would retire
			// the entry is still pending behind us in the callback queue.
			// Joining would attach this job to a flow the solver no longer
			// sees — rate zero forever. Found a fresh class instead; the
			// pending releaseClass only deletes its own entry.
			ok = false
		}
		if ok {
			if sameUses(ent.flow.Uses, f.Uses) {
				// Another job already runs this exact resource path:
				// discard the freshly built twin and join its class.
				c.FSim.Network.RemoveFlow(f)
				f = ent.flow
				j.flow = f
				ent.jobs++
				j.class = ent
				c.PooledJoins++
			}
			// Signature collision with different uses: run unpooled.
		} else {
			ent := &classEntry{sig: sig, flow: f, jobs: 1}
			c.classes[sig] = ent
			j.class = ent
		}
	}
	src.srcActive++
	dst.dstActive++
	src.srcJobs.Add(1)
	dst.dstJobs.Add(1)
	j.state = jobRunning
	j.shard = sh
	remaining := j.size - j.ckpt
	if remaining <= 0 {
		// The crash landed between the last byte and the completion event;
		// re-ack the tail rather than special-casing an empty transfer.
		remaining = 1
	}
	if j.ckpt > 0 {
		c.Eng.Tracef("cluster", "shard %d resumes job %d tenant %d %s→%s from %.0f/%.0f",
			sh.id, j.id, j.tenant, src.h.Name, dst.h.Name, j.ckpt, j.size)
	} else {
		c.Eng.Tracef("cluster", "shard %d starts job %d tenant %d %s→%s (%s, loc %d)",
			sh.id, j.id, j.tenant, src.h.Name, dst.h.Name, units.FormatBytes(int64(j.size)), loc)
	}
	j.xfer = &fluid.Transfer{
		Flow:       f,
		Remaining:  remaining,
		OnComplete: func(now sim.Time) { c.finish(j, now) },
	}
	if j.class != nil {
		c.FSim.StartMember(j.xfer)
	} else {
		c.FSim.Start(j.xfer)
	}
}

// finish handles transfer completion: accounting, fair-share bookkeeping,
// and re-admission kicks for the shards whose hosts freed capacity. A
// completion racing a destination crash is voided — the landing never
// committed — and the job restarts from zero on the recovery path, which
// is what keeps delivery exactly-once instead of at-most-once.
func (c *Cluster) finish(j *job, now sim.Time) {
	src, dst := c.hosts[j.src], c.hosts[j.dst]
	if c.hostDown[j.dst] {
		src.srcActive--
		dst.dstActive--
		j.ckpt = 0
		c.releaseClass(j)
		j.xfer, j.flow, j.hops = nil, nil, nil
		c.VoidedJobs++
		c.JobsRequeued++
		c.Eng.Tracef("cluster", "job %d completion voided: %s died before commit", j.id, dst.h.Name)
		j.shard.removeRunning(j)
		j.shard.insert(j)
		return
	}
	src.srcActive--
	dst.dstActive--
	dst.delivered.Add(j.size)
	c.releaseClass(j)
	j.state = jobDone
	c.completions[j.id]++
	j.shard.jobDone(j)
	c.Eng.Tracef("cluster", "job %d done (%s to %s)", j.id, units.FormatBytes(int64(j.size)), dst.h.Name)
	if c.OnJobDone != nil {
		c.OnJobDone(j.id, now)
	}
	c.jobFinished()
	if c.remaining > 0 {
		c.owner(j.src).admit()
		if c.owner(j.dst) != c.owner(j.src) {
			c.owner(j.dst).admit()
		}
	}
}

// jobFinished retires one job; at zero the control plane's tickers stop so
// the event queue can drain.
func (c *Cluster) jobFinished() {
	c.remaining--
	if c.remaining == 0 {
		c.done = true
		for _, sh := range c.shards {
			sh.stop()
		}
		if c.grayT != nil {
			c.grayT.Stop()
		}
		c.Eng.Tracef("cluster", "all jobs retired at %.6f", float64(c.Eng.Now()))
	}
}

// Run drives the simulation until every job is done or lost and the event
// queue drains.
func (c *Cluster) Run() {
	for _, sh := range c.shards {
		sh.startTickers()
	}
	if c.Cfg.Gray.Enabled {
		c.grayT = c.Eng.NewTicker(c.Cfg.Gray.Every, func(now sim.Time) { c.scoreHosts(now) })
	}
	c.Eng.Run()
	c.FSim.Sync()
	// A final deterministic counters line folds aggregate outcomes into the
	// trace, so replay verification covers accounting — including the whole
	// failure plane — not just event order.
	c.Eng.Tracef("cluster", "final delivered=%.0f drops=%d resends=%d lost=%d digests=%d adjusts=%d loc=%v",
		c.Registry.SumCounters("delivered_bytes"), c.CtrlDrops, c.CtrlResends,
		c.JobsLost, c.Digests, c.Adjusts, c.Locality)
	c.Eng.Tracef("cluster", "final failures hostfail=%d restore=%d declared=%d requeued=%d rerouted=%d voided=%d elections=%d adoptions=%d stale=%d/%d degraded=%d/%d partdrops=%d",
		c.HostFails, c.HostRestores, c.DeadDeclared, c.JobsRequeued, c.Reroutes,
		c.VoidedJobs, c.Elections, c.Adoptions, c.StaleLeases, c.StaleAdjusts,
		c.DegradedIn, c.DegradedOut, c.PartDrops)
	// Gray-plane summary only when the plane could have acted: a legacy run
	// must not gain a single trace byte.
	if c.Cfg.Gray.Enabled || c.HostLimps > 0 {
		c.Eng.Tracef("cluster", "final gray limps=%d suspects=%d clears=%d shed=%d",
			c.HostLimps, c.HostSuspects, c.HostClears, c.Shed)
	}
}

// HostForKey deterministically routes an object key onto a host: FNV-1a
// over the key, mod the host count. The objstore gateway shards tenant
// namespaces across the cluster with it; pinning a (tenant, key-range) to
// one host is what lets adjacent small objects coalesce into one job.
func HostForKey(key string, hosts int) int {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return int(h % uint64(hosts))
}

// HostForKey routes an object key onto one of this cluster's hosts.
func (c *Cluster) HostForKey(key string) int { return HostForKey(key, len(c.hosts)) }

// NextJobID returns the id the next Submit call will assign (jobs are
// numbered in submission order), so callers can correlate OnJobDone
// callbacks with their own bookkeeping.
func (c *Cluster) NextJobID() int { return len(c.jobs) }

// Hosts returns the number of simulated hosts.
func (c *Cluster) Hosts() int { return len(c.hosts) }

// Jobs returns the number of submitted jobs.
func (c *Cluster) Jobs() int { return len(c.jobs) }

// Tenants returns the number of registered tenants.
func (c *Cluster) Tenants() int { return len(c.tenants) }
