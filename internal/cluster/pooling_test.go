package cluster

import (
	"math"
	"testing"

	"e2edt/internal/sim"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

// TestApplyWeightEmptyTenantRace is the directed regression for the
// fair-share divide-by-zero: a tenant whose last job completed in the same
// tick its digest/adjust arrives has an empty running flow set, and a job
// mid-requeue can sit in the running list with a nil flow. Neither may
// panic, divide by zero, or count toward the per-job split.
func TestApplyWeightEmptyTenantRace(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Hosts: 4, Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(2)
	s := c.shards[0]

	if s.applyWeight(0) {
		t.Fatal("applyWeight reported a change with no running jobs")
	}
	// A job pulled back mid-requeue: in the running set, flow already nil.
	s.running = append(s.running, &job{tenant: 0})
	if s.applyWeight(0) {
		t.Fatal("applyWeight counted a nil-flow job")
	}
	// rebalance over empty and nil-flow tenants must be a clean no-op too.
	s.rebalance([]int{0, 0, 1})

	// Now one real flow: the nil-flow job must not dilute the split.
	f := c.FSim.NewFlow("t0", 1e9)
	s.running = append(s.running, &job{tenant: 0, flow: f})
	s.adjust[0] = 2
	if !s.applyWeight(0) {
		t.Fatal("applyWeight missed a genuine weight change")
	}
	want := c.tenants[0].weight * 2 // n=1: the nil-flow job is not counted
	if f.Weight != want || math.IsNaN(f.Weight) {
		t.Fatalf("flow weight = %v, want %v", f.Weight, want)
	}
}

// runPooled drives a directed single-route workload — one tenant, one
// replica host, one destination, one rail, one spine, one worker — so every
// concurrently admitted job charges the identical resource set.
func runPooled(t *testing.T, noClasses bool) (string, Report, int) {
	t.Helper()
	eng := sim.NewEngine()
	h := trace.NewHasher()
	eng.SetTracer(h)
	c, err := New(eng, Config{
		Hosts: 4, Shards: 2, Seed: 11,
		Spines: 1, Rails: 1, Workers: 1,
		NoFlowClasses: noClasses,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(1)
	d := c.AddDataset([]int{0})
	for i := 0; i < 24; i++ {
		c.Submit(sim.Time(float64(i)*0.001), 0, d, 1, 4*float64(units.MB), 0)
	}
	c.Run()
	return h.Sum(), c.Report(), c.PooledJoins
}

// TestFlowClassPoolingEquivalence: pooling same-route jobs into flow
// classes must not change what the cluster computes — same delivered bytes,
// no losses, near-identical makespan — while actually engaging (the pooled
// run joins existing classes; the knob run never does). Both modes must
// stay replay-deterministic.
func TestFlowClassPoolingEquivalence(t *testing.T) {
	sumP1, repP, joins := runPooled(t, false)
	sumP2, _, _ := runPooled(t, false)
	sumU1, repU, joinsOff := runPooled(t, true)
	sumU2, _, _ := runPooled(t, true)
	if sumP1 != sumP2 || sumU1 != sumU2 {
		t.Fatal("pooling mode broke replay determinism")
	}
	if joins == 0 {
		t.Fatal("directed single-route workload never pooled a job")
	}
	if joinsOff != 0 {
		t.Fatalf("NoFlowClasses run recorded %d pooled joins", joinsOff)
	}
	if repP.JobsLost != 0 || repU.JobsLost != 0 {
		t.Fatalf("lossless runs lost jobs: %d pooled, %d unpooled",
			repP.JobsLost, repU.JobsLost)
	}
	if repP.DeliveredBytes != repU.DeliveredBytes {
		t.Fatalf("delivered bytes diverged: %.0f pooled vs %.0f unpooled",
			repP.DeliveredBytes, repU.DeliveredBytes)
	}
	if d := math.Abs(repP.VirtualSeconds - repU.VirtualSeconds); d > 0.01*repU.VirtualSeconds {
		t.Fatalf("makespan diverged: %.6fs pooled vs %.6fs unpooled",
			repP.VirtualSeconds, repU.VirtualSeconds)
	}
}

// TestClusterTimerWheelKnob: a cluster engine gets a timer wheel for its
// heartbeat/probe/sampler load unless the legacy allocation knob (the
// benchmark baseline) is set, in which case the plain heap must be used so
// knob-paired replays compare like with like.
func TestClusterTimerWheelKnob(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, Config{Hosts: 4, Shards: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !eng.WheelEnabled() {
		t.Fatal("cluster did not enable the timer wheel")
	}
	sim.LegacyAlloc = true
	defer func() { sim.LegacyAlloc = false }()
	leng := sim.NewEngine()
	if _, err := New(leng, Config{Hosts: 4, Shards: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if leng.WheelEnabled() {
		t.Fatal("legacy engine must not get a timer wheel")
	}
}
