package sim_test

import (
	"fmt"

	"e2edt/internal/sim"
)

// Example demonstrates deterministic discrete-event scheduling: events fire
// in time order, ties break in scheduling order, and virtual time is free.
func Example() {
	eng := sim.NewEngine()
	eng.Schedule(2, func() { fmt.Println("second, at", eng.Now()) })
	eng.Schedule(1, func() {
		fmt.Println("first, at", eng.Now())
		eng.Schedule(1.5, func() { fmt.Println("nested, at", eng.Now()) })
	})
	eng.Run()
	// Output:
	// first, at 1
	// second, at 2
	// nested, at 2.5
}
