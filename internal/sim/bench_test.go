package sim

import "testing"

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, func() {})
		e.Step()
	}
}

func BenchmarkHeapChurn1k(b *testing.B) {
	// 1000 pending events at all times.
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.Schedule(Duration(i+1), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(2000), func() {})
		e.Step()
	}
}
