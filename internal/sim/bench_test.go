package sim

import "testing"

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, func() {})
		e.Step()
	}
}

func BenchmarkHeapChurn1k(b *testing.B) {
	// 1000 pending events at all times.
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.Schedule(Duration(i+1), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(2000), func() {})
		e.Step()
	}
}

// BenchmarkScheduleCancelChurn is the watchdog-reset pattern: a pending
// event is cancelled and replaced on every op. The event free-list and
// lazy-cancel compaction make this allocation-free at steady state.
func BenchmarkScheduleCancelChurn(b *testing.B) {
	e := NewEngine()
	evs := make([]*Event, 1000)
	for i := range evs {
		evs[i] = e.Schedule(Duration(i+1), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % len(evs)
		e.Cancel(evs[slot])
		evs[slot] = e.Schedule(Duration(2000+i), func() {})
	}
}
