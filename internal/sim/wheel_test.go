package sim

import (
	"math/rand"
	"testing"
)

// stormRun drives one engine through a seeded schedule/cancel storm and
// returns the exact firing sequence. Both storm halves (initial schedule and
// in-callback reschedule/cancel) draw from the same deterministic stream, so
// two engines fed the same seed must produce identical logs — unless their
// event ordering diverges.
func stormRun(e *Engine, seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	var log []int
	// live tracks only genuinely pending events by id: fired events remove
	// themselves, cancelled ones are removed at cancel time, so the storm
	// never dereferences a recycled Event struct.
	type pend struct {
		id int
		ev *Event
	}
	var live []pend
	remove := func(id int) {
		for i := range live {
			if live[i].id == id {
				live = append(live[:i], live[i+1:]...)
				return
			}
		}
	}
	id := 0
	var schedule func(at Time)
	schedule = func(at Time) {
		myID := id
		id++
		ev := e.At(at, func() {
			remove(myID)
			log = append(log, myID)
			switch rng.Intn(4) {
			case 0:
				if id < n*4 {
					at := e.Now() + Time(rng.Float64()*40)
					if rng.Intn(2) == 0 { // quantized: exact-tie stress
						at = e.Now() + Time(rng.Intn(160))*0.25
					}
					schedule(at)
				}
			case 1:
				if len(live) > 0 {
					j := rng.Intn(len(live))
					e.Cancel(live[j].ev)
					live = append(live[:j], live[j+1:]...)
				}
			}
		})
		live = append(live, pend{myID, ev})
	}
	for i := 0; i < n; i++ {
		at := Time(rng.Float64() * 30)
		if rng.Intn(2) == 0 {
			at = Time(rng.Intn(120)) * 0.25
		}
		schedule(at)
	}
	e.Run()
	return log
}

// TestWheelMatchesHeapOrder: under a randomized schedule/cancel storm with
// exact time ties, reschedules from callbacks, and events past the wheel
// horizon, a wheel-enabled engine must fire the identical event sequence as
// a heap-only engine.
func TestWheelMatchesHeapOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		hp := NewEngine()
		wl := NewEngine()
		wl.EnableTimerWheel(0.25, 64) // horizon 16 « max event time
		if !wl.WheelEnabled() || hp.WheelEnabled() {
			t.Fatal("wheel knob state wrong")
		}
		a := stormRun(hp, seed, 200)
		b := stormRun(wl, seed, 200)
		if len(a) != len(b) {
			t.Fatalf("seed %d: %d events fired on heap, %d on wheel", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: firing order diverged at %d: heap %d, wheel %d",
					seed, i, a[i], b[i])
			}
		}
		if hp.Now() != wl.Now() || wl.Pending() != 0 {
			t.Fatalf("seed %d: clocks %v vs %v, wheel pending %d",
				seed, hp.Now(), wl.Now(), wl.Pending())
		}
	}
}

// TestWheelStopResumeContract: events bypassed when Stop() halts a RunUntil
// stay queued — including events parked in wheel slots whose window then
// passes — and fire when processing resumes, exactly as on the plain heap.
func TestWheelStopResumeContract(t *testing.T) {
	run := func(e *Engine) []Time {
		var fired []Time
		for i := 1; i <= 12; i++ {
			at := Time(i)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.At(3.5, func() { e.Stop() })
		e.RunUntil(20) // stops at 3.5; clock still advances to 20
		if e.Now() != 20 {
			// The stranded events must not block the clock contract.
			return nil
		}
		e.RunFor(10) // stranded events (t=4..12) fire now, in order
		return fired
	}
	hp := NewEngine()
	wl := NewEngine()
	wl.EnableTimerWheel(0.5, 8) // horizon 4: most events start past it
	a, b := run(hp), run(wl)
	if a == nil || b == nil {
		t.Fatal("RunUntil did not advance the clock to its target after Stop")
	}
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("fired %d (heap) and %d (wheel) events, want 12", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stranded-event order diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestWheelPendingAndCancel: Pending must count parked wheel events, and a
// wheel cancel must be O(1)-lazy yet immediately reflected in Pending.
func TestWheelPendingAndCancel(t *testing.T) {
	e := NewEngine()
	e.EnableTimerWheel(1, 16)
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, e.Schedule(Duration(1+i%8), func() {}))
	}
	far := e.Schedule(100, func() {}) // beyond the horizon: heap
	if got := e.Pending(); got != 11 {
		t.Fatalf("Pending = %d, want 11", got)
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Cancel(far)
	if got := e.Pending(); got != 8 {
		t.Fatalf("Pending after 3 cancels = %d, want 8", got)
	}
	fired := 0
	for _, ev := range evs {
		if !ev.Cancelled() {
			fired++ // count live events still due
		}
	}
	e.At(50, func() {})
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
	if int(e.Processed) != fired+1 {
		t.Fatalf("fired %d events, want %d live + 1", e.Processed, fired)
	}
}

// TestWheelSteadyStateAllocFree: ticker-style periodic load parked on the
// wheel must reach a zero-allocation steady state — events recycle through
// the free list and slot arrays are reused. The rescheduling closures are
// built once up front (Ticker allocates a fresh closure per arm, with or
// without a wheel, so it cannot pin this property).
func TestWheelSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	e.EnableTimerWheel(0.5, 64)
	fns := make([]func(), 32)
	for i := 0; i < 32; i++ {
		iv := Duration(1 + i%7)
		idx := i
		fns[idx] = func() { e.Schedule(iv, fns[idx]) }
		e.Schedule(iv, fns[idx])
	}
	e.RunFor(100) // warm the free list and slot arrays
	avg := testing.AllocsPerRun(50, func() {
		e.RunFor(10)
	})
	if avg != 0 {
		t.Fatalf("wheel periodic steady state allocates %v per RunFor, want 0", avg)
	}
}

// TestCompactFullyCancelledSmallQueue is the regression pin for the
// maybeCompact starvation bug: a queue that is 100% cancelled must be
// reclaimed immediately, however small — the old ≤64-entry threshold left
// it parked forever, so Pending()==0 idle loops spun over dead events and
// the structs never returned to the free list.
func TestCompactFullyCancelledSmallQueue(t *testing.T) {
	e := NewEngine()
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, e.Schedule(Duration(i+1), func() {}))
	}
	for _, ev := range evs {
		e.Cancel(ev)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending = %d, want 0", got)
	}
	if len(e.queue) != 0 || e.cancelled != 0 {
		t.Fatalf("fully-cancelled queue not compacted: %d slots, %d stale",
			len(e.queue), e.cancelled)
	}
	if len(e.free) < 10 {
		t.Fatalf("only %d events returned to the free list, want 10", len(e.free))
	}
	// And the free list is actually reused: fresh schedules must not grow it.
	before := len(e.free)
	ev := e.Schedule(1, func() {})
	if len(e.free) != before-1 {
		t.Fatal("Schedule did not reuse a recycled event")
	}
	e.Cancel(ev)
}

// TestDrainCompactAfterStop: when a run loop hands control back with the
// queue holding nothing but stale cancellations (the last live event fired
// after the Cancel arrived), the drain sweep must reclaim them even though
// no further Cancel will push the counter over the threshold.
func TestDrainCompactAfterStop(t *testing.T) {
	e := NewEngine()
	d := e.At(4, func() {}) // will be cancelled, never reclaimed by Cancel
	e.At(1, func() { e.Cancel(d) })
	e.At(2, func() {})
	e.At(3, func() { e.Stop() }) // loop exits before peek can prune d
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
	if len(e.queue) != 0 || e.cancelled != 0 {
		t.Fatalf("drain compact missed the stale queue: %d slots, %d stale",
			len(e.queue), e.cancelled)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

// TestWheelEnableGuards: geometry validation, the LegacyAlloc no-op, and
// idempotence of EnableTimerWheel.
func TestWheelEnableGuards(t *testing.T) {
	e := NewEngine()
	for _, bad := range []struct {
		slot  Duration
		slots int
	}{{0, 16}, {-1, 16}, {1, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("EnableTimerWheel(%v, %d) did not panic", bad.slot, bad.slots)
				}
			}()
			e.EnableTimerWheel(bad.slot, bad.slots)
		}()
	}
	e.EnableTimerWheel(1, 16)
	e.EnableTimerWheel(2, 32) // second enable: no-op, geometry unchanged
	if len(e.wheel) != 16 || e.slotW != 1 {
		t.Fatalf("second EnableTimerWheel changed geometry to %d × %v",
			len(e.wheel), e.slotW)
	}
	LegacyAlloc = true
	defer func() { LegacyAlloc = false }()
	le := NewEngine()
	le.EnableTimerWheel(1, 16)
	if le.WheelEnabled() {
		t.Fatal("EnableTimerWheel must be a no-op under LegacyAlloc")
	}
}
