// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated subsystems in this repository (NUMA memory controllers,
// RDMA fabrics, TCP stacks, storage devices) share one Engine instance. The
// engine maintains a virtual clock measured in seconds and an event queue
// ordered by (time, sequence). Events scheduled for the same instant fire in
// the order they were scheduled, which makes every simulation run fully
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/bits"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

const (
	// Forever is a time later than any event the engine will ever fire.
	Forever Time = math.MaxFloat64
	// Microsecond, Millisecond and Second express durations in seconds.
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
)

// LegacyAlloc, when set before NewEngine, disables event recycling and
// lazy cancellation: every Schedule allocates a fresh Event and Cancel
// removes it from the heap eagerly, as the pre-optimization engine did. It
// exists so the benchmark harness (cmd/benchreport) can measure the
// allocation behavior of both paths in one binary. Production code never
// sets it.
var LegacyAlloc bool

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Engine.Schedule and Engine.At.
//
// Fired and cancelled events are recycled: once an event has fired (or its
// cancellation has been observed by the engine), the *Event may be reused
// by a later Schedule. Callers that retain an event pointer must drop it
// when the event fires and after calling Cancel, and must not Cancel a
// pointer obtained from an earlier, already-fired scheduling.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index; -1 once removed, -2 while parked in the wheel
	fired  bool
	cancel bool
}

// wheelIndex marks an event stored in a timer-wheel slot instead of the heap.
const wheelIndex = -2

// Time reports when the event is (or was) due to fire.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Tracer receives simulation trace events when installed on an engine.
// Implementations live in the trace package; the interface sits here so
// every subsystem can emit through the engine it already holds.
type Tracer interface {
	// Event is called with the current virtual time, the emitting
	// subsystem ("fluid", "iscsi", "rftp", ...) and a formatted message.
	Event(now Time, subsys, msg string)
}

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// a simulation is a single-threaded computation over virtual time.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	running bool
	stopped bool
	tracer  Tracer
	// Processed counts events that have fired, for diagnostics.
	Processed uint64

	// free holds fired/cancelled events for reuse, so steady-state
	// Schedule/Cancel churn (credit loops, watchdog resets) does not
	// allocate. Bounded by the peak number of live events.
	free []*Event
	// cancelled counts lazily-cancelled events still occupying queue
	// slots; Cancel marks instead of removing, and the queue is compacted
	// once cancelled events dominate it.
	cancelled int
	legacy    bool

	// Timer wheel (EnableTimerWheel): near-future events — heartbeat,
	// probe and sampler ticks at cluster scale — go into fixed-width ring
	// slots with O(1) insert and cancel; the heap keeps only events beyond
	// the wheel horizon. Slot wheelCur covers [wheelBase, wheelBase+slotW).
	wheel         []wheelSlot
	slotW         Duration
	wheelBase     Time
	wheelCur      int
	wheelLive     int      // parked events that are not cancelled
	wheelCount    int      // parked events including stale cancellations
	occ           []uint64 // per-slot occupancy bitmap, for sparse scans
	wheelPeekSlot int      // slot of the event the last peek returned
}

// wheelSlot is one ring bucket. evs[head:] holds the undrained events; the
// live region is sorted by (at, seq) lazily, on first read, so inserts stay
// O(1). The backing array is reused after the slot drains.
type wheelSlot struct {
	evs    []*Event
	head   int
	sorted bool
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{legacy: LegacyAlloc}
}

// alloc returns a recycled Event when one is available.
func (e *Engine) alloc(at Time, fn func()) *Event {
	e.seq++
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{at: at, seq: e.seq, fn: fn}
		return ev
	}
	return &Event{at: at, seq: e.seq, fn: fn}
}

// recycle returns an event the engine is done with to the free list. The
// fired/cancel flags survive until reuse so stale accessors stay truthful.
func (e *Engine) recycle(ev *Event) {
	if e.legacy {
		return
	}
	ev.fn = nil // release the closure and anything it captured
	e.free = append(e.free, ev)
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTracer installs (or, with nil, removes) a trace sink.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// Tracing reports whether a tracer is installed, so callers can skip
// building expensive messages.
func (e *Engine) Tracing() bool { return e.tracer != nil }

// Tracef emits a formatted trace event when a tracer is installed.
func (e *Engine) Tracef(subsys, format string, args ...any) {
	if e.tracer == nil {
		return
	}
	e.tracer.Event(e.now, subsys, fmt.Sprintf(format, args...))
}

// Pending returns the number of events still queued (excluding
// lazily-cancelled ones awaiting compaction).
func (e *Engine) Pending() int { return len(e.queue) - e.cancelled + e.wheelLive }

// EnableTimerWheel routes events due within slot×slots of the current time
// into a timer wheel (O(1) insert and cancel) instead of the heap, which
// keeps only sparse far-future events. Firing order is unchanged: the wheel
// and heap are merged by (time, sequence) on every pop, so an enabled wheel
// is observationally identical to the plain heap. Under LegacyAlloc (and
// once a wheel is already installed) this is a no-op, which gives the
// benchmark harness a one-knob before/after comparison.
func (e *Engine) EnableTimerWheel(slot Duration, slots int) {
	if e.legacy || e.wheel != nil {
		return
	}
	if slot <= 0 || slots < 2 {
		panic(fmt.Sprintf("sim: invalid timer wheel geometry %v × %d", slot, slots))
	}
	e.wheel = make([]wheelSlot, slots)
	e.occ = make([]uint64, (slots+63)/64)
	e.slotW = slot
	e.wheelBase = e.now
	e.wheelCur = 0
}

// WheelEnabled reports whether a timer wheel is installed.
func (e *Engine) WheelEnabled() bool { return e.wheel != nil }

// advanceWheel rotates the wheel so the current slot's window contains the
// clock. Passed slots are flushed: live events left behind by a Stop spill
// to the heap (they fire at the then-current clock, preserving the RunUntil
// contract), stale cancellations are reclaimed.
func (e *Engine) advanceWheel() {
	W := Time(e.slotW)
	n := len(e.wheel)
	if e.wheelCount == 0 {
		// Empty wheel: snap the window to the clock in O(1), so a far
		// jump in virtual time never walks slot by slot.
		if e.now-e.wheelBase >= W {
			e.wheelBase = e.now
		}
		return
	}
	if e.now-e.wheelBase >= W*Time(n) {
		// The whole horizon is in the past; one sweep bounds the work.
		for si := range e.wheel {
			e.flushSlot(si)
		}
		e.wheelBase = e.now
		return
	}
	for e.wheelBase+W <= e.now {
		e.flushSlot(e.wheelCur)
		e.wheelCur++
		if e.wheelCur == n {
			e.wheelCur = 0
		}
		e.wheelBase += W
		if e.wheelCount == 0 {
			if e.now-e.wheelBase >= W {
				e.wheelBase = e.now
			}
			return
		}
	}
}

// flushSlot empties a slot whose window has passed.
func (e *Engine) flushSlot(si int) {
	s := &e.wheel[si]
	for j := s.head; j < len(s.evs); j++ {
		ev := s.evs[j]
		s.evs[j] = nil
		e.wheelCount--
		if ev.cancel {
			ev.index = -1
			e.recycle(ev)
			continue
		}
		e.wheelLive--
		heap.Push(&e.queue, ev)
	}
	s.evs = s.evs[:0]
	s.head = 0
	s.sorted = true
	e.occ[si>>6] &^= 1 << (uint(si) & 63)
}

// nextOccupied returns the first slot index in [lo, hi) with its occupancy
// bit set, or -1. Word-at-a-time, so sparse wheels scan fast.
func (e *Engine) nextOccupied(lo, hi int) int {
	if lo >= hi {
		return -1
	}
	for w := lo >> 6; w<<6 < hi; w++ {
		word := e.occ[w]
		if base := w << 6; base < lo {
			word &= ^uint64(0) << (uint(lo - base))
		}
		if word == 0 {
			continue
		}
		i := w<<6 + bits.TrailingZeros64(word)
		if i >= hi {
			return -1
		}
		return i
	}
	return -1
}

// sortSlot orders the live region by (at, seq). Insertion sort: slots hold
// a handful of events and the sort must not allocate.
func sortSlot(s *wheelSlot) {
	evs := s.evs[s.head:]
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i
		for j > 0 && (evs[j-1].at > ev.at || (evs[j-1].at == ev.at && evs[j-1].seq > ev.seq)) {
			evs[j] = evs[j-1]
			j--
		}
		evs[j] = ev
	}
	s.sorted = true
}

// slotHead returns the earliest live event in slot si, reclaiming stale
// cancellations in passing; nil once the slot drains (its bit is cleared).
func (e *Engine) slotHead(si int) *Event {
	s := &e.wheel[si]
	for s.head < len(s.evs) {
		if !s.sorted {
			sortSlot(s)
		}
		ev := s.evs[s.head]
		if !ev.cancel {
			return ev
		}
		s.evs[s.head] = nil
		s.head++
		e.wheelCount--
		ev.index = -1
		e.recycle(ev)
	}
	s.evs = s.evs[:0]
	s.head = 0
	s.sorted = true
	e.occ[si>>6] &^= 1 << (uint(si) & 63)
	return nil
}

// peekWheel returns the earliest live wheel event, or nil. Scanning slots
// outward from wheelCur visits them in window (time) order, so the first
// live head is the wheel's minimum.
func (e *Engine) peekWheel() *Event {
	if e.wheel == nil || e.wheelLive == 0 {
		return nil
	}
	e.advanceWheel()
	if e.wheelLive == 0 {
		return nil
	}
	n := len(e.wheel)
	for pass := 0; pass < 2; pass++ {
		lo, hi := e.wheelCur, n
		if pass == 1 {
			lo, hi = 0, e.wheelCur
		}
		for si := e.nextOccupied(lo, hi); si >= 0; si = e.nextOccupied(si+1, hi) {
			if ev := e.slotHead(si); ev != nil {
				e.wheelPeekSlot = si
				return ev
			}
		}
	}
	return nil
}

// peek returns the earliest live event across the heap and the wheel
// without removing it, pruning cancelled entries from both structures.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 && e.queue[0].cancel {
		ev := heap.Pop(&e.queue).(*Event)
		e.cancelled--
		e.recycle(ev)
	}
	var hv *Event
	if len(e.queue) > 0 {
		hv = e.queue[0]
	}
	wv := e.peekWheel()
	if wv == nil {
		return hv
	}
	if hv == nil {
		return wv
	}
	if wv.at < hv.at || (wv.at == hv.at && wv.seq < hv.seq) {
		return wv
	}
	return hv
}

// take removes the event peek just returned from its structure.
func (e *Engine) take(ev *Event) {
	if ev.index == wheelIndex {
		si := e.wheelPeekSlot
		s := &e.wheel[si]
		if s.head >= len(s.evs) || s.evs[s.head] != ev {
			panic("sim: timer wheel out of sync")
		}
		s.evs[s.head] = nil
		s.head++
		e.wheelCount--
		e.wheelLive--
		ev.index = -1
		if s.head == len(s.evs) {
			s.evs = s.evs[:0]
			s.head = 0
			s.sorted = true
			e.occ[si>>6] &^= 1 << (uint(si) & 63)
		}
		return
	}
	heap.Pop(&e.queue)
}

// fire runs a popped event's callback, advancing the clock to its time.
func (e *Engine) fire(ev *Event) {
	if ev.at > e.now {
		e.now = ev.at
	}
	ev.fired = true
	e.Processed++
	ev.fn()
	// Recycle only after the callback returns: while it runs, the fired
	// flag keeps a self-Cancel harmless, and no new Schedule can reuse the
	// struct out from under a holder.
	e.recycle(ev)
}

// Schedule queues fn to run after delay. A negative delay is an error in the
// caller; Schedule panics to surface the bug immediately.
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+Time(delay), fn)
}

// At queues fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a causality bug in the calling model.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.alloc(t, fn)
	if e.wheel != nil {
		e.advanceWheel()
		if off := t - e.wheelBase; off < Time(e.slotW)*Time(len(e.wheel)) {
			idx := int(off / Time(e.slotW))
			if idx < len(e.wheel) { // guard against float rounding at the horizon
				si := e.wheelCur + idx
				if n := len(e.wheel); si >= n {
					si -= n
				}
				s := &e.wheel[si]
				s.evs = append(s.evs, ev)
				s.sorted = len(s.evs)-s.head <= 1
				e.occ[si>>6] |= 1 << (uint(si) & 63)
				ev.index = wheelIndex
				e.wheelLive++
				e.wheelCount++
				return ev
			}
		}
	}
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes ev from the queue if it has not fired. Cancelling an
// already-fired or already-cancelled event is a no-op. The cancellation is
// lazy: the event keeps its heap slot until the engine reaches it (or a
// compaction sweep reclaims it), making Cancel O(1) instead of O(log n).
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.fired || ev.cancel {
		return
	}
	ev.cancel = true
	if ev.index == wheelIndex {
		e.wheelLive-- // lazy: the slot entry is reclaimed when scanned over
		return
	}
	if ev.index < 0 {
		return
	}
	if e.legacy {
		heap.Remove(&e.queue, ev.index)
		return
	}
	e.cancelled++
	e.maybeCompact()
}

// maybeCompact rebuilds the heap without cancelled events once they hold
// the majority of its slots — or all of them, however few: a queue that is
// 100% cancelled is dead weight whatever its size, and leaving it uncompacted
// would let Pending()==0 idle loops spin over it forever. Bounds queue
// growth under heavy schedule/cancel churn (watchdog resets, credit-loop
// timers).
func (e *Engine) maybeCompact() {
	if e.cancelled == 0 {
		return
	}
	if e.cancelled < len(e.queue) && (e.cancelled <= 64 || e.cancelled*2 <= len(e.queue)) {
		return
	}
	kept := e.queue[:0]
	for _, ev := range e.queue {
		if ev.cancel {
			ev.index = -1
			e.recycle(ev)
		} else {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = kept
	for i, ev := range e.queue {
		ev.index = i
	}
	heap.Init(&e.queue)
	e.cancelled = 0
}

// Step fires the earliest pending event — across the heap and the timer
// wheel — and advances the clock to its time. It reports false when nothing
// is pending. An event left behind by a stopped RunUntil (see Stop) can be
// due in the past; the clock never moves backwards — such events fire at
// the current time.
func (e *Engine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	e.take(ev)
	e.fire(ev)
	return true
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	e.drainCompact()
}

// RunUntil processes events with time ≤ t, then advances the clock to t.
// Events scheduled exactly at t do fire. The final clock advance happens
// even when Stop() halted processing mid-run, so a subsequent RunFor(d)
// always covers [t, t+d] — events bypassed by the Stop stay queued and
// fire (at the then-current clock) when processing resumes.
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.take(ev)
		e.fire(ev)
	}
	if t > e.now {
		e.now = t
	}
	e.drainCompact()
}

// drainCompact reclaims a queue that drained down to nothing but stale
// cancellations when a run loop hands control back, so the event structs
// return to the free list even though no further Cancel will arrive to
// trigger the threshold sweep.
func (e *Engine) drainCompact() {
	if e.cancelled > 0 && e.cancelled == len(e.queue) {
		e.maybeCompact()
	}
}

// RunFor processes events within the next d seconds of virtual time.
func (e *Engine) RunFor(d Duration) {
	e.RunUntil(e.now + Time(d))
}

// Stop halts Run/RunUntil after the current event returns. It stops event
// processing only: a surrounding RunUntil/RunFor still advances the clock
// to its target time, so post-stop Now() is never stale.
func (e *Engine) Stop() { e.stopped = true }

// Sleeper supports periodic activities: it reschedules fn every interval
// until Stop is called.
type Ticker struct {
	engine   *Engine
	interval Duration
	fn       func(Time)
	ev       *Event
	stopped  bool
}

// NewTicker schedules fn to run every interval, first at now+interval.
func (e *Engine) NewTicker(interval Duration, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.Schedule(t.interval, func() {
		// Drop the reference first: the fired event will be recycled, and
		// a later Stop must not cancel whatever reuses it.
		t.ev = nil
		if t.stopped {
			return
		}
		t.fn(t.engine.Now())
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop prevents any further ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.ev)
	t.ev = nil
}

// Timer is a one-shot virtual-time timer that can be cancelled or re-armed,
// for retry backoff and watchdog deadlines: unlike a raw Event, resetting a
// Timer supersedes its pending firing instead of stacking a second one.
type Timer struct {
	engine *Engine
	fn     func(Time)
	ev     *Event
}

// NewTimer schedules fn to run once after d. Reset re-arms it; Stop cancels
// a pending firing.
func (e *Engine) NewTimer(d Duration, fn func(Time)) *Timer {
	if fn == nil {
		panic("sim: nil timer callback")
	}
	t := &Timer{engine: e, fn: fn}
	t.Reset(d)
	return t
}

// Reset cancels any pending firing and re-arms the timer for now+d.
func (t *Timer) Reset(d Duration) {
	t.engine.Cancel(t.ev)
	t.ev = t.engine.Schedule(d, func() {
		t.ev = nil // the fired event is recycled; never cancel it later
		t.fn(t.engine.Now())
	})
}

// Stop cancels the pending firing, if any. The timer can be re-armed with
// Reset afterwards.
func (t *Timer) Stop() {
	t.engine.Cancel(t.ev)
	t.ev = nil
}

// Active reports whether a firing is pending.
func (t *Timer) Active() bool {
	return t.ev != nil && !t.ev.Fired() && !t.ev.Cancelled()
}
