package sim

import (
	"testing"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("events at equal time fired out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(1, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 2 {
		t.Fatalf("hits = %v, want [1 2]", hits)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	// Cancelling again is a no-op.
	e.Cancel(ev)
	// Cancelling nil is a no-op.
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var fired []int
	evs := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = e.Schedule(Duration(i+1), func() { fired = append(fired, i) })
	}
	e.Cancel(evs[2])
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired = %v, want 4 events", fired)
	}
	for _, i := range fired {
		if i == 2 {
			t.Fatal("cancelled event 2 fired")
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Duration{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 2.5 {
		t.Fatalf("Now() = %v, want 2.5 after RunUntil", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestRunUntilInclusive(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(2, func() { fired = true })
	e.RunUntil(2)
	if !fired {
		t.Fatal("event at exactly t should fire during RunUntil(t)")
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunFor(10)
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
	e.RunFor(5)
	if e.Now() != 15 {
		t.Fatalf("Now() = %v, want 15", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Duration(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt Run)", count)
	}
}

// TestRunUntilAdvancesClockAfterStop: Stop() used to skip RunUntil's final
// clock advance, so a later RunFor(d) started from a stale Now() and ran
// short. The clock must reach the target; events bypassed by the Stop stay
// queued and fire when processing resumes — without moving the clock
// backwards.
func TestRunUntilAdvancesClockAfterStop(t *testing.T) {
	e := NewEngine()
	e.Schedule(3, func() { e.Stop() })
	var lateAt Time = -1
	e.Schedule(5, func() { lateAt = e.Now() })
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Fatalf("Now() = %v after stopped RunUntil(10), want 10", e.Now())
	}
	if lateAt != -1 {
		t.Fatal("event beyond the stop point fired during the stopped run")
	}
	e.RunFor(5)
	if e.Now() != 15 {
		t.Fatalf("Now() = %v after RunFor(5), want 15 (ran short)", e.Now())
	}
	// The bypassed event fired on resume, at the then-current clock.
	if lateAt != 10 {
		t.Fatalf("bypassed event fired at %v, want 10 (clock never rewinds)", lateAt)
	}
}

// TestEventRecycling: fired events are reused by later Schedules instead
// of allocating, and the reuse preserves scheduling semantics.
func TestEventRecycling(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.Schedule(1, func() {})
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule/fire churn allocates %v objects/op, want 0", allocs)
	}
}

// TestLazyCancelAccounting: cancelled events no longer fire, Pending
// excludes them, and heavy cancel churn compacts the queue.
func TestLazyCancelAccounting(t *testing.T) {
	e := NewEngine()
	keep := 0
	e.Schedule(1000, func() { keep++ })
	for i := 0; i < 500; i++ {
		ev := e.Schedule(Duration(i+1), func() { t.Error("cancelled event fired") })
		e.Cancel(ev)
		if ev.index >= 0 && !ev.cancel {
			t.Fatal("cancel not recorded")
		}
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d with one live event, want 1", got)
	}
	// Compaction must have bounded the heap well below the 501 slots that
	// eager retention would use.
	if len(e.queue) > 130 {
		t.Fatalf("queue holds %d slots after cancel churn, want compacted", len(e.queue))
	}
	e.Run()
	if keep != 1 {
		t.Fatalf("live event fired %d times, want 1", keep)
	}
}

// TestCancelChurnDoesNotAllocate: steady-state schedule+cancel churn (the
// watchdog-reset pattern) reuses cancelled events once compaction has
// recycled them.
func TestCancelChurnDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	// Prime: build up a recycled pool via compaction.
	for i := 0; i < 1000; i++ {
		e.Cancel(e.Schedule(1, func() {}))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Cancel(e.Schedule(1, func() {}))
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel churn allocates %v objects/op, want 0", allocs)
	}
}

// TestLegacyAllocMatchesBehavior: the benchmark baseline knob preserves
// the engine's observable semantics (it only changes allocation).
func TestLegacyAllocMatchesBehavior(t *testing.T) {
	LegacyAlloc = true
	defer func() { LegacyAlloc = false }()
	e := NewEngine()
	var order []Time
	e.Schedule(2, func() { order = append(order, e.Now()) })
	ev := e.Schedule(1, func() { t.Error("cancelled event fired") })
	e.Cancel(ev)
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
	e.Run()
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("order = %v, want [2]", order)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(1, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	e.Schedule(1, nil)
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := e.NewTicker(1, func(now Time) {
		ticks = append(ticks, now)
	})
	e.RunUntil(5.5)
	tk.Stop()
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5: %v", len(ticks), ticks)
	}
	for i, tm := range ticks {
		if tm != Time(i+1) {
			t.Fatalf("tick %d at %v, want %d", i, tm, i+1)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.NewTicker(1, func(Time) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestTickerZeroIntervalPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero ticker interval")
		}
	}()
	e.NewTicker(0, func(Time) {})
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(1, func() {})
	}
	e.Run()
	if e.Processed != 7 {
		t.Fatalf("Processed = %d, want 7", e.Processed)
	}
}

func TestEventAccessors(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(2, func() {})
	if ev.Time() != 2 {
		t.Fatalf("Time() = %v, want 2", ev.Time())
	}
	if ev.Fired() {
		t.Fatal("event reported fired before running")
	}
	e.Run()
	if !ev.Fired() {
		t.Fatal("event not marked fired")
	}
}

func TestTimerFiresOnce(t *testing.T) {
	e := NewEngine()
	var fired []Time
	tm := e.NewTimer(3, func(now Time) { fired = append(fired, now) })
	if !tm.Active() {
		t.Fatal("armed timer not active")
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired = %v, want [3]", fired)
	}
	if tm.Active() {
		t.Fatal("fired timer still active")
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.NewTimer(3, func(Time) { fired = true })
	tm.Stop()
	if tm.Active() {
		t.Fatal("stopped timer still active")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerResetSupersedes(t *testing.T) {
	e := NewEngine()
	var fired []Time
	tm := e.NewTimer(3, func(now Time) { fired = append(fired, now) })
	e.RunUntil(1)
	tm.Reset(10) // supersedes the pending t=3 firing
	e.Run()
	if len(fired) != 1 || fired[0] != 11 {
		t.Fatalf("fired = %v, want [11]", fired)
	}
}

func TestTimerRearmAfterFiring(t *testing.T) {
	e := NewEngine()
	count := 0
	tm := e.NewTimer(1, func(Time) { count++ })
	e.Run()
	tm.Reset(2)
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}
