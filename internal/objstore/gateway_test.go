package objstore

import (
	"fmt"
	"testing"

	"e2edt/internal/core"
	"e2edt/internal/sim"
	"e2edt/internal/trace"
	"e2edt/internal/units"
	"e2edt/internal/xfersched"
)

// newGateway assembles a small system + scheduler + gateway for tests.
func newGateway(t *testing.T, coalesce int) *Gateway {
	t.Helper()
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	sys, err := core.NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := xfersched.New(sys, xfersched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	p := DefaultParams()
	p.Coalesce = coalesce
	return NewGateway(sched, p, core.Forward)
}

func TestGatewayCompletesAndAudits(t *testing.T) {
	g := newGateway(t, 64)
	w := DefaultWorkload()
	w.Objects = 300
	objs := w.Generate()
	idx, err := g.Put(sim.Time(sim.Second), objs)
	if err != nil {
		t.Fatal(err)
	}
	if !g.RunToCompletion(300 * sim.Second) {
		t.Fatal("gateway did not drain")
	}
	if err := g.AuditExactlyOnce(); err != nil {
		t.Fatal(err)
	}
	n, bytes := g.ObjectsDone()
	var want float64
	for _, o := range objs {
		want += float64(o.Size)
	}
	if n != len(objs) || bytes != want {
		t.Fatalf("done = (%d, %.0f), want (%d, %.0f)", n, bytes, len(objs), want)
	}
	if g.Windows >= len(objs) {
		t.Fatalf("coalescing produced %d windows for %d objects", g.Windows, len(objs))
	}
	if g.Scans == 0 {
		t.Fatal("no amortized metadata scans recorded")
	}
	if g.Index.Len() != len(objs) {
		t.Fatalf("index holds %d records, want %d", g.Index.Len(), len(objs))
	}
	for _, i := range idx {
		if g.DoneAt(i) <= 0 {
			t.Fatalf("put %d has no delivery time", i)
		}
	}
}

func TestGatewayPerObjectMode(t *testing.T) {
	g := newGateway(t, 1)
	w := DefaultWorkload()
	w.Objects = 40
	objs := w.Generate()
	if _, err := g.Put(sim.Time(sim.Second), objs); err != nil {
		t.Fatal(err)
	}
	if !g.RunToCompletion(300 * sim.Second) {
		t.Fatal("gateway did not drain")
	}
	if err := g.AuditExactlyOnce(); err != nil {
		t.Fatal(err)
	}
	if g.Windows != len(objs) || g.Lookups != len(objs) || g.Scans != 0 {
		t.Fatalf("per-object mode: windows=%d lookups=%d scans=%d, want %d/%d/0",
			g.Windows, g.Lookups, g.Scans, len(objs), len(objs))
	}
}

// TestGatewayZeroLengthObjects: empty objects — mixed into windows and as
// an entire all-empty burst — complete exactly once end to end.
func TestGatewayZeroLengthObjects(t *testing.T) {
	g := newGateway(t, 16)
	objs := make([]PutSpec, 48)
	for i := range objs {
		objs[i] = PutSpec{Tenant: "t0", Bucket: "markers", Key: keyN(i), Size: 0}
	}
	idx, err := g.Put(sim.Time(sim.Second), objs)
	if err != nil {
		t.Fatal(err)
	}
	if !g.RunToCompletion(120 * sim.Second) {
		t.Fatal("all-empty burst did not drain")
	}
	if err := g.AuditExactlyOnce(); err != nil {
		t.Fatal(err)
	}
	n, bytes := g.ObjectsDone()
	if n != len(objs) || bytes != 0 {
		t.Fatalf("done = (%d, %.0f), want (%d, 0)", n, bytes, len(objs))
	}
	for _, i := range idx {
		if g.DoneAt(i) <= 0 {
			t.Fatalf("empty object %d never delivered", i)
		}
	}
}

func keyN(i int) string { return fmt.Sprintf("m/lock-%03d", i) }

func TestGatewayValidation(t *testing.T) {
	g := newGateway(t, 4)
	if _, err := g.Put(0, []PutSpec{{Tenant: "t", Bucket: "BAD", Key: "k", Size: 1}}); err == nil {
		t.Fatal("invalid bucket accepted")
	}
	if _, err := g.Put(0, []PutSpec{{Tenant: "t", Bucket: "abc", Key: "", Size: 1}}); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := g.Put(0, []PutSpec{{Tenant: "t", Bucket: "abc", Key: "k", Size: -1}}); err == nil {
		t.Fatal("negative size accepted")
	}
}

// TestGatewayCoalescingReducesWindows: the same burst under aggressive
// coalescing submits far fewer windows and finishes sooner than per-object
// mode (the full quantified gate is experiment S8).
func TestGatewayCoalescingReducesWindows(t *testing.T) {
	run := func(coalesce int) (windows int, doneAt sim.Time) {
		g := newGateway(t, coalesce)
		w := DefaultWorkload()
		w.Objects = 200
		if _, err := g.Put(sim.Time(sim.Second), w.Generate()); err != nil {
			t.Fatal(err)
		}
		if !g.RunToCompletion(600 * sim.Second) {
			t.Fatal("did not drain")
		}
		if err := g.AuditExactlyOnce(); err != nil {
			t.Fatal(err)
		}
		last := sim.Time(0)
		for i := 0; i < 200; i++ {
			if at := g.DoneAt(i); at > last {
				last = at
			}
		}
		return g.Windows, last
	}
	wPer, tPer := run(1)
	wCo, tCo := run(256)
	if wCo >= wPer/8 {
		t.Fatalf("windows: coalesced %d vs per-object %d — not reduced enough", wCo, wPer)
	}
	if tCo >= tPer {
		t.Fatalf("coalesced finished at %v, per-object at %v — no speedup", tCo, tPer)
	}
}

// runHashed executes one full gateway run under a hashing tracer and
// returns the trace digest.
func runHashed(t *testing.T, seed int64, coalesce int) string {
	t.Helper()
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	sys, err := core.NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	h := trace.NewHasher()
	sys.Engine().SetTracer(h)
	sched, err := xfersched.New(sys, xfersched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	p := DefaultParams()
	p.Coalesce = coalesce
	g := NewGateway(sched, p, core.Forward)
	w := DefaultWorkload()
	w.Objects = 96
	w.Seed = seed
	if _, err := g.Put(sim.Time(sim.Second), w.Generate()); err != nil {
		t.Fatal(err)
	}
	if !g.RunToCompletion(300 * sim.Second) {
		t.Fatal("did not drain")
	}
	if err := g.AuditExactlyOnce(); err != nil {
		t.Fatal(err)
	}
	return h.Sum()
}

// TestGatewayDeterminism20Seeds: twenty seeded workloads, each run twice —
// every pair of runs must be bit-identical (equal trace digests), and
// different seeds must diverge.
func TestGatewayDeterminism20Seeds(t *testing.T) {
	if testing.Short() {
		t.Skip("20-seed sweep")
	}
	sums := make(map[string]bool)
	for seed := int64(1); seed <= 20; seed++ {
		a := runHashed(t, seed, 32)
		b := runHashed(t, seed, 32)
		if a != b {
			t.Fatalf("seed %d: replay diverged (%s vs %s)", seed, a[:12], b[:12])
		}
		sums[a] = true
	}
	if len(sums) < 2 {
		t.Fatal("all seeds produced identical traces — workload seed is dead")
	}
}
