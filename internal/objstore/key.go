// Package objstore is an S3-style object gateway over the transfer stack:
// buckets and keys, multipart upload state machines, a metadata index whose
// lookup and scan costs are charged to host CPU and memory through the
// fluid model, and a coalescing transfer mapper that lays small objects
// onto rftp batch windows (single-pair mode) or cluster jobs (cluster
// mode).
//
// The package exists for the small-file regime the paper's tool ignores:
// millions of tiny objects from thousands of tenants, where per-transfer
// setup — metadata lookup, session establishment, per-object control
// exchanges — dominates and goodput collapses far below link rate. The
// headline mechanism is the coalescing window: adjacent objects for the
// same (tenant, route) share one rftp session and its credit windows with
// in-band per-object delimiting and exactly-once per-object completion,
// and their metadata lookups batch into one amortized index scan. A knob
// (Params.Coalesce) sweeps from per-object streams (worst case) to
// aggressive coalescing; experiment S8 quantifies the gap.
package objstore

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// S3-compatible naming limits.
const (
	MinBucketLen = 3
	MaxBucketLen = 63
	MaxKeyLen    = 1024
)

// ValidateBucket checks S3-style bucket naming rules: 3–63 characters of
// lowercase letters, digits, dots and hyphens, starting and ending with a
// letter or digit, with no empty dot-separated label and no IPv4 shape.
func ValidateBucket(b string) error {
	if len(b) < MinBucketLen || len(b) > MaxBucketLen {
		return fmt.Errorf("objstore: bucket %q: length must be %d-%d", b, MinBucketLen, MaxBucketLen)
	}
	alnum := func(c byte) bool {
		return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
	}
	if !alnum(b[0]) || !alnum(b[len(b)-1]) {
		return fmt.Errorf("objstore: bucket %q: must start and end with a lowercase letter or digit", b)
	}
	prevDot := false
	digitsAndDotsOnly := true
	for i := 0; i < len(b); i++ {
		c := b[i]
		switch {
		case alnum(c) || c == '-':
			if c < '0' || c > '9' {
				digitsAndDotsOnly = false
			}
			prevDot = false
		case c == '.':
			if prevDot {
				return fmt.Errorf("objstore: bucket %q: empty label (\"..\")", b)
			}
			if b[i-1] == '-' || i+1 < len(b) && b[i+1] == '-' {
				return fmt.Errorf("objstore: bucket %q: label must not start or end with '-'", b)
			}
			prevDot = true
		default:
			return fmt.Errorf("objstore: bucket %q: invalid character %q", b, c)
		}
	}
	if digitsAndDotsOnly && strings.Count(b, ".") == 3 {
		return fmt.Errorf("objstore: bucket %q: must not look like an IPv4 address", b)
	}
	return nil
}

// ValidateKey checks object key rules: 1–1024 bytes of valid UTF-8 with no
// control characters. Slashes are ordinary key bytes (S3 keys are flat;
// "directories" are a client fiction).
func ValidateKey(k string) error {
	if len(k) == 0 {
		return fmt.Errorf("objstore: empty object key")
	}
	if len(k) > MaxKeyLen {
		return fmt.Errorf("objstore: key too long (%d > %d bytes)", len(k), MaxKeyLen)
	}
	if !utf8.ValidString(k) {
		return fmt.Errorf("objstore: key is not valid UTF-8")
	}
	for _, r := range k {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("objstore: key contains control character %q", r)
		}
	}
	return nil
}

// ParseKey splits "bucket/key" into its validated halves. The first slash
// is the separator; everything after it — further slashes included — is
// the object key.
func ParseKey(s string) (bucket, key string, err error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return "", "", fmt.Errorf("objstore: %q: want bucket/key", s)
	}
	bucket, key = s[:i], s[i+1:]
	if err := ValidateBucket(bucket); err != nil {
		return "", "", err
	}
	if err := ValidateKey(key); err != nil {
		return "", "", err
	}
	return bucket, key, nil
}

// FormatKey joins a bucket and key into the canonical "bucket/key" form.
func FormatKey(bucket, key string) string { return bucket + "/" + key }
