package objstore

import (
	"fmt"
	"strconv"
	"strings"

	"e2edt/internal/units"
)

// Multipart upload limits, S3-compatible.
const (
	// MinPartSize is the floor every part except the last must meet.
	MinPartSize = 5 * units.MB
	// MaxParts bounds part numbers.
	MaxParts = 10000
)

// UploadState is a multipart upload's lifecycle position.
type UploadState int

const (
	// UploadActive accepts parts.
	UploadActive UploadState = iota
	// UploadCompleted has been assembled into one object.
	UploadCompleted
	// UploadAborted was cancelled; its parts are discarded.
	UploadAborted
)

// String names the state.
func (s UploadState) String() string {
	switch s {
	case UploadActive:
		return "active"
	case UploadCompleted:
		return "completed"
	default:
		return "aborted"
	}
}

// Upload is one multipart upload's state machine: initiate (NewUpload),
// upload parts in any order with re-upload-replaces semantics, then
// Complete — which validates part contiguity and minimum sizes and yields
// the assembled object size — or Abort.
type Upload struct {
	Bucket, Key string

	state UploadState
	parts []int64 // parts[n-1] = size of part n; -1 = missing
}

// NewUpload initiates a multipart upload after validating the target name.
func NewUpload(bucket, key string) (*Upload, error) {
	if err := ValidateBucket(bucket); err != nil {
		return nil, err
	}
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	return &Upload{Bucket: bucket, Key: key}, nil
}

// State returns the upload's lifecycle position.
func (u *Upload) State() UploadState { return u.state }

// UploadPart records part n (1-based). Re-uploading a part number replaces
// it. Zero-size parts are legal on the wire here and rejected only at
// Complete, where the contiguity rules decide what they may be.
func (u *Upload) UploadPart(n int, size int64) error {
	if u.state != UploadActive {
		return fmt.Errorf("objstore: upload %s/%s is %s", u.Bucket, u.Key, u.state)
	}
	if n < 1 || n > MaxParts {
		return fmt.Errorf("objstore: part number %d out of range [1, %d]", n, MaxParts)
	}
	if size < 0 {
		return fmt.Errorf("objstore: part %d has negative size", n)
	}
	for len(u.parts) < n {
		u.parts = append(u.parts, -1)
	}
	u.parts[n-1] = size
	return nil
}

// Parts returns how many parts have been uploaded.
func (u *Upload) Parts() int {
	n := 0
	for _, p := range u.parts {
		if p >= 0 {
			n++
		}
	}
	return n
}

// Complete assembles the upload: parts must be contiguous from 1 with no
// gaps, and every part except the last must be at least MinPartSize. On
// success the upload is finalized and the object's total size returned.
// A single empty part is legal — it assembles the empty object.
func (u *Upload) Complete() (int64, error) {
	if u.state != UploadActive {
		return 0, fmt.Errorf("objstore: upload %s/%s is %s", u.Bucket, u.Key, u.state)
	}
	if len(u.parts) == 0 {
		return 0, fmt.Errorf("objstore: upload %s/%s has no parts", u.Bucket, u.Key)
	}
	total := int64(0)
	for i, p := range u.parts {
		if p < 0 {
			return 0, fmt.Errorf("objstore: upload %s/%s missing part %d", u.Bucket, u.Key, i+1)
		}
		if i < len(u.parts)-1 && p < MinPartSize {
			return 0, fmt.Errorf("objstore: part %d is %d bytes, below the %d-byte floor (only the last part may be smaller)",
				i+1, p, MinPartSize)
		}
		total += p
	}
	u.state = UploadCompleted
	return total, nil
}

// Abort cancels an active upload.
func (u *Upload) Abort() error {
	if u.state != UploadActive {
		return fmt.Errorf("objstore: upload %s/%s is %s", u.Bucket, u.Key, u.state)
	}
	u.state = UploadAborted
	return nil
}

// ParsePartList parses a comma-separated "n:size" part manifest (e.g.
// "1:5242880,2:5242880,3:1024"), the CLI's multipart shorthand. Sizes
// accept the block-size suffixes (5M, 24K, ...).
func ParsePartList(s string) (nums []int, sizes []int64, err error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil, fmt.Errorf("objstore: empty part list")
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		i := strings.IndexByte(field, ':')
		if i < 0 {
			return nil, nil, fmt.Errorf("objstore: part %q: want n:size", field)
		}
		n, err := strconv.Atoi(strings.TrimSpace(field[:i]))
		if err != nil {
			return nil, nil, fmt.Errorf("objstore: part number %q: %v", field[:i], err)
		}
		var size int64
		if raw := strings.TrimSpace(field[i+1:]); raw == "0" {
			size = 0 // ParseBlockSize rejects 0, but empty parts are legal here
		} else {
			size, err = units.ParseBlockSize(raw)
			if err != nil {
				return nil, nil, fmt.Errorf("objstore: part size %q: %v", raw, err)
			}
		}
		nums = append(nums, n)
		sizes = append(sizes, size)
	}
	return nums, sizes, nil
}
