package objstore

import (
	"fmt"
	"math/rand"
)

// Workload shapes a deterministic small-object PUT stream.
type Workload struct {
	// Objects is the PUT count.
	Objects int
	// Tenants spreads objects over this many tenants, in runs of Run
	// adjacent objects per tenant (gateway requests arrive batched per
	// client connection, which is what gives coalescing its adjacency).
	Tenants int
	// Run is the adjacency run length; 0 selects 32.
	Run int
	// MinBytes and MaxBytes bound the uniform object-size draw.
	MinBytes, MaxBytes int64
	// ZeroEvery makes every Nth object empty (0 = no empty objects):
	// zero-length markers, lock files and directory placeholders are real
	// S3 traffic.
	ZeroEvery int
	// Seed feeds the size draws; all randomness is consumed before the
	// simulation starts, in index order.
	Seed int64
}

// DefaultWorkload is the S8 small-file shape: 24 KB objects from 8
// tenants, one empty marker object per 100.
func DefaultWorkload() Workload {
	return Workload{
		Objects:   1024,
		Tenants:   8,
		MinBytes:  16 << 10,
		MaxBytes:  32 << 10,
		ZeroEvery: 100,
		Seed:      1,
	}
}

// Generate materializes the PUT stream. Same Workload → same stream,
// bit for bit.
func (w Workload) Generate() []PutSpec {
	if w.Objects <= 0 {
		return nil
	}
	tenants := w.Tenants
	if tenants <= 0 {
		tenants = 1
	}
	run := w.Run
	if run <= 0 {
		run = 32
	}
	lo, hi := w.MinBytes, w.MaxBytes
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	rng := rand.New(rand.NewSource(w.Seed))
	objs := make([]PutSpec, w.Objects)
	for i := range objs {
		t := (i / run) % tenants
		size := lo
		if hi > lo {
			size = lo + rng.Int63n(hi-lo+1)
		}
		if w.ZeroEvery > 0 && (i+1)%w.ZeroEvery == 0 {
			size = 0
		}
		objs[i] = PutSpec{
			Tenant: fmt.Sprintf("tenant-%02d", t),
			Bucket: fmt.Sprintf("tenant-%02d", t),
			Key:    fmt.Sprintf("data/obj-%06d", i),
			Size:   size,
		}
	}
	return objs
}
