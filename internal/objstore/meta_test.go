package objstore

import (
	"fmt"
	"testing"
)

func TestIndexOps(t *testing.T) {
	var ix Index
	if _, ok := ix.Lookup("abc/k"); ok {
		t.Fatal("lookup in empty index succeeded")
	}
	// Insert out of order; index keeps key order.
	for _, i := range []int{5, 1, 9, 3, 7, 0, 8, 2, 6, 4} {
		ix.Put(fmt.Sprintf("abc/k%d", i), int64(i))
	}
	if ix.Len() != 10 {
		t.Fatalf("len = %d, want 10", ix.Len())
	}
	for i := 0; i < 10; i++ {
		e, ok := ix.Lookup(fmt.Sprintf("abc/k%d", i))
		if !ok || e.Size != int64(i) {
			t.Fatalf("lookup k%d = (%v, %v)", i, e, ok)
		}
	}
	// Replace keeps the count.
	ix.Put("abc/k5", 500)
	if e, _ := ix.Lookup("abc/k5"); e.Size != 500 || ix.Len() != 10 {
		t.Fatalf("replace: size=%d len=%d", e.Size, ix.Len())
	}
	// Scan a half-open range.
	got := ix.Scan("abc/k3", "abc/k6")
	if len(got) != 3 || got[0].Key != "abc/k3" || got[2].Key != "abc/k5" {
		t.Fatalf("scan = %v", got)
	}
	// Delete.
	if !ix.Delete("abc/k3") || ix.Delete("abc/k3") {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := ix.Lookup("abc/k3"); ok || ix.Len() != 9 {
		t.Fatal("delete did not remove the record")
	}
}
