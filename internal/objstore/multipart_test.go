package objstore

import (
	"testing"

	"e2edt/internal/units"
)

func TestUploadLifecycle(t *testing.T) {
	u, err := NewUpload("abc", "big/object")
	if err != nil {
		t.Fatal(err)
	}
	if u.State() != UploadActive {
		t.Fatalf("state = %v, want active", u.State())
	}
	// Out-of-order upload, then a replacement.
	if err := u.UploadPart(2, MinPartSize); err != nil {
		t.Fatal(err)
	}
	if err := u.UploadPart(1, MinPartSize); err != nil {
		t.Fatal(err)
	}
	if err := u.UploadPart(3, 1024); err != nil {
		t.Fatal(err)
	}
	if err := u.UploadPart(1, 2*MinPartSize); err != nil {
		t.Fatal(err)
	}
	if u.Parts() != 3 {
		t.Fatalf("parts = %d, want 3", u.Parts())
	}
	total, err := u.Complete()
	if err != nil {
		t.Fatal(err)
	}
	if want := 3*MinPartSize + 1024; total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
	if u.State() != UploadCompleted {
		t.Fatalf("state = %v, want completed", u.State())
	}
	// Terminal states reject further operations.
	if err := u.UploadPart(4, MinPartSize); err == nil {
		t.Fatal("UploadPart after Complete accepted")
	}
	if _, err := u.Complete(); err == nil {
		t.Fatal("double Complete accepted")
	}
	if err := u.Abort(); err == nil {
		t.Fatal("Abort after Complete accepted")
	}
}

func TestUploadValidation(t *testing.T) {
	if _, err := NewUpload("AB", "k"); err == nil {
		t.Fatal("invalid bucket accepted")
	}
	if _, err := NewUpload("abc", ""); err == nil {
		t.Fatal("empty key accepted")
	}
	u, _ := NewUpload("abc", "k")
	cases := []struct {
		n    int
		size int64
		ok   bool
	}{
		{0, 1, false},
		{-1, 1, false},
		{MaxParts + 1, 1, false},
		{1, -1, false},
		{1, 0, true}, // zero-size parts legal at upload time
		{MaxParts, 1, true},
	}
	for _, c := range cases {
		err := u.UploadPart(c.n, c.size)
		if (err == nil) != c.ok {
			t.Errorf("UploadPart(%d, %d) = %v, want ok=%v", c.n, c.size, err, c.ok)
		}
	}
}

func TestCompleteRules(t *testing.T) {
	// No parts at all.
	u, _ := NewUpload("abc", "k")
	if _, err := u.Complete(); err == nil {
		t.Fatal("Complete with no parts accepted")
	}
	// Gap: parts 1 and 3 without 2.
	u, _ = NewUpload("abc", "k")
	u.UploadPart(1, MinPartSize)
	u.UploadPart(3, 100)
	if _, err := u.Complete(); err == nil {
		t.Fatal("Complete with missing part accepted")
	}
	// Undersized non-final part.
	u, _ = NewUpload("abc", "k")
	u.UploadPart(1, MinPartSize-1)
	u.UploadPart(2, 100)
	if _, err := u.Complete(); err == nil {
		t.Fatal("undersized non-final part accepted")
	}
	// Single small part is exempt from the floor.
	u, _ = NewUpload("abc", "k")
	u.UploadPart(1, 42)
	if total, err := u.Complete(); err != nil || total != 42 {
		t.Fatalf("single small part: (%d, %v)", total, err)
	}
	// Single empty part assembles the empty object.
	u, _ = NewUpload("abc", "k")
	u.UploadPart(1, 0)
	if total, err := u.Complete(); err != nil || total != 0 {
		t.Fatalf("single empty part: (%d, %v)", total, err)
	}
	// Abort, then everything is rejected.
	u, _ = NewUpload("abc", "k")
	u.UploadPart(1, MinPartSize)
	if err := u.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Complete(); err == nil {
		t.Fatal("Complete after Abort accepted")
	}
}

func TestParsePartList(t *testing.T) {
	nums, sizes, err := ParsePartList("1:5M, 2:5M ,3:1024")
	if err != nil {
		t.Fatal(err)
	}
	if len(nums) != 3 || nums[0] != 1 || nums[2] != 3 {
		t.Fatalf("nums = %v", nums)
	}
	if sizes[0] != 5*units.MB || sizes[2] != 1024 {
		t.Fatalf("sizes = %v", sizes)
	}
	if _, sizes, err := ParsePartList("1:0"); err != nil || sizes[0] != 0 {
		t.Fatalf("zero-size part: (%v, %v)", sizes, err)
	}
	for _, bad := range []string{"", "1", "x:5M", "1:xyz", "1:-5"} {
		if _, _, err := ParsePartList(bad); err == nil {
			t.Errorf("ParsePartList(%q) accepted", bad)
		}
	}
}
