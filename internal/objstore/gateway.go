package objstore

import (
	"fmt"
	"math"

	"e2edt/internal/core"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/metrics"
	"e2edt/internal/numa"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/units"
	"e2edt/internal/xfersched"
)

// Params tune the gateway's metadata cost model and its coalescing layer.
type Params struct {
	// LookupCycles is one point metadata lookup's CPU cost (hash, index
	// probe, permission check) — paid per object in per-object mode.
	LookupCycles float64
	// ScanBaseCycles + n×ScanPerEntryCycles is a batched index scan's CPU
	// cost: one amortized scan answers a whole coalesced window's lookups.
	ScanBaseCycles, ScanPerEntryCycles float64
	// EntryBytes is one metadata record's footprint, charged to host memory
	// for every record a lookup or scan touches.
	EntryBytes float64
	// Coalesce is the window size knob — the most adjacent same-tenant
	// objects one rftp session carries. 1 (or 0) is the legacy worst case:
	// every object pays its own session handshake and point lookup.
	Coalesce int
	// MaxWindowBytes caps a window's payload so one bulky object cannot
	// drag a whole window's worth of small neighbors behind its transfer;
	// 0 selects 256 MB.
	MaxWindowBytes int64
	// Priority is passed through to the submitted transfer jobs.
	Priority int
}

// DefaultParams models a lean metadata path on the front-end hosts:
// ~45 µs per point lookup at 2.2 GHz, with batched scans paying ~90 µs
// once plus ~1 µs per entry.
func DefaultParams() Params {
	return Params{
		LookupCycles:       100e3,
		ScanBaseCycles:     200e3,
		ScanPerEntryCycles: 2e3,
		EntryBytes:         256,
		Coalesce:           1,
		MaxWindowBytes:     256 * units.MB,
	}
}

// maxWindowBytes resolves the payload cap.
func (p Params) maxWindowBytes() int64 {
	if p.MaxWindowBytes > 0 {
		return p.MaxWindowBytes
	}
	return 256 * units.MB
}

// coalesce resolves the window-size knob (floor 1).
func (p Params) coalesce() int {
	if p.Coalesce > 1 {
		return p.Coalesce
	}
	return 1
}

// PutSpec is one object PUT arriving at the gateway.
type PutSpec struct {
	Tenant      string
	Bucket, Key string
	Size        int64
}

// putState tracks one PUT through the gateway: completions counts delivery
// callbacks (the exactly-once audit asserts it lands on exactly 1).
type putState struct {
	spec        PutSpec
	completions int
	doneAt      sim.Time
}

// Gateway is the single-pair object gateway: PUTs arrive, pay their
// metadata cost on the sender front end's CPU through the fluid model, and
// their payloads are coalesced into rftp batch windows submitted as
// xfersched jobs. See the package comment for why.
type Gateway struct {
	Sys   *core.System
	Sched *xfersched.Scheduler
	P     Params
	Dir   core.Direction

	// Index is the metadata table; every PUT inserts its record.
	Index Index
	// Metrics collects objects_done / bytes_done / windows counters under
	// the "objstore." namespace.
	Metrics *metrics.Registry

	eng   *sim.Engine
	fl    *fluid.Sim
	mdTh  *host.Thread
	mdBuf *numa.Buffer

	puts           []*putState
	pendingWindows int // windows still in their metadata phase
	// Windows counts transfer windows submitted; Lookups and Scans count
	// metadata operations (point vs amortized), the S8 evidence that
	// coalescing batches the metadata path too.
	Windows, Lookups, Scans int

	objectsDone, bytesDone, windows *metrics.Counter
}

// NewGateway builds a gateway over an existing scheduler. The metadata
// service runs as an unpinned process on the sending front-end host (the
// gateway node), so lookups contend with the transfer tool for the same
// cores — exactly the interference the small-file regime is about.
func NewGateway(sched *xfersched.Scheduler, p Params, dir core.Direction) *Gateway {
	sys := sched.Sys
	front := sys.TB.Sender
	if dir == core.Reverse {
		front = sys.TB.Receiver
	}
	proc := front.NewProcess("objstore-md", numa.PolicyDefault, nil)
	g := &Gateway{
		Sys: sys, Sched: sched, P: p, Dir: dir,
		Metrics: metrics.NewRegistry().Namespace("objstore"),
		eng:     sys.Engine(),
		fl:      sys.TB.Sim,
		mdTh:    proc.NewThread(),
		mdBuf:   front.M.InterleavedBuffer("objstore-md"),
	}
	g.objectsDone = g.Metrics.MustCounter("objects_done")
	g.bytesDone = g.Metrics.MustCounter("bytes_done")
	g.windows = g.Metrics.MustCounter("windows")
	return g
}

// Put schedules a burst of object PUTs arriving at virtual time at. The
// burst is cut into coalescing windows — runs of adjacent same-tenant
// objects, at most Coalesce objects and MaxWindowBytes payload each — and
// every window pays one metadata operation and one transfer job. Returns
// the put indices, in submission order, for result inspection.
func (g *Gateway) Put(at sim.Time, objs []PutSpec) ([]int, error) {
	idx := make([]int, 0, len(objs))
	pending := make([]*putState, 0, len(objs))
	for _, o := range objs {
		if err := ValidateBucket(o.Bucket); err != nil {
			return nil, err
		}
		if err := ValidateKey(o.Key); err != nil {
			return nil, err
		}
		if o.Size < 0 {
			return nil, fmt.Errorf("objstore: object %s has negative size", FormatKey(o.Bucket, o.Key))
		}
		ps := &putState{spec: o}
		idx = append(idx, len(g.puts))
		g.puts = append(g.puts, ps)
		pending = append(pending, ps)
	}
	limit, capBytes := g.P.coalesce(), g.P.maxWindowBytes()
	for start := 0; start < len(pending); {
		end := start + 1
		bytes := pending[start].spec.Size
		for end < len(pending) && end-start < limit &&
			pending[end].spec.Tenant == pending[start].spec.Tenant &&
			bytes+pending[end].spec.Size <= capBytes {
			bytes += pending[end].spec.Size
			end++
		}
		window := idx[start:end]
		g.pendingWindows++
		g.eng.At(at, func() { g.startWindow(window) })
		start = end
	}
	return idx, nil
}

// startWindow runs a window's metadata phase, then submits its transfer.
// A window of one pays a point lookup; a coalesced window pays one
// amortized scan for all its records.
func (g *Gateway) startWindow(window []int) {
	var cycles float64
	if len(window) == 1 {
		cycles = g.P.LookupCycles
		g.Lookups++
	} else {
		cycles = g.P.ScanBaseCycles + float64(len(window))*g.P.ScanPerEntryCycles
		g.Scans++
	}
	id := g.Windows
	g.Windows++
	g.windows.Add(1)
	for _, pi := range window {
		s := g.puts[pi].spec
		g.Index.Put(FormatKey(s.Bucket, s.Key), s.Size)
	}
	g.chargeMD(fmt.Sprintf("objstore-md/w%05d", id), cycles,
		float64(len(window))*g.P.EntryBytes, func(now sim.Time) {
			g.submitWindow(id, window)
		})
}

// chargeMD pays a metadata operation through the fluid model: a flow in
// cycle units, charged to the metadata thread's CPU (so it contends with
// the transfer tool for cores) and to host memory for the records touched.
// done fires when the operation's cycles have been executed.
func (g *Gateway) chargeMD(name string, cycles, bytes float64, done func(now sim.Time)) {
	if cycles <= 0 {
		done(g.eng.Now())
		return
	}
	f := g.fl.NewFlow(name, math.Inf(1))
	g.mdTh.ChargeCPU(f, 1, host.CatSys)
	if bytes > 0 {
		g.mdTh.ChargeMemory(f, g.mdBuf, bytes/cycles, false, host.CatSys)
	}
	tr := &fluid.Transfer{Flow: f, Remaining: cycles, OnComplete: done}
	g.fl.Start(tr)
}

// submitWindow hands a window whose metadata phase finished to the
// transfer scheduler as one coalesced batch job.
func (g *Gateway) submitWindow(id int, window []int) {
	g.pendingWindows--
	specs := make([]rftp.ObjectSpec, len(window))
	for k, pi := range window {
		s := g.puts[pi].spec
		specs[k] = rftp.ObjectSpec{Key: FormatKey(s.Bucket, s.Key), Size: s.Size}
	}
	spec := xfersched.JobSpec{
		ID:       fmt.Sprintf("objw-%05d", id),
		Tenant:   g.puts[window[0]].spec.Tenant,
		Protocol: xfersched.ProtoRFTP,
		Dir:      g.Dir,
		Objects:  specs,
		Priority: g.P.Priority,
		OnObject: func(k int, now sim.Time) { g.delivered(window[k], now) },
	}
	if _, err := g.Sched.Submit(spec); err != nil {
		panic(fmt.Sprintf("objstore: submit window %d: %v", id, err))
	}
}

// delivered records one object's completion.
func (g *Gateway) delivered(pi int, now sim.Time) {
	ps := g.puts[pi]
	ps.completions++
	ps.doneAt = now
	g.objectsDone.Add(1)
	g.bytesDone.Add(float64(ps.spec.Size))
}

// AllDone reports whether every PUT's window has cleared both its metadata
// phase and its transfer.
func (g *Gateway) AllDone() bool {
	return g.pendingWindows == 0 && g.Sched.AllDone()
}

// RunToCompletion advances virtual time until every PUT completes or the
// limit elapses, reporting whether all completed.
func (g *Gateway) RunToCompletion(limit sim.Duration) bool {
	deadline := g.eng.Now() + sim.Time(limit)
	for !g.AllDone() && g.eng.Now() < deadline {
		step := sim.Time(sim.Second)
		if rem := deadline - g.eng.Now(); rem < step {
			step = rem
		}
		g.eng.RunUntil(g.eng.Now() + step)
	}
	return g.AllDone()
}

// AuditExactlyOnce verifies the gateway's delivery ledger: every PUT
// completed exactly once — no lost object, no duplicate completion
// callback across windows, retries and attempts.
func (g *Gateway) AuditExactlyOnce() error {
	for i, ps := range g.puts {
		if ps.completions != 1 {
			return fmt.Errorf("objstore: put %d (%s) completed %d times, want exactly 1",
				i, FormatKey(ps.spec.Bucket, ps.spec.Key), ps.completions)
		}
	}
	return nil
}

// ObjectsDone returns delivered object and byte totals.
func (g *Gateway) ObjectsDone() (objects int, bytes float64) {
	return int(g.objectsDone.Value()), g.bytesDone.Value()
}

// DoneAt returns put i's delivery time (zero if still in flight).
func (g *Gateway) DoneAt(i int) sim.Time { return g.puts[i].doneAt }
