package objstore

import (
	"fmt"

	"e2edt/internal/cluster"
	"e2edt/internal/sim"
)

// ClusterGateway maps object PUTs onto the sharded cluster control plane:
// each object's canonical key is consistently hashed to a destination host
// (cluster.HostForKey), objects adjacent in their destination's queue
// coalesce into one cluster job, and the gateway's own per-object ledger
// rides the cluster's exactly-once completion hooks. The metadata CPU path is not
// modeled here — the cluster abstraction has no per-host thread model —
// so cluster mode measures the coalescing layer's control-plane effect
// alone: jobs submitted ≪ objects stored, admission passes and ctrl RPCs
// amortized across each window (see PooledJoins in the cluster report).
type ClusterGateway struct {
	C *cluster.Cluster
	P Params

	// Dataset is the staging dataset windows transfer from (replicas on
	// the first few hosts, like a gateway ingest tier).
	Dataset int

	puts    []*putState
	jobPuts map[int][]int // cluster job id → put indices (keyed only)
	// Windows counts cluster jobs submitted; JobsLost counts windows the
	// control plane abandoned (their puts never complete, and the audit
	// reports them).
	Windows, JobsLost int
}

// NewClusterGateway wraps a built cluster (hosts and tenants registered,
// workload not yet run). It installs the cluster's completion hooks and a
// staging dataset replicated on the first min(4, hosts) hosts.
func NewClusterGateway(c *cluster.Cluster, p Params) *ClusterGateway {
	replicas := c.Hosts()
	if replicas > 4 {
		replicas = 4
	}
	hosts := make([]int, replicas)
	for i := range hosts {
		hosts[i] = i
	}
	g := &ClusterGateway{
		C: c, P: p,
		Dataset: c.AddDataset(hosts),
		jobPuts: make(map[int][]int),
	}
	c.OnJobDone = g.jobDone
	c.OnJobLost = g.jobLost
	return g
}

// Put submits a burst of PUTs for one tenant at virtual time at. Each
// object hashes to a destination host; windows are runs of adjacent
// objects within one destination's queue, at most Coalesce objects and
// MaxWindowBytes payload each; every window is one cluster job. Returns
// the put indices in submission order.
func (g *ClusterGateway) Put(at sim.Time, tenantID int, objs []PutSpec) ([]int, error) {
	type placed struct {
		put int
		dst int
	}
	idx := make([]int, 0, len(objs))
	pending := make([]placed, 0, len(objs))
	for _, o := range objs {
		if err := ValidateBucket(o.Bucket); err != nil {
			return nil, err
		}
		if err := ValidateKey(o.Key); err != nil {
			return nil, err
		}
		if o.Size < 0 {
			return nil, fmt.Errorf("objstore: object %s has negative size", FormatKey(o.Bucket, o.Key))
		}
		pi := len(g.puts)
		g.puts = append(g.puts, &putState{spec: o})
		idx = append(idx, pi)
		pending = append(pending, placed{put: pi, dst: g.C.HostForKey(FormatKey(o.Bucket, o.Key))})
	}
	// The route (destination host) is the coalescing unit: consistent
	// hashing interleaves destinations in the submission stream, so windows
	// form over per-route queues — adjacency within a route's queue, in
	// arrival order — not over runs in raw key order, which would almost
	// never coalesce at realistic host counts.
	order := make([]int, 0, 16)
	byDst := make(map[int][]placed)
	for _, pl := range pending {
		if _, ok := byDst[pl.dst]; !ok {
			order = append(order, pl.dst)
		}
		byDst[pl.dst] = append(byDst[pl.dst], pl)
	}
	limit, capBytes := g.P.coalesce(), g.P.maxWindowBytes()
	for _, dst := range order {
		q := byDst[dst]
		for start := 0; start < len(q); {
			end := start + 1
			bytes := g.puts[q[start].put].spec.Size
			for end < len(q) && end-start < limit &&
				bytes+g.puts[q[end].put].spec.Size <= capBytes {
				bytes += g.puts[q[end].put].spec.Size
				end++
			}
			window := make([]int, 0, end-start)
			for _, pl := range q[start:end] {
				window = append(window, pl.put)
			}
			id := g.C.NextJobID()
			// A window of empty objects still moves its delimiter records;
			// the cluster's transfer start clamps the payload to one
			// byte-equivalent unit, so a zero-byte window completes rather
			// than wedging.
			g.C.Submit(at, tenantID, g.Dataset, dst, float64(bytes), g.P.Priority)
			g.jobPuts[id] = window
			g.Windows++
			start = end
		}
	}
	return idx, nil
}

// jobDone commits a window: every put it carries completes, exactly once
// (the cluster fires this only on committed, non-voided completions).
func (g *ClusterGateway) jobDone(id int, now sim.Time) {
	for _, pi := range g.jobPuts[id] {
		g.puts[pi].completions++
		g.puts[pi].doneAt = now
	}
}

// jobLost records a window the control plane abandoned.
func (g *ClusterGateway) jobLost(id int, now sim.Time) {
	g.JobsLost++
}

// ObjectsDone returns delivered object and byte totals.
func (g *ClusterGateway) ObjectsDone() (objects int, bytes float64) {
	for _, ps := range g.puts {
		if ps.completions > 0 {
			objects++
			bytes += float64(ps.spec.Size)
		}
	}
	return objects, bytes
}

// AuditExactlyOnce verifies the gateway ledger after Run: every PUT
// completed exactly once. It composes with the cluster's own
// VerifyExactlyOnce, which audits the job-level ledger underneath.
func (g *ClusterGateway) AuditExactlyOnce() error {
	if err := g.C.VerifyExactlyOnce(); err != nil {
		return err
	}
	for i, ps := range g.puts {
		if ps.completions != 1 {
			return fmt.Errorf("objstore: put %d (%s) completed %d times, want exactly 1",
				i, FormatKey(ps.spec.Bucket, ps.spec.Key), ps.completions)
		}
	}
	return nil
}

// DoneAt returns put i's delivery time (zero if still in flight).
func (g *ClusterGateway) DoneAt(i int) sim.Time { return g.puts[i].doneAt }
