package objstore

import (
	"fmt"
	"testing"

	"e2edt/internal/cluster"
	"e2edt/internal/sim"
	"e2edt/internal/trace"
)

// newClusterGW assembles a small cluster gateway and its PUT stream.
func newClusterGW(t *testing.T, hosts int, seed int64, coalesce int) (*cluster.Cluster, *ClusterGateway) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := cluster.New(eng, cluster.Config{
		Hosts:   hosts,
		Shards:  4,
		DropPct: 5,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(4)
	p := DefaultParams()
	p.Coalesce = coalesce
	return c, NewClusterGateway(c, p)
}

func putBurst(t *testing.T, g *ClusterGateway, objects int, seed int64) []int {
	t.Helper()
	w := DefaultWorkload()
	w.Objects = objects
	w.Seed = seed
	var idx []int
	for tenant := 0; tenant < 4; tenant++ {
		// Each tenant submits a slice of the stream at a staggered time.
		part := w.Generate()[tenant*objects/4 : (tenant+1)*objects/4]
		at := sim.Time(sim.Duration(1+tenant) * sim.Second)
		got, err := g.Put(at, tenant, part)
		if err != nil {
			t.Fatal(err)
		}
		idx = append(idx, got...)
	}
	return idx
}

func TestClusterGatewayCompletesAndAudits(t *testing.T) {
	c, g := newClusterGW(t, 16, 1, 64)
	idx := putBurst(t, g, 256, 1)
	c.Run()
	if err := g.AuditExactlyOnce(); err != nil {
		t.Fatal(err)
	}
	n, _ := g.ObjectsDone()
	if n != len(idx) {
		t.Fatalf("done %d of %d objects", n, len(idx))
	}
	if g.Windows >= len(idx) {
		t.Fatalf("coalescing submitted %d jobs for %d objects", g.Windows, len(idx))
	}
	if c.Jobs() != g.Windows {
		t.Fatalf("cluster saw %d jobs, gateway submitted %d windows", c.Jobs(), g.Windows)
	}
	for _, i := range idx {
		if g.DoneAt(i) <= 0 {
			t.Fatalf("put %d has no delivery time", i)
		}
	}
}

func TestClusterGatewayPerObjectMode(t *testing.T) {
	c, g := newClusterGW(t, 16, 1, 1)
	idx := putBurst(t, g, 64, 1)
	c.Run()
	if err := g.AuditExactlyOnce(); err != nil {
		t.Fatal(err)
	}
	if g.Windows != len(idx) {
		t.Fatalf("per-object mode submitted %d jobs for %d objects", g.Windows, len(idx))
	}
}

// TestClusterGatewayKeyRouting: the consistent hash is stable and
// in-range, and a burst to one bucket still spreads over hosts.
func TestClusterGatewayKeyRouting(t *testing.T) {
	seen := make([]bool, 16)
	for i := 0; i < 256; i++ {
		k := FormatKey("abc", fmt.Sprintf("data/obj-%06d", i))
		h := cluster.HostForKey(k, 16)
		if h < 0 || h >= 16 {
			t.Fatalf("HostForKey(%q) = %d out of range", k, h)
		}
		if h != cluster.HostForKey(k, 16) {
			t.Fatal("HostForKey not stable")
		}
		seen[h] = true
	}
	spread := 0
	for _, s := range seen {
		if s {
			spread++
		}
	}
	if spread < 8 {
		t.Fatalf("256 keys landed on only %d of 16 hosts", spread)
	}
}

// runClusterHashed is one full cluster-gateway run under a hashing tracer.
func runClusterHashed(t *testing.T, seed int64) (string, int) {
	t.Helper()
	eng := sim.NewEngine()
	h := trace.NewHasher()
	eng.SetTracer(h)
	c, err := cluster.New(eng, cluster.Config{Hosts: 16, Shards: 4, DropPct: 5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTenants(4)
	p := DefaultParams()
	p.Coalesce = 32
	g := NewClusterGateway(c, p)
	putBurst(t, g, 128, seed)
	c.Run()
	if err := g.AuditExactlyOnce(); err != nil {
		t.Fatal(err)
	}
	n, _ := g.ObjectsDone()
	return h.Sum(), n
}

// TestClusterGatewayDeterminism20Seeds: twenty seeded cluster-mode runs,
// each executed twice — bit-identical traces every time, and different
// seeds diverge.
func TestClusterGatewayDeterminism20Seeds(t *testing.T) {
	if testing.Short() {
		t.Skip("20-seed sweep")
	}
	sums := make(map[string]bool)
	for seed := int64(1); seed <= 20; seed++ {
		a, n1 := runClusterHashed(t, seed)
		b, n2 := runClusterHashed(t, seed)
		if a != b || n1 != n2 {
			t.Fatalf("seed %d: replay diverged", seed)
		}
		sums[a] = true
	}
	if len(sums) < 2 {
		t.Fatal("all seeds produced identical traces")
	}
}
