package objstore

import (
	"strings"
	"testing"
)

func TestValidateBucket(t *testing.T) {
	cases := []struct {
		bucket string
		ok     bool
	}{
		{"abc", true},
		{"my-bucket", true},
		{"my.bucket.logs", true},
		{"bucket-1", true},
		{"0bucket", true},
		{strings.Repeat("a", 63), true},
		{"a1.b2-c3.d4", true},

		{"", false},
		{"ab", false},                    // too short
		{strings.Repeat("a", 64), false}, // too long
		{"Bucket", false},                // uppercase
		{"-bucket", false},               // leading hyphen
		{"bucket-", false},               // trailing hyphen
		{".bucket", false},               // leading dot
		{"bucket.", false},               // trailing dot
		{"my..bucket", false},            // empty label
		{"my.-bucket", false},            // label starts with '-'
		{"my-.bucket", false},            // label ends with '-'
		{"my_bucket", false},             // underscore
		{"bücket", false},                // non-ASCII
		{"192.168.1.10", false},          // IPv4 shape
		{"192.168.bucket.10", true},      // dots but not all digits
		{"1.2.3", true},                  // only 2 dots, not IPv4 shape
		{"bucket name", false},           // space
	}
	for _, c := range cases {
		err := ValidateBucket(c.bucket)
		if (err == nil) != c.ok {
			t.Errorf("ValidateBucket(%q) = %v, want ok=%v", c.bucket, err, c.ok)
		}
	}
}

func TestValidateKey(t *testing.T) {
	cases := []struct {
		key string
		ok  bool
	}{
		{"a", true},
		{"data/obj-000001", true},
		{"deep/nested/path/with/slashes", true},
		{"spaces are fine", true},
		{"unicode-日本語", true},
		{strings.Repeat("k", 1024), true},

		{"", false},
		{strings.Repeat("k", 1025), false},
		{"line\nbreak", false},
		{"tab\tchar", false},
		{"nul\x00byte", false},
		{"del\x7fchar", false},
		{"bad\xffutf8", false},
	}
	for _, c := range cases {
		err := ValidateKey(c.key)
		if (err == nil) != c.ok {
			t.Errorf("ValidateKey(%q) = %v, want ok=%v", c.key, err, c.ok)
		}
	}
}

func TestParseKey(t *testing.T) {
	cases := []struct {
		in          string
		bucket, key string
		ok          bool
	}{
		{"abc/k", "abc", "k", true},
		{"my-bucket/data/obj-1", "my-bucket", "data/obj-1", true}, // key keeps later slashes
		{"abc/trailing/", "abc", "trailing/", true},

		{"", "", "", false},
		{"no-slash", "", "", false},
		{"ab/key", "", "", false},  // bucket too short
		{"abc/", "", "", false},    // empty key
		{"/key", "", "", false},    // empty bucket
		{"ABC/key", "", "", false}, // invalid bucket
		{"abc/\n", "", "", false},  // control char in key
	}
	for _, c := range cases {
		b, k, err := ParseKey(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseKey(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (b != c.bucket || k != c.key) {
			t.Errorf("ParseKey(%q) = (%q, %q), want (%q, %q)", c.in, b, k, c.bucket, c.key)
		}
	}
}

// TestFormatParseRoundTrip: FormatKey output always re-parses to the same
// halves for valid names.
func TestFormatParseRoundTrip(t *testing.T) {
	for _, pair := range [][2]string{
		{"abc", "k"},
		{"my-bucket", "data/a/b/c"},
		{"b.x-1", "日本語/key with spaces"},
	} {
		b, k, err := ParseKey(FormatKey(pair[0], pair[1]))
		if err != nil || b != pair[0] || k != pair[1] {
			t.Errorf("round trip (%q, %q) = (%q, %q, %v)", pair[0], pair[1], b, k, err)
		}
	}
}

// FuzzParseKey: ParseKey never panics, accepted inputs satisfy the
// validators, and FormatKey round-trips bit-exactly.
func FuzzParseKey(f *testing.F) {
	f.Add("abc/k")
	f.Add("my-bucket/data/obj-000001")
	f.Add("192.168.1.10/x")
	f.Add("a..b/k")
	f.Add("no-slash")
	f.Add("abc/\x00")
	f.Add(strings.Repeat("a", 64) + "/" + strings.Repeat("k", 1025))
	f.Fuzz(func(t *testing.T, s string) {
		bucket, key, err := ParseKey(s)
		if err != nil {
			return
		}
		if err := ValidateBucket(bucket); err != nil {
			t.Fatalf("ParseKey(%q) accepted invalid bucket %q: %v", s, bucket, err)
		}
		if err := ValidateKey(key); err != nil {
			t.Fatalf("ParseKey(%q) accepted invalid key %q: %v", s, key, err)
		}
		if got := FormatKey(bucket, key); got != s {
			t.Fatalf("FormatKey(ParseKey(%q)) = %q, want identity", s, got)
		}
		b2, k2, err := ParseKey(FormatKey(bucket, key))
		if err != nil || b2 != bucket || k2 != key {
			t.Fatalf("round trip diverged: (%q, %q, %v)", b2, k2, err)
		}
	})
}
