package objstore

import "sort"

// Entry is one object's metadata record.
type Entry struct {
	Key  string // canonical "bucket/key"
	Size int64
}

// Index is the gateway's metadata table: a sorted slice with binary-search
// lookup and insert. A sorted slice — not a map — because the index is on
// the simulation's deterministic path and map iteration order is not; it
// also matches the cost model (an amortized scan over adjacent entries is
// cheap precisely because neighbors are physically adjacent).
type Index struct {
	entries []Entry
}

// Len reports the number of records.
func (ix *Index) Len() int { return len(ix.entries) }

// Put inserts or replaces the record for key.
func (ix *Index) Put(key string, size int64) {
	i := sort.Search(len(ix.entries), func(k int) bool { return ix.entries[k].Key >= key })
	if i < len(ix.entries) && ix.entries[i].Key == key {
		ix.entries[i].Size = size
		return
	}
	ix.entries = append(ix.entries, Entry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = Entry{Key: key, Size: size}
}

// Lookup finds a record by key.
func (ix *Index) Lookup(key string) (Entry, bool) {
	i := sort.Search(len(ix.entries), func(k int) bool { return ix.entries[k].Key >= key })
	if i < len(ix.entries) && ix.entries[i].Key == key {
		return ix.entries[i], true
	}
	return Entry{}, false
}

// Delete removes a record, reporting whether it existed.
func (ix *Index) Delete(key string) bool {
	i := sort.Search(len(ix.entries), func(k int) bool { return ix.entries[k].Key >= key })
	if i >= len(ix.entries) || ix.entries[i].Key != key {
		return false
	}
	ix.entries = append(ix.entries[:i], ix.entries[i+1:]...)
	return true
}

// Scan returns the records in [from, to) in key order.
func (ix *Index) Scan(from, to string) []Entry {
	lo := sort.Search(len(ix.entries), func(k int) bool { return ix.entries[k].Key >= from })
	hi := sort.Search(len(ix.entries), func(k int) bool { return ix.entries[k].Key >= to })
	out := make([]Entry, hi-lo)
	copy(out, ix.entries[lo:hi])
	return out
}
