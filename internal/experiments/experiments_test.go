package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"A1", "A2", "A3", "A4", "A5", "A6", "E1", "E2", "F10", "F11", "F12", "F13", "F14", "F4", "F7", "F8", "F9", "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "T1"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("ZZ"); err == nil {
		t.Fatal("unknown id should error")
	}
}

// parse "12.3 Gbps" and "+8.3%"-style cells.
func gbps(t *testing.T, cell string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.Fields(cell)[0], 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", cell, err)
	}
	return f
}

func pct(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%")
	s = strings.TrimSuffix(s, "×")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", cell, err)
	}
	return f
}

func TestMotivatingIperfShape(t *testing.T) {
	res := MotivatingIperf()
	rows := res.Tables[0].Rows
	def := gbps(t, rows[0][1])
	bind := gbps(t, rows[1][1])
	if bind <= def {
		t.Fatalf("binding should help: %v vs %v", def, bind)
	}
	gain := bind / def
	if gain < 1.04 || gain > 1.20 {
		t.Fatalf("gain = %.3f, paper ≈1.10", gain)
	}
}

func TestStreamTriadShape(t *testing.T) {
	res := StreamTriad()
	found := false
	for _, row := range res.Tables[0].Rows {
		if row[0] == "Triad" && row[2] == "bind" {
			bw := gbps(t, row[3])
			if bw < 48 || bw > 52 {
				t.Fatalf("Triad = %v GB/s, paper 50", bw)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("Triad row missing")
	}
}

func TestCostBreakdownShape(t *testing.T) {
	res := CostBreakdown40G()
	rows := res.Tables[0].Rows
	rftpTotal := pct(t, rows[0][2])
	tcpTotal := pct(t, rows[1][2])
	if rftpTotal < 90 || rftpTotal > 170 {
		t.Fatalf("RFTP total = %v%%, paper 122%%", rftpTotal)
	}
	if tcpTotal < 520 || tcpTotal > 720 {
		t.Fatalf("TCP total = %v%%, paper 642%%", tcpTotal)
	}
	// RDMA pays no copy cost.
	if pct(t, rows[0][5]) != 0 {
		t.Fatal("RDMA copy cost must be 0")
	}
	if pct(t, rows[1][5]) < 150 {
		t.Fatalf("TCP copy = %v%%, paper 213%%", pct(t, rows[1][5]))
	}
}

func TestISERBandwidthShape(t *testing.T) {
	res := ISERBandwidth()
	for _, row := range res.Tables[0].Rows {
		gain := pct(t, row[4])
		if gain < 0 {
			t.Fatalf("NUMA tuning should never hurt: row %v", row)
		}
		if row[0] == "write" && (row[1] == "4MB" || row[1] == "16MB") {
			if gain < 12 || gain > 25 {
				t.Fatalf("large-block write gain = %v%%, paper ≈19%%", gain)
			}
		}
		if row[0] == "read" && gain > 15 {
			t.Fatalf("read gain = %v%%, paper ≈7.6%%", gain)
		}
	}
}

func TestISERCPUShape(t *testing.T) {
	res := ISERCPU()
	for _, row := range res.Tables[0].Rows {
		ratio := pct(t, row[4])
		switch row[0] {
		case "write":
			if ratio < 2 || ratio > 4 {
				t.Fatalf("write CPU ratio = %v, paper ≈3", ratio)
			}
		case "read":
			if ratio < 1 || ratio > 1.5 {
				t.Fatalf("read CPU ratio = %v, paper: not significant", ratio)
			}
		}
	}
}

func TestWANBandwidthShape(t *testing.T) {
	res := WANBandwidth()
	// Rows are stream counts; columns block sizes. Bandwidth must be
	// non-decreasing along both axes and peak near 39 Gbps.
	var prevRow []float64
	for _, row := range res.Tables[0].Rows {
		var vals []float64
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, v)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1]*0.99 {
				t.Fatalf("bandwidth fell with block size: %v", vals)
			}
		}
		if prevRow != nil {
			for i := range vals {
				if vals[i] < prevRow[i]*0.99 {
					t.Fatalf("bandwidth fell with streams: %v < %v", vals, prevRow)
				}
			}
		}
		prevRow = vals
	}
	peak := prevRow[len(prevRow)-1]
	if peak < 38 || peak > 40 {
		t.Fatalf("peak = %v Gbps, paper ≈97%% of 40", peak)
	}
}

func TestSSDThermalShape(t *testing.T) {
	res := SSDThermalThrottle()
	if len(res.Series) != 1 || res.Series[0].Len() == 0 {
		t.Fatal("missing series")
	}
	first := res.Series[0].Values[0]
	last := res.Series[0].Values[res.Series[0].Len()-1]
	if first < 1200 {
		t.Fatalf("healthy rate = %v MB/s, want ≈1300", first)
	}
	if last < 490 || last > 510 {
		t.Fatalf("throttled rate = %v MB/s, paper ≈500", last)
	}
}

func TestTestbedTableComplete(t *testing.T) {
	res := TestbedTable()
	if len(res.Tables[0].Rows) < 6 {
		t.Fatal("Table 1 rows missing")
	}
}

func TestResultString(t *testing.T) {
	res := TestbedTable()
	out := res.String()
	if !strings.Contains(out, "T1") || !strings.Contains(out, "Table 1") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestCreditAblationMonotone(t *testing.T) {
	res := CreditAblation()
	s := res.Series[0]
	for i := 1; i < s.Len(); i++ {
		if s.Values[i] < s.Values[i-1]*0.99 {
			t.Fatalf("throughput fell with more credits: %v", s.Values)
		}
	}
	// 1 credit ≈ blocksize/RTT; 64 credits saturates.
	if s.Values[0] > 3 {
		t.Fatalf("1 credit should starve: %v Gbps", s.Values[0])
	}
	if s.Values[s.Len()-1] < 38 {
		t.Fatalf("deep pipeline should saturate: %v Gbps", s.Values[s.Len()-1])
	}
}

func TestDirectIOAblationShape(t *testing.T) {
	res := DirectIOAblation()
	rows := res.Tables[0].Rows
	directBW, bufBW := gbps(t, rows[0][1]), gbps(t, rows[1][1])
	directCPU, bufCPU := pct(t, rows[0][2]), pct(t, rows[1][2])
	if bufBW >= directBW {
		t.Fatalf("buffered (%v) should not beat direct (%v)", bufBW, directBW)
	}
	if bufCPU <= directCPU {
		t.Fatalf("buffered CPU (%v) should exceed direct (%v)", bufCPU, directCPU)
	}
}

func TestStorageMediaAblationOrdering(t *testing.T) {
	res := StorageMediaAblation()
	rows := res.Tables[0].Rows
	ram, ssd, hdd := gbps(t, rows[0][1]), gbps(t, rows[1][1]), gbps(t, rows[2][1])
	if !(ram > ssd && ssd > hdd) {
		t.Fatalf("media ordering wrong: tmpfs %v, ssd %v, hdd %v", ram, ssd, hdd)
	}
	// 6 HDDs ≈ 6×150MB/s ≈ 7 Gbps upper bound.
	if hdd > 8 {
		t.Fatalf("HDD-backed rate %v implausibly high", hdd)
	}
}

func TestRenderChart(t *testing.T) {
	res := CreditAblation()
	out := res.RenderChart()
	if out == "" || !strings.Contains(out, "credits-Gbps") {
		t.Fatalf("chart render broken:\n%s", out)
	}
	// Results without series render nothing.
	if TestbedTable().RenderChart() != "" {
		t.Fatal("chart for series-less result should be empty")
	}
}

func TestEndToEndExperimentSmoke(t *testing.T) {
	res := EndToEndThroughput()
	rows := res.Tables[0].Rows
	// rows: ceiling / RFTP / GridFTP.
	rftpShare := pct(t, rows[1][2])
	gridShare := pct(t, rows[2][2])
	if rftpShare < 90 {
		t.Fatalf("RFTP share = %v%%, paper 96%%", rftpShare)
	}
	if gridShare < 20 || gridShare > 40 {
		t.Fatalf("GridFTP share = %v%%, paper 30%%", gridShare)
	}
	if len(res.Series) != 2 || res.Series[0].Len() < 40 {
		t.Fatal("25-minute series missing")
	}
	// Steady state: the series is flat after warm-up.
	if res.Series[0].TailMean(0.5) <= 0 {
		t.Fatal("series empty")
	}
}

func TestBiDirectionalExperimentSmoke(t *testing.T) {
	res := BiDirectionalThroughput()
	rows := res.Tables[0].Rows
	rGain := pct(t, rows[0][3])
	gGain := pct(t, rows[1][3])
	if rGain < 50 || rGain > 100 {
		t.Fatalf("RFTP gain = %v%%, paper +83%%", rGain)
	}
	if gGain >= rGain {
		t.Fatalf("GridFTP gain (%v%%) should trail RFTP's (%v%%)", gGain, rGain)
	}
}

func TestCPUBreakdownExperimentsSmoke(t *testing.T) {
	for _, fn := range []Runner{EndToEndCPU, BiDirectionalCPU} {
		res := fn()
		if len(res.Tables[0].Rows) != 4 {
			t.Fatalf("%s: want 4 host rows", res.ID)
		}
		for _, row := range res.Tables[0].Rows {
			if pct(t, row[1]) <= 0 {
				t.Fatalf("%s: zero CPU for %s", res.ID, row[0])
			}
		}
	}
}

func TestFioCeilingSmoke(t *testing.T) {
	res := FioCeiling()
	rows := res.Tables[0].Rows
	read := gbps(t, rows[0][1])
	write := gbps(t, rows[1][1])
	if write >= read {
		t.Fatalf("write (%v) should be the narrow section (read %v)", write, read)
	}
}

func TestWANCPUSmoke(t *testing.T) {
	res := WANCPU()
	if len(res.Tables) != 2 {
		t.Fatal("want sender and receiver tables")
	}
	// CPU falls per byte as blocks grow: compare first and last column of
	// the single-stream row, normalized by the F13 bandwidths at those
	// points (already checked monotone); here just check the tables fill.
	for _, tb := range res.Tables {
		if len(tb.Rows) != 4 {
			t.Fatalf("want 4 stream rows, got %d", len(tb.Rows))
		}
	}
}

func TestSchedulerSaturationShape(t *testing.T) {
	res := SchedulerSaturation()
	good, wait := res.Series[0], res.Series[1]
	// Goodput rises from underload toward a plateau: the peak must come
	// after the first point, and the last point must hold near the peak
	// (flat, not collapsing) while p99 wait keeps growing.
	if good.Values[1] <= good.Values[0] {
		t.Fatalf("goodput not rising at low load: %v", good.Values)
	}
	peak := good.Max()
	last := good.Values[good.Len()-1]
	if last < 0.7*peak {
		t.Fatalf("goodput collapsed past the knee: last %v, peak %v", last, peak)
	}
	if wait.Values[wait.Len()-1] <= wait.Values[0] {
		t.Fatalf("p99 wait did not grow with load: %v", wait.Values)
	}
	if wait.Values[wait.Len()-1] < 2*wait.Values[wait.Len()/2] {
		t.Fatalf("p99 wait should keep growing past the knee: %v", wait.Values)
	}
	// Failure-injection table: every job done, none lost, retries observed.
	frow := res.Tables[1].Rows[0]
	if frow[0] != "40/40" || frow[1] != "0" {
		t.Fatalf("outage run lost jobs: %v", frow)
	}
	if frow[2] == "0" {
		t.Fatalf("outage run saw no retries: %v", frow)
	}
}

func TestChaosRecoveryShape(t *testing.T) {
	res := ChaosRecovery()
	// Goodput series is ordered baseline-first, then decreasing MTBF: it
	// must never rise as faults get more frequent, and the harshest point
	// must pay a real penalty against the baseline.
	good := res.Series[0]
	for i := 1; i < good.Len(); i++ {
		if good.Values[i] > good.Values[i-1]*1.01 {
			t.Fatalf("goodput rose with fault frequency: %v", good.Values)
		}
	}
	if last := good.Values[good.Len()-1]; last >= 0.9*good.Values[0] {
		t.Fatalf("harshest chaos point too cheap: %v vs baseline %v", last, good.Values[0])
	}
	// Every sweep row delivered exactly once; the chaos runs themselves
	// panic otherwise, so just check the rendered claim and that the
	// harshest row actually recovered something.
	freq := res.Tables[0]
	for _, row := range freq.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("exactly-once column broken: %v", row)
		}
	}
	worst := freq.Rows[len(freq.Rows)-1]
	if worst[3] == "0" {
		t.Fatalf("harshest chaos row saw no recoveries: %v", worst)
	}
	// Degradation-only runs must never retransmit.
	for _, row := range res.Tables[1].Rows {
		if row[3] != "0" || row[4] != "0B" {
			t.Fatalf("degradation row retransmitted: %v", row)
		}
	}
}

func TestGrayFailureShape(t *testing.T) {
	res := GrayFailure()
	// The mitigation ladder at the 70%-sag point: each rung must recover
	// goodput, ending ≥90% of healthy while no-mitigation sits ≤60%.
	s := res.Series[0]
	if s.Len() != 3 {
		t.Fatalf("want 3 ladder points, got %d", s.Len())
	}
	for i := 1; i < s.Len(); i++ {
		if s.Values[i] < s.Values[i-1]*0.99 {
			t.Fatalf("mitigation ladder not monotone: %v", s.Values)
		}
	}
	if s.Values[0] > 60 {
		t.Fatalf("no-mitigation ablation too healthy: %v%% of baseline", s.Values[0])
	}
	if s.Values[2] < 90 {
		t.Fatalf("hedged recovery below gate: %v%% of baseline", s.Values[2])
	}
	// Table: baseline row plus 3 severities × 3 modes.
	if got := len(res.Tables[0].Rows); got != 10 {
		t.Fatalf("want 10 sweep rows, got %d", got)
	}
}

func TestFileSizeAblationMonotone(t *testing.T) {
	res := FileSizeAblation()
	s := res.Series[0]
	for i := 1; i < s.Len(); i++ {
		if s.Values[i] <= s.Values[i-1] {
			t.Fatalf("throughput should rise with file size: %v", s.Values)
		}
	}
	if s.Values[0] > 2 {
		t.Fatalf("1MB files on WAN should crawl, got %v Gbps", s.Values[0])
	}
}
