package experiments

import (
	"fmt"

	"e2edt/internal/metrics"
	"e2edt/internal/sim"
)

func init() {
	register("S6", ClusterChaos)
}

// chaosRow renders one chaos scenario against its baseline.
func chaosRow(tbl *metrics.Table, name string, res ClusterRunResult, baseline ClusterRunResult) {
	rep := res.Report
	tbl.AddRow(
		name,
		fmt.Sprintf("%.1f", rep.VirtualSeconds),
		fmt.Sprintf("%.1f", rep.AggregateGoodputGbps),
		fmt.Sprintf("%.0f%%", 100*rep.AggregateGoodputGbps/baseline.Report.AggregateGoodputGbps),
		fmt.Sprintf("%d", rep.JobsLost),
		fmt.Sprintf("%d", rep.JobsRequeued),
		fmt.Sprintf("%d / %d", rep.Elections, rep.Adoptions),
		fmt.Sprintf("%d / %d", rep.DegradedIn, rep.DegradedOut),
	)
}

// ClusterChaos is S6: cluster failure domains under a seeded chaos
// timeline. A 100-host run first executes fault-free to establish the
// goodput baseline and the horizon T; the chaos run then crash-stops a
// host at 0.3 T (restarting it 8 s later) and kills the leader controller
// at 0.6 T. A second scenario severs three shards from the control plane
// and darkens a spine switch. Hard gates, any of which panics the
// harness:
//
//   - every chaos run passes the exactly-once delivery audit;
//   - chaos goodput stays ≥ 90% of the no-fault baseline;
//   - the leader kill produces an election and an adoption;
//   - no shard is still degraded after the partition heals;
//   - each scenario runs twice and the trace hashes are bit-identical.
func ClusterChaos() Result {
	const seed = 4242
	base := ClusterRunSpec{
		Hosts:   100,
		Shards:  8,
		Tenants: 400,
		Jobs:    1200,
		DropPct: 2,
		Seed:    seed,
	}
	baseline := RunClusterPoint(base)
	if baseline.ExactlyOnce != nil {
		panic(fmt.Sprintf("S6: baseline failed delivery audit: %v", baseline.ExactlyOnce))
	}
	T := baseline.Report.VirtualSeconds

	runPair := func(name string, spec ClusterRunSpec) ClusterRunResult {
		r1 := RunClusterPoint(spec)
		r2 := RunClusterPoint(spec)
		if r1.TraceSHA != r2.TraceSHA {
			panic(fmt.Sprintf("S6: %s replay diverged between two runs of one seed", name))
		}
		if r1.ExactlyOnce != nil {
			panic(fmt.Sprintf("S6: %s failed delivery audit: %v", name, r1.ExactlyOnce))
		}
		if r1.DegradedAtEnd != 0 {
			panic(fmt.Sprintf("S6: %s left %d shards degraded", name, r1.DegradedAtEnd))
		}
		return r1
	}

	// Scenario 1: host crash at 0.3 T (8 s outage) + leader kill at 0.6 T.
	crash := base
	crash.Chaos = &ChaosSpec{
		HostKills: []HostKill{{Host: 7, At: sim.Time(0.3 * T), Down: 8}},
		CtrlKills: []CtrlKill{{Shard: 0, At: sim.Time(0.6 * T)}},
	}
	crashRes := runPair("host+leader kill", crash)
	if crashRes.Report.Elections < 1 || crashRes.Report.Adoptions < 1 {
		panic(fmt.Sprintf("S6: leader kill produced elections=%d adoptions=%d",
			crashRes.Report.Elections, crashRes.Report.Adoptions))
	}
	if crashRes.Report.JobsRequeued < 1 {
		panic("S6: host kill requeued nothing — recovery path never ran")
	}
	if ratio := crashRes.Report.AggregateGoodputGbps / baseline.Report.AggregateGoodputGbps; ratio < 0.9 {
		panic(fmt.Sprintf("S6: chaos goodput %.0f%% of baseline, need ≥ 90%%", 100*ratio))
	}

	// Scenario 2: control-plane partition (shards 5–7 severed for 8 s) plus
	// a spine switch dark for 5 s, forcing ECMP detours mid-transfer.
	part := base
	part.Chaos = &ChaosSpec{
		Partitions: []PartitionSpec{{Shards: []int{5, 6, 7}, At: sim.Time(0.25 * T), For: 8}},
		SpineKills: []SpineKill{{Spine: 1, At: sim.Time(0.4 * T), Down: 5}},
	}
	partRes := runPair("partition+spine kill", part)
	if partRes.Report.DegradedIn < 1 || partRes.Report.DegradedOut != partRes.Report.DegradedIn {
		panic(fmt.Sprintf("S6: degraded entries/exits %d/%d — partition handling broken",
			partRes.Report.DegradedIn, partRes.Report.DegradedOut))
	}
	if partRes.Report.PartDrops < 1 {
		panic("S6: partition severed no control traffic")
	}

	tbl := metrics.Table{
		Title: fmt.Sprintf("S6 — failure domains (100 hosts, 8 shards, baseline horizon %.1f s)", T),
		Headers: []string{"scenario", "virtual s", "goodput Gbps", "vs baseline",
			"lost", "requeued", "elect/adopt", "degraded in/out"},
	}
	chaosRow(&tbl, "no faults", baseline, baseline)
	chaosRow(&tbl, "host@30% + leader@60%", crashRes, baseline)
	chaosRow(&tbl, "partition 8s + spine 5s", partRes, baseline)

	return Result{
		ID:     "S6",
		Title:  "Cluster chaos: crash-stop hosts, leader failover, partition-tolerant degraded mode",
		Tables: []metrics.Table{tbl},
		Notes: []string{
			"every chaos run passed the exactly-once delivery audit (completions, lost jobs, byte ledgers)",
			fmt.Sprintf("chaos replays verified bit-identical (sha256 %s… / %s…)",
				crashRes.TraceSHA[:16], partRes.TraceSHA[:16]),
			fmt.Sprintf("host kill: %d requeues, %d voided completions; leader kill: %d elections, %d adoptions",
				crashRes.Report.JobsRequeued, crashRes.Report.VoidedJobs,
				crashRes.Report.Elections, crashRes.Report.Adoptions),
			fmt.Sprintf("partition: %d control drops, degraded %d/%d, %d stale leases rejected; spine kill rerouted %d jobs",
				partRes.Report.PartDrops, partRes.Report.DegradedIn, partRes.Report.DegradedOut,
				partRes.Report.StaleLeases, partRes.Report.Reroutes),
		},
	}
}
