package experiments

import "testing"

func TestRailFailoverShape(t *testing.T) {
	r, err := Run("S3")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(r.Tables))
	}
	if len(r.Tables[0].Rows) != 3 || len(r.Tables[1].Rows) != 2 {
		t.Fatalf("row counts %d/%d, want 3/2", len(r.Tables[0].Rows), len(r.Tables[1].Rows))
	}
	if len(r.Notes) == 0 {
		t.Fatal("no notes")
	}
}
