package experiments

import (
	"fmt"
	"math"

	"e2edt/internal/chart"
	"e2edt/internal/faults"
	"e2edt/internal/metrics"
	"e2edt/internal/pipe"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func init() {
	register("S2", ChaosRecovery)
}

// chaosMTBFs is the fault-frequency sweep: mean seconds between injected
// faults across the 3-link fabric (0 = fault-free baseline).
var chaosMTBFs = []float64{0, 4, 2, 1, 0.5}

// chaosDepths is the degradation-depth sweep: surviving capacity fraction
// of one front link during a fixed mid-transfer window.
var chaosDepths = []float64{0.75, 0.5, 0.25, 0.1}

// chaosRecoveryParams tunes RFTP's in-protocol recovery for the sweep:
// loss detection well inside the mean outage, and a retry budget deep
// enough that even overlapping outages on all three links are waited out
// rather than declared terminal.
func chaosRecoveryParams() rftp.Params {
	p := rftp.DefaultParams()
	p.AckTimeout = 50 * sim.Millisecond
	p.RetryBackoff = 20 * sim.Millisecond
	p.RetryBackoffMax = 200 * sim.Millisecond
	p.MaxStreamRetries = 32
	return p
}

// chaosOutcome is one chaos run's measurements.
type chaosOutcome struct {
	elapsed       float64 // seconds from start to completion
	goodput       float64 // bytes/s over the whole run
	recoveries    int
	retransmitted float64
	meanLat       float64 // mean recovery latency, seconds (0 if none)
	maxLat        float64
	delivered     float64
}

// chaosRun drives one finite RFTP transfer across a fresh 3×40G pair under
// the given fault plan (nil = baseline) and asserts exactly-once delivery:
// the transfer must complete, never fail over to an out-of-protocol path,
// and account for every payload byte exactly once.
func chaosRun(size float64, plan func(p *testbed.MotivatingPair) *faults.Plan) chaosOutcome {
	pair := testbed.NewMotivatingPair()
	eng := pair.Eng
	var doneAt sim.Time
	done := false
	tr, err := rftp.Start(pair.Links, pair.A, rftp.DefaultConfig(), chaosRecoveryParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { done, doneAt = true, now })
	if err != nil {
		panic(err)
	}
	if plan != nil {
		plan(pair).Apply(eng)
	}
	eng.Run()
	if !done || tr.Failed() {
		panic(fmt.Sprintf("S2: chaos transfer did not complete (failed=%v)", tr.Failed()))
	}
	if d := tr.Transferred(); math.Abs(d-size) > 1 {
		panic(fmt.Sprintf("S2: exactly-once violated: delivered %g of %g bytes", d, size))
	}
	out := chaosOutcome{
		elapsed:       float64(doneAt),
		goodput:       size / float64(doneAt),
		recoveries:    tr.Recoveries,
		retransmitted: tr.Retransmitted,
		delivered:     tr.Transferred(),
	}
	lats := tr.RecoveryLatencies()
	for _, l := range lats {
		out.meanLat += float64(l)
		if float64(l) > out.maxLat {
			out.maxLat = float64(l)
		}
	}
	if len(lats) > 0 {
		out.meanLat /= float64(len(lats))
	}
	return out
}

// ChaosRecovery sweeps seeded fault schedules against a finite RFTP
// transfer with in-protocol recovery enabled: first fault frequency (link
// flaps, degradation windows and injected error-completion bursts at
// decreasing MTBF), then degradation depth alone. Every run asserts
// exactly-once delivery; goodput and recovery latency are the figures of
// merit. The fault-free baseline anchors the cost of the recovery
// machinery itself (zero: the ACK tracker only acts on loss).
func ChaosRecovery() Result {
	size := 24 * float64(units.GB)

	freq := metrics.Table{
		Title: "Chaos sweep: fault frequency (seed 42, flap/degrade/burst mix, 24 GB over 3×40G)",
		Headers: []string{"MTBF", "elapsed", "goodput", "recoveries", "retransmitted",
			"mean rec lat", "max rec lat", "exactly-once"},
	}
	good := metrics.Series{Name: "goodput-Gbps"}
	lat := metrics.Series{Name: "mean-recovery-latency-ms"}
	var base, worst chaosOutcome
	for _, mtbf := range chaosMTBFs {
		var plan func(p *testbed.MotivatingPair) *faults.Plan
		label := "∞ (baseline)"
		if mtbf > 0 {
			label = fmt.Sprintf("%.1fs", mtbf)
			m := mtbf
			plan = func(p *testbed.MotivatingPair) *faults.Plan {
				return faults.Chaos(faults.ChaosConfig{
					Seed:          42,
					Horizon:       20 * sim.Second,
					Start:         sim.Time(200 * sim.Millisecond),
					MeanBetween:   sim.Duration(m) * sim.Second,
					MeanOutage:    300 * sim.Millisecond,
					FlapWeight:    3,
					DegradeWeight: 1,
					BurstWeight:   1,
				}, p.Links...)
			}
		}
		o := chaosRun(size, plan)
		if mtbf == 0 {
			base = o
		}
		worst = o
		x := mtbf
		if x == 0 {
			x = 16 // chart stand-in for the fault-free point
		}
		good.Add(x, units.ToGbps(o.goodput))
		lat.Add(x, o.meanLat*1e3)
		freq.AddRow(
			label,
			fmt.Sprintf("%.2fs", o.elapsed),
			units.FormatRate(o.goodput),
			fmt.Sprintf("%d", o.recoveries),
			units.FormatBytes(int64(o.retransmitted)),
			fmt.Sprintf("%.0fms", o.meanLat*1e3),
			fmt.Sprintf("%.0fms", o.maxLat*1e3),
			"yes",
		)
	}

	depth := metrics.Table{
		Title: "Degradation depth: link 0 at fraction f for t=0.5s..2.5s (no loss declared)",
		Headers: []string{"fraction", "elapsed", "goodput", "recoveries", "retransmitted",
			"exactly-once"},
	}
	for _, f := range chaosDepths {
		frac := f
		o := chaosRun(size, func(p *testbed.MotivatingPair) *faults.Plan {
			pl := &faults.Plan{}
			pl.DegradeWindow(p.Links[0], sim.Time(500*sim.Millisecond), 2*sim.Second, frac)
			return pl
		})
		if o.recoveries != 0 || o.retransmitted != 0 {
			panic(fmt.Sprintf("S2: degradation at %.2f triggered retransmission", frac))
		}
		depth.AddRow(
			fmt.Sprintf("%.2f", frac),
			fmt.Sprintf("%.2fs", o.elapsed),
			units.FormatRate(o.goodput),
			fmt.Sprintf("%d", o.recoveries),
			units.FormatBytes(int64(o.retransmitted)),
			"yes",
		)
	}

	return Result{
		ID:     "S2",
		Title:  "Fault injection: RFTP in-protocol recovery under chaos schedules",
		Tables: []metrics.Table{freq, depth},
		Series: []metrics.Series{good, lat},
		Chart:  &chart.Options{XLabel: "MTBF s (16=∞)", YLabel: "Gbps / ms", LogX: true},
		Notes: []string{
			"every run delivered every byte exactly once: completion required Transferred() == size with no duplicate accounting",
			fmt.Sprintf("baseline (no faults): %.1f Gbps with 0 recoveries — the ACK tracker is free until a loss occurs",
				units.ToGbps(base.goodput)),
			fmt.Sprintf("at the harshest point (MTBF %.1fs): %.1f Gbps, %d recoveries, %s retransmitted",
				chaosMTBFs[len(chaosMTBFs)-1], units.ToGbps(worst.goodput),
				worst.recoveries, units.FormatBytes(int64(worst.retransmitted))),
			"pure degradation windows slow the transfer but never trip loss detection: progress continues, so nothing is retransmitted",
		},
	}
}
