package experiments

import (
	"fmt"

	"e2edt/internal/chart"
	"e2edt/internal/core"
	"e2edt/internal/metrics"
	"e2edt/internal/sim"
	"e2edt/internal/units"
	"e2edt/internal/xfersched"
)

func init() {
	register("S1", SchedulerSaturation)
}

// schedLoads is the offered-load sweep in jobs/minute. With a ~4 GB mean
// job the service's front end saturates around 200 jobs/min, so the sweep
// crosses from underload well into overload.
var schedLoads = []float64{30, 60, 120, 240, 480}

// schedRun replays one generated trace through a fresh scheduler and
// returns its report. failAt > 0 injects a front-link outage window.
func schedRun(jobsPerMin float64, jobs int, failAt sim.Time, failFor sim.Duration) xfersched.Report {
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	sys, err := core.NewSystem(opt)
	if err != nil {
		panic(err)
	}
	cfg := xfersched.DefaultConfig()
	tc := xfersched.DefaultTraceConfig()
	tc.Jobs = jobs
	tc.JobsPerMinute = jobsPerMin
	tc.MinBytes = 2 * units.GB
	tc.MaxBytes = 6 * units.GB
	tc.GridFTPFraction = 0.2
	s, err := xfersched.New(sys, cfg)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	s.WithTenantWeights(tc.Tenants)
	s.SubmitTrace(xfersched.GenerateTrace(tc))
	if failAt > 0 {
		s.FailLink(sys.TB.FrontLinks[0], failAt, failFor)
	}
	if !s.RunToCompletion(2 * 3600 * sim.Second) {
		panic(fmt.Sprintf("S1: trace at %v jobs/min did not drain", jobsPerMin))
	}
	return s.Report()
}

// SchedulerSaturation sweeps offered load through the multi-tenant
// transfer scheduler: aggregate goodput rises with load until the
// admission cap pins it at the service capacity, while p99 admission wait
// grows without bound past the knee. A second table repeats a mid-load
// point with a front-link outage to show failure-driven retry: every job
// still completes.
func SchedulerSaturation() Result {
	const jobs = 40
	tb := metrics.Table{
		Title: "Scheduler saturation: offered load sweep (40-job traces)",
		Headers: []string{"jobs/min", "goodput", "p99 wait", "mean wait",
			"slowdown", "max queue", "done", "retries"},
	}
	good := metrics.Series{Name: "goodput-Gbps"}
	wait := metrics.Series{Name: "p99-wait-s"}
	peak := 0.0
	for _, load := range schedLoads {
		r := schedRun(load, jobs, 0, 0)
		g := units.ToGbps(r.AggregateGoodput)
		good.Add(load, g)
		wait.Add(load, r.P99Wait)
		if g > peak {
			peak = g
		}
		tb.AddRow(
			fmt.Sprintf("%.0f", load),
			units.FormatRate(r.AggregateGoodput),
			fmt.Sprintf("%.2fs", r.P99Wait),
			fmt.Sprintf("%.2fs", r.MeanWait),
			fmt.Sprintf("%.2f", r.MeanSlowdown),
			fmt.Sprintf("%d", r.MaxQueueLen),
			fmt.Sprintf("%d/%d", r.Completed, r.Submitted),
			fmt.Sprintf("%d", r.TotalRetries),
		)
	}

	// Failure-injection point: mid-load trace with one front link dark for
	// 10 s. Retries must appear; nothing may be lost.
	fr := schedRun(120, jobs, 5, 10*sim.Second)
	ft := metrics.Table{
		Title:   "Same service, 120 jobs/min, front link down t=5s..15s",
		Headers: []string{"done", "lost", "retries", "goodput", "p99 wait"},
	}
	ft.AddRow(
		fmt.Sprintf("%d/%d", fr.Completed, fr.Submitted),
		fmt.Sprintf("%d", fr.Lost),
		fmt.Sprintf("%d", fr.TotalRetries),
		units.FormatRate(fr.AggregateGoodput),
		fmt.Sprintf("%.2fs", fr.P99Wait),
	)

	return Result{
		ID:     "S1",
		Title:  "Multi-tenant transfer scheduler under offered load",
		Tables: []metrics.Table{tb, ft},
		Series: []metrics.Series{good, wait},
		Chart:  &chart.Options{XLabel: "jobs/min", YLabel: "Gbps / s", LogX: true},
		Notes: []string{
			fmt.Sprintf("goodput plateaus at %.1f Gbps once the admission cap saturates the front end", peak),
			"past the knee, p99 admission wait grows with offered load while goodput stays flat",
			fmt.Sprintf("link-outage run: %d/%d jobs done, %d lost, %d retries — failure-driven retry completes every job",
				fr.Completed, fr.Submitted, fr.Lost, fr.TotalRetries),
		},
	}
}
