package experiments

import (
	"fmt"
	"reflect"

	"e2edt/internal/chart"
	"e2edt/internal/cluster"
	"e2edt/internal/core"
	"e2edt/internal/metrics"
	"e2edt/internal/objstore"
	"e2edt/internal/sim"
	"e2edt/internal/trace"
	"e2edt/internal/units"
	"e2edt/internal/xfersched"
)

func init() {
	register("S8", ObjectGateway)
}

// s8Workload is the small-file burst every cell moves: one tenant so the
// coalescing knob alone decides window shapes, fixed 24 KB objects so the
// goodput story is about per-object overhead, not size variance.
func s8Workload(objects int) objstore.Workload {
	w := objstore.DefaultWorkload()
	w.Objects = objects
	w.Tenants = 1
	w.MinBytes = 24 << 10
	w.MaxBytes = 24 << 10
	w.ZeroEvery = 0
	w.Seed = 1
	return w
}

// s8Outcome is one single-pair cell's measurements.
type s8Outcome struct {
	elapsed float64
	goodput float64 // payload bytes/s over the burst's makespan
	cpu     float64 // sender front-end core-seconds, all processes
	windows int
	lookups int
	scans   int
}

// s8Run drives one single-pair gateway cell: a burst of PUTs at t=1s,
// coalescing knob set to k, run to completion under the exactly-once audit.
func s8Run(objects, k int, rec *trace.Recorder) s8Outcome {
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	sys, err := core.NewSystem(opt)
	if err != nil {
		panic(err)
	}
	if rec != nil {
		sys.Engine().SetTracer(rec)
	}
	sched, err := xfersched.New(sys, xfersched.DefaultConfig())
	if err != nil {
		panic(err)
	}
	defer sched.Close()
	p := objstore.DefaultParams()
	p.Coalesce = k
	g := objstore.NewGateway(sched, p, core.Forward)

	w := s8Workload(objects)
	start := sim.Time(sim.Second)
	idx, err := g.Put(start, w.Generate())
	if err != nil {
		panic(err)
	}
	if !g.RunToCompletion(600 * sim.Second) {
		panic(fmt.Sprintf("S8: k=%d burst did not drain", k))
	}
	if err := g.AuditExactlyOnce(); err != nil {
		panic(fmt.Sprintf("S8: %v", err))
	}
	var last sim.Time
	for _, i := range idx {
		if at := g.DoneAt(i); at > last {
			last = at
		}
	}
	n, bytes := g.ObjectsDone()
	if n != objects {
		panic(fmt.Sprintf("S8: k=%d delivered %d of %d objects", k, n, objects))
	}
	elapsed := float64(last - start)
	return s8Outcome{
		elapsed: elapsed,
		goodput: bytes / elapsed,
		cpu:     sys.TB.Sender.HostCPUReport().Total,
		windows: g.Windows,
		lookups: g.Lookups,
		scans:   g.Scans,
	}
}

// s8Baseline moves the same payload as one large file through the same
// scheduler — the bulk-transfer regime the paper's testbed was tuned for,
// and the yardstick the small-file cells are measured against.
func s8Baseline(bytes float64) s8Outcome {
	opt := core.DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	sys, err := core.NewSystem(opt)
	if err != nil {
		panic(err)
	}
	sched, err := xfersched.New(sys, xfersched.DefaultConfig())
	if err != nil {
		panic(err)
	}
	defer sched.Close()
	j, err := sched.Submit(xfersched.JobSpec{
		ID: "bulk", Tenant: "tenant-00", Protocol: xfersched.ProtoRFTP,
		Bytes: int64(bytes), Files: 1,
	})
	if err != nil {
		panic(err)
	}
	if !sched.RunToCompletion(600 * sim.Second) {
		panic("S8: bulk baseline did not finish")
	}
	elapsed := float64(j.Finished - j.Submitted)
	return s8Outcome{
		elapsed: elapsed,
		goodput: bytes / elapsed,
		cpu:     sys.TB.Sender.HostCPUReport().Total,
		windows: 1,
	}
}

// s8Cluster runs the burst through the 16-host cluster gateway and returns
// submitted jobs, delivered objects and the drain time.
func s8Cluster(objects, k int) (jobs, done int, elapsed float64) {
	eng := sim.NewEngine()
	c, err := cluster.New(eng, cluster.Config{Hosts: 16, Shards: 4, DropPct: 5, Seed: 1})
	if err != nil {
		panic(err)
	}
	c.AddTenants(4)
	p := objstore.DefaultParams()
	p.Coalesce = k
	g := objstore.NewClusterGateway(c, p)
	w := s8Workload(objects)
	w.Tenants = 4
	all := w.Generate()
	per := len(all) / 4
	for tenant := 0; tenant < 4; tenant++ {
		at := sim.Time(sim.Duration(1+tenant) * sim.Second)
		if _, err := g.Put(at, tenant, all[tenant*per:(tenant+1)*per]); err != nil {
			panic(err)
		}
	}
	c.Run()
	if err := g.AuditExactlyOnce(); err != nil {
		panic(fmt.Sprintf("S8: cluster k=%d: %v", k, err))
	}
	done, _ = g.ObjectsDone()
	return g.Windows, done, float64(eng.Now())
}

// ObjectGateway is the small-file regime: the bulk-transfer testbed meets
// an object-storage workload of thousands of KB-scale PUTs, where session
// handshakes and per-object metadata lookups — not wire bandwidth — govern
// goodput. The sweep turns the coalescing knob from per-object (every PUT
// pays its own rftp session and point lookup) to aggressive (adjacent PUTs
// share one delimited stream window and one amortized index scan), and
// gates on coalesced goodput ≥5× per-object at equal payload, with the
// exactly-once audit and a bit-identical replay on the gated cell.
func ObjectGateway() Result {
	const objects = 1024
	ks := []int{1, 16, 256, 4096}

	totalBytes := 0.0
	for _, o := range s8Workload(objects).Generate() {
		totalBytes += float64(o.Size)
	}
	base := s8Baseline(totalBytes)

	outs := make(map[int]s8Outcome)
	for _, k := range ks {
		outs[k] = s8Run(objects, k, nil)
	}

	// Gates: the coalescing claim, the window arithmetic, the CPU gap.
	per, co := outs[1], outs[256]
	if co.goodput < 5*per.goodput {
		panic(fmt.Sprintf("S8: coalesced goodput %.3g only %.1f× per-object %.3g — gate is ≥5×",
			co.goodput, co.goodput/per.goodput, per.goodput))
	}
	if per.windows != objects || per.lookups != objects || per.scans != 0 {
		panic(fmt.Sprintf("S8: per-object cell shape wrong: windows=%d lookups=%d scans=%d",
			per.windows, per.lookups, per.scans))
	}
	if co.windows >= per.windows/8 || co.scans == 0 {
		panic(fmt.Sprintf("S8: k=256 submitted %d windows (%d scans) — coalescing dead",
			co.windows, co.scans))
	}
	if per.cpu <= co.cpu {
		panic(fmt.Sprintf("S8: per-object CPU %.3fs not above coalesced %.3fs — overhead model dead",
			per.cpu, co.cpu))
	}

	// Replay: the gated cell twice under a recording tracer, bit-identical.
	rec1, rec2 := &trace.Recorder{}, &trace.Recorder{}
	s8Run(objects, 256, rec1)
	s8Run(objects, 256, rec2)
	if len(rec1.Events) == 0 || !reflect.DeepEqual(rec1.Events, rec2.Events) {
		panic(fmt.Sprintf("S8: replayed k=256 cell diverged (%d vs %d events)",
			len(rec1.Events), len(rec2.Events)))
	}

	// Cluster mode: same burst over 16 hosts; coalescing must collapse the
	// job count well below the object count while the audit still holds.
	clJobsPer, clDonePer, _ := s8Cluster(512, 1)
	clJobsCo, clDoneCo, _ := s8Cluster(512, 64)
	if clDonePer != 512 || clDoneCo != 512 {
		panic(fmt.Sprintf("S8: cluster delivered %d/%d of 512", clDonePer, clDoneCo))
	}
	if clJobsPer != 512 || clJobsCo*4 > clJobsPer {
		panic(fmt.Sprintf("S8: cluster job counts %d/%d — coalescing dead at scale", clJobsPer, clJobsCo))
	}

	tbl := metrics.Table{
		Title: fmt.Sprintf("Object gateway, single pair: %d×24 KB PUTs (%s) vs one bulk file",
			objects, units.FormatBytes(int64(totalBytes))),
		Headers: []string{"cell", "windows", "lookups", "scans", "elapsed", "goodput", "vs bulk", "front CPU"},
	}
	tbl.AddRow("bulk file", "1", "—", "—",
		fmt.Sprintf("%.3fs", base.elapsed), units.FormatRate(base.goodput), "100%",
		fmt.Sprintf("%.3fs", base.cpu))
	for _, k := range ks {
		o := outs[k]
		tbl.AddRow(fmt.Sprintf("objects, K=%d", k),
			fmt.Sprintf("%d", o.windows), fmt.Sprintf("%d", o.lookups), fmt.Sprintf("%d", o.scans),
			fmt.Sprintf("%.3fs", o.elapsed), units.FormatRate(o.goodput),
			fmt.Sprintf("%.1f%%", 100*o.goodput/base.goodput),
			fmt.Sprintf("%.3fs", o.cpu))
	}

	clTbl := metrics.Table{
		Title:   "Object gateway, 16-host cluster: 512×24 KB PUTs from 4 tenants (5% control drop)",
		Headers: []string{"cell", "jobs", "objects", "delivered"},
	}
	clTbl.AddRow("per-object (K=1)", fmt.Sprintf("%d", clJobsPer), "512", fmt.Sprintf("%d", clDonePer))
	clTbl.AddRow("coalesced (K=64)", fmt.Sprintf("%d", clJobsCo), "512", fmt.Sprintf("%d", clDoneCo))

	good := metrics.Series{Name: "goodput-vs-coalesce-K"}
	for i, k := range ks {
		good.Add(float64(i), outs[k].goodput/1e9)
	}

	return Result{
		ID:     "S8",
		Title:  "Object gateway: coalescing the small-file regime",
		Tables: []metrics.Table{tbl, clTbl},
		Series: []metrics.Series{good},
		Chart:  &chart.Options{XLabel: "coalesce knob (0→K=1, 1→16, 2→256, 3→4096)", YLabel: "goodput GB/s"},
		Notes: []string{
			fmt.Sprintf("per-object mode reaches %.1f%% of bulk goodput: every 24 KB PUT pays a session handshake (~0.33 ms) and a point metadata lookup, so the wire idles while the control plane grinds",
				100*per.goodput/base.goodput),
			fmt.Sprintf("K=256 coalescing recovers %.1f× over per-object (gate ≥5×): %d windows and %d amortized index scans replace %d sessions and %d point lookups",
				co.goodput/per.goodput, co.windows, co.scans, per.windows, per.lookups),
			fmt.Sprintf("front-end CPU drops from %.3f to %.3f core-seconds at equal payload — batching the metadata path is where the CPU gap closes",
				per.cpu, co.cpu),
			fmt.Sprintf("cluster mode: coalescing submits %d jobs for 512 objects (per-object: %d) across 16 hosts with lossy control, and the exactly-once audit holds in both cells",
				clJobsCo, clJobsPer),
			"every cell passes the per-PUT exactly-once audit, and the gated K=256 cell replayed with the same seed produces a bit-identical event trace",
		},
	}
}
