package experiments

import (
	"fmt"
	"time"

	"e2edt/internal/chart"
	"e2edt/internal/cluster"
	"e2edt/internal/fabric"
	"e2edt/internal/faults"
	"e2edt/internal/metrics"
	"e2edt/internal/sim"
	"e2edt/internal/trace"
)

func init() {
	register("S5", ClusterScale)
}

// ClusterRunSpec parameterizes one cluster scenario run; it is shared by
// the S5/S6 harnesses, the cmd/xfersched cluster mode, and
// cmd/clusterbench so every consumer measures exactly the same system.
type ClusterRunSpec struct {
	Hosts    int
	Shards   int
	Tenants  int
	Jobs     int
	DropPct  float64
	Topology string // "leaf-spine" (default) or "fat-tree"
	Seed     int64

	// Chaos, when non-nil, injects cluster-scale faults into the run.
	Chaos *ChaosSpec

	// Gray arms the host outlier scorer and the admission shed valve
	// (cluster.GrayConfig defaults).
	Gray bool
}

// ChaosSpec schedules cluster-scale faults: crash-stop hosts (optionally
// restarting), crash-stop shard controllers, control-plane partitions, and
// spine-switch outages. Everything is virtual-time-stamped, so the fault
// timeline is part of the deterministic replay.
type ChaosSpec struct {
	HostKills  []HostKill
	CtrlKills  []CtrlKill
	Partitions []PartitionSpec
	SpineKills []SpineKill
	Limps      []LimpSpec
}

// LimpSpec puts a host into gray limp mode at At — cores slowed to Factor
// of nominal speed with heartbeats intact — recovering after For.
type LimpSpec struct {
	Host   int
	At     sim.Time
	For    sim.Duration
	Factor float64
}

// HostKill crash-stops a host at At; Down > 0 cold-restarts it after that
// long, Down == 0 leaves it dead.
type HostKill struct {
	Host int
	At   sim.Time
	Down sim.Duration
}

// CtrlKill permanently crash-stops a shard controller at At.
type CtrlKill struct {
	Shard int
	At    sim.Time
}

// PartitionSpec severs the listed shards from the rest of the control
// plane at At, healing after For.
type PartitionSpec struct {
	Shards []int
	At     sim.Time
	For    sim.Duration
}

// SpineKill fails every trunk of one spine switch at At; Down > 0 repairs
// them after that long, Down == 0 leaves the spine dark.
type SpineKill struct {
	Spine int
	At    sim.Time
	Down  sim.Duration
}

// Validate rejects contradictory host-side chaos timelines — overlapping
// outage or limp windows, or a crash-stop scheduled inside a limp window —
// before a run silently resolves them last-writer-wins. Link-side events
// (spine kills) target disjoint links per spine and are checked again when
// the full plan is assembled.
func (s *ChaosSpec) Validate() error {
	plan := &faults.Plan{}
	for _, k := range s.HostKills {
		if k.Down > 0 {
			plan.HostOutage(k.Host, k.At, k.Down)
		} else {
			plan.KillHost(k.Host, k.At)
		}
	}
	for _, l := range s.Limps {
		plan.LimpWindow(l.Host, l.At, l.For, l.Factor)
	}
	for _, p := range s.Partitions {
		plan.PartitionWindow(p.Shards, p.At, p.For)
	}
	return plan.Validate()
}

// ClusterRunResult is one run's outcome: the cluster report plus the
// replay digest and the wall-clock cost of simulating it.
type ClusterRunResult struct {
	Report      cluster.Report
	TraceSHA    string
	TraceEvents uint64
	WallSeconds float64
	Topology    string

	// ExactlyOnce is the post-run delivery audit: nil iff every done job
	// completed exactly once and the delivered-bytes ledgers agree.
	ExactlyOnce error
	// DegradedAtEnd counts shards still in degraded mode when the run
	// drained (must be zero after every partition heals).
	DegradedAtEnd int
}

// RunClusterPoint builds, runs, and summarizes one cluster scenario under
// a hashing tracer. The trace digest is a bit-exact fingerprint of the
// run: two calls with one spec must return equal TraceSHA values.
func RunClusterPoint(spec ClusterRunSpec) ClusterRunResult {
	eng := sim.NewEngine()
	h := trace.NewHasher()
	eng.SetTracer(h)
	cfg := cluster.Config{
		Hosts:   spec.Hosts,
		Shards:  spec.Shards,
		DropPct: spec.DropPct,
		Seed:    spec.Seed,
	}
	if spec.Gray {
		cfg.Gray = cluster.GrayConfig{Enabled: true}
	}
	if spec.Topology != "" {
		kind, err := fabric.ParseTopoKind(spec.Topology)
		if err != nil {
			panic(fmt.Sprintf("S5: %v", err))
		}
		cfg.Topology = kind
	}
	c, err := cluster.New(eng, cfg)
	if err != nil {
		panic(fmt.Sprintf("S5: %v", err))
	}
	if err := cluster.Generate(c, cluster.WorkloadConfig{
		Tenants: spec.Tenants,
		Jobs:    spec.Jobs,
		Seed:    spec.Seed,
	}); err != nil {
		panic(fmt.Sprintf("cluster workload: %v", err))
	}
	if spec.Chaos != nil {
		plan := &faults.Plan{}
		for _, k := range spec.Chaos.HostKills {
			if k.Down > 0 {
				plan.HostOutage(k.Host, k.At, k.Down)
			} else {
				plan.KillHost(k.Host, k.At)
			}
		}
		for _, k := range spec.Chaos.CtrlKills {
			plan.KillController(k.Shard, k.At)
		}
		for _, p := range spec.Chaos.Partitions {
			plan.PartitionWindow(p.Shards, p.At, p.For)
		}
		for _, l := range spec.Chaos.Limps {
			plan.LimpWindow(l.Host, l.At, l.For, l.Factor)
		}
		for _, k := range spec.Chaos.SpineKills {
			for _, l := range c.Topo.SpineLinks(k.Spine) {
				if k.Down > 0 {
					plan.FailWindow(l, k.At, k.Down)
				} else {
					plan.PermanentFail(l, k.At)
				}
			}
		}
		if err := plan.Validate(); err != nil {
			panic(fmt.Sprintf("chaos plan: %v", err))
		}
		plan.ApplyTo(eng, c)
	}
	t0 := time.Now()
	c.Run()
	return ClusterRunResult{
		Report:        c.Report(),
		TraceSHA:      h.Sum(),
		TraceEvents:   h.Events(),
		WallSeconds:   time.Since(t0).Seconds(),
		Topology:      c.Topo.Describe(),
		ExactlyOnce:   c.VerifyExactlyOnce(),
		DegradedAtEnd: c.DegradedShards(),
	}
}

// ClusterScale is S5: the cluster-scale scenario harness. It sweeps host
// count at fixed per-host load (10 tenants, 20 jobs per host), so aggregate
// goodput must grow with the cluster, then sweeps shard count at 300 hosts
// to show scheduler decision latency staying bounded as the control plane
// scales out. The 1000-host point runs twice and its traces must be
// bit-identical — the d7024e-style ≥1000-node emulation bar with
// deterministic replay.
func ClusterScale() Result {
	const seed = 1337
	scaleTable := metrics.Table{
		Title:   "S5a — scaling curve (leaf-spine, 8 shards, 5% control drop)",
		Headers: []string{"hosts", "tenants", "jobs", "virtual s", "goodput Gbps", "p50 µs", "p99 µs", "lost", "trace events"},
	}
	var goodput metrics.Series
	goodput.Name = "hosts-goodputGbps"
	var prev float64
	var sha1000 string
	for _, hosts := range []int{100, 300, 1000} {
		spec := ClusterRunSpec{
			Hosts:   hosts,
			Shards:  8,
			Tenants: 10 * hosts,
			Jobs:    20 * hosts,
			DropPct: 5,
			Seed:    seed,
		}
		res := RunClusterPoint(spec)
		rep := res.Report
		if hosts == 1000 {
			// Replay contract at full scale: a second run of the same seed
			// must hash to the same trace.
			again := RunClusterPoint(spec)
			if again.TraceSHA != res.TraceSHA {
				panic("S5: 1000-host replay diverged between two runs of one seed")
			}
			sha1000 = res.TraceSHA
		}
		if rep.AggregateGoodputGbps <= prev {
			panic(fmt.Sprintf("S5: goodput did not grow with host count: %d hosts at %.1f Gbps after %.1f",
				hosts, rep.AggregateGoodputGbps, prev))
		}
		prev = rep.AggregateGoodputGbps
		goodput.Add(float64(hosts), rep.AggregateGoodputGbps)
		scaleTable.AddRow(
			fmt.Sprintf("%d", hosts),
			fmt.Sprintf("%d", rep.Tenants),
			fmt.Sprintf("%d", rep.Jobs),
			fmt.Sprintf("%.1f", rep.VirtualSeconds),
			fmt.Sprintf("%.1f", rep.AggregateGoodputGbps),
			fmt.Sprintf("%.1f", rep.DecisionP50us),
			fmt.Sprintf("%.1f", rep.DecisionP99us),
			fmt.Sprintf("%d", rep.JobsLost),
			fmt.Sprintf("%d", res.TraceEvents),
		)
	}
	shardTable := metrics.Table{
		Title:   "S5b — shard sweep (300 hosts, 3000 tenants, 6000 jobs)",
		Headers: []string{"shards", "goodput Gbps", "decisions", "p50 µs", "p99 µs", "digests", "adjusts"},
	}
	for _, shards := range []int{1, 2, 4, 8} {
		res := RunClusterPoint(ClusterRunSpec{
			Hosts:   300,
			Shards:  shards,
			Tenants: 3000,
			Jobs:    6000,
			DropPct: 5,
			Seed:    seed,
		})
		rep := res.Report
		// The latency bound is deliberately loose (wall-clock measurements
		// on shared CI hardware jitter), but a pathological control plane —
		// one shard scanning a cluster-wide queue for milliseconds — fails.
		if rep.DecisionP99us > 100_000 {
			panic(fmt.Sprintf("S5: decision p99 %.0f µs at %d shards — control plane unbounded",
				rep.DecisionP99us, shards))
		}
		shardTable.AddRow(
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%.1f", rep.AggregateGoodputGbps),
			fmt.Sprintf("%d", rep.Decisions),
			fmt.Sprintf("%.1f", rep.DecisionP50us),
			fmt.Sprintf("%.1f", rep.DecisionP99us),
			fmt.Sprintf("%d", rep.Digests),
			fmt.Sprintf("%d", rep.Adjusts),
		)
	}
	return Result{
		ID:     "S5",
		Title:  "Cluster scale: leaf-spine fabric, sharded control plane, 1000 hosts",
		Tables: []metrics.Table{scaleTable, shardTable},
		Series: []metrics.Series{goodput},
		Chart: &chart.Options{
			XLabel: "hosts",
			YLabel: "aggregate goodput (Gbps)",
		},
		Notes: []string{
			"per-host load held constant (10 tenants, 20 jobs per host): goodput scales with hosts",
			fmt.Sprintf("1000-host replay verified bit-identical (sha256 %s…)", sha1000[:16]),
			"decision latency is wall-clock (observational); it never enters the simulation or trace",
		},
	}
}
