// Package experiments regenerates every table and figure in the paper's
// evaluation (plus the §2.3 motivating experiment and two ablations), each
// as a self-contained function returning paper-style rows and series.
//
// The experiment index — paper value versus the value this simulation
// reproduces — is recorded in EXPERIMENTS.md at the repository root.
//
// Durations: the fluid model reaches steady state within simulated
// milliseconds, so experiments use compressed measurement windows (seconds
// instead of the paper's minutes) except where the long horizon is the
// point (Figure 9/11 time series, SSD thermal throttling).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"e2edt/internal/chart"
	"e2edt/internal/metrics"
)

// Result is one regenerated table/figure.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "F9").
	ID string
	// Title describes the paper artifact.
	Title string
	// Tables hold the regenerated rows.
	Tables []metrics.Table
	// Series hold regenerated curves (time series or sweeps).
	Series []metrics.Series
	// Chart, when non-nil, configures how Series render as an ASCII
	// figure (cmd/e2ebench -chart).
	Chart *chart.Options
	// Notes document paper-vs-measured observations.
	Notes []string
}

// RenderChart draws the result's series with its chart options (or
// defaults). Empty string when there are no series.
func (r Result) RenderChart() string {
	if len(r.Series) == 0 {
		return ""
	}
	opt := chart.Options{Title: fmt.Sprintf("%s — %s", r.ID, r.Title)}
	if r.Chart != nil {
		opt = *r.Chart
		if opt.Title == "" {
			opt.Title = fmt.Sprintf("%s — %s", r.ID, r.Title)
		}
	}
	return chart.Render(opt, r.Series...)
}

// String renders the result for terminal output.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "series %s: n=%d mean=%.2f min=%.2f max=%.2f\n",
			s.Name, s.Len(), s.Mean(), s.Min(), s.Max())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces one experiment result.
type Runner func() Result

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

// register adds an experiment; called from init functions.
func register(id string, fn Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = fn
}

// IDs returns the registered experiment identifiers, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string) (Result, error) {
	fn, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return fn(), nil
}

// RunAll executes every registered experiment in ID order.
func RunAll() []Result {
	var out []Result
	for _, id := range IDs() {
		out = append(out, registry[id]())
	}
	return out
}
