package experiments

import (
	"fmt"

	"e2edt/internal/blockdev"
	"e2edt/internal/fabric"
	"e2edt/internal/fio"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/iscsi"
	"e2edt/internal/iser"
	"e2edt/internal/metrics"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func init() {
	register("F7", ISERBandwidth)
	register("F8", ISERCPU)
}

// backendRig is the §4.2 back-end testbed: initiator + target joined by two
// FDR links, six 50 GB tmpfs LUNs.
type backendRig struct {
	eng  *sim.Engine
	s    *fluid.Sim
	init *host.Host
	tgt  *host.Host
	sess *iscsi.Session
}

func newBackendRig(policy numa.Policy) *backendRig {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	hi := host.New("init", numa.MustNew(s, testbed.BackEndLAN("init")))
	ht := host.New("tgt", numa.MustNew(s, testbed.BackEndLAN("tgt")))
	var links []*fabric.Link
	for i := 0; i < 2; i++ {
		links = append(links, fabric.Connect(s, testbed.IBFDR56(fmt.Sprintf("ib%d", i)),
			hi, hi.M.Node(i), ht, ht.M.Node(i)))
	}
	tg := iscsi.NewTarget("tgt", ht, iscsi.DefaultTargetConfig(policy))
	for i := 0; i < 6; i++ {
		var homes []*numa.Node
		if policy == numa.PolicyBind {
			homes = []*numa.Node{ht.M.Node(i % 2)}
		} else {
			homes = ht.M.Nodes
		}
		tg.AddLUN(i, blockdev.NewRamdisk(ht.M, fmt.Sprintf("lun%d", i), 50*units.GB, homes...))
	}
	initProc := hi.NewProcess("open-iscsi", policy, nil)
	mv := iser.NewMover(
		[]iser.Portal{iser.PortalFor(links[0], ht), iser.PortalFor(links[1], ht)},
		initProc.NewThread(), tg, iser.DefaultParams())
	return &backendRig{eng: eng, s: s, init: hi, tgt: ht, sess: iscsi.NewSession(tg, mv)}
}

// fioPoint runs one fio configuration for the compressed steady-state
// window and returns (bandwidth bytes/s, target CPU core-seconds).
func fioPoint(policy numa.Policy, op iscsi.Op, blockSize int64) (float64, float64) {
	r := newBackendRig(policy)
	const window = 4.0
	mkBuf := func(lun, slot int) *numa.Buffer {
		if policy == numa.PolicyBind {
			return r.init.M.NewBuffer("fio", r.init.M.Node(lun%2))
		}
		return r.init.M.InterleavedBuffer("fio")
	}
	res, err := fio.Run(r.eng, r.sess, mkBuf, fio.JobSpec{
		Name: "fio", Op: op, BlockSize: blockSize, IODepth: 4, Duration: window,
	})
	if err != nil {
		panic(err)
	}
	cpu := r.tgt.HostCPUReport().Total / window * 100 // percent of one core
	return res[0].Bandwidth(), cpu
}

// fioBlockSizes is the Figure 7/8 sweep.
var fioBlockSizes = []int64{256 * units.KB, units.MB, 4 * units.MB, 16 * units.MB}

// ISERBandwidth regenerates Figure 7: iSER bandwidth, default scheduling vs
// NUMA tuning, for reads and writes across block sizes.
// Paper: read gain ≈7.6%; write gain up to 19% (bs ≥ 4 MB); tuned reads
// ≈7.5% above tuned writes.
func ISERBandwidth() Result {
	tb := metrics.Table{
		Title:   "iSER bandwidth: default vs NUMA-tuned (Fig. 7)",
		Headers: []string{"op", "block", "default", "NUMA-tuned", "gain"},
	}
	var series []metrics.Series
	var read4, write4 float64
	for _, op := range []iscsi.Op{iscsi.OpRead, iscsi.OpWrite} {
		def := metrics.Series{Name: fmt.Sprintf("%s-default-Gbps", op)}
		bind := metrics.Series{Name: fmt.Sprintf("%s-tuned-Gbps", op)}
		for _, bs := range fioBlockSizes {
			d, _ := fioPoint(numa.PolicyDefault, op, bs)
			b, _ := fioPoint(numa.PolicyBind, op, bs)
			def.Add(float64(bs), units.ToGbps(d))
			bind.Add(float64(bs), units.ToGbps(b))
			tb.AddRow(op.String(), units.FormatBytes(bs),
				units.FormatRate(d), units.FormatRate(b),
				fmt.Sprintf("%+.1f%%", (b/d-1)*100))
			if bs == 4*units.MB {
				if op == iscsi.OpRead {
					read4 = b
				} else {
					write4 = b
				}
			}
		}
		series = append(series, def, bind)
	}
	return Result{
		ID:     "F7",
		Title:  "iSER bandwidth vs NUMA policy",
		Tables: []metrics.Table{tb},
		Series: series,
		Notes: []string{
			"paper: read gain ≈7.6%, write gain ≈19% at bs ≥ 4MB",
			fmt.Sprintf("paper: tuned read ≈7.5%% above tuned write; measured: %+.1f%%",
				(read4/write4-1)*100),
		},
	}
}

// ISERCPU regenerates Figure 8: iSER target CPU utilization, default vs
// NUMA-tuned. Paper: default-policy writes cost ≈3× the CPU of tuned
// writes; reads change little.
func ISERCPU() Result {
	tb := metrics.Table{
		Title:   "iSER target CPU: default vs NUMA-tuned (Fig. 8)",
		Headers: []string{"op", "block", "default CPU", "NUMA-tuned CPU", "ratio"},
	}
	var ratios []float64
	for _, op := range []iscsi.Op{iscsi.OpRead, iscsi.OpWrite} {
		for _, bs := range fioBlockSizes {
			_, d := fioPoint(numa.PolicyDefault, op, bs)
			_, b := fioPoint(numa.PolicyBind, op, bs)
			tb.AddRow(op.String(), units.FormatBytes(bs),
				fmt.Sprintf("%.0f%%", d), fmt.Sprintf("%.0f%%", b),
				fmt.Sprintf("%.2f×", d/b))
			if op == iscsi.OpWrite {
				ratios = append(ratios, d/b)
			}
		}
	}
	avg := 0.0
	for _, r := range ratios {
		avg += r
	}
	avg /= float64(len(ratios))
	return Result{
		ID:     "F8",
		Title:  "iSER target CPU vs NUMA policy",
		Tables: []metrics.Table{tb},
		Notes: []string{
			fmt.Sprintf("paper: default writes ≈3× tuned CPU; measured average: %.2f×", avg),
		},
	}
}
