package experiments

import "testing"

func TestObjectGatewayShape(t *testing.T) {
	if testing.Short() {
		t.Skip("S8 sweeps a 1024-object per-object cell")
	}
	r, err := Run("S8")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(r.Tables))
	}
	// Bulk baseline + 4 coalescing cells; 2 cluster cells.
	if len(r.Tables[0].Rows) != 5 || len(r.Tables[1].Rows) != 2 {
		t.Fatalf("row counts %d/%d, want 5/2", len(r.Tables[0].Rows), len(r.Tables[1].Rows))
	}
	// The ≥5× coalescing gate, the CPU gap, the exactly-once audit and the
	// bit-identical replay are asserted inside the experiment (it panics on
	// violation); here we check the published shape.
	if got := r.Tables[0].Rows[1][1]; got != "1024" {
		t.Fatalf("per-object cell submitted %s windows, want 1024", got)
	}
	if len(r.Notes) == 0 {
		t.Fatal("no notes")
	}
}
