package experiments

import (
	"fmt"
	"math"

	"e2edt/internal/chart"
	"e2edt/internal/metrics"
	"e2edt/internal/pipe"
	"e2edt/internal/rftp"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func init() {
	register("F13", WANBandwidth)
	register("F14", WANCPU)
}

// wanStreams and wanBlockSizes are the Figure 13/14 sweeps.
var (
	wanStreams    = []int{1, 2, 4, 8}
	wanBlockSizes = []int64{64 * units.KB, 256 * units.KB, units.MB, 4 * units.MB, 16 * units.MB}
)

// wanPoint runs one RFTP configuration over the ANI loop and returns
// (payload bytes/s, sender CPU %, receiver CPU %).
func wanPoint(streams int, blockSize int64) (float64, float64, float64) {
	const window = 20.0
	w := testbed.NewWAN()
	cfg := rftp.DefaultConfig()
	cfg.Streams = streams
	cfg.BlockSize = blockSize
	tr, err := rftp.Start(w.LinkSlice(), w.A, cfg, rftp.DefaultParams(),
		pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		panic(err)
	}
	w.Eng.RunFor(window)
	bw := tr.Transferred() / window
	tr.Stop()
	return bw,
		w.A.HostCPUReport().TotalPercent(window),
		w.B.HostCPUReport().TotalPercent(window)
}

// WANBandwidth regenerates Figure 13: RFTP payload bandwidth over the
// 40 Gbps / 95 ms ANI loop across block sizes and stream counts.
// Paper: small blocks with few streams starve on the ≈475 MB BDP; large
// blocks reach 97% of the raw link rate.
func WANBandwidth() Result {
	tb := metrics.Table{
		Title:   "RFTP over 40G/95ms WAN: payload bandwidth (Fig. 13)",
		Headers: append([]string{"streams"}, blockHeaders()...),
	}
	var series []metrics.Series
	best := 0.0
	for _, streams := range wanStreams {
		s := metrics.Series{Name: fmt.Sprintf("streams=%d-Gbps", streams)}
		cells := []string{fmt.Sprintf("%d", streams)}
		for _, bs := range wanBlockSizes {
			bw, _, _ := wanPoint(streams, bs)
			g := units.ToGbps(bw)
			s.Add(float64(bs), g)
			cells = append(cells, fmt.Sprintf("%.2f", g))
			if g > best {
				best = g
			}
		}
		tb.AddRow(cells...)
		series = append(series, s)
	}
	return Result{
		ID:     "F13",
		Title:  "RFTP WAN bandwidth vs block size and streams",
		Tables: []metrics.Table{tb},
		Series: series,
		Chart:  &chart.Options{XLabel: "block size", YLabel: "Gbps", LogX: true},
		Notes: []string{
			fmt.Sprintf("paper: ≈97%% of 40 Gbps raw at large blocks; measured peak %.1f Gbps (%.0f%%)",
				best, best/40*100),
			"credit window Credits×BlockSize/RTT limits the small-block, few-stream corner",
		},
	}
}

// WANCPU regenerates Figure 14: sender (a) and receiver (b) CPU during the
// WAN sweep. Paper: CPU falls as the block size grows (fewer control
// messages and work-request posts per byte).
func WANCPU() Result {
	snd := metrics.Table{
		Title:   "RFTP WAN sender CPU %% (Fig. 14a)",
		Headers: append([]string{"streams"}, blockHeaders()...),
	}
	rcv := metrics.Table{
		Title:   "RFTP WAN receiver CPU %% (Fig. 14b)",
		Headers: append([]string{"streams"}, blockHeaders()...),
	}
	for _, streams := range wanStreams {
		sc := []string{fmt.Sprintf("%d", streams)}
		rc := []string{fmt.Sprintf("%d", streams)}
		for _, bs := range wanBlockSizes {
			_, sCPU, rCPU := wanPoint(streams, bs)
			sc = append(sc, fmt.Sprintf("%.0f%%", sCPU))
			rc = append(rc, fmt.Sprintf("%.0f%%", rCPU))
		}
		snd.AddRow(sc...)
		rcv.AddRow(rc...)
	}
	return Result{
		ID:     "F14",
		Title:  "RFTP WAN CPU vs block size and streams",
		Tables: []metrics.Table{snd, rcv},
		Notes: []string{
			"per-byte CPU falls with block size (per-block posting and control-message cost amortizes)",
		},
	}
}

func blockHeaders() []string {
	out := make([]string, len(wanBlockSizes))
	for i, bs := range wanBlockSizes {
		out[i] = units.FormatBytes(bs)
	}
	return out
}
