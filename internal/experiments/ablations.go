package experiments

import (
	"fmt"
	"math"

	"e2edt/internal/blockdev"
	"e2edt/internal/chart"
	"e2edt/internal/core"
	"e2edt/internal/host"
	"e2edt/internal/metrics"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/rftp"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func init() {
	register("A3", CreditAblation)
	register("A4", DirectIOAblation)
	register("A5", StorageMediaAblation)
	register("A6", FileSizeAblation)
}

// CreditAblation sweeps RFTP's credit (pipeline) depth on the WAN: with
// too few outstanding blocks a stream cannot cover the 95 ms × 40 Gbps
// bandwidth-delay product, the design choice DESIGN.md §5.3 calls out.
func CreditAblation() Result {
	const window = 20.0
	tb := metrics.Table{
		Title:   "RFTP WAN throughput vs credit depth (4 streams, 4MB blocks)",
		Headers: []string{"credits/stream", "window", "throughput", "utilization"},
	}
	s := metrics.Series{Name: "credits-Gbps"}
	for _, credits := range []int{1, 2, 4, 8, 16, 32, 64} {
		w := testbed.NewWAN()
		cfg := rftp.DefaultConfig()
		cfg.Streams = 4
		cfg.BlockSize = 4 * units.MB
		cfg.CreditsPerStream = credits
		tr, err := rftp.Start(w.LinkSlice(), w.A, cfg, rftp.DefaultParams(),
			pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
		if err != nil {
			panic(err)
		}
		w.Eng.RunFor(window)
		bw := tr.Transferred() / window
		tr.Stop()
		window_ := float64(credits) * float64(cfg.BlockSize)
		tb.AddRow(fmt.Sprintf("%d", credits),
			units.FormatBytes(int64(window_)),
			units.FormatRate(bw),
			fmt.Sprintf("%.0f%%", units.ToGbps(bw)/40*100))
		s.Add(float64(credits), units.ToGbps(bw))
	}
	return Result{
		ID:     "A3",
		Title:  "Pipeline/credit depth ablation (WAN)",
		Tables: []metrics.Table{tb},
		Series: []metrics.Series{s},
		Chart:  &chart.Options{XLabel: "credits per stream", YLabel: "Gbps", LogX: true},
		Notes: []string{
			"the knee sits where 4 streams × credits × 4MB reaches the ≈475MB BDP",
		},
	}
}

// DirectIOAblation isolates GridFTP handicap #3: run RFTP end-to-end with
// and without direct I/O. Buffered mode pays a page-cache copy per byte on
// each front end, dragging CPU up and (when copy threads saturate)
// throughput down.
func DirectIOAblation() Result {
	const window = 20.0
	run := func(direct bool) (float64, float64) {
		sys := mustSystem()
		src := pipe.FileReader{File: sys.A.Dataset, Direct: direct}
		dst := pipe.FileWriter{File: sys.B.Output, Direct: direct}
		tr, err := rftp.Start(sys.TB.FrontLinks, sys.TB.Sender,
			rftp.DefaultConfig(), rftp.DefaultParams(), src, dst, math.Inf(1), nil)
		if err != nil {
			panic(err)
		}
		sys.Engine().RunFor(window)
		bw := tr.Transferred() / window
		cpu := sys.A.Front.HostCPUReport().TotalPercent(window) +
			sys.B.Front.HostCPUReport().TotalPercent(window)
		return bw, cpu
	}
	directBW, directCPU := run(true)
	bufBW, bufCPU := run(false)
	tb := metrics.Table{
		Title:   "RFTP end-to-end: O_DIRECT vs page cache",
		Headers: []string{"mode", "throughput", "front-end CPU (both hosts)"},
	}
	tb.AddRow("direct I/O", units.FormatRate(directBW), fmt.Sprintf("%.0f%%", directCPU))
	tb.AddRow("buffered", units.FormatRate(bufBW), fmt.Sprintf("%.0f%%", bufCPU))
	return Result{
		ID:     "A4",
		Title:  "Direct I/O ablation",
		Tables: []metrics.Table{tb},
		Notes: []string{
			fmt.Sprintf("page cache costs %+.0f%% CPU for %+.0f%% throughput",
				(bufCPU/directCPU-1)*100, (bufBW/directBW-1)*100),
			"the paper lists the cache effect among GridFTP's three handicaps (§4.3)",
		},
	}
}

// StorageMediaAblation swaps the back-end media: the paper's tmpfs LUNs
// versus SSD (healthy and thermally throttled) versus magnetic disk, and
// measures the end-to-end RFTP rate each sustains.
func StorageMediaAblation() Result {
	const window = 20.0
	run := func(name string, factory func(store *host.Host, lun int, policy numa.Policy) blockdev.Device) float64 {
		opt := core.DefaultOptions()
		opt.DeviceFactory = factory
		sys, err := core.NewSystem(opt)
		if err != nil {
			panic(err)
		}
		tr, err := sys.StartRFTP(core.Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
		if err != nil {
			panic(err)
		}
		sys.Engine().RunFor(window)
		return tr.Transferred() / window
	}

	ram := run("tmpfs", nil)
	ssd := run("ssd", func(store *host.Host, lun int, policy numa.Policy) blockdev.Device {
		return blockdev.NewSSD(store.Sim, blockdev.DefaultSSDConfig(
			fmt.Sprintf("%s-ssd%d", store.Name, lun), 50*units.GB))
	})
	hdd := run("hdd", func(store *host.Host, lun int, policy numa.Policy) blockdev.Device {
		return blockdev.NewHDD(store.Sim, blockdev.DefaultHDDConfig(
			fmt.Sprintf("%s-hdd%d", store.Name, lun), 50*units.GB))
	})

	tb := metrics.Table{
		Title:   "End-to-end RFTP rate by back-end medium (6 LUNs/side)",
		Headers: []string{"medium", "throughput", "vs tmpfs"},
	}
	for _, row := range []struct {
		name string
		bw   float64
	}{{"tmpfs (paper)", ram}, {"PCIe SSD", ssd}, {"7200rpm HDD", hdd}} {
		tb.AddRow(row.name, units.FormatRate(row.bw), fmt.Sprintf("%.0f%%", row.bw/ram*100))
	}
	return Result{
		ID:     "A5",
		Title:  "Storage media ablation",
		Tables: []metrics.Table{tb},
		Notes: []string{
			"tmpfs removes the media bottleneck entirely — the paper's justification for a memory back end",
			"SSD LUNs additionally thermal-throttle under sustained load (see A1)",
		},
	}
}

// FileSizeAblation regenerates the dataset-granularity ablation: the same
// 4 GB volume moved as many small files versus few large files over the
// WAN. Per-file control round trips (95 ms each) dominate small files —
// the "lots of small files" problem RFTP's pipelining addresses for block
// streams but not across file boundaries.
func FileSizeAblation() Result {
	tb := metrics.Table{
		Title:   "RFTP WAN dataset transfer: 4 GB in N files (4 streams)",
		Headers: []string{"file size", "files", "throughput", "per-file overhead"},
	}
	s := metrics.Series{Name: "filesize-Gbps"}
	for _, fileSize := range []int64{units.MB, 16 * units.MB, 256 * units.MB, units.GB} {
		n := int(4 * units.GB / fileSize)
		files := make([]rftp.FileSpec, n)
		for i := range files {
			files[i] = rftp.FileSpec{Name: fmt.Sprintf("f%d", i), Size: fileSize}
		}
		w := testbed.NewWAN()
		cfg := rftp.DefaultConfig()
		cfg.Streams = 4
		st, err := rftp.StartSet(w.LinkSlice(), w.A, cfg, rftp.DefaultParams(),
			pipe.Zero{}, pipe.Null{}, files, nil)
		if err != nil {
			panic(err)
		}
		w.Eng.Run()
		bw := st.Bandwidth()
		perFile := float64(w.Eng.Now()) / float64(n) * 4 // seconds per file per stream
		tb.AddRow(units.FormatBytes(fileSize), fmt.Sprintf("%d", n),
			units.FormatRate(bw), fmt.Sprintf("%.0f ms", perFile*1e3))
		s.Add(float64(fileSize), units.ToGbps(bw))
	}
	return Result{
		ID:     "A6",
		Title:  "Dataset file-size ablation (WAN)",
		Tables: []metrics.Table{tb},
		Series: []metrics.Series{s},
		Chart:  &chart.Options{XLabel: "file size", YLabel: "Gbps", LogX: true},
		Notes: []string{
			"each file pays a control round trip (95 ms); small files are latency-bound",
		},
	}
}
