package experiments

import (
	"fmt"
	"math"

	"e2edt/internal/blockdev"
	"e2edt/internal/chart"
	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/iperf"
	"e2edt/internal/metrics"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func init() {
	register("F4", CostBreakdown40G)
	register("T1", TestbedTable)
	register("A1", SSDThermalThrottle)
}

// CostBreakdown40G regenerates Figures 3–4: a five-minute /dev/zero →
// /dev/null transfer at ≈39 Gbps over one RoCE link, RFTP versus TCP
// (iperf), with CPU cost broken into user protocol, kernel protocol, copy,
// interrupt, loading and offloading, summed over both ends.
// Paper: RFTP 122% total (56% user protocol); TCP 642% total (311% sys,
// 213% copy); loading ≈70%; offloading <1%.
func CostBreakdown40G() Result {
	const window = 20.0

	// RFTP over one 40G link.
	pr := testbed.NewMotivatingPair()
	rcfg := rftp.DefaultConfig()
	rcfg.Streams = 1
	tr, err := rftp.Start(pr.Links[:1], pr.A, rcfg, rftp.DefaultParams(),
		pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		panic(err)
	}
	pr.Eng.RunFor(window)
	rftpGbps := units.ToGbps(tr.Transferred() / window)
	tr.Stop()
	rftpCPU := mergeReports(pr.A.HostCPUReport(), pr.B.HostCPUReport())

	// iperf (TCP) over one 40G link; parallel streams reach the same
	// ≈39 Gbps operating point.
	pi := testbed.NewMotivatingPair()
	icfg := iperf.DefaultConfig()
	icfg.StreamsPerLink = 4
	icfg.Bidirectional = false
	icfg.LargeBuffer = false
	icfg.Policy = numa.PolicyBind
	icfg.SourceCyclesPerByte = pipe.DefaultZeroCycles
	icfg.Duration = sim.Duration(window)
	rep := iperf.Run(pi.Links[:1], icfg)
	tcpGbps := units.ToGbps(rep.Aggregate)
	tcpCPU := mergeReports(pi.A.HostCPUReport(), pi.B.HostCPUReport())

	cats := []string{host.CatUser, host.CatSys, host.CatCopy, host.CatIRQ, host.CatLoad, host.CatIO}
	tb := metrics.Table{
		Title:   "Data transfer cost at ≈39-40 Gbps, both ends summed (Fig. 4)",
		Headers: []string{"tool", "rate", "total CPU", "user", "sys", "copy", "irq", "load", "offload"},
	}
	row := func(name string, gbps float64, cpu host.CPUReport) {
		cells := []string{name, fmt.Sprintf("%.1f Gbps", gbps),
			fmt.Sprintf("%.0f%%", cpu.TotalPercent(window))}
		for _, c := range cats {
			cells = append(cells, fmt.Sprintf("%.0f%%", cpu.Percent(c, window)))
		}
		tb.AddRow(cells...)
	}
	row("RFTP (RDMA)", rftpGbps, rftpCPU)
	row("iperf (TCP)", tcpGbps, tcpCPU)

	return Result{
		ID:     "F4",
		Title:  "Cost breakdown of 40 Gbps memory-to-memory transfer",
		Tables: []metrics.Table{tb},
		Notes: []string{
			fmt.Sprintf("paper: RFTP 122%% total / TCP 642%% total; measured: %.0f%% / %.0f%%",
				rftpCPU.TotalPercent(window), tcpCPU.TotalPercent(window)),
			fmt.Sprintf("paper: TCP sys 311%%, copy 213%%; measured: %.0f%%, %.0f%%",
				tcpCPU.Percent(host.CatSys, window), tcpCPU.Percent(host.CatCopy, window)),
			"RDMA copy cost is 0% by construction (zero copy); offload <1% in both cases",
		},
	}
}

func mergeReports(a, b host.CPUReport) host.CPUReport {
	out := host.CPUReport{ByCategory: map[string]float64{}}
	for _, r := range []host.CPUReport{a, b} {
		for k, v := range r.ByCategory {
			out.ByCategory[k] += v
			out.Total += v
		}
	}
	return out
}

// TestbedTable regenerates Table 1: testbed host configurations.
func TestbedTable() Result {
	tb := metrics.Table{
		Title:   "Testbed configuration (Table 1)",
		Headers: []string{"", "Front-end LAN", "Back-end LAN", "Front-end WAN"},
	}
	fe, be, wan := testbed.FrontEndLAN("fe"), testbed.BackEndLAN("be"), testbed.WANHost("wan")
	cpu := func(c numa.Config) string {
		return fmt.Sprintf("%.1f GHz × %d cores", c.CoreHz/1e9, c.Nodes*c.CoresPerNode)
	}
	tb.AddRow("CPU", cpu(fe), cpu(be), cpu(wan))
	tb.AddRow("NUMA nodes", fmt.Sprint(fe.Nodes), fmt.Sprint(be.Nodes), fmt.Sprint(wan.Nodes))
	tb.AddRow("Memory",
		units.FormatBytes(fe.MemBytes), units.FormatBytes(be.MemBytes), units.FormatBytes(wan.MemBytes))
	tb.AddRow("Network", "3× 40G RoCE QDR", "2× 56G IB FDR", "1× 40G RoCE QDR")
	lan, ib, ani := testbed.RoCE40("r"), testbed.IBFDR56("i"), testbed.ANIWAN("a")
	tb.AddRow("MTU", fmt.Sprint(lan.MTU), fmt.Sprint(ib.MTU), fmt.Sprint(ani.MTU))
	tb.AddRow("RTT", fmt.Sprintf("%.3f ms", float64(lan.RTT)*1e3),
		fmt.Sprintf("%.3f ms", float64(ib.RTT)*1e3), fmt.Sprintf("%.0f ms", float64(ani.RTT)*1e3))
	return Result{
		ID:     "T1",
		Title:  "Testbed configuration",
		Tables: []metrics.Table{tb},
	}
}

// SSDThermalThrottle regenerates the §4.1 ablation: sustained writes to the
// PCIe flash device trigger thermal protection and collapse throughput to
// ≈500 MB/s, which is why the paper's back end is tmpfs instead.
func SSDThermalThrottle() Result {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	ssd := blockdev.NewSSD(s, blockdev.DefaultSSDConfig("fusion-io", units.TB))
	f := s.NewFlow("sustained-write", math.Inf(1))
	ssd.AttachIO(f, true, 4*units.MB, 1, "io")
	tr := &fluid.Transfer{Flow: f, Remaining: math.Inf(1)}
	s.Start(tr)
	sampler := metrics.NewSampler(eng, "ssd-write-MBps", 5, func() float64 {
		s.Sync()
		return tr.Transferred()
	})
	eng.RunUntil(200)
	sampler.Stop()
	series := sampler.Series
	for i := range series.Values {
		series.Values[i] = units.ToMBps(series.Values[i])
	}
	healthy := series.Values[0]
	throttled := series.Values[series.Len()-1]

	tb := metrics.Table{
		Title:   "Sustained sequential write on PCIe flash (§4.1)",
		Headers: []string{"phase", "rate"},
	}
	tb.AddRow("healthy", fmt.Sprintf("%.0f MB/s", healthy))
	tb.AddRow("thermally throttled", fmt.Sprintf("%.0f MB/s", throttled))
	return Result{
		ID:     "A1",
		Title:  "SSD thermal throttling ablation",
		Tables: []metrics.Table{tb},
		Series: []metrics.Series{series},
		Chart:  &chart.Options{XLabel: "seconds", YLabel: "MB/s"},
		Notes: []string{
			fmt.Sprintf("paper: ≈500 MB/s under throttling after ~100 GB; measured: %.0f MB/s (throttled=%v)",
				throttled, ssd.Throttled()),
		},
	}
}

var _ = fabric.Config{}
