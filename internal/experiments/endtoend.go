package experiments

import (
	"fmt"
	"math"

	"e2edt/internal/chart"
	"e2edt/internal/core"
	"e2edt/internal/gridftp"
	"e2edt/internal/host"
	"e2edt/internal/iscsi"
	"e2edt/internal/metrics"
	"e2edt/internal/rftp"
	"e2edt/internal/units"
)

func init() {
	register("F9", EndToEndThroughput)
	register("F10", EndToEndCPU)
	register("F11", BiDirectionalThroughput)
	register("F12", BiDirectionalCPU)
	register("A2", FioCeiling)
}

func mustSystem() *core.System {
	sys, err := core.NewSystem(core.DefaultOptions())
	if err != nil {
		panic(err)
	}
	return sys
}

// EndToEndThroughput regenerates Figure 9: RFTP vs GridFTP end-to-end
// throughput sampled over the paper's 25-minute window.
// Paper: ceiling 94.8 Gbps (fio write path); RFTP 91 Gbps (96%); GridFTP
// 29 Gbps (30%).
func EndToEndThroughput() Result {
	const duration = 1500.0 // 25 minutes
	const sample = 30.0

	runTool := func(name string, start func(sys *core.System) func() float64) metrics.Series {
		sys := mustSystem()
		counter := start(sys)
		s := metrics.NewSampler(sys.Engine(), name, sample, counter)
		sys.Engine().RunFor(duration)
		s.Stop()
		for i := range s.Series.Values {
			s.Series.Values[i] = units.ToGbps(s.Series.Values[i])
		}
		return s.Series
	}

	rftpSeries := runTool("RFTP-Gbps", func(sys *core.System) func() float64 {
		tr, err := sys.StartRFTP(core.Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
		if err != nil {
			panic(err)
		}
		return func() float64 { return tr.Transferred() }
	})
	gridSeries := runTool("GridFTP-Gbps", func(sys *core.System) func() float64 {
		tr, err := sys.StartGridFTP(core.Forward, gridftp.DefaultConfig(), math.Inf(1), nil)
		if err != nil {
			panic(err)
		}
		return func() float64 { return tr.Transferred() }
	})

	sysC := mustSystem()
	ceiling, err := sysC.MeasureCeiling(sysC.B, iscsi.OpWrite, 5)
	if err != nil {
		panic(err)
	}

	tb := metrics.Table{
		Title:   "End-to-end throughput over 25 minutes (Fig. 9)",
		Headers: []string{"tool", "steady throughput", "share of ceiling"},
	}
	tb.AddRow("fio write ceiling", units.FormatRate(ceiling), "100%")
	tb.AddRow("RFTP", units.FormatRate(units.FromGbps(rftpSeries.TailMean(0.9))),
		fmt.Sprintf("%.0f%%", units.FromGbps(rftpSeries.TailMean(0.9))/ceiling*100))
	tb.AddRow("GridFTP", units.FormatRate(units.FromGbps(gridSeries.TailMean(0.9))),
		fmt.Sprintf("%.0f%%", units.FromGbps(gridSeries.TailMean(0.9))/ceiling*100))
	return Result{
		ID:     "F9",
		Title:  "End-to-end data transfer throughput",
		Tables: []metrics.Table{tb},
		Series: []metrics.Series{rftpSeries, gridSeries},
		Chart:  &chart.Options{XLabel: "seconds", YLabel: "Gbps", YMin: 1e-9, YMax: 120},
		Notes: []string{
			fmt.Sprintf("paper: ceiling 94.8, RFTP 91 (96%%), GridFTP 29 (30%%); measured: %.1f, %.1f, %.1f Gbps",
				units.ToGbps(ceiling), rftpSeries.TailMean(0.9), gridSeries.TailMean(0.9)),
		},
	}
}

// cpuBreakdownRow renders one host's CPU report as user/sys/copy/io rows.
func cpuBreakdownRow(tb *metrics.Table, label string, rep host.CPUReport, window float64) {
	tb.AddRow(label,
		fmt.Sprintf("%.0f%%", rep.TotalPercent(window)),
		fmt.Sprintf("%.0f%%", rep.Percent(host.CatUser, window)),
		fmt.Sprintf("%.0f%%", rep.Percent(host.CatSys, window)),
		fmt.Sprintf("%.0f%%", rep.Percent(host.CatCopy, window)),
		fmt.Sprintf("%.0f%%", rep.Percent(host.CatIO, window)+rep.Percent("journal", window)),
	)
}

// EndToEndCPU regenerates Figure 10: front-end CPU breakdown for RFTP and
// GridFTP during the unidirectional end-to-end run.
// Paper: GridFTP shows high "sys" (TCP stack) CPU; RFTP stays low.
func EndToEndCPU() Result {
	const window = 60.0
	tb := metrics.Table{
		Title:   "Front-end CPU during end-to-end transfer (Fig. 10)",
		Headers: []string{"host", "total", "user", "sys", "copy", "io"},
	}

	sysR := mustSystem()
	trR, _ := sysR.StartRFTP(core.Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	sysR.Engine().RunFor(window)
	rGbps := units.ToGbps(trR.Transferred() / window)
	cpuBreakdownRow(&tb, "RFTP sender", sysR.A.Front.HostCPUReport(), window)
	cpuBreakdownRow(&tb, "RFTP receiver", sysR.B.Front.HostCPUReport(), window)

	sysG := mustSystem()
	trG, _ := sysG.StartGridFTP(core.Forward, gridftp.DefaultConfig(), math.Inf(1), nil)
	sysG.Engine().RunFor(window)
	gGbps := units.ToGbps(trG.Transferred() / window)
	cpuBreakdownRow(&tb, "GridFTP sender", sysG.A.Front.HostCPUReport(), window)
	cpuBreakdownRow(&tb, "GridFTP receiver", sysG.B.Front.HostCPUReport(), window)

	return Result{
		ID:     "F10",
		Title:  "CPU utilization breakdown, RFTP vs GridFTP",
		Tables: []metrics.Table{tb},
		Notes: []string{
			fmt.Sprintf("at RFTP %.1f Gbps vs GridFTP %.1f Gbps", rGbps, gGbps),
			"paper: GridFTP's sys CPU dominates (TCP stack); RFTP total stays low",
		},
	}
}

// BiDirectionalThroughput regenerates Figure 11: simultaneous transfers in
// both directions over the paper's 50-minute window.
// Paper: RFTP gains ≈83% over unidirectional (17% short of doubling);
// GridFTP gains only ≈33%.
func BiDirectionalThroughput() Result {
	const duration = 3000.0 // 50 minutes
	const sample = 60.0

	type tool struct {
		name string
		uni  func(sys *core.System) func() float64
		bidi func(sys *core.System) func() float64
	}
	mkRFTP := func(dirs ...core.Direction) func(sys *core.System) func() float64 {
		return func(sys *core.System) func() float64 {
			var trs []*rftp.Transfer
			for _, d := range dirs {
				tr, err := sys.StartRFTP(d, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
				if err != nil {
					panic(err)
				}
				trs = append(trs, tr)
			}
			return func() float64 {
				sum := 0.0
				for _, tr := range trs {
					sum += tr.Transferred()
				}
				return sum
			}
		}
	}
	mkGrid := func(dirs ...core.Direction) func(sys *core.System) func() float64 {
		return func(sys *core.System) func() float64 {
			var trs []*gridftp.Transfer
			for _, d := range dirs {
				tr, err := sys.StartGridFTP(d, gridftp.DefaultConfig(), math.Inf(1), nil)
				if err != nil {
					panic(err)
				}
				trs = append(trs, tr)
			}
			return func() float64 {
				sum := 0.0
				for _, tr := range trs {
					sum += tr.Transferred()
				}
				return sum
			}
		}
	}
	tools := []tool{
		{"RFTP", mkRFTP(core.Forward), mkRFTP(core.Forward, core.Reverse)},
		{"GridFTP", mkGrid(core.Forward), mkGrid(core.Forward, core.Reverse)},
	}

	tb := metrics.Table{
		Title:   "Bi-directional end-to-end throughput (Fig. 11)",
		Headers: []string{"tool", "unidirectional", "bi-directional", "gain"},
	}
	var series []metrics.Series
	var notes []string
	for _, tl := range tools {
		run := func(label string, start func(sys *core.System) func() float64) float64 {
			sys := mustSystem()
			counter := start(sys)
			s := metrics.NewSampler(sys.Engine(), label, sample, counter)
			sys.Engine().RunFor(duration)
			s.Stop()
			for i := range s.Series.Values {
				s.Series.Values[i] = units.ToGbps(s.Series.Values[i])
			}
			series = append(series, s.Series)
			return units.FromGbps(s.Series.TailMean(0.9))
		}
		uni := run(tl.name+"-uni-Gbps", tl.uni)
		bidi := run(tl.name+"-bidi-Gbps", tl.bidi)
		gain := (bidi/uni - 1) * 100
		tb.AddRow(tl.name, units.FormatRate(uni), units.FormatRate(bidi),
			fmt.Sprintf("%+.0f%%", gain))
		notes = append(notes, fmt.Sprintf("%s bidirectional gain measured %+.0f%%", tl.name, gain))
	}
	notes = append(notes, "paper: RFTP +83%, GridFTP +33%")
	return Result{
		ID:     "F11",
		Title:  "Bi-directional end-to-end throughput",
		Tables: []metrics.Table{tb},
		Series: series,
		Chart:  &chart.Options{XLabel: "seconds", YLabel: "Gbps", YMin: 1e-9, YMax: 200},
		Notes:  notes,
	}
}

// BiDirectionalCPU regenerates Figure 12: front-end CPU during the
// bi-directional run. Paper: GridFTP's CPU contention explains its poor
// bi-directional scaling.
func BiDirectionalCPU() Result {
	const window = 60.0
	tb := metrics.Table{
		Title:   "Front-end CPU during bi-directional transfer (Fig. 12)",
		Headers: []string{"host", "total", "user", "sys", "copy", "io"},
	}
	sysR := mustSystem()
	sysR.StartRFTP(core.Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	sysR.StartRFTP(core.Reverse, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	sysR.Engine().RunFor(window)
	cpuBreakdownRow(&tb, "RFTP host A", sysR.A.Front.HostCPUReport(), window)
	cpuBreakdownRow(&tb, "RFTP host B", sysR.B.Front.HostCPUReport(), window)

	sysG := mustSystem()
	sysG.StartGridFTP(core.Forward, gridftp.DefaultConfig(), math.Inf(1), nil)
	sysG.StartGridFTP(core.Reverse, gridftp.DefaultConfig(), math.Inf(1), nil)
	sysG.Engine().RunFor(window)
	cpuBreakdownRow(&tb, "GridFTP host A", sysG.A.Front.HostCPUReport(), window)
	cpuBreakdownRow(&tb, "GridFTP host B", sysG.B.Front.HostCPUReport(), window)

	return Result{
		ID:     "F12",
		Title:  "CPU utilization breakdown, bi-directional",
		Tables: []metrics.Table{tb},
		Notes: []string{
			"paper: GridFTP CPU roughly doubles while throughput gains only 33%",
		},
	}
}

// FioCeiling regenerates the §4.3 fio probe: the narrowest section of the
// end-to-end path. Paper: the file-write path tops out at 94.8 Gbps, which
// bounds the end-to-end rate.
func FioCeiling() Result {
	sys := mustSystem()
	read, err := sys.MeasureCeiling(sys.A, iscsi.OpRead, 5)
	if err != nil {
		panic(err)
	}
	sys2 := mustSystem()
	write, err := sys2.MeasureCeiling(sys2.B, iscsi.OpWrite, 5)
	if err != nil {
		panic(err)
	}
	tb := metrics.Table{
		Title:   "fio probe of end-to-end path sections (§4.3)",
		Headers: []string{"path section", "bandwidth"},
	}
	tb.AddRow("file read (source SAN)", units.FormatRate(read))
	tb.AddRow("file write (sink SAN)", units.FormatRate(write))
	tb.AddRow("front-end fabric (3×40G payload)", units.FormatRate(3*units.FromGbps(40)*9000/9090))
	return Result{
		ID:     "A2",
		Title:  "End-to-end path ceiling",
		Tables: []metrics.Table{tb},
		Notes: []string{
			fmt.Sprintf("paper: write path narrowest at 94.8 Gbps; measured %.1f Gbps", units.ToGbps(write)),
		},
	}
}
