package experiments

import (
	"fmt"

	"e2edt/internal/host"
	"e2edt/internal/iperf"
	"e2edt/internal/metrics"
	"e2edt/internal/numa"
	"e2edt/internal/stream"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func init() {
	register("E1", MotivatingIperf)
	register("E2", StreamTriad)
}

// MotivatingIperf regenerates the §2.3 motivating experiment: bi-directional
// iperf over 3×40 Gbps RoCE with cache-defeating buffers, default scheduling
// versus NUMA binding. Paper: 83.5 → 91.8 Gbps (+10%), with the
// user↔kernel copy routine at ≈35% of CPU.
func MotivatingIperf() Result {
	run := func(policy numa.Policy) (float64, float64) {
		p := testbed.NewMotivatingPair()
		cfg := iperf.DefaultConfig()
		cfg.Policy = policy
		rep := iperf.Run(p.Links, cfg)
		cpu := p.A.HostCPUReport()
		copyShare := 0.0
		if cpu.Total > 0 {
			copyShare = cpu.ByCategory[host.CatCopy] / cpu.Total
		}
		return rep.Aggregate, copyShare
	}
	defBW, defCopy := run(numa.PolicyDefault)
	bindBW, bindCopy := run(numa.PolicyBind)

	tb := metrics.Table{
		Title:   "iperf bi-directional aggregate over 3×40G RoCE (§2.3)",
		Headers: []string{"scheduling", "aggregate", "copy share of CPU"},
	}
	tb.AddRow("default", units.FormatRate(defBW), fmt.Sprintf("%.0f%%", defCopy*100))
	tb.AddRow("NUMA-tuned", units.FormatRate(bindBW), fmt.Sprintf("%.0f%%", bindCopy*100))

	return Result{
		ID:     "E1",
		Title:  "Motivating experiment: iperf default vs NUMA-tuned",
		Tables: []metrics.Table{tb},
		Notes: []string{
			fmt.Sprintf("paper: 83.5 vs 91.8 Gbps (+10%%); measured: %.1f vs %.1f Gbps (%+.0f%%)",
				units.ToGbps(defBW), units.ToGbps(bindBW), (bindBW/defBW-1)*100),
			fmt.Sprintf("paper: copy routines ≈35%% of CPU; measured: %.0f%%", defCopy*100),
		},
	}
}

// StreamTriad regenerates the STREAM measurement in §2.3: Triad peak
// ≈50 GB/s across the front-end host's two NUMA nodes.
func StreamTriad() Result {
	tb := metrics.Table{
		Title:   "STREAM on the front-end host (§2.3)",
		Headers: []string{"kernel", "threads", "placement", "bandwidth"},
	}
	var triad float64
	for _, k := range []stream.Kernel{stream.Copy, stream.Scale, stream.Add, stream.Triad} {
		for _, policy := range []numa.Policy{numa.PolicyBind, numa.PolicyDefault} {
			h := newFrontEnd()
			cfg := stream.DefaultConfig(h)
			cfg.Kernel = k
			cfg.Policy = policy
			res := stream.Run(h, cfg)
			tb.AddRow(k.String(), fmt.Sprintf("%d", cfg.Threads), policy.String(),
				fmt.Sprintf("%.1f GB/s", units.ToGBps(res.Bandwidth)))
			if k == stream.Triad && policy == numa.PolicyBind {
				triad = res.Bandwidth
			}
		}
	}
	return Result{
		ID:     "E2",
		Title:  "STREAM Triad peak memory bandwidth",
		Tables: []metrics.Table{tb},
		Notes: []string{
			fmt.Sprintf("paper: Triad 50 GB/s (2 nodes); measured: %.1f GB/s", units.ToGBps(triad)),
		},
	}
}

func newFrontEnd() *host.Host {
	p := testbed.NewMotivatingPair()
	return p.A
}
