package experiments

import (
	"fmt"
	"math"
	"reflect"

	"e2edt/internal/chart"
	"e2edt/internal/faults"
	"e2edt/internal/metrics"
	"e2edt/internal/pipe"
	"e2edt/internal/railmgr"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

func init() {
	register("S7", GrayFailure)
}

// grayParams tunes recovery + rail management for the gray sweep: tight
// loss detection, the standard probe policy, and — per mode — the
// peer-comparison scorer and the hedging plane.
func grayParams(detect, hedge bool) rftp.Params {
	p := rftp.DefaultParams()
	p.AckTimeout = 50 * sim.Millisecond
	p.RetryBackoff = 20 * sim.Millisecond
	p.RetryBackoffMax = 200 * sim.Millisecond
	p.MaxStreamRetries = 32
	p.Rails = railmgr.DefaultPolicy()
	if detect {
		p.Rails.Gray = railmgr.DefaultGrayPolicy()
	}
	if hedge {
		p.Hedge = rftp.DefaultHedgePolicy()
	}
	return p
}

// grayConfig is the credit-limited shape: per-stream rate is pinned by the
// window (2×128 KB credits), well under a healthy rail's share, so healthy
// rails hold the headroom that hedges and migrated victims land on.
func grayConfig() rftp.Config {
	return rftp.Config{Streams: 6, BlockSize: 128 * units.KB, CreditsPerStream: 2}
}

// grayOutcome is one run's measurements. Goodput is end-to-end: size over
// completion time, which is what a fixed per-stream slice protocol actually
// delivers — the slowest stream is the transfer.
type grayOutcome struct {
	elapsed   float64
	goodput   float64 // bytes/s, size/elapsed
	detectLat float64 // sag → first suspect verdict, seconds (-1: never)
	hedgeLat  float64 // sag → first hedge launched, seconds (-1: never)
	hedges    int
	wins      int
	waste     float64
	deaths    int
	suspects  int
}

// grayRun drives one sized transfer over the 3×40G pair with a silent
// capacity sag of the given severity on rail 1 at sagAt (severity 0 = no
// fault), asserting the invariants every mode must hold: completion,
// exactly-once delivery, hedge accounting closure, and a binary detector
// that never kills the gray rail.
func grayRun(size float64, sagAt sim.Time, severity float64, detect, hedge bool,
	rec *trace.Recorder) grayOutcome {
	pair := testbed.NewMotivatingPair()
	if rec != nil {
		pair.Eng.SetTracer(rec)
	}
	var doneAt sim.Time
	done := false
	tr, err := rftp.Start(pair.Links, pair.A, grayConfig(), grayParams(detect, hedge),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { done, doneAt = true, now })
	if err != nil {
		panic(err)
	}
	if severity > 0 {
		pl := &faults.Plan{}
		pl.SlowRail(pair.Links[1], sagAt, severity)
		if err := pl.Validate(); err != nil {
			panic(err)
		}
		pl.Apply(pair.Eng)
	}
	pair.Eng.Run()
	if !done || tr.Failed() {
		panic(fmt.Sprintf("S7: transfer did not complete (failed=%v, detect=%v hedge=%v sev=%.2f)",
			tr.Failed(), detect, hedge, severity))
	}
	if d := tr.Transferred(); math.Abs(d-size) > 1 {
		panic(fmt.Sprintf("S7: exactly-once violated: delivered %g of %g bytes", d, size))
	}
	if tr.HedgeWins+tr.HedgeLosses != tr.Hedges {
		panic(fmt.Sprintf("S7: hedge accounting leak: %d wins + %d losses != %d launched",
			tr.HedgeWins, tr.HedgeLosses, tr.Hedges))
	}
	if tr.ActiveHedges() != 0 {
		panic("S7: hedges still racing after completion")
	}
	o := grayOutcome{
		elapsed:   float64(doneAt),
		goodput:   size / float64(doneAt),
		detectLat: -1,
		hedgeLat:  -1,
		hedges:    tr.Hedges,
		wins:      tr.HedgeWins,
		waste:     tr.HedgeWaste,
	}
	if m := tr.Rails(); m != nil {
		o.deaths = m.Deaths
		o.suspects = m.SuspectEntries
		if at, ok := m.FirstSuspectAt(); ok {
			o.detectLat = float64(at - sagAt)
		}
	}
	if at, ok := tr.FirstHedgeAt(); ok {
		o.hedgeLat = float64(at - sagAt)
	}
	if o.deaths != 0 {
		panic(fmt.Sprintf("S7: binary detector killed a gray rail (%d deaths)", o.deaths))
	}
	return o
}

// GrayFailure is the tail-tolerance scenario: one of three rails silently
// sags — no link event, probes keep answering — under a 24 GB transfer
// whose streams own fixed slices, so the sick rail's streams become the
// tail that governs completion. The sweep crosses sag severity with the
// mitigation ladder (none / detection only / detection+hedging) and gates
// on the 70% point: hedged goodput must recover ≥90% of the healthy
// baseline while the no-mitigation ablation collapses below 60%.
func GrayFailure() Result {
	size := 24 * float64(units.GB)
	sagAt := sim.Time(500 * sim.Millisecond)
	severities := []float64{0.5, 0.7, 0.85}

	// Healthy baseline runs with the full plane armed: a healthy cohort
	// must produce no verdicts and no hedges — the false-positive gate.
	base := grayRun(size, sagAt, 0, true, true, nil)
	if base.suspects != 0 || base.hedges != 0 {
		panic(fmt.Sprintf("S7: healthy cohort produced %d suspects, %d hedges",
			base.suspects, base.hedges))
	}

	type mode struct {
		name          string
		detect, hedge bool
	}
	modes := []mode{
		{"none", false, false},
		{"detect", true, false},
		{"detect+hedge", true, true},
	}
	outs := make(map[float64]map[string]grayOutcome)
	for _, sev := range severities {
		outs[sev] = make(map[string]grayOutcome)
		for _, m := range modes {
			outs[sev][m.name] = grayRun(size, sagAt, sev, m.detect, m.hedge, nil)
		}
	}

	// Acceptance gates at the 70%-sag point.
	full, none := outs[0.7]["detect+hedge"], outs[0.7]["none"]
	if full.goodput < 0.90*base.goodput {
		panic(fmt.Sprintf("S7: hedged goodput %.2f GB/s under 70%% sag below 90%% of baseline %.2f GB/s",
			full.goodput/1e9, base.goodput/1e9))
	}
	if none.goodput > 0.60*base.goodput {
		panic(fmt.Sprintf("S7: no-mitigation ablation at %.0f%% of baseline — expected collapse ≤60%%",
			100*none.goodput/base.goodput))
	}
	if full.detectLat <= 0 || full.detectLat > 0.5 {
		panic(fmt.Sprintf("S7: detection latency %.3fs outside (0, 0.5s]", full.detectLat))
	}
	if full.hedgeLat <= 0 || full.hedgeLat > 0.5 {
		panic(fmt.Sprintf("S7: sag-to-mitigation latency %.3fs outside (0, 0.5s]", full.hedgeLat))
	}
	if full.wins == 0 {
		panic("S7: no hedge outran the sagging rail")
	}
	if outs[0.7]["detect"].suspects == 0 {
		panic("S7: detection-only mode never suspected the sagging rail")
	}

	// Determinism: the gated scenario replayed twice must trace identically.
	rec1, rec2 := &trace.Recorder{}, &trace.Recorder{}
	grayRun(size, sagAt, 0.7, true, true, rec1)
	grayRun(size, sagAt, 0.7, true, true, rec2)
	if len(rec1.Events) == 0 || !reflect.DeepEqual(rec1.Events, rec2.Events) {
		panic(fmt.Sprintf("S7: replayed gray scenario diverged (%d vs %d events)",
			len(rec1.Events), len(rec2.Events)))
	}

	tbl := metrics.Table{
		Title: "Gray rail: 24 GB, 6 fixed-slice streams over 3×40G, rail 1 sags silently at t=0.5s",
		Headers: []string{"sag", "mode", "elapsed", "goodput", "vs healthy",
			"detect lat", "hedge lat", "hedges", "wins", "waste"},
	}
	fmtLat := func(v float64) string {
		if v < 0 {
			return "—"
		}
		return fmt.Sprintf("%.0fms", v*1e3)
	}
	tbl.AddRow("0%", "healthy baseline", fmt.Sprintf("%.2fs", base.elapsed),
		units.FormatRate(base.goodput), "100%", "—", "—", "0", "0", "0 B")
	for _, sev := range severities {
		for _, m := range modes {
			o := outs[sev][m.name]
			tbl.AddRow(
				fmt.Sprintf("%.0f%%", sev*100),
				m.name,
				fmt.Sprintf("%.2fs", o.elapsed),
				units.FormatRate(o.goodput),
				fmt.Sprintf("%.0f%%", 100*o.goodput/base.goodput),
				fmtLat(o.detectLat),
				fmtLat(o.hedgeLat),
				fmt.Sprintf("%d", o.hedges),
				fmt.Sprintf("%d", o.wins),
				units.FormatBytes(int64(o.waste)),
			)
		}
	}

	good := metrics.Series{Name: "goodput-vs-healthy-pct-at-70pct-sag"}
	good.Add(0, 100*none.goodput/base.goodput)
	good.Add(1, 100*outs[0.7]["detect"].goodput/base.goodput)
	good.Add(2, 100*full.goodput/base.goodput)

	return Result{
		ID:     "S7",
		Title:  "Gray-failure detection and tail-tolerant transfers",
		Tables: []metrics.Table{tbl},
		Series: []metrics.Series{good},
		Chart:  &chart.Options{XLabel: "mitigation (0=none, 1=detect, 2=detect+hedge)", YLabel: "% of healthy goodput"},
		Notes: []string{
			fmt.Sprintf("under a 70%% silent sag the no-mitigation transfer collapses to %.0f%% of healthy goodput — the sick rail's fixed-slice streams are the tail that governs completion",
				100*none.goodput/base.goodput),
			fmt.Sprintf("detection+hedging recovers %.0f%% of healthy: lagging windows re-issue on trusted rails, first completion wins, victims migrate off the suspect",
				100*full.goodput/base.goodput),
			fmt.Sprintf("detection latency %.0f ms (peer-comparison hysteresis), sag-to-first-hedge %.0f ms (adaptive p99 deadline) — both bounded, neither relies on an absolute threshold",
				full.detectLat*1e3, full.hedgeLat*1e3),
			fmt.Sprintf("hedge waste at the gate point: %s re-sent for %d wins — the price of cutting the tail, accounted and bounded",
				units.FormatBytes(int64(full.waste)), full.wins),
			"the binary death detector never fires on a gray rail in any cell, and the healthy baseline produces zero verdicts and zero hedges",
			"the 70%-sag detect+hedge scenario replayed with the same schedule produces a bit-identical event trace",
		},
	}
}
