package experiments

import (
	"fmt"
	"math"
	"reflect"

	"e2edt/internal/faults"
	"e2edt/internal/fio"
	"e2edt/internal/host"
	"e2edt/internal/iperf"
	"e2edt/internal/iscsi"
	"e2edt/internal/iser"
	"e2edt/internal/metrics"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/placer"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

func init() {
	register("S4", AutoPlacement)
}

// autoMigrationBound is the executor sanity bound: across any S4 scenario
// the online controller must commit far fewer migrations than scans — an
// unbounded count means the hysteresis band is not doing its job.
const autoMigrationBound = 40

// fioAutoPoint runs the F7 read point under the adaptive placer: target
// worker pools, the initiator thread and the per-LUN I/O buffers all start
// spread (PolicyDefault shape) and the engine converges them online.
func fioAutoPoint(op iscsi.Op, blockSize int64) (float64, placer.Stats) {
	r := newBackendRig(numa.PolicyAuto)
	pl := placer.New(r.s, placer.DefaultConfig())
	mv := r.sess.Mover.(*iser.Mover)
	mv.Placer = pl
	for i := 0; i < 6; i++ {
		ws := mv.Target.Workers(i)
		threads := make([]*host.Thread, len(ws))
		bufs := make([]*numa.Buffer, len(ws))
		for j, w := range ws {
			threads[j] = w.Thread
			bufs[j] = w.Bounce
		}
		pl.AddEntity(fmt.Sprintf("tgt-lun%d", i), r.tgt.M, threads, bufs,
			float64(len(ws))*4*float64(units.MB))
	}
	pl.AddEntity("initiator", r.init.M, []*host.Thread{mv.InitThread}, nil, 0)
	const window = 4.0
	mkBuf := func(lun, slot int) *numa.Buffer {
		b := r.init.M.InterleavedBuffer("fio")
		pl.AddEntity(fmt.Sprintf("fio/l%d/%d", lun, slot), r.init.M, nil,
			[]*numa.Buffer{b}, float64(blockSize))
		return b
	}
	res, err := fio.Run(r.eng, r.sess, mkBuf, fio.JobSpec{
		Name: "fio", Op: op, BlockSize: blockSize, IODepth: 4, Duration: window,
	})
	if err != nil {
		panic(err)
	}
	return res[0].Bandwidth(), pl.Stats()
}

// railPlaceOutcome is one rail-kill placement run's measurements.
type railPlaceOutcome struct {
	windowRate float64 // post-kill steady goodput, bytes/s
	placements int
	migrations int
}

// railPlaceRun drives the S3 kill scenario (rail 1 of 3 dies at 0.5s under
// a 24 GB, 6-stream transfer) under the given NUMA policy and measures
// goodput over the post-failover window [w0, w1]. PolicyAuto wires an
// adaptive placer over the pair's shared fluid simulation.
func railPlaceRun(policy numa.Policy, rec *trace.Recorder) railPlaceOutcome {
	size := 24 * float64(units.GB)
	killAt := sim.Time(500 * sim.Millisecond)
	w0, w1 := sim.Time(1.0), sim.Time(1.5)

	pair := testbed.NewMotivatingPair()
	eng := pair.Eng
	if rec != nil {
		eng.SetTracer(rec)
	}
	cfg := rftp.DefaultConfig()
	cfg.Streams = 6
	cfg.Checksum = true
	cfg.Policy = policy
	var pl *placer.Engine
	if policy == numa.PolicyAuto {
		pl = placer.New(pair.A.Sim, placer.DefaultConfig())
		cfg.Placer = pl
	}
	done := false
	tr, err := rftp.Start(pair.Links, pair.A, cfg, railFailoverParams(),
		pipe.Zero{}, pipe.Null{}, size, func(sim.Time) { done = true })
	if err != nil {
		panic(err)
	}
	plan := &faults.Plan{}
	plan.PermanentFail(pair.Links[1], killAt)
	plan.Apply(eng)
	var at0, at1 float64
	eng.At(w0, func() { at0 = tr.Transferred() })
	eng.At(w1, func() { at1 = tr.Transferred() })
	eng.Run()
	if !done || tr.Failed() {
		panic(fmt.Sprintf("S4: %s transfer did not complete (failed=%v)", policy, tr.Failed()))
	}
	if d := tr.Transferred(); math.Abs(d-size) > 1 {
		panic(fmt.Sprintf("S4: exactly-once violated under %s: delivered %g of %g bytes", policy, d, size))
	}
	o := railPlaceOutcome{windowRate: (at1 - at0) / float64(w1-w0)}
	if pl != nil {
		o.placements = pl.Placements()
		o.migrations = pl.Migrations()
	}
	return o
}

// AutoPlacement is the adaptive placement scenario (S4): starting from the
// default spread layout, the placer must rediscover the paper's hand-tuned
// binding online — ≥95% of PolicyBind throughput on the motivating iperf
// run (E1) and the iSER fio point (F7) — and, when a rail dies mid-run,
// re-balance the surviving endpoints to beat every static policy,
// including PolicyBind, whose per-NIC pinning stacks both surviving rails'
// threads on one node. Decisions must replay bit-identically and the
// migration count must stay bounded.
func AutoPlacement() Result {
	// Leg 1 — E1: bi-directional iperf over 3×40G RoCE.
	iperfRun := func(policy numa.Policy) (float64, iperf.Report) {
		p := testbed.NewMotivatingPair()
		cfg := iperf.DefaultConfig()
		cfg.Policy = policy
		rep := iperf.Run(p.Links, cfg)
		return rep.Aggregate, rep
	}
	iperfDef, _ := iperfRun(numa.PolicyDefault)
	iperfBind, _ := iperfRun(numa.PolicyBind)
	iperfAuto, autoRep := iperfRun(numa.PolicyAuto)
	if iperfAuto < 0.95*iperfBind {
		panic(fmt.Sprintf("S4: iperf auto %.2f Gbps below 95%% of bind %.2f Gbps",
			units.ToGbps(iperfAuto), units.ToGbps(iperfBind)))
	}
	if autoRep.Placements == 0 {
		panic("S4: iperf auto run committed no placements")
	}
	if autoRep.Migrations > autoMigrationBound {
		panic(fmt.Sprintf("S4: iperf auto migrations %d exceed bound %d",
			autoRep.Migrations, autoMigrationBound))
	}

	// Leg 2 — F7: iSER fio 4 MB sequential read.
	bs := int64(4 * units.MB)
	fioDef, _ := fioPoint(numa.PolicyDefault, iscsi.OpRead, bs)
	fioBind, _ := fioPoint(numa.PolicyBind, iscsi.OpRead, bs)
	fioAuto, fioStats := fioAutoPoint(iscsi.OpRead, bs)
	if fioAuto < 0.95*fioBind {
		panic(fmt.Sprintf("S4: fio auto %.2f Gbps below 95%% of bind %.2f Gbps",
			units.ToGbps(fioAuto), units.ToGbps(fioBind)))
	}
	if fioStats.Placements == 0 {
		panic("S4: fio auto run committed no placements")
	}
	if fioStats.Migrations > autoMigrationBound {
		panic(fmt.Sprintf("S4: fio auto migrations %d exceed bound %d",
			fioStats.Migrations, autoMigrationBound))
	}

	// Leg 3 — rail kill: static policies pin (or spread) once and live with
	// it; the placer re-balances onto the survivors.
	railStatics := map[string]railPlaceOutcome{
		"default":    railPlaceRun(numa.PolicyDefault, nil),
		"bind":       railPlaceRun(numa.PolicyBind, nil),
		"interleave": railPlaceRun(numa.PolicyInterleave, nil),
	}
	railAuto := railPlaceRun(numa.PolicyAuto, nil)
	for name, o := range railStatics {
		if railAuto.windowRate <= o.windowRate {
			panic(fmt.Sprintf("S4: post-kill auto %.2f Gbps does not beat %s %.2f Gbps",
				units.ToGbps(railAuto.windowRate), name, units.ToGbps(o.windowRate)))
		}
	}
	if railAuto.placements == 0 {
		panic("S4: rail-kill auto run committed no placements")
	}
	if railAuto.migrations > autoMigrationBound {
		panic(fmt.Sprintf("S4: rail-kill auto migrations %d exceed bound %d",
			railAuto.migrations, autoMigrationBound))
	}

	// Determinism: the auto rail-kill scenario replayed must produce a
	// bit-identical event trace — every placement and migration decision
	// lands at the same virtual time with the same outcome.
	rec1, rec2 := &trace.Recorder{}, &trace.Recorder{}
	railPlaceRun(numa.PolicyAuto, rec1)
	railPlaceRun(numa.PolicyAuto, rec2)
	if len(rec1.Events) == 0 || !reflect.DeepEqual(rec1.Events, rec2.Events) {
		panic(fmt.Sprintf("S4: replayed auto scenario diverged (%d vs %d events)",
			len(rec1.Events), len(rec2.Events)))
	}

	conv := metrics.Table{
		Title:   "Adaptive placement: converged throughput vs static policies",
		Headers: []string{"workload", "default", "bind", "auto", "auto/bind"},
	}
	conv.AddRow("E1 iperf 3×40G", units.FormatRate(iperfDef), units.FormatRate(iperfBind),
		units.FormatRate(iperfAuto), fmt.Sprintf("%.3f", iperfAuto/iperfBind))
	conv.AddRow("F7 fio read 4MB", units.FormatRate(fioDef), units.FormatRate(fioBind),
		units.FormatRate(fioAuto), fmt.Sprintf("%.3f", fioAuto/fioBind))

	rail := metrics.Table{
		Title:   "Rail kill at 0.5s: post-failover goodput [1.0s, 1.5s] by policy",
		Headers: []string{"policy", "goodput", "placements", "migrations"},
	}
	for _, name := range []string{"default", "interleave", "bind"} {
		o := railStatics[name]
		rail.AddRow(name, units.FormatRate(o.windowRate), "-", "-")
	}
	rail.AddRow("auto", units.FormatRate(railAuto.windowRate),
		fmt.Sprintf("%d", railAuto.placements), fmt.Sprintf("%d", railAuto.migrations))

	return Result{
		ID:     "S4",
		Title:  "Adaptive NUMA placement: online convergence and post-failure re-balancing",
		Tables: []metrics.Table{conv, rail},
		Notes: []string{
			fmt.Sprintf("iperf: auto converges to %.1f%% of hand-tuned bind (%.1f vs %.1f Gbps) from the default-spread start",
				100*iperfAuto/iperfBind, units.ToGbps(iperfAuto), units.ToGbps(iperfBind)),
			fmt.Sprintf("fio: auto converges to %.1f%% of bind (%.1f vs %.1f Gbps)",
				100*fioAuto/fioBind, units.ToGbps(fioAuto), units.ToGbps(fioBind)),
			fmt.Sprintf("rail kill: auto re-balances to %.1f Gbps, beating bind (%.1f), interleave (%.1f) and default (%.1f) — static pinning stacks both surviving rails on one node",
				units.ToGbps(railAuto.windowRate), units.ToGbps(railStatics["bind"].windowRate),
				units.ToGbps(railStatics["interleave"].windowRate), units.ToGbps(railStatics["default"].windowRate)),
			fmt.Sprintf("auto rail-kill run: %d placements, %d migrations (bound %d); same-schedule replay is bit-identical",
				railAuto.placements, railAuto.migrations, autoMigrationBound),
		},
	}
}
