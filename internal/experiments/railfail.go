package experiments

import (
	"fmt"
	"math"
	"reflect"

	"e2edt/internal/chart"
	"e2edt/internal/faults"
	"e2edt/internal/metrics"
	"e2edt/internal/pipe"
	"e2edt/internal/railmgr"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

func init() {
	register("S3", RailFailover)
}

// railFailoverParams tunes recovery + rail management for the scenario:
// loss detection within 50 ms and the default probe/failback policy.
func railFailoverParams() rftp.Params {
	p := rftp.DefaultParams()
	p.AckTimeout = 50 * sim.Millisecond
	p.RetryBackoff = 20 * sim.Millisecond
	p.RetryBackoffMax = 200 * sim.Millisecond
	p.MaxStreamRetries = 32
	p.Rails = railmgr.DefaultPolicy()
	return p
}

// railOutcome is one failover run's measurements.
type railOutcome struct {
	elapsed    float64
	windowRate float64 // goodput over the steady-state window, bytes/s
	migrations int
	failbacks  int
	maxMigLat  float64 // seconds
	readmits   int
	deaths     int
}

// railRun drives one 24 GB transfer over the 3×40G pair under a fault
// plan, measuring steady-state goodput over [w0, w1] (both rails settled),
// and asserts the robustness invariants: completion, exactly-once
// delivery, and bounded migration latency.
func railRun(size float64, w0, w1 sim.Time, rec *trace.Recorder,
	plan func(p *testbed.MotivatingPair) *faults.Plan) railOutcome {
	pair := testbed.NewMotivatingPair()
	eng := pair.Eng
	if rec != nil {
		eng.SetTracer(rec)
	}
	var doneAt sim.Time
	done := false
	cfg := rftp.DefaultConfig()
	cfg.Streams = 6
	tr, err := rftp.Start(pair.Links, pair.A, cfg, railFailoverParams(),
		pipe.Zero{}, pipe.Null{}, size, func(now sim.Time) { done, doneAt = true, now })
	if err != nil {
		panic(err)
	}
	if plan != nil {
		plan(pair).Apply(eng)
	}
	var at0, at1 float64
	eng.At(w0, func() { at0 = tr.Transferred() })
	eng.At(w1, func() { at1 = tr.Transferred() })
	eng.Run()
	if !done || tr.Failed() {
		panic(fmt.Sprintf("S3: transfer did not complete (failed=%v)", tr.Failed()))
	}
	if d := tr.Transferred(); math.Abs(d-size) > 1 {
		panic(fmt.Sprintf("S3: exactly-once violated: delivered %g of %g bytes", d, size))
	}
	o := railOutcome{
		elapsed:    float64(doneAt),
		windowRate: (at1 - at0) / float64(w1-w0),
		migrations: tr.Migrations,
		failbacks:  tr.Failbacks,
	}
	for _, l := range tr.MigrationLatencies() {
		if float64(l) > o.maxMigLat {
			o.maxMigLat = float64(l)
		}
	}
	// Migration must be bounded by loss detection plus the re-establish
	// round trip — far under the retry ladder's worst case.
	if bound := float64(railFailoverParams().AckTimeout) + 0.05; o.maxMigLat > bound {
		panic(fmt.Sprintf("S3: migration latency %.3fs exceeds bound %.3fs", o.maxMigLat, bound))
	}
	if m := tr.Rails(); m != nil {
		o.readmits = m.Readmissions
		o.deaths = m.Deaths
	}
	return o
}

// corruptionRun drives one transfer with n seeded silent corruptions and
// reports what the integrity plane saw.
func corruptionRun(size float64, checksum bool, n int) (detected, violations int, retx, delivered float64, completed bool) {
	pair := testbed.NewMotivatingPair()
	cfg := rftp.DefaultConfig()
	cfg.Checksum = checksum
	done := false
	tr, err := rftp.Start(pair.Links, pair.A, cfg, railFailoverParams(),
		pipe.Zero{}, pipe.Null{}, size, func(sim.Time) { done = true })
	if err != nil {
		panic(err)
	}
	pl := &faults.Plan{}
	for i := 0; i < n; i++ {
		pl.Corrupt(pair.Links[i%len(pair.Links)], sim.Time(0.2+0.15*float64(i)))
	}
	pl.Apply(pair.Eng)
	pair.Eng.Run()
	return tr.CorruptionsDetected, tr.IntegrityViolations, tr.Retransmitted, tr.Transferred(), done
}

// RailFailover is the multipath robustness scenario: one of three rails
// dies under a 24 GB transfer. Streams must migrate to the survivors and
// goodput must settle at two thirds of the three-rail rate; when the rail
// is repaired, the re-probed rail takes its streams back. A corruption
// sweep then exercises the end-to-end integrity plane: with Checksum on
// every injected silent bit flip is caught and re-transferred; with it
// off the corrupt bytes are delivered and only the violation counter
// knows — quantifying exactly what the checksum's CPU cost buys.
func RailFailover() Result {
	size := 24 * float64(units.GB)
	killAt := sim.Time(500 * sim.Millisecond)
	// Steady-state window: after migration has settled, before completion.
	w0, w1 := sim.Time(1.0), sim.Time(1.5)

	base := railRun(size, w0, w1, nil, nil)
	kill := railRun(size, w0, w1, nil, func(p *testbed.MotivatingPair) *faults.Plan {
		pl := &faults.Plan{}
		pl.PermanentFail(p.Links[1], killAt)
		return pl
	})
	heal := railRun(size, w0, w1, nil, func(p *testbed.MotivatingPair) *faults.Plan {
		pl := &faults.Plan{}
		pl.FailWindow(p.Links[1], killAt, sim.Duration(1.5*float64(sim.Second)))
		return pl
	})

	// Acceptance: post-migration goodput within 10% of 2/3 of the
	// three-rail steady rate.
	want := base.windowRate * 2 / 3
	if math.Abs(kill.windowRate-want)/want > 0.10 {
		panic(fmt.Sprintf("S3: post-failover goodput %.2f GB/s outside 10%% of %.2f GB/s",
			kill.windowRate/1e9, want/1e9))
	}
	if kill.migrations < 2 {
		panic(fmt.Sprintf("S3: expected the dead rail's 2 streams to migrate, got %d", kill.migrations))
	}
	if heal.failbacks < 1 || heal.readmits < 1 {
		panic(fmt.Sprintf("S3: repair produced no failback (failbacks=%d, readmissions=%d)",
			heal.failbacks, heal.readmits))
	}

	// Determinism: the kill scenario replayed must produce a bit-identical
	// event trace.
	mkPlan := func(p *testbed.MotivatingPair) *faults.Plan {
		pl := &faults.Plan{}
		pl.PermanentFail(p.Links[1], killAt)
		return pl
	}
	rec1, rec2 := &trace.Recorder{}, &trace.Recorder{}
	railRun(size, w0, w1, rec1, mkPlan)
	railRun(size, w0, w1, rec2, mkPlan)
	if len(rec1.Events) == 0 || !reflect.DeepEqual(rec1.Events, rec2.Events) {
		panic(fmt.Sprintf("S3: replayed kill scenario diverged (%d vs %d events)",
			len(rec1.Events), len(rec2.Events)))
	}

	failover := metrics.Table{
		Title: "Rail failover: 24 GB, 6 streams over 3×40G, rail 1 killed at t=0.5s",
		Headers: []string{"scenario", "elapsed", "steady goodput", "migrations", "failbacks",
			"max mig lat", "rail deaths", "readmissions", "exactly-once"},
	}
	for _, row := range []struct {
		name string
		o    railOutcome
	}{
		{"baseline (no faults)", base},
		{"kill (permanent)", kill},
		{"kill + repair at 2.0s", heal},
	} {
		failover.AddRow(
			row.name,
			fmt.Sprintf("%.2fs", row.o.elapsed),
			units.FormatRate(row.o.windowRate),
			fmt.Sprintf("%d", row.o.migrations),
			fmt.Sprintf("%d", row.o.failbacks),
			fmt.Sprintf("%.1fms", row.o.maxMigLat*1e3),
			fmt.Sprintf("%d", row.o.deaths),
			fmt.Sprintf("%d", row.o.readmits),
			"yes",
		)
	}

	corrSize := 12 * float64(units.GB)
	const nCorrupt = 3
	integrity := metrics.Table{
		Title: "Integrity plane: 3 seeded silent bit flips under a 12 GB transfer",
		Headers: []string{"checksum", "injected", "detected", "violations",
			"retransmitted", "delivered", "verdict"},
	}
	var undetected int
	for _, on := range []bool{true, false} {
		det, vio, retx, delivered, completed := corruptionRun(corrSize, on, nCorrupt)
		if !completed {
			panic("S3: corruption run did not complete")
		}
		verdict := "all flips caught and re-transferred"
		if on {
			if det != nCorrupt || vio != 0 || retx <= 0 {
				panic(fmt.Sprintf("S3: checksum on: detected=%d violations=%d retx=%g", det, vio, retx))
			}
		} else {
			if det != 0 || vio < 1 {
				panic(fmt.Sprintf("S3: checksum off: detected=%d violations=%d", det, vio))
			}
			undetected = vio
			verdict = "CORRUPT BYTES DELIVERED undetected"
		}
		integrity.AddRow(
			fmt.Sprintf("%v", on),
			fmt.Sprintf("%d", nCorrupt),
			fmt.Sprintf("%d", det),
			fmt.Sprintf("%d", vio),
			units.FormatBytes(int64(retx)),
			units.FormatBytes(int64(delivered)),
			verdict,
		)
	}

	good := metrics.Series{Name: "steady-goodput-Gbps"}
	good.Add(3, units.ToGbps(base.windowRate))
	good.Add(2, units.ToGbps(kill.windowRate))

	return Result{
		ID:     "S3",
		Title:  "Multi-rail failover: stream migration, failback and the integrity plane",
		Tables: []metrics.Table{failover, integrity},
		Series: []metrics.Series{good},
		Chart:  &chart.Options{XLabel: "surviving rails", YLabel: "Gbps"},
		Notes: []string{
			fmt.Sprintf("killing 1 of 3 rails settles goodput at %.1f Gbps vs %.1f Gbps baseline — within 10%% of the ideal 2/3",
				units.ToGbps(kill.windowRate), units.ToGbps(base.windowRate)),
			fmt.Sprintf("worst migration latency %.1f ms: loss detection (AckTimeout) dominates; the re-establish round trip is sub-millisecond on the LAN",
				kill.maxMigLat*1e3),
			"repairing the rail re-admits it only after consecutive end-to-end probe echoes; streams then fail back with zero double-delivery",
			"the kill scenario replayed with the same schedule produces a bit-identical event trace",
			fmt.Sprintf("with Checksum off, %d corrupt block(s) reached the receiver marked delivered — the violation counter is the only witness, which is the point of the integrity ablation", undetected),
		},
	}
}
