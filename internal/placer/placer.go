// Package placer is an adaptive NUMA placement engine: it discovers at
// runtime the thread/buffer placement the paper's authors found by hand
// (numactl-bound iperf, per-node iSER targets) and maintains it as the load
// shifts (rail death, tenant churn), where no static binding stays optimal.
//
// The engine closes a sensor → scorer → actuator loop on the simulated
// clock:
//
//   - Sensor: fluid.Network.Utilization() snapshots per-resource load
//     (memory-controller saturation, interconnect traffic, core load). A
//     placement-induced bottleneck shows up as a saturated resource while
//     sibling resources idle.
//   - Scorer: candidate layouts are evaluated by what-if solves against the
//     live fluid model. A candidate is applied transiently (threads pinned,
//     buffers re-homed), every tracked flow's cost coefficients are rebuilt
//     exactly the way the owning subsystem built them, the network is
//     re-solved, and the layout is scored by Nash welfare — the sum of log
//     flow rates. Welfare, unlike aggregate rate, is not blind to load
//     imbalance: max-min filling keeps every link full no matter which
//     flows sit where, so two layouts with a 5:1 and a 3:3 split across two
//     rails have identical aggregate rate, but the balanced one has the
//     higher geometric mean — and the lower per-command latency once
//     bounded queue depths are in play. The candidate is then reverted
//     bit-exactly. Because the whole evaluation happens at one virtual
//     instant, transient rates never integrate into transferred bytes:
//     what-if scoring is free of observational side effects.
//   - Actuator: the best candidate is committed only if it clears a gain
//     threshold (hysteresis), the entity is outside its migration cooldown,
//     and — for already-placed entities — a resource is actually saturated.
//     Committing a move that re-homes memory starts a one-shot migration
//     transfer that charges the page-copy traffic (old home read, new home
//     write, coherency invalidations) through the fluid network, so
//     migrations transiently contend with the payload they are trying to
//     help.
//
// Everything is deterministic: entities are scanned in registration order,
// candidate nodes in index order, ties keep the lowest node index, and the
// scan runs on the discrete-event clock. Same seed, same trace — the
// engine's decisions replay bit-identically.
package placer

import (
	"fmt"
	"math"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
)

// Config tunes the control loop.
type Config struct {
	// Cadence is the scan interval.
	Cadence sim.Duration
	// MoveGain is the minimum welfare gain to migrate an already-placed
	// entity, expressed as an equivalent relative rate gain (a move must
	// improve Nash welfare by at least log(1+MoveGain)); it is the
	// flap-prevention hysteresis band.
	// First placements are exempt: the initial-placement solver always
	// commits the argmax layout (a single hill-climb step from the
	// all-spread start is usually *negative* — one pinned thread contends
	// with everyone else's spread load — so a gain gate would deadlock the
	// solver in the spread local optimum).
	MoveGain float64
	// Cooldown is the minimum virtual time between migrations of one
	// entity.
	Cooldown sim.Duration
	// UtilThreshold gates re-migration: an already-placed entity is only
	// reconsidered while some fluid resource runs at or above this share of
	// its capacity (a bottleneck exists). First placements are exempt.
	UtilThreshold float64
	// MaxMovesPerScan bounds migration commits per scan so the executor
	// never storms the machine with simultaneous page migrations. Initial
	// placements are exempt: the whole starting layout lands in one scan.
	MaxMovesPerScan int
}

// DefaultConfig returns the tuning used by experiments.AutoPlacement.
func DefaultConfig() Config {
	return Config{
		Cadence:         20 * sim.Millisecond,
		MoveGain:        0.02,
		Cooldown:        250 * sim.Millisecond,
		UtilThreshold:   0.85,
		MaxMovesPerScan: 2,
	}
}

// Entity is one placeable unit: a set of threads that execute together and
// the buffers they own. The engine pins the threads to cores of one node
// and re-homes the buffers there.
type Entity struct {
	Name    string
	M       *numa.Machine
	Threads []*host.Thread
	Buffers []*numa.Buffer
	// MigrateBytes is the page-copy volume charged when a committed move
	// re-homes the buffers (the hot working set, under lazy migration).
	// Zero models an entity whose buffers are re-allocated rather than
	// copied.
	MigrateBytes float64

	node     *numa.Node // nil until first placement
	lastMove sim.Time
	moved    bool
}

// Node returns the node the entity is currently placed on (nil = unplaced).
func (en *Entity) Node() *numa.Node { return en.node }

// placement is a bit-exact snapshot of an entity's thread pins and buffer
// homes, for what-if revert.
type placement struct {
	cores []*numa.Core
	homes [][]*numa.Node
}

func (en *Entity) snapshot() placement {
	p := placement{cores: make([]*numa.Core, len(en.Threads))}
	for i, t := range en.Threads {
		p.cores[i] = t.Core
	}
	p.homes = make([][]*numa.Node, len(en.Buffers))
	for i, b := range en.Buffers {
		p.homes[i] = append([]*numa.Node(nil), b.Homes...)
	}
	return p
}

func (en *Entity) restore(p placement) {
	for i, t := range en.Threads {
		t.Pin(p.cores[i])
	}
	for i, b := range en.Buffers {
		b.Rehome(p.homes[i]...)
	}
}

// apply pins the entity onto node n and re-homes its buffers there. Each
// thread takes the least-occupied core of n (ties to the lowest index),
// where occupancy counts the pins of every managed entity — a pure
// function of current placement state, so a what-if apply/restore pair
// reverts exactly, and sibling pools fill a node's cores evenly instead of
// stacking on core 0.
func (e *Engine) apply(en *Entity, n *numa.Node) {
	occ := make(map[*numa.Core]int, len(n.Cores))
	for _, other := range e.entities {
		for _, t := range other.Threads {
			if t.Core != nil && t.Core.Node == n {
				occ[t.Core]++
			}
		}
	}
	for _, t := range en.Threads {
		if t.Core != nil && t.Core.Node == n {
			occ[t.Core]-- // this pin is being replaced
		}
		best := n.Cores[0]
		for _, c := range n.Cores[1:] {
			if occ[c] < occ[best] {
				best = c
			}
		}
		t.Pin(best)
		occ[best]++
	}
	for _, b := range en.Buffers {
		b.Rehome(n)
	}
}

// tracked is one flow whose coefficients the engine may rebuild.
type tracked struct {
	flow    *fluid.Flow
	rebuild func(*fluid.Flow)
}

// Stats counts engine activity.
type Stats struct {
	Scans      int
	Evals      int // what-if solves
	Placements int // first placements committed
	Migrations int // re-placements committed
}

// Engine is the adaptive placement controller for one fluid simulation
// (entities may span several hosts and machines sharing that simulation).
type Engine struct {
	Cfg Config
	Sim *fluid.Sim
	Eng *sim.Engine

	entities []*Entity
	flows    []tracked
	index    map[*fluid.Flow]int
	stats    Stats
	scan     *sim.Event
	migSeq   int
}

// New returns an engine over the given fluid simulation. The loop is
// dormant until the first flow is tracked.
func New(s *fluid.Sim, cfg Config) *Engine {
	if cfg.Cadence <= 0 {
		panic("placer: non-positive cadence")
	}
	if cfg.MaxMovesPerScan <= 0 {
		cfg.MaxMovesPerScan = 1
	}
	return &Engine{
		Cfg:   cfg,
		Sim:   s,
		Eng:   s.Engine,
		index: make(map[*fluid.Flow]int),
	}
}

// AddEntity registers a placeable unit. Entities are scanned in
// registration order.
func (e *Engine) AddEntity(name string, m *numa.Machine, threads []*host.Thread, buffers []*numa.Buffer, migrateBytes float64) *Entity {
	if m == nil {
		panic("placer: entity without machine")
	}
	en := &Entity{
		Name:         name,
		M:            m,
		Threads:      threads,
		Buffers:      buffers,
		MigrateBytes: migrateBytes,
		lastMove:     -sim.Time(math.Inf(1)),
	}
	e.entities = append(e.entities, en)
	return en
}

// Track registers a flow whose goodput the engine optimizes. rebuild must
// clear nothing itself: the engine empties f.Uses and calls rebuild to
// re-attach every cost coefficient from the owning subsystem's current
// placement state. rebuild must be a pure function of that state (no
// shared counters), or replays diverge.
func (e *Engine) Track(f *fluid.Flow, rebuild func(*fluid.Flow)) {
	if f == nil || rebuild == nil {
		panic("placer: Track needs a flow and a rebuilder")
	}
	if _, dup := e.index[f]; dup {
		panic(fmt.Sprintf("placer: flow %s tracked twice", f.Name))
	}
	e.index[f] = len(e.flows)
	e.flows = append(e.flows, tracked{f, rebuild})
	e.arm()
}

// Untrack removes a flow (at cancel/completion). Untracked flows keep
// their current coefficients.
func (e *Engine) Untrack(f *fluid.Flow) {
	i, ok := e.index[f]
	if !ok {
		return
	}
	delete(e.index, f)
	e.flows = append(e.flows[:i], e.flows[i+1:]...)
	for j := i; j < len(e.flows); j++ {
		e.index[e.flows[j].flow] = j
	}
}

// Tracked returns the number of flows currently under management.
func (e *Engine) Tracked() int { return len(e.flows) }

// Stats returns activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// Migrations returns committed moves after the first placement.
func (e *Engine) Migrations() int { return e.stats.Migrations }

// Placements returns committed first placements.
func (e *Engine) Placements() int { return e.stats.Placements }

// arm schedules the next scan if the loop is dormant and there is work.
// The timer is one-shot and self-arming: when the last tracked flow
// completes the loop goes dormant, so eng.Run() can drain.
func (e *Engine) arm() {
	if e.scan != nil || len(e.flows) == 0 {
		return
	}
	e.scan = e.Eng.Schedule(e.Cfg.Cadence, e.tick)
}

func (e *Engine) tick() {
	e.scan = nil
	if len(e.flows) == 0 {
		return
	}
	e.runScan()
	e.arm()
}

// rebuildAll re-derives every tracked flow's coefficients from current
// placement state and re-solves from scratch. In-place Uses edits are
// invisible to the incremental solver's dirty scan, so the network must be
// invalidated explicitly.
func (e *Engine) rebuildAll() {
	for _, tr := range e.flows {
		tr.flow.Uses = tr.flow.Uses[:0]
		tr.rebuild(tr.flow)
	}
	e.Sim.Network.Invalidate()
	e.Sim.Network.Resolve()
}

// welfare is the optimization objective: Nash welfare, the sum of log
// rates over tracked flows. Maximal where the hand-tuned binding is
// (every flow's costs local), but — unlike aggregate rate — it also
// distinguishes balanced layouts from skewed ones when max-min filling
// keeps the aggregate constant. Rates are floored at 1 byte/s so a
// stalled flow (dead rail) contributes a large but finite penalty.
func (e *Engine) welfare() float64 {
	total := 0.0
	for _, tr := range e.flows {
		total += math.Log(math.Max(tr.flow.Rate(), 1))
	}
	return total
}

// bottleneck reports whether any fluid resource runs at or above the
// configured utilization threshold (the sensor's re-migration gate).
func (e *Engine) bottleneck() bool {
	for _, u := range e.Sim.Network.Utilization() {
		if u.Capacity > 0 && u.Share >= e.Cfg.UtilThreshold {
			return true
		}
	}
	return false
}

// runScan is one control-loop iteration at one virtual instant: first the
// initial-placement solver lays out any unplaced entities, then the online
// controller considers migrations for placed ones. It ends with the
// network solved for the committed placement and the completion schedule
// refreshed.
func (e *Engine) runScan() {
	e.stats.Scans++
	e.Sim.Sync()
	now := e.Eng.Now()
	// Solve the as-is state so baseline rates and utilization are current.
	e.rebuildAll()

	// Initial-placement solver: greedy sequential joint layout. Each
	// unplaced entity commits its argmax candidate even when the immediate
	// gain is negative — intermediate states contend (one pinned thread on
	// a core still carrying everyone else's spread load), but the argmax
	// still ranks candidates correctly and the contention dissolves as the
	// rest of the layout lands in the same scan.
	for _, en := range e.entities {
		if en.node != nil || (len(en.Threads) == 0 && len(en.Buffers) == 0) {
			continue
		}
		base := e.welfare()
		before := en.snapshot()
		bestGain := math.Inf(-1)
		var bestNode *numa.Node
		for _, cand := range en.M.Nodes {
			e.apply(en, cand)
			e.rebuildAll()
			e.stats.Evals++
			// Strict > keeps the lowest node index on exact ties.
			if gain := e.welfare() - base; gain > bestGain {
				bestGain, bestNode = gain, cand
			}
			en.restore(before)
		}
		e.rebuildAll()
		e.commit(en, bestNode, before, bestGain)
	}

	// Online migration controller: only while a bottleneck exists, only
	// outside the per-entity cooldown, only for gains clearing the
	// hysteresis band, and at most MaxMovesPerScan commits per scan.
	moves := 0
	for _, en := range e.entities {
		if moves >= e.Cfg.MaxMovesPerScan {
			break
		}
		if en.node == nil || (len(en.Threads) == 0 && len(en.Buffers) == 0) {
			continue
		}
		if now-en.lastMove < sim.Time(e.Cfg.Cooldown) {
			continue
		}
		if !e.bottleneck() {
			break
		}
		base := e.welfare()
		before := en.snapshot()
		bestGain := 0.0
		var bestNode *numa.Node
		for _, cand := range en.M.Nodes {
			if cand == en.node {
				continue
			}
			e.apply(en, cand)
			e.rebuildAll()
			e.stats.Evals++
			if gain := e.welfare() - base; gain > bestGain {
				bestGain, bestNode = gain, cand
			}
			en.restore(before)
		}
		// Restore the committed state of the world before deciding.
		e.rebuildAll()
		if bestNode == nil || bestGain < math.Log1p(e.Cfg.MoveGain) {
			continue
		}
		e.commit(en, bestNode, before, bestGain)
		moves++
	}
	// One final consistent solve + completion reschedule for whatever was
	// committed (rebuildAll alone does not move the Sim's event horizon).
	e.Sim.Refresh()
}

// commit actuates a move: applies the placement, rebuilds flows, starts
// the migration cost transfer, and logs the decision into the event trace.
func (e *Engine) commit(en *Entity, n *numa.Node, before placement, gain float64) {
	first := en.node == nil
	e.apply(en, n)
	e.rebuildAll()
	en.node = n
	en.lastMove = e.Eng.Now()
	if first && !en.moved {
		e.stats.Placements++
	} else {
		e.stats.Migrations++
	}
	en.moved = true
	verb := "migrate"
	if first {
		verb = "place"
	}
	e.Eng.Tracef("placer", "%s %s -> node%d welfare%+.4f", verb, en.Name, n.ID, gain)
	e.chargeMigration(en, n, before)
}

// chargeMigration models the page copy for a committed re-homing: the new
// node's cores read the old homes (crossing the interconnect) and write
// the new home (coherency invalidations included via the write charge).
// The one-shot transfer contends with the payload until the pages land.
func (e *Engine) chargeMigration(en *Entity, n *numa.Node, before placement) {
	if en.MigrateBytes <= 0 {
		return
	}
	moved := false
	oldHomes := make(map[*numa.Node]bool)
	for i, b := range en.Buffers {
		same := len(before.homes[i]) == len(b.Homes)
		if same {
			for j, h := range before.homes[i] {
				if b.Homes[j] != h {
					same = false
					break
				}
			}
		}
		if !same {
			moved = true
			for _, h := range before.homes[i] {
				oldHomes[h] = true
			}
		}
	}
	if !moved {
		return
	}
	e.migSeq++
	f := e.Sim.NewFlow(fmt.Sprintf("placer/migrate/%s#%d", en.Name, e.migSeq), math.Inf(1))
	// Iterate machine nodes (stable order), not the map.
	var srcs []*numa.Node
	for _, h := range en.M.Nodes {
		if oldHomes[h] {
			srcs = append(srcs, h)
		}
	}
	src := &numa.Buffer{Name: "placer/old/" + en.Name, Homes: srcs}
	dst := &numa.Buffer{Name: "placer/new/" + en.Name, Homes: []*numa.Node{n}}
	en.M.Charge(f, numa.Access{Buffer: src, From: n, BytesPerUnit: 1, Tag: "placer:copy"})
	en.M.Charge(f, numa.Access{Buffer: dst, From: n, BytesPerUnit: 1, Write: true, Tag: "placer:copy"})
	t := &fluid.Transfer{Flow: f, Remaining: en.MigrateBytes}
	name := en.Name
	t.OnComplete = func(now sim.Time) {
		e.Eng.Tracef("placer", "migrated %s bytes=%g", name, en.MigrateBytes)
	}
	e.Sim.Start(t)
}
