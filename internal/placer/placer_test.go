package placer

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/trace"
	"e2edt/internal/units"
)

func testMachineConfig() numa.Config {
	return numa.Config{
		Name:                "m",
		Nodes:               2,
		CoresPerNode:        2,
		CoreHz:              2e9,
		MemBandwidthPerNode: 25 * units.GBps,
		// Narrow interconnect: the remote path (1.5× QPI per byte for a
		// remote DMA write) binds below the local one, so placement
		// genuinely changes the solved rate instead of tying.
		InterconnectBandwidth: 8 * units.GBps,
		RemoteAccessPenalty:   1.4,
		CoherencyWritePenalty: 3.0,
		MemBytes:              128 * units.GB,
	}
}

// rig is one host with a NIC per node and one unbound worker thread whose
// flow reads a buffer and DMAs it out through a configurable NIC. The NIC
// choice makes one node strictly better, which is what the engine must
// discover.
type rig struct {
	eng *sim.Engine
	s   *fluid.Sim
	m   *numa.Machine
	h   *host.Host
	thr *host.Thread
	buf *numa.Buffer
	dev [2]*host.Device
	f   *fluid.Flow
	// via selects the NIC the rebuild closure charges; the test flips it to
	// model a load shift (rail death, route change).
	via int
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine()}
	r.s = fluid.NewSim(r.eng)
	r.m = numa.MustNew(r.s, testMachineConfig())
	r.h = host.New("h", r.m)
	p := r.h.NewProcess("p", numa.PolicyDefault, nil)
	r.thr = p.NewThread()
	r.buf = r.m.InterleavedBuffer("buf")
	r.dev[0] = r.h.NewDevice("nic0", r.m.Node(0))
	r.dev[1] = r.h.NewDevice("nic1", r.m.Node(1))
	r.f = r.s.NewFlow("payload", math.Inf(1))
	r.rebuild(r.f)
	return r
}

// rebuild is the subsystem-style recharge: CPU kept tiny so the binding
// constraint is the memory/interconnect path, which placement changes.
func (r *rig) rebuild(f *fluid.Flow) {
	r.thr.ChargeCPU(f, 0.1, "proto")
	r.thr.ChargeMemory(f, r.buf, 1, false, "read")
	r.dev[r.via].ChargeDMA(f, r.buf, 1, true, "dma")
}

func (r *rig) engine(cfg Config) *Engine {
	e := New(r.s, cfg)
	e.AddEntity("worker", r.m, []*host.Thread{r.thr}, []*numa.Buffer{r.buf}, 64*float64(units.MB))
	e.Track(r.f, r.rebuild)
	return e
}

func testEngineConfig() Config {
	return Config{
		Cadence:         20 * sim.Millisecond,
		MoveGain:        0.02,
		Cooldown:        100 * sim.Millisecond,
		UtilThreshold:   0.85,
		MaxMovesPerScan: 2,
	}
}

// The initial-placement solver must land the worker local to the NIC its
// flow uses: node 0 keeps DMA and reads on one memory controller, node 1
// pays the interconnect plus the remote-access penalty.
func TestInitialPlacementPicksLocalNode(t *testing.T) {
	r := newRig(t)
	e := r.engine(testEngineConfig())
	en := e.entities[0]
	r.eng.RunUntil(sim.Time(50 * sim.Millisecond))
	if en.Node() != r.m.Node(0) {
		t.Fatalf("placed on %v, want node 0 (local to nic0)", en.Node())
	}
	if r.thr.Core == nil || r.thr.Core.Node != r.m.Node(0) {
		t.Fatalf("thread not pinned to a node-0 core: %v", r.thr.Core)
	}
	if len(r.buf.Homes) != 1 || r.buf.Homes[0] != r.m.Node(0) {
		t.Fatalf("buffer homes = %v, want [node0]", r.buf.Homes)
	}
	st := e.Stats()
	if st.Placements != 1 || st.Migrations != 0 {
		t.Fatalf("stats = %+v, want exactly one placement, no migrations", st)
	}
	if st.Evals < 2 {
		t.Fatalf("evals = %d, want at least one what-if per candidate node", st.Evals)
	}
}

// Steady load must not flap: once placed, a symmetric-or-better layout
// yields no gain above the hysteresis band, so the migration count stays
// zero no matter how long the loop runs.
func TestHysteresisHoldsPlacementSteady(t *testing.T) {
	r := newRig(t)
	e := r.engine(testEngineConfig())
	r.eng.RunUntil(sim.Time(1 * sim.Second))
	st := e.Stats()
	if st.Migrations != 0 {
		t.Fatalf("steady load migrated %d times, want 0", st.Migrations)
	}
	if st.Scans < 10 {
		t.Fatalf("scans = %d, loop did not keep running", st.Scans)
	}
	// What-if evaluation must leave no residue: the committed placement is
	// stable across scans.
	core, homes := r.thr.Core, append([]*numa.Node(nil), r.buf.Homes...)
	r.eng.RunUntil(sim.Time(2 * sim.Second))
	if r.thr.Core != core || !reflect.DeepEqual(r.buf.Homes, homes) {
		t.Fatal("placement drifted between scans without a committed move")
	}
}

// When the load shifts (the flow re-routes through the other node's NIC),
// the controller must migrate — but only after the cooldown elapses, and
// the committed move must charge the page-copy through the fluid network.
func TestMigrationAfterLoadShiftRespectsCooldown(t *testing.T) {
	r := newRig(t)
	rec := &trace.Recorder{}
	r.eng.SetTracer(rec)
	e := r.engine(testEngineConfig())
	en := e.entities[0]
	shiftAt := sim.Time(200 * sim.Millisecond)
	r.eng.At(shiftAt, func() { r.via = 1 })
	r.eng.RunUntil(sim.Time(1 * sim.Second))
	if en.Node() != r.m.Node(1) {
		t.Fatalf("entity on %v after shift, want node 1", en.Node())
	}
	if got := e.Migrations(); got != 1 {
		t.Fatalf("migrations = %d, want exactly 1", got)
	}
	var placeAt, migrateAt, copiedAt sim.Time
	for _, ev := range rec.Events {
		if ev.Subsys != "placer" {
			continue
		}
		switch {
		case strings.HasPrefix(ev.Msg, "place "):
			placeAt = ev.At
		case strings.HasPrefix(ev.Msg, "migrate "):
			migrateAt = ev.At
		case strings.HasPrefix(ev.Msg, "migrated "):
			copiedAt = ev.At
		}
	}
	if migrateAt == 0 || placeAt == 0 {
		t.Fatalf("trace missing place/migrate events: place=%v migrate=%v", placeAt, migrateAt)
	}
	if migrateAt < shiftAt {
		t.Fatalf("migrated at %v, before the load even shifted (%v)", migrateAt, shiftAt)
	}
	if d := migrateAt - placeAt; d < sim.Time(e.Cfg.Cooldown) {
		t.Fatalf("migrated %v after placement, inside the %v cooldown", d, e.Cfg.Cooldown)
	}
	if copiedAt <= migrateAt {
		t.Fatalf("page copy finished at %v, not after the move at %v — cost not charged", copiedAt, migrateAt)
	}
}

// A zero-MigrateBytes entity re-homes for free: no page-copy transfer.
func TestZeroMigrateBytesChargesNoCopy(t *testing.T) {
	r := newRig(t)
	rec := &trace.Recorder{}
	r.eng.SetTracer(rec)
	e := New(r.s, testEngineConfig())
	e.AddEntity("worker", r.m, []*host.Thread{r.thr}, []*numa.Buffer{r.buf}, 0)
	e.Track(r.f, r.rebuild)
	r.eng.At(sim.Time(200*sim.Millisecond), func() { r.via = 1 })
	r.eng.RunUntil(sim.Time(1 * sim.Second))
	if e.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", e.Migrations())
	}
	for _, ev := range rec.Events {
		if ev.Subsys == "placer" && strings.HasPrefix(ev.Msg, "migrated ") {
			t.Fatalf("free re-home charged a page copy: %q", ev.Msg)
		}
	}
}

// The loop is one-shot-armed off tracked flows: once the last flow is
// untracked the engine goes dormant and the event queue drains, so
// Engine.Run terminates.
func TestLoopGoesDormantWhenUntracked(t *testing.T) {
	r := newRig(t)
	e := r.engine(testEngineConfig())
	r.eng.At(sim.Time(100*sim.Millisecond), func() { e.Untrack(r.f) })
	r.eng.Run() // would never return if the scan kept re-arming
	if e.Tracked() != 0 {
		t.Fatalf("tracked = %d, want 0", e.Tracked())
	}
	scans := e.Stats().Scans
	if scans == 0 {
		t.Fatal("loop never ran before going dormant")
	}
}

func TestTrackDuplicatePanics(t *testing.T) {
	r := newRig(t)
	e := r.engine(testEngineConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("tracking the same flow twice must panic")
		}
	}()
	e.Track(r.f, r.rebuild)
}

func TestUntrackUnknownFlowIsNoOp(t *testing.T) {
	r := newRig(t)
	e := r.engine(testEngineConfig())
	e.Untrack(r.s.NewFlow("stranger", 1)) // must not panic or disturb state
	if e.Tracked() != 1 {
		t.Fatalf("tracked = %d, want 1", e.Tracked())
	}
}

// Same scenario, same seed, same trace: the engine's decisions are a pure
// function of the discrete-event schedule.
func TestDecisionsReplayBitIdentically(t *testing.T) {
	run := func() []trace.Record {
		r := newRig(t)
		rec := &trace.Recorder{}
		r.eng.SetTracer(rec)
		r.engine(testEngineConfig())
		r.eng.At(sim.Time(200*sim.Millisecond), func() { r.via = 1 })
		r.eng.RunUntil(sim.Time(1 * sim.Second))
		return rec.Events
	}
	a, b := run(), run()
	if len(a) == 0 || !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged: %d vs %d events", len(a), len(b))
	}
}
