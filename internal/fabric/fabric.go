// Package fabric models network links, NICs and switches connecting hosts.
//
// A link is full-duplex: each direction is an independent fluid resource, so
// bi-directional transfers (Figure 11) contend only for host-side resources,
// not for raw link bandwidth. Every link endpoint is a NIC — a DMA-capable
// PCIe device with a NUMA home node — so traffic into a buffer on the remote
// socket crosses the interconnect exactly as it would on real hardware.
//
// Propagation delay gives wide-area links their bandwidth-delay product: the
// DOE ANI loop in the paper is a 40 Gbps RoCE path with a 95 ms RTT and a
// BDP close to 500 MB, which starves window- or credit-limited protocols.
package fabric

import (
	"fmt"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
)

// Switch is a non-blocking crossbar with an aggregate backplane capacity.
// LAN experiments route through a switch; point-to-point links pass nil.
type Switch struct {
	Name      string
	Backplane *fluid.Resource
}

// NewSwitch registers a switch with the given aggregate capacity (bytes/s).
func NewSwitch(s *fluid.Sim, name string, capacity float64) *Switch {
	return &Switch{Name: name, Backplane: s.AddResource(name+"/backplane", capacity)}
}

// Config describes one physical link.
type Config struct {
	Name string
	// Rate is the line rate in bytes/second per direction.
	Rate float64
	// RTT is the round-trip propagation time.
	RTT sim.Duration
	// MTU and HeaderBytes determine framing efficiency: payload capacity is
	// Rate × MTU/(MTU+HeaderBytes). Zero MTU means no framing overhead.
	MTU         int
	HeaderBytes int
	// Switch, when non-nil, adds the switch backplane to both directions.
	Switch *Switch
}

// Efficiency returns the fraction of the line rate available to payload.
func (c Config) Efficiency() float64 {
	if c.MTU <= 0 || c.HeaderBytes <= 0 {
		return 1
	}
	return float64(c.MTU) / float64(c.MTU+c.HeaderBytes)
}

// EventKind classifies link state transitions reported to watchers.
type EventKind int

const (
	// EventDown: the link failed (capacity dropped to zero).
	EventDown EventKind = iota
	// EventUp: the link was restored.
	EventUp
	// EventDegraded: the link's capacity fraction changed without the link
	// going dark (Degrade).
	EventDegraded
	// EventErrorBurst: a transient error burst crossed the link — capacity
	// is untouched, but reliable-connection state machines riding the link
	// (RDMA QPs) see error completions.
	EventErrorBurst
	// EventCorruption: a silent bit flip passed the link-layer CRC — the
	// block in flight arrives corrupt with no link-level indication.
	// Capacity and reliable-connection state are untouched; only an
	// end-to-end integrity check above the fabric can catch it.
	EventCorruption
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventDown:
		return "down"
	case EventUp:
		return "up"
	case EventDegraded:
		return "degraded"
	case EventCorruption:
		return "corruption"
	default:
		return "error-burst"
	}
}

// Event is a link state transition delivered to Watch callbacks.
type Event struct {
	Kind EventKind
	// Fraction is the link's current capacity fraction (1 = healthy,
	// 0 = dark) after the transition.
	Fraction float64
}

// Link is a full-duplex connection between two NICs.
type Link struct {
	Cfg Config
	// A and B are the endpoint NICs (DMA devices on their hosts).
	A, B *host.Device
	// aToB and bToA are the directional bandwidth resources.
	aToB, bToA *fluid.Resource
	sim        *fluid.Sim
	eng        *sim.Engine
	failed     bool
	// degrade is the healthy-capacity multiplier set by Degrade; 1 means
	// full rate. It survives Fail/Restore cycles so repair ends at the
	// configured (possibly degraded) rate.
	degrade float64
	// graySag is a hidden capacity multiplier (1 = none): a gray failure's
	// rate sag injected below the link layer's visibility. Watchers are not
	// notified and Fraction() does not report it — only end-to-end
	// measurement can see a gray-sagged rail.
	graySag float64
	// latInflate scales the link's propagation delay (1 = nominal): a gray
	// failure's latency inflation. Like graySag it is invisible to watchers.
	latInflate float64
	// lossEvery, when positive, silently drops every lossEvery-th control
	// message: a sub-detection-threshold loss rate. Deterministic (a
	// counter, not a coin), so replays are bit-identical.
	lossEvery int
	sends     int64
	watchers  []func(Event)
	// Drops counts control messages dropped because the link was dark.
	Drops int64
	// SilentDrops counts control messages eaten by injected silent loss.
	SilentDrops int64
}

// Connect creates a link between a NIC on host ha (PCIe slot on node na) and
// a NIC on host hb (node nb).
func Connect(s *fluid.Sim, cfg Config, ha *host.Host, na *numa.Node, hb *host.Host, nb *numa.Node) *Link {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("fabric: link %s needs positive rate", cfg.Name))
	}
	if cfg.RTT < 0 {
		panic(fmt.Sprintf("fabric: link %s has negative RTT", cfg.Name))
	}
	l := &Link{
		Cfg:        cfg,
		A:          ha.NewDevice(cfg.Name+"/nicA", na),
		B:          hb.NewDevice(cfg.Name+"/nicB", nb),
		aToB:       s.AddResource(cfg.Name+"/a->b", cfg.Rate),
		bToA:       s.AddResource(cfg.Name+"/b->a", cfg.Rate),
		sim:        s,
		eng:        s.Engine,
		degrade:    1,
		graySag:    1,
		latInflate: 1,
	}
	return l
}

// Dir returns the directional resource for traffic leaving the given NIC.
// from must be one of the link's endpoints.
func (l *Link) Dir(from *host.Device) *fluid.Resource {
	switch from {
	case l.A:
		return l.aToB
	case l.B:
		return l.bToA
	default:
		panic(fmt.Sprintf("fabric: device %s is not an endpoint of %s", from.Name, l.Cfg.Name))
	}
}

// Peer returns the NIC at the other end.
func (l *Link) Peer(from *host.Device) *host.Device {
	switch from {
	case l.A:
		return l.B
	case l.B:
		return l.A
	default:
		panic(fmt.Sprintf("fabric: device %s is not an endpoint of %s", from.Name, l.Cfg.Name))
	}
}

// ChargeWire attaches the link's directional bandwidth (adjusted for framing
// overhead) and the switch backplane to flow f.
func (l *Link) ChargeWire(f *fluid.Flow, from *host.Device, coeff float64, tag string) {
	wire := coeff / l.Cfg.Efficiency()
	f.UseTagged(l.Dir(from), wire, tag)
	if l.Cfg.Switch != nil {
		f.UseTagged(l.Cfg.Switch.Backplane, wire, tag)
	}
}

// OneWayDelay is half the effective RTT.
func (l *Link) OneWayDelay() sim.Duration { return l.RTT() / 2 }

// RTT returns the round-trip propagation time, scaled by any injected
// latency inflation (InflateLatency).
func (l *Link) RTT() sim.Duration { return sim.Duration(float64(l.Cfg.RTT) * l.latInflate) }

// BDP returns the bandwidth-delay product in bytes.
func (l *Link) BDP() float64 { return l.Cfg.Rate * float64(l.RTT()) }

// MessageDelay returns propagation plus serialization time for a message of
// size bytes (no queueing model: control messages are small).
func (l *Link) MessageDelay(size float64) sim.Duration {
	return l.OneWayDelay() + sim.Duration(size/l.Cfg.Rate)
}

// Send schedules fn after the one-way message delay for size bytes,
// modelling an asynchronous control message (RFTP's control channel, iSCSI
// command PDUs). Control messages are not charged against link bandwidth;
// their footprint is negligible next to bulk data. Messages sent while the
// link is failed are dropped: Send reports false and counts the drop, so
// protocol timeout logic can be tested against explicit drops rather than
// inferred hangs. Degradation does not drop control messages.
func (l *Link) Send(size float64, fn func(now sim.Time)) bool {
	if l.failed {
		l.Drops++
		l.eng.Tracef("fabric", "link %s dropped %g-byte control message", l.Cfg.Name, size)
		return false
	}
	if l.lossEvery > 0 {
		l.sends++
		if l.sends%int64(l.lossEvery) == 0 {
			l.SilentDrops++
			l.eng.Tracef("fabric", "link %s silently lost %g-byte control message", l.Cfg.Name, size)
			return false
		}
	}
	l.eng.Schedule(l.MessageDelay(size), func() { fn(l.eng.Now()) })
	return true
}

// Watch registers fn to receive link state transitions (failures, repairs,
// degradation changes, error bursts). Watchers fire synchronously, in
// registration order, inside the transition call — deterministic under the
// single-threaded simulation.
func (l *Link) Watch(fn func(Event)) {
	if fn == nil {
		panic("fabric: nil link watcher")
	}
	l.watchers = append(l.watchers, fn)
}

// notify delivers a transition to every watcher.
func (l *Link) notify(kind EventKind) {
	ev := Event{Kind: kind, Fraction: l.Fraction()}
	for _, fn := range l.watchers {
		fn(ev)
	}
}

// applyCapacity installs the current effective rate on both directions.
func (l *Link) applyCapacity() {
	rate := 0.0
	if !l.failed {
		rate = l.Cfg.Rate * l.degrade * l.graySag
	}
	l.sim.SetCapacity(l.aToB, rate)
	l.sim.SetCapacity(l.bToA, rate)
}

// Fail injects a link failure: both directions drop to zero capacity and
// every flow crossing the link stalls until Restore. Control messages
// submitted while failed are dropped (Send reports false), as on a dark
// fiber.
func (l *Link) Fail() {
	if l.failed {
		return
	}
	l.failed = true
	l.applyCapacity()
	l.eng.Tracef("fabric", "link %s failed", l.Cfg.Name)
	l.notify(EventDown)
}

// Restore repairs a failed link; stalled flows resume at the next solve.
// The link comes back at its configured rate scaled by any standing
// degradation (Degrade survives a fail/restore cycle, as a half-trained
// optic would).
func (l *Link) Restore() {
	if !l.failed {
		return
	}
	l.failed = false
	l.applyCapacity()
	l.eng.Tracef("fabric", "link %s restored (fraction=%g)", l.Cfg.Name, l.degrade)
	l.notify(EventUp)
}

// Degrade scales both directions' capacity to fraction×Rate without
// declaring the link dark: control messages still flow, flows slow down
// rather than stall, and no reliable-connection error is raised. fraction
// must be in (0, 1]; Degrade(1) clears the degradation. Degrading a failed
// link only updates the standing fraction applied at Restore. Repeated
// calls are idempotent: the link always ends at fraction×Rate.
func (l *Link) Degrade(fraction float64) {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("fabric: Degrade fraction %v outside (0, 1]", fraction))
	}
	if l.degrade == fraction {
		return
	}
	l.degrade = fraction
	l.applyCapacity()
	l.eng.Tracef("fabric", "link %s degraded to %g× rate", l.Cfg.Name, fraction)
	l.notify(EventDegraded)
}

// InjectErrorBurst models a transient fault burst (CRC storms, a flapping
// transceiver) that corrupts in-flight reliable-connection traffic without
// changing capacity: watchers — RDMA QPs riding the link — receive an
// EventErrorBurst and surface error completions; fluid capacity is
// untouched.
func (l *Link) InjectErrorBurst() {
	l.eng.Tracef("fabric", "link %s error burst", l.Cfg.Name)
	l.notify(EventErrorBurst)
}

// InjectCorruption models a silent data corruption: a bit flip that
// slipped past the link-layer CRC (undetected error rates on long optics
// are small but not zero, and at 40 Gbps "small" is hours, not years).
// The link keeps running at full capacity and raises no RDMA error — the
// payload block in flight is simply wrong on arrival. Watchers receive an
// EventCorruption; whether anyone notices is the receiver's integrity
// layer's problem, which is exactly the point.
func (l *Link) InjectCorruption() {
	l.eng.Tracef("fabric", "link %s silent corruption", l.Cfg.Name)
	l.notify(EventCorruption)
}

// GrayDegrade injects a hidden rate sag: both directions drop to
// fraction × (configured rate × any visible degradation) — but unlike
// Degrade, no watcher is notified and Fraction() keeps reporting the
// visible state. This models upstream congestion the link layer cannot
// see (a NUMA-remote staging buffer, a cache-thrashed forwarding engine):
// the rail limps, every absolute health probe still passes, and only a
// peer-comparison detector measuring delivered bytes can tell.
// fraction must be in (0, 1]; GrayDegrade(1) clears the sag.
func (l *Link) GrayDegrade(fraction float64) {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("fabric: GrayDegrade fraction %v outside (0, 1]", fraction))
	}
	if l.graySag == fraction {
		return
	}
	l.graySag = fraction
	l.applyCapacity()
	l.eng.Tracef("fabric", "link %s gray-sagged to %g× rate (no notification)", l.Cfg.Name, fraction)
}

// GraySag returns the hidden sag multiplier (1 = none). Injection-side
// bookkeeping only: detectors must not read this — it is the ground truth
// they are being tested against.
func (l *Link) GraySag() float64 { return l.graySag }

// InflateLatency injects gray latency inflation: RTT, one-way delay and
// every control-message delay scale by factor. No watcher is notified.
// factor must be >= 1; InflateLatency(1) clears it. Credit- and
// window-limited protocols sag (rate = window/RTT) while capacity-limited
// flows are untouched — the signature of a jitter-limped rail.
func (l *Link) InflateLatency(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("fabric: InflateLatency factor %v below 1", factor))
	}
	if l.latInflate == factor {
		return
	}
	l.latInflate = factor
	l.eng.Tracef("fabric", "link %s latency inflated %g× (no notification)", l.Cfg.Name, factor)
}

// LatencyFactor returns the injected latency inflation (1 = nominal).
func (l *Link) LatencyFactor() float64 { return l.latInflate }

// SetSilentLoss injects a sub-detection-threshold loss rate: every
// every-th control message is dropped (Send reports false), deterministic
// and counter-driven so replays are bit-identical. Zero disables. The
// point of "every-th" rather than consecutive loss: a probe miss here and
// there never accumulates into the MissedProbes run a binary death
// detector needs, so the rail stays nominally healthy while retries eat
// goodput.
func (l *Link) SetSilentLoss(every int) {
	if every < 0 {
		panic(fmt.Sprintf("fabric: SetSilentLoss every %d negative", every))
	}
	if l.lossEvery == every {
		return
	}
	l.lossEvery = every
	if every == 0 {
		l.eng.Tracef("fabric", "link %s silent loss cleared", l.Cfg.Name)
	} else {
		l.eng.Tracef("fabric", "link %s silent loss: dropping every %dth control message", l.Cfg.Name, every)
	}
}

// SilentLossEvery returns the injected loss cadence (0 = none).
func (l *Link) SilentLossEvery() int { return l.lossEvery }

// Failed reports whether the link is currently down.
func (l *Link) Failed() bool { return l.failed }

// Fraction returns the link's current capacity fraction: 0 when failed,
// otherwise the standing Degrade fraction (1 = healthy).
func (l *Link) Fraction() float64 {
	if l.failed {
		return 0
	}
	return l.degrade
}

// Engine exposes the simulation engine driving this link.
func (l *Link) Engine() *sim.Engine { return l.eng }

// Sim exposes the fluid simulator this link is registered with.
func (l *Link) Sim() *fluid.Sim { return l.sim }
