// Package fabric models network links, NICs and switches connecting hosts.
//
// A link is full-duplex: each direction is an independent fluid resource, so
// bi-directional transfers (Figure 11) contend only for host-side resources,
// not for raw link bandwidth. Every link endpoint is a NIC — a DMA-capable
// PCIe device with a NUMA home node — so traffic into a buffer on the remote
// socket crosses the interconnect exactly as it would on real hardware.
//
// Propagation delay gives wide-area links their bandwidth-delay product: the
// DOE ANI loop in the paper is a 40 Gbps RoCE path with a 95 ms RTT and a
// BDP close to 500 MB, which starves window- or credit-limited protocols.
package fabric

import (
	"fmt"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
)

// Switch is a non-blocking crossbar with an aggregate backplane capacity.
// LAN experiments route through a switch; point-to-point links pass nil.
type Switch struct {
	Name      string
	Backplane *fluid.Resource
}

// NewSwitch registers a switch with the given aggregate capacity (bytes/s).
func NewSwitch(s *fluid.Sim, name string, capacity float64) *Switch {
	return &Switch{Name: name, Backplane: s.AddResource(name+"/backplane", capacity)}
}

// Config describes one physical link.
type Config struct {
	Name string
	// Rate is the line rate in bytes/second per direction.
	Rate float64
	// RTT is the round-trip propagation time.
	RTT sim.Duration
	// MTU and HeaderBytes determine framing efficiency: payload capacity is
	// Rate × MTU/(MTU+HeaderBytes). Zero MTU means no framing overhead.
	MTU         int
	HeaderBytes int
	// Switch, when non-nil, adds the switch backplane to both directions.
	Switch *Switch
}

// Efficiency returns the fraction of the line rate available to payload.
func (c Config) Efficiency() float64 {
	if c.MTU <= 0 || c.HeaderBytes <= 0 {
		return 1
	}
	return float64(c.MTU) / float64(c.MTU+c.HeaderBytes)
}

// Link is a full-duplex connection between two NICs.
type Link struct {
	Cfg Config
	// A and B are the endpoint NICs (DMA devices on their hosts).
	A, B *host.Device
	// aToB and bToA are the directional bandwidth resources.
	aToB, bToA *fluid.Resource
	sim        *fluid.Sim
	eng        *sim.Engine
	failed     bool
}

// Connect creates a link between a NIC on host ha (PCIe slot on node na) and
// a NIC on host hb (node nb).
func Connect(s *fluid.Sim, cfg Config, ha *host.Host, na *numa.Node, hb *host.Host, nb *numa.Node) *Link {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("fabric: link %s needs positive rate", cfg.Name))
	}
	if cfg.RTT < 0 {
		panic(fmt.Sprintf("fabric: link %s has negative RTT", cfg.Name))
	}
	l := &Link{
		Cfg:  cfg,
		A:    ha.NewDevice(cfg.Name+"/nicA", na),
		B:    hb.NewDevice(cfg.Name+"/nicB", nb),
		aToB: s.AddResource(cfg.Name+"/a->b", cfg.Rate),
		bToA: s.AddResource(cfg.Name+"/b->a", cfg.Rate),
		sim:  s,
		eng:  s.Engine,
	}
	return l
}

// Dir returns the directional resource for traffic leaving the given NIC.
// from must be one of the link's endpoints.
func (l *Link) Dir(from *host.Device) *fluid.Resource {
	switch from {
	case l.A:
		return l.aToB
	case l.B:
		return l.bToA
	default:
		panic(fmt.Sprintf("fabric: device %s is not an endpoint of %s", from.Name, l.Cfg.Name))
	}
}

// Peer returns the NIC at the other end.
func (l *Link) Peer(from *host.Device) *host.Device {
	switch from {
	case l.A:
		return l.B
	case l.B:
		return l.A
	default:
		panic(fmt.Sprintf("fabric: device %s is not an endpoint of %s", from.Name, l.Cfg.Name))
	}
}

// ChargeWire attaches the link's directional bandwidth (adjusted for framing
// overhead) and the switch backplane to flow f.
func (l *Link) ChargeWire(f *fluid.Flow, from *host.Device, coeff float64, tag string) {
	wire := coeff / l.Cfg.Efficiency()
	f.UseTagged(l.Dir(from), wire, tag)
	if l.Cfg.Switch != nil {
		f.UseTagged(l.Cfg.Switch.Backplane, wire, tag)
	}
}

// OneWayDelay is half the configured RTT.
func (l *Link) OneWayDelay() sim.Duration { return l.Cfg.RTT / 2 }

// RTT returns the round-trip propagation time.
func (l *Link) RTT() sim.Duration { return l.Cfg.RTT }

// BDP returns the bandwidth-delay product in bytes.
func (l *Link) BDP() float64 { return l.Cfg.Rate * float64(l.Cfg.RTT) }

// MessageDelay returns propagation plus serialization time for a message of
// size bytes (no queueing model: control messages are small).
func (l *Link) MessageDelay(size float64) sim.Duration {
	return l.OneWayDelay() + sim.Duration(size/l.Cfg.Rate)
}

// Send schedules fn after the one-way message delay for size bytes,
// modelling an asynchronous control message (RFTP's control channel, iSCSI
// command PDUs). Control messages are not charged against link bandwidth;
// their footprint is negligible next to bulk data. Messages sent while the
// link is failed are dropped.
func (l *Link) Send(size float64, fn func(now sim.Time)) {
	if l.failed {
		return
	}
	l.eng.Schedule(l.MessageDelay(size), func() { fn(l.eng.Now()) })
}

// Fail injects a link failure: both directions drop to zero capacity and
// every flow crossing the link stalls until Restore. Control messages
// submitted while failed are silently dropped (Send becomes a no-op), as
// on a dark fiber.
func (l *Link) Fail() {
	if l.failed {
		return
	}
	l.failed = true
	l.sim.SetCapacity(l.aToB, 0)
	l.sim.SetCapacity(l.bToA, 0)
	l.eng.Tracef("fabric", "link %s failed", l.Cfg.Name)
}

// Restore repairs a failed link; stalled flows resume at the next solve.
func (l *Link) Restore() {
	if !l.failed {
		return
	}
	l.failed = false
	l.sim.SetCapacity(l.aToB, l.Cfg.Rate)
	l.sim.SetCapacity(l.bToA, l.Cfg.Rate)
	l.eng.Tracef("fabric", "link %s restored", l.Cfg.Name)
}

// Failed reports whether the link is currently down.
func (l *Link) Failed() bool { return l.failed }

// Engine exposes the simulation engine driving this link.
func (l *Link) Engine() *sim.Engine { return l.eng }

// Sim exposes the fluid simulator this link is registered with.
func (l *Link) Sim() *fluid.Sim { return l.sim }
