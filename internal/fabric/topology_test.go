package fabric

import (
	"math"
	"testing"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// testPorts builds n tiny endpoint hosts and returns their NIC attachment
// points.
func testPorts(s *fluid.Sim, n int) []Endpoint {
	eps := make([]Endpoint, n)
	for i := range eps {
		h := host.New("h", numa.MustNew(s, numa.Config{
			Nodes: 1, CoresPerNode: 1, CoreHz: 1e9,
			MemBandwidthPerNode:   1e12,
			RemoteAccessPenalty:   1,
			CoherencyWritePenalty: 1,
			MemBytes:              1 << 30,
		}))
		eps[i] = Endpoint{Host: h, Node: h.M.Node(0)}
	}
	return eps
}

func leafSpineCfg(hostRate, uplinkRate float64, perLeaf, spines int) TopoConfig {
	return TopoConfig{
		Kind:         TopoLeafSpine,
		HostLink:     Config{Rate: hostRate, RTT: 10e-6},
		HostsPerLeaf: perLeaf,
		Spines:       spines,
		UplinkRate:   uplinkRate,
		UplinkRTT:    sim.Duration(5e-6),
	}
}

func TestLeafSpineCounts(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	ports := 48
	topo, err := BuildTopology(s, leafSpineCfg(units.FromGbps(10), units.FromGbps(40), 16, 4), testPorts(s, ports))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(topo.Leaves), 3; got != want {
		t.Fatalf("leaves = %d, want %d", got, want)
	}
	if got, want := len(topo.Spines), 4; got != want {
		t.Fatalf("spines = %d, want %d", got, want)
	}
	// Links: one access per port + leaves×spines uplinks.
	if got, want := topo.LinkCount(), ports+3*4; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	// Oversubscription: (16 × 10G) / (4 × 40G) = 1.0.
	if got := topo.Oversubscription(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("oversubscription = %g, want 1.0", got)
	}
	// Bisection: 3 leaves × 4 spines × 40G / 2 = 240 Gbps.
	if got, want := topo.BisectionBandwidth(), 12*units.FromGbps(40)/2; math.Abs(got-want) > 1 {
		t.Fatalf("bisection = %g, want %g", got, want)
	}
}

func TestLeafSpineOversubscribed(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	// 32 hosts × 10G per leaf over 2 × 40G uplinks = 4:1 oversubscription.
	topo, err := BuildTopology(s, leafSpineCfg(units.FromGbps(10), units.FromGbps(40), 32, 2), testPorts(s, 64))
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Oversubscription(); math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("oversubscription = %g, want 4.0", got)
	}
}

func TestFatTreeCounts(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	k := 4 // capacity k³/4 = 16 hosts
	ports := 16
	cfg := TopoConfig{
		Kind:       TopoFatTree,
		K:          k,
		HostLink:   Config{Rate: units.FromGbps(10), RTT: 10e-6},
		UplinkRate: units.FromGbps(10),
		UplinkRTT:  sim.Duration(5e-6),
	}
	topo, err := BuildTopology(s, cfg, testPorts(s, ports))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(topo.Edges), k*k/2; got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
	if got, want := len(topo.Aggs), k*k/2; got != want {
		t.Fatalf("aggs = %d, want %d", got, want)
	}
	if got, want := len(topo.Cores), k*k/4; got != want {
		t.Fatalf("cores = %d, want %d", got, want)
	}
	// Links: 16 access + k³/4 edge-agg + k³/4 agg-core = 16 + 16 + 16.
	if got, want := topo.LinkCount(), ports+k*k*k/4*2; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	// Equal stage rates → full bisection, oversubscription 1.
	if got := topo.Oversubscription(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("oversubscription = %g, want 1.0", got)
	}
	// Bisection: k³/4 core links × rate / 2.
	want := float64(k*k*k/4) * units.FromGbps(10) / 2
	if got := topo.BisectionBandwidth(); math.Abs(got-want) > 1 {
		t.Fatalf("bisection = %g, want %g", got, want)
	}
}

func TestFatTreeOversubscribedStages(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	// Hosts at 40G into 10G uplinks: edge stage 4:1. Core stage at 20G:
	// agg ratio 10/20 = 0.5; worst stage must win.
	cfg := TopoConfig{
		Kind:       TopoFatTree,
		K:          4,
		HostLink:   Config{Rate: units.FromGbps(40), RTT: 10e-6},
		UplinkRate: units.FromGbps(10),
		CoreRate:   units.FromGbps(20),
	}
	topo, err := BuildTopology(s, cfg, testPorts(s, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Oversubscription(); math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("oversubscription = %g, want 4.0", got)
	}
}

func TestFatTreeCapacity(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	cfg := TopoConfig{
		Kind:       TopoFatTree,
		K:          2, // capacity 2
		HostLink:   Config{Rate: 1e9},
		UplinkRate: 1e9,
	}
	if _, err := BuildTopology(s, cfg, testPorts(s, 3)); err == nil {
		t.Fatal("3 ports must not fit a k=2 fat-tree")
	}
}

// routeValid walks the hop list checking that consecutive hops share a
// switch host and the route starts at src and ends at dst.
func routeValid(t *testing.T, topo *Topology, src, dst int, hops []Hop) {
	t.Helper()
	if len(hops) == 0 {
		t.Fatalf("route %d→%d is empty", src, dst)
	}
	if hops[0].Link != topo.PortLinks[src] {
		t.Fatalf("route %d→%d does not start at src access link", src, dst)
	}
	if hops[len(hops)-1].Link != topo.PortLinks[dst] {
		t.Fatalf("route %d→%d does not end at dst access link", src, dst)
	}
	for i, h := range hops {
		// From must be one of the link's endpoints (Dir panics otherwise).
		h.Link.Dir(h.From)
		if i == 0 {
			continue
		}
		prev := hops[i-1]
		// The previous hop's exit host must be this hop's entry host.
		if prev.Link.Peer(prev.From).Host != h.From.Host {
			t.Fatalf("route %d→%d hop %d: discontinuity %s → %s",
				src, dst, i, prev.Link.Cfg.Name, h.Link.Cfg.Name)
		}
	}
}

func TestRoutesConnect(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	ls, err := BuildTopology(s, leafSpineCfg(units.FromGbps(10), units.FromGbps(40), 4, 3), testPorts(s, 12))
	if err != nil {
		t.Fatal(err)
	}
	ft, err := BuildTopology(s, TopoConfig{
		Kind: TopoFatTree, K: 4, Name: "ft",
		HostLink:   Config{Rate: units.FromGbps(10), RTT: 10e-6},
		UplinkRate: units.FromGbps(10),
	}, testPorts(s, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []*Topology{ls, ft} {
		n := topo.Ports()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					if hops := topo.Route(src, dst, 1); hops != nil {
						t.Fatalf("self-route must be empty, got %d hops", len(hops))
					}
					continue
				}
				for key := uint64(0); key < 4; key++ {
					routeValid(t, topo, src, dst, topo.Route(src, dst, key))
				}
			}
		}
	}
}

func TestRouteHopCounts(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	ft, err := BuildTopology(s, TopoConfig{
		Kind: TopoFatTree, K: 4,
		HostLink:   Config{Rate: units.FromGbps(10)},
		UplinkRate: units.FromGbps(10),
	}, testPorts(s, 16))
	if err != nil {
		t.Fatal(err)
	}
	// Ports 0,1 share an edge; 0,2 share a pod; 0,8 cross pods.
	if got := len(ft.Route(0, 1, 7)); got != 2 {
		t.Fatalf("same-edge route: %d hops, want 2", got)
	}
	if got := len(ft.Route(0, 2, 7)); got != 4 {
		t.Fatalf("same-pod route: %d hops, want 4", got)
	}
	if got := len(ft.Route(0, 8, 7)); got != 6 {
		t.Fatalf("cross-pod route: %d hops, want 6", got)
	}
	if !ft.SameLeaf(0, 1) || ft.SameLeaf(0, 2) {
		t.Fatal("SameLeaf misclassifies fat-tree edges")
	}
	if ft.PodIndex(0) != 0 || ft.PodIndex(8) != 2 {
		t.Fatalf("PodIndex: got %d,%d want 0,2", ft.PodIndex(0), ft.PodIndex(8))
	}
}

func TestRouteECMPDeterministicAndSpreading(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	topo, err := BuildTopology(s, leafSpineCfg(units.FromGbps(10), units.FromGbps(40), 4, 4), testPorts(s, 16))
	if err != nil {
		t.Fatal(err)
	}
	// Same (src, dst, key) → identical path, always.
	a := topo.Route(0, 12, 42)
	b := topo.Route(0, 12, 42)
	if len(a) != len(b) {
		t.Fatal("ECMP route not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ECMP route not deterministic")
		}
	}
	// Different keys must spread over more than one spine.
	seen := map[*Link]bool{}
	for key := uint64(0); key < 64; key++ {
		hops := topo.Route(0, 12, key)
		seen[hops[1].Link] = true // the leaf→spine uplink
	}
	if len(seen) < 2 {
		t.Fatalf("ECMP used %d spines for 64 keys, want ≥ 2", len(seen))
	}
}

// TestRouteAvoidsDeadSpine: after a spine dies, every cross-leaf route
// lands on a surviving spine, and the detour is deterministic.
func TestRouteAvoidsDeadSpine(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	topo, err := BuildTopology(s, leafSpineCfg(units.FromGbps(10), units.FromGbps(40), 4, 4), testPorts(s, 16))
	if err != nil {
		t.Fatal(err)
	}
	dead := 2
	spineOf := func(hops []Hop) int {
		for sp := range topo.Spines {
			if hops[1].Link == topo.up[topo.LeafIndex(0)][sp] {
				return sp
			}
		}
		return -1
	}
	// Find a key that naturally hashes to the doomed spine.
	key := uint64(0)
	for ; key < 1024; key++ {
		if spineOf(topo.Route(0, 12, key)) == dead {
			break
		}
	}
	if spineOf(topo.Route(0, 12, key)) != dead {
		t.Fatal("no key hashed onto the doomed spine")
	}
	for _, l := range topo.SpineLinks(dead) {
		l.Fail()
	}
	hops := topo.Route(0, 12, key)
	routeValid(t, topo, 0, 12, hops)
	if sp := spineOf(hops); sp == dead {
		t.Fatal("route still uses the dead spine")
	}
	for _, h := range hops {
		if h.Link.Failed() {
			t.Fatalf("re-route crosses failed link %s", h.Link.Cfg.Name)
		}
	}
	again := topo.Route(0, 12, key)
	for i := range hops {
		if hops[i] != again[i] {
			t.Fatal("re-route not deterministic")
		}
	}
	// Heal: the original hashed choice comes back.
	for _, l := range topo.SpineLinks(dead) {
		l.Restore()
	}
	if spineOf(topo.Route(0, 12, key)) != dead {
		t.Fatal("route did not return to the hashed spine after heal")
	}
}

// TestRouteAllSpinesDeadKeepsHashedChoice: with no live alternative the
// route keeps the hashed path (the flow stalls — physical truth).
func TestRouteAllSpinesDeadKeepsHashedChoice(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	topo, err := BuildTopology(s, leafSpineCfg(units.FromGbps(10), units.FromGbps(40), 4, 2), testPorts(s, 8))
	if err != nil {
		t.Fatal(err)
	}
	before := topo.Route(0, 6, 9)
	for _, l := range topo.Uplinks() {
		l.Fail()
	}
	after := topo.Route(0, 6, 9)
	if len(before) != len(after) {
		t.Fatal("hop count changed with every uplink dead")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("route changed despite no live alternative")
		}
	}
}

// TestFatTreeRouteAvoidsDeadCore: killing a core switch (all its trunk
// links) steers cross-pod routes onto surviving cores, still valid.
func TestFatTreeRouteAvoidsDeadCore(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	ft, err := BuildTopology(s, TopoConfig{
		Kind: TopoFatTree, K: 4,
		HostLink:   Config{Rate: units.FromGbps(10)},
		UplinkRate: units.FromGbps(10),
	}, testPorts(s, 16))
	if err != nil {
		t.Fatal(err)
	}
	coreUsed := func(hops []Hop) *host.Host {
		for _, h := range hops {
			for _, c := range ft.Cores {
				if h.Link.B.Host == c {
					return c
				}
			}
		}
		return nil
	}
	// Kill core 0; check many (key) draws all avoid it and stay valid.
	for _, l := range ft.CoreLinks(0) {
		l.Fail()
	}
	for key := uint64(0); key < 64; key++ {
		hops := ft.Route(0, 8, key)
		routeValid(t, ft, 0, 8, hops)
		if c := coreUsed(hops); c == ft.Cores[0] {
			t.Fatalf("key %d still routed through dead core", key)
		}
		for _, h := range hops {
			if h.Link.Failed() {
				t.Fatalf("key %d crosses failed link %s", key, h.Link.Cfg.Name)
			}
		}
	}
}

// TestUplinkAccessors: Uplinks excludes access links; SpineLinks/CoreLinks
// return one link per attached switch of the other stage.
func TestUplinkAccessors(t *testing.T) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	ls, err := BuildTopology(s, leafSpineCfg(units.FromGbps(10), units.FromGbps(40), 4, 3), testPorts(s, 12))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(ls.Uplinks()), 3*3; got != want {
		t.Fatalf("leaf-spine uplinks = %d, want %d", got, want)
	}
	if got, want := len(ls.SpineLinks(1)), 3; got != want {
		t.Fatalf("SpineLinks(1) = %d links, want %d (one per leaf)", got, want)
	}
	ft, err := BuildTopology(s, TopoConfig{
		Kind: TopoFatTree, K: 4, Name: "ft2",
		HostLink:   Config{Rate: units.FromGbps(10)},
		UplinkRate: units.FromGbps(10),
	}, testPorts(s, 16))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(ft.Uplinks()), 32; got != want {
		t.Fatalf("fat-tree uplinks = %d, want %d", got, want)
	}
	if got, want := len(ft.CoreLinks(0)), 4; got != want {
		t.Fatalf("CoreLinks(0) = %d links, want %d (one per pod)", got, want)
	}
}
