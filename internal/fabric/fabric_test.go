package fabric

import (
	"math"
	"testing"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

func pairOfHosts(t *testing.T) (*sim.Engine, *fluid.Sim, *host.Host, *host.Host) {
	t.Helper()
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	cfg := numa.Config{
		Name: "x", Nodes: 2, CoresPerNode: 8, CoreHz: 2.2e9,
		MemBandwidthPerNode:   25 * units.GBps,
		InterconnectBandwidth: 16 * units.GBps,
		RemoteAccessPenalty:   1.4, CoherencyWritePenalty: 3,
	}
	cfgA, cfgB := cfg, cfg
	cfgA.Name, cfgB.Name = "A", "B"
	ha := host.New("A", numa.MustNew(s, cfgA))
	hb := host.New("B", numa.MustNew(s, cfgB))
	return eng, s, ha, hb
}

func roce40(sw *Switch) Config {
	return Config{
		Name: "roce0", Rate: units.FromGbps(40),
		RTT: 0.166 * 1e-3, MTU: 9000, HeaderBytes: 90, Switch: sw,
	}
}

func TestLinkEndpointsAndNICs(t *testing.T) {
	_, s, ha, hb := pairOfHosts(t)
	l := Connect(s, roce40(nil), ha, ha.M.Node(0), hb, hb.M.Node(1))
	if l.A.Host != ha || l.B.Host != hb {
		t.Fatal("NIC hosts wrong")
	}
	if l.A.Node != ha.M.Node(0) || l.B.Node != hb.M.Node(1) {
		t.Fatal("NIC home nodes wrong")
	}
	if l.Peer(l.A) != l.B || l.Peer(l.B) != l.A {
		t.Fatal("Peer broken")
	}
}

func TestDirIsPerDirection(t *testing.T) {
	_, s, ha, hb := pairOfHosts(t)
	l := Connect(s, roce40(nil), ha, ha.M.Node(0), hb, hb.M.Node(0))
	if l.Dir(l.A) == l.Dir(l.B) {
		t.Fatal("directions must be independent resources")
	}
	if l.Dir(l.A).Capacity != units.FromGbps(40) {
		t.Fatalf("direction capacity = %v, want 40 Gbps", l.Dir(l.A).Capacity)
	}
}

func TestDirForeignDevicePanics(t *testing.T) {
	_, s, ha, hb := pairOfHosts(t)
	l := Connect(s, roce40(nil), ha, ha.M.Node(0), hb, hb.M.Node(0))
	other := ha.NewDevice("other", ha.M.Node(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign device")
		}
	}()
	l.Dir(other)
}

func TestFullDuplexIndependence(t *testing.T) {
	eng, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	fwd := s.NewFlow("fwd", math.Inf(1))
	l.ChargeWire(fwd, l.A, 1, "net")
	rev := s.NewFlow("rev", math.Inf(1))
	l.ChargeWire(rev, l.B, 1, "net")
	s.Start(&fluid.Transfer{Flow: fwd, Remaining: math.Inf(1)})
	s.Start(&fluid.Transfer{Flow: rev, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	s.Sync()
	if math.Abs(fwd.Rate()-100) > 1e-9 || math.Abs(rev.Rate()-100) > 1e-9 {
		t.Fatalf("duplex rates = %v/%v, want 100/100", fwd.Rate(), rev.Rate())
	}
}

func TestFramingEfficiency(t *testing.T) {
	cfg := Config{MTU: 9000, HeaderBytes: 90}
	want := 9000.0 / 9090.0
	if got := cfg.Efficiency(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("efficiency = %v, want %v", got, want)
	}
	if got := (Config{}).Efficiency(); got != 1 {
		t.Fatalf("zero-MTU efficiency = %v, want 1", got)
	}
	// Payload rate through a 100 B/s link with 1% header overhead.
	_, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100, MTU: 9000, HeaderBytes: 90}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	l.ChargeWire(f, l.A, 1, "net")
	s.Network.Solve()
	if got := f.Rate(); math.Abs(got-100*want) > 1e-9 {
		t.Fatalf("payload rate = %v, want %v", got, 100*want)
	}
}

func TestSwitchBackplaneShared(t *testing.T) {
	eng, s, ha, hb := pairOfHosts(t)
	sw := NewSwitch(s, "sw", 150)
	l1 := Connect(s, Config{Name: "l1", Rate: 100, Switch: sw}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	l2 := Connect(s, Config{Name: "l2", Rate: 100, Switch: sw}, ha, ha.M.Node(1), hb, hb.M.Node(1))
	f1 := s.NewFlow("f1", math.Inf(1))
	l1.ChargeWire(f1, l1.A, 1, "net")
	f2 := s.NewFlow("f2", math.Inf(1))
	l2.ChargeWire(f2, l2.A, 1, "net")
	s.Start(&fluid.Transfer{Flow: f1, Remaining: math.Inf(1)})
	s.Start(&fluid.Transfer{Flow: f2, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	s.Sync()
	// Two 100 B/s links through a 150 B/s backplane → 75 each.
	if math.Abs(f1.Rate()-75) > 1e-9 || math.Abs(f2.Rate()-75) > 1e-9 {
		t.Fatalf("backplane sharing broken: %v/%v", f1.Rate(), f2.Rate())
	}
}

func TestDelaysAndBDP(t *testing.T) {
	_, s, ha, hb := pairOfHosts(t)
	wan := Connect(s, Config{Name: "wan", Rate: units.FromGbps(40), RTT: 0.095},
		ha, ha.M.Node(0), hb, hb.M.Node(0))
	if got := wan.RTT(); got != 0.095 {
		t.Fatalf("RTT = %v", got)
	}
	if got := wan.OneWayDelay(); math.Abs(float64(got)-0.0475) > 1e-12 {
		t.Fatalf("one-way = %v", got)
	}
	// Paper: BDP close to 500 MB. 5 Gbyte/s × 0.095 s = 475 MB.
	if got := wan.BDP(); math.Abs(got-475e6) > 1e3 {
		t.Fatalf("BDP = %v, want 475 MB", got)
	}
}

func TestMessageDelayAndSend(t *testing.T) {
	eng, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 1000, RTT: 0.2}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	// 100 bytes at 1000 B/s = 0.1s serialization + 0.1s propagation.
	if got := l.MessageDelay(100); math.Abs(float64(got)-0.2) > 1e-12 {
		t.Fatalf("message delay = %v, want 0.2", got)
	}
	var arrived sim.Time
	l.Send(100, func(now sim.Time) { arrived = now })
	eng.Run()
	if math.Abs(float64(arrived)-0.2) > 1e-12 {
		t.Fatalf("message arrived at %v, want 0.2", arrived)
	}
}

func TestConnectValidation(t *testing.T) {
	_, s, ha, hb := pairOfHosts(t)
	for _, cfg := range []Config{
		{Name: "bad", Rate: 0},
		{Name: "bad", Rate: 10, RTT: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for config %+v", cfg)
				}
			}()
			Connect(s, cfg, ha, ha.M.Node(0), hb, hb.M.Node(0))
		}()
	}
}

func TestDMAPlusWireComposition(t *testing.T) {
	// End-to-end charge: NIC A DMA-reads a buffer on A/node1 (remote to the
	// NIC on node0), wire, NIC B DMA-writes a local buffer. Verifies the
	// three charges compose on one flow.
	eng, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: units.FromGbps(40)}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	src := ha.M.NewBuffer("src", ha.M.Node(1)) // remote to NIC
	dst := hb.M.NewBuffer("dst", hb.M.Node(0)) // local to NIC
	f := s.NewFlow("xfer", math.Inf(1))
	l.A.ChargeDMA(f, src, 1, false, "dma")
	l.ChargeWire(f, l.A, 1, "net")
	l.B.ChargeDMA(f, dst, 1, true, "dma")
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	s.Sync()
	// Link 5 GB/s is the bottleneck (QPI 16, mem 25).
	if got := f.Rate(); math.Abs(got-units.FromGbps(40)) > 1 {
		t.Fatalf("rate = %v, want 40 Gbps", got)
	}
	// The source-side interconnect carried the DMA.
	if ha.M.Link(ha.M.Node(1), ha.M.Node(0)).Load() == 0 {
		t.Fatal("remote DMA read should cross the source interconnect")
	}
}

func TestFailStallsFlows(t *testing.T) {
	eng, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	l.ChargeWire(f, l.A, 1, "net")
	tr := &fluid.Transfer{Flow: f, Remaining: math.Inf(1)}
	s.Start(tr)
	eng.RunUntil(1)
	l.Fail()
	if !l.Failed() {
		t.Fatal("link should report failed")
	}
	s.Sync()
	atFail := tr.Transferred()
	eng.RunUntil(3)
	s.Sync()
	if tr.Transferred() != atFail {
		t.Fatalf("flow moved %v bytes across a failed link", tr.Transferred()-atFail)
	}
	l.Restore()
	eng.RunUntil(4)
	s.Sync()
	if got := tr.Transferred() - atFail; math.Abs(got-100) > 1e-6 {
		t.Fatalf("post-restore volume = %v, want 100 (1s at full rate)", got)
	}
}

func TestFailDropsControlMessages(t *testing.T) {
	eng, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100, RTT: 0.1}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	l.Fail()
	delivered := false
	l.Send(64, func(sim.Time) { delivered = true })
	eng.Run()
	if delivered {
		t.Fatal("message crossed a failed link")
	}
	l.Restore()
	l.Send(64, func(sim.Time) { delivered = true })
	eng.Run()
	if !delivered {
		t.Fatal("message lost after restore")
	}
}

func TestFailRestoreIdempotent(t *testing.T) {
	_, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	l.Restore() // no-op when healthy
	l.Fail()
	l.Fail() // no-op when already failed
	l.Restore()
	if l.Dir(l.A).Capacity != 100 || l.Dir(l.B).Capacity != 100 {
		t.Fatal("capacity not restored")
	}
}

func TestDegradeScalesBothDirections(t *testing.T) {
	eng, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	fwd := s.NewFlow("fwd", math.Inf(1))
	l.ChargeWire(fwd, l.A, 1, "net")
	rev := s.NewFlow("rev", math.Inf(1))
	l.ChargeWire(rev, l.B, 1, "net")
	s.Start(&fluid.Transfer{Flow: fwd, Remaining: math.Inf(1)})
	s.Start(&fluid.Transfer{Flow: rev, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	l.Degrade(0.4)
	eng.RunUntil(2)
	s.Sync()
	if math.Abs(fwd.Rate()-40) > 1e-9 || math.Abs(rev.Rate()-40) > 1e-9 {
		t.Fatalf("degraded rates = %v/%v, want 40/40", fwd.Rate(), rev.Rate())
	}
	if l.Failed() {
		t.Fatal("degraded link must not report failed")
	}
	if got := l.Fraction(); got != 0.4 {
		t.Fatalf("Fraction = %v, want 0.4", got)
	}
	// Control messages still flow on a degraded link.
	delivered := false
	if ok := l.Send(64, func(sim.Time) { delivered = true }); !ok {
		t.Fatal("Send refused on a degraded link")
	}
	eng.Run()
	if !delivered {
		t.Fatal("control message lost on a degraded link")
	}
	// Degrade(1) clears the degradation.
	l.Degrade(1)
	if l.Dir(l.A).Capacity != 100 || l.Dir(l.B).Capacity != 100 {
		t.Fatal("Degrade(1) did not restore full capacity")
	}
}

func TestDegradeFailRestoreIdempotent(t *testing.T) {
	// degrade→fail→restore sequences are idempotent and end at the
	// configured (degraded) rate; clearing the degradation afterwards
	// returns the link to the full line rate.
	_, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	l.Degrade(0.25)
	l.Degrade(0.25) // no-op repeat
	l.Fail()
	if l.Dir(l.A).Capacity != 0 || l.Fraction() != 0 {
		t.Fatal("failed link must have zero capacity and fraction")
	}
	l.Degrade(0.5) // updates the standing fraction while dark
	if l.Dir(l.A).Capacity != 0 {
		t.Fatal("degrading a failed link must not raise capacity")
	}
	l.Restore()
	if got := l.Dir(l.A).Capacity; got != 50 {
		t.Fatalf("restored capacity = %v, want 50 (0.5× rate)", got)
	}
	if got := l.Fraction(); got != 0.5 {
		t.Fatalf("Fraction = %v, want 0.5", got)
	}
	l.Degrade(1)
	if got := l.Dir(l.A).Capacity; got != 100 {
		t.Fatalf("cleared capacity = %v, want 100", got)
	}
}

func TestDegradeValidation(t *testing.T) {
	_, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	for _, bad := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for Degrade(%v)", bad)
				}
			}()
			l.Degrade(bad)
		}()
	}
}

func TestSendReportsDrops(t *testing.T) {
	eng, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100, RTT: 0.1}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	if ok := l.Send(64, func(sim.Time) {}); !ok {
		t.Fatal("Send on a healthy link reported a drop")
	}
	l.Fail()
	if ok := l.Send(64, func(sim.Time) {}); ok {
		t.Fatal("Send on a failed link reported delivery")
	}
	l.Send(64, func(sim.Time) {})
	if l.Drops != 2 {
		t.Fatalf("Drops = %d, want 2", l.Drops)
	}
	eng.Run()
}

func TestWatchDeliversTransitions(t *testing.T) {
	_, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	var got []Event
	l.Watch(func(ev Event) { got = append(got, ev) })
	l.Fail()
	l.Fail() // idempotent: no second event
	l.Restore()
	l.Degrade(0.5)
	l.InjectErrorBurst()
	want := []Event{
		{Kind: EventDown, Fraction: 0},
		{Kind: EventUp, Fraction: 1},
		{Kind: EventDegraded, Fraction: 0.5},
		{Kind: EventErrorBurst, Fraction: 0.5},
	}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestErrorBurstLeavesCapacityUntouched(t *testing.T) {
	eng, s, ha, hb := pairOfHosts(t)
	l := Connect(s, Config{Name: "l", Rate: 100}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	l.ChargeWire(f, l.A, 1, "net")
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	l.InjectErrorBurst()
	eng.RunUntil(2)
	s.Sync()
	if math.Abs(f.Rate()-100) > 1e-9 {
		t.Fatalf("rate after burst = %v, want 100", f.Rate())
	}
}

func TestPartialFabricFailure(t *testing.T) {
	// Two links; failing one halves aggregate capacity for flows pinned
	// per link, and the survivor is unaffected.
	eng, s, ha, hb := pairOfHosts(t)
	l1 := Connect(s, Config{Name: "l1", Rate: 100}, ha, ha.M.Node(0), hb, hb.M.Node(0))
	l2 := Connect(s, Config{Name: "l2", Rate: 100}, ha, ha.M.Node(1), hb, hb.M.Node(1))
	f1 := s.NewFlow("f1", math.Inf(1))
	l1.ChargeWire(f1, l1.A, 1, "net")
	f2 := s.NewFlow("f2", math.Inf(1))
	l2.ChargeWire(f2, l2.A, 1, "net")
	s.Start(&fluid.Transfer{Flow: f1, Remaining: math.Inf(1)})
	s.Start(&fluid.Transfer{Flow: f2, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	l1.Fail()
	eng.RunUntil(2)
	s.Sync()
	if f1.Rate() != 0 {
		t.Fatal("flow on failed link still running")
	}
	if math.Abs(f2.Rate()-100) > 1e-9 {
		t.Fatalf("survivor flow degraded to %v", f2.Rate())
	}
}
