package fabric

// Multi-stage switch topologies: the jump from the paper's single
// back-end→front-end path to a datacenter fabric. A topology generator
// takes N endpoint ports (a NIC attachment point on a simulated host) and
// wires them through pseudo-host switches into the existing Link graph, so
// every flow crossing the fabric is charged on real directional fluid
// resources, hop by hop, exactly as the two-host experiments are.
//
// Two families are generated:
//
//   - Leaf-spine: every port attaches to a leaf; every leaf attaches to
//     every spine. One ECMP decision (which spine) per cross-leaf flow.
//     The oversubscription ratio — downlink capacity into a leaf versus its
//     uplink capacity — is the knob datacenter designs trade cost against
//     congestion with.
//
//   - Fat-tree (k-ary, Al-Fares-style): k pods of k/2 edge and k/2
//     aggregation switches, (k/2)² cores, host capacity k³/4. Two ECMP
//     decisions (aggregation, core) per cross-pod flow. With equal stage
//     rates it has full bisection bandwidth.
//
// Path selection is ECMP-style: a deterministic hash of (flow key, src,
// dst) picks among the equal-cost next hops, so the same seed always routes
// the same flow the same way — load balancing without per-run randomness.

import (
	"fmt"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
)

// TopoKind selects the topology family.
type TopoKind int

const (
	// TopoLeafSpine is the two-stage leaf-spine fabric.
	TopoLeafSpine TopoKind = iota
	// TopoFatTree is the three-stage k-ary fat-tree.
	TopoFatTree
)

// String names the kind ("leaf-spine", "fat-tree").
func (k TopoKind) String() string {
	if k == TopoFatTree {
		return "fat-tree"
	}
	return "leaf-spine"
}

// ParseTopoKind resolves a CLI topology name.
func ParseTopoKind(s string) (TopoKind, error) {
	switch s {
	case "leaf-spine", "leafspine":
		return TopoLeafSpine, nil
	case "fat-tree", "fattree":
		return TopoFatTree, nil
	}
	return 0, fmt.Errorf("fabric: unknown topology %q (want leaf-spine or fat-tree)", s)
}

// Endpoint is a NIC attachment point: a host and the NUMA node its port's
// PCIe slot sits on.
type Endpoint struct {
	Host *host.Host
	Node *numa.Node
}

// TopoConfig shapes a generated topology.
type TopoConfig struct {
	Kind TopoKind
	// Name prefixes every generated link and switch ("topo" when empty).
	Name string

	// HostLink is the per-port access-link template (rate, RTT, framing);
	// its Name is ignored.
	HostLink Config

	// HostsPerLeaf and Spines shape a leaf-spine fabric. Leaf count is
	// derived from the port count.
	HostsPerLeaf int
	Spines       int

	// K is the fat-tree arity (even, ≥ 2); host capacity is K³/4.
	K int

	// UplinkRate and UplinkRTT describe the first switch-to-switch stage
	// (leaf→spine, edge→aggregation). Rate is bytes/s per link.
	UplinkRate float64
	UplinkRTT  sim.Duration
	// CoreRate and CoreRTT describe the fat-tree's aggregation→core stage;
	// zero values inherit the uplink stage.
	CoreRate float64
	CoreRTT  sim.Duration
	// UplinkMTU/UplinkHeaderBytes set switch-stage framing (0 = none).
	UplinkMTU         int
	UplinkHeaderBytes int

	// SwitchBackplane, when positive, adds a shared backplane resource of
	// that capacity (bytes/s) per switch, charged by every flow traversing
	// the switch. Zero models ideal non-blocking crossbars.
	SwitchBackplane float64
}

// Hop is one directed traversal of a link; From identifies the direction.
type Hop struct {
	Link *Link
	From *host.Device
}

// Topology is a generated multi-stage fabric.
type Topology struct {
	Kind TopoKind
	Cfg  TopoConfig

	// PortLinks[i] is port i's access link (A side = the endpoint host).
	PortLinks []*Link

	// Leaves/Spines (leaf-spine) or Edges/Aggs/Cores (fat-tree) are the
	// switch pseudo-hosts.
	Leaves, Spines      []*host.Host
	Edges, Aggs, Cores  []*host.Host
	leafOf              []int     // port → leaf (or edge) index
	up                  [][]*Link // leaf-spine: up[leaf][spine]
	edgeAgg             [][]*Link // fat-tree: edgeAgg[globalEdge][aggSlot]
	aggCore             [][]*Link // fat-tree: aggCore[globalAgg][coreSlot]
	links               []*Link   // every generated link
	half                int       // k/2 (fat-tree)
	switchBackplaneUsed int
}

// switchHost builds a switch pseudo-host: a minimal 1-node machine whose
// memory system never constrains anything. Switches exist so link endpoints
// are real DMA devices; all forwarding capacity lives in the link (and
// optional backplane) resources.
func switchHost(s *fluid.Sim, name string) *host.Host {
	return host.New(name, numa.MustNew(s, numa.Config{
		Name: name, Nodes: 1, CoresPerNode: 1, CoreHz: 1e9,
		MemBandwidthPerNode:   1e18,
		RemoteAccessPenalty:   1,
		CoherencyWritePenalty: 1,
		MemBytes:              1 << 40,
	}))
}

// Validate reports configuration errors for the given port count.
func (c TopoConfig) Validate(ports int) error {
	if ports <= 0 {
		return fmt.Errorf("fabric: topology needs at least one port")
	}
	if c.HostLink.Rate <= 0 {
		return fmt.Errorf("fabric: topology needs a positive HostLink.Rate")
	}
	if c.UplinkRate <= 0 {
		return fmt.Errorf("fabric: topology needs a positive UplinkRate")
	}
	switch c.Kind {
	case TopoLeafSpine:
		if c.HostsPerLeaf <= 0 || c.Spines <= 0 {
			return fmt.Errorf("fabric: leaf-spine needs positive HostsPerLeaf and Spines")
		}
	case TopoFatTree:
		if c.K < 2 || c.K%2 != 0 {
			return fmt.Errorf("fabric: fat-tree arity K must be even and ≥ 2, got %d", c.K)
		}
		if capacity := c.K * c.K * c.K / 4; ports > capacity {
			return fmt.Errorf("fabric: %d ports exceed fat-tree k=%d capacity %d", ports, c.K, capacity)
		}
	default:
		return fmt.Errorf("fabric: unknown topology kind %d", c.Kind)
	}
	return nil
}

// BuildTopology generates the fabric and attaches the given endpoint ports.
func BuildTopology(s *fluid.Sim, cfg TopoConfig, ports []Endpoint) (*Topology, error) {
	if err := cfg.Validate(len(ports)); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "topo"
	}
	if cfg.CoreRate <= 0 {
		cfg.CoreRate = cfg.UplinkRate
	}
	if cfg.CoreRTT <= 0 {
		cfg.CoreRTT = cfg.UplinkRTT
	}
	t := &Topology{Kind: cfg.Kind, Cfg: cfg}
	switch cfg.Kind {
	case TopoLeafSpine:
		t.buildLeafSpine(s, ports)
	case TopoFatTree:
		t.buildFatTree(s, ports)
	}
	return t, nil
}

// backplane attaches an optional switch backplane to sw.
func (t *Topology) backplane(s *fluid.Sim, sw *host.Host) *Switch {
	if t.Cfg.SwitchBackplane <= 0 {
		return nil
	}
	t.switchBackplaneUsed++
	return NewSwitch(s, sw.Name, t.Cfg.SwitchBackplane)
}

// accessCfg instantiates the host-link template for port i, homed on the
// attached switch's backplane when one exists.
func (t *Topology) accessCfg(i int, sw *Switch) Config {
	cfg := t.Cfg.HostLink
	cfg.Name = fmt.Sprintf("%s/h%04d", t.Cfg.Name, i)
	cfg.Switch = sw
	return cfg
}

// uplinkCfg builds a switch-stage link config.
func (t *Topology) uplinkCfg(name string, rate float64, rtt sim.Duration, sw *Switch) Config {
	return Config{
		Name: name, Rate: rate, RTT: rtt,
		MTU: t.Cfg.UplinkMTU, HeaderBytes: t.Cfg.UplinkHeaderBytes,
		Switch: sw,
	}
}

func (t *Topology) buildLeafSpine(s *fluid.Sim, ports []Endpoint) {
	cfg := t.Cfg
	nLeaves := (len(ports) + cfg.HostsPerLeaf - 1) / cfg.HostsPerLeaf
	leafBP := make([]*Switch, nLeaves)
	for l := 0; l < nLeaves; l++ {
		sw := switchHost(s, fmt.Sprintf("%s/leaf%03d", cfg.Name, l))
		t.Leaves = append(t.Leaves, sw)
		leafBP[l] = t.backplane(s, sw)
	}
	for sp := 0; sp < cfg.Spines; sp++ {
		t.Spines = append(t.Spines, switchHost(s, fmt.Sprintf("%s/spine%03d", cfg.Name, sp)))
	}
	t.leafOf = make([]int, len(ports))
	for i, ep := range ports {
		l := i / cfg.HostsPerLeaf
		t.leafOf[i] = l
		link := Connect(s, t.accessCfg(i, leafBP[l]), ep.Host, ep.Node, t.Leaves[l], t.Leaves[l].M.Node(0))
		t.PortLinks = append(t.PortLinks, link)
		t.links = append(t.links, link)
	}
	t.up = make([][]*Link, nLeaves)
	for l := 0; l < nLeaves; l++ {
		t.up[l] = make([]*Link, cfg.Spines)
		for sp := 0; sp < cfg.Spines; sp++ {
			var bp *Switch
			if cfg.SwitchBackplane > 0 {
				bp = NewSwitch(s, fmt.Sprintf("%s/l%03d-s%03d", cfg.Name, l, sp), cfg.SwitchBackplane)
			}
			link := Connect(s,
				t.uplinkCfg(fmt.Sprintf("%s/l%03d-s%03d", cfg.Name, l, sp), cfg.UplinkRate, cfg.UplinkRTT, bp),
				t.Leaves[l], t.Leaves[l].M.Node(0), t.Spines[sp], t.Spines[sp].M.Node(0))
			t.up[l][sp] = link
			t.links = append(t.links, link)
		}
	}
}

func (t *Topology) buildFatTree(s *fluid.Sim, ports []Endpoint) {
	cfg := t.Cfg
	k := cfg.K
	half := k / 2
	t.half = half
	edgeBP := make([]*Switch, k*half)
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			sw := switchHost(s, fmt.Sprintf("%s/p%02d-edge%02d", cfg.Name, p, e))
			t.Edges = append(t.Edges, sw)
			edgeBP[p*half+e] = t.backplane(s, sw)
		}
		for a := 0; a < half; a++ {
			t.Aggs = append(t.Aggs, switchHost(s, fmt.Sprintf("%s/p%02d-agg%02d", cfg.Name, p, a)))
		}
	}
	for c := 0; c < half*half; c++ {
		t.Cores = append(t.Cores, switchHost(s, fmt.Sprintf("%s/core%03d", cfg.Name, c)))
	}
	t.leafOf = make([]int, len(ports))
	for i, ep := range ports {
		e := i / half // global edge index; ports fill edges sequentially
		t.leafOf[i] = e
		link := Connect(s, t.accessCfg(i, edgeBP[e]), ep.Host, ep.Node, t.Edges[e], t.Edges[e].M.Node(0))
		t.PortLinks = append(t.PortLinks, link)
		t.links = append(t.links, link)
	}
	// Edge→aggregation: full mesh within each pod.
	t.edgeAgg = make([][]*Link, k*half)
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			ge := p*half + e
			t.edgeAgg[ge] = make([]*Link, half)
			for a := 0; a < half; a++ {
				link := Connect(s,
					t.uplinkCfg(fmt.Sprintf("%s/p%02d-e%02d-a%02d", cfg.Name, p, e, a), cfg.UplinkRate, cfg.UplinkRTT, nil),
					t.Edges[ge], t.Edges[ge].M.Node(0),
					t.Aggs[p*half+a], t.Aggs[p*half+a].M.Node(0))
				t.edgeAgg[ge][a] = link
				t.links = append(t.links, link)
			}
		}
	}
	// Aggregation→core: agg slot a of every pod connects to core group a.
	t.aggCore = make([][]*Link, k*half)
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			ga := p*half + a
			t.aggCore[ga] = make([]*Link, half)
			for m := 0; m < half; m++ {
				core := a*half + m
				link := Connect(s,
					t.uplinkCfg(fmt.Sprintf("%s/p%02d-a%02d-c%03d", cfg.Name, p, a, core), cfg.CoreRate, cfg.CoreRTT, nil),
					t.Aggs[ga], t.Aggs[ga].M.Node(0),
					t.Cores[core], t.Cores[core].M.Node(0))
				t.aggCore[ga][m] = link
				t.links = append(t.links, link)
			}
		}
	}
}

// Ports returns the number of attached endpoint ports.
func (t *Topology) Ports() int { return len(t.PortLinks) }

// Links returns every generated link (access + switch stages).
func (t *Topology) Links() []*Link { return t.links }

// LinkCount returns the total number of generated links.
func (t *Topology) LinkCount() int { return len(t.links) }

// LeafIndex returns the leaf (or fat-tree edge) switch index a port
// attaches to.
func (t *Topology) LeafIndex(port int) int { return t.leafOf[port] }

// PodIndex returns the fat-tree pod a port belongs to; for leaf-spine it is
// the leaf index (the only aggregation domain).
func (t *Topology) PodIndex(port int) int {
	if t.Kind == TopoFatTree {
		return t.leafOf[port] / t.half
	}
	return t.leafOf[port]
}

// SameLeaf reports whether two ports share a leaf/edge switch.
func (t *Topology) SameLeaf(a, b int) bool { return t.leafOf[a] == t.leafOf[b] }

// mix64 is splitmix64: the ECMP hash. Deterministic, well-distributed, and
// independent of Go's map or rand internals.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Route returns the directed hop sequence from port src to port dst.
// key seeds the ECMP choice: flows with different keys spread over the
// equal-cost next hops, flows with the same key stay on one path (no
// packet reordering), and the same (key, src, dst) always routes the same
// way. src == dst returns no hops (host-local copy).
//
// Routing is dead-link-aware: when the hashed choice lands on a failed
// switch-stage link, the route scans forward from that base choice (offsets
// 1, 2, …) to the first equal-cost alternative whose links are all alive —
// the ECMP re-route a real fabric performs when a spine or trunk dies.
// The scan order is a pure function of the hash, so re-routing stays
// deterministic. If every alternative is dark the hashed choice is kept:
// the flow charges a dead link and stalls, which is the physical truth.
func (t *Topology) Route(src, dst int, key uint64) []Hop {
	if src == dst {
		return nil
	}
	h := mix64(key ^ mix64(uint64(src)<<32|uint64(dst)))
	up := t.PortLinks[src]
	down := t.PortLinks[dst]
	hops := []Hop{{Link: up, From: up.A}}
	if t.leafOf[src] == t.leafOf[dst] {
		return append(hops, Hop{Link: down, From: down.B})
	}
	switch t.Kind {
	case TopoLeafSpine:
		l1, l2 := t.leafOf[src], t.leafOf[dst]
		sp := scanAlive(int(h%uint64(len(t.Spines))), len(t.Spines), func(sp int) bool {
			return !t.up[l1][sp].Failed() && !t.up[l2][sp].Failed()
		})
		hops = append(hops,
			Hop{Link: t.up[l1][sp], From: t.up[l1][sp].A},
			Hop{Link: t.up[l2][sp], From: t.up[l2][sp].B})
	case TopoFatTree:
		e1, e2 := t.leafOf[src], t.leafOf[dst]
		p1, p2 := e1/t.half, e2/t.half
		a0 := int(h % uint64(t.half))
		if p1 == p2 {
			a := scanAlive(a0, t.half, func(a int) bool {
				return !t.edgeAgg[e1][a].Failed() && !t.edgeAgg[e2][a].Failed()
			})
			hops = append(hops,
				Hop{Link: t.edgeAgg[e1][a], From: t.edgeAgg[e1][a].A},
				Hop{Link: t.edgeAgg[e2][a], From: t.edgeAgg[e2][a].B})
			break
		}
		// Cross-pod: the aggregation slot choice pins the core group, so a
		// live path needs (edge→agg, agg→core, core→agg, agg→edge) all up
		// for some (a, m) pair. Scan a from the hashed base, and within each
		// a scan m from its hashed base.
		m0 := int(mix64(h) % uint64(t.half))
		a, m := a0, m0
		for da := 0; da < t.half; da++ {
			ca := (a0 + da) % t.half
			if t.edgeAgg[e1][ca].Failed() || t.edgeAgg[e2][ca].Failed() {
				continue
			}
			ga1, ga2 := p1*t.half+ca, p2*t.half+ca
			cm := scanAlive(m0, t.half, func(m int) bool {
				return !t.aggCore[ga1][m].Failed() && !t.aggCore[ga2][m].Failed()
			})
			if t.aggCore[ga1][cm].Failed() || t.aggCore[ga2][cm].Failed() {
				continue
			}
			a, m = ca, cm
			break
		}
		ga1, ga2 := p1*t.half+a, p2*t.half+a
		hops = append(hops,
			Hop{Link: t.edgeAgg[e1][a], From: t.edgeAgg[e1][a].A},
			Hop{Link: t.aggCore[ga1][m], From: t.aggCore[ga1][m].A},
			Hop{Link: t.aggCore[ga2][m], From: t.aggCore[ga2][m].B},
			Hop{Link: t.edgeAgg[e2][a], From: t.edgeAgg[e2][a].B})
	}
	return append(hops, Hop{Link: down, From: down.B})
}

// scanAlive returns the first choice from base (wrapping, n choices) that
// alive accepts, or base itself when none do.
func scanAlive(base, n int, alive func(int) bool) int {
	for d := 0; d < n; d++ {
		if c := (base + d) % n; alive(c) {
			return c
		}
	}
	return base
}

// Uplinks returns every switch-stage link (everything that is not an
// access link), the targets a fabric-kill chaos plan aims at.
func (t *Topology) Uplinks() []*Link { return t.links[len(t.PortLinks):] }

// SpineLinks returns every leaf→spine link attached to spine sp
// (leaf-spine only) — failing them all models a spine switch death.
func (t *Topology) SpineLinks(sp int) []*Link {
	out := make([]*Link, 0, len(t.up))
	for l := range t.up {
		out = append(out, t.up[l][sp])
	}
	return out
}

// CoreLinks returns every aggregation→core link attached to core switch
// core (fat-tree only) — failing them all models a core switch death.
func (t *Topology) CoreLinks(core int) []*Link {
	a, m := core/t.half, core%t.half
	out := make([]*Link, 0, len(t.aggCore)/t.half)
	for p := 0; p < len(t.aggCore)/t.half; p++ {
		out = append(out, t.aggCore[p*t.half+a][m])
	}
	return out
}

// ChargeRoute attaches every hop of a route (wire bandwidth, framing,
// backplanes) to flow f with the given coefficient and accounting tag.
func ChargeRoute(f *fluid.Flow, hops []Hop, coeff float64, tag string) {
	for _, h := range hops {
		h.Link.ChargeWire(f, h.From, coeff, tag)
	}
}

// RouteDelay sums the one-way propagation delay along a route.
func RouteDelay(hops []Hop) sim.Duration {
	var d sim.Duration
	for _, h := range hops {
		d += h.Link.OneWayDelay()
	}
	return d
}

// Oversubscription returns the worst stage's downlink:uplink capacity
// ratio. 1.0 is a full-bisection (rearrangeably non-blocking) fabric;
// above 1, cross-stage traffic can congest even when access links have
// headroom.
func (t *Topology) Oversubscription() float64 {
	switch t.Kind {
	case TopoFatTree:
		half := float64(t.Cfg.K) / 2
		edge := (half * t.Cfg.HostLink.Rate) / (half * t.Cfg.UplinkRate)
		agg := (half * t.Cfg.UplinkRate) / (half * t.Cfg.CoreRate)
		if edge > agg {
			return edge
		}
		return agg
	default:
		return (float64(t.Cfg.HostsPerLeaf) * t.Cfg.HostLink.Rate) /
			(float64(t.Cfg.Spines) * t.Cfg.UplinkRate)
	}
}

// BisectionBandwidth returns the aggregate one-direction capacity of the
// topmost stage cut in half — the classic bisection metric: leaf-spine
// counts every leaf→spine link, a fat-tree every aggregation→core link.
func (t *Topology) BisectionBandwidth() float64 {
	switch t.Kind {
	case TopoFatTree:
		n := float64(len(t.aggCore) * t.half) // k³/4 core links
		return n * t.Cfg.CoreRate / 2
	default:
		return float64(len(t.Leaves)*len(t.Spines)) * t.Cfg.UplinkRate / 2
	}
}

// Describe returns a one-line topology echo for CLI output.
func (t *Topology) Describe() string {
	switch t.Kind {
	case TopoFatTree:
		return fmt.Sprintf("fat-tree k=%d: %d ports on %d edges / %d aggs / %d cores, oversub %.2f, bisection %.0f Gbps, %d links",
			t.Cfg.K, t.Ports(), len(t.Edges), len(t.Aggs), len(t.Cores),
			t.Oversubscription(), t.BisectionBandwidth()*8/1e9, t.LinkCount())
	default:
		return fmt.Sprintf("leaf-spine: %d ports on %d leaves × %d spines, oversub %.2f, bisection %.0f Gbps, %d links",
			t.Ports(), len(t.Leaves), len(t.Spines),
			t.Oversubscription(), t.BisectionBandwidth()*8/1e9, t.LinkCount())
	}
}
