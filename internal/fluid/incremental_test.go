package fluid

import (
	"math"
	"math/rand"
	"testing"
)

// twinNetworks builds two structurally identical random networks from one
// seed: `inc` is driven through Resolve (incremental), `ref` through
// from-scratch Solve, so every mutation can be checked differentially.
func twinNetworks(rng *rand.Rand) (inc, ref *Network, incF, refF []*Flow, incR, refR []*Resource) {
	inc, ref = NewNetwork(), NewNetwork()
	nr := 3 + rng.Intn(18)
	for i := 0; i < nr; i++ {
		c := math.Pow(10, 6+3*rng.Float64()) // 1e6 .. 1e9
		incR = append(incR, inc.AddResource("r", c))
		refR = append(refR, ref.AddResource("r", c))
	}
	nf := 1 + rng.Intn(40)
	for i := 0; i < nf; i++ {
		d := math.Inf(1)
		if rng.Intn(3) == 0 {
			d = math.Pow(10, 4+4*rng.Float64())
		}
		a, b := inc.NewFlow("f", d), ref.NewFlow("f", d)
		w := 0.5 + 2*rng.Float64()
		a.Weight, b.Weight = w, w
		uses := 1 + rng.Intn(6)
		for j := 0; j < uses; j++ {
			ri := rng.Intn(nr)
			coeff := 0.25 + rng.Float64()
			a.Use(incR[ri], coeff)
			b.Use(refR[ri], coeff)
		}
		incF, refF = append(incF, a), append(refF, b)
	}
	return
}

func ratesMatch(t *testing.T, inc, ref *Network, seed, op int) {
	t.Helper()
	if len(inc.flows) != len(ref.flows) {
		t.Fatalf("seed %d op %d: flow populations diverged", seed, op)
	}
	for i := range inc.flows {
		a, b := inc.flows[i].rate, ref.flows[i].rate
		if a == b { // covers +Inf == +Inf
			continue
		}
		if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(b)) {
			t.Fatalf("seed %d op %d: flow %d rate %g (incremental) vs %g (full)",
				seed, op, i, a, b)
		}
	}
	for i := range inc.resources {
		a, b := inc.resources[i].load, ref.resources[i].load
		if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(b)) {
			t.Fatalf("seed %d op %d: resource %d load %g vs %g", seed, op, i, a, b)
		}
	}
}

// TestIncrementalMatchesFullSolve is the randomized differential test for
// the incremental solver: across seeded topologies and mutation sequences
// (demand changes binding and non-binding, weight changes, capacity
// changes, flow arrivals and departures, direct field writes bypassing the
// setters), Resolve must produce rates identical (within 1e-9) to a
// from-scratch Solve on an identical twin network.
func TestIncrementalMatchesFullSolve(t *testing.T) {
	for seed := 0; seed < 25; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		inc, ref, incF, refF, incR, refR := twinNetworks(rng)
		inc.Resolve()
		ref.Solve()
		ratesMatch(t, inc, ref, seed, -1)
		for op := 0; op < 120; op++ {
			switch k := rng.Intn(10); {
			case k < 4: // demand change, mostly non-binding (the fast path)
				i := rng.Intn(len(incF))
				var d float64
				switch rng.Intn(4) {
				case 0: // binding: below the current fair share
					d = incF[i].rate * (0.1 + 0.8*rng.Float64())
				case 1: // same value: pure no-op
					d = incF[i].Demand
				default: // far above any achievable rate
					d = math.Pow(10, 10+2*rng.Float64())
				}
				if d < 0 || math.IsNaN(d) {
					d = 1
				}
				incF[i].Demand = d // direct write: the dirty scan must see it
				refF[i].Demand = d
			case k < 5: // weight change
				i := rng.Intn(len(incF))
				w := 0.5 + 2*rng.Float64()
				incF[i].Weight = w
				refF[i].Weight = w
			case k < 7: // capacity change
				i := rng.Intn(len(incR))
				c := math.Pow(10, 6+3*rng.Float64())
				incR[i].Capacity = c
				refR[i].Capacity = c
			case k < 8 && len(incF) > 1: // departure
				i := rng.Intn(len(incF))
				inc.RemoveFlow(incF[i])
				ref.RemoveFlow(refF[i])
				incF = append(incF[:i], incF[i+1:]...)
				refF = append(refF[:i], refF[i+1:]...)
			default: // arrival
				d := math.Inf(1)
				if rng.Intn(2) == 0 {
					d = math.Pow(10, 4+4*rng.Float64())
				}
				a, b := inc.NewFlow("g", d), ref.NewFlow("g", d)
				ri := rng.Intn(len(incR))
				coeff := 0.25 + rng.Float64()
				a.Use(incR[ri], coeff)
				b.Use(refR[ri], coeff)
				incF, refF = append(incF, a), append(refF, b)
			}
			inc.Resolve()
			ref.Solve()
			ratesMatch(t, inc, ref, seed, op)
		}
		st := inc.Stats()
		if st.Skips == 0 && st.FastResolves == 0 {
			t.Fatalf("seed %d: incremental paths never taken (%+v)", seed, st)
		}
		if st.FullSolves >= 122 {
			t.Fatalf("seed %d: every Resolve ran a full solve (%+v)", seed, st)
		}
	}
}

// TestResolveSkipsWhenUnchanged: a Resolve with no state change must not
// re-run the solver, and must leave rates bit-identical.
func TestResolveSkipsWhenUnchanged(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	f1 := n.NewFlow("a", math.Inf(1))
	f1.Use(r, 1)
	f2 := n.NewFlow("b", 30)
	f2.Use(r, 1)
	if !n.Resolve() {
		t.Fatal("first Resolve must solve")
	}
	before := [2]float64{f1.rate, f2.rate}
	solves := n.Stats().FullSolves
	for i := 0; i < 5; i++ {
		if n.Resolve() {
			t.Fatal("Resolve re-solved with nothing changed")
		}
	}
	if n.Stats().FullSolves != solves || n.Stats().Skips != 5 {
		t.Fatalf("stats = %+v, want %d solves and 5 skips", n.Stats(), solves)
	}
	if f1.rate != before[0] || f2.rate != before[1] {
		t.Fatal("skipped Resolve perturbed rates")
	}
}

// TestResolveFastPathNonBindingDemand: raising or lowering a demand cap
// that stays strictly above the flow's solved rate is absorbed without a
// solve and leaves every rate bit-identical; a binding change re-solves.
func TestResolveFastPathNonBindingDemand(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		f := n.NewFlow("f", 1000) // fair share will be 25 ≪ 1000
		f.Use(r, 1)
		flows = append(flows, f)
	}
	n.Resolve()
	if got := flows[0].rate; got != 25 {
		t.Fatalf("fair share = %v, want 25", got)
	}
	flows[0].Demand = 500 // still ≫ 25: non-binding
	if n.Resolve() {
		t.Fatal("non-binding demand change triggered a full solve")
	}
	if n.Stats().FastResolves != 1 {
		t.Fatalf("stats = %+v, want 1 fast resolve", n.Stats())
	}
	for _, f := range flows {
		if f.rate != 25 {
			t.Fatalf("rate perturbed to %v by fast path", f.rate)
		}
	}
	// And the fast path must not have gone stale: a binding change next.
	flows[0].Demand = 10
	if !n.Resolve() {
		t.Fatal("binding demand change skipped the solver")
	}
	if flows[0].rate != 10 || flows[1].rate != 30 {
		t.Fatalf("rates = %v/%v, want 10/30", flows[0].rate, flows[1].rate)
	}
}

// TestResolveSeesDirectMutation: writes that bypass the Sim setters
// (tcpstack writes Flow.Demand directly; tests write Resource.Capacity)
// are caught by the snapshot scan.
func TestResolveSeesDirectMutation(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	f := n.NewFlow("f", math.Inf(1))
	f.Use(r, 1)
	n.Resolve()
	if f.rate != 100 {
		t.Fatalf("rate = %v, want 100", f.rate)
	}
	r.Capacity = 40
	n.Resolve()
	if f.rate != 40 {
		t.Fatalf("rate = %v after direct capacity write, want 40", f.rate)
	}
	f.Weight = 2 // weight-only change must also be seen
	n.Resolve()
	// Parameter writes now resolve through the bottleneck-subgraph path:
	// the first Resolve is the full solve, the two writes are partials.
	if st := n.Stats(); st.FullSolves+st.PartialSolves != 3 || st.Skips != 0 {
		t.Fatalf("stats = %+v, want the 2 direct writes solved (1 full + 2 partial)", st)
	}
	// A Use added after a solve changes the usage set.
	r2 := n.AddResource("cpu", 10)
	f.Use(r2, 1)
	n.Resolve()
	if f.rate != 10 {
		t.Fatalf("rate = %v after new usage, want CPU-capped 10", f.rate)
	}
}

// TestLegacyFullSolveKnob: the benchmark baseline knob forces a full solve
// on every Resolve but computes identical allocations.
func TestLegacyFullSolveKnob(t *testing.T) {
	LegacyFullSolve = true
	defer func() { LegacyFullSolve = false }()
	n := NewNetwork()
	r := n.AddResource("link", 100)
	f := n.NewFlow("f", math.Inf(1))
	f.Use(r, 1)
	n.Resolve()
	n.Resolve()
	n.Resolve()
	if got := n.Stats().FullSolves; got != 3 {
		t.Fatalf("legacy mode ran %d solves for 3 Resolves, want 3", got)
	}
	if f.rate != 100 {
		t.Fatalf("rate = %v, want 100", f.rate)
	}
}
