package fluid

import (
	"fmt"
	"math"
	"sort"

	"e2edt/internal/sim"
)

// Transfer is a finite (or open-ended) amount of fluid moved through the
// network by one flow. The simulator integrates flow rates over virtual time
// and fires OnComplete when Remaining reaches zero.
type Transfer struct {
	Flow      *Flow
	Remaining float64 // units left; math.Inf(1) for an open-ended stream
	// OnComplete runs when the transfer finishes. It may start new
	// transfers. Nil is allowed.
	OnComplete func(now sim.Time)

	transferred float64
	started     sim.Time
	finished    sim.Time
	active      bool
	// member marks a transfer started with StartMember: it is one member
	// stream of a flow class and progresses at MemberRate, not Rate.
	member bool
	// usageBase is the transferred count at the last ResetUsage, so that
	// accounting can be cleared without disturbing progress.
	usageBase float64
}

// Transferred returns the units moved so far (accurate as of the last
// simulator synchronization; call Sim.Sync first for an up-to-date value).
func (t *Transfer) Transferred() float64 { return t.transferred }

// Active reports whether the transfer is currently in flight.
func (t *Transfer) Active() bool { return t.active }

// Started returns the virtual time the transfer was started.
func (t *Transfer) Started() sim.Time { return t.started }

// Finished returns the virtual time the transfer completed (zero if still
// active).
func (t *Transfer) Finished() sim.Time { return t.finished }

// AccountKey identifies a consumption bucket for resource accounting.
type AccountKey struct {
	Resource *Resource
	Tag      string
}

// Sim couples a fluid Network with a discrete-event engine: it starts and
// completes transfers, keeps flow rates max-min fair as the flow population
// changes, and integrates per-resource, per-tag consumption for CPU and
// bandwidth accounting.
type Sim struct {
	Engine  *sim.Engine
	Network *Network

	// active holds in-flight transfers in insertion order; deterministic
	// iteration keeps float accumulation bit-for-bit reproducible.
	active     []*Transfer
	lastSync   sim.Time
	completion *sim.Event

	// usage holds resource-units consumed by finished transfers, folded
	// once at completion (usage per bucket = Σ coeff × bytes moved).
	// Active transfers contribute lazily through their progress, so the
	// per-event hot path never touches this map.
	usage map[AccountKey]float64
}

// NewSim returns a simulator over a fresh network.
func NewSim(eng *sim.Engine) *Sim {
	return &Sim{
		Engine:  eng,
		Network: NewNetwork(),
		usage:   make(map[AccountKey]float64),
	}
}

// Start activates a transfer. The transfer's flow must already be registered
// with the network (Sim.NewFlow does this).
func (s *Sim) Start(t *Transfer) {
	if t.Flow == nil {
		panic("fluid: transfer without flow")
	}
	if t.active {
		panic(fmt.Sprintf("fluid: transfer %s started twice", t.Flow.Name))
	}
	if t.Remaining <= 0 && !math.IsInf(t.Remaining, 1) {
		panic(fmt.Sprintf("fluid: transfer %s with non-positive size", t.Flow.Name))
	}
	s.Sync()
	t.active = true
	t.started = s.Engine.Now()
	s.active = append(s.active, t)
	s.reschedule()
	s.Engine.Tracef("fluid", "start %s remaining=%g rate=%g", t.Flow.Name, t.Remaining, t.Flow.rate)
}

// StartMember activates a transfer as one member stream of the transfer's
// flow class: the class's member count tracks the number of attached member
// transfers, and the transfer progresses at the per-member disaggregated
// rate. When the last member finishes (or is cancelled) the flow is removed
// from the network, exactly like a plain Start'ed flow.
func (s *Sim) StartMember(t *Transfer) {
	if t.Flow == nil {
		panic("fluid: transfer without flow")
	}
	if t.active {
		panic(fmt.Sprintf("fluid: transfer %s started twice", t.Flow.Name))
	}
	if t.Remaining <= 0 && !math.IsInf(t.Remaining, 1) {
		panic(fmt.Sprintf("fluid: transfer %s with non-positive size", t.Flow.Name))
	}
	s.Sync()
	f := t.Flow
	f.attached++
	if f.attached > 1 {
		s.Network.SetMembers(f, f.attached)
	}
	t.member = true
	t.active = true
	t.started = s.Engine.Now()
	s.active = append(s.active, t)
	s.reschedule()
	s.Engine.Tracef("fluid", "start-member %s n=%d remaining=%g rate=%g",
		f.Name, f.members, t.Remaining, f.memberRate)
}

// NewFlow registers a flow in the simulator's network.
func (s *Sim) NewFlow(name string, demand float64) *Flow {
	return s.Network.NewFlow(name, demand)
}

// NewFlowClass registers a flow class of members identical streams.
func (s *Sim) NewFlowClass(name string, demand float64, members int) *Flow {
	return s.Network.NewFlowClass(name, demand, members)
}

// AddResource registers a resource in the simulator's network.
func (s *Sim) AddResource(name string, capacity float64) *Resource {
	return s.Network.AddResource(name, capacity)
}

// RemoveResource retires a resource no registered flow crosses any more.
// Accumulated usage accounting for it is preserved.
func (s *Sim) RemoveResource(r *Resource) {
	s.Network.RemoveResource(r)
}

// SetDemand changes a flow's demand cap and re-solves.
func (s *Sim) SetDemand(f *Flow, demand float64) {
	if demand < 0 || math.IsNaN(demand) {
		panic(fmt.Sprintf("fluid: invalid demand %v", demand))
	}
	s.Sync()
	f.Demand = demand
	s.reschedule()
}

// SetWeight changes a flow's fair-share weight and re-solves.
func (s *Sim) SetWeight(f *Flow, weight float64) {
	if weight <= 0 || math.IsNaN(weight) {
		panic(fmt.Sprintf("fluid: invalid weight %v", weight))
	}
	s.Sync()
	f.Weight = weight
	s.reschedule()
}

// SetMembers changes a class's stream multiplicity and re-solves.
func (s *Sim) SetMembers(f *Flow, members int) {
	s.Sync()
	s.Network.SetMembers(f, members)
	s.reschedule()
}

// SetCapacity changes a resource's capacity mid-run (e.g. a thermally
// throttled SSD) and re-solves.
func (s *Sim) SetCapacity(r *Resource, capacity float64) {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fluid: invalid capacity %v", capacity))
	}
	s.Sync()
	r.Capacity = capacity
	s.reschedule()
	s.Engine.Tracef("fluid", "capacity %s=%g", r.Name, capacity)
}

// Cancel aborts an active transfer without firing OnComplete.
func (s *Sim) Cancel(t *Transfer) {
	if !t.active {
		return
	}
	s.Sync()
	s.fold(t)
	t.active = false
	t.finished = s.Engine.Now()
	s.removeActive(t)
	s.detach(t)
	s.reschedule()
	s.Engine.Tracef("fluid", "cancel %s transferred=%g", t.Flow.Name, t.transferred)
}

// detach releases a finished transfer's hold on its flow: member transfers
// shrink the class (removing the flow when the last member leaves), plain
// transfers remove the flow outright.
func (s *Sim) detach(t *Transfer) {
	f := t.Flow
	if !t.member {
		s.Network.RemoveFlow(f)
		return
	}
	f.attached--
	if f.attached <= 0 {
		s.Network.RemoveFlow(f)
		return
	}
	s.Network.SetMembers(f, f.attached)
}

// rateOf returns the rate at which the transfer moves fluid: the per-member
// rate for member transfers, the aggregate class rate otherwise.
func (s *Sim) rateOf(t *Transfer) float64 {
	if t.member {
		return t.Flow.memberRate
	}
	return t.Flow.rate
}

// removeActive drops t from the ordered active list.
func (s *Sim) removeActive(t *Transfer) {
	for i, a := range s.active {
		if a == t {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// Sync accrues progress and accounting up to the current virtual time.
// It must be called before reading Transferred or Usage mid-run.
func (s *Sim) Sync() {
	now := s.Engine.Now()
	dt := float64(now - s.lastSync)
	if dt < 0 {
		panic("fluid: time went backwards")
	}
	if dt > 0 {
		for _, t := range s.active {
			moved := s.rateOf(t) * dt
			t.transferred += moved
			if !math.IsInf(t.Remaining, 1) {
				t.Remaining -= moved
				if t.Remaining < 0 {
					t.Remaining = 0
				}
			}
		}
	}
	s.lastSync = now
}

// fold moves a finished (or reset) transfer's consumption into the usage
// map: usage per bucket = coeff × bytes moved since the last fold.
func (s *Sim) fold(t *Transfer) {
	moved := t.transferred - t.usageBase
	if moved <= 0 {
		return
	}
	for _, u := range t.Flow.Uses {
		s.usage[AccountKey{u.Resource, u.Tag}] += u.Coeff * moved
	}
	t.usageBase = t.transferred
}

// Usage returns accumulated resource-units for a resource/tag bucket,
// including the lazy contribution of still-active transfers.
func (s *Sim) Usage(r *Resource, tag string) float64 {
	total := s.usage[AccountKey{r, tag}]
	for _, t := range s.active {
		moved := t.transferred - t.usageBase
		if moved <= 0 {
			continue
		}
		for _, u := range t.Flow.Uses {
			if u.Resource == r && u.Tag == tag {
				total += u.Coeff * moved
			}
		}
	}
	return total
}

// UsageByTag sums accumulated consumption per tag across a set of resources
// (pass nil for all resources), including active transfers.
func (s *Sim) UsageByTag(filter func(*Resource) bool) map[string]float64 {
	out := make(map[string]float64)
	// Sum the folded map in a stable order so reports are reproducible.
	keys := make([]AccountKey, 0, len(s.usage))
	for k := range s.usage {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Resource.index != keys[j].Resource.index {
			return keys[i].Resource.index < keys[j].Resource.index
		}
		return keys[i].Tag < keys[j].Tag
	})
	for _, k := range keys {
		if filter == nil || filter(k.Resource) {
			out[k.Tag] += s.usage[k]
		}
	}
	for _, t := range s.active {
		moved := t.transferred - t.usageBase
		if moved <= 0 {
			continue
		}
		for _, u := range t.Flow.Uses {
			if filter == nil || filter(u.Resource) {
				out[u.Tag] += u.Coeff * moved
			}
		}
	}
	return out
}

// ResetUsage clears accumulated accounting (after a warm-up period, for
// example). Progress on transfers is unaffected.
func (s *Sim) ResetUsage() {
	s.Sync()
	s.usage = make(map[AccountKey]float64)
	for _, t := range s.active {
		t.usageBase = t.transferred
	}
}

// ActiveTransfers returns the number of in-flight transfers.
func (s *Sim) ActiveTransfers() int { return len(s.active) }

// Refresh accrues progress, forces a from-scratch re-solve and reschedules
// the next completion event. It is the entry point for callers that edited
// flow Uses in place (re-homed buffers, re-pinned threads): those edits are
// invisible to the incremental dirty scan, so the network must be
// invalidated before rates are recomputed.
func (s *Sim) Refresh() {
	s.Sync()
	s.Network.Invalidate()
	s.reschedule()
}

// Reschedule accrues progress, propagates pending parameter writes (demands,
// weights, member counts, capacities — anything the incremental dirty scan
// can see) and re-arms the next completion event. Unlike Refresh it does not
// invalidate the network, so batched fair-share weight updates resolve
// through the bottleneck-subgraph path instead of a full solve.
func (s *Sim) Reschedule() {
	s.Sync()
	s.reschedule()
}

// reschedule re-solves rates (when something actually changed — see
// Network.Resolve) and schedules the next completion event. Callers must
// Sync first.
func (s *Sim) reschedule() {
	s.Network.Resolve()
	if s.completion != nil {
		s.Engine.Cancel(s.completion)
		s.completion = nil
	}
	next := math.Inf(1)
	for _, t := range s.active {
		if math.IsInf(t.Remaining, 1) {
			continue
		}
		r := s.rateOf(t)
		if r <= 0 {
			continue // stalled; a future topology change will wake it
		}
		eta := t.Remaining / r
		if eta < next {
			next = eta
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	if next < 0 {
		next = 0
	}
	s.completion = s.Engine.Schedule(sim.Duration(next), s.complete)
}

// complete finishes every transfer whose Remaining has reached zero.
func (s *Sim) complete() {
	s.Sync()
	s.completion = nil
	var done []*Transfer
	for _, t := range s.active {
		if !math.IsInf(t.Remaining, 1) && t.Remaining <= completionSlack(t) {
			done = append(done, t)
		}
	}
	if len(done) == 0 {
		// Floating-point residue can leave the triggering transfer a hair
		// above the slack threshold; force-complete the nearest one so the
		// simulation cannot spin on zero-length events.
		var nearest *Transfer
		best := math.Inf(1)
		for _, t := range s.active {
			r := s.rateOf(t)
			if math.IsInf(t.Remaining, 1) || r <= 0 {
				continue
			}
			if eta := t.Remaining / r; eta < best {
				best = eta
				nearest = t
			}
		}
		if nearest != nil && best <= 1e-6 {
			nearest.transferred += nearest.Remaining
			nearest.Remaining = 0
			done = append(done, nearest)
		}
	}
	for _, t := range done {
		t.Remaining = 0
		s.fold(t)
		t.active = false
		t.finished = s.Engine.Now()
		s.removeActive(t)
		s.detach(t)
		s.Engine.Tracef("fluid", "complete %s transferred=%g", t.Flow.Name, t.transferred)
	}
	s.reschedule()
	for _, t := range done {
		if t.OnComplete != nil {
			t.OnComplete(s.Engine.Now())
		}
	}
}

// completionSlack tolerates floating-point residue proportional to the
// transfer's progress.
func completionSlack(t *Transfer) float64 {
	return 1e-9 * math.Max(1, t.transferred)
}
