package fluid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleFlowSingleResource(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	f := n.NewFlow("f", math.Inf(1))
	f.Use(r, 1)
	n.Solve()
	if !almostEqual(f.Rate(), 100, 1e-9) {
		t.Fatalf("rate = %v, want 100", f.Rate())
	}
	if !almostEqual(r.Load(), 100, 1e-9) {
		t.Fatalf("load = %v, want 100", r.Load())
	}
	if !almostEqual(r.Utilization(), 1, 1e-9) {
		t.Fatalf("utilization = %v, want 1", r.Utilization())
	}
}

func TestTwoFlowsShareEqually(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	f1 := n.NewFlow("f1", math.Inf(1))
	f1.Use(r, 1)
	f2 := n.NewFlow("f2", math.Inf(1))
	f2.Use(r, 1)
	n.Solve()
	if !almostEqual(f1.Rate(), 50, 1e-9) || !almostEqual(f2.Rate(), 50, 1e-9) {
		t.Fatalf("rates = %v, %v, want 50, 50", f1.Rate(), f2.Rate())
	}
}

func TestDemandCapRedistributes(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	f1 := n.NewFlow("f1", 20)
	f1.Use(r, 1)
	f2 := n.NewFlow("f2", math.Inf(1))
	f2.Use(r, 1)
	n.Solve()
	if !almostEqual(f1.Rate(), 20, 1e-9) {
		t.Fatalf("f1 rate = %v, want 20 (demand-capped)", f1.Rate())
	}
	if !almostEqual(f2.Rate(), 80, 1e-9) {
		t.Fatalf("f2 rate = %v, want 80 (rest of capacity)", f2.Rate())
	}
}

func TestCoefficientScalesConsumption(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("mem", 100)
	// Flow crosses the memory controller 3 times per byte (TCP copies).
	f := n.NewFlow("tcp", math.Inf(1))
	f.Use(r, 3)
	n.Solve()
	if !almostEqual(f.Rate(), 100.0/3, 1e-9) {
		t.Fatalf("rate = %v, want %v", f.Rate(), 100.0/3)
	}
}

func TestMultiResourceBottleneck(t *testing.T) {
	n := NewNetwork()
	wide := n.AddResource("wide", 1000)
	narrow := n.AddResource("narrow", 10)
	f := n.NewFlow("f", math.Inf(1))
	f.Use(wide, 1)
	f.Use(narrow, 1)
	n.Solve()
	if !almostEqual(f.Rate(), 10, 1e-9) {
		t.Fatalf("rate = %v, want 10 (narrow bottleneck)", f.Rate())
	}
}

func TestParkingLotTopology(t *testing.T) {
	// Classic max-min scenario: one long flow through two links, one short
	// flow on each link. Max-min gives every flow half of each link.
	n := NewNetwork()
	l1 := n.AddResource("l1", 100)
	l2 := n.AddResource("l2", 100)
	long := n.NewFlow("long", math.Inf(1))
	long.Use(l1, 1)
	long.Use(l2, 1)
	s1 := n.NewFlow("s1", math.Inf(1))
	s1.Use(l1, 1)
	s2 := n.NewFlow("s2", math.Inf(1))
	s2.Use(l2, 1)
	n.Solve()
	for _, f := range []*Flow{long, s1, s2} {
		if !almostEqual(f.Rate(), 50, 1e-9) {
			t.Fatalf("%s rate = %v, want 50", f.Name, f.Rate())
		}
	}
}

func TestUnevenBottlenecksMaxMin(t *testing.T) {
	// long crosses a 30-capacity and a 100-capacity link; short only the
	// 100 one. long is limited to 15? No: max-min: on l1 long shares with
	// s1: 15 each; on l2 long frozen at 15 leaves 85 for s2.
	n := NewNetwork()
	l1 := n.AddResource("l1", 30)
	l2 := n.AddResource("l2", 100)
	long := n.NewFlow("long", math.Inf(1))
	long.Use(l1, 1)
	long.Use(l2, 1)
	s1 := n.NewFlow("s1", math.Inf(1))
	s1.Use(l1, 1)
	s2 := n.NewFlow("s2", math.Inf(1))
	s2.Use(l2, 1)
	n.Solve()
	if !almostEqual(long.Rate(), 15, 1e-9) {
		t.Fatalf("long = %v, want 15", long.Rate())
	}
	if !almostEqual(s1.Rate(), 15, 1e-9) {
		t.Fatalf("s1 = %v, want 15", s1.Rate())
	}
	if !almostEqual(s2.Rate(), 85, 1e-9) {
		t.Fatalf("s2 = %v, want 85", s2.Rate())
	}
}

func TestWeightedSharing(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 90)
	f1 := n.NewFlow("f1", math.Inf(1))
	f1.Weight = 2
	f1.Use(r, 1)
	f2 := n.NewFlow("f2", math.Inf(1))
	f2.Weight = 1
	f2.Use(r, 1)
	n.Solve()
	if !almostEqual(f1.Rate(), 60, 1e-9) || !almostEqual(f2.Rate(), 30, 1e-9) {
		t.Fatalf("rates = %v, %v, want 60, 30", f1.Rate(), f2.Rate())
	}
}

func TestZeroDemandFlowGetsZero(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	f1 := n.NewFlow("idle", 0)
	f1.Use(r, 1)
	f2 := n.NewFlow("busy", math.Inf(1))
	f2.Use(r, 1)
	n.Solve()
	if f1.Rate() != 0 {
		t.Fatalf("idle rate = %v, want 0", f1.Rate())
	}
	if !almostEqual(f2.Rate(), 100, 1e-9) {
		t.Fatalf("busy rate = %v, want 100", f2.Rate())
	}
}

func TestZeroCapacityResource(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("dead", 0)
	f := n.NewFlow("f", math.Inf(1))
	f.Use(r, 1)
	n.Solve()
	if f.Rate() != 0 {
		t.Fatalf("rate = %v, want 0 through zero-capacity resource", f.Rate())
	}
}

func TestFlowWithNoResources(t *testing.T) {
	n := NewNetwork()
	f := n.NewFlow("free", 42)
	n.Solve()
	if !almostEqual(f.Rate(), 42, 1e-9) {
		t.Fatalf("rate = %v, want demand 42", f.Rate())
	}
}

func TestRemoveFlowFreesCapacity(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	f1 := n.NewFlow("f1", math.Inf(1))
	f1.Use(r, 1)
	f2 := n.NewFlow("f2", math.Inf(1))
	f2.Use(r, 1)
	n.Solve()
	n.RemoveFlow(f1)
	n.Solve()
	if !almostEqual(f2.Rate(), 100, 1e-9) {
		t.Fatalf("f2 rate = %v, want 100 after removal", f2.Rate())
	}
	if f1.Rate() != 0 {
		t.Fatalf("removed flow rate = %v, want 0", f1.Rate())
	}
}

func TestUseIgnoresNonPositiveCoeff(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	f := n.NewFlow("f", 10)
	f.Use(r, 0)
	f.Use(r, -1)
	if len(f.Uses) != 0 {
		t.Fatalf("non-positive coefficients should be dropped, got %d uses", len(f.Uses))
	}
}

func TestSolveIdempotent(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	f1 := n.NewFlow("f1", 30)
	f1.Use(r, 1)
	f2 := n.NewFlow("f2", math.Inf(1))
	f2.Use(r, 2)
	n.Solve()
	r1, r2 := f1.Rate(), f2.Rate()
	n.Solve()
	if f1.Rate() != r1 || f2.Rate() != r2 {
		t.Fatalf("Solve not idempotent: (%v,%v) then (%v,%v)", r1, r2, f1.Rate(), f2.Rate())
	}
}

// randomNetwork builds a reproducible random topology for property tests.
func randomNetwork(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	n := NewNetwork()
	nr := 1 + rng.Intn(6)
	resources := make([]*Resource, nr)
	for i := range resources {
		resources[i] = n.AddResource("r", 1+rng.Float64()*1000)
	}
	nf := 1 + rng.Intn(10)
	for i := 0; i < nf; i++ {
		demand := math.Inf(1)
		if rng.Intn(2) == 0 {
			demand = rng.Float64() * 500
		}
		f := n.NewFlow("f", demand)
		f.Weight = 0.5 + rng.Float64()*2
		uses := 1 + rng.Intn(nr)
		perm := rng.Perm(nr)
		for j := 0; j < uses; j++ {
			f.Use(resources[perm[j]], 0.1+rng.Float64()*3)
		}
	}
	return n
}

// Property: no resource is ever loaded beyond capacity, all rates are
// non-negative and within demand.
func TestSolvePropertyFeasible(t *testing.T) {
	check := func(seed int64) bool {
		n := randomNetwork(seed)
		n.Solve()
		for _, r := range n.Resources() {
			if r.Load() > r.Capacity*(1+1e-6)+1e-6 {
				t.Logf("seed %d: resource overloaded: load %v > cap %v", seed, r.Load(), r.Capacity)
				return false
			}
		}
		for _, f := range n.Flows() {
			if f.Rate() < 0 {
				t.Logf("seed %d: negative rate %v", seed, f.Rate())
				return false
			}
			if !math.IsInf(f.Demand, 1) && f.Rate() > f.Demand*(1+1e-6)+1e-9 {
				t.Logf("seed %d: rate %v exceeds demand %v", seed, f.Rate(), f.Demand)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the allocation is Pareto-efficient for unbounded flows — every
// flow below its demand crosses at least one (nearly) saturated resource.
func TestSolvePropertyEfficient(t *testing.T) {
	check := func(seed int64) bool {
		n := randomNetwork(seed)
		n.Solve()
		for _, f := range n.Flows() {
			if !math.IsInf(f.Demand, 1) && f.Rate() >= f.Demand*(1-1e-6) {
				continue // demand-satisfied
			}
			if len(f.Uses) == 0 {
				continue
			}
			saturated := false
			for _, u := range f.Uses {
				if u.Resource.Load() >= u.Resource.Capacity*(1-1e-6)-1e-9 {
					saturated = true
					break
				}
			}
			if !saturated {
				t.Logf("seed %d: flow below demand with no saturated resource (rate %v)", seed, f.Rate())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-min fairness — you cannot raise one flow without lowering a
// flow of smaller-or-equal normalized rate. Spot-check: for each saturated
// resource, all unfrozen... simplified: flows sharing one common single
// resource with equal weights and unbounded demand get equal rates.
func TestSolvePropertySymmetry(t *testing.T) {
	check := func(nFlowsRaw uint8, capRaw uint16) bool {
		nf := int(nFlowsRaw%8) + 1
		capacity := float64(capRaw%10000) + 1
		n := NewNetwork()
		r := n.AddResource("link", capacity)
		flows := make([]*Flow, nf)
		for i := range flows {
			flows[i] = n.NewFlow("f", math.Inf(1))
			flows[i].Use(r, 1)
		}
		n.Solve()
		want := capacity / float64(nf)
		for _, f := range flows {
			if !almostEqual(f.Rate(), want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	n := NewNetwork()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative capacity")
		}
	}()
	n.AddResource("bad", -1)
}

func TestInvalidDemandPanics(t *testing.T) {
	n := NewNetwork()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative demand")
		}
	}()
	n.NewFlow("bad", -5)
}

func TestNonPositiveWeightPanics(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 10)
	f := n.NewFlow("f", math.Inf(1))
	f.Use(r, 1)
	f.Weight = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero weight")
		}
	}()
	n.Solve()
}

// Property: formal (weighted) max-min fairness via the bottleneck
// condition — an allocation is max-min fair iff every flow below its
// demand has a bottleneck resource: a saturated resource it uses on which
// no other flow has a strictly higher normalized rate.
func TestSolvePropertyBottleneckCondition(t *testing.T) {
	check := func(seed int64) bool {
		n := randomNetwork(seed)
		n.Solve()
		const tol = 1e-6
		for _, f := range n.Flows() {
			if len(f.Uses) == 0 {
				continue
			}
			if !math.IsInf(f.Demand, 1) && f.Rate() >= f.Demand*(1-tol) {
				continue // demand-satisfied
			}
			norm := f.Rate() / f.Weight
			hasBottleneck := false
			for _, u := range f.Uses {
				r := u.Resource
				if r.Load() < r.Capacity*(1-tol)-1e-9 {
					continue // not saturated
				}
				dominated := false
				for _, g := range n.Flows() {
					if g == f || !flowUsesRes(g, r) {
						continue
					}
					if g.Rate()/g.Weight > norm*(1+1e-3)+1e-9 {
						dominated = true
						break
					}
				}
				if !dominated {
					hasBottleneck = true
					break
				}
			}
			if !hasBottleneck {
				t.Logf("seed %d: flow rate=%v weight=%v lacks a bottleneck", seed, f.Rate(), f.Weight)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func flowUsesRes(f *Flow, r *Resource) bool {
	for _, u := range f.Uses {
		if u.Resource == r {
			return true
		}
	}
	return false
}

// Property: removing a flow never lowers the minimum normalized rate of
// the remaining flows. (Note that per-flow monotonicity is *false* for
// multi-resource max-min: freeing one bottleneck can let a neighbour grow
// into a third flow's bottleneck — but the water-filling floor can only
// rise, and demand-frozen flows keep their demand.)
func TestSolvePropertyRemovalRaisesFloor(t *testing.T) {
	check := func(seed int64) bool {
		n := randomNetwork(seed)
		n.Solve()
		flows := append([]*Flow(nil), n.Flows()...)
		if len(flows) < 2 {
			return true
		}
		minNorm := func() float64 {
			min := math.Inf(1)
			for _, f := range n.Flows() {
				if v := f.Rate() / f.Weight; v < min {
					min = v
				}
			}
			return min
		}
		idx := int(seed % int64(len(flows)))
		if idx < 0 {
			idx += len(flows)
		}
		before := minNorm()
		// Exclude the victim from the "before" floor if it defined it.
		victim := flows[idx]
		beforeOthers := math.Inf(1)
		for _, f := range flows {
			if f == victim {
				continue
			}
			if v := f.Rate() / f.Weight; v < beforeOthers {
				beforeOthers = v
			}
		}
		_ = before
		n.RemoveFlow(victim)
		n.Solve()
		after := minNorm()
		if after < beforeOthers*(1-1e-6)-1e-9 {
			t.Logf("seed %d: floor fell from %v to %v after removal", seed, beforeOthers, after)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Utilization must report the last-solved state per resource, in
// registration order: solved load and share, plus the offered demand
// (coefficient-weighted, +Inf when any user is unbounded).
func TestUtilizationSnapshot(t *testing.T) {
	n := NewNetwork()
	a := n.AddResource("a", 100)
	b := n.AddResource("b", 200)
	n.AddResource("idle", 50)
	f1 := n.NewFlow("f1", 30) // demand-capped
	f1.Use(a, 1)
	f2 := n.NewFlow("f2", math.Inf(1)) // fills what f1 leaves
	f2.Use(a, 1)
	f2.Use(b, 2)
	n.Solve()

	us := n.Utilization()
	if len(us) != 3 {
		t.Fatalf("got %d resources, want 3", len(us))
	}
	if us[0].Name != "a" || us[1].Name != "b" || us[2].Name != "idle" {
		t.Fatalf("not registration order: %v %v %v", us[0].Name, us[1].Name, us[2].Name)
	}
	// a carries f1 (30) + f2 (70): full.
	if !almostEqual(us[0].Load, 100, 1e-9) || !almostEqual(us[0].Share, 1, 1e-9) {
		t.Fatalf("a: load=%v share=%v, want 100, 1", us[0].Load, us[0].Share)
	}
	if !us[0].Saturated() {
		t.Fatal("a should be saturated")
	}
	// b carries 2×f2 = 140 of 200.
	if !almostEqual(us[1].Load, 140, 1e-9) || !almostEqual(us[1].Share, 0.7, 1e-9) {
		t.Fatalf("b: load=%v share=%v, want 140, 0.7", us[1].Load, us[1].Share)
	}
	if us[1].Saturated() {
		t.Fatal("b must not read as saturated at 70%")
	}
	// Offered demand: a sees 30 from f1 plus unbounded f2.
	if !math.IsInf(us[0].Demand, 1) || !math.IsInf(us[1].Demand, 1) {
		t.Fatalf("a/b demand = %v/%v, want +Inf (f2 unbounded)", us[0].Demand, us[1].Demand)
	}
	if us[2].Load != 0 || us[2].Demand != 0 || us[2].Share != 0 {
		t.Fatalf("idle resource should read zero, got %+v", us[2])
	}

	// Bounded-only demand stays finite and coefficient-weighted.
	f2.Demand = 10
	n.Solve()
	us = n.Utilization()
	if !almostEqual(us[0].Demand, 40, 1e-9) { // 30 + 10
		t.Fatalf("a demand = %v, want 40", us[0].Demand)
	}
	if !almostEqual(us[1].Demand, 20, 1e-9) { // 2 × 10
		t.Fatalf("b demand = %v, want 20", us[1].Demand)
	}
}

// Utilization reads the snapshot without re-solving: a mutated-but-unsolved
// network still reports the previous allocation.
func TestUtilizationDoesNotResolve(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("r", 100)
	f := n.NewFlow("f", math.Inf(1))
	f.Use(r, 1)
	n.Solve()
	f.Demand = 10 // not yet solved
	if got := n.Utilization()[0].Load; !almostEqual(got, 100, 1e-9) {
		t.Fatalf("load = %v, want the stale 100 until the next Solve", got)
	}
	n.Solve()
	if got := n.Utilization()[0].Load; !almostEqual(got, 10, 1e-9) {
		t.Fatalf("load after re-solve = %v, want 10", got)
	}
}
