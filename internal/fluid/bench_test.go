package fluid

import (
	"math"
	"testing"

	"e2edt/internal/sim"
)

// benchNetwork builds a topology similar in scale to the full LAN system:
// ~200 resources, nFlows flows with ~12 usages each.
func benchNetwork(nFlows int) *Network {
	n := NewNetwork()
	resources := make([]*Resource, 200)
	for i := range resources {
		resources[i] = n.AddResource("r", 1e9+float64(i))
	}
	for i := 0; i < nFlows; i++ {
		f := n.NewFlow("f", math.Inf(1))
		for j := 0; j < 12; j++ {
			f.Use(resources[(i*13+j*17)%len(resources)], 0.2+float64(j)*0.1)
		}
	}
	return n
}

func BenchmarkSolve8Flows(b *testing.B) {
	n := benchNetwork(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Solve()
	}
}

func BenchmarkSolve64Flows(b *testing.B) {
	n := benchNetwork(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Solve()
	}
}

// benchChurnSim builds a Sim carrying nFlows concurrent open-ended
// transfers across a 64-resource mesh, the topology shape of the scaling
// benchmarks in cmd/benchreport.
func benchChurnSim(nFlows int) (*sim.Engine, *Sim, []*Flow) {
	eng := sim.NewEngine()
	s := NewSim(eng)
	resources := make([]*Resource, 64)
	for i := range resources {
		resources[i] = s.AddResource("r", 1e9+float64(i))
	}
	flows := make([]*Flow, nFlows)
	for i := range flows {
		f := s.NewFlow("f", 2e9)
		for j := 0; j < 8; j++ {
			f.Use(resources[(i*13+j*17)%len(resources)], 0.2+float64(j)*0.1)
		}
		flows[i] = f
		s.Start(&Transfer{Flow: f, Remaining: math.Inf(1)})
	}
	return eng, s, flows
}

// BenchmarkDemandChurn1kFlows measures one credit-loop style demand update
// against 1000 concurrent flows — the Sim.reschedule hot path the
// incremental solver optimizes.
func BenchmarkDemandChurn1kFlows(b *testing.B) {
	_, s, flows := benchChurnSim(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := flows[i%len(flows)]
		if i%2 == 0 {
			s.SetDemand(f, 3e9)
		} else {
			s.SetDemand(f, 2e9)
		}
	}
}

func BenchmarkTransferChurn(b *testing.B) {
	// Start/complete cycles exercise the event-integration hot path.
	eng := sim.NewEngine()
	s := NewSim(eng)
	link := s.AddResource("link", 1e9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := s.NewFlow("f", math.Inf(1))
		f.Use(link, 1)
		s.Start(&Transfer{Flow: f, Remaining: 1e6})
		eng.Run()
	}
}
