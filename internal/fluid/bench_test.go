package fluid

import (
	"math"
	"testing"

	"e2edt/internal/sim"
)

// benchNetwork builds a topology similar in scale to the full LAN system:
// ~200 resources, nFlows flows with ~12 usages each.
func benchNetwork(nFlows int) *Network {
	n := NewNetwork()
	resources := make([]*Resource, 200)
	for i := range resources {
		resources[i] = n.AddResource("r", 1e9+float64(i))
	}
	for i := 0; i < nFlows; i++ {
		f := n.NewFlow("f", math.Inf(1))
		for j := 0; j < 12; j++ {
			f.Use(resources[(i*13+j*17)%len(resources)], 0.2+float64(j)*0.1)
		}
	}
	return n
}

func BenchmarkSolve8Flows(b *testing.B) {
	n := benchNetwork(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Solve()
	}
}

func BenchmarkSolve64Flows(b *testing.B) {
	n := benchNetwork(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Solve()
	}
}

func BenchmarkTransferChurn(b *testing.B) {
	// Start/complete cycles exercise the event-integration hot path.
	eng := sim.NewEngine()
	s := NewSim(eng)
	link := s.AddResource("link", 1e9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := s.NewFlow("f", math.Inf(1))
		f.Use(link, 1)
		s.Start(&Transfer{Flow: f, Remaining: 1e6})
		eng.Run()
	}
}
