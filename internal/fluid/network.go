// Package fluid implements a generalized max-min fair fluid-flow model.
//
// Subsystem models in this repository (memory controllers, interconnect
// links, NICs, CPU cores, storage devices) are expressed as resources with a
// finite capacity. Data streams are flows that consume capacity on every
// resource they cross, scaled by a per-resource coefficient: a flow running
// at rate R consumes coeff×R on each resource it uses. Coefficients encode
// data-path facts such as "a TCP send crosses the source memory controller
// three times (application read + copy read + copy write)" or "this thread
// spends k core-seconds per byte of protocol processing".
//
// Solve performs weighted progressive filling: all unfrozen flows rise
// proportionally to their weights until a resource saturates or a flow hits
// its demand cap, those flows freeze, and filling continues. The result is
// the weighted max-min fair allocation, the standard fluid approximation for
// bandwidth sharing in networks and memory systems.
package fluid

import (
	"fmt"
	"math"
)

// Resource is a capacity-constrained component: a link, a memory controller,
// a CPU core, a storage device. Capacity is in resource units per second
// (bytes/s for bandwidth-like resources, core-seconds/s — i.e. 1.0 — for a
// CPU core).
type Resource struct {
	Name     string
	Capacity float64

	// load is the solved aggregate consumption, maintained by Solve.
	load float64
	// index is the resource's position in its network, for solver arrays.
	index int
}

// Load returns the aggregate consumption on the resource from the most
// recent Solve, in resource units per second.
func (r *Resource) Load() float64 { return r.load }

// Utilization returns Load/Capacity, or 0 for zero-capacity resources.
func (r *Resource) Utilization() float64 {
	if r.Capacity <= 0 {
		return 0
	}
	return r.load / r.Capacity
}

// Usage binds a flow to a resource: the flow consumes Coeff×rate on
// Resource. Tag labels the consumption for accounting (e.g. "sys", "copy",
// "user") and may be empty.
type Usage struct {
	Resource *Resource
	Coeff    float64
	Tag      string
}

// Flow is a fluid stream. Rate is computed by Network.Solve.
type Flow struct {
	Name   string
	Demand float64 // upper bound on rate; math.Inf(1) if unbounded
	Weight float64 // share weight for max-min fairness; must be > 0
	Uses   []Usage

	rate   float64
	frozen bool
}

// Rate returns the solved rate in flow units (bytes) per second.
func (f *Flow) Rate() float64 { return f.rate }

// Use adds a resource the flow consumes, with the given coefficient.
// Non-positive coefficients are ignored: they denote "does not touch".
func (f *Flow) Use(r *Resource, coeff float64) *Flow {
	return f.UseTagged(r, coeff, "")
}

// UseTagged adds a resource consumption labelled with an accounting tag.
func (f *Flow) UseTagged(r *Resource, coeff float64, tag string) *Flow {
	if r == nil {
		panic("fluid: Use with nil resource")
	}
	if coeff > 0 {
		f.Uses = append(f.Uses, Usage{Resource: r, Coeff: coeff, Tag: tag})
	}
	return f
}

// LegacyFullSolve, when set before NewNetwork, makes Resolve behave like
// the pre-incremental solver: every call runs a from-scratch Solve with
// freshly allocated scratch state. It exists so the benchmark harness
// (cmd/benchreport) and the solver-equivalence tests can compare the
// optimized and unoptimized paths within one binary. Production code never
// sets it.
var LegacyFullSolve bool

// SolverStats counts how Resolve calls were satisfied.
type SolverStats struct {
	// FullSolves is the number of complete progressive-filling runs.
	FullSolves uint64
	// FastResolves counts single-flow demand updates absorbed without a
	// solve because the demand cap was non-binding before and after.
	FastResolves uint64
	// Skips counts Resolve calls where nothing had changed since the last
	// Solve.
	Skips uint64
}

// Network is a set of resources and the flows crossing them.
type Network struct {
	resources []*Resource
	flows     []*Flow

	// residual and sumW are solver scratch, reused across Solve calls so
	// the hot path does not allocate.
	residual []float64
	sumW     []float64

	// Snapshot of every solver input at the last Solve. Resolve diffs the
	// live state against it to decide whether a re-solve is needed, which
	// also catches direct writes to Flow.Demand/Weight and
	// Resource.Capacity that bypass the Sim setters.
	solved     bool
	snapFlows  []*Flow
	snapDemand []float64
	snapWeight []float64
	snapUses   []int // len(Flow.Uses); catches Use() after a solve
	snapRes    []*Resource
	snapCap    []float64

	stats  SolverStats
	legacy bool
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{legacy: LegacyFullSolve} }

// AddResource creates and registers a resource. Capacity must be
// non-negative; zero capacity models a disabled component.
func (n *Network) AddResource(name string, capacity float64) *Resource {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fluid: invalid capacity %v for %s", capacity, name))
	}
	r := &Resource{Name: name, Capacity: capacity, index: len(n.resources)}
	n.resources = append(n.resources, r)
	return r
}

// NewFlow creates and registers a flow with the given demand cap. Use
// math.Inf(1) for an unbounded flow. The default weight is 1.
func (n *Network) NewFlow(name string, demand float64) *Flow {
	if demand < 0 || math.IsNaN(demand) {
		panic(fmt.Sprintf("fluid: invalid demand %v for %s", demand, name))
	}
	f := &Flow{Name: name, Demand: demand, Weight: 1}
	n.flows = append(n.flows, f)
	return f
}

// RemoveFlow unregisters a flow. Its last solved rate becomes zero.
func (n *Network) RemoveFlow(f *Flow) {
	for i, g := range n.flows {
		if g == f {
			n.flows = append(n.flows[:i], n.flows[i+1:]...)
			f.rate = 0
			return
		}
	}
}

// Flows returns the registered flows (shared slice; do not mutate).
func (n *Network) Flows() []*Flow { return n.flows }

// Resources returns the registered resources (shared slice; do not mutate).
func (n *Network) Resources() []*Resource { return n.resources }

const eps = 1e-12

// Solve computes the weighted max-min fair rate for every registered flow
// and the resulting load on every resource.
//
// Implementation: weighted progressive filling with incremental
// bookkeeping. residual[i] tracks each resource's remaining capacity after
// frozen flows; sumW[i] tracks Σ coeff×weight over unfrozen flows crossing
// it. Freezing a flow subtracts its contributions once, so each iteration
// costs O(resources + flows) rather than O(resources × flows × uses).
func (n *Network) Solve() {
	n.stats.FullSolves++
	nr := len(n.resources)
	var residual, sumW []float64
	if n.legacy {
		residual = make([]float64, nr)
		sumW = make([]float64, nr)
	} else {
		if cap(n.residual) < nr {
			n.residual = make([]float64, nr)
			n.sumW = make([]float64, nr)
		}
		residual = n.residual[:nr]
		sumW = n.sumW[:nr]
		for i := range sumW {
			sumW[i] = 0
		}
	}
	for i, r := range n.resources {
		r.load = 0
		residual[i] = r.Capacity
	}
	unfrozen := 0
	for _, f := range n.flows {
		f.rate = 0
		f.frozen = false
		if f.Weight <= 0 {
			panic(fmt.Sprintf("fluid: flow %s has non-positive weight %v", f.Name, f.Weight))
		}
		if f.Demand <= eps {
			f.frozen = true
			continue
		}
		unfrozen++
		for _, u := range f.Uses {
			sumW[u.Resource.index] += u.Coeff * f.Weight
		}
	}

	// freeze fixes a flow's rate and retires its resource contributions.
	freeze := func(f *Flow, rate float64) {
		f.rate = rate
		f.frozen = true
		unfrozen--
		for _, u := range f.Uses {
			i := u.Resource.index
			sumW[i] -= u.Coeff * f.Weight
			residual[i] -= u.Coeff * rate
			if residual[i] < 0 {
				residual[i] = 0
			}
			if sumW[i] < 0 {
				sumW[i] = 0
			}
		}
	}

	// level is the water level λ: every unfrozen flow has rate Weight×λ.
	level := 0.0
	for unfrozen > 0 {
		lambda := math.Inf(1)
		for i := range n.resources {
			if sumW[i] > eps {
				if lr := residual[i] / sumW[i]; lr < lambda {
					lambda = lr
				}
			}
		}
		demandLambda := math.Inf(1)
		for _, f := range n.flows {
			if f.frozen {
				continue
			}
			if dl := f.Demand / f.Weight; dl < demandLambda {
				demandLambda = dl
			}
		}

		target := math.Min(lambda, demandLambda)
		if math.IsInf(target, 1) {
			// Unbounded flows with no resource usage: deliberate infinite
			// rate.
			for _, f := range n.flows {
				if !f.frozen {
					f.rate = f.Demand
					f.frozen = true
					unfrozen--
				}
			}
			break
		}
		if target < level {
			target = level // numerical guard; filling never lowers λ
		}
		level = target
		tol := level + eps*math.Max(1, level)

		frozeAny := false
		// Demand-capped flows freeze at their demand.
		for _, f := range n.flows {
			if !f.frozen && f.Demand/f.Weight <= tol {
				freeze(f, f.Demand)
				frozeAny = true
			}
		}
		if lambda <= demandLambda+eps {
			// Saturated resources freeze every unfrozen flow crossing
			// them at Weight×λ.
			for i, r := range n.resources {
				if sumW[i] <= eps {
					continue
				}
				if residual[i]/sumW[i] <= tol {
					for _, f := range n.flows {
						if f.frozen {
							continue
						}
						uses := false
						for _, u := range f.Uses {
							if u.Resource == r {
								uses = true
								break
							}
						}
						if uses {
							freeze(f, f.Weight*level)
							frozeAny = true
						}
					}
				}
			}
		}
		if !frozeAny {
			// Defensive: should be unreachable, but avoid an infinite loop.
			for _, f := range n.flows {
				if !f.frozen {
					freeze(f, f.Weight*level)
				}
			}
		}
	}

	// Compute resource loads from final rates.
	for _, f := range n.flows {
		for _, u := range f.Uses {
			u.Resource.load += u.Coeff * f.rate
		}
	}
	n.snapshot()
}

// snapshot records the solver inputs the allocation was computed from.
func (n *Network) snapshot() {
	n.snapFlows = append(n.snapFlows[:0], n.flows...)
	n.snapRes = append(n.snapRes[:0], n.resources...)
	if cap(n.snapDemand) < len(n.flows) {
		n.snapDemand = make([]float64, len(n.flows))
		n.snapWeight = make([]float64, len(n.flows))
		n.snapUses = make([]int, len(n.flows))
	}
	n.snapDemand = n.snapDemand[:len(n.flows)]
	n.snapWeight = n.snapWeight[:len(n.flows)]
	n.snapUses = n.snapUses[:len(n.flows)]
	for i, f := range n.flows {
		n.snapDemand[i] = f.Demand
		n.snapWeight[i] = f.Weight
		n.snapUses[i] = len(f.Uses)
	}
	if cap(n.snapCap) < len(n.resources) {
		n.snapCap = make([]float64, len(n.resources))
	}
	n.snapCap = n.snapCap[:len(n.resources)]
	for i, r := range n.resources {
		n.snapCap[i] = r.Capacity
	}
	n.solved = true
}

// Invalidate forces the next Resolve to run a full Solve. Needed only
// after mutations the dirty scan cannot see: editing a Usage coefficient
// in place, or swapping a Usage's Resource.
func (n *Network) Invalidate() { n.solved = false }

// ResourceUtil is one resource's slice of a Utilization snapshot.
type ResourceUtil struct {
	Name     string
	Capacity float64 // resource units per second
	Load     float64 // solved aggregate consumption
	Demand   float64 // offered load Σ coeff×flow.Demand; +Inf if any user is unbounded
	Share    float64 // Load/Capacity; 0 for zero-capacity resources
}

// Saturated reports whether the resource is the (or a) binding constraint:
// its solved load sits at capacity within solver tolerance.
func (u ResourceUtil) Saturated() bool {
	return u.Capacity > 0 && u.Load >= u.Capacity*(1-1e-9)
}

// Utilization returns a per-resource snapshot of the current allocation in
// registration order: solved load against capacity, plus the offered demand
// (what the flows would consume if every demand cap were met). It reads the
// last-solved state and does not itself re-solve; callers that mutated the
// network should Resolve (or Sim.Refresh) first. This is the placer's
// sensor and the -utilz bottleneck-attribution dump.
func (n *Network) Utilization() []ResourceUtil {
	out := make([]ResourceUtil, len(n.resources))
	for i, r := range n.resources {
		out[i] = ResourceUtil{
			Name:     r.Name,
			Capacity: r.Capacity,
			Load:     r.load,
			Share:    r.Utilization(),
		}
	}
	for _, f := range n.flows {
		for _, u := range f.Uses {
			out[u.Resource.index].Demand += u.Coeff * f.Demand
		}
	}
	return out
}

// Stats returns counters describing how Resolve calls were satisfied.
func (n *Network) Stats() SolverStats { return n.stats }

// changedFlow locates what differs from the last-solved snapshot. ok
// reports whether the only difference is a single flow's demand (idx into
// n.flows); any reports whether anything differs at all.
func (n *Network) changedFlow() (idx int, ok, any bool) {
	if len(n.resources) != len(n.snapRes) || len(n.flows) != len(n.snapFlows) {
		return 0, false, true
	}
	for i, r := range n.resources {
		if r != n.snapRes[i] || r.Capacity != n.snapCap[i] {
			return 0, false, true
		}
	}
	idx = -1
	for i, f := range n.flows {
		if f != n.snapFlows[i] || f.Weight != n.snapWeight[i] || len(f.Uses) != n.snapUses[i] {
			return 0, false, true
		}
		if f.Demand != n.snapDemand[i] {
			if idx >= 0 {
				return 0, false, true // more than one demand changed
			}
			idx = i
		}
	}
	if idx < 0 {
		return 0, false, false
	}
	return idx, true, true
}

// Resolve re-solves only if the flow population, demands, weights, uses or
// capacities changed since the last Solve, and absorbs a single-flow
// demand change without solving when the cap is non-binding before and
// after (the solved rate sits strictly below both, so the max-min
// allocation is unchanged). It reports whether a full Solve ran.
func (n *Network) Resolve() bool {
	if n.legacy || !n.solved {
		n.Solve()
		return true
	}
	idx, one, any := n.changedFlow()
	if !any {
		n.stats.Skips++
		return false
	}
	if one {
		f := n.flows[idx]
		old := n.snapDemand[idx]
		// Margin keeps the fast path well clear of the solver's freeze
		// tolerance, so a from-scratch Solve would take the exact same
		// branches and reproduce the current rates bit for bit.
		margin := 1e-6 * math.Max(1, f.rate)
		if math.Min(old, f.Demand) > f.rate+margin {
			n.snapDemand[idx] = f.Demand
			n.stats.FastResolves++
			return false
		}
	}
	n.Solve()
	return true
}
