// Package fluid implements a generalized max-min fair fluid-flow model.
//
// Subsystem models in this repository (memory controllers, interconnect
// links, NICs, CPU cores, storage devices) are expressed as resources with a
// finite capacity. Data streams are flows that consume capacity on every
// resource they cross, scaled by a per-resource coefficient: a flow running
// at rate R consumes coeff×R on each resource it uses. Coefficients encode
// data-path facts such as "a TCP send crosses the source memory controller
// three times (application read + copy read + copy write)" or "this thread
// spends k core-seconds per byte of protocol processing".
//
// Solve performs weighted progressive filling: all unfrozen flows rise
// proportionally to their weights until a resource saturates or a flow hits
// its demand cap, those flows freeze, and filling continues. The result is
// the weighted max-min fair allocation, the standard fluid approximation for
// bandwidth sharing in networks and memory systems.
//
// # Flow classes
//
// A flow may stand for k identical member streams (NewFlowClass, SetMembers):
// Demand and Weight are per member, the class competes with effective weight
// Weight×members, and the solved aggregate Rate() is members×MemberRate().
// Because every member of a class crosses the same resources with the same
// coefficients and weight, the max-min allocation splits the class rate
// evenly — MemberRate() is the exact per-stream disaggregation. Collapsing k
// same-path/same-weight flows into one class flow shrinks both the solver
// population and the dirty scan from O(streams) to O(classes).
//
// # Bottleneck subgraphs
//
// The flow/resource bipartite graph is partitioned into connected components
// (rebuilt on every structural Solve). Progressive filling is purely
// component-local — a component's rates depend only on its own flows and
// resources — so Resolve refills just the components containing a changed
// flow or resource and proves the rest fixed-point stable by construction:
// their inputs are unchanged and the deterministic per-component fill would
// reproduce the stored rates bit for bit.
package fluid

import (
	"fmt"
	"math"
)

// Resource is a capacity-constrained component: a link, a memory controller,
// a CPU core, a storage device. Capacity is in resource units per second
// (bytes/s for bandwidth-like resources, core-seconds/s — i.e. 1.0 — for a
// CPU core).
type Resource struct {
	Name     string
	Capacity float64

	// load is the solved aggregate consumption, maintained by Solve.
	load float64
	// index is the resource's position in its network, for solver arrays.
	index int
}

// Load returns the aggregate consumption on the resource from the most
// recent Solve, in resource units per second.
func (r *Resource) Load() float64 { return r.load }

// Index returns the resource's registration position in its network. It is
// stable for the resource's lifetime, which makes it a deterministic key
// for route signatures and flow-class pooling.
func (r *Resource) Index() int { return r.index }

// Utilization returns Load/Capacity, or 0 for zero-capacity resources.
func (r *Resource) Utilization() float64 {
	if r.Capacity <= 0 {
		return 0
	}
	return r.load / r.Capacity
}

// Usage binds a flow to a resource: the flow consumes Coeff×rate on
// Resource. Tag labels the consumption for accounting (e.g. "sys", "copy",
// "user") and may be empty.
type Usage struct {
	Resource *Resource
	Coeff    float64
	Tag      string
}

// Flow is a fluid stream, or a class of identical member streams. Demand and
// Weight are per member; rate is computed by Network.Solve.
type Flow struct {
	Name   string
	Demand float64 // per-member upper bound on rate; math.Inf(1) if unbounded
	Weight float64 // per-member share weight for max-min fairness; must be > 0
	Uses   []Usage

	// members is the stream multiplicity (≥1). The class competes with
	// effective weight Weight×members and Rate() aggregates all members.
	members int
	// attached counts member transfers bound via Sim.StartMember.
	attached int
	// index is the flow's position in its network, for O(1) removal.
	index int

	rate       float64 // aggregate: members × memberRate
	memberRate float64
	frozen     bool
}

// Rate returns the solved aggregate rate in flow units (bytes) per second,
// summed over all members of the class.
func (f *Flow) Rate() float64 { return f.rate }

// MemberRate returns the solved rate of one member stream. For a plain flow
// (members==1) it equals Rate().
func (f *Flow) MemberRate() float64 { return f.memberRate }

// Members returns the stream multiplicity of the class (1 for plain flows).
func (f *Flow) Members() int { return f.members }

// Use adds a resource the flow consumes, with the given coefficient.
// Non-positive coefficients are ignored: they denote "does not touch".
func (f *Flow) Use(r *Resource, coeff float64) *Flow {
	return f.UseTagged(r, coeff, "")
}

// UseTagged adds a resource consumption labelled with an accounting tag.
func (f *Flow) UseTagged(r *Resource, coeff float64, tag string) *Flow {
	if r == nil {
		panic("fluid: Use with nil resource")
	}
	if coeff > 0 {
		f.Uses = append(f.Uses, Usage{Resource: r, Coeff: coeff, Tag: tag})
	}
	return f
}

// LegacyFullSolve, when set before NewNetwork, makes Resolve behave like
// the pre-incremental solver: every call runs a from-scratch Solve with
// freshly allocated scratch state. It exists so the benchmark harness
// (cmd/benchreport) and the solver-equivalence tests can compare the
// optimized and unoptimized paths within one binary. Production code never
// sets it.
var LegacyFullSolve bool

// SolverStats counts how Resolve calls were satisfied.
type SolverStats struct {
	// FullSolves is the number of complete progressive-filling runs.
	FullSolves uint64
	// PartialSolves counts Resolve calls satisfied by refilling only the
	// bottleneck subgraphs (connected components) containing a change.
	PartialSolves uint64
	// ComponentSolves is the number of per-component fill passes, across
	// both full and partial solves.
	ComponentSolves uint64
	// FastResolves counts single-flow demand updates absorbed without a
	// solve because the demand cap was non-binding before and after.
	FastResolves uint64
	// Skips counts Resolve calls where nothing had changed since the last
	// Solve.
	Skips uint64
}

// Network is a set of resources and the flows crossing them.
type Network struct {
	resources []*Resource
	flows     []*Flow

	// residual and sumW are solver scratch, reused across Solve calls so
	// the hot path does not allocate.
	residual []float64
	sumW     []float64

	// Connected-component partition of the flow/resource bipartite graph,
	// rebuilt by every full Solve. compOf maps a resource index to a dense
	// component id; flowComp maps a flow index (-1 for flows crossing no
	// resource). flowOrder/resOrder group flow and resource indices by
	// component (stable within a component), with flows that cross nothing
	// in a trailing bucket at flowOff[ncomp]..flowOff[ncomp+1].
	compOf    []int32
	flowComp  []int32
	ncomp     int
	flowOrder []int32
	flowOff   []int32
	resOrder  []int32
	resOff    []int32
	ufParent  []int32 // union-find scratch
	rootID    []int32 // dense component ids per union-find root
	compCnt   []int32 // counting-sort scratch

	// Dirty-scan and partial-solve scratch.
	dirtyF    []int32
	dirtyR    []int32
	compDirty []bool
	compList  []int32
	bucketHit []int32

	// Snapshot of every solver input at the last Solve. Resolve diffs the
	// live state against it to decide whether a re-solve is needed, which
	// also catches direct writes to Flow.Demand/Weight and
	// Resource.Capacity that bypass the Sim setters.
	solved      bool
	snapFlows   []*Flow
	snapDemand  []float64
	snapWeight  []float64
	snapMembers []int32
	snapUses    []int // len(Flow.Uses); catches Use() after a solve
	snapRes     []*Resource
	snapCap     []float64

	stats   SolverStats
	legacy  bool
	removed int // retired-resource count; keys unique negative indices
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{legacy: LegacyFullSolve} }

// AddResource creates and registers a resource. Capacity must be
// non-negative; zero capacity models a disabled component.
func (n *Network) AddResource(name string, capacity float64) *Resource {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fluid: invalid capacity %v for %s", capacity, name))
	}
	r := &Resource{Name: name, Capacity: capacity, index: len(n.resources)}
	n.resources = append(n.resources, r)
	return r
}

// NewFlow creates and registers a flow with the given demand cap. Use
// math.Inf(1) for an unbounded flow. The default weight is 1.
func (n *Network) NewFlow(name string, demand float64) *Flow {
	return n.NewFlowClass(name, demand, 1)
}

// NewFlowClass creates and registers a flow standing for members identical
// streams. demand is the per-member demand cap.
func (n *Network) NewFlowClass(name string, demand float64, members int) *Flow {
	if demand < 0 || math.IsNaN(demand) {
		panic(fmt.Sprintf("fluid: invalid demand %v for %s", demand, name))
	}
	if members < 1 {
		panic(fmt.Sprintf("fluid: invalid member count %d for %s", members, name))
	}
	f := &Flow{Name: name, Demand: demand, Weight: 1, members: members, index: len(n.flows)}
	n.flows = append(n.flows, f)
	return f
}

// SetMembers changes a class's stream multiplicity. The dirty scan picks the
// change up on the next Resolve, exactly like a demand or weight write.
func (n *Network) SetMembers(f *Flow, members int) {
	if members < 1 {
		panic(fmt.Sprintf("fluid: invalid member count %d for %s", members, f.Name))
	}
	f.members = members
}

// Registered reports whether f is currently part of the network. A flow
// detached by its last member's completion stays false until re-created;
// callers pooling jobs onto shared flows must check before joining, because
// an unregistered flow is invisible to the solver and never earns a rate.
func (n *Network) Registered(f *Flow) bool {
	i := f.index
	return i >= 0 && i < len(n.flows) && n.flows[i] == f
}

// RemoveFlow unregisters a flow. Its last solved rate becomes zero.
func (n *Network) RemoveFlow(f *Flow) {
	i := f.index
	if i < 0 || i >= len(n.flows) || n.flows[i] != f {
		return // already removed, or foreign flow
	}
	copy(n.flows[i:], n.flows[i+1:])
	n.flows[len(n.flows)-1] = nil
	n.flows = n.flows[:len(n.flows)-1]
	for j := i; j < len(n.flows); j++ {
		n.flows[j].index = j
	}
	f.index = -1
	f.rate = 0
	f.memberRate = 0
}

// RemoveResource unregisters a resource that no registered flow crosses
// any more — per-session state (thread limiters, for one) that would
// otherwise accumulate forever and drag every structural solve, which
// scans all resources, toward quadratic cost under small-job churn.
// Accumulated usage accounting survives: the resource keeps a unique
// (negative) index so usage reports stay deterministically ordered.
// Removing a resource still in use is a caller bug and panics.
func (n *Network) RemoveResource(r *Resource) {
	i := r.index
	if i < 0 || i >= len(n.resources) || n.resources[i] != r {
		return // already removed, or foreign resource
	}
	for _, f := range n.flows {
		for _, u := range f.Uses {
			if u.Resource == r {
				panic(fmt.Sprintf("fluid: removing resource %s still used by flow %s", r.Name, f.Name))
			}
		}
	}
	copy(n.resources[i:], n.resources[i+1:])
	n.resources[len(n.resources)-1] = nil
	n.resources = n.resources[:len(n.resources)-1]
	for j := i; j < len(n.resources); j++ {
		n.resources[j].index = j
	}
	n.removed++
	r.index = -1 - n.removed
	r.load = 0
}

// Flows returns the registered flows (shared slice; do not mutate).
func (n *Network) Flows() []*Flow { return n.flows }

// Resources returns the registered resources (shared slice; do not mutate).
func (n *Network) Resources() []*Resource { return n.resources }

const eps = 1e-12

// growI32 returns buf resized to n (fresh under legacy semantics).
func growI32(buf []int32, n int, legacy bool) []int32 {
	if legacy || cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// rebuildPartition recomputes the connected components of the flow/resource
// bipartite graph. It is a pure function of the structure (populations and
// Uses), so the optimized and legacy paths always agree on the partition.
func (n *Network) rebuildPartition() {
	nr := len(n.resources)
	nf := len(n.flows)
	uf := growI32(n.ufParent, nr, n.legacy)
	for i := range uf {
		uf[i] = int32(i)
	}
	find := func(i int32) int32 {
		for uf[i] != i {
			uf[i] = uf[uf[i]] // path halving
			i = uf[i]
		}
		return i
	}
	for _, f := range n.flows {
		if len(f.Uses) == 0 {
			continue
		}
		a := find(int32(f.Uses[0].Resource.index))
		for _, u := range f.Uses[1:] {
			if b := find(int32(u.Resource.index)); b != a {
				uf[b] = a
			}
		}
	}
	n.ufParent = uf

	// Dense component ids, assigned in ascending resource-index order so
	// the numbering is deterministic.
	compOf := growI32(n.compOf, nr, n.legacy)
	rootID := growI32(n.rootID, nr, n.legacy)
	for i := range rootID {
		rootID[i] = -1
	}
	next := int32(0)
	for i := 0; i < nr; i++ {
		r := find(int32(i))
		if rootID[r] < 0 {
			rootID[r] = next
			next++
		}
		compOf[i] = rootID[r]
	}
	n.compOf, n.rootID = compOf, rootID
	n.ncomp = int(next)

	flowComp := growI32(n.flowComp, nf, n.legacy)
	for i, f := range n.flows {
		if len(f.Uses) == 0 {
			flowComp[i] = -1
		} else {
			flowComp[i] = compOf[f.Uses[0].Resource.index]
		}
	}
	n.flowComp = flowComp

	// Counting sort (stable) groups flow and resource indices by component.
	cnt := growI32(n.compCnt, n.ncomp+1, n.legacy) // +1: no-uses bucket
	for i := range cnt {
		cnt[i] = 0
	}
	for _, c := range flowComp {
		if c < 0 {
			cnt[n.ncomp]++
		} else {
			cnt[c]++
		}
	}
	flowOff := growI32(n.flowOff, n.ncomp+2, n.legacy)
	flowOff[0] = 0
	for i := 0; i <= n.ncomp; i++ {
		flowOff[i+1] = flowOff[i] + cnt[i]
		cnt[i] = flowOff[i]
	}
	flowOrder := growI32(n.flowOrder, nf, n.legacy)
	for i, c := range flowComp {
		b := c
		if b < 0 {
			b = int32(n.ncomp)
		}
		flowOrder[cnt[b]] = int32(i)
		cnt[b]++
	}
	n.flowOff, n.flowOrder = flowOff, flowOrder

	for i := range cnt[:n.ncomp] {
		cnt[i] = 0
	}
	for _, c := range compOf {
		cnt[c]++
	}
	resOff := growI32(n.resOff, n.ncomp+1, n.legacy)
	resOff[0] = 0
	for i := 0; i < n.ncomp; i++ {
		resOff[i+1] = resOff[i] + cnt[i]
		cnt[i] = resOff[i]
	}
	resOrder := growI32(n.resOrder, nr, n.legacy)
	for i, c := range compOf {
		resOrder[cnt[c]] = int32(i)
		cnt[c]++
	}
	n.resOff, n.resOrder, n.compCnt = resOff, resOrder, cnt
}

// Solve computes the weighted max-min fair rate for every registered flow
// and the resulting load on every resource.
//
// Implementation: the flow/resource graph is partitioned into connected
// components and each component is filled independently by weighted
// progressive filling with incremental bookkeeping. residual[i] tracks each
// resource's remaining capacity after frozen flows; sumW[i] tracks
// Σ coeff×weight×members over unfrozen flows crossing it. Freezing a flow
// subtracts its contributions once, so each iteration costs O(component)
// rather than O(resources × flows × uses).
func (n *Network) Solve() {
	n.stats.FullSolves++
	n.rebuildPartition()
	nr := len(n.resources)
	var residual, sumW []float64
	if n.legacy {
		residual = make([]float64, nr)
		sumW = make([]float64, nr)
	} else {
		if cap(n.residual) < nr {
			n.residual = make([]float64, nr)
			n.sumW = make([]float64, nr)
		}
		residual = n.residual[:nr]
		sumW = n.sumW[:nr]
	}
	for ci := 0; ci < n.ncomp; ci++ {
		n.fill(n.flowOrder[n.flowOff[ci]:n.flowOff[ci+1]],
			n.resOrder[n.resOff[ci]:n.resOff[ci+1]], residual, sumW)
	}
	if b := n.flowOrder[n.flowOff[n.ncomp]:n.flowOff[n.ncomp+1]]; len(b) > 0 {
		n.fill(b, nil, residual, sumW)
	}
	n.snapshot()
}

// fill runs progressive filling over one component: the flows (indices into
// n.flows) and resources (indices into n.resources) listed. Rates outside
// the component are untouched; the arithmetic depends only on component
// inputs, which is what makes partial solves bit-identical to full ones.
func (n *Network) fill(fidx, ridx []int32, residual, sumW []float64) {
	n.stats.ComponentSolves++
	for _, ri := range ridx {
		r := n.resources[ri]
		r.load = 0
		residual[ri] = r.Capacity
		sumW[ri] = 0
	}
	unfrozen := 0
	for _, fi := range fidx {
		f := n.flows[fi]
		f.rate = 0
		f.memberRate = 0
		f.frozen = false
		if f.Weight <= 0 {
			panic(fmt.Sprintf("fluid: flow %s has non-positive weight %v", f.Name, f.Weight))
		}
		if f.Demand <= eps {
			f.frozen = true
			continue
		}
		unfrozen++
		ew := f.Weight * float64(f.members)
		for _, u := range f.Uses {
			sumW[u.Resource.index] += u.Coeff * ew
		}
	}

	// freeze fixes a flow's per-member rate and retires its contributions.
	freeze := func(f *Flow, memberRate float64) {
		f.memberRate = memberRate
		f.rate = memberRate * float64(f.members)
		f.frozen = true
		unfrozen--
		ew := f.Weight * float64(f.members)
		for _, u := range f.Uses {
			i := u.Resource.index
			sumW[i] -= u.Coeff * ew
			residual[i] -= u.Coeff * f.rate
			if residual[i] < 0 {
				residual[i] = 0
			}
			if sumW[i] < 0 {
				sumW[i] = 0
			}
		}
	}

	// level is the water level λ: every unfrozen member runs at Weight×λ.
	level := 0.0
	for unfrozen > 0 {
		lambda := math.Inf(1)
		for _, ri := range ridx {
			if sumW[ri] > eps {
				if lr := residual[ri] / sumW[ri]; lr < lambda {
					lambda = lr
				}
			}
		}
		demandLambda := math.Inf(1)
		for _, fi := range fidx {
			f := n.flows[fi]
			if f.frozen {
				continue
			}
			if dl := f.Demand / f.Weight; dl < demandLambda {
				demandLambda = dl
			}
		}

		target := math.Min(lambda, demandLambda)
		if math.IsInf(target, 1) {
			// Unbounded flows with no constraining resource: deliberate
			// infinite rate.
			for _, fi := range fidx {
				if f := n.flows[fi]; !f.frozen {
					f.memberRate = f.Demand
					f.rate = f.Demand * float64(f.members)
					f.frozen = true
					unfrozen--
				}
			}
			break
		}
		if target < level {
			target = level // numerical guard; filling never lowers λ
		}
		level = target
		tol := level + eps*math.Max(1, level)

		frozeAny := false
		// Demand-capped flows freeze at their per-member demand.
		for _, fi := range fidx {
			if f := n.flows[fi]; !f.frozen && f.Demand/f.Weight <= tol {
				freeze(f, f.Demand)
				frozeAny = true
			}
		}
		if lambda <= demandLambda+eps {
			// Saturated resources freeze every unfrozen flow crossing
			// them at Weight×λ per member.
			for _, ri := range ridx {
				if sumW[ri] <= eps {
					continue
				}
				if residual[ri]/sumW[ri] <= tol {
					r := n.resources[ri]
					for _, fi := range fidx {
						f := n.flows[fi]
						if f.frozen {
							continue
						}
						uses := false
						for _, u := range f.Uses {
							if u.Resource == r {
								uses = true
								break
							}
						}
						if uses {
							freeze(f, f.Weight*level)
							frozeAny = true
						}
					}
				}
			}
		}
		if !frozeAny {
			// Defensive: should be unreachable, but avoid an infinite loop.
			for _, fi := range fidx {
				if f := n.flows[fi]; !f.frozen {
					freeze(f, f.Weight*level)
				}
			}
		}
	}

	// Compute resource loads from final rates.
	for _, fi := range fidx {
		f := n.flows[fi]
		for _, u := range f.Uses {
			u.Resource.load += u.Coeff * f.rate
		}
	}
}

// snapshot records the solver inputs the allocation was computed from.
func (n *Network) snapshot() {
	n.snapFlows = append(n.snapFlows[:0], n.flows...)
	n.snapRes = append(n.snapRes[:0], n.resources...)
	if cap(n.snapDemand) < len(n.flows) {
		n.snapDemand = make([]float64, len(n.flows))
		n.snapWeight = make([]float64, len(n.flows))
		n.snapMembers = make([]int32, len(n.flows))
		n.snapUses = make([]int, len(n.flows))
	}
	n.snapDemand = n.snapDemand[:len(n.flows)]
	n.snapWeight = n.snapWeight[:len(n.flows)]
	n.snapMembers = n.snapMembers[:len(n.flows)]
	n.snapUses = n.snapUses[:len(n.flows)]
	for i, f := range n.flows {
		n.snapDemand[i] = f.Demand
		n.snapWeight[i] = f.Weight
		n.snapMembers[i] = int32(f.members)
		n.snapUses[i] = len(f.Uses)
	}
	if cap(n.snapCap) < len(n.resources) {
		n.snapCap = make([]float64, len(n.resources))
	}
	n.snapCap = n.snapCap[:len(n.resources)]
	for i, r := range n.resources {
		n.snapCap[i] = r.Capacity
	}
	n.solved = true
}

// Invalidate forces the next Resolve to run a full Solve. Needed only
// after mutations the dirty scan cannot see: editing a Usage coefficient
// in place, or swapping a Usage's Resource.
func (n *Network) Invalidate() { n.solved = false }

// ResourceUtil is one resource's slice of a Utilization snapshot.
type ResourceUtil struct {
	Name     string
	Capacity float64 // resource units per second
	Load     float64 // solved aggregate consumption
	Demand   float64 // offered load Σ coeff×members×flow.Demand; +Inf if any user is unbounded
	Share    float64 // Load/Capacity; 0 for zero-capacity resources
}

// Saturated reports whether the resource is the (or a) binding constraint:
// its solved load sits at capacity within solver tolerance.
func (u ResourceUtil) Saturated() bool {
	return u.Capacity > 0 && u.Load >= u.Capacity*(1-1e-9)
}

// Utilization returns a per-resource snapshot of the current allocation in
// registration order: solved load against capacity, plus the offered demand
// (what the flows would consume if every demand cap were met). It reads the
// last-solved state and does not itself re-solve; callers that mutated the
// network should Resolve (or Sim.Refresh) first. This is the placer's
// sensor and the -utilz bottleneck-attribution dump.
func (n *Network) Utilization() []ResourceUtil {
	out := make([]ResourceUtil, len(n.resources))
	for i, r := range n.resources {
		out[i] = ResourceUtil{
			Name:     r.Name,
			Capacity: r.Capacity,
			Load:     r.load,
			Share:    r.Utilization(),
		}
	}
	for _, f := range n.flows {
		ed := f.Demand * float64(f.members)
		for _, u := range f.Uses {
			out[u.Resource.index].Demand += u.Coeff * ed
		}
	}
	return out
}

// Stats returns counters describing how Resolve calls were satisfied.
func (n *Network) Stats() SolverStats { return n.stats }

// diff classifies every change since the last snapshot. structural means
// the partition may have moved (populations or Uses changed) and a full
// Solve is required; otherwise n.dirtyF/n.dirtyR list the flow/resource
// indices whose parameters changed. demandOnly reports that every dirty
// flow changed nothing but its demand.
func (n *Network) diff() (structural, demandOnly bool) {
	n.dirtyF = n.dirtyF[:0]
	n.dirtyR = n.dirtyR[:0]
	demandOnly = true
	if len(n.resources) != len(n.snapRes) || len(n.flows) != len(n.snapFlows) {
		return true, false
	}
	for i, r := range n.resources {
		if r != n.snapRes[i] {
			return true, false
		}
		if r.Capacity != n.snapCap[i] {
			n.dirtyR = append(n.dirtyR, int32(i))
		}
	}
	for i, f := range n.flows {
		if f != n.snapFlows[i] || len(f.Uses) != n.snapUses[i] {
			return true, false
		}
		if f.Demand != n.snapDemand[i] || f.Weight != n.snapWeight[i] || int32(f.members) != n.snapMembers[i] {
			n.dirtyF = append(n.dirtyF, int32(i))
			if f.Weight != n.snapWeight[i] || int32(f.members) != n.snapMembers[i] {
				demandOnly = false
			}
		}
	}
	return false, demandOnly
}

// partialSolve refills exactly the components containing a dirty flow or
// resource (per n.dirtyF/n.dirtyR). The frontier argument for leaving every
// other component untouched: fill is deterministic and reads only
// component-local inputs, those inputs are unchanged (the dirty scan proved
// it), so re-running fill there would reproduce the stored rates bit for
// bit. Flows crossing no resource are independent and refill individually.
func (n *Network) partialSolve() {
	n.stats.PartialSolves++
	if cap(n.compDirty) < n.ncomp {
		n.compDirty = make([]bool, n.ncomp)
	}
	dirty := n.compDirty[:n.ncomp]
	n.compList = n.compList[:0]
	n.bucketHit = n.bucketHit[:0]
	for _, fi := range n.dirtyF {
		c := n.flowComp[fi]
		if c < 0 {
			n.bucketHit = append(n.bucketHit, fi)
			continue
		}
		if !dirty[c] {
			dirty[c] = true
			n.compList = append(n.compList, c)
		}
	}
	for _, ri := range n.dirtyR {
		c := n.compOf[ri]
		if !dirty[c] {
			dirty[c] = true
			n.compList = append(n.compList, c)
		}
	}
	// Ascending component order, for reproducible stats and cache locality
	// (insertion sort: the list is tiny and must not allocate).
	for i := 1; i < len(n.compList); i++ {
		for j := i; j > 0 && n.compList[j] < n.compList[j-1]; j-- {
			n.compList[j], n.compList[j-1] = n.compList[j-1], n.compList[j]
		}
	}
	residual := n.residual[:len(n.resources)]
	sumW := n.sumW[:len(n.resources)]
	for _, c := range n.compList {
		n.fill(n.flowOrder[n.flowOff[c]:n.flowOff[c+1]],
			n.resOrder[n.resOff[c]:n.resOff[c+1]], residual, sumW)
		dirty[c] = false
	}
	if len(n.bucketHit) > 0 {
		n.fill(n.bucketHit, nil, residual, sumW)
	}
	// Refresh only the snapshot entries that moved; everything else is
	// still current.
	for _, fi := range n.dirtyF {
		f := n.flows[fi]
		n.snapDemand[fi] = f.Demand
		n.snapWeight[fi] = f.Weight
		n.snapMembers[fi] = int32(f.members)
	}
	for _, ri := range n.dirtyR {
		n.snapCap[ri] = n.resources[ri].Capacity
	}
}

// Resolve re-solves only what changed since the last Solve: nothing on a
// clean network, a single non-binding demand change without any solve (the
// solved rate sits strictly below both old and new caps, so the max-min
// allocation is unchanged), only the dirty bottleneck subgraphs for
// parameter changes, and a full Solve for structural changes (population or
// Uses). It reports whether any solving ran.
func (n *Network) Resolve() bool {
	if n.legacy || !n.solved {
		n.Solve()
		return true
	}
	structural, demandOnly := n.diff()
	if structural {
		n.Solve()
		return true
	}
	if len(n.dirtyF) == 0 && len(n.dirtyR) == 0 {
		n.stats.Skips++
		return false
	}
	if demandOnly && len(n.dirtyF) == 1 && len(n.dirtyR) == 0 {
		fi := n.dirtyF[0]
		f := n.flows[fi]
		old := n.snapDemand[fi]
		// Margin keeps the fast path well clear of the solver's freeze
		// tolerance, so a from-scratch Solve would take the exact same
		// branches and reproduce the current rates bit for bit.
		margin := 1e-6 * math.Max(1, f.memberRate)
		if math.Min(old, f.Demand) > f.memberRate+margin {
			n.snapDemand[fi] = f.Demand
			n.stats.FastResolves++
			return false
		}
	}
	n.partialSolve()
	return true
}
