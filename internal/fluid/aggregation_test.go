package fluid

import (
	"math"
	"math/rand"
	"testing"
)

// use is one (resource, coefficient) edge of a class spec, shared between
// the aggregated network and its flat twin.
type use struct {
	ri    int
	coeff float64
}

// classSpec describes one flow class so the flat twin can materialise (and
// later grow or shrink) the matching set of individual flows.
type classSpec struct {
	demand  float64 // per member, same as Flow.Demand on a class
	weight  float64 // per member
	members int
	uses    []use
}

// materialise appends spec.members individual flows to the flat network.
func (cs *classSpec) materialise(fn *Network, frs []*Resource) []*Flow {
	var out []*Flow
	for m := 0; m < cs.members; m++ {
		f := fn.NewFlow("m", cs.demand)
		f.Weight = cs.weight
		for _, u := range cs.uses {
			f.Use(frs[u.ri], u.coeff)
		}
		out = append(out, f)
	}
	return out
}

// classesMatch checks every class's member rate against each flat member
// flow, the aggregate identity rate == memberRate*members, and resource
// loads, at the suite-wide 1e-9 relative tolerance.
func classesMatch(t *testing.T, seed, op int, classes []*Flow, flat [][]*Flow,
	cn, fn *Network) {
	t.Helper()
	for i, cf := range classes {
		if cf.Members() != len(flat[i]) {
			t.Fatalf("seed %d op %d: class %d has %d members, flat twin %d",
				seed, op, i, cf.Members(), len(flat[i]))
		}
		if want := cf.MemberRate() * float64(cf.Members()); cf.Rate() != want {
			t.Fatalf("seed %d op %d: class %d aggregate %g != member %g x %d",
				seed, op, i, cf.Rate(), cf.MemberRate(), cf.Members())
		}
		for m, ff := range flat[i] {
			a, b := cf.MemberRate(), ff.Rate()
			if a == b {
				continue
			}
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(b)) {
				t.Fatalf("seed %d op %d: class %d member %d rate %g (aggregated) vs %g (flat)",
					seed, op, i, m, a, b)
			}
		}
	}
	for i := range cn.resources {
		a, b := cn.resources[i].load, fn.resources[i].load
		if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(b)) {
			t.Fatalf("seed %d op %d: resource %d load %g vs %g", seed, op, i, a, b)
		}
	}
}

// TestFlowClassBasicDisaggregation: a class of 3 competing with a singleton
// on one link gets 3 member shares, and the exact aggregate identity holds.
func TestFlowClassBasicDisaggregation(t *testing.T) {
	n := NewNetwork()
	r := n.AddResource("link", 100)
	c := n.NewFlowClass("class", math.Inf(1), 3)
	c.Use(r, 1)
	s := n.NewFlow("single", math.Inf(1))
	s.Use(r, 1)
	n.Solve()
	if got := c.MemberRate(); got != 25 {
		t.Fatalf("member rate = %v, want 25", got)
	}
	if got := c.Rate(); got != 75 {
		t.Fatalf("class rate = %v, want 75", got)
	}
	if got := s.Rate(); got != 25 {
		t.Fatalf("singleton rate = %v, want 25", got)
	}
	// Demand-capped members: cap below the fair share, residual to the rest.
	c.Demand = 10
	n.Resolve()
	if c.MemberRate() != 10 || c.Rate() != 30 || s.Rate() != 70 {
		t.Fatalf("capped: member %v class %v single %v, want 10/30/70",
			c.MemberRate(), c.Rate(), s.Rate())
	}
}

// TestFlowClassMatchesUnaggregated is the randomized differential suite for
// flow-class aggregation: across 25 seeds, a network of classes driven
// through Resolve must disaggregate to per-member rates identical (within
// 1e-9) to a from-scratch Solve of a flat twin holding one individual flow
// per member. Mutations include direct field writes bypassing the setters,
// membership growth and shrink, capacity churn, and class arrival/departure.
func TestFlowClassMatchesUnaggregated(t *testing.T) {
	for seed := 0; seed < 25; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		cn, fn := NewNetwork(), NewNetwork()
		var crs, frs []*Resource
		nr := 3 + rng.Intn(10)
		for i := 0; i < nr; i++ {
			cap := math.Pow(10, 6+3*rng.Float64())
			crs = append(crs, cn.AddResource("r", cap))
			frs = append(frs, fn.AddResource("r", cap))
		}
		newSpec := func() *classSpec {
			d := math.Inf(1)
			if rng.Intn(3) == 0 {
				d = math.Pow(10, 4+4*rng.Float64())
			}
			cs := &classSpec{demand: d, weight: 0.5 + 2*rng.Float64(),
				members: 1 + rng.Intn(6)}
			for j, nu := 0, 1+rng.Intn(4); j < nu; j++ {
				cs.uses = append(cs.uses, use{rng.Intn(nr), 0.25 + rng.Float64()})
			}
			return cs
		}
		addClass := func(cs *classSpec) *Flow {
			cf := cn.NewFlowClass("c", cs.demand, cs.members)
			cf.Weight = cs.weight
			for _, u := range cs.uses {
				cf.Use(crs[u.ri], u.coeff)
			}
			return cf
		}
		var specs []*classSpec
		var classes []*Flow
		var flat [][]*Flow
		for i, nc := 0, 1+rng.Intn(12); i < nc; i++ {
			cs := newSpec()
			specs = append(specs, cs)
			classes = append(classes, addClass(cs))
			flat = append(flat, cs.materialise(fn, frs))
		}
		cn.Resolve()
		fn.Solve()
		classesMatch(t, seed, -1, classes, flat, cn, fn)
		for op := 0; op < 80; op++ {
			switch k := rng.Intn(12); {
			case k < 4: // per-member demand, direct write on both sides
				i := rng.Intn(len(classes))
				var d float64
				switch rng.Intn(3) {
				case 0:
					d = math.Max(1, classes[i].MemberRate()*(0.1+0.8*rng.Float64()))
				default:
					d = math.Pow(10, 10+2*rng.Float64())
				}
				specs[i].demand = d
				classes[i].Demand = d
				for _, ff := range flat[i] {
					ff.Demand = d
				}
			case k < 6: // per-member weight, direct write
				i := rng.Intn(len(classes))
				w := 0.5 + 2*rng.Float64()
				specs[i].weight = w
				classes[i].Weight = w
				for _, ff := range flat[i] {
					ff.Weight = w
				}
			case k < 8: // capacity churn
				i := rng.Intn(nr)
				c := math.Pow(10, 6+3*rng.Float64())
				crs[i].Capacity = c
				frs[i].Capacity = c
			case k < 10: // membership growth/shrink: a parameter change on the
				// class side, flow arrival/departure on the flat side
				i := rng.Intn(len(classes))
				m := 1 + rng.Intn(6)
				cs := specs[i]
				cn.SetMembers(classes[i], m)
				for len(flat[i]) > m {
					last := len(flat[i]) - 1
					fn.RemoveFlow(flat[i][last])
					flat[i] = flat[i][:last]
				}
				for len(flat[i]) < m {
					f := fn.NewFlow("m", cs.demand)
					f.Weight = cs.weight
					for _, u := range cs.uses {
						f.Use(frs[u.ri], u.coeff)
					}
					flat[i] = append(flat[i], f)
				}
				cs.members = m
			case k < 11 && len(classes) > 1: // class departure
				i := rng.Intn(len(classes))
				cn.RemoveFlow(classes[i])
				for _, ff := range flat[i] {
					fn.RemoveFlow(ff)
				}
				specs = append(specs[:i], specs[i+1:]...)
				classes = append(classes[:i], classes[i+1:]...)
				flat = append(flat[:i], flat[i+1:]...)
			default: // class arrival
				cs := newSpec()
				specs = append(specs, cs)
				classes = append(classes, addClass(cs))
				flat = append(flat, cs.materialise(fn, frs))
			}
			cn.Resolve()
			fn.Solve()
			classesMatch(t, seed, op, classes, flat, cn, fn)
		}
		st := cn.Stats()
		if st.PartialSolves == 0 {
			t.Fatalf("seed %d: bottleneck-subgraph path never taken (%+v)", seed, st)
		}
		if st.FullSolves >= 82 {
			t.Fatalf("seed %d: every Resolve ran a full solve (%+v)", seed, st)
		}
	}
}

// TestClassChurnAllocFree pins the class-hit churn path at zero allocations:
// once the solver scratch is warm, demand toggles and membership churn on an
// existing class resolve without allocating.
func TestClassChurnAllocFree(t *testing.T) {
	n := NewNetwork()
	var rs []*Resource
	for i := 0; i < 8; i++ {
		rs = append(rs, n.AddResource("r", 1e8))
	}
	var fs []*Flow
	for i := 0; i < 64; i++ {
		f := n.NewFlowClass("c", 1e6, 16)
		f.Use(rs[i%8], 1).Use(rs[(i+3)%8], 0.5)
		fs = append(fs, f)
	}
	n.Resolve()
	// Warm the partial-solve scratch before measuring.
	for w := 0; w < 4; w++ {
		fs[w].Demand = 2e6
		n.SetMembers(fs[w], 17)
		n.Resolve()
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		f := fs[i%len(fs)]
		if i%2 == 0 {
			f.Demand = 2e6
		} else {
			f.Demand = 1e6
		}
		n.SetMembers(f, 16+i%3)
		i++
		n.Resolve()
	})
	if avg != 0 {
		t.Fatalf("class-hit churn allocates %v per Resolve, want 0", avg)
	}
}

// TestPartialSolveOnlyDirtyComponent: with two disjoint bottleneck
// subgraphs, churn in one must be solved as a partial refill that leaves
// the clean component's rates bit-identical — the frontier test proves the
// untouched component is already at its fixed point.
func TestPartialSolveOnlyDirtyComponent(t *testing.T) {
	n := NewNetwork()
	ra := n.AddResource("a", 100)
	rb := n.AddResource("b", 200)
	fa1 := n.NewFlow("a1", math.Inf(1))
	fa1.Use(ra, 1)
	fa2 := n.NewFlow("a2", 80)
	fa2.Use(ra, 1)
	fb1 := n.NewFlow("b1", math.Inf(1))
	fb1.Use(rb, 1)
	fb2 := n.NewFlowClass("b2", math.Inf(1), 3)
	fb2.Use(rb, 1)
	n.Resolve()
	cleanRates := [2]float64{fb1.Rate(), fb2.Rate()}
	cleanMember := fb2.MemberRate()
	before := n.Stats()

	fa2.Demand = 10 // binding change confined to component A
	if !n.Resolve() {
		t.Fatal("binding demand change skipped the solver")
	}
	after := n.Stats()
	if after.PartialSolves != before.PartialSolves+1 {
		t.Fatalf("stats %+v -> %+v, want exactly one partial solve", before, after)
	}
	if after.FullSolves != before.FullSolves {
		t.Fatalf("component-local churn escalated to a full solve: %+v", after)
	}
	if fa2.Rate() != 10 || fa1.Rate() != 90 {
		t.Fatalf("dirty component rates %v/%v, want 90/10", fa1.Rate(), fa2.Rate())
	}
	if fb1.Rate() != cleanRates[0] || fb2.Rate() != cleanRates[1] ||
		fb2.MemberRate() != cleanMember {
		t.Fatal("clean component rates perturbed by a partial solve")
	}
	// The partial result must equal a from-scratch solve bit-for-bit: the
	// fill code and partition are shared, so no tolerance is needed.
	partial := []float64{fa1.Rate(), fa2.Rate(), fb1.Rate(), fb2.Rate()}
	n.Solve()
	full := []float64{fa1.Rate(), fa2.Rate(), fb1.Rate(), fb2.Rate()}
	for i := range partial {
		if partial[i] != full[i] {
			t.Fatalf("flow %d: partial %v != full %v", i, partial[i], full[i])
		}
	}
}

// TestFlowClassValidation pins the constructor and setter contracts.
func TestFlowClassValidation(t *testing.T) {
	n := NewNetwork()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewFlowClass(members=0)", func() { n.NewFlowClass("c", 1, 0) })
	f := n.NewFlowClass("c", math.Inf(1), 2)
	mustPanic("SetMembers(0)", func() { n.SetMembers(f, 0) })
	r := n.AddResource("link", 100)
	f.Use(r, 1)
	n.Resolve()
	if f.MemberRate() != 50 || f.Rate() != 100 {
		t.Fatalf("member %v rate %v, want 50/100", f.MemberRate(), f.Rate())
	}
	n.SetMembers(f, 4)
	n.Resolve()
	if f.MemberRate() != 25 || f.Rate() != 100 {
		t.Fatalf("after SetMembers(4): member %v rate %v, want 25/100",
			f.MemberRate(), f.Rate())
	}
	// A plain NewFlow is a class of one and never perturbs existing math.
	if g := n.NewFlow("g", 7); g.Members() != 1 {
		t.Fatalf("NewFlow members = %d, want 1", g.Members())
	}
}
