package fluid

import (
	"math"
	"testing"

	"e2edt/internal/sim"
)

func newTestSim() (*sim.Engine, *Sim) {
	eng := sim.NewEngine()
	return eng, NewSim(eng)
}

func TestTransferCompletesAtExpectedTime(t *testing.T) {
	eng, s := newTestSim()
	link := s.AddResource("link", 100) // 100 B/s
	f := s.NewFlow("f", math.Inf(1))
	f.Use(link, 1)
	var doneAt sim.Time
	s.Start(&Transfer{Flow: f, Remaining: 500, OnComplete: func(now sim.Time) { doneAt = now }})
	eng.Run()
	if !almostEqual(float64(doneAt), 5, 1e-9) {
		t.Fatalf("completed at %v, want 5s (500B @ 100B/s)", doneAt)
	}
}

func TestTwoTransfersSerializeFairly(t *testing.T) {
	// Two 100-byte transfers on a 100 B/s link: each runs at 50 B/s until
	// both complete at t=2.
	eng, s := newTestSim()
	link := s.AddResource("link", 100)
	var times []sim.Time
	for i := 0; i < 2; i++ {
		f := s.NewFlow("f", math.Inf(1))
		f.Use(link, 1)
		s.Start(&Transfer{Flow: f, Remaining: 100, OnComplete: func(now sim.Time) {
			times = append(times, now)
		}})
	}
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("completed %d transfers, want 2", len(times))
	}
	for _, tm := range times {
		if !almostEqual(float64(tm), 2, 1e-9) {
			t.Fatalf("completed at %v, want 2s", tm)
		}
	}
}

func TestLateArrivalSpeedsUpAfterFirstCompletes(t *testing.T) {
	// f1: 100B starting at t=0 on 100B/s link. f2: 300B starting at t=0.
	// Shared until f1 done. f1 at 50B/s → done at t=2 (100B). f2 has 200B
	// left at t=2, then runs at 100B/s → done at t=4.
	eng, s := newTestSim()
	link := s.AddResource("link", 100)
	f1 := s.NewFlow("f1", math.Inf(1))
	f1.Use(link, 1)
	f2 := s.NewFlow("f2", math.Inf(1))
	f2.Use(link, 1)
	var t1, t2 sim.Time
	s.Start(&Transfer{Flow: f1, Remaining: 100, OnComplete: func(now sim.Time) { t1 = now }})
	s.Start(&Transfer{Flow: f2, Remaining: 300, OnComplete: func(now sim.Time) { t2 = now }})
	eng.Run()
	if !almostEqual(float64(t1), 2, 1e-9) {
		t.Fatalf("f1 done at %v, want 2", t1)
	}
	if !almostEqual(float64(t2), 4, 1e-9) {
		t.Fatalf("f2 done at %v, want 4", t2)
	}
}

func TestOnCompleteCanChainTransfers(t *testing.T) {
	eng, s := newTestSim()
	link := s.AddResource("link", 10)
	var finished []sim.Time
	var startNext func(n int) *Transfer
	startNext = func(n int) *Transfer {
		f := s.NewFlow("chain", math.Inf(1))
		f.Use(link, 1)
		return &Transfer{Flow: f, Remaining: 10, OnComplete: func(now sim.Time) {
			finished = append(finished, now)
			if n < 3 {
				s.Start(startNext(n + 1))
			}
		}}
	}
	s.Start(startNext(1))
	eng.Run()
	if len(finished) != 3 {
		t.Fatalf("chained %d completions, want 3", len(finished))
	}
	for i, tm := range finished {
		if !almostEqual(float64(tm), float64(i+1), 1e-9) {
			t.Fatalf("completion %d at %v, want %d", i, tm, i+1)
		}
	}
}

func TestOpenEndedTransferNeverCompletes(t *testing.T) {
	eng, s := newTestSim()
	link := s.AddResource("link", 100)
	f := s.NewFlow("stream", math.Inf(1))
	f.Use(link, 1)
	tr := &Transfer{Flow: f, Remaining: math.Inf(1)}
	s.Start(tr)
	eng.RunUntil(10)
	s.Sync()
	if !tr.Active() {
		t.Fatal("open-ended transfer should stay active")
	}
	if !almostEqual(tr.Transferred(), 1000, 1e-9) {
		t.Fatalf("transferred %v, want 1000 (100B/s × 10s)", tr.Transferred())
	}
}

func TestUsageAccounting(t *testing.T) {
	eng, s := newTestSim()
	link := s.AddResource("link", 100)
	cpu := s.AddResource("cpu", 1)
	f := s.NewFlow("f", math.Inf(1))
	f.UseTagged(link, 1, "net")
	f.UseTagged(cpu, 0.001, "sys") // 0.001 core-sec per byte → cap 1000 B/s
	tr := &Transfer{Flow: f, Remaining: 1000}
	s.Start(tr)
	eng.Run()
	// Link is the bottleneck: rate 100 B/s, duration 10s.
	if got := s.Usage(link, "net"); !almostEqual(got, 1000, 1e-9) {
		t.Fatalf("link usage = %v, want 1000 bytes", got)
	}
	// CPU: 0.001 × 100 B/s × 10 s = 1 core-second.
	if got := s.Usage(cpu, "sys"); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("cpu usage = %v, want 1 core-second", got)
	}
}

func TestUsageByTagFilter(t *testing.T) {
	eng, s := newTestSim()
	a := s.AddResource("a", 100)
	b := s.AddResource("b", 100)
	f := s.NewFlow("f", math.Inf(1))
	f.UseTagged(a, 1, "x")
	f.UseTagged(b, 1, "x")
	s.Start(&Transfer{Flow: f, Remaining: 100})
	eng.Run()
	all := s.UsageByTag(nil)
	if !almostEqual(all["x"], 200, 1e-9) {
		t.Fatalf("total tag x = %v, want 200", all["x"])
	}
	onlyA := s.UsageByTag(func(r *Resource) bool { return r == a })
	if !almostEqual(onlyA["x"], 100, 1e-9) {
		t.Fatalf("filtered tag x = %v, want 100", onlyA["x"])
	}
}

func TestResetUsage(t *testing.T) {
	eng, s := newTestSim()
	link := s.AddResource("link", 100)
	f := s.NewFlow("f", math.Inf(1))
	f.UseTagged(link, 1, "net")
	s.Start(&Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(5)
	s.ResetUsage()
	eng.RunUntil(10)
	s.Sync()
	if got := s.Usage(link, "net"); !almostEqual(got, 500, 1e-9) {
		t.Fatalf("usage after reset = %v, want 500", got)
	}
}

func TestSetDemandMidFlight(t *testing.T) {
	eng, s := newTestSim()
	link := s.AddResource("link", 100)
	f := s.NewFlow("f", math.Inf(1))
	f.Use(link, 1)
	tr := &Transfer{Flow: f, Remaining: math.Inf(1)}
	s.Start(tr)
	eng.RunUntil(1) // 100 bytes moved
	s.SetDemand(f, 10)
	eng.RunUntil(2) // 10 more bytes
	s.Sync()
	if !almostEqual(tr.Transferred(), 110, 1e-9) {
		t.Fatalf("transferred %v, want 110", tr.Transferred())
	}
}

func TestCancelTransfer(t *testing.T) {
	eng, s := newTestSim()
	link := s.AddResource("link", 100)
	f1 := s.NewFlow("f1", math.Inf(1))
	f1.Use(link, 1)
	f2 := s.NewFlow("f2", math.Inf(1))
	f2.Use(link, 1)
	tr1 := &Transfer{Flow: f1, Remaining: math.Inf(1)}
	completed := false
	tr2 := &Transfer{Flow: f2, Remaining: 150, OnComplete: func(sim.Time) { completed = true }}
	s.Start(tr1)
	s.Start(tr2)
	eng.RunUntil(1) // each at 50 B/s; tr2 moved 50, 100 left
	s.Cancel(tr1)
	eng.Run()
	if !completed {
		t.Fatal("tr2 did not complete")
	}
	// After cancel, tr2 runs at 100 B/s: 100 bytes in 1s → done at t=2.
	if !almostEqual(float64(tr2.Finished()), 2, 1e-9) {
		t.Fatalf("tr2 finished at %v, want 2", tr2.Finished())
	}
	if tr1.Active() {
		t.Fatal("cancelled transfer still active")
	}
	// Cancelling twice is a no-op.
	s.Cancel(tr1)
}

func TestStartTwicePanics(t *testing.T) {
	eng, s := newTestSim()
	_ = eng
	link := s.AddResource("link", 100)
	f := s.NewFlow("f", math.Inf(1))
	f.Use(link, 1)
	tr := &Transfer{Flow: f, Remaining: math.Inf(1)}
	s.Start(tr)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic starting transfer twice")
		}
	}()
	s.Start(tr)
}

func TestStalledTransferResumesOnCapacity(t *testing.T) {
	eng, s := newTestSim()
	link := s.AddResource("link", 100)
	blocker := s.NewFlow("blocker", math.Inf(1))
	blocker.Use(link, 1)
	blocked := s.NewFlow("blocked", 0) // zero demand: stalled
	blocked.Use(link, 1)
	trB := &Transfer{Flow: blocked, Remaining: 100}
	s.Start(&Transfer{Flow: blocker, Remaining: math.Inf(1)})
	s.Start(trB)
	eng.RunUntil(1)
	if trB.Transferred() != 0 {
		t.Fatalf("stalled transfer moved %v bytes", trB.Transferred())
	}
	s.SetDemand(blocked, math.Inf(1))
	eng.RunUntil(4)
	s.Sync()
	// From t=1 to t=4 both flows share: blocked gets 50 B/s → 150 bytes >
	// 100 needed; it completes at t=3.
	if trB.Active() {
		t.Fatal("transfer should have completed after demand raised")
	}
	if !almostEqual(float64(trB.Finished()), 3, 1e-9) {
		t.Fatalf("finished at %v, want 3", trB.Finished())
	}
}

func TestManySmallTransfersConserveBytes(t *testing.T) {
	eng, s := newTestSim()
	link := s.AddResource("link", 1000)
	total := 0.0
	const n = 50
	for i := 0; i < n; i++ {
		f := s.NewFlow("f", math.Inf(1))
		f.UseTagged(link, 1, "net")
		size := float64(10 * (i + 1))
		total += size
		s.Start(&Transfer{Flow: f, Remaining: size})
	}
	eng.Run()
	if got := s.Usage(link, "net"); !almostEqual(got, total, 1e-6) {
		t.Fatalf("accounted bytes %v, want %v", got, total)
	}
}
