package fluid_test

import (
	"fmt"
	"math"

	"e2edt/internal/fluid"
	"e2edt/internal/sim"
)

// Example shows the core modelling pattern: resources with capacities,
// flows with per-resource coefficients, and max-min fair sharing over
// virtual time.
func Example() {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)

	link := s.AddResource("link", 100) // 100 B/s
	// A zero-copy flow crosses the link once per byte; a two-copy flow
	// consumes twice the link capacity per payload byte.
	zeroCopy := s.NewFlow("zero-copy", math.Inf(1))
	zeroCopy.Use(link, 1)
	twoCopy := s.NewFlow("two-copy", math.Inf(1))
	twoCopy.Use(link, 2)

	s.Start(&fluid.Transfer{Flow: zeroCopy, Remaining: 100, OnComplete: func(now sim.Time) {
		fmt.Printf("zero-copy done at t=%.2fs\n", float64(now))
	}})
	s.Start(&fluid.Transfer{Flow: twoCopy, Remaining: 100, OnComplete: func(now sim.Time) {
		fmt.Printf("two-copy done at t=%.2fs\n", float64(now))
	}})
	eng.Run()

	// Max-min fairness on rates: both flows run at 33.3 B/s (the two-copy
	// flow loads the link at 66.6 B/s), so the zero-copy transfer finishes
	// first; the two-copy flow then speeds up to 50 B/s.
	// Output:
	// zero-copy done at t=3.00s
	// two-copy done at t=4.00s
}
