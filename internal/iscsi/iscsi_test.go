package iscsi

import (
	"testing"

	"e2edt/internal/blockdev"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// fakeMover is a deterministic in-test data plane: PDUs arrive after a
// fixed latency, data moves at a fixed rate.
type fakeMover struct {
	eng     *sim.Engine
	pduLat  sim.Duration
	byteSec float64 // data rate
	moves   []*Command
}

func (f *fakeMover) SendPDU(size float64, toTarget bool, fn func(sim.Time, bool)) {
	f.eng.Schedule(f.pduLat, func() { fn(f.eng.Now(), true) })
}

func (f *fakeMover) Move(cmd *Command, lun *LUN, w *Worker, onDone func(sim.Time)) {
	f.moves = append(f.moves, cmd)
	f.eng.Schedule(sim.Duration(float64(cmd.Length)/f.byteSec), func() { onDone(f.eng.Now()) })
}

type rig struct {
	eng    *sim.Engine
	s      *fluid.Sim
	h      *host.Host
	target *Target
	mover  *fakeMover
	sess   *Session
	buf    *numa.Buffer
}

func newRig(t *testing.T, cfg TargetConfig, luns int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	m := numa.MustNew(s, numa.Config{
		Name: "tgt", Nodes: 2, CoresPerNode: 8, CoreHz: 2e9,
		MemBandwidthPerNode:   20 * units.GBps,
		InterconnectBandwidth: 9.5 * units.GBps,
		RemoteAccessPenalty:   1.4, CoherencyWritePenalty: 3,
		MemBytes: 384 * units.GB,
	})
	h := host.New("tgt", m)
	tg := NewTarget("tgt", h, cfg)
	for i := 0; i < luns; i++ {
		tg.AddLUN(i, blockdev.NewRamdisk(m, "lun", 50*units.GB, m.Node(i%2)))
	}
	mv := &fakeMover{eng: eng, pduLat: 50 * sim.Microsecond, byteSec: 5 * units.GBps}
	return &rig{
		eng: eng, s: s, h: h, target: tg, mover: mv,
		sess: NewSession(tg, mv),
		buf:  m.NewBuffer("init", m.Node(0)),
	}
}

func TestSubmitReadCompletes(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 2)
	var done sim.Time
	var gotErr error
	r.sess.Submit(&Command{
		Op: OpRead, LUN: 0, Length: 4 * units.MB, Buffer: r.buf,
		OnComplete: func(now sim.Time, err error) { done, gotErr = now, err },
	})
	r.eng.Run()
	if gotErr != nil {
		t.Fatalf("unexpected error: %v", gotErr)
	}
	if done <= 0 {
		t.Fatal("command never completed")
	}
	// Two PDU latencies + device latency + transfer time as lower bound.
	min := 2*50e-6 + float64(4*units.MB)/(5*units.GBps)
	if float64(done) < min {
		t.Fatalf("completed at %v, faster than physically possible (%v)", done, min)
	}
	if r.target.Served != 1 {
		t.Fatalf("Served = %d", r.target.Served)
	}
	if r.sess.Inflight != 0 {
		t.Fatalf("Inflight = %d after completion", r.sess.Inflight)
	}
}

func TestValidationErrors(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	cases := []struct {
		cmd  *Command
		want error
	}{
		{&Command{Op: OpRead, LUN: 9, Length: units.MB, Buffer: r.buf}, ErrNoLUN},
		{&Command{Op: OpRead, LUN: 0, Length: 0, Buffer: r.buf}, ErrZeroLength},
		{&Command{Op: OpRead, LUN: 0, Length: units.MB}, ErrNilBuffer},
		{&Command{Op: OpRead, LUN: 0, Offset: 50 * units.GB, Length: units.MB, Buffer: r.buf}, ErrOutOfRange},
		{&Command{Op: OpRead, LUN: 0, Offset: -1, Length: units.MB, Buffer: r.buf}, ErrOutOfRange},
	}
	for i, c := range cases {
		var got error
		called := false
		c.cmd.OnComplete = func(_ sim.Time, err error) { got, called = err, true }
		r.sess.Submit(c.cmd)
		r.eng.Run()
		if !called {
			t.Fatalf("case %d: OnComplete not called", i)
		}
		if got != c.want {
			t.Fatalf("case %d: err = %v, want %v", i, got, c.want)
		}
	}
	if len(r.mover.moves) != 0 {
		t.Fatal("invalid commands must not reach the data plane")
	}
}

func TestClosedSession(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	r.sess.Close()
	var got error
	r.sess.Submit(&Command{Op: OpRead, LUN: 0, Length: units.MB, Buffer: r.buf,
		OnComplete: func(_ sim.Time, err error) { got = err }})
	r.eng.Run()
	if got != ErrSessionDown {
		t.Fatalf("err = %v, want ErrSessionDown", got)
	}
}

func TestQueueingBeyondWorkers(t *testing.T) {
	cfg := DefaultTargetConfig(numa.PolicyBind)
	cfg.ThreadsPerLUN = 2
	r := newRig(t, cfg, 1)
	const n = 10
	completed := 0
	var last sim.Time
	for i := 0; i < n; i++ {
		r.sess.Submit(&Command{Op: OpWrite, LUN: 0, Length: 8 * units.MB, Buffer: r.buf,
			OnComplete: func(now sim.Time, err error) {
				if err != nil {
					t.Fatalf("err: %v", err)
				}
				completed++
				last = now
			}})
	}
	r.eng.Run()
	if completed != n {
		t.Fatalf("completed %d of %d", completed, n)
	}
	// With 2 workers and a fixed-rate fake mover, 10 commands take at
	// least 5 serial transfer times.
	xfer := float64(8*units.MB) / (5 * units.GBps)
	if float64(last) < 5*xfer {
		t.Fatalf("finished at %v, queueing not enforced (want ≥ %v)", last, 5*xfer)
	}
}

func TestDuplicateLUNPanics(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate LUN")
		}
	}()
	r.target.AddLUN(0, blockdev.NewRamdisk(r.h.M, "dup", units.GB, r.h.M.Node(0)))
}

func TestBindPolicyPlacesWorkersLocally(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 2)
	for _, st := range r.target.luns {
		home := st.lun.Dev.MemoryBuffer().Homes[0]
		for _, w := range st.workers {
			if w.Thread.Node() != home {
				t.Fatalf("worker for LUN on node %d placed on node %v", home.ID, w.Thread.Node())
			}
			if !w.Bounce.Local(home) {
				t.Fatal("bounce buffer not local to worker")
			}
		}
	}
}

func TestDefaultPolicyWorkersUnpinned(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyDefault), 2)
	for _, st := range r.target.luns {
		for _, w := range st.workers {
			if w.Thread.Node() != nil {
				t.Fatal("default-policy worker should be unpinned")
			}
			if len(w.Bounce.Homes) != 2 {
				t.Fatal("default-policy bounce buffer should be interleaved")
			}
		}
	}
}

func TestContentionMultiplier(t *testing.T) {
	cfg := DefaultTargetConfig(numa.PolicyBind)
	cfg.ThreadsPerLUN = 4
	r := newRig(t, cfg, 2) // 8 workers on 16 cores: no oversubscription
	if got := r.target.ContentionMultiplier(); got != 1 {
		t.Fatalf("multiplier = %v, want 1 (undersubscribed)", got)
	}
	cfg2 := DefaultTargetConfig(numa.PolicyBind)
	cfg2.ThreadsPerLUN = 16
	r2 := newRig(t, cfg2, 2) // 32 workers on 16 cores
	got := r2.target.ContentionMultiplier()
	want := 1 + 0.35*(2-1)
	if got != want {
		t.Fatalf("multiplier = %v, want %v", got, want)
	}
}

func TestLUNsAccessor(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 6)
	if got := len(r.target.LUNs()); got != 6 {
		t.Fatalf("LUNs() returned %d, want 6", got)
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("Op names wrong")
	}
}

func TestCommandTimestamps(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	cmd := &Command{Op: OpRead, LUN: 0, Length: units.MB, Buffer: r.buf,
		OnComplete: func(sim.Time, error) {}}
	r.sess.Submit(cmd)
	r.eng.Run()
	if cmd.Done <= cmd.Issued {
		t.Fatalf("timestamps wrong: issued %v done %v", cmd.Issued, cmd.Done)
	}
}

func TestCommandTimeout(t *testing.T) {
	// A mover that drops the command PDU (dark link): the initiator-side
	// timer must fail the command.
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	var got error
	sess := NewSession(r.target, dropMover{eng: r.eng})
	sess.Timeout = 5
	sess.Submit(&Command{Op: OpRead, LUN: 0, Length: units.MB, Buffer: r.buf,
		OnComplete: func(_ sim.Time, err error) { got = err }})
	r.eng.Run()
	if got != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", got)
	}
	if sess.TimedOut != 1 {
		t.Fatalf("TimedOut = %d", sess.TimedOut)
	}
	if sess.Inflight != 0 {
		t.Fatalf("Inflight = %d after timeout", sess.Inflight)
	}
}

// dropMover drops every PDU (a failed control path), reporting the drop.
type dropMover struct{ eng *sim.Engine }

func (d dropMover) SendPDU(_ float64, _ bool, fn func(sim.Time, bool)) {
	if d.eng != nil {
		fn(d.eng.Now(), false)
	}
}
func (dropMover) Move(*Command, *LUN, *Worker, func(sim.Time)) {}

func TestTimeoutDoesNotDoubleComplete(t *testing.T) {
	// Response arrives before the timer: exactly one completion, and the
	// later timer must be a no-op.
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	r.sess.Timeout = 60
	calls := 0
	r.sess.Submit(&Command{Op: OpRead, LUN: 0, Length: units.MB, Buffer: r.buf,
		OnComplete: func(_ sim.Time, err error) {
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			calls++
		}})
	r.eng.Run()
	if calls != 1 {
		t.Fatalf("OnComplete called %d times", calls)
	}
	if r.sess.TimedOut != 0 {
		t.Fatalf("spurious timeout recorded")
	}
	if r.sess.Inflight != 0 {
		t.Fatalf("Inflight = %d", r.sess.Inflight)
	}
}

func TestValidationErrorsKeepInflightBalanced(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	done := 0
	r.sess.Submit(&Command{Op: OpRead, LUN: 9, Length: units.MB, Buffer: r.buf,
		OnComplete: func(sim.Time, error) { done++ }})
	r.eng.Run()
	if done != 1 || r.sess.Inflight != 0 {
		t.Fatalf("done=%d inflight=%d", done, r.sess.Inflight)
	}
}

// flakyMover drops PDUs until the heal time, then behaves like fakeMover.
type flakyMover struct {
	fakeMover
	healAt sim.Time
}

func (f *flakyMover) SendPDU(size float64, toTarget bool, fn func(sim.Time, bool)) {
	if f.eng.Now() < f.healAt {
		fn(f.eng.Now(), false)
		return
	}
	f.fakeMover.SendPDU(size, toTarget, fn)
}

func TestReplayRecoversDroppedCommandPDU(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	fm := &flakyMover{fakeMover: *r.mover, healAt: 0.5}
	sess := NewSession(r.target, fm)
	sess.MaxReplays = 20
	sess.ReplayDelay = 50 * sim.Millisecond
	var got error
	called := false
	sess.Submit(&Command{Op: OpRead, LUN: 0, Length: units.MB, Buffer: r.buf,
		OnComplete: func(_ sim.Time, err error) { got, called = err, true }})
	r.eng.Run()
	if !called || got != nil {
		t.Fatalf("called=%v err=%v, want clean completion after replays", called, got)
	}
	if sess.Replays < 1 || sess.Recovered != 1 {
		t.Fatalf("replays=%d recovered=%d", sess.Replays, sess.Recovered)
	}
	if sess.Inflight != 0 {
		t.Fatalf("Inflight = %d", sess.Inflight)
	}
}

func TestReplayExhaustionFailsTerminally(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	sess := NewSession(r.target, dropMover{eng: r.eng})
	sess.MaxReplays = 3
	sess.ReplayDelay = 10 * sim.Millisecond
	var got error
	calls := 0
	sess.Submit(&Command{Op: OpRead, LUN: 0, Length: units.MB, Buffer: r.buf,
		OnComplete: func(_ sim.Time, err error) { got = err; calls++ }})
	r.eng.Run()
	if calls != 1 {
		t.Fatalf("OnComplete called %d times", calls)
	}
	if got != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout after replay exhaustion", got)
	}
	if sess.Replays != 3 {
		t.Fatalf("replays = %d, want 3", sess.Replays)
	}
}

func TestReconnectReplaysParkedCommands(t *testing.T) {
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	r.sess.MaxReplays = 4
	r.sess.Close()
	results := map[int]error{}
	for i := 0; i < 3; i++ {
		i := i
		r.sess.Submit(&Command{Op: OpWrite, LUN: 0, Length: units.MB, Buffer: r.buf,
			OnComplete: func(_ sim.Time, err error) { results[i] = err }})
	}
	r.eng.Schedule(0.2, r.sess.Reconnect)
	r.eng.Run()
	if len(results) != 3 {
		t.Fatalf("completed %d of 3 parked commands", len(results))
	}
	for i, err := range results {
		if err != nil {
			t.Fatalf("parked command %d: %v", i, err)
		}
	}
	if r.sess.Inflight != 0 {
		t.Fatalf("Inflight = %d", r.sess.Inflight)
	}
	if !(!r.sess.Closed()) {
		t.Fatal("session should be open after Reconnect")
	}
}

func TestTimeoutReplayStillDeliversOnce(t *testing.T) {
	// Slow mover: the first timeout replays the command while the original
	// is still executing; the completed-guard must deliver exactly once.
	r := newRig(t, DefaultTargetConfig(numa.PolicyBind), 1)
	slow := &fakeMover{eng: r.eng, pduLat: 50 * sim.Microsecond, byteSec: 0.05 * units.GBps}
	sess := NewSession(r.target, slow)
	sess.Timeout = 0.05
	sess.MaxReplays = 10
	sess.ReplayDelay = 10 * sim.Millisecond
	calls := 0
	var got error
	sess.Submit(&Command{Op: OpRead, LUN: 0, Length: 8 * units.MB, Buffer: r.buf,
		OnComplete: func(_ sim.Time, err error) { got = err; calls++ }})
	r.eng.Run()
	if calls != 1 {
		t.Fatalf("OnComplete called %d times, want exactly once", calls)
	}
	if got != nil {
		t.Fatalf("err = %v, want eventual success", got)
	}
	if sess.Replays < 1 {
		t.Fatal("expected at least one timeout-driven replay")
	}
}
