// Package iscsi implements the storage-area-network control plane used by
// the paper's back end: logical units, SCSI read/write commands, a
// multi-threaded target with per-LUN worker pools, and initiator sessions.
//
// The data path is delegated to a Mover (the iser package provides the
// RDMA datamover), following the iSCSI/iSER split in RFC 5046: the target
// receives a command PDU, a worker thread executes the block I/O against
// the LUN's device, the mover transfers data with RDMA WRITE (for SCSI
// reads) or RDMA READ (for SCSI writes), and a response PDU completes the
// exchange.
//
// NUMA behaviour mirrors the paper's §3.1: under PolicyBind the target runs
// one process per NUMA node and each LUN is served by the process local to
// its backing memory; under PolicyDefault a single unpinned process serves
// all LUNs, so worker threads copy across sockets and pay coherency
// penalties on writes.
package iscsi

import (
	"errors"
	"fmt"
	"sort"

	"e2edt/internal/blockdev"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
)

// Op is a SCSI data operation.
type Op int

const (
	// OpRead transfers data target→initiator (SCSI READ).
	OpRead Op = iota
	// OpWrite transfers data initiator→target (SCSI WRITE).
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Errors returned through Command.OnComplete.
var (
	ErrNoLUN       = errors.New("iscsi: no such LUN")
	ErrOutOfRange  = errors.New("iscsi: I/O beyond end of device")
	ErrZeroLength  = errors.New("iscsi: zero-length I/O")
	ErrNilBuffer   = errors.New("iscsi: command without initiator buffer")
	ErrSessionDown = errors.New("iscsi: session closed")
	ErrTimeout     = errors.New("iscsi: command timed out")
)

// Command is one SCSI I/O request.
type Command struct {
	Op     Op
	LUN    int
	Offset int64
	Length int64
	// Buffer is the initiator-side data buffer.
	Buffer *numa.Buffer
	// Tag labels accounting for this command's data movement.
	Tag string
	// Charge, when non-nil, attaches additional initiator-side costs to
	// the command's data flow (page-cache copies, filesystem CPU, ...).
	Charge func(f *fluid.Flow)
	// OnComplete fires at the initiator when the response PDU arrives.
	OnComplete func(now sim.Time, err error)

	// Issued and Done record timing for latency statistics.
	Issued sim.Time
	Done   sim.Time

	// completed guards against double completion (normal response racing
	// an initiator-side timeout).
	completed bool
	// replays counts re-issues of this command under session recovery.
	replays int
	// timer is the pending initiator-side timeout event.
	timer *sim.Event
}

// Replays returns how many times the command was re-issued.
func (c *Command) Replays() int { return c.replays }

// LUN is a logical unit backed by a block device.
type LUN struct {
	ID  int
	Dev blockdev.Device
}

// Worker is one target I/O thread with its RDMA-registered bounce buffer.
type Worker struct {
	Thread *host.Thread
	Bounce *numa.Buffer
	busy   bool
}

// StreamMover is implemented by movers that support continuous streaming:
// instead of per-command events, the full data-path cost for `share` bytes
// of payload per flow-byte is attached to an externally managed fluid flow.
// Long-running pipelines (RFTP/GridFTP over the SAN) use this to avoid
// millions of per-block events while charging identical resources.
type StreamMover interface {
	AttachPath(f *fluid.Flow, op Op, lunID int, initBuf *numa.Buffer, share float64, tag string)
}

// Mover is the data-plane transport (implemented by the iser package).
type Mover interface {
	// SendPDU delivers a control PDU of the given size to the other side
	// after transport latency. fn always fires exactly once: ok=true on
	// delivery, ok=false when the transport dropped the PDU (dark link),
	// so session recovery can replay instead of inferring loss from hangs.
	SendPDU(size float64, toTarget bool, fn func(now sim.Time, ok bool))
	// Move transfers cmd's data using worker w's bounce buffer and
	// thread. It must invoke onDone when the last byte is placed.
	Move(cmd *Command, lun *LUN, w *Worker, onDone func(now sim.Time))
}

// TargetConfig tunes the target's threading and NUMA policy.
type TargetConfig struct {
	// Policy is the process placement policy (the paper's experiment
	// variable in Figures 7–8).
	Policy numa.Policy
	// ThreadsPerLUN is the worker-pool size per logical unit; the paper
	// finds 4 optimal.
	ThreadsPerLUN int
	// ContentionFactor adds CPU overhead when workers oversubscribe
	// cores: effective cycles ×(1 + f×max(0, threads/cores − 1)).
	ContentionFactor float64
	// CmdPDUBytes is the size of command/response PDUs.
	CmdPDUBytes float64
}

// DefaultTargetConfig returns the paper's tuned configuration.
func DefaultTargetConfig(policy numa.Policy) TargetConfig {
	return TargetConfig{
		Policy:           policy,
		ThreadsPerLUN:    4,
		ContentionFactor: 0.35,
		CmdPDUBytes:      128,
	}
}

// lunState is the per-LUN queue and worker pool.
type lunState struct {
	lun     *LUN
	queue   []*Command
	workers []*Worker
	proc    *host.Process
}

// Target is the storage server daemon.
type Target struct {
	Name string
	Host *host.Host
	Cfg  TargetConfig

	luns map[int]*lunState
	eng  *sim.Engine
	// Served counts completed commands.
	Served int64
}

// NewTarget creates a target daemon on h.
func NewTarget(name string, h *host.Host, cfg TargetConfig) *Target {
	if cfg.ThreadsPerLUN <= 0 {
		panic("iscsi: ThreadsPerLUN must be positive")
	}
	return &Target{
		Name: name, Host: h, Cfg: cfg,
		luns: make(map[int]*lunState),
		eng:  h.Sim.Engine,
	}
}

// AddLUN exports dev as LUN id. Under PolicyBind, the serving process is
// bound to the node holding the device's memory (local I/O, the paper's
// per-node tgtd design); media devices bind round-robin.
func (t *Target) AddLUN(id int, dev blockdev.Device) *LUN {
	if _, dup := t.luns[id]; dup {
		panic(fmt.Sprintf("iscsi: duplicate LUN %d", id))
	}
	lun := &LUN{ID: id, Dev: dev}
	var node *numa.Node
	if t.Cfg.Policy == numa.PolicyBind {
		if buf := dev.MemoryBuffer(); buf != nil && len(buf.Homes) == 1 {
			node = buf.Homes[0]
		}
	}
	proc := t.Host.NewProcess(fmt.Sprintf("%s-lun%d", t.Name, id), t.Cfg.Policy, node)
	st := &lunState{lun: lun, proc: proc}
	for i := 0; i < t.Cfg.ThreadsPerLUN; i++ {
		th := proc.NewThread()
		st.workers = append(st.workers, &Worker{
			Thread: th,
			Bounce: bounceBuffer(th, fmt.Sprintf("%s-lun%d-bounce%d", t.Name, id, i)),
		})
	}
	t.luns[id] = st
	return lun
}

func bounceBuffer(th *host.Thread, name string) *numa.Buffer {
	m := th.Proc.Host.M
	if n := th.Node(); n != nil {
		return m.NewBuffer(name, n)
	}
	return m.InterleavedBuffer(name)
}

// LUNs returns the exported LUNs sorted by id. The order is part of the
// contract: callers register flows and placement entities in this order,
// and replay determinism depends on it.
func (t *Target) LUNs() []*LUN {
	out := make([]*LUN, 0, len(t.luns))
	for _, st := range t.luns {
		out = append(out, st.lun)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LUN returns the logical unit with the given id, or nil.
func (t *Target) LUN(id int) *LUN {
	if st, ok := t.luns[id]; ok {
		return st.lun
	}
	return nil
}

// Workers returns the worker pool serving the given LUN (nil if absent).
// Exposed for streaming-mode movers that spread steady-state load across
// the pool.
func (t *Target) Workers(id int) []*Worker {
	if st, ok := t.luns[id]; ok {
		return st.workers
	}
	return nil
}

// Oversubscription returns the worker-threads-per-available-core ratio used
// by the contention model.
func (t *Target) Oversubscription() float64 {
	threads := 0
	for _, st := range t.luns {
		threads += len(st.workers)
	}
	cores := t.Host.M.TotalCores()
	if t.Cfg.Policy == numa.PolicyBind {
		// Bound processes only use their node's cores, but LUNs are
		// spread across nodes, so the full machine is still available.
		cores = t.Host.M.TotalCores()
	}
	if cores == 0 {
		return 0
	}
	return float64(threads) / float64(cores)
}

// ContentionMultiplier is the CPU inflation applied to worker copies.
func (t *Target) ContentionMultiplier() float64 {
	over := t.Oversubscription()
	if over <= 1 {
		return 1
	}
	return 1 + t.Cfg.ContentionFactor*(over-1)
}

// Session is an initiator's connection to a target through a mover. The
// mover carries all initiator-side cost context (the open-iscsi initiator
// is thin; most protocol cost sits on the target).
type Session struct {
	Target *Target
	Mover  Mover
	// Timeout, when positive, fails commands at the initiator with
	// ErrTimeout if no response arrives in time (open-iscsi's
	// node.session.timeo equivalent). The target may still be executing
	// the command — exactly the messy reality of SCSI aborts.
	Timeout sim.Duration
	// MaxReplays, when positive, enables session recovery: a command whose
	// PDU drops or that times out is re-issued up to MaxReplays times
	// instead of failing terminally, and a closed session parks new
	// submissions for Reconnect instead of failing with ErrSessionDown.
	// Replayed data ops are offset-addressed and therefore idempotent; the
	// completed-guard absorbs a late original response racing a replay.
	MaxReplays int
	// ReplayDelay is the pause before a re-issue (default 50 ms).
	ReplayDelay sim.Duration

	closed bool
	// Inflight tracks submitted-but-incomplete commands.
	Inflight int
	// TimedOut counts commands failed by the initiator-side timer.
	TimedOut int64
	// Replays counts command re-issues; Recovered counts commands that
	// completed successfully after at least one replay.
	Replays   int64
	Recovered int64

	// pending holds uncompleted commands in submission order when recovery
	// is enabled, for replay at Reconnect.
	pending []*Command
}

// recoveryEnabled reports whether command replay is on.
func (s *Session) recoveryEnabled() bool { return s.MaxReplays > 0 }

// NewSession opens a session.
func NewSession(t *Target, m Mover) *Session {
	if m == nil {
		panic("iscsi: session needs a mover")
	}
	return &Session{Target: t, Mover: m}
}

// Close fails subsequent submissions (or, under recovery, parks them for
// Reconnect).
func (s *Session) Close() { s.closed = true }

// Closed reports whether the session is down.
func (s *Session) Closed() bool { return s.closed }

// Reconnect reopens a closed session and, when recovery is enabled,
// replays every uncompleted command in submission order — both commands
// parked while the session was down and commands that were in flight when
// it went down. A late original response racing its replay is absorbed by
// the completed-guard, and replayed data ops are idempotent.
func (s *Session) Reconnect() {
	if !s.closed {
		return
	}
	s.closed = false
	if !s.recoveryEnabled() {
		return
	}
	eng := s.Target.eng
	replay := make([]*Command, len(s.pending))
	copy(replay, s.pending)
	eng.Tracef("iscsi", "session reconnected: replaying %d uncompleted commands", len(replay))
	for _, cmd := range replay {
		if cmd.completed {
			continue
		}
		s.reissue(cmd)
	}
}

// Submit validates and issues cmd. Completion (or validation failure) is
// reported through cmd.OnComplete.
func (s *Session) Submit(cmd *Command) {
	eng := s.Target.eng
	cmd.Issued = eng.Now()
	// Every submitted command is in flight until finish() delivers its
	// single completion (success, validation error, or timeout).
	s.Inflight++
	fail := func(err error) {
		eng.Schedule(0, func() { s.finish(cmd, err) })
	}
	if s.closed && !s.recoveryEnabled() {
		fail(ErrSessionDown)
		return
	}
	st, ok := s.Target.luns[cmd.LUN]
	if !ok {
		fail(ErrNoLUN)
		return
	}
	switch {
	case cmd.Length <= 0:
		fail(ErrZeroLength)
		return
	case cmd.Buffer == nil:
		fail(ErrNilBuffer)
		return
	case cmd.Offset < 0 || cmd.Offset+cmd.Length > st.lun.Dev.Size():
		fail(ErrOutOfRange)
		return
	}
	if s.recoveryEnabled() {
		s.pending = append(s.pending, cmd)
	}
	if s.closed {
		// Parked: replayed from pending at Reconnect.
		eng.Tracef("iscsi", "parked %s lun=%d len=%d awaiting reconnect", cmd.Op, cmd.LUN, cmd.Length)
		return
	}
	eng.Tracef("iscsi", "submit %s lun=%d len=%d", cmd.Op, cmd.LUN, cmd.Length)
	s.armTimeout(cmd)
	s.sendCmdPDU(st, cmd)
}

// armTimeout (re)arms the initiator-side response timer for cmd.
func (s *Session) armTimeout(cmd *Command) {
	if s.Timeout <= 0 {
		return
	}
	eng := s.Target.eng
	if cmd.timer != nil {
		eng.Cancel(cmd.timer)
	}
	cmd.timer = eng.Schedule(s.Timeout, func() {
		cmd.timer = nil
		if cmd.completed {
			return
		}
		if s.recoveryEnabled() && cmd.replays < s.MaxReplays {
			eng.Tracef("iscsi", "timeout %s lun=%d len=%d: replaying", cmd.Op, cmd.LUN, cmd.Length)
			s.replay(cmd)
			return
		}
		s.TimedOut++
		eng.Tracef("iscsi", "timeout %s lun=%d len=%d", cmd.Op, cmd.LUN, cmd.Length)
		s.finish(cmd, ErrTimeout)
	})
}

// sendCmdPDU issues the command PDU toward the target. A dropped PDU is
// replayed under recovery; otherwise it is silently lost and the command
// hangs until the initiator timeout fires (legacy behavior).
func (s *Session) sendCmdPDU(st *lunState, cmd *Command) {
	s.Mover.SendPDU(s.Target.Cfg.CmdPDUBytes, true, func(_ sim.Time, ok bool) {
		if !ok {
			if s.recoveryEnabled() && !cmd.completed {
				s.replay(cmd)
			}
			return
		}
		s.enqueue(st, cmd)
	})
}

// replay schedules a re-issue of cmd after ReplayDelay, failing terminally
// once MaxReplays is exhausted. A replay attempted while the session is
// closed waits for Reconnect (the command stays in pending).
func (s *Session) replay(cmd *Command) {
	if cmd.completed || s.closed {
		return
	}
	if cmd.replays >= s.MaxReplays {
		s.finish(cmd, ErrTimeout)
		return
	}
	eng := s.Target.eng
	delay := s.ReplayDelay
	if delay <= 0 {
		delay = 50 * sim.Millisecond
	}
	eng.Schedule(delay, func() {
		if cmd.completed || s.closed {
			return
		}
		s.reissue(cmd)
	})
}

// reissue re-sends cmd's command PDU immediately, counting the replay.
func (s *Session) reissue(cmd *Command) {
	st, ok := s.Target.luns[cmd.LUN]
	if !ok {
		s.finish(cmd, ErrNoLUN)
		return
	}
	cmd.replays++
	s.Replays++
	s.Target.eng.Tracef("iscsi", "reissue %s lun=%d len=%d attempt=%d",
		cmd.Op, cmd.LUN, cmd.Length, cmd.replays)
	s.armTimeout(cmd)
	s.sendCmdPDU(st, cmd)
}

// finish delivers a command's final status exactly once.
func (s *Session) finish(cmd *Command, err error) {
	if cmd.completed {
		return
	}
	cmd.completed = true
	s.Inflight--
	if cmd.timer != nil {
		s.Target.eng.Cancel(cmd.timer)
		cmd.timer = nil
	}
	if s.recoveryEnabled() {
		for i, p := range s.pending {
			if p == cmd {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		if err == nil && cmd.replays > 0 {
			s.Recovered++
		}
	}
	cmd.Done = s.Target.eng.Now()
	if cmd.OnComplete != nil {
		cmd.OnComplete(cmd.Done, err)
	}
}

// enqueue hands the command to the LUN's worker pool.
func (s *Session) enqueue(st *lunState, cmd *Command) {
	for _, w := range st.workers {
		if !w.busy {
			s.run(st, w, cmd)
			return
		}
	}
	st.queue = append(st.queue, cmd)
}

// run executes cmd on worker w: device access latency, data movement,
// response PDU, then next queued command.
func (s *Session) run(st *lunState, w *Worker, cmd *Command) {
	w.busy = true
	eng := s.Target.eng
	eng.Schedule(st.lun.Dev.AccessLatency(), func() {
		s.Mover.Move(cmd, st.lun, w, func(sim.Time) {
			// Response PDU back to the initiator. A dropped response is
			// recovered by the initiator timeout replaying the command.
			s.Mover.SendPDU(s.Target.Cfg.CmdPDUBytes, false, func(now sim.Time, ok bool) {
				if !ok {
					return
				}
				s.Target.Served++
				eng.Tracef("iscsi", "done %s lun=%d len=%d lat=%.6fs",
					cmd.Op, cmd.LUN, cmd.Length, float64(now-cmd.Issued))
				s.finish(cmd, nil)
			})
			// The worker frees as soon as data movement finishes; the
			// response PDU is asynchronous.
			w.busy = false
			if len(st.queue) > 0 {
				next := st.queue[0]
				st.queue = st.queue[1:]
				s.run(st, w, next)
			}
		})
	})
}
