// Package fsim is an XFS-like filesystem layer mounted on the LUNs a SAN
// session exports, matching the paper's front-end setup (§4.3): the
// initiator formats the iSER block devices with XFS and applications reach
// them through POSIX interfaces.
//
// The model captures the filesystem properties the paper's comparison
// turns on:
//
//   - striping: files spread across all LUNs in stripe-sized extents, so
//     parallel I/O exercises every LUN, link and NUMA node (XFS allocation
//     groups);
//   - direct I/O versus the page cache: buffered I/O pays an extra memory
//     copy per byte on the front-end host — the "I/O cache effect" that
//     costs GridFTP dearly — while O_DIRECT hands application buffers
//     straight to the SAN;
//   - metadata/journal overhead: writes periodically emit small journal
//     commands and all I/O pays a small per-byte filesystem CPU cost.
package fsim

import (
	"errors"
	"fmt"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/iscsi"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// Errors returned by filesystem operations.
var (
	ErrNoSpace   = errors.New("fsim: no space left on device")
	ErrExists    = errors.New("fsim: file exists")
	ErrNotFound  = errors.New("fsim: file not found")
	ErrBadRange  = errors.New("fsim: I/O beyond end of file")
	ErrStreaming = errors.New("fsim: session mover does not support streaming")
)

// Options tune the filesystem model.
type Options struct {
	// StripeSize is the per-LUN extent size (XFS stripe unit).
	StripeSize int64
	// JournalEveryBytes emits one journal write per this many data bytes
	// written (buffered or direct).
	JournalEveryBytes int64
	// JournalBytes is the size of each journal write.
	JournalBytes int64
	// FSCyclesPerByte is filesystem request processing CPU.
	FSCyclesPerByte float64
	// PageCacheCyclesPerByte is the buffered-I/O copy cost per byte.
	PageCacheCyclesPerByte float64
}

// DefaultOptions returns XFS-like settings.
func DefaultOptions() Options {
	return Options{
		StripeSize:             4 * units.MB,
		JournalEveryBytes:      256 * units.MB,
		JournalBytes:           units.MB,
		FSCyclesPerByte:        0.03,
		PageCacheCyclesPerByte: 0.45,
	}
}

// FS is a mounted filesystem striped over a session's LUNs.
type FS struct {
	Sess *iscsi.Session
	// Host is the front-end host the filesystem is mounted on.
	Host *host.Host
	Opt  Options

	luns  []*iscsi.LUN
	files map[string]*File
	used  int64
	total int64
	eng   *sim.Engine
	// journalDebt accumulates written bytes until a journal flush is due.
	journalDebt int64
	// JournalWrites counts emitted journal commands.
	JournalWrites int64
}

// Mount builds a filesystem over every LUN the session's target exports.
func Mount(sess *iscsi.Session, h *host.Host, opt Options) (*FS, error) {
	if opt.StripeSize <= 0 {
		return nil, fmt.Errorf("fsim: StripeSize must be positive")
	}
	luns := sess.Target.LUNs()
	if len(luns) == 0 {
		return nil, fmt.Errorf("fsim: target exports no LUNs")
	}
	// Deterministic stripe order.
	for i := 0; i < len(luns); i++ {
		for j := i + 1; j < len(luns); j++ {
			if luns[j].ID < luns[i].ID {
				luns[i], luns[j] = luns[j], luns[i]
			}
		}
	}
	total := int64(0)
	for _, l := range luns {
		total += l.Dev.Size()
	}
	return &FS{
		Sess: sess, Host: h, Opt: opt,
		luns:  luns,
		files: make(map[string]*File),
		total: total,
		eng:   h.Sim.Engine,
	}, nil
}

// Free returns unallocated bytes.
func (fs *FS) Free() int64 { return fs.total - fs.used }

// LUNCount returns the stripe width.
func (fs *FS) LUNCount() int { return len(fs.luns) }

// File is a fixed-size file striped across the filesystem's LUNs.
type File struct {
	Name string
	Size int64
	fs   *FS
}

// Create allocates a file of the given size.
func (fs *FS) Create(name string, size int64) (*File, error) {
	if _, dup := fs.files[name]; dup {
		return nil, ErrExists
	}
	if size <= 0 {
		return nil, fmt.Errorf("fsim: file size must be positive")
	}
	if size > fs.Free() {
		return nil, ErrNoSpace
	}
	f := &File{Name: name, Size: size, fs: fs}
	fs.files[name] = f
	fs.used += size
	return f, nil
}

// Open looks up an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotFound
	}
	return f, nil
}

// Remove frees a file.
func (fs *FS) Remove(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return ErrNotFound
	}
	fs.used -= f.Size
	delete(fs.files, name)
	return nil
}

// lunFor maps a file offset to its stripe LUN.
func (fs *FS) lunFor(off int64) *iscsi.LUN {
	stripe := off / fs.Opt.StripeSize
	return fs.luns[int(stripe)%len(fs.luns)]
}

// pageCacheCharge attaches the buffered-I/O page-cache copy: one extra
// memcpy between the page cache and the application buffer. The kernel
// page cache spans gigabytes and spills across nodes regardless of the
// process's numactl policy, so it is modelled as interleaved memory.
func (fs *FS) pageCacheCharge(f *fluid.Flow, th *host.Thread, appBuf *numa.Buffer, write bool, share float64) {
	cache := fs.Host.M.InterleavedBuffer("pagecache")
	if write {
		// App buffer → page cache.
		th.ChargeCopy(f, appBuf, cache, share, fs.Opt.PageCacheCyclesPerByte, host.CatCopy)
	} else {
		// Page cache → app buffer.
		th.ChargeCopy(f, cache, appBuf, share, fs.Opt.PageCacheCyclesPerByte, host.CatCopy)
	}
}

// IOOptions control one I/O request or stream.
type IOOptions struct {
	// Thread is the application thread performing the I/O.
	Thread *host.Thread
	// Buffer is the application data buffer.
	Buffer *numa.Buffer
	// Direct selects O_DIRECT (no page-cache copy).
	Direct bool
	// Tag labels accounting.
	Tag string
}

func (o IOOptions) validate() error {
	if o.Thread == nil || o.Buffer == nil {
		return fmt.Errorf("fsim: I/O needs a thread and a buffer")
	}
	return nil
}

// ReadAt issues a read of [off, off+length) and calls done on completion.
func (f *File) ReadAt(off, length int64, o IOOptions, done func(now sim.Time, err error)) {
	f.io(iscsi.OpRead, off, length, o, done)
}

// WriteAt issues a write of [off, off+length); journal traffic is added
// according to the filesystem options.
func (f *File) WriteAt(off, length int64, o IOOptions, done func(now sim.Time, err error)) {
	f.io(iscsi.OpWrite, off, length, o, done)
}

// io splits the request along stripe boundaries and fans it out.
func (f *File) io(op iscsi.Op, off, length int64, o IOOptions, done func(sim.Time, error)) {
	fail := func(err error) {
		f.fs.eng.Schedule(0, func() { done(f.fs.eng.Now(), err) })
	}
	if err := o.validate(); err != nil {
		fail(err)
		return
	}
	if length <= 0 || off < 0 || off+length > f.Size {
		fail(ErrBadRange)
		return
	}
	total := length
	type piece struct {
		lun    *iscsi.LUN
		length int64
	}
	var pieces []piece
	for length > 0 {
		stripeEnd := (off/f.fs.Opt.StripeSize + 1) * f.fs.Opt.StripeSize
		n := stripeEnd - off
		if n > length {
			n = length
		}
		pieces = append(pieces, piece{f.fs.lunFor(off), n})
		off += n
		length -= n
	}
	remaining := len(pieces)
	var firstErr error
	for _, p := range pieces {
		p := p
		charge := func(fl *fluid.Flow) {
			o.Thread.ChargeCPU(fl, f.fs.Opt.FSCyclesPerByte, host.CatIO)
			if !o.Direct {
				f.fs.pageCacheCharge(fl, o.Thread, o.Buffer, op == iscsi.OpWrite, 1)
			}
		}
		f.fs.Sess.Submit(&iscsi.Command{
			Op: op, LUN: p.lun.ID,
			Offset: 0, Length: p.length,
			Buffer: o.Buffer, Tag: o.Tag, Charge: charge,
			OnComplete: func(now sim.Time, err error) {
				if err != nil && firstErr == nil {
					firstErr = err
				}
				remaining--
				if remaining == 0 {
					done(now, firstErr)
				}
			},
		})
	}
	if op == iscsi.OpWrite {
		f.fs.maybeJournal(o, total)
	}
}

// maybeJournal emits one small journal write per JournalEveryBytes of data
// written (metadata and log traffic).
func (fs *FS) maybeJournal(o IOOptions, written int64) {
	if fs.Opt.JournalEveryBytes <= 0 || fs.Opt.JournalBytes <= 0 {
		return
	}
	fs.journalDebt += written
	for fs.journalDebt >= fs.Opt.JournalEveryBytes {
		fs.journalDebt -= fs.Opt.JournalEveryBytes
		fs.JournalWrites++
		fs.Sess.Submit(&iscsi.Command{
			Op: iscsi.OpWrite, LUN: fs.luns[0].ID,
			Offset: 0, Length: fs.Opt.JournalBytes,
			Buffer: o.Buffer, Tag: "journal",
			OnComplete: func(sim.Time, error) {},
		})
	}
}

// Sync flushes the journal: a small write to LUN 0.
func (fs *FS) Sync(o IOOptions, done func(now sim.Time, err error)) {
	if err := o.validate(); err != nil {
		fs.eng.Schedule(0, func() { done(fs.eng.Now(), err) })
		return
	}
	fs.Sess.Submit(&iscsi.Command{
		Op: iscsi.OpWrite, LUN: fs.luns[0].ID,
		Offset: 0, Length: fs.Opt.JournalBytes,
		Buffer: o.Buffer, Tag: "journal",
		OnComplete: done,
	})
}

// AttachStream charges the full steady-state cost of streaming this file
// (read or write) onto flow fl: the SAN path spread across all LUNs, the
// filesystem CPU, journal write amplification, and — for buffered I/O —
// the page-cache copy. The session's mover must support streaming.
func (f *File) AttachStream(fl *fluid.Flow, op iscsi.Op, o IOOptions, share float64) error {
	if err := o.validate(); err != nil {
		return err
	}
	sm, ok := f.fs.Sess.Mover.(iscsi.StreamMover)
	if !ok {
		return ErrStreaming
	}
	per := share / float64(len(f.fs.luns))
	for _, l := range f.fs.luns {
		sm.AttachPath(fl, op, l.ID, o.Buffer, per, o.Tag)
	}
	o.Thread.ChargeCPU(fl, share*f.fs.Opt.FSCyclesPerByte, host.CatIO)
	if op == iscsi.OpWrite && f.fs.Opt.JournalEveryBytes > 0 {
		// Journal amplification: extra SAN writes to LUN 0.
		amp := share * float64(f.fs.Opt.JournalBytes) / float64(f.fs.Opt.JournalEveryBytes)
		sm.AttachPath(fl, iscsi.OpWrite, f.fs.luns[0].ID, o.Buffer, amp, "journal")
	}
	if !o.Direct {
		f.fs.pageCacheCharge(fl, o.Thread, o.Buffer, op == iscsi.OpWrite, share)
	}
	return nil
}
