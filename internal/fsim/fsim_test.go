package fsim

import (
	"math"
	"testing"

	"e2edt/internal/blockdev"
	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/iscsi"
	"e2edt/internal/iser"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

type rig struct {
	eng  *sim.Engine
	s    *fluid.Sim
	init *host.Host
	tgt  *host.Host
	fs   *FS
	proc *host.Process
}

func newRig(t *testing.T, luns int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	hi := host.New("init", numa.MustNew(s, testbed.FrontEndLAN("init")))
	ht := host.New("tgt", numa.MustNew(s, testbed.BackEndLAN("tgt")))
	var links []*fabric.Link
	for i := 0; i < 2; i++ {
		links = append(links, fabric.Connect(s, testbed.IBFDR56("ib"+string(rune('0'+i))),
			hi, hi.M.Node(i), ht, ht.M.Node(i)))
	}
	tg := iscsi.NewTarget("tgt", ht, iscsi.DefaultTargetConfig(numa.PolicyBind))
	for i := 0; i < luns; i++ {
		tg.AddLUN(i, blockdev.NewRamdisk(ht.M, "lun", 50*units.GB, ht.M.Node(i%2)))
	}
	proc := hi.NewProcess("app", numa.PolicyBind, hi.M.Node(0))
	mv := iser.NewMover(
		[]iser.Portal{iser.PortalFor(links[0], ht), iser.PortalFor(links[1], ht)},
		proc.NewThread(), tg, iser.DefaultParams())
	fs, err := Mount(iscsi.NewSession(tg, mv), hi, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, s: s, init: hi, tgt: ht, fs: fs, proc: proc}
}

func (r *rig) ioOpts(direct bool) IOOptions {
	return IOOptions{
		Thread: r.proc.NewThread(),
		Buffer: r.init.M.NewBuffer("app", r.init.M.Node(0)),
		Direct: direct,
		Tag:    "t",
	}
}

func TestMountValidation(t *testing.T) {
	r := newRig(t, 2)
	if _, err := Mount(r.fs.Sess, r.init, Options{StripeSize: 0}); err == nil {
		t.Fatal("zero stripe should fail")
	}
	if r.fs.LUNCount() != 2 {
		t.Fatalf("LUNCount = %d", r.fs.LUNCount())
	}
	if r.fs.Free() != 100*units.GB {
		t.Fatalf("Free = %d", r.fs.Free())
	}
}

func TestCreateOpenRemove(t *testing.T) {
	r := newRig(t, 2)
	f, err := r.fs.Create("data", 10*units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.Create("data", units.GB); err != ErrExists {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := r.fs.Create("huge", 200*units.GB); err != ErrNoSpace {
		t.Fatalf("oversize create: %v", err)
	}
	if _, err := r.fs.Create("neg", 0); err == nil {
		t.Fatal("zero-size create should fail")
	}
	got, err := r.fs.Open("data")
	if err != nil || got != f {
		t.Fatalf("Open: %v", err)
	}
	if _, err := r.fs.Open("missing"); err != ErrNotFound {
		t.Fatalf("Open missing: %v", err)
	}
	if err := r.fs.Remove("data"); err != nil {
		t.Fatal(err)
	}
	if r.fs.Free() != 100*units.GB {
		t.Fatal("Remove did not free space")
	}
	if err := r.fs.Remove("data"); err != ErrNotFound {
		t.Fatalf("double remove: %v", err)
	}
}

func TestReadAtCompletes(t *testing.T) {
	r := newRig(t, 2)
	f, _ := r.fs.Create("data", 10*units.GB)
	var done sim.Time
	f.ReadAt(0, 8*units.MB, r.ioOpts(true), func(now sim.Time, err error) {
		if err != nil {
			t.Fatalf("read failed: %v", err)
		}
		done = now
	})
	r.eng.Run()
	if done <= 0 {
		t.Fatal("read never completed")
	}
}

func TestStripingSpansLUNs(t *testing.T) {
	r := newRig(t, 2)
	f, _ := r.fs.Create("data", 10*units.GB)
	// A 16 MB read with a 4 MB stripe spans both LUNs.
	ok := false
	f.ReadAt(0, 16*units.MB, r.ioOpts(true), func(now sim.Time, err error) {
		if err != nil {
			t.Fatalf("read failed: %v", err)
		}
		ok = true
	})
	r.eng.Run()
	if !ok {
		t.Fatal("striped read incomplete")
	}
	if r.fs.Sess.Target.Served < 4 {
		t.Fatalf("expected ≥4 stripe commands, got %d", r.fs.Sess.Target.Served)
	}
}

func TestIOValidation(t *testing.T) {
	r := newRig(t, 2)
	f, _ := r.fs.Create("data", 10*units.MB)
	var errs []error
	collect := func(_ sim.Time, err error) { errs = append(errs, err) }
	f.ReadAt(0, 20*units.MB, r.ioOpts(true), collect) // beyond EOF
	f.ReadAt(-1, units.MB, r.ioOpts(true), collect)   // negative
	f.ReadAt(0, 0, r.ioOpts(true), collect)           // zero
	f.ReadAt(0, units.MB, IOOptions{}, collect)       // no thread/buffer
	r.eng.Run()
	if len(errs) != 4 {
		t.Fatalf("got %d errors, want 4", len(errs))
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestJournalWritesEmitted(t *testing.T) {
	r := newRig(t, 2)
	f, _ := r.fs.Create("data", 10*units.GB)
	o := r.ioOpts(true)
	done := 0
	// 512 MB written with a 256 MB journal interval → ≥2 journal writes.
	for i := 0; i < 128; i++ {
		f.WriteAt(int64(i)*4*units.MB, 4*units.MB, o, func(_ sim.Time, err error) {
			if err != nil {
				t.Fatalf("write failed: %v", err)
			}
			done++
		})
	}
	r.eng.Run()
	if done != 128 {
		t.Fatalf("completed %d writes", done)
	}
	if r.fs.JournalWrites < 2 {
		t.Fatalf("journal writes = %d, want ≥2", r.fs.JournalWrites)
	}
}

func TestSyncFlushesJournal(t *testing.T) {
	r := newRig(t, 2)
	ok := false
	r.fs.Sync(r.ioOpts(true), func(_ sim.Time, err error) {
		if err != nil {
			t.Fatalf("sync failed: %v", err)
		}
		ok = true
	})
	r.eng.Run()
	if !ok {
		t.Fatal("sync incomplete")
	}
}

func TestBufferedSlowerThanDirect(t *testing.T) {
	// Stream 2 GB through one thread, buffered vs direct: buffered pays
	// the page-cache copy and must take longer.
	run := func(direct bool) sim.Time {
		r := newRig(t, 2)
		f, _ := r.fs.Create("data", 10*units.GB)
		o := r.ioOpts(direct)
		var last sim.Time
		var issue func(i int)
		issue = func(i int) {
			if i >= 64 {
				return
			}
			f.ReadAt(int64(i)*32*units.MB, 32*units.MB, o, func(now sim.Time, err error) {
				if err != nil {
					t.Fatalf("read failed: %v", err)
				}
				last = now
				issue(i + 1)
			})
		}
		issue(0)
		r.eng.Run()
		return last
	}
	direct := run(true)
	buffered := run(false)
	if buffered <= direct {
		t.Fatalf("buffered (%v) should be slower than direct (%v)", buffered, direct)
	}
}

func TestAttachStreamChargesSANPath(t *testing.T) {
	r := newRig(t, 2)
	f, _ := r.fs.Create("data", 10*units.GB)
	fl := r.s.NewFlow("stream", math.Inf(1))
	o := r.ioOpts(true)
	if err := f.AttachStream(fl, iscsi.OpRead, o, 1); err != nil {
		t.Fatal(err)
	}
	tr := &fluid.Transfer{Flow: fl, Remaining: math.Inf(1)}
	r.s.Start(tr)
	r.eng.RunUntil(5)
	r.s.Sync()
	g := units.ToGbps(tr.Transferred() / 5)
	// Full SAN streaming read: near the 2×FDR ceiling.
	if g < 80 || g > 112.1 {
		t.Fatalf("stream read = %.1f Gbps, want ≈90–112", g)
	}
	// Target-side CPU was charged.
	if r.tgt.HostCPUReport().ByCategory[host.CatIO] <= 0 {
		t.Fatal("target copy not charged in streaming mode")
	}
}

func TestAttachStreamWriteJournalAmplification(t *testing.T) {
	r := newRig(t, 2)
	f, _ := r.fs.Create("data", 10*units.GB)
	fl := r.s.NewFlow("stream", math.Inf(1))
	o := r.ioOpts(true)
	o.Tag = "data"
	if err := f.AttachStream(fl, iscsi.OpWrite, o, 1); err != nil {
		t.Fatal(err)
	}
	// Journal adds a small extra wire component tagged "journal".
	found := false
	for _, u := range fl.Uses {
		if u.Tag == "journal" {
			found = true
		}
	}
	if !found {
		t.Fatal("journal amplification missing from stream charges")
	}
}

func TestAttachStreamValidation(t *testing.T) {
	r := newRig(t, 2)
	f, _ := r.fs.Create("data", units.GB)
	fl := r.s.NewFlow("x", 1)
	if err := f.AttachStream(fl, iscsi.OpRead, IOOptions{}, 1); err == nil {
		t.Fatal("missing thread/buffer should fail")
	}
}

func TestAttachStreamBufferedAddsCopy(t *testing.T) {
	r := newRig(t, 2)
	f, _ := r.fs.Create("data", units.GB)
	direct := r.s.NewFlow("d", math.Inf(1))
	if err := f.AttachStream(direct, iscsi.OpRead, r.ioOpts(true), 1); err != nil {
		t.Fatal(err)
	}
	buffered := r.s.NewFlow("b", math.Inf(1))
	if err := f.AttachStream(buffered, iscsi.OpRead, r.ioOpts(false), 1); err != nil {
		t.Fatal(err)
	}
	if len(buffered.Uses) <= len(direct.Uses) {
		t.Fatal("buffered stream should carry extra page-cache charges")
	}
}
