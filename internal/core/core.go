// Package core assembles the paper's complete end-to-end data transfer
// system (Figure 5): NUMA-tuned iSER storage area networks behind each
// front-end host, XFS-like filesystems over the exported LUNs, and the
// RFTP/GridFTP transfer tools across the 3×40 Gbps front-end fabric.
//
// This is the library's top-level public surface: construct a System,
// then launch transfers with StartRFTP/StartGridFTP, or reach into the
// exposed components (testbed, sessions, filesystems) for custom
// experiments.
package core

import (
	"fmt"
	"math"

	"e2edt/internal/blockdev"
	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/fsim"
	"e2edt/internal/gridftp"
	"e2edt/internal/host"
	"e2edt/internal/iscsi"
	"e2edt/internal/iser"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/placer"
	"e2edt/internal/railmgr"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

// Options configure system assembly.
type Options struct {
	// Policy is the NUMA policy applied throughout (targets, initiators,
	// transfer tools). The paper's tuned configuration is PolicyBind.
	Policy numa.Policy
	// LUNs is the logical unit count per back end (paper: 6).
	LUNs int
	// LUNSize is each LUN's capacity (paper: 50 GB).
	LUNSize int64
	// DatasetSize is the source file's size (paper: 300 GB total).
	DatasetSize int64
	// TargetCfg tunes the iSER targets; zero value takes the default for
	// the chosen policy.
	TargetCfg iscsi.TargetConfig
	// ISER tunes the datamover; zero value takes defaults.
	ISER iser.Params
	// FSOpt tunes the filesystems; zero value takes defaults.
	FSOpt fsim.Options
	// DeviceFactory overrides LUN construction (ablations: SSD- or
	// HDD-backed back ends). Nil builds the paper's NUMA-pinned ramdisks.
	DeviceFactory func(store *host.Host, lun int, policy numa.Policy) blockdev.Device
	// Recovery enables in-protocol failure recovery across the stack:
	// iSCSI command replay on the SAN sessions and RFTP stream
	// re-establishment on the front-end fabric. The zero value leaves the
	// system fail-fast, as before.
	Recovery RecoveryOptions
}

// RecoveryOptions configure the system's in-protocol recovery ladder. When
// Enabled, both SAN iSCSI sessions replay dropped or timed-out commands
// (instead of hanging or failing with ErrSessionDown) and RFTP transfers
// launched through the System fill in ACK-timeout stream recovery unless
// the caller already set their own rftp recovery parameters.
type RecoveryOptions struct {
	// Enabled switches the whole ladder on.
	Enabled bool
	// MaxReplays bounds iSCSI command re-issues (iscsi.Session.MaxReplays).
	MaxReplays int
	// ReplayDelay is the pause before an iSCSI re-issue.
	ReplayDelay sim.Duration
	// AckTimeout is the RFTP per-stream no-progress span that declares the
	// trailing window lost (rftp.Params.AckTimeout).
	AckTimeout sim.Duration
	// RetryBackoff and RetryBackoffMax bound RFTP's exponential backoff
	// between stream recovery attempts.
	RetryBackoff, RetryBackoffMax sim.Duration
	// MaxStreamRetries bounds consecutive failed recovery attempts on one
	// RFTP stream before the transfer gives up.
	MaxStreamRetries int
	// Rails, when Enabled, turns on multipath rail management for RFTP
	// transfers launched through the System: failover off dead rails,
	// credit rebalancing under degradation, and probed failback. Left
	// disabled by default — single-path recovery alone reproduces the
	// paper's baseline; experiments opt in explicitly.
	Rails railmgr.Policy
}

// DefaultRecoveryOptions returns the tuned recovery ladder: fast iSCSI
// replay on the low-latency SANs, and RFTP stream recovery that detects a
// loss within 250 ms and retries with 50 ms..1 s backoff.
func DefaultRecoveryOptions() RecoveryOptions {
	return RecoveryOptions{
		Enabled:          true,
		MaxReplays:       8,
		ReplayDelay:      50 * sim.Millisecond,
		AckTimeout:       250 * sim.Millisecond,
		RetryBackoff:     50 * sim.Millisecond,
		RetryBackoffMax:  sim.Second,
		MaxStreamRetries: 16,
	}
}

// ApplyRFTP fills recovery fields into p (only when Enabled and the caller
// has not set its own AckTimeout), returning the adjusted params.
func (r RecoveryOptions) ApplyRFTP(p rftp.Params) rftp.Params {
	if !r.Enabled || p.AckTimeout > 0 {
		return p
	}
	p.AckTimeout = r.AckTimeout
	p.RetryBackoff = r.RetryBackoff
	p.RetryBackoffMax = r.RetryBackoffMax
	p.MaxStreamRetries = r.MaxStreamRetries
	if r.Rails.Enabled && !p.Rails.Enabled {
		p.Rails = r.Rails
	}
	return p
}

// DefaultOptions mirrors the paper's tuned setup.
func DefaultOptions() Options {
	return Options{
		Policy:      numa.PolicyBind,
		LUNs:        6,
		LUNSize:     50 * units.GB,
		DatasetSize: 140 * units.GB,
	}
}

// Side is one half of the end-to-end path: a front-end host plus its SAN.
type Side struct {
	Front *host.Host
	Store *host.Host
	// Target is the iSER target daemon on the storage host.
	Target *iscsi.Target
	// Session is the front end's iSCSI session.
	Session *iscsi.Session
	// FS is the XFS-like filesystem over the exported LUNs.
	FS *fsim.FS
	// Dataset and Output are the pre-created files used by transfers.
	Dataset *fsim.File
	Output  *fsim.File
}

// System is the full Figure 5 deployment.
type System struct {
	Opt Options
	TB  *testbed.LAN
	// A is the sender side, B the receiver side (forward direction).
	A, B *Side
	// Placer is the adaptive placement engine, present only under
	// numa.PolicyAuto: iSER target worker pools, SAN initiator threads and
	// every RFTP stream endpoint launched through the System register with
	// it, so thread pins and buffer homes converge at runtime instead of
	// being fixed at assembly.
	Placer *placer.Engine
}

// Direction selects which front end sends.
type Direction int

const (
	// Forward transfers A→B (sender→receiver).
	Forward Direction = iota
	// Reverse transfers B→A.
	Reverse
)

// NewSystem builds the system. The zero-value sub-configs in opt are
// replaced with defaults.
func NewSystem(opt Options) (*System, error) {
	if opt.LUNs <= 0 || opt.LUNSize <= 0 {
		return nil, fmt.Errorf("core: LUNs and LUNSize must be positive")
	}
	if opt.DatasetSize <= 0 {
		return nil, fmt.Errorf("core: DatasetSize must be positive")
	}
	if opt.TargetCfg.ThreadsPerLUN == 0 {
		opt.TargetCfg = iscsi.DefaultTargetConfig(opt.Policy)
	}
	if opt.ISER.CopyCyclesPerByte == 0 {
		opt.ISER = iser.DefaultParams()
	}
	if opt.FSOpt.StripeSize == 0 {
		opt.FSOpt = fsim.DefaultOptions()
	}
	tb := testbed.NewLAN()
	sys := &System{Opt: opt, TB: tb}
	if opt.Policy == numa.PolicyAuto {
		sys.Placer = placer.New(tb.Sender.Sim, placer.DefaultConfig())
	}

	var err error
	sys.A, err = buildSide(opt, tb, sys.Placer, tb.Sender, tb.SrcStore, tb.SrcSAN)
	if err != nil {
		return nil, err
	}
	sys.B, err = buildSide(opt, tb, sys.Placer, tb.Receiver, tb.DstStore, tb.DstSAN)
	if err != nil {
		return nil, err
	}
	return sys, nil
}

func buildSide(opt Options, tb *testbed.LAN, pl *placer.Engine, front, store *host.Host, san []*fabric.Link) (*Side, error) {
	tgt := iscsi.NewTarget(store.Name, store, opt.TargetCfg)
	for i := 0; i < opt.LUNs; i++ {
		var dev blockdev.Device
		if opt.DeviceFactory != nil {
			dev = opt.DeviceFactory(store, i, opt.Policy)
		} else {
			var homes []*numa.Node
			if opt.Policy == numa.PolicyBind {
				homes = []*numa.Node{store.M.Node(i % len(store.M.Nodes))}
			} else {
				homes = store.M.Nodes
			}
			dev = blockdev.NewRamdisk(store.M,
				fmt.Sprintf("%s-lun%d", store.Name, i), opt.LUNSize, homes...)
		}
		tgt.AddLUN(i, dev)
	}
	initProc := front.NewProcess("open-iscsi", opt.Policy, nil)
	portals := make([]iser.Portal, len(san))
	for i, l := range san {
		portals[i] = iser.PortalFor(l, store)
	}
	mover := iser.NewMover(portals, initProc.NewThread(), tgt, opt.ISER)
	if pl != nil {
		// Each LUN's worker pool (threads + RDMA bounce buffers) is one
		// placement unit — the daemon the paper pins per node with numactl;
		// the initiator thread is another. SAN command flows report through
		// the mover so the engine can score and migrate them.
		for i := 0; i < opt.LUNs; i++ {
			ws := tgt.Workers(i)
			threads := make([]*host.Thread, len(ws))
			bufs := make([]*numa.Buffer, len(ws))
			for j, w := range ws {
				threads[j] = w.Thread
				bufs[j] = w.Bounce
			}
			pl.AddEntity(fmt.Sprintf("%s-lun%d", store.Name, i),
				store.M, threads, bufs, float64(len(ws))*4*float64(units.MB))
		}
		pl.AddEntity(fmt.Sprintf("%s-initiator", front.Name),
			front.M, []*host.Thread{mover.InitThread}, nil, 0)
		mover.Placer = pl
	}
	sess := iscsi.NewSession(tgt, mover)
	if opt.Recovery.Enabled {
		sess.MaxReplays = opt.Recovery.MaxReplays
		sess.ReplayDelay = opt.Recovery.ReplayDelay
	}
	fs, err := fsim.Mount(sess, front, opt.FSOpt)
	if err != nil {
		return nil, err
	}
	ds, err := fs.Create("dataset", opt.DatasetSize)
	if err != nil {
		return nil, fmt.Errorf("core: dataset: %w", err)
	}
	out, err := fs.Create("output", opt.DatasetSize)
	if err != nil {
		return nil, fmt.Errorf("core: output: %w", err)
	}
	return &Side{
		Front: front, Store: store,
		Target: tgt, Session: sess, FS: fs,
		Dataset: ds, Output: out,
	}, nil
}

// Engine exposes the simulation engine.
func (s *System) Engine() *sim.Engine { return s.TB.Eng }

// ends resolves the direction into (sender side, receiver side).
func (s *System) ends(dir Direction) (*Side, *Side) {
	if dir == Reverse {
		return s.B, s.A
	}
	return s.A, s.B
}

// StartRFTP launches an RFTP transfer of size bytes (math.Inf(1) for
// open-ended) in the given direction. RFTP reads and writes with direct
// I/O on dedicated I/O threads.
func (s *System) StartRFTP(dir Direction, cfg rftp.Config, p rftp.Params,
	size float64, onDone func(now sim.Time)) (*rftp.Transfer, error) {
	snd, rcv := s.ends(dir)
	return s.StartRFTPOn(dir, cfg, p, snd.Dataset, rcv.Output, size, onDone)
}

// StartRFTPOn launches an RFTP transfer between explicit files (created
// with CreateJobFiles, or any files on the matching sides). Any number of
// transfers may run concurrently on a live System — they contend for the
// shared fabric, SAN and CPU resources with independent accounting.
func (s *System) StartRFTPOn(dir Direction, cfg rftp.Config, p rftp.Params,
	srcFile, dstFile *fsim.File, size float64, onDone func(now sim.Time)) (*rftp.Transfer, error) {
	if srcFile == nil || dstFile == nil {
		return nil, fmt.Errorf("core: transfer needs source and destination files")
	}
	snd, _ := s.ends(dir)
	if s.Placer != nil && cfg.Placer == nil {
		cfg.Placer = s.Placer
	}
	src := pipe.FileReader{File: srcFile, Direct: true}
	dst := pipe.FileWriter{File: dstFile, Direct: true}
	return rftp.Start(s.TB.FrontLinks, snd.Front, cfg, s.Opt.Recovery.ApplyRFTP(p), src, dst, size, onDone)
}

// StartRFTPSet transfers a dataset of individual files (manifest-style,
// as the paper's tool moves file collections) in the given direction:
// files stream from the sender's dataset region to the receiver's output
// region, each paying its per-file control exchange.
func (s *System) StartRFTPSet(dir Direction, cfg rftp.Config, p rftp.Params,
	files []rftp.FileSpec, onDone func(now sim.Time)) (*rftp.SetTransfer, error) {
	snd, rcv := s.ends(dir)
	if total := rftp.TotalBytes(files); total > float64(snd.Dataset.Size) {
		return nil, fmt.Errorf("core: file set (%d bytes) exceeds dataset size", int64(total))
	}
	if s.Placer != nil && cfg.Placer == nil {
		cfg.Placer = s.Placer
	}
	src := pipe.FileReader{File: snd.Dataset, Direct: true}
	dst := pipe.FileWriter{File: rcv.Output, Direct: true}
	return rftp.StartSet(s.TB.FrontLinks, snd.Front, cfg, s.Opt.Recovery.ApplyRFTP(p), src, dst, files, onDone)
}

// StartRFTPBatchOn launches a coalesced object window between explicit
// files: many small objects share one session and its stream credit
// windows, delimited in-band instead of paying per-object control round
// trips (contrast StartRFTPSet). onObject observes exactly-once per-object
// completions; zero-size objects are legal and complete like any other.
func (s *System) StartRFTPBatchOn(dir Direction, cfg rftp.Config, p rftp.Params,
	srcFile, dstFile *fsim.File, objects []rftp.ObjectSpec,
	onObject func(i int, now sim.Time), onDone func(now sim.Time)) (*rftp.BatchTransfer, error) {
	if srcFile == nil || dstFile == nil {
		return nil, fmt.Errorf("core: transfer needs source and destination files")
	}
	snd, _ := s.ends(dir)
	if s.Placer != nil && cfg.Placer == nil {
		cfg.Placer = s.Placer
	}
	src := pipe.FileReader{File: srcFile, Direct: true}
	dst := pipe.FileWriter{File: dstFile, Direct: true}
	return rftp.StartBatch(s.TB.FrontLinks, snd.Front, cfg, s.Opt.Recovery.ApplyRFTP(p), src, dst, objects, onObject, onDone)
}

// StartGridFTP launches a GridFTP transfer in the given direction.
// GridFTP reads and writes buffered (no direct I/O) on its single
// per-stream threads.
func (s *System) StartGridFTP(dir Direction, cfg gridftp.Config,
	size float64, onDone func(now sim.Time)) (*gridftp.Transfer, error) {
	snd, rcv := s.ends(dir)
	return s.StartGridFTPOn(dir, cfg, snd.Dataset, rcv.Output, size, onDone)
}

// StartGridFTPOn launches a GridFTP transfer between explicit files, the
// buffered-I/O counterpart of StartRFTPOn.
func (s *System) StartGridFTPOn(dir Direction, cfg gridftp.Config,
	srcFile, dstFile *fsim.File, size float64, onDone func(now sim.Time)) (*gridftp.Transfer, error) {
	if srcFile == nil || dstFile == nil {
		return nil, fmt.Errorf("core: transfer needs source and destination files")
	}
	snd, _ := s.ends(dir)
	src := pipe.FileReader{File: srcFile, Direct: false}
	dst := pipe.FileWriter{File: dstFile, Direct: false}
	return gridftp.Start(s.TB.FrontLinks, snd.Front, cfg, src, dst, size, onDone)
}

// CreateJobFiles allocates a per-job (source, destination) file pair for a
// transfer in the given direction: a dataset file on the sender's SAN and
// an output file on the receiver's, both striped like any other file. It is
// the multi-tenant counterpart of the pre-created Dataset/Output pair —
// concurrent jobs get disjoint files so filesystem capacity is a real,
// per-side constraint. Remove the pair with RemoveJobFiles when the job is
// done.
func (s *System) CreateJobFiles(dir Direction, name string, size int64) (src, dst *fsim.File, err error) {
	snd, rcv := s.ends(dir)
	src, err = snd.FS.Create("job/"+name+"/in", size)
	if err != nil {
		return nil, nil, fmt.Errorf("core: job source: %w", err)
	}
	dst, err = rcv.FS.Create("job/"+name+"/out", size)
	if err != nil {
		snd.FS.Remove("job/" + name + "/in")
		return nil, nil, fmt.Errorf("core: job destination: %w", err)
	}
	return src, dst, nil
}

// RemoveJobFiles frees the file pair created by CreateJobFiles.
func (s *System) RemoveJobFiles(dir Direction, name string) error {
	snd, rcv := s.ends(dir)
	if err := snd.FS.Remove("job/" + name + "/in"); err != nil {
		return err
	}
	return rcv.FS.Remove("job/" + name + "/out")
}

// FrontCapacity returns the aggregate payload capacity of the front-end
// fabric in one direction (line rate × framing efficiency, summed over the
// links), in bytes/second.
func (s *System) FrontCapacity() float64 {
	total := 0.0
	for _, l := range s.TB.FrontLinks {
		total += l.Cfg.Rate * l.Cfg.Efficiency()
	}
	return total
}

// FrontHeadroom returns the payload bandwidth still unallocated on the
// front-end links leaving the given direction's sender, as of the last
// fluid solve. A scheduler uses this to gauge per-side resource headroom
// before admitting more work.
func (s *System) FrontHeadroom(dir Direction) float64 {
	snd, _ := s.ends(dir)
	head := 0.0
	for _, l := range s.TB.FrontLinks {
		nic := l.A
		if l.B.Host == snd.Front {
			nic = l.B
		}
		r := l.Dir(nic)
		free := r.Capacity - r.Load()
		if free > 0 {
			head += free * l.Cfg.Efficiency()
		}
	}
	return head
}

// MeasureCeiling measures the narrowest section of the end-to-end path the
// way the paper does with fio (§4.3): a streaming write (or read) against
// one side's SAN, bypassing the front-end fabric. It returns bytes/second.
func (s *System) MeasureCeiling(side *Side, op iscsi.Op, duration sim.Duration) (float64, error) {
	proc := side.Front.NewProcess("fio-ceiling", s.Opt.Policy, nil)
	fl := side.Front.Sim.NewFlow("ceiling", math.Inf(1))
	file := side.Dataset
	if op == iscsi.OpWrite {
		file = side.Output
	}
	var buf *numa.Buffer
	th := proc.NewThread()
	if node := th.Node(); node != nil {
		buf = side.Front.M.NewBuffer("ceiling", node)
	} else {
		buf = side.Front.M.InterleavedBuffer("ceiling")
	}
	err := file.AttachStream(fl, op, fsim.IOOptions{
		Thread: th, Buffer: buf, Direct: true, Tag: "ceiling",
	}, 1)
	if err != nil {
		return 0, err
	}
	tr := &fluid.Transfer{Flow: fl, Remaining: math.Inf(1)}
	side.Front.Sim.Start(tr)
	s.TB.Eng.RunFor(duration)
	side.Front.Sim.Sync()
	rate := tr.Transferred() / float64(duration)
	side.Front.Sim.Cancel(tr)
	return rate, nil
}
