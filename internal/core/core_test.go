package core

import (
	"math"
	"testing"

	"e2edt/internal/gridftp"
	"e2edt/internal/iscsi"
	"e2edt/internal/numa"
	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

func newSys(t *testing.T, opt Options) *System {
	t.Helper()
	sys, err := NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	bad := []Options{
		{LUNs: 0, LUNSize: units.GB, DatasetSize: units.GB},
		{LUNs: 1, LUNSize: 0, DatasetSize: units.GB},
		{LUNs: 1, LUNSize: units.GB, DatasetSize: 0},
		// Dataset + output exceed capacity.
		{LUNs: 2, LUNSize: units.GB, DatasetSize: 2 * units.GB},
	}
	for i, opt := range bad {
		if _, err := NewSystem(opt); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSystemShape(t *testing.T) {
	sys := newSys(t, DefaultOptions())
	for _, side := range []*Side{sys.A, sys.B} {
		if len(side.Target.LUNs()) != 6 {
			t.Fatalf("LUNs = %d", len(side.Target.LUNs()))
		}
		if side.Dataset == nil || side.Output == nil {
			t.Fatal("files missing")
		}
		if side.FS.LUNCount() != 6 {
			t.Fatal("fs stripe width wrong")
		}
	}
	if sys.Engine() == nil {
		t.Fatal("engine missing")
	}
}

func TestCeilingMatchesPaperShape(t *testing.T) {
	sys := newSys(t, DefaultOptions())
	read, err := sys.MeasureCeiling(sys.A, iscsi.OpRead, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := newSys(t, DefaultOptions())
	write, err := sys2.MeasureCeiling(sys2.B, iscsi.OpWrite, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's fio probe finds the write path narrowest (94.8 Gbps on
	// their testbed); reads are faster (RDMA WRITE beats RDMA READ).
	if write >= read {
		t.Fatalf("write ceiling (%v) should be below read (%v)", write, read)
	}
	g := units.ToGbps(write)
	if g < 90 || g > 112 {
		t.Fatalf("write ceiling = %.1f Gbps, want ≈95–105", g)
	}
}

func TestRFTPBeatsGridFTPThreeFold(t *testing.T) {
	// Figure 9: RFTP ≈91 Gbps (96% of ceiling) vs GridFTP ≈29 Gbps.
	sysR := newSys(t, DefaultOptions())
	rT, err := sysR.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	sysR.Engine().RunFor(20)
	rGbps := units.ToGbps(rT.Transferred() / 20)

	sysG := newSys(t, DefaultOptions())
	gT, err := sysG.StartGridFTP(Forward, gridftp.DefaultConfig(), math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	sysG.Engine().RunFor(20)
	gGbps := units.ToGbps(gT.Transferred() / 20)

	if rGbps < 85 || rGbps > 112 {
		t.Fatalf("RFTP e2e = %.1f Gbps, want ≈91–105", rGbps)
	}
	if gGbps < 20 || gGbps > 45 {
		t.Fatalf("GridFTP e2e = %.1f Gbps, want ≈29", gGbps)
	}
	ratio := rGbps / gGbps
	if ratio < 2.4 || ratio > 4.2 {
		t.Fatalf("RFTP/GridFTP = %.2f, paper ≈3.1", ratio)
	}
}

func TestRFTPNearsCeiling(t *testing.T) {
	sys := newSys(t, DefaultOptions())
	ceiling, err := sys.MeasureCeiling(sys.B, iscsi.OpWrite, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := newSys(t, DefaultOptions())
	tr, err := sys2.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	sys2.Engine().RunFor(20)
	eff := (tr.Transferred() / 20) / ceiling
	// Paper: RFTP reaches 96% of the measured ceiling.
	if eff < 0.9 || eff > 1.02 {
		t.Fatalf("RFTP efficiency vs ceiling = %.3f, want ≈0.96", eff)
	}
}

func TestBidirectionalGains(t *testing.T) {
	// Figure 11: RFTP bi-directional ≈+83% over unidirectional; GridFTP
	// only ≈+33%.
	uniR := newSys(t, DefaultOptions())
	r1, _ := uniR.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	uniR.Engine().RunFor(15)
	rUni := r1.Transferred() / 15

	bidiR := newSys(t, DefaultOptions())
	rf, _ := bidiR.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	rr, _ := bidiR.StartRFTP(Reverse, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	bidiR.Engine().RunFor(15)
	rBidi := (rf.Transferred() + rr.Transferred()) / 15

	rGain := rBidi / rUni
	if rGain < 1.5 || rGain > 2.0 {
		t.Fatalf("RFTP bidir gain = %.2f, want ≈1.83", rGain)
	}

	uniG := newSys(t, DefaultOptions())
	g1, _ := uniG.StartGridFTP(Forward, gridftp.DefaultConfig(), math.Inf(1), nil)
	uniG.Engine().RunFor(15)
	gUni := g1.Transferred() / 15

	bidiG := newSys(t, DefaultOptions())
	gf, _ := bidiG.StartGridFTP(Forward, gridftp.DefaultConfig(), math.Inf(1), nil)
	gr, _ := bidiG.StartGridFTP(Reverse, gridftp.DefaultConfig(), math.Inf(1), nil)
	bidiG.Engine().RunFor(15)
	gBidi := (gf.Transferred() + gr.Transferred()) / 15

	gGain := gBidi / gUni
	if gGain < 1.0 || gGain > 1.55 {
		t.Fatalf("GridFTP bidir gain = %.2f, want ≈1.33", gGain)
	}
	if gGain >= rGain {
		t.Fatalf("GridFTP gain (%.2f) should trail RFTP gain (%.2f)", gGain, rGain)
	}
}

func TestCPUProfilesMatchFigure10(t *testing.T) {
	sysR := newSys(t, DefaultOptions())
	rT, _ := sysR.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	sysR.Engine().RunFor(10)
	_ = rT
	rCPU := sysR.A.Front.HostCPUReport().TotalPercent(10)

	sysG := newSys(t, DefaultOptions())
	gT, _ := sysG.StartGridFTP(Forward, gridftp.DefaultConfig(), math.Inf(1), nil)
	sysG.Engine().RunFor(10)
	_ = gT
	gRep := sysG.A.Front.HostCPUReport()
	gCPU := gRep.TotalPercent(10)

	// GridFTP burns much more CPU per host despite moving a third the
	// data; its profile is sys/copy heavy.
	if gCPU <= rCPU {
		t.Fatalf("GridFTP CPU (%.0f%%) should exceed RFTP's (%.0f%%)", gCPU, rCPU)
	}
	if gRep.ByCategory["sys"]+gRep.ByCategory["copy"] < gRep.ByCategory["user"] {
		t.Fatal("GridFTP should be kernel-dominated")
	}
}

func TestReverseDirection(t *testing.T) {
	sys := newSys(t, DefaultOptions())
	tr, err := sys.StartRFTP(Reverse, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine().RunFor(5)
	if tr.Transferred() <= 0 {
		t.Fatal("reverse transfer moved nothing")
	}
	// Reverse sender is the Receiver host.
	if tr.Sender != sys.TB.Receiver {
		t.Fatal("reverse direction sender wrong")
	}
}

func TestDefaultPolicySystemStillWorks(t *testing.T) {
	opt := DefaultOptions()
	opt.Policy = numa.PolicyDefault
	sys := newSys(t, opt)
	tr, err := sys.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine().RunFor(10)
	bound := newSys(t, DefaultOptions())
	tr2, _ := bound.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	bound.Engine().RunFor(10)
	if tr.Transferred() >= tr2.Transferred() {
		t.Fatalf("default policy (%v) should trail bound (%v)", tr.Transferred(), tr2.Transferred())
	}
}

func TestFiniteEndToEndTransfer(t *testing.T) {
	sys := newSys(t, DefaultOptions())
	var done sim.Time
	size := 50 * float64(units.GB)
	_, err := sys.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), size,
		func(now sim.Time) { done = now })
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine().Run()
	if done <= 0 {
		t.Fatal("transfer never completed")
	}
	// 50 GB at ≈12.9 GB/s ≈ 3.9 s.
	if done < 3 || done > 6 {
		t.Fatalf("finished at %v, implausible", done)
	}
}

func TestTransferSurvivesLinkFailure(t *testing.T) {
	// Fail one of the three front-end links mid-transfer: the streams on
	// it stall, the others continue; restoring resumes full rate.
	sys := newSys(t, DefaultOptions())
	tr, err := sys.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := sys.Engine()
	eng.RunUntil(5)
	healthy := tr.Transferred() / 5

	sys.TB.FrontLinks[0].Fail()
	before := tr.Transferred()
	eng.RunUntil(10)
	degraded := (tr.Transferred() - before) / 5
	if degraded >= healthy*0.9 {
		t.Fatalf("failure had no effect: %v vs %v", degraded, healthy)
	}
	if degraded <= 0 {
		t.Fatal("all streams stalled though two links are healthy")
	}

	sys.TB.FrontLinks[0].Restore()
	before = tr.Transferred()
	eng.RunUntil(15)
	restored := (tr.Transferred() - before) / 5
	if restored < healthy*0.99 {
		t.Fatalf("rate did not recover: %v vs %v", restored, healthy)
	}
}

func TestSANLinkFailureStallsEverything(t *testing.T) {
	// Both source SAN links down: nothing can be loaded; the transfer
	// rate drops to zero until repair.
	sys := newSys(t, DefaultOptions())
	tr, err := sys.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := sys.Engine()
	eng.RunUntil(2)
	for _, l := range sys.TB.SrcSAN {
		l.Fail()
	}
	before := tr.Transferred()
	eng.RunUntil(4)
	if got := tr.Transferred() - before; got > 1 {
		t.Fatalf("moved %v bytes with the source SAN dark", got)
	}
	for _, l := range sys.TB.SrcSAN {
		l.Restore()
	}
	eng.RunUntil(6)
	if tr.Transferred() == before {
		t.Fatal("transfer did not resume after SAN repair")
	}
}

func TestRFTPSetEndToEnd(t *testing.T) {
	sys := newSys(t, DefaultOptions())
	files := make([]rftp.FileSpec, 24)
	for i := range files {
		files[i] = rftp.FileSpec{Name: "f", Size: units.GB}
	}
	var done sim.Time
	st, err := sys.StartRFTPSet(Forward, rftp.DefaultConfig(), rftp.DefaultParams(),
		files, func(now sim.Time) { done = now })
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine().Run()
	if done <= 0 || st.Completed != 24 {
		t.Fatalf("set incomplete: done=%v files=%d", done, st.Completed)
	}
	// 24 GB end-to-end: near the continuous-transfer rate (per-file
	// overhead is sub-millisecond on the LAN).
	g := units.ToGbps(st.Bandwidth())
	if g < 85 {
		t.Fatalf("set transfer = %.1f Gbps, want near continuous rate", g)
	}
}

func TestRFTPSetTooLarge(t *testing.T) {
	sys := newSys(t, DefaultOptions())
	if _, err := sys.StartRFTPSet(Forward, rftp.DefaultConfig(), rftp.DefaultParams(),
		[]rftp.FileSpec{{Name: "huge", Size: 500 * units.GB}}, nil); err == nil {
		t.Fatal("oversized set should fail")
	}
}
