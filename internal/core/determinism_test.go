package core

import (
	"math"
	"testing"

	"e2edt/internal/gridftp"
	"e2edt/internal/rftp"
)

// TestDeterministicReplay verifies the simulation's core promise: two
// identical runs produce bit-for-bit identical results — transferred
// bytes, CPU accounting, and event counts.
func TestDeterministicReplay(t *testing.T) {
	run := func() (float64, float64, map[string]float64, uint64) {
		sys, err := NewSystem(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := sys.StartGridFTP(Reverse, gridftp.DefaultConfig(), math.Inf(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		sys.Engine().RunFor(25)
		return r.Transferred(), g.Transferred(),
			sys.A.Front.HostCPUReport().ByCategory, sys.Engine().Processed
	}
	r1, g1, cpu1, ev1 := run()
	r2, g2, cpu2, ev2 := run()
	if r1 != r2 || g1 != g2 {
		t.Fatalf("transfers diverged: (%v,%v) vs (%v,%v)", r1, g1, r2, g2)
	}
	if ev1 != ev2 {
		t.Fatalf("event counts diverged: %d vs %d", ev1, ev2)
	}
	if len(cpu1) != len(cpu2) {
		t.Fatalf("CPU categories diverged: %v vs %v", cpu1, cpu2)
	}
	for k, v := range cpu1 {
		if cpu2[k] != v {
			t.Fatalf("CPU accounting diverged on %q: %v vs %v", k, v, cpu2[k])
		}
	}
}

// TestByteConservation checks that the bytes RFTP reports match the bytes
// that crossed the front-end wire (adjusted for control overhead) and the
// bytes written into the destination SAN.
func TestByteConservation(t *testing.T) {
	sys, err := NewSystem(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := rftp.DefaultConfig()
	tr, err := sys.StartRFTP(Forward, cfg, rftp.DefaultParams(), math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine().RunFor(10)
	payload := tr.Transferred()
	if payload <= 0 {
		t.Fatal("nothing moved")
	}
	s := sys.TB.Sim
	s.Sync()

	// Wire bytes on the three front links (sender→receiver direction),
	// tagged "rftp": payload × (1 + ctrl/block) / framing efficiency.
	wire := 0.0
	for _, l := range sys.TB.FrontLinks {
		wire += s.Usage(l.Dir(l.A), "rftp")
	}
	p := rftp.DefaultParams()
	expect := payload * (1 + p.CtrlBytesPerBlock/float64(cfg.BlockSize)) / (9000.0 / 9090.0)
	if math.Abs(wire-expect)/expect > 1e-6 {
		t.Fatalf("wire bytes %v, want %v", wire, expect)
	}

	// Destination store memory must have absorbed at least one write per
	// payload byte (file write; bounce is cache-discounted).
	dstMem := 0.0
	for _, n := range sys.B.Store.M.Nodes {
		dstMem += s.Usage(n.Mem, "dst-store-lun0:io")
	}
	if dstMem <= 0 {
		t.Fatal("destination store saw no I/O traffic")
	}
}
