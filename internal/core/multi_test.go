package core

import (
	"math"
	"testing"

	"e2edt/internal/rftp"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// smallOpt keeps the pre-created Dataset/Output pair small so per-job files
// fit alongside them.
func smallOpt() Options {
	opt := DefaultOptions()
	opt.DatasetSize = 2 * units.GB
	return opt
}

// TestConcurrentJobsShareSystem is the multi-transfer regression test: two
// RFTP jobs started on a live System (same direction, disjoint job files)
// must both complete with uncorrupted bandwidth and CPU accounting.
func TestConcurrentJobsShareSystem(t *testing.T) {
	sys := newSys(t, smallOpt())
	size := 20 * float64(units.GB)
	cfg := rftp.DefaultConfig()
	p := rftp.DefaultParams()

	var done [2]sim.Time
	var trs [2]*rftp.Transfer
	for i := 0; i < 2; i++ {
		name := string(rune('a' + i))
		src, dst, err := sys.CreateJobFiles(Forward, name, int64(size))
		if err != nil {
			t.Fatal(err)
		}
		i := i
		tr, err := sys.StartRFTPOn(Forward, cfg, p, src, dst, size,
			func(now sim.Time) { done[i] = now })
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	sys.Engine().Run()
	for i := range done {
		if done[i] <= 0 {
			t.Fatalf("job %d never completed", i)
		}
		if got := trs[i].Transferred(); math.Abs(got-size)/size > 1e-6 {
			t.Fatalf("job %d moved %v of %v", i, got, size)
		}
	}

	// Bandwidth accounting: wire bytes tagged "rftp" must equal the summed
	// payload × control/framing overhead, exactly as for a single transfer.
	s := sys.TB.Sim
	s.Sync()
	wire := 0.0
	for _, l := range sys.TB.FrontLinks {
		wire += s.Usage(l.Dir(l.A), "rftp")
	}
	payload := trs[0].Transferred() + trs[1].Transferred()
	expect := payload * (1 + p.CtrlBytesPerBlock/float64(cfg.BlockSize)) / (9000.0 / 9090.0)
	if math.Abs(wire-expect)/expect > 1e-6 {
		t.Fatalf("wire bytes %v, want %v: accounting corrupted by second job", wire, expect)
	}

	// CPU accounting: a single job of the combined size on a fresh system
	// must burn the same user-category CPU (same bytes, same per-byte cost).
	ref := newSys(t, smallOpt())
	src, dst, err := ref.CreateJobFiles(Forward, "ref", int64(2*size))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ref.StartRFTPOn(Forward, cfg, p, src, dst, 2*size, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref.Engine().Run()
	if got := rt.Transferred(); math.Abs(got-2*size)/size > 1e-6 {
		t.Fatalf("reference moved %v of %v", got, 2*size)
	}
	twoJobs := sys.A.Front.HostCPUReport().ByCategory["user"]
	oneJob := ref.A.Front.HostCPUReport().ByCategory["user"]
	if math.Abs(twoJobs-oneJob)/oneJob > 1e-6 {
		t.Fatalf("user CPU for 2×%v bytes = %v, single %v-byte job = %v",
			size, twoJobs, 2*size, oneJob)
	}
}

func TestJobFilesRespectCapacity(t *testing.T) {
	sys := newSys(t, smallOpt())
	free := sys.A.FS.Free()
	if _, _, err := sys.CreateJobFiles(Forward, "big", free+1); err == nil {
		t.Fatal("oversized job file should fail")
	}
	// A failed pair must not leak the source allocation.
	if _, _, err := sys.CreateJobFiles(Forward, "big", free+1); err == nil {
		t.Fatal("oversized job file should still fail")
	}
	src, dst, err := sys.CreateJobFiles(Forward, "ok", units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if src == nil || dst == nil {
		t.Fatal("job files missing")
	}
	if err := sys.RemoveJobFiles(Forward, "ok"); err != nil {
		t.Fatal(err)
	}
	if sys.A.FS.Free() != free {
		t.Fatalf("capacity leaked: free %d, want %d", sys.A.FS.Free(), free)
	}
}

func TestFrontHeadroomTracksLoad(t *testing.T) {
	sys := newSys(t, smallOpt())
	cap := sys.FrontCapacity()
	if cap <= 0 {
		t.Fatal("front capacity unset")
	}
	idle := sys.FrontHeadroom(Forward)
	if math.Abs(idle-cap)/cap > 1e-9 {
		t.Fatalf("idle headroom %v, want full capacity %v", idle, cap)
	}
	tr, err := sys.StartRFTP(Forward, rftp.DefaultConfig(), rftp.DefaultParams(), math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine().RunFor(2)
	busy := sys.FrontHeadroom(Forward)
	if busy >= idle*0.5 {
		t.Fatalf("headroom %v barely moved from %v under a full-rate transfer", busy, idle)
	}
	// The reverse direction is untouched by a forward transfer.
	if rev := sys.FrontHeadroom(Reverse); math.Abs(rev-cap)/cap > 1e-9 {
		t.Fatalf("reverse headroom %v, want %v", rev, cap)
	}
	tr.Stop()
}
