package pipe

import (
	"math"
	"testing"

	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func testHost(t *testing.T) (*sim.Engine, *fluid.Sim, *host.Host) {
	t.Helper()
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	return eng, s, host.New("h", numa.MustNew(s, testbed.FrontEndLAN("h")))
}

func TestNullIsFree(t *testing.T) {
	_, s, h := testHost(t)
	proc := h.NewProcess("p", numa.PolicyBind, h.M.Node(0))
	th := proc.NewThread()
	buf := h.M.NewBuffer("b", h.M.Node(0))
	f := s.NewFlow("f", 10)
	if err := (Null{}).Attach(f, th, buf, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if len(f.Uses) != 0 {
		t.Fatal("Null should attach nothing")
	}
}

func TestZeroChargesCPUAndMemory(t *testing.T) {
	eng, s, h := testHost(t)
	proc := h.NewProcess("p", numa.PolicyBind, h.M.Node(0))
	th := proc.NewThread()
	buf := h.M.NewBuffer("b", h.M.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	if err := (Zero{}).Attach(f, th, buf, 1, "x"); err != nil {
		t.Fatal(err)
	}
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(10)
	// Zero-fill at 0.32 cyc/B on a 2.2 GHz core caps at 6.875 GB/s.
	s.Sync()
	want := 2.2e9 / DefaultZeroCycles
	if got := f.Rate(); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("zero-fill rate = %v, want %v", got, want)
	}
	rep := proc.CPUReport()
	if rep.ByCategory[host.CatLoad] <= 0 {
		t.Fatal("zero-fill CPU not charged as load")
	}
	if h.M.Node(0).Mem.Load() <= 0 {
		t.Fatal("zero-fill memory write not charged")
	}
}

func TestZeroCustomCycles(t *testing.T) {
	eng, s, h := testHost(t)
	proc := h.NewProcess("p", numa.PolicyBind, h.M.Node(0))
	th := proc.NewThread()
	buf := h.M.NewBuffer("b", h.M.Node(0))
	f := s.NewFlow("f", math.Inf(1))
	if err := (Zero{CyclesPerByte: 1.1}).Attach(f, th, buf, 1, "x"); err != nil {
		t.Fatal(err)
	}
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	s.Sync()
	want := 2.2e9 / 1.1
	if got := f.Rate(); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("rate = %v, want %v", got, want)
	}
}

func TestMemoryTouchCost(t *testing.T) {
	_, s, h := testHost(t)
	proc := h.NewProcess("p", numa.PolicyBind, h.M.Node(0))
	th := proc.NewThread()
	buf := h.M.NewBuffer("b", h.M.Node(0))
	free := s.NewFlow("free", 10)
	if err := (Memory{}).Attach(free, th, buf, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if len(free.Uses) != 0 {
		t.Fatal("zero-touch Memory should attach nothing")
	}
	costly := s.NewFlow("c", 10)
	if err := (Memory{TouchCyclesPerByte: 0.1}).Attach(costly, th, buf, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if len(costly.Uses) == 0 {
		t.Fatal("touch cycles should attach CPU usage")
	}
	_ = units.KB
}
