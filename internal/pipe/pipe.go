// Package pipe defines the data source/sink stages of an end-to-end
// transfer pipeline (Figure 3 of the paper: data loading → transmission →
// data offloading) and the standard endpoints used by the evaluation:
// /dev/zero and /dev/null for memory-to-memory runs, and striped SAN files
// for true end-to-end runs.
//
// A Stage attaches the cost of moving each payload byte between the
// transfer protocol's staging buffer and the stage's backing store onto
// the stream's fluid flow. Which thread pays is the caller's choice — this
// is exactly the architectural difference between RFTP (dedicated,
// pipelined I/O threads) and GridFTP (one thread doing everything).
package pipe

import (
	"e2edt/internal/fluid"
	"e2edt/internal/fsim"
	"e2edt/internal/host"
	"e2edt/internal/iscsi"
	"e2edt/internal/numa"
)

// Stage is one end of a transfer pipeline.
type Stage interface {
	// Attach charges the stage's per-byte costs onto f. th is the thread
	// performing the load/offload, buf the protocol's staging buffer,
	// share the stage bytes per flow byte.
	Attach(f *fluid.Flow, th *host.Thread, buf *numa.Buffer, share float64, tag string) error
}

// Null discards data (/dev/null): offloading costs are negligible (<1%
// CPU in the paper's Figure 4).
type Null struct{}

// Attach implements Stage.
func (Null) Attach(*fluid.Flow, *host.Thread, *numa.Buffer, float64, string) error { return nil }

// Zero sources data from /dev/zero: the kernel fills the staging buffer
// with zeros — a CPU memset plus a memory write per byte (≈70% of one core
// at 39 Gbps in Figure 4).
type Zero struct {
	// CyclesPerByte is the zero-fill cost; 0 selects the default 0.32.
	CyclesPerByte float64
}

// DefaultZeroCycles reproduces the ≈70%-CPU data-loading cost at 39 Gbps
// on 2.2 GHz cores.
const DefaultZeroCycles = 0.32

// Attach implements Stage.
func (z Zero) Attach(f *fluid.Flow, th *host.Thread, buf *numa.Buffer, share float64, tag string) error {
	cy := z.CyclesPerByte
	if cy == 0 {
		cy = DefaultZeroCycles
	}
	th.ChargeMemory(f, buf, share, true, host.CatLoad)
	th.ChargeCPU(f, share*cy*th.MemoryPenalty(buf, true), host.CatLoad)
	return nil
}

// Memory streams to or from a resident memory region with no copy (the
// staging buffer is registered directly over the data): only the touch
// cost is charged.
type Memory struct {
	// TouchCyclesPerByte is the application's per-byte handling cost.
	TouchCyclesPerByte float64
}

// Attach implements Stage.
func (m Memory) Attach(f *fluid.Flow, th *host.Thread, buf *numa.Buffer, share float64, tag string) error {
	if m.TouchCyclesPerByte > 0 {
		th.ChargeCPU(f, share*m.TouchCyclesPerByte, host.CatUser)
	}
	return nil
}

// FileReader sources data from a SAN file.
type FileReader struct {
	File *fsim.File
	// Direct selects O_DIRECT (RFTP); false pays the page cache (GridFTP).
	Direct bool
}

// Attach implements Stage.
func (r FileReader) Attach(f *fluid.Flow, th *host.Thread, buf *numa.Buffer, share float64, tag string) error {
	return r.File.AttachStream(f, iscsi.OpRead, fsim.IOOptions{
		Thread: th, Buffer: buf, Direct: r.Direct, Tag: tag,
	}, share)
}

// FileWriter sinks data into a SAN file.
type FileWriter struct {
	File   *fsim.File
	Direct bool
}

// Attach implements Stage.
func (w FileWriter) Attach(f *fluid.Flow, th *host.Thread, buf *numa.Buffer, share float64, tag string) error {
	return w.File.AttachStream(f, iscsi.OpWrite, fsim.IOOptions{
		Thread: th, Buffer: buf, Direct: w.Direct, Tag: tag,
	}, share)
}
