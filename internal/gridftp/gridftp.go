// Package gridftp models the GridFTP baseline the paper compares against
// (§4.3): a TCP-based transfer tool whose per-stream data path runs on a
// single thread that alternates between file I/O and socket work, uses the
// page cache (no direct I/O), and pays the full kernel TCP stack cost.
//
// The three GridFTP handicaps the paper identifies map directly onto the
// model:
//
//  1. TCP stack processing — the tcpstack cost model (copies, sys, irq);
//  2. single-threaded design — the stage costs are charged to the same
//     thread as the socket costs, so the per-thread core limiter
//     serializes I/O and networking exactly as a blocking loop does;
//  3. no direct I/O — sources/sinks run buffered, adding a page-cache
//     copy per byte on the front-end hosts.
package gridftp

import (
	"fmt"
	"math"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/sim"
	"e2edt/internal/tcpstack"
	"e2edt/internal/units"
)

// Config describes a GridFTP invocation (globus-url-copy style).
type Config struct {
	// Streams is the parallel TCP stream count (-p), round-robin over
	// links.
	Streams int
	// BlockSize is the I/O block size (-bs); smaller blocks raise
	// per-block syscall overhead.
	BlockSize int64
	// Policy is numactl binding (the paper binds GridFTP too, for a fair
	// comparison).
	Policy numa.Policy
	// TCP is the kernel stack cost model.
	TCP tcpstack.Params
	// SyscallCyclesPerBlock is the per-block syscall/bookkeeping cost.
	SyscallCyclesPerBlock float64
}

// DefaultConfig mirrors the paper's GridFTP setup.
func DefaultConfig() Config {
	return Config{
		Streams:               3,
		BlockSize:             4 * units.MB,
		Policy:                numa.PolicyBind,
		TCP:                   tcpstack.DefaultParams(),
		SyscallCyclesPerBlock: 6000,
	}
}

// Validate reports config errors.
func (c Config) Validate() error {
	switch {
	case c.Streams <= 0:
		return fmt.Errorf("gridftp: Streams must be positive")
	case c.BlockSize <= 0:
		return fmt.Errorf("gridftp: BlockSize must be positive")
	}
	return nil
}

// Transfer is a running (or finished) GridFTP session.
type Transfer struct {
	Cfg    Config
	Size   float64
	Sender *host.Host

	transfers []*fluid.Transfer
	sim       *fluid.Sim
	eng       *sim.Engine
	started   sim.Time
	finished  sim.Time
	done      int
	// OnComplete fires when all streams drain (finite transfers).
	OnComplete func(now sim.Time)
}

// Start launches a GridFTP transfer of size bytes (math.Inf(1) for
// open-ended) from senderHost. src runs buffered on the sender thread, dst
// on the receiver thread.
func Start(links []*fabric.Link, senderHost *host.Host, cfg Config,
	src, dst pipe.Stage, size float64, onComplete func(now sim.Time)) (*Transfer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("gridftp: no links")
	}
	if size <= 0 && !math.IsInf(size, 1) {
		return nil, fmt.Errorf("gridftp: size must be positive or +Inf")
	}
	t := &Transfer{
		Cfg: cfg, Size: size, Sender: senderHost,
		sim: links[0].Sim(), eng: links[0].Engine(),
		OnComplete: onComplete,
	}
	t.started = t.eng.Now()

	perStream := size
	if !math.IsInf(size, 1) {
		perStream = size / float64(cfg.Streams)
	}
	bs := float64(cfg.BlockSize)
	for i := 0; i < cfg.Streams; i++ {
		l := links[i%len(links)]
		var sndNIC *host.Device
		switch senderHost {
		case l.A.Host:
			sndNIC = l.A
		case l.B.Host:
			sndNIC = l.B
		default:
			return nil, fmt.Errorf("gridftp: sender %s not on link %s", senderHost.Name, l.Cfg.Name)
		}
		rcvNIC := l.Peer(sndNIC)

		// GridFTP is one process per side; numactl binds that whole
		// process — all of its streams — to a single NUMA node (§4.3).
		// Unlike RFTP, it has no per-NIC NUMA awareness of its own, so
		// bi-directional runs pile both directions' copies onto one
		// node's memory controller (Figure 11's "33% improvement only").
		mkProc := func(h *host.Host, nic *host.Device, role string) *host.Process {
			if cfg.Policy == numa.PolicyBind {
				return h.NewProcess(fmt.Sprintf("gridftp-%s/%s/%d", role, l.Cfg.Name, i), numa.PolicyBind, h.M.Node(0))
			}
			return h.NewProcess(fmt.Sprintf("gridftp-%s/%s/%d", role, l.Cfg.Name, i), cfg.Policy, nil)
		}
		// One thread per side does everything (single-threaded design).
		sndThr := mkProc(sndNIC.Host, sndNIC, "c").NewThread()
		rcvThr := mkProc(rcvNIC.Host, rcvNIC, "s").NewThread()
		mkBuf := func(th *host.Thread, h *host.Host) *numa.Buffer {
			if node := th.Node(); node != nil {
				return h.M.NewBuffer("gridftp-buf", node)
			}
			return h.M.InterleavedBuffer("gridftp-buf")
		}
		sndBuf := mkBuf(sndThr, sndNIC.Host)
		rcvBuf := mkBuf(rcvThr, rcvNIC.Host)

		conn := tcpstack.Dial(l, sndNIC, sndThr, rcvThr, cfg.TCP)
		var stageErr error
		opt := tcpstack.FlowOptions{
			SrcBuf: sndBuf,
			DstBuf: rcvBuf,
			Extra: func(f *fluid.Flow) {
				// The same threads pay the I/O costs: the per-thread core
				// limiter then serializes I/O against socket work.
				if err := src.Attach(f, sndThr, sndBuf, 1, "gridftp"); err != nil {
					stageErr = err
				}
				if err := dst.Attach(f, rcvThr, rcvBuf, 1, "gridftp"); err != nil {
					stageErr = err
				}
				sndThr.ChargeCPU(f, cfg.SyscallCyclesPerBlock/bs, host.CatSys)
				rcvThr.ChargeCPU(f, cfg.SyscallCyclesPerBlock/bs, host.CatSys)
			},
		}
		tr := conn.Stream(perStream, opt, func(now sim.Time) {
			t.done++
			if t.done == cfg.Streams {
				t.finished = now
				if t.OnComplete != nil {
					t.OnComplete(now)
				}
			}
		})
		if stageErr != nil {
			return nil, fmt.Errorf("gridftp: stage: %w", stageErr)
		}
		t.transfers = append(t.transfers, tr)
	}
	return t, nil
}

// Transferred returns total payload bytes moved.
func (t *Transfer) Transferred() float64 {
	t.sim.Sync()
	sum := 0.0
	for _, tr := range t.transfers {
		sum += tr.Transferred()
	}
	return sum
}

// Bandwidth returns the average payload rate since start.
func (t *Transfer) Bandwidth() float64 {
	end := t.eng.Now()
	if t.finished > 0 {
		end = t.finished
	}
	el := float64(end - t.started)
	if el <= 0 {
		return 0
	}
	return t.Transferred() / el
}

// Finished returns the completion time (zero while running).
func (t *Transfer) Finished() sim.Time { return t.finished }

// Stop cancels an open-ended transfer.
func (t *Transfer) Stop() {
	for _, tr := range t.transfers {
		t.sim.Cancel(tr)
	}
}
