package gridftp

import (
	"math"
	"testing"

	"e2edt/internal/numa"
	"e2edt/internal/pipe"
	"e2edt/internal/sim"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Streams: 0, BlockSize: units.MB},
		{Streams: 1, BlockSize: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStartValidation(t *testing.T) {
	p := testbed.NewMotivatingPair()
	if _, err := Start(nil, p.A, DefaultConfig(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil); err == nil {
		t.Error("no links should fail")
	}
	if _, err := Start(p.Links, p.A, Config{}, pipe.Zero{}, pipe.Null{}, math.Inf(1), nil); err == nil {
		t.Error("bad config should fail")
	}
	if _, err := Start(p.Links, p.A, DefaultConfig(), pipe.Zero{}, pipe.Null{}, 0, nil); err == nil {
		t.Error("zero size should fail")
	}
	w := testbed.NewWAN()
	if _, err := Start(p.Links, w.A, DefaultConfig(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil); err == nil {
		t.Error("foreign sender should fail")
	}
}

func TestMemoryToMemoryThroughput(t *testing.T) {
	p := testbed.NewMotivatingPair()
	tr, err := Start(p.Links, p.A, DefaultConfig(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunFor(10)
	g := units.ToGbps(tr.Transferred() / 10)
	// TCP stack costs cap GridFTP far below the 120 Gbps fabric.
	if g < 15 || g > 60 {
		t.Fatalf("GridFTP mem-to-mem = %.1f Gbps, want CPU-capped 20–60", g)
	}
	tr.Stop()
}

func TestFiniteTransferCompletes(t *testing.T) {
	p := testbed.NewMotivatingPair()
	var doneAt sim.Time
	size := 4 * float64(units.GB)
	tr, err := Start(p.Links, p.A, DefaultConfig(), pipe.Zero{}, pipe.Null{}, size,
		func(now sim.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	if doneAt <= 0 {
		t.Fatal("never completed")
	}
	if got := tr.Transferred(); math.Abs(got-size)/size > 1e-6 {
		t.Fatalf("transferred %v of %v", got, size)
	}
	if tr.Finished() != doneAt || tr.Bandwidth() <= 0 {
		t.Fatal("bookkeeping wrong")
	}
}

func TestSlowerThanLineRate(t *testing.T) {
	// One stream on one 40G link: single-threaded + copies keep it far
	// under the link.
	p := testbed.NewMotivatingPair()
	cfg := DefaultConfig()
	cfg.Streams = 1
	tr, err := Start(p.Links[:1], p.A, cfg, pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunFor(5)
	g := units.ToGbps(tr.Transferred() / 5)
	if g >= 40 {
		t.Fatalf("GridFTP single stream = %.1f Gbps, should be CPU-bound below 40", g)
	}
	tr.Stop()
}

func TestStreamsScaleSublinearly(t *testing.T) {
	run := func(streams int) float64 {
		p := testbed.NewMotivatingPair()
		cfg := DefaultConfig()
		cfg.Streams = streams
		tr, err := Start(p.Links, p.A, cfg, pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		p.Eng.RunFor(5)
		defer tr.Stop()
		return tr.Transferred() / 5
	}
	one := run(1)
	three := run(3)
	if three <= one {
		t.Fatal("parallel streams should help")
	}
	if three > 3.2*one {
		t.Fatalf("3 streams (%v) scaled superlinearly vs 1 (%v)", three, one)
	}
}

func TestHighSysCPUProfile(t *testing.T) {
	// Figure 10: GridFTP's profile is dominated by sys+copy.
	p := testbed.NewMotivatingPair()
	tr, err := Start(p.Links, p.A, DefaultConfig(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunFor(10)
	tr.Stop()
	rep := p.A.HostCPUReport()
	kernel := rep.ByCategory["sys"] + rep.ByCategory["copy"] + rep.ByCategory["irq"]
	if kernel/rep.Total < 0.6 {
		t.Fatalf("kernel share = %.2f, GridFTP should be kernel-dominated", kernel/rep.Total)
	}
}

func TestUnpinnedPolicy(t *testing.T) {
	p := testbed.NewMotivatingPair()
	cfg := DefaultConfig()
	cfg.Policy = numa.PolicyDefault
	tr, err := Start(p.Links, p.A, cfg, pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.RunFor(5)
	if tr.Transferred() <= 0 {
		t.Fatal("unpinned GridFTP moved nothing")
	}
	tr.Stop()
}

func TestStop(t *testing.T) {
	p := testbed.NewMotivatingPair()
	tr, _ := Start(p.Links, p.A, DefaultConfig(), pipe.Zero{}, pipe.Null{}, math.Inf(1), nil)
	p.Eng.RunFor(1)
	tr.Stop()
	moved := tr.Transferred()
	p.Eng.RunFor(1)
	if tr.Transferred() != moved {
		t.Fatal("still moving after Stop")
	}
}
