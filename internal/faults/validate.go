package faults

import (
	"fmt"
	"math"
	"sort"

	"e2edt/internal/fabric"
	"e2edt/internal/sim"
)

// Validate rejects plans whose windows overlap or contradict each other on
// the same target — schedules that would otherwise resolve by silent
// last-writer-wins and produce a run that tests nothing anyone intended:
//
//   - two outage windows overlapping on one link (a LinkFail before the
//     previous outage's LinkRestore);
//   - degrading, gray-sagging, jittering or loss-injecting a link strictly
//     inside one of its outage windows (the link is dark; the injection is
//     dead code until the restore rewrites it);
//   - two outage windows overlapping on one host, or two limp windows;
//   - crash-stopping a host strictly inside one of its LimpHost windows
//     (the limp's recovery edge would fire on a corpse);
//   - opening a control-plane partition while one is already open.
//
// Boundary-touching windows (one ends exactly where the next begins) are
// allowed. Validate does not mutate the plan; events are examined in time
// order regardless of insertion order.
func (p *Plan) Validate() error {
	if p.Empty() {
		return nil
	}
	evs := make([]Event, len(p.Events))
	copy(evs, p.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	inf := sim.Time(math.Inf(1))
	type window struct{ from, to sim.Time }
	linkOut := map[*fabric.Link]*window{} // open outage per link
	hostOut := map[int]*window{}          // open outage per host
	hostLimp := map[int]*window{}         // open limp per host
	var partOpen *window

	for _, ev := range evs {
		switch ev.Kind {
		case LinkFail:
			if w := linkOut[ev.Link]; w != nil && ev.At < w.to {
				return fmt.Errorf("faults: link %s fails at %gs inside an outage window [%gs, %gs)",
					ev.Link.Cfg.Name, float64(ev.At), float64(w.from), float64(w.to))
			}
			linkOut[ev.Link] = &window{from: ev.At, to: inf}
		case LinkRestore:
			if w := linkOut[ev.Link]; w != nil && w.to == inf {
				w.to = ev.At
			}
		case LinkDegrade, GraySlow, GrayJitter, SilentLoss, ErrorBurst, Corrupt:
			if w := linkOut[ev.Link]; w != nil && ev.At > w.from && ev.At < w.to {
				return fmt.Errorf("faults: %s on link %s at %gs falls inside an outage window [%gs, %gs) — the link is dark",
					ev.Kind, ev.Link.Cfg.Name, float64(ev.At), float64(w.from), float64(w.to))
			}
		case HostFail:
			if w := hostOut[ev.Host]; w != nil && ev.At < w.to {
				return fmt.Errorf("faults: host %d fails at %gs inside an outage window [%gs, %gs)",
					ev.Host, float64(ev.At), float64(w.from), float64(w.to))
			}
			if w := hostLimp[ev.Host]; w != nil && ev.At > w.from && ev.At < w.to {
				return fmt.Errorf("faults: host %d crash-stops at %gs inside a limp window [%gs, %gs) — killing a host whose limp is scheduled to recover",
					ev.Host, float64(ev.At), float64(w.from), float64(w.to))
			}
			hostOut[ev.Host] = &window{from: ev.At, to: inf}
		case HostRestore:
			if w := hostOut[ev.Host]; w != nil && w.to == inf {
				w.to = ev.At
			}
		case LimpHost:
			if ev.Fraction >= 1 { // recovery edge closes the open limp
				if w := hostLimp[ev.Host]; w != nil && w.to == inf {
					w.to = ev.At
				}
				continue
			}
			if w := hostLimp[ev.Host]; w != nil && ev.At < w.to {
				return fmt.Errorf("faults: host %d limps at %gs inside a limp window [%gs, %gs)",
					ev.Host, float64(ev.At), float64(w.from), float64(w.to))
			}
			if w := hostOut[ev.Host]; w != nil && ev.At > w.from && ev.At < w.to {
				return fmt.Errorf("faults: host %d limps at %gs inside an outage window [%gs, %gs) — the host is down",
					ev.Host, float64(ev.At), float64(w.from), float64(w.to))
			}
			hostLimp[ev.Host] = &window{from: ev.At, to: inf}
		case PartitionStart:
			if partOpen != nil && ev.At < partOpen.to {
				return fmt.Errorf("faults: partition opens at %gs while one from %gs is still open",
					float64(ev.At), float64(partOpen.from))
			}
			partOpen = &window{from: ev.At, to: inf}
		case PartitionHeal:
			if partOpen != nil && partOpen.to == inf {
				partOpen.to = ev.At
			}
		}
	}
	return nil
}
